package crowdtopk_test

import (
	"bytes"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"crowdtopk"
	"crowdtopk/internal/obs"
)

// scrapeCounter fetches the handler's /metrics endpoint and returns the
// value of one un-labeled counter, asserting it is present.
func scrapeCounter(t *testing.T, tel *crowdtopk.Telemetry, name string) int64 {
	t.Helper()
	rec := httptest.NewRecorder()
	tel.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics returned status %d", rec.Code)
	}
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`)
	m := re.FindStringSubmatch(rec.Body.String())
	if m == nil {
		t.Fatalf("metric %s absent from scrape:\n%s", name, rec.Body.String())
	}
	v, err := strconv.ParseInt(m[1], 10, 64)
	if err != nil {
		t.Fatalf("metric %s unparsable: %v", name, err)
	}
	return v
}

func TestQueryStatsNilWhenTelemetryDisabled(t *testing.T) {
	data := crowdtopk.SyntheticDataset(20, 0.2, 1)
	res, err := crowdtopk.Query(data, crowdtopk.Options{K: 3, Budget: 100, MinWorkload: 10, BatchSize: 10, Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats != nil {
		t.Fatalf("Stats = %+v without Options.Telemetry, want nil", res.Stats)
	}
}

func TestQueryStatsAgreesWithResultAndScrape(t *testing.T) {
	data := crowdtopk.SyntheticDataset(25, 0.2, 3)
	tel := crowdtopk.NewTelemetry()
	res, err := crowdtopk.Query(data, crowdtopk.Options{
		K: 5, Budget: 200, MinWorkload: 10, BatchSize: 10, Confidence: 0.95,
		Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st == nil {
		t.Fatal("Stats nil despite Options.Telemetry")
	}
	if st.TMC != res.TMC {
		t.Errorf("Stats.TMC = %d, Result.TMC = %d", st.TMC, res.TMC)
	}
	if st.Rounds != res.Rounds {
		t.Errorf("Stats.Rounds = %d, Result.Rounds = %d", st.Rounds, res.Rounds)
	}
	if st.WallTimeNs <= 0 {
		t.Errorf("WallTimeNs = %d, want > 0", st.WallTimeNs)
	}
	if st.Comparisons == 0 || st.Waves == 0 {
		t.Errorf("comparison/wave counters empty: %+v", st)
	}

	// The per-phase breakdown must agree with the legacy Phases view and
	// sum to the total: SPR spends every microtask inside one of its
	// three phases.
	if res.Phases == nil {
		t.Fatal("SPR query returned no PhaseBreakdown")
	}
	want := map[string]int64{
		"select":    res.Phases.SelectTMC,
		"partition": res.Phases.PartitionTMC,
		"rank":      res.Phases.RankTMC,
	}
	var phaseSum int64
	for phase, tmc := range want {
		if tmc == 0 {
			continue
		}
		if got := st.Phases[phase].TMC; got != tmc {
			t.Errorf("Phases[%q].TMC = %d, PhaseBreakdown says %d", phase, got, tmc)
		}
		phaseSum += tmc
	}
	if phaseSum != res.TMC {
		t.Errorf("phase TMC sums to %d, total is %d", phaseSum, res.TMC)
	}

	// The live scrape speaks the same numbers.
	if got := scrapeCounter(t, tel, "crowdtopk_tmc_total"); got != res.TMC {
		t.Errorf("/metrics crowdtopk_tmc_total = %d, Result.TMC = %d", got, res.TMC)
	}

	// And so does the cumulative bundle view.
	if got := tel.Stats().TMC; got != res.TMC {
		t.Errorf("Telemetry.Stats().TMC = %d, Result.TMC = %d", got, res.TMC)
	}
}

// TestChaosMetricsAgreement is the acceptance check of the telemetry PR:
// under a flaky platform with retries, validation quarantine and an audit
// log, every accounting surface must report the same total monetary cost —
// the metrics registry, the session's engine, the audit log, and the
// structured QueryStats.
func TestChaosMetricsAgreement(t *testing.T) {
	data := crowdtopk.SyntheticDataset(20, 0.2, 7)
	var p crowdtopk.Platform = crowdtopk.SimulatedPlatform(data, 4, 8)
	p = crowdtopk.InjectFaults(p, crowdtopk.FaultSchedule{
		Seed: 9, Drop: 0.2, Duplicate: 0.1, Flip: 0.2, PostError: 0.1, CollectError: 0.1,
	})
	oracle := crowdtopk.WrapPlatform(data.NumItems(), p)

	tel := crowdtopk.NewTelemetry()
	sess, err := crowdtopk.NewSession(oracle, crowdtopk.Options{
		Budget: 200, MinWorkload: 10, BatchSize: 10, Seed: 5, Confidence: 0.95,
		Resilience: &crowdtopk.ResilienceOptions{
			MaxAttempts:    10, // generous retries absorb this fault mix
			BaseBackoff:    time.Microsecond,
			MaxBackoff:     time.Microsecond,
			CollectTimeout: time.Second,
		},
		Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	sess.EnableAuditLog()

	res, err := sess.TopK(4)
	if err != nil {
		t.Fatalf("flaky platform should survive retries: %v", err)
	}
	if res.Stats == nil {
		t.Fatal("session result carries no Stats")
	}

	tmc := sess.TMC()
	if res.Stats.TMC != tmc {
		t.Errorf("Stats.TMC = %d, session TMC = %d", res.Stats.TMC, tmc)
	}
	if got := int64(len(sess.AuditLog())); got != tmc {
		t.Errorf("audit log has %d records, session TMC = %d", got, tmc)
	}
	if got := scrapeCounter(t, tel, "crowdtopk_tmc_total"); got != tmc {
		t.Errorf("/metrics crowdtopk_tmc_total = %d, session TMC = %d", got, tmc)
	}

	// The chaos schedule fires retries; the resilience counters must see
	// them, and the failure log must agree with the dropped counter.
	if res.Stats.Retries == 0 && res.Stats.Quarantined == 0 && res.Stats.PartialBatches == 0 {
		t.Errorf("chaos run recorded no resilience activity: %+v", res.Stats)
	}
	logged := int64(len(sess.PlatformFailures()))
	if res.Stats.FailureEvents != logged+sess.DroppedPlatformFailures() {
		t.Errorf("failure events metric %d != retained %d + dropped %d",
			res.Stats.FailureEvents, logged, sess.DroppedPlatformFailures())
	}

	// /debug/vars serves the same snapshot as JSON.
	rec := httptest.NewRecorder()
	tel.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "crowdtopk_tmc_total") {
		t.Errorf("/debug/vars scrape unusable: status %d", rec.Code)
	}
}

// TestTraceReplayPhaseBreakdown replays the JSONL trace of a query and
// checks that aggregating the phase spans' tmc attribute recovers exactly
// the per-phase cost breakdown the run reported — the post-hoc analysis
// path of the -trace-out flag.
func TestTraceReplayPhaseBreakdown(t *testing.T) {
	data := crowdtopk.SyntheticDataset(25, 0.2, 11)
	tel := crowdtopk.NewTelemetry()
	res, err := crowdtopk.Query(data, crowdtopk.Options{
		K: 5, Budget: 200, MinWorkload: 10, BatchSize: 10, Confidence: 0.95,
		Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tel.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	spans, err := obs.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("trace empty")
	}
	byName := obs.SumAttr(spans, "tmc")

	if byName["query"] != res.TMC {
		t.Errorf("query span tmc = %d, Result.TMC = %d", byName["query"], res.TMC)
	}
	for phase, st := range res.Stats.Phases {
		if got := byName["phase:"+phase]; got != st.TMC {
			t.Errorf("replayed phase:%s tmc = %d, Stats says %d", phase, got, st.TMC)
		}
	}

	// Comparison spans nest under phases and carry their verdicts.
	var comps int
	for _, s := range spans {
		if s.Name == "comp" {
			comps++
			if s.Parent == 0 {
				t.Errorf("comp span %d has no parent", s.ID)
			}
			if s.Labels["verdict"] == "" {
				t.Errorf("comp span %d has no verdict label", s.ID)
			}
		}
	}
	if int64(comps) != res.Stats.Comparisons {
		t.Errorf("trace has %d comp spans, Stats counted %d comparisons", comps, res.Stats.Comparisons)
	}
}

func TestSessionIncrementalStats(t *testing.T) {
	data := crowdtopk.SyntheticDataset(20, 0.2, 13)
	tel := crowdtopk.NewTelemetry()
	sess, err := crowdtopk.NewSession(data, crowdtopk.Options{
		Budget: 200, MinWorkload: 10, BatchSize: 10, Confidence: 0.95,
		Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := sess.TopK(3)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sess.TopK(5)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Stats == nil || res2.Stats == nil {
		t.Fatal("session results carry no Stats")
	}
	if res1.Stats.TMC != res1.TMC || res2.Stats.TMC != res2.TMC {
		t.Errorf("incremental Stats.TMC (%d, %d) disagree with Result.TMC (%d, %d)",
			res1.Stats.TMC, res2.Stats.TMC, res1.TMC, res2.TMC)
	}
	if got := res1.Stats.TMC + res2.Stats.TMC; got != sess.TMC() {
		t.Errorf("per-call stats sum to %d, session TMC = %d", got, sess.TMC())
	}
	// The widened re-query reuses every conclusion of the first call.
	if res2.Stats.MemoHits == 0 {
		t.Error("second query reports no memo hits despite full reuse")
	}
}
