//go:build unix

package lockfile

import (
	"os"
	"syscall"
)

// flock takes a non-blocking exclusive lock on f's descriptor. flock(2)
// locks the open file description: two opens of the same path conflict
// even within one process, and the kernel releases the lock when the
// last descriptor closes — including on SIGKILL.
func flock(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}

func funlock(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
