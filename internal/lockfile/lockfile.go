// Package lockfile guards on-disk stores against concurrent writers from
// different processes: an advisory exclusive lock (flock on unix) on a
// sidecar lock file carrying the holder's PID as a human-readable hint.
//
// The lock is tied to the open file description, so it is released
// automatically when the holding process exits — even on SIGKILL — which
// is exactly the crash semantics an append-only store wants: a dead
// holder never wedges the store, a live one is never corrupted by a
// second writer.
package lockfile

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// ErrLocked reports that another process holds the lock. Errors returned
// by Acquire wrap it together with the holder's PID hint; detect with
// errors.Is.
var ErrLocked = errors.New("lockfile: held by another process")

// Lock is one held lock. Release it when the guarded store closes; a
// crashed holder releases implicitly when the OS closes its descriptors.
type Lock struct {
	path string
	f    *os.File
}

// Acquire takes the exclusive lock at path (creating the file if absent)
// and records the caller's PID in it. When another process holds the
// lock, the returned error wraps ErrLocked and names the holder's PID
// when the hint is readable.
func Acquire(path string) (*Lock, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lockfile: open %s: %w", path, err)
	}
	if err := flock(f); err != nil {
		// The PID hint is best-effort: the holder wrote it after locking,
		// and it beats a bare "resource temporarily unavailable".
		hint := ""
		if data, rerr := os.ReadFile(path); rerr == nil {
			if pid, perr := strconv.Atoi(strings.TrimSpace(string(data))); perr == nil {
				hint = fmt.Sprintf(" (pid %d)", pid)
			}
		}
		f.Close()
		return nil, fmt.Errorf("lockfile: %s: %w%s", path, ErrLocked, hint)
	}
	// Record the holder. Truncate first: a stale longer PID must not leave
	// trailing digits behind.
	if err := f.Truncate(0); err == nil {
		_, _ = f.WriteAt([]byte(strconv.Itoa(os.Getpid())+"\n"), 0)
		_ = f.Sync()
	}
	return &Lock{path: path, f: f}, nil
}

// Release drops the lock. The lock file itself is left in place — it is a
// rendezvous point, not state, and removing it would race a concurrent
// Acquire on the unlinked inode.
func (l *Lock) Release() error {
	if l == nil || l.f == nil {
		return nil
	}
	err := funlock(l.f)
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// Path returns the lock file path.
func (l *Lock) Path() string { return l.path }
