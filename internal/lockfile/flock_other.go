//go:build !unix

package lockfile

import "os"

// Non-unix platforms get no advisory locking: Acquire degrades to the
// pre-lock single-process contract instead of failing to build. Every
// deployment target of this repository is unix.
func flock(f *os.File) error   { return nil }
func funlock(f *os.File) error { return nil }
