// Package sched is the shared asynchronous comparison scheduler: one
// bounded worker pool that advances every in-flight comparison process —
// across pairs and across queries — one step at a time, delivering
// completions on per-query mailboxes.
//
// The scheduler replaces the per-algorithm wave pools of the earlier
// design. Algorithms become plan drivers: they submit COMP step tasks
// (tagged with a chain id and a latency round) and react to completions,
// so a decided pair immediately frees its worker for another pair — or for
// another query — instead of idling behind a wave barrier on the slowest
// straggler.
//
// Fairness is priority/deadline-weighted round-robin across open queries:
// each worker pickup serves the pending query with the highest priority
// (ties broken by the earliest deadline, then round-robin rotation), so a
// high-priority query overtakes its neighbors without starving equals —
// queries of one priority class still share the pool round-robin. Within
// a query, tasks run highest-Priority first, FIFO among equals.
//
// A query may be canceled mid-flight: Cancel drops its pending tasks
// (their completions are delivered without running, so drivers never
// block on a dropped step) while tasks already on a worker run to
// completion — the drain half of cooperative cancellation.
//
// Determinism: with one worker the scheduler degenerates to inline
// execution — Submit runs the task synchronously on the caller's
// goroutine and queues the completion — which is byte-identical to the
// historical sequential execution. With more workers, execution order
// across chains is nondeterministic, but the engine's per-pair sample
// streams keep every chain's samples schedule-independent; wave-mode
// drivers restore full determinism with a drain barrier per round.
package sched

import (
	"sync"
	"sync/atomic"
	"time"

	qlog "crowdtopk/internal/obs/log"
)

// Task is one schedulable step of a comparison process.
type Task struct {
	// Tag identifies the chain the step belongs to; it is echoed back by
	// Query.Next so the driver can route the completion.
	Tag int64
	// Round is the chain's latency round after this step completes.
	// Drivers use it for high-water latency ticking; the scheduler uses it
	// to detect straggler steals (a later-round task starting while an
	// earlier-round task of the same query is still running).
	Round int64
	// Priority orders tasks within one query: higher runs first, FIFO
	// among equals. Cross-query order is round-robin regardless.
	Priority int32
	// Run performs the step. It must not submit to the scheduler itself
	// (drivers submit follow-up steps from the completion loop), so tasks
	// can never deadlock the pool.
	Run func()
}

// queued is a Task in a query's pending queue.
type queued struct {
	Task
	enq time.Time // submit time, set only when instruments are wired
}

// Scheduler owns the worker pool. Workers are spawned when the first
// query opens and exit when the last closes, so idle sessions hold no
// goroutines. A Scheduler with workers <= 1 never spawns: Submit executes
// inline (sequential mode).
type Scheduler struct {
	workers int
	busyNs  atomic.Int64 // wall-clock ns workers spent inside Task.Run
	tasks   atomic.Int64 // tasks executed (pool and inline)

	// ins is the pre-resolved metric bundle; nil when telemetry is off
	// (the disabled path costs one nil check per touch point).
	ins *Instruments

	// log reports the pool's rare lifecycle events (spawn, drain); drops
	// is its rate-limited sibling for cancel-time task drops, which can
	// arrive in bursts. Both nil when logging is off.
	log   *qlog.Logger
	drops *qlog.Logger

	mu      sync.Mutex
	cond    *sync.Cond
	queries []*Query // open queries, round-robin order
	rr      int      // next query to serve
	pending int      // total queued tasks across queries
	running int      // tasks currently inside Run
	live    int      // workers currently alive
}

// New returns a scheduler whose pool is bounded by workers. workers <= 1
// selects inline (sequential) execution.
func New(workers int) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	s := &Scheduler{workers: workers}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// SetInstruments wires the metric bundle; nil disables instrumentation.
// Call before the scheduler is shared across goroutines.
func (s *Scheduler) SetInstruments(ins *Instruments) { s.ins = ins }

// SetLogger wires structured logging for the scheduler's rare events:
// pool spawn/drain and cancel-time task drops (rate-limited, since a mass
// cancellation drops queues in bursts). Nil disables. Call before the
// scheduler is shared across goroutines.
func (s *Scheduler) SetLogger(lg *qlog.Logger) {
	s.log = lg.With("component", "sched")
	s.drops = s.log.Limited("sched-cancel", 1, 5)
}

// Workers returns the pool bound.
func (s *Scheduler) Workers() int { return s.workers }

// BusyNs returns the cumulative wall-clock nanoseconds pool workers spent
// executing tasks — the numerator of pool utilization
// (busy / (wall × workers)). Inline execution does not count.
func (s *Scheduler) BusyNs() int64 { return s.busyNs.Load() }

// Tasks returns how many tasks have been executed.
func (s *Scheduler) Tasks() int64 { return s.tasks.Load() }

// Query is one query's handle on the scheduler: a private pending queue
// feeding the shared pool and a mailbox receiving completions.
type Query struct {
	s       *Scheduler
	pending []queued
	head    int
	prio    bool    // some pending task has nonzero priority
	rounds  []int64 // rounds of this query's tasks currently running
	closed  bool

	// priority and deadline weight the cross-query dequeue; both are
	// written under s.mu (SetPriority/SetDeadline) and read by pickLocked.
	priority int32
	deadline int64 // unix nanos; 0 = none

	canceled atomic.Bool

	dmu  sync.Mutex
	done []int64
	dpos int
	sig  chan struct{}
}

// SetPriority sets the query's scheduling weight: among queries with
// pending work, a higher-priority query is always served first. Equal
// priorities share the pool round-robin (the pre-priority fairness).
func (q *Query) SetPriority(p int32) {
	q.s.mu.Lock()
	q.priority = p
	q.s.mu.Unlock()
}

// SetDeadline declares when the query's results are due. Among queries of
// equal priority, the one with the earliest deadline is served first;
// queries without a deadline rank after any query that has one. The zero
// time clears the deadline.
func (q *Query) SetDeadline(t time.Time) {
	var d int64
	if !t.IsZero() {
		d = t.UnixNano()
	}
	q.s.mu.Lock()
	q.deadline = d
	q.s.mu.Unlock()
}

// Cancel drops every pending (not yet picked up) task of the query and
// delivers their completions immediately — without running them — so the
// driver's submit/next bookkeeping stays balanced while the queue drains
// promptly. Tasks already executing on a worker finish normally and
// deliver as usual. Subsequent Submits on a canceled query deliver their
// completion without running, in both pool and inline mode. Cancel is
// safe to call from any goroutine, multiple times.
//
// Cancel does not conclude anything by itself: callers pair it with a
// query-level stop latch that makes the dropped steps' work unnecessary
// (purchases declined, chains concluded best-effort by the driver).
func (q *Query) Cancel() {
	s := q.s
	if s.workers <= 1 {
		q.canceled.Store(true)
		return
	}
	s.mu.Lock()
	q.canceled.Store(true)
	var tags []int64
	for i := q.head; i < len(q.pending); i++ {
		tags = append(tags, q.pending[i].Tag)
	}
	s.pending -= len(q.pending) - q.head
	q.pending = q.pending[:0]
	q.head = 0
	q.prio = false
	if ins := s.ins; ins != nil {
		ins.QueueDepth.Set(int64(s.pending))
		ins.Dropped.Add(int64(len(tags)))
	}
	s.mu.Unlock()
	if len(tags) > 0 {
		s.drops.Debug("pending tasks dropped on cancel", "dropped", len(tags))
	}
	for _, tag := range tags {
		q.deliver(tag)
	}
}

// Canceled reports whether Cancel has been called.
func (q *Query) Canceled() bool { return q.canceled.Load() }

// Open registers a new query with the scheduler and (in pool mode) spawns
// the workers if none are alive. Close the handle when the query's last
// completion has been consumed.
func (s *Scheduler) Open() *Query {
	q := &Query{s: s, sig: make(chan struct{}, 1)}
	if s.workers <= 1 {
		return q
	}
	s.mu.Lock()
	s.queries = append(s.queries, q)
	spawned := s.live == 0
	for s.live < s.workers {
		s.live++
		go s.worker()
	}
	s.mu.Unlock()
	if spawned {
		s.log.Debug("worker pool started", "workers", s.workers)
	}
	return q
}

// Submit queues one task. In inline mode (workers <= 1) the task runs
// synchronously on the calling goroutine and its completion is queued
// before Submit returns — byte-identical to sequential execution.
// Submit must not be called after Close, nor concurrently with it.
func (q *Query) Submit(t Task) {
	s := q.s
	if s.workers <= 1 {
		if q.canceled.Load() {
			q.deliver(t.Tag)
			return
		}
		t.Run()
		s.tasks.Add(1)
		q.deliver(t.Tag)
		return
	}
	qt := queued{Task: t}
	if s.ins != nil {
		qt.enq = time.Now()
	}
	s.mu.Lock()
	if q.closed {
		s.mu.Unlock()
		panic("sched: Submit on a closed query")
	}
	if q.canceled.Load() {
		if ins := s.ins; ins != nil {
			ins.Dropped.Inc()
		}
		s.mu.Unlock()
		q.deliver(t.Tag)
		return
	}
	q.pending = append(q.pending, qt)
	if t.Priority != 0 {
		q.prio = true
	}
	s.pending++
	if ins := s.ins; ins != nil {
		ins.QueueDepth.Set(int64(s.pending))
	}
	s.mu.Unlock()
	s.cond.Signal()
}

// Next blocks until one of the query's submitted tasks has completed and
// returns its Tag. Each Submit produces exactly one Next delivery. Only
// the query's driver goroutine may call Next.
func (q *Query) Next() int64 {
	for {
		q.dmu.Lock()
		if q.dpos < len(q.done) {
			tag := q.done[q.dpos]
			q.dpos++
			if q.dpos == len(q.done) {
				q.done = q.done[:0]
				q.dpos = 0
			}
			q.dmu.Unlock()
			return tag
		}
		q.dmu.Unlock()
		<-q.sig
	}
}

// Drain consumes n completions, discarding the tags — the wave-barrier
// primitive for drivers that track results positionally.
func (q *Query) Drain(n int) {
	for i := 0; i < n; i++ {
		q.Next()
	}
}

// Close unregisters the query. Any still-pending tasks are dropped; the
// caller must have drained the completions of tasks it cares about. When
// the last query closes, the pool workers exit.
func (q *Query) Close() {
	s := q.s
	if s.workers <= 1 {
		return
	}
	s.mu.Lock()
	q.closed = true
	s.pending -= len(q.pending) - q.head
	q.pending = nil
	for i, o := range s.queries {
		if o == q {
			s.queries = append(s.queries[:i], s.queries[i+1:]...)
			if s.rr > i {
				s.rr--
			}
			break
		}
	}
	if ins := s.ins; ins != nil {
		ins.QueueDepth.Set(int64(s.pending))
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// deliver queues one completion and wakes the driver.
func (q *Query) deliver(tag int64) {
	q.dmu.Lock()
	q.done = append(q.done, tag)
	q.dmu.Unlock()
	select {
	case q.sig <- struct{}{}:
	default:
	}
}

// takeLocked removes and returns the query's next task: highest priority
// first, FIFO among equals. Caller holds s.mu and has checked the queue
// is non-empty.
func (q *Query) takeLocked() queued {
	best := q.head
	if q.prio {
		for i := q.head + 1; i < len(q.pending); i++ {
			if q.pending[i].Priority > q.pending[best].Priority {
				best = i
			}
		}
	}
	t := q.pending[best]
	if best == q.head {
		q.pending[best] = queued{}
		q.head++
	} else {
		copy(q.pending[best:], q.pending[best+1:])
		q.pending[len(q.pending)-1] = queued{}
		q.pending = q.pending[:len(q.pending)-1]
	}
	if q.head == len(q.pending) {
		q.pending = q.pending[:0]
		q.head = 0
		q.prio = false
	}
	return t
}

// beatsLocked reports whether query a outranks query b for the next
// worker pickup: strictly higher priority wins; among equals, the
// earlier non-zero deadline wins. Caller holds s.mu.
func beatsLocked(a, b *Query) bool {
	if a.priority != b.priority {
		return a.priority > b.priority
	}
	if a.deadline != b.deadline {
		if a.deadline == 0 {
			return false
		}
		return b.deadline == 0 || a.deadline < b.deadline
	}
	return false
}

// pickLocked selects the next (query, task) pair across open queries:
// highest query priority first, earliest deadline among equals, and
// round-robin rotation as the final tie-break (the scan starts at s.rr
// and a strictly-better candidate is required to displace an earlier
// one, so equal-weight queries keep taking fair turns). Returns false
// when nothing is pending.
func (s *Scheduler) pickLocked() (*Query, queued, bool) {
	n := len(s.queries)
	best := -1
	for off := 0; off < n; off++ {
		i := (s.rr + off) % n
		q := s.queries[i]
		if q.head >= len(q.pending) {
			continue
		}
		if best < 0 || beatsLocked(q, s.queries[best]) {
			best = i
		}
	}
	if best < 0 {
		return nil, queued{}, false
	}
	q := s.queries[best]
	t := q.takeLocked()
	s.rr = (best + 1) % n
	return q, t, true
}

// worker is one pool goroutine: pick fairly, run, deliver, repeat; exit
// when no queries remain open.
func (s *Scheduler) worker() {
	s.mu.Lock()
	for {
		q, t, ok := s.pickLocked()
		if !ok {
			if len(s.queries) == 0 {
				s.live--
				drained := s.live == 0
				s.mu.Unlock()
				if drained {
					s.log.Debug("worker pool drained", "tasks", s.tasks.Load())
				}
				return
			}
			s.cond.Wait()
			continue
		}
		s.pending--
		s.running++
		if ins := s.ins; ins != nil {
			ins.QueueDepth.Set(int64(s.pending))
			ins.InFlight.Set(int64(s.running))
			wait := time.Since(t.enq).Nanoseconds()
			ins.QueueWait.Observe(wait)
			ins.QueueWaitNs.Add(wait)
			// A straggler steal: this task starts while an earlier-round
			// task of the same query is still running — the pool slot the
			// wave barrier would have left idle.
			for _, r := range q.rounds {
				if r < t.Round {
					ins.Steals.Inc()
					break
				}
			}
		}
		q.rounds = append(q.rounds, t.Round)
		s.mu.Unlock()

		start := time.Now()
		t.Run()
		s.busyNs.Add(time.Since(start).Nanoseconds())
		s.tasks.Add(1)

		// Bookkeeping strictly before delivery: the driver may resubmit
		// the chain's next round the moment it sees the completion, and
		// that follow-up must not observe this finished step as a running
		// earlier round (it would read as a phantom straggler steal).
		s.mu.Lock()
		s.running--
		for i, r := range q.rounds {
			if r == t.Round {
				q.rounds = append(q.rounds[:i], q.rounds[i+1:]...)
				break
			}
		}
		if ins := s.ins; ins != nil {
			ins.InFlight.Set(int64(s.running))
		}
		s.mu.Unlock()
		q.deliver(t.Tag)
		s.mu.Lock()
	}
}
