package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crowdtopk/internal/obs"
)

// TestInlineModeRunsSynchronously: with one worker, Submit executes the
// task on the calling goroutine before returning, and completions arrive
// in submission order — the sequential-determinism contract.
func TestInlineModeRunsSynchronously(t *testing.T) {
	s := New(1)
	q := s.Open()
	defer q.Close()
	var order []int64
	for tag := int64(0); tag < 5; tag++ {
		tg := tag
		q.Submit(Task{Tag: tg, Run: func() { order = append(order, tg) }})
	}
	for i := int64(0); i < 5; i++ {
		if got := q.Next(); got != i {
			t.Fatalf("completion %d: got tag %d", i, got)
		}
	}
	for i, tg := range order {
		if tg != int64(i) {
			t.Fatalf("inline execution out of order: %v", order)
		}
	}
	if s.Tasks() != 5 {
		t.Fatalf("Tasks() = %d, want 5", s.Tasks())
	}
}

// TestPoolDeliversEveryCompletion: every Submit yields exactly one Next,
// regardless of pool interleaving.
func TestPoolDeliversEveryCompletion(t *testing.T) {
	s := New(4)
	q := s.Open()
	defer q.Close()
	const n = 200
	var ran atomic.Int64
	for tag := int64(0); tag < n; tag++ {
		q.Submit(Task{Tag: tag, Run: func() { ran.Add(1) }})
	}
	seen := make(map[int64]bool, n)
	for i := 0; i < n; i++ {
		tag := q.Next()
		if seen[tag] {
			t.Fatalf("tag %d delivered twice", tag)
		}
		seen[tag] = true
	}
	if ran.Load() != n {
		t.Fatalf("ran %d tasks, want %d", ran.Load(), n)
	}
}

// TestRoundRobinFairness: two queries submitting together both finish;
// the narrow query is not starved behind the wide one.
func TestRoundRobinFairness(t *testing.T) {
	s := New(2)
	qa, qb := s.Open(), s.Open()
	defer qa.Close()
	defer qb.Close()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := int64(0); i < 100; i++ {
			qa.Submit(Task{Tag: i, Run: func() { time.Sleep(time.Microsecond) }})
		}
		qa.Drain(100)
	}()
	go func() {
		defer wg.Done()
		for i := int64(0); i < 5; i++ {
			qb.Submit(Task{Tag: i, Run: func() {}})
			qb.Next()
		}
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("queries did not complete; scheduler starved or deadlocked")
	}
}

// TestPriorityOrdersWithinQuery: with the pool blocked, the high-priority
// task overtakes earlier FIFO submissions.
func TestPriorityOrdersWithinQuery(t *testing.T) {
	s := New(2)
	q := s.Open()
	defer q.Close()

	gate := make(chan struct{})
	// Occupy both workers so subsequent submissions queue up.
	q.Submit(Task{Tag: 100, Run: func() { <-gate }})
	q.Submit(Task{Tag: 101, Run: func() { <-gate }})
	var first atomic.Int64
	first.Store(-1)
	for tag := int64(0); tag < 4; tag++ {
		tg := tag
		var prio int32
		if tg == 3 {
			prio = 1
		}
		q.Submit(Task{Tag: tg, Priority: prio, Run: func() {
			first.CompareAndSwap(-1, tg)
		}})
	}
	close(gate)
	q.Drain(6)
	if first.Load() != 3 {
		t.Fatalf("first queued task to run was %d, want the priority-1 task 3", first.Load())
	}
}

// TestWorkerLifecycle: workers exist only while a query is open, so idle
// sessions hold no goroutines; reopening respawns them.
func TestWorkerLifecycle(t *testing.T) {
	s := New(4)
	for round := 0; round < 3; round++ {
		q := s.Open()
		q.Submit(Task{Tag: 1, Run: func() {}})
		q.Next()
		q.Close()
		deadline := time.Now().Add(5 * time.Second)
		for {
			s.mu.Lock()
			live := s.live
			s.mu.Unlock()
			if live == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("round %d: %d workers still alive after last query closed", round, live)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// TestStragglerStealCounter: one slow chain plus fast later-round chains
// must record steals — the pool kept working past the straggler.
func TestStragglerStealCounter(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(4)
	s.SetInstruments(NewInstruments(reg))
	q := s.Open()
	defer q.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	q.Submit(Task{Tag: 0, Round: 1, Run: func() { close(started); <-release }})
	<-started // the straggler is provably running, not merely queued
	for tag := int64(1); tag <= 8; tag++ {
		q.Submit(Task{Tag: tag, Round: 2, Run: func() {}})
	}
	q.Drain(8)
	close(release)
	q.Next()
	if got := reg.Counter(obs.MSchedSteals).Value(); got == 0 {
		t.Fatal("no straggler steals recorded despite round-2 tasks passing a running round-1 task")
	}
}

// TestDisabledInstrumentsAllocFree: with instruments off, the pool path
// allocates nothing per task beyond the caller's own closure. This is the
// scheduler's extension of the repo's disabled-telemetry alloc-regression
// suite.
func TestDisabledInstrumentsAllocFree(t *testing.T) {
	s := New(1) // inline: measures the Submit/Next bookkeeping itself
	q := s.Open()
	defer q.Close()
	task := Task{Tag: 7, Run: func() {}}
	// Warm up the pending/done slices so steady state is measured.
	for i := 0; i < 4; i++ {
		q.Submit(task)
		q.Next()
	}
	avg := testing.AllocsPerRun(100, func() {
		q.Submit(task)
		q.Next()
	})
	if avg > 0 {
		t.Fatalf("disabled-instrument Submit+Next allocates %.1f per task, want 0", avg)
	}
}

// TestCrossQueryPriorityDequeue pins the cross-query dequeue order: with
// one worker serializing the backlog, every task of a higher-priority
// query runs before any task of a lower-priority query — even when the
// low-priority tasks were submitted first.
func TestCrossQueryPriorityDequeue(t *testing.T) {
	s := New(2)
	qGate, qHi, qLo := s.Open(), s.Open(), s.Open()
	defer qGate.Close()
	defer qHi.Close()
	defer qLo.Close()

	// Hold both workers so the backlog builds before anything is picked;
	// release only one, so a single worker serializes the dequeue.
	g1, g2 := make(chan struct{}), make(chan struct{})
	started := make(chan struct{}, 2)
	qGate.Submit(Task{Tag: 0, Run: func() { started <- struct{}{}; <-g1 }})
	qGate.Submit(Task{Tag: 1, Run: func() { started <- struct{}{}; <-g2 }})
	<-started
	<-started

	qHi.SetPriority(5)
	var mu sync.Mutex
	var order []string
	record := func(label string) func() {
		return func() { mu.Lock(); order = append(order, label); mu.Unlock() }
	}
	// Low-priority work enters the queue first and must still lose.
	for tag := int64(0); tag < 5; tag++ {
		qLo.Submit(Task{Tag: tag, Run: record("lo")})
	}
	for tag := int64(0); tag < 5; tag++ {
		qHi.Submit(Task{Tag: tag, Run: record("hi")})
	}

	close(g2)
	qHi.Drain(5)
	qLo.Drain(5)
	close(g1)
	qGate.Drain(2)

	for i, label := range order {
		want := "hi"
		if i >= 5 {
			want = "lo"
		}
		if label != want {
			t.Fatalf("dequeue order %v: position %d is %q, want %q", order, i, label, want)
		}
	}
}

// TestDeadlineOrdersEqualPriority: among equal-priority queries, the one
// with the earliest deadline is served first, and a query without a
// deadline ranks after any query that has one.
func TestDeadlineOrdersEqualPriority(t *testing.T) {
	s := New(2)
	qGate := s.Open()
	qFar, qNear, qNone := s.Open(), s.Open(), s.Open()
	defer qGate.Close()
	defer qFar.Close()
	defer qNear.Close()
	defer qNone.Close()

	g1, g2 := make(chan struct{}), make(chan struct{})
	started := make(chan struct{}, 2)
	qGate.Submit(Task{Tag: 0, Run: func() { started <- struct{}{}; <-g1 }})
	qGate.Submit(Task{Tag: 1, Run: func() { started <- struct{}{}; <-g2 }})
	<-started
	<-started

	now := time.Now()
	qFar.SetDeadline(now.Add(time.Hour))
	qNear.SetDeadline(now.Add(time.Minute))

	var mu sync.Mutex
	var order []string
	record := func(label string) func() {
		return func() { mu.Lock(); order = append(order, label); mu.Unlock() }
	}
	// Submission order is deliberately worst-case for the expectation.
	for tag := int64(0); tag < 3; tag++ {
		qNone.Submit(Task{Tag: tag, Run: record("none")})
		qFar.Submit(Task{Tag: tag, Run: record("far")})
		qNear.Submit(Task{Tag: tag, Run: record("near")})
	}

	close(g2)
	qNear.Drain(3)
	qFar.Drain(3)
	qNone.Drain(3)
	close(g1)
	qGate.Drain(2)

	want := []string{"near", "near", "near", "far", "far", "far", "none", "none", "none"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dequeue order %v, want %v", order, want)
		}
	}
}

// TestCancelDropsPendingWithoutRunning: Cancel drops every queued task —
// none of them executes, yet every tag is still delivered so the driver's
// submit/next bookkeeping stays balanced — and the drop counter records
// them. Post-cancel submissions short-circuit the same way.
func TestCancelDropsPendingWithoutRunning(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(2)
	s.SetInstruments(NewInstruments(reg))
	qGate := s.Open()
	q := s.Open()
	defer qGate.Close()
	defer q.Close()

	gate := make(chan struct{})
	started := make(chan struct{}, 2)
	hold := func() { started <- struct{}{}; <-gate }
	qGate.Submit(Task{Tag: 0, Run: hold})
	qGate.Submit(Task{Tag: 1, Run: hold})
	<-started
	<-started

	const n = 6
	var ran atomic.Int64
	for tag := int64(0); tag < n; tag++ {
		q.Submit(Task{Tag: tag, Run: func() { ran.Add(1) }})
	}
	q.Cancel()

	seen := make(map[int64]bool, n)
	for i := 0; i < n; i++ {
		tag := q.Next()
		if seen[tag] {
			t.Fatalf("tag %d delivered twice", tag)
		}
		seen[tag] = true
	}
	if ran.Load() != 0 {
		t.Fatalf("%d dropped tasks ran anyway", ran.Load())
	}
	if got := reg.Counter(obs.MSchedDropped).Value(); got != n {
		t.Fatalf("dropped counter = %d, want %d", got, n)
	}

	// A submit after Cancel is dropped the same way: delivered, not run.
	q.Submit(Task{Tag: 99, Run: func() { ran.Add(1) }})
	if tag := q.Next(); tag != 99 {
		t.Fatalf("post-cancel completion tag = %d, want 99", tag)
	}
	if ran.Load() != 0 {
		t.Fatal("post-cancel submission ran anyway")
	}
	if got := reg.Counter(obs.MSchedDropped).Value(); got != n+1 {
		t.Fatalf("dropped counter = %d, want %d", got, n+1)
	}

	close(gate)
	qGate.Drain(2)
}

// TestCancelInlineMode: in inline mode the same contract holds without a
// pool — post-cancel submissions deliver their tag unrun.
func TestCancelInlineMode(t *testing.T) {
	s := New(1)
	q := s.Open()
	defer q.Close()
	q.Cancel()
	if !q.Canceled() {
		t.Fatal("Canceled() false after Cancel")
	}
	var ran atomic.Int64
	q.Submit(Task{Tag: 3, Run: func() { ran.Add(1) }})
	if tag := q.Next(); tag != 3 {
		t.Fatalf("completion tag = %d, want 3", tag)
	}
	if ran.Load() != 0 {
		t.Fatal("canceled inline submission ran anyway")
	}
}

// TestBusyNsTracksPoolWork: pool utilization accounting accumulates the
// wall-clock time spent inside tasks.
func TestBusyNsTracksPoolWork(t *testing.T) {
	s := New(2)
	q := s.Open()
	defer q.Close()
	for tag := int64(0); tag < 4; tag++ {
		q.Submit(Task{Tag: tag, Run: func() { time.Sleep(2 * time.Millisecond) }})
	}
	q.Drain(4)
	if got := s.BusyNs(); got < (4 * time.Millisecond).Nanoseconds() {
		t.Fatalf("BusyNs = %d, want at least 4ms of tracked work", got)
	}
}
