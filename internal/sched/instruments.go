package sched

import "crowdtopk/internal/obs"

// Instruments is the scheduler's pre-resolved metric bundle. All fields
// are non-nil when the bundle is; the disabled path is one nil check on
// the bundle itself.
type Instruments struct {
	QueueDepth  *obs.Gauge     // tasks queued, not yet picked up
	InFlight    *obs.Gauge     // tasks currently executing on workers
	QueueWait   *obs.Histogram // ns from submit to worker pickup, per task
	QueueWaitNs *obs.Counter   // cumulative queue-wait ns (continuity with the wave-era counter)
	Steals      *obs.Counter   // straggler steals: later-round task started past a running earlier round
	Dropped     *obs.Counter   // pending tasks dropped by query cancellation
}

// NewInstruments resolves the bundle from the registry; nil registry
// (telemetry disabled) yields nil.
func NewInstruments(reg *obs.Registry) *Instruments {
	if reg == nil {
		return nil
	}
	return &Instruments{
		QueueDepth:  reg.Gauge(obs.MSchedQueueDepth),
		InFlight:    reg.Gauge(obs.MSchedInFlight),
		QueueWait:   reg.Histogram(obs.MSchedQueueWait, obs.QueueWaitBuckets),
		QueueWaitNs: reg.Counter(obs.MQueueWaitNs),
		Steals:      reg.Counter(obs.MSchedSteals),
		Dropped:     reg.Counter(obs.MSchedDropped),
	}
}
