package hybrid

import (
	"math/rand"
	"testing"

	"crowdtopk/internal/compare"
	"crowdtopk/internal/crowd"
	"crowdtopk/internal/dataset"
	"crowdtopk/internal/topk"
)

func newRunner(seed int64) (*compare.Runner, dataset.Source) {
	src := dataset.NewBook(seed) // graded + pairwise, rating ground truth
	sub := dataset.RandomSubset(src, 60, rand.New(rand.NewSource(seed+1)))
	eng := crowd.NewEngine(sub, rand.New(rand.NewSource(seed+2)))
	r := compare.NewRunner(eng, compare.NewStudent(0.05), compare.Params{B: 300, I: 30, Step: 30})
	return r, sub
}

func precisionAt(got, want []int) float64 {
	in := map[int]bool{}
	for _, o := range want {
		in[o] = true
	}
	hits := 0
	for _, o := range got {
		if in[o] {
			hits++
		}
	}
	return float64(hits) / float64(len(want))
}

func TestHybridStaysWithinBudget(t *testing.T) {
	r, _ := newRunner(1)
	h := NewHybrid(20000)
	h.TopK(r, 8)
	if got := r.Engine().TMC(); got > 20000 {
		t.Errorf("TMC = %d exceeds budget 20000", got)
	}
	if g := r.Engine().GradedTasks(); g == 0 {
		t.Error("no graded microtasks spent")
	}
	if p := r.Engine().PairwiseTasks(); p == 0 {
		t.Error("no pairwise microtasks spent")
	}
}

func TestHybridFindsMostOfTopK(t *testing.T) {
	total := 0.0
	for rep := int64(0); rep < 3; rep++ {
		r, src := newRunner(10 + rep)
		got := NewHybrid(25000).TopK(r, 8)
		total += precisionAt(got, dataset.TopK(src, 8))
	}
	if avg := total / 3; avg < 0.6 {
		t.Errorf("Hybrid precision %.2f below 0.6", avg)
	}
}

func TestHybridSPRFindsMostOfTopK(t *testing.T) {
	total := 0.0
	for rep := int64(0); rep < 3; rep++ {
		r, src := newRunner(20 + rep)
		got := NewHybridSPR(10000).TopK(r, 8)
		total += precisionAt(got, dataset.TopK(src, 8))
	}
	if avg := total / 3; avg < 0.6 {
		t.Errorf("HybridSPR precision %.2f below 0.6", avg)
	}
}

func TestHybridSPRCheaperThanHybridAtSameFilter(t *testing.T) {
	// The §6.5 claim: the confidence-aware ranking phase is more
	// efficient, so with the same grading spend HybridSPR's ranking phase
	// undercuts Hybrid's fixed all-pairs phase at matched filter sizes.
	var hybridCost, sprCost int64
	for rep := int64(0); rep < 3; rep++ {
		r1, _ := newRunner(30 + rep)
		NewHybrid(25000).TopK(r1, 8)
		hybridCost += r1.Engine().TMC()

		r2, _ := newRunner(30 + rep)
		NewHybridSPR(12500).TopK(r2, 8) // same grading spend as Hybrid's share
		sprCost += r2.Engine().TMC()
	}
	if sprCost >= hybridCost {
		t.Errorf("HybridSPR cost %d not below Hybrid cost %d", sprCost, hybridCost)
	}
}

func TestHybridAsAlgorithmInterface(t *testing.T) {
	var algs = []topk.Algorithm{NewHybrid(15000), NewHybridSPR(7500)}
	for _, alg := range algs {
		r, _ := newRunner(40)
		res := topk.Run(alg, r, 5)
		if res.Algorithm != alg.Name() || len(res.TopK) != 5 {
			t.Errorf("%s: unexpected result %+v", alg.Name(), res)
		}
		seen := map[int]bool{}
		for _, o := range res.TopK {
			if seen[o] {
				t.Errorf("%s returned duplicate item %d", alg.Name(), o)
			}
			seen[o] = true
		}
	}
}

func TestHybridPanics(t *testing.T) {
	r, _ := newRunner(50)
	assertPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanic("hybrid zero budget", func() { NewHybrid(0).TopK(r, 3) })
	assertPanic("hybrid bad k", func() { NewHybrid(100).TopK(r, 0) })
	assertPanic("hybridspr zero budget", func() { NewHybridSPR(0).TopK(r, 3) })
	assertPanic("hybridspr bad k", func() { NewHybridSPR(100).TopK(r, 0) })
}

func TestGradeFilterKeepsBestGraded(t *testing.T) {
	r, src := newRunner(60)
	// A generous grading budget must keep most of the true top items.
	survivors, means := gradeFilter(r, allItems(src.NumItems()), 20, 60000, 30)
	if len(survivors) != 20 {
		t.Fatalf("kept %d, want 20", len(survivors))
	}
	if len(means) != src.NumItems() {
		t.Fatalf("means cover %d items", len(means))
	}
	if p := precisionAt(survivors, dataset.TopK(src, 8)); p < 0.7 {
		t.Errorf("grade filter kept only %.2f of the true top-8", p)
	}
}

func TestHybridZeroValueFieldsFallBackToDefaults(t *testing.T) {
	// Zero or out-of-range tuning fields must resolve to the documented
	// defaults rather than degenerate behavior.
	r, src := newRunner(70)
	h := &Hybrid{Budget: 15000} // Eta, GradeShare, FilterFactor all zero
	got := h.TopK(r, 5)
	if len(got) != 5 {
		t.Fatalf("returned %d items", len(got))
	}
	if p := precisionAt(got, dataset.TopK(src, 5)); p < 0.4 {
		t.Errorf("default-field hybrid precision %v degenerate", p)
	}

	r2, _ := newRunner(71)
	hs := &HybridSPR{GradeBudget: 7000} // FilterFactor, SPR, Eta zero
	got2 := hs.TopK(r2, 5)
	if len(got2) != 5 {
		t.Fatalf("hybridspr returned %d items", len(got2))
	}
}

func TestHybridDegenerateBudgetFallsBackToGrades(t *testing.T) {
	// A budget too small for any pairwise phase must still return k items
	// ranked by grades alone.
	r, _ := newRunner(72)
	h := NewHybrid(70) // ~1 grade per item, nothing left for pairs
	got := h.TopK(r, 5)
	if len(got) != 5 {
		t.Fatalf("returned %d items", len(got))
	}
	if r.Engine().PairwiseTasks() != 0 {
		t.Errorf("degenerate budget still bought %d pairwise tasks", r.Engine().PairwiseTasks())
	}
}

func TestHybridKeepAllWhenFactorExceedsN(t *testing.T) {
	// FilterFactor·k beyond the item count keeps everything.
	r, src := newRunner(73)
	h := NewHybrid(30000)
	h.FilterFactor = 100
	got := h.TopK(r, 3)
	if len(got) != 3 {
		t.Fatalf("returned %d items", len(got))
	}
	_ = src
}
