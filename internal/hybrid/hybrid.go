// Package hybrid implements the two-phase baselines of the paper's §6.5:
// HYBRID (Khan & Garcia-Molina 2014), which filters items by cheap graded
// judgments and then ranks the survivors with a fixed pairwise workload,
// and HYBRIDSPR, the paper's own variant that replaces the fixed ranking
// phase with the confidence-aware SPR — consistently better NDCG and ~10%
// cheaper.
package hybrid

import (
	"fmt"
	"sort"

	"crowdtopk/internal/compare"
	"crowdtopk/internal/topk"
)

// Hybrid is the grade-filter + pairwise-rank baseline. It is
// budget-driven (not confidence-aware): the paper grants it the same
// budget as SPR's measured TMC.
type Hybrid struct {
	// Budget is the total number of microtasks to spend (> 0).
	Budget int64
	// FilterFactor keeps ⌈FilterFactor·k⌉ items after the grading phase
	// (default 3).
	FilterFactor float64
	// GradeShare is the budget fraction spent on grading (default 0.5).
	GradeShare float64
	// Eta is the batch size for latency accounting (default 30).
	Eta int
}

// NewHybrid returns Hybrid with default parameters and the given budget.
func NewHybrid(budget int64) *Hybrid {
	return &Hybrid{Budget: budget, FilterFactor: 3, GradeShare: 0.5, Eta: 30}
}

// Name implements topk.Algorithm.
func (*Hybrid) Name() string { return "hybrid" }

// TopK implements topk.Algorithm.
func (h *Hybrid) TopK(r *compare.Runner, k int) []int {
	if h.Budget <= 0 {
		panic("hybrid: Hybrid requires a positive budget")
	}
	e := r.Engine()
	n := e.NumItems()
	if k < 1 || k > n {
		panic(fmt.Sprintf("hybrid: k=%d out of range [1,%d]", k, n))
	}
	eta := h.Eta
	if eta <= 0 {
		eta = 30
	}
	share := h.GradeShare
	if share <= 0 || share >= 1 {
		share = 0.5
	}
	factor := h.FilterFactor
	if factor < 1 {
		factor = 3
	}

	// Phase 1: grade every item the same number of times and keep the
	// highest-rated ⌈factor·k⌉ candidates.
	keep := int(factor * float64(k))
	if keep < k {
		keep = k
	}
	if keep > n {
		keep = n
	}
	survivors, gradeOf := gradeFilter(r, allItems(n), keep, int64(share*float64(h.Budget)), eta)

	// Phase 2: a fixed pairwise workload for every survivor pair, ranked
	// by the sum of mean preferences against the other survivors. The
	// budget check uses the runner's per-query counter, so concurrent
	// queries on the same engine don't eat into this query's allowance.
	spent := r.QueryTMC() // includes phase 1
	pairBudget := h.Budget - spent
	numPairs := int64(len(survivors)) * int64(len(survivors)-1) / 2
	perPair := int64(0)
	if numPairs > 0 {
		perPair = pairBudget / numPairs
	}
	if perPair > 0 {
		for a := 0; a < len(survivors); a++ {
			for b := a + 1; b < len(survivors); b++ {
				r.Draw(survivors[a], survivors[b], int(perPair))
			}
		}
		r.Tick(int((perPair + int64(eta) - 1) / int64(eta)))
	}

	score := make(map[int]float64, len(survivors))
	for _, i := range survivors {
		s := 0.0
		for _, j := range survivors {
			if i != j {
				s += e.View(i, j).Mean
			}
		}
		if perPair == 0 {
			// Degenerate budget: fall back to the grades.
			s = gradeOf[i]
		}
		score[i] = s
	}
	sort.SliceStable(survivors, func(a, b int) bool { return score[survivors[a]] > score[survivors[b]] })
	return survivors[:k]
}

// HybridSPR keeps HYBRID's grading filter but ranks the survivors with the
// confidence-aware SPR (§6.5). Only the grading phase is budget-driven;
// the ranking phase spends what its confidence targets require.
type HybridSPR struct {
	// GradeBudget is the number of graded microtasks to spend on
	// filtering (> 0). For a fair comparison with Hybrid, use the same
	// value as Hybrid's grading share.
	GradeBudget int64
	// FilterFactor keeps ⌈FilterFactor·k⌉ items after grading (default 3).
	FilterFactor float64
	// SPR configures the ranking phase (default topk.NewSPR()).
	SPR *topk.SPR
	// Eta is the batch size for latency accounting (default 30).
	Eta int
}

// NewHybridSPR returns HybridSPR with default parameters and the given
// grading budget.
func NewHybridSPR(gradeBudget int64) *HybridSPR {
	return &HybridSPR{GradeBudget: gradeBudget, FilterFactor: 3, SPR: topk.NewSPR(), Eta: 30}
}

// Name implements topk.Algorithm.
func (*HybridSPR) Name() string { return "hybridspr" }

// TopK implements topk.Algorithm.
func (h *HybridSPR) TopK(r *compare.Runner, k int) []int {
	if h.GradeBudget <= 0 {
		panic("hybrid: HybridSPR requires a positive grading budget")
	}
	n := r.Engine().NumItems()
	if k < 1 || k > n {
		panic(fmt.Sprintf("hybrid: k=%d out of range [1,%d]", k, n))
	}
	eta := h.Eta
	if eta <= 0 {
		eta = 30
	}
	factor := h.FilterFactor
	if factor < 1 {
		factor = 3
	}
	spr := h.SPR
	if spr == nil {
		spr = topk.NewSPR()
	}

	keep := int(factor * float64(k))
	if keep < k {
		keep = k
	}
	if keep > n {
		keep = n
	}
	survivors, _ := gradeFilter(r, allItems(n), keep, h.GradeBudget, eta)
	return spr.TopKSubset(r, survivors, k)
}

// gradeFilter grades every item budget/n times (at least once), in
// parallel batches, and returns the keep highest-rated items along with
// the grade means.
func gradeFilter(r *compare.Runner, items []int, keep int, budget int64, eta int) ([]int, map[int]float64) {
	per := int(budget / int64(len(items)))
	if per < 1 {
		per = 1
	}
	mean := make(map[int]float64, len(items))
	for _, o := range items {
		s := 0.0
		bought := 0
		for g := 0; g < per; g++ {
			v, ok := r.Grade(o)
			if !ok {
				break // global spending cap exhausted: grade on what we have
			}
			s += v
			bought++
		}
		if bought == 0 {
			mean[o] = 0
			continue
		}
		mean[o] = s / float64(bought)
	}
	// All items are graded in parallel; rounds follow the batch model.
	r.Tick((per + eta - 1) / eta)

	sorted := append([]int(nil), items...)
	sort.SliceStable(sorted, func(a, b int) bool { return mean[sorted[a]] > mean[sorted[b]] })
	return sorted[:keep], mean
}

func allItems(n int) []int {
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	return items
}
