package crowd

import (
	"math"
	"math/rand"
	"testing"
)

func newSimPlatformOracle(n int, workers int, seed int64) *PlatformOracle {
	base := gaussOracle{n: n, sigma: 0.2}
	return NewPlatformOracle(n, NewSimPlatform(base, workers, seed))
}

func TestPlatformOracleSingleTask(t *testing.T) {
	po := newSimPlatformOracle(10, 4, 1)
	if po.NumItems() != 10 {
		t.Fatalf("NumItems = %d", po.NumItems())
	}
	rng := rand.New(rand.NewSource(2))
	v := po.Preference(rng, 0, 9)
	if v < -1 || v > 1 {
		t.Fatalf("preference %v out of range", v)
	}
}

func TestPlatformOracleBatchThroughEngine(t *testing.T) {
	po := newSimPlatformOracle(10, 8, 3)
	e := NewEngine(po, rand.New(rand.NewSource(4)))
	v := e.Draw(0, 9, 600) // answered by 8 concurrent workers
	if v.N != 600 {
		t.Fatalf("bag N = %d", v.N)
	}
	// Item 0 is the best in gaussOracle; the mean must say so.
	if v.Mean <= 0 {
		t.Errorf("mean %v not positive toward the better item", v.Mean)
	}
	if e.TMC() != 600 {
		t.Errorf("TMC = %d", e.TMC())
	}
}

func TestPlatformOracleStatisticsMatchBase(t *testing.T) {
	// The platform route must not distort the judgment distribution.
	po := newSimPlatformOracle(10, 6, 5)
	e1 := NewEngine(po, rand.New(rand.NewSource(6)))
	vPlat := e1.Draw(2, 7, 4000)

	base := gaussOracle{n: 10, sigma: 0.2}
	e2 := NewEngine(base, rand.New(rand.NewSource(7)))
	vBase := e2.Draw(2, 7, 4000)

	if math.Abs(vPlat.Mean-vBase.Mean) > 0.02 {
		t.Errorf("platform mean %v far from base %v", vPlat.Mean, vBase.Mean)
	}
	if math.Abs(vPlat.SD-vBase.SD) > 0.02 {
		t.Errorf("platform SD %v far from base %v", vPlat.SD, vBase.SD)
	}
}

func TestSimPlatformCollectTwiceFails(t *testing.T) {
	sp := NewSimPlatform(gaussOracle{n: 4, sigma: 0.1}, 2, 8)
	id, err := sp.Post([]Task{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Collect(id); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Collect(id); err == nil {
		t.Error("double collection succeeded")
	}
	if _, err := sp.Collect(999); err == nil {
		t.Error("unknown batch collected")
	}
}

func TestPlatformOraclePanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanics("small n", func() { NewPlatformOracle(1, NewSimPlatform(gaussOracle{n: 2, sigma: 0.1}, 1, 1)) })
	assertPanics("nil platform", func() { NewPlatformOracle(5, nil) })
	assertPanics("no workers", func() { NewSimPlatform(gaussOracle{n: 2, sigma: 0.1}, 0, 1) })
}

func TestPlatformOracleFullQueryPath(t *testing.T) {
	// The adapter must carry a complete engine workload: draw across many
	// pairs with interleaved batch sizes.
	po := newSimPlatformOracle(20, 4, 9)
	e := NewEngine(po, rand.New(rand.NewSource(10)))
	for i := 1; i < 20; i++ {
		e.Draw(0, i, 30)
	}
	e.Tick(1)
	for i := 1; i < 20; i++ {
		e.DrawOne(0, i)
	}
	if e.TMC() != 19*31 {
		t.Errorf("TMC = %d, want %d", e.TMC(), 19*31)
	}
}
