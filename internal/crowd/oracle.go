package crowd

import "math/rand"

// Oracle simulates the crowd for one dataset: each call is one microtask
// answered by one independent worker.
//
// Implementations must be safe for concurrent calls on different pairs:
// the engine executes comparison waves on several goroutines, each passing
// its own pair-private rng. Stateless oracles (every dataset in this
// repository) are trivially safe; stateful ones (Replay) synchronize
// internally.
type Oracle interface {
	// NumItems returns the number of items the oracle can judge.
	NumItems() int
	// Preference returns one pairwise preference judgment v(o_i, o_j) in
	// [-1, 1]. A positive value means the worker prefers item i, a negative
	// value item j. Implementations must be antisymmetric in distribution:
	// Preference(rng, i, j) ~ -Preference(rng, j, i).
	Preference(rng *rand.Rand, i, j int) float64
}

// Grader is implemented by oracles that can also answer graded (absolute
// rating) microtasks, used by the graded judgment model and the Hybrid
// baselines. Grades are on the oracle's native scale; callers only compare
// averages, so the scale does not matter.
type Grader interface {
	Grade(rng *rand.Rand, i int) float64
}

// TruthOracle is implemented by oracles that know the underlying total
// order, used for ground-truth evaluation and for the infimum-cost
// calculator (never by the query algorithms themselves).
type TruthOracle interface {
	// TrueRank returns the 0-based rank of item i in the underlying total
	// order Ω (0 is best).
	TrueRank(i int) int
	// PairMoments returns the mean and standard deviation of the preference
	// distribution for the pair (i, j), oriented so a positive mean favors
	// item i.
	PairMoments(i, j int) (mu, sigma float64)
}

// FuncOracle adapts plain functions to the Oracle interface; handy in tests
// and examples.
type FuncOracle struct {
	N    int
	Pref func(rng *rand.Rand, i, j int) float64
}

// NumItems implements Oracle.
func (f FuncOracle) NumItems() int { return f.N }

// Preference implements Oracle.
func (f FuncOracle) Preference(rng *rand.Rand, i, j int) float64 {
	return f.Pref(rng, i, j)
}

// Preferences implements BatchOracle by looping Pref, so FuncOracle tests
// exercise the engine's batch path with trivially stream-equivalent
// semantics.
func (f FuncOracle) Preferences(rng *rand.Rand, i, j int, dst []float64) {
	for t := range dst {
		dst[t] = f.Pref(rng, i, j)
	}
}
