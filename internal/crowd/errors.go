package crowd

import (
	"errors"
	"fmt"
)

// The error taxonomy of the platform layer. Every failure a crowd market
// can inflict on a query maps onto one of these sentinels, so callers can
// branch with errors.Is regardless of how many wrapping layers (retry,
// circuit breaker, oracle adapter, engine) the error climbed through.
var (
	// ErrPlatformClosed reports an operation on a platform after Close.
	ErrPlatformClosed = errors.New("crowd: platform closed")
	// ErrBatchTimeout reports a batch whose collection exceeded the
	// per-attempt deadline.
	ErrBatchTimeout = errors.New("crowd: batch collection timed out")
	// ErrCircuitOpen reports a platform whose circuit breaker has opened:
	// too many consecutive batches failed, and no more money will be sent
	// to the platform until the breaker is reset.
	ErrCircuitOpen = errors.New("crowd: platform circuit breaker open")
	// ErrBatchIncomplete reports a batch that stayed short of its posted
	// task count after all retries: some microtasks were never answered
	// (or answered only with invalid values).
	ErrBatchIncomplete = errors.New("crowd: batch incomplete after retries")
	// ErrPlatformFailure reports an unrecoverable platform error — the
	// degraded-query cause recorded by the engine's failure latch.
	ErrPlatformFailure = errors.New("crowd: platform failure")
)

// FailureEvent is one entry of a platform failure log: what went wrong,
// on which batch, at which attempt. Events deliberately carry no wall
// clock — under a fixed fault schedule the log is deterministic, which is
// what lets chaos tests compare runs byte for byte.
type FailureEvent struct {
	// Batch is the (outer) batch id the event belongs to; -1 when the
	// failure is not attributable to one batch (e.g. a post rejected by an
	// open circuit breaker before an id was assigned).
	Batch int `json:"batch"`
	// Attempt is the 1-based attempt number within the batch's retry loop.
	Attempt int `json:"attempt"`
	// Kind classifies the event: "post-error", "collect-error", "timeout",
	// "partial", "quarantine", "exhausted", "breaker-open".
	Kind string `json:"kind"`
	// Missing is how many of the batch's tasks were still unanswered when
	// the event was recorded.
	Missing int `json:"missing"`
	// Err is the rendered underlying error, if any.
	Err string `json:"err,omitempty"`
}

// String renders the event for logs and error messages.
func (ev FailureEvent) String() string {
	s := fmt.Sprintf("batch %d attempt %d: %s", ev.Batch, ev.Attempt, ev.Kind)
	if ev.Missing > 0 {
		s += fmt.Sprintf(" (%d missing)", ev.Missing)
	}
	if ev.Err != "" {
		s += ": " + ev.Err
	}
	return s
}

// FailureReporter is implemented by platform-layer components that keep a
// failure log: the resilient platform adapter, and the platform oracle
// that aggregates its own quarantine events with the platform's log. The
// returned slice is a copy; callers may keep it.
type FailureReporter interface {
	Failures() []FailureEvent
}
