package crowd

import (
	"fmt"
	"testing"

	"crowdtopk/internal/obs"
)

// TestFailureLogRing pins the bounded-log semantics: the newest events are
// retained oldest-first, evictions are counted, and the telemetry mirror
// sees every drop.
func TestFailureLogRing(t *testing.T) {
	reg := obs.NewRegistry()
	drops := reg.Counter(obs.MFailuresDropped)
	fl := newFailureLog(3)
	fl.instrument(drops)
	for i := 0; i < 5; i++ {
		fl.append(FailureEvent{Batch: i, Kind: "partial"})
	}
	got := fl.snapshot()
	if len(got) != 3 {
		t.Fatalf("retained %d events, want 3", len(got))
	}
	for i, ev := range got {
		if ev.Batch != i+2 {
			t.Fatalf("event %d is batch %d, want %d (oldest-first)", i, ev.Batch, i+2)
		}
	}
	if d := fl.droppedCount(); d != 2 {
		t.Fatalf("dropped = %d, want 2", d)
	}
	if v := drops.Value(); v != 2 {
		t.Fatalf("drop counter = %d, want 2", v)
	}
}

// TestFailureLogDefaultAndUnbounded checks the limit resolution: 0 means
// the default bound, negative disables the bound.
func TestFailureLogDefaultAndUnbounded(t *testing.T) {
	if fl := newFailureLog(0); fl.limit != DefaultFailureLogLimit {
		t.Fatalf("limit = %d, want %d", fl.limit, DefaultFailureLogLimit)
	}
	fl := newFailureLog(-1)
	for i := 0; i < 2*DefaultFailureLogLimit; i++ {
		fl.append(FailureEvent{Batch: i})
	}
	if n, d := len(fl.snapshot()), fl.droppedCount(); n != 2*DefaultFailureLogLimit || d != 0 {
		t.Fatalf("unbounded log kept %d dropped %d, want all and none", n, d)
	}
}

// TestResilientFailureLogBounded drives a resilient platform through more
// failures than its configured log limit and checks the log stays bounded
// while the drop accounting and the event counters keep the full tally.
func TestResilientFailureLogBounded(t *testing.T) {
	var steps []scriptStep
	for i := 0; i < 10; i++ {
		steps = append(steps, scriptStep{postErr: fmt.Errorf("down %d", i)})
	}
	sp := newScriptPlatform(steps...)
	policy := testPolicy(2)
	policy.FailureLogLimit = 4
	rp := NewResilientPlatform(sp, policy)
	reg := obs.NewRegistry()
	rp.Instrument(NewPlatformInstruments(reg))

	for b := 0; b < 5; b++ {
		id, err := rp.Post(tasksFor(2))
		if err != nil {
			break // breaker opened; later posts fail fast
		}
		rp.Collect(id)
	}

	if n := len(rp.Failures()); n > 4 {
		t.Fatalf("failure log holds %d events, want <= 4", n)
	}
	dropped := rp.DroppedFailures()
	if dropped == 0 {
		t.Fatal("expected the bounded log to evict events")
	}
	s := reg.Snapshot()
	recorded := s.Counter(obs.MFailureEvents)
	if recorded != int64(len(rp.Failures()))+dropped {
		t.Fatalf("event counter %d != retained %d + dropped %d",
			recorded, len(rp.Failures()), dropped)
	}
	if s.Counter(obs.MFailuresDropped) != dropped {
		t.Fatalf("drop counter %d != DroppedFailures %d",
			s.Counter(obs.MFailuresDropped), dropped)
	}
}

// TestPlatformInstrumentsClassify checks the failure-kind routing and the
// breaker gauge transitions on a scripted outage.
func TestPlatformInstrumentsClassify(t *testing.T) {
	var steps []scriptStep
	for i := 0; i < 12; i++ {
		steps = append(steps, scriptStep{postErr: fmt.Errorf("down")})
	}
	sp := newScriptPlatform(steps...)
	rp := NewResilientPlatform(sp, testPolicy(2))
	reg := obs.NewRegistry()
	rp.Instrument(NewPlatformInstruments(reg))

	for b := 0; b < 4 && !rp.BreakerOpen(); b++ {
		if id, err := rp.Post(tasksFor(1)); err == nil {
			rp.Collect(id)
		}
	}
	if !rp.BreakerOpen() {
		t.Fatal("breaker should have opened")
	}
	s := reg.Snapshot()
	if s.Counter(obs.MPostErrors) == 0 || s.Counter(obs.MExhausted) == 0 {
		t.Fatalf("kind counters not routed: %+v", s.Counters)
	}
	if s.Counter(obs.MBreakerOpens) != 1 {
		t.Fatalf("breaker opens = %d, want 1", s.Counter(obs.MBreakerOpens))
	}
	if s.Gauges[obs.MBreakerOpen] != 1 {
		t.Fatal("breaker gauge should read 1 while open")
	}
	rp.Reset()
	if v := reg.Snapshot().Gauges[obs.MBreakerOpen]; v != 0 {
		t.Fatalf("breaker gauge after Reset = %d, want 0", v)
	}
}
