package crowd

import (
	"math"
	"math/rand"
	"testing"

	"crowdtopk/internal/stats"
)

func poolOver(cfg WorkerPoolConfig) *WorkerPool {
	return NewWorkerPool(gaussOracle{n: 10, sigma: 0.1}, cfg)
}

func TestWorkerPoolAllReliableMatchesBase(t *testing.T) {
	p := poolOver(WorkerPoolConfig{Workers: 50, Seed: 1})
	if p.Workers() != 50 {
		t.Fatalf("Workers = %d", p.Workers())
	}
	rng := rand.New(rand.NewSource(2))
	var pool, base stats.Running
	baseOracle := gaussOracle{n: 10, sigma: 0.1}
	for k := 0; k < 5000; k++ {
		pool.Add(p.Preference(rng, 0, 9))
		base.Add(baseOracle.Preference(rng, 0, 9))
	}
	if math.Abs(pool.Mean()-base.Mean()) > 0.02 {
		t.Errorf("reliable pool shifted the mean: %v vs %v", pool.Mean(), base.Mean())
	}
}

func TestWorkerPoolSpammersAddNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	clean := poolOver(WorkerPoolConfig{Workers: 50, Seed: 4})
	noisy := poolOver(WorkerPoolConfig{Workers: 50, SpammerFraction: 0.5, Seed: 4})
	var vc, vn stats.Running
	for k := 0; k < 8000; k++ {
		vc.Add(clean.Preference(rng, 0, 9))
		vn.Add(noisy.Preference(rng, 0, 9))
	}
	if vn.SD() <= vc.SD() {
		t.Errorf("spammers did not widen the spread: %v vs %v", vn.SD(), vc.SD())
	}
	// Spammers are unbiased: the mean shrinks toward 0 but keeps its sign.
	if vn.Mean() <= 0 || vn.Mean() >= vc.Mean() {
		t.Errorf("spammer mean %v not in (0, %v)", vn.Mean(), vc.Mean())
	}
}

func TestWorkerPoolAdversariesFlipSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	hostile := poolOver(WorkerPoolConfig{Workers: 50, AdversaryFraction: 1, Seed: 6})
	var v stats.Running
	for k := 0; k < 4000; k++ {
		v.Add(hostile.Preference(rng, 0, 9))
	}
	if v.Mean() >= 0 {
		t.Errorf("all-adversary pool kept positive mean %v", v.Mean())
	}
}

func TestWorkerPoolScaleKeepsDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	scaled := poolOver(WorkerPoolConfig{Workers: 50, ScaleSD: 0.6, Seed: 8})
	var v stats.Running
	for k := 0; k < 6000; k++ {
		x := scaled.Preference(rng, 0, 9)
		if x < -1 || x > 1 {
			t.Fatalf("scaled preference %v outside range", x)
		}
		v.Add(x)
	}
	if v.Mean() <= 0 {
		t.Errorf("scaling flipped the direction: mean %v", v.Mean())
	}
}

func TestWorkerPoolGrading(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := poolOver(WorkerPoolConfig{Workers: 20, SpammerFraction: 0.2, Seed: 10})
	for k := 0; k < 100; k++ {
		p.Grade(rng, 3) // must not panic; base gaussOracle grades
	}
}

func TestWorkerPoolValidation(t *testing.T) {
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanics("nil base", func() { NewWorkerPool(nil, WorkerPoolConfig{}) })
	assertPanics("fractions", func() {
		poolOver(WorkerPoolConfig{SpammerFraction: 0.7, AdversaryFraction: 0.7})
	})
	assertPanics("grade unsupported", func() {
		p := NewWorkerPool(FuncOracle{N: 2, Pref: func(*rand.Rand, int, int) float64 { return 0 }}, WorkerPoolConfig{})
		p.Grade(rand.New(rand.NewSource(1)), 0)
	})
}

func TestWorkerPoolEngineIntegration(t *testing.T) {
	// The decorated oracle composes with the engine like any other.
	p := poolOver(WorkerPoolConfig{Workers: 30, SpammerFraction: 0.1, Seed: 11})
	e := NewEngine(p, rand.New(rand.NewSource(12)))
	v := e.Draw(0, 9, 500)
	if v.Mean <= 0 {
		t.Errorf("best-vs-worst mean %v not positive under 10%% spammers", v.Mean)
	}
	if e.TMC() != 500 {
		t.Errorf("TMC = %d", e.TMC())
	}
}
