package crowd

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	qlog "crowdtopk/internal/obs/log"
)

// RetryPolicy configures the resilient platform adapter: how long one
// collection attempt may take, how often a batch is retried, how the
// backoff between attempts grows, and when the circuit breaker opens.
type RetryPolicy struct {
	// MaxAttempts bounds post+collect cycles per batch (default 4). Each
	// attempt re-posts only the tasks still missing.
	MaxAttempts int
	// BaseBackoff is the delay before the second attempt (default 50ms);
	// it doubles per attempt up to MaxBackoff (default 2s). The actual
	// delay is jittered deterministically in [0.5, 1.0) of the nominal
	// value, from a stream seeded by JitterSeed and the batch id.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// CollectTimeout is the per-attempt deadline of one collection
	// (context-based). 0 disables the deadline — then a straggling batch
	// blocks forever, as with a bare platform.
	CollectTimeout time.Duration
	// FailureThreshold is how many consecutive batches must exhaust their
	// retries before the circuit breaker opens (default 3). An open
	// breaker fails every Post fast with ErrCircuitOpen — no more money
	// is sent to a platform that is down — until Reset is called.
	FailureThreshold int
	// JitterSeed roots the deterministic backoff jitter (default 1).
	JitterSeed int64
	// FailureLogLimit bounds the in-memory failure-event log: once full,
	// new events evict the oldest and the eviction count is reported via
	// DroppedFailures (and the telemetry drop counter). 0 means
	// DefaultFailureLogLimit; negative removes the bound.
	FailureLogLimit int
	// Sleep is the delay function, overridable so chaos tests run the
	// full retry machinery without wall-clock waits. nil means time.Sleep.
	Sleep func(time.Duration)
}

// withDefaults resolves zero fields to the defaults above.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 50 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
	if p.FailureThreshold <= 0 {
		p.FailureThreshold = 3
	}
	if p.JitterSeed == 0 {
		p.JitterSeed = 1
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// resBatch is the per-batch state of the resilient adapter: the expected
// task multiset, the valid answers accepted so far, and the inner batch
// ids still awaiting collection.
type resBatch struct {
	tasks    []Task
	answers  []Answer
	pending  []int // inner batch ids not yet successfully collected
	jitter   *rand.Rand
	attempts int
}

// ResilientPlatform makes any Platform survivable: it enforces a
// per-attempt collection deadline, validates and deduplicates collected
// answers against the posted task multiset, re-posts only the tasks still
// missing, retries with exponential backoff and deterministic jitter, and
// opens a circuit breaker after too many consecutive batch failures so a
// dead platform stops consuming money immediately instead of timing out
// purchase after purchase.
//
// The adapter is transparent on the happy path: a healthy platform sees
// exactly one Post and one Collect per batch. It is safe for concurrent
// use on distinct batches, like the Platform contract requires.
type ResilientPlatform struct {
	inner  Platform
	cctx   ContextPlatform // inner's context-aware collection, if any
	policy RetryPolicy

	mu          sync.Mutex
	nextID      int
	batches     map[int]*resBatch
	consecFails int
	open        bool
	reposts     int64

	failures *failureLog          // bounded event ring, own lock
	ins      *PlatformInstruments // metric bundle; nil = telemetry off
	log      *qlog.Logger         // rate-limited failure reporting; nil = off
}

// NewResilientPlatform wraps the platform with the given policy.
func NewResilientPlatform(inner Platform, policy RetryPolicy) *ResilientPlatform {
	if inner == nil {
		panic("crowd: NewResilientPlatform requires a platform")
	}
	rp := &ResilientPlatform{
		inner:   inner,
		policy:  policy.withDefaults(),
		batches: make(map[int]*resBatch),
	}
	rp.failures = newFailureLog(rp.policy.FailureLogLimit)
	rp.cctx, _ = inner.(ContextPlatform)
	return rp
}

// Instrument attaches the resilience metric bundle (nil detaches). Call
// before concurrent use; events observe either the old bundle or the new.
func (rp *ResilientPlatform) Instrument(ins *PlatformInstruments) {
	rp.ins = ins
	if ins != nil {
		rp.failures.instrument(ins.FailuresDrop)
	} else {
		rp.failures.instrument(nil)
	}
}

// Post implements Platform. A post rejected by the open circuit breaker
// costs nothing and fails fast with ErrCircuitOpen.
func (rp *ResilientPlatform) Post(tasks []Task) (int, error) {
	rp.mu.Lock()
	if rp.open {
		rp.mu.Unlock()
		rp.record(FailureEvent{
			Batch: -1, Attempt: 1, Kind: "breaker-open",
			Missing: len(tasks), Err: ErrCircuitOpen.Error(),
		})
		return 0, ErrCircuitOpen
	}
	id := rp.nextID
	rp.nextID++
	b := &resBatch{
		tasks:  append([]Task(nil), tasks...),
		jitter: rand.New(rand.NewSource(rp.policy.JitterSeed + int64(id)*0x9e37)),
	}
	rp.batches[id] = b
	rp.mu.Unlock()

	inner, err := rp.inner.Post(tasks)
	if err != nil {
		// The very first post failed; Collect will retry it from scratch.
		rp.record(FailureEvent{Batch: id, Attempt: 1, Kind: "post-error",
			Missing: len(tasks), Err: err.Error()})
		return id, nil
	}
	b.pending = append(b.pending, inner)
	return id, nil
}

// Collect implements Platform: it drives the batch's retry loop to
// completion. On success the full, validated answer set is returned. On
// exhaustion the answers gathered so far are returned together with an
// error wrapping ErrBatchIncomplete (or the final attempt's error), so
// callers can keep the partial evidence — every answer was paid for.
func (rp *ResilientPlatform) Collect(batch int) ([]Answer, error) {
	rp.mu.Lock()
	b, ok := rp.batches[batch]
	delete(rp.batches, batch)
	rp.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("crowd: unknown or already collected batch %d", batch)
	}

	var lastErr error
	for b.attempts < rp.policy.MaxAttempts {
		b.attempts++
		if b.attempts > 1 {
			d := rp.backoff(b)
			if pi := rp.ins; pi != nil {
				pi.BackoffNs.Add(int64(d))
			}
			rp.policy.Sleep(d)
		}

		// Ensure the missing tasks are in flight: the first attempt may
		// have to re-post after a failed Post, later attempts re-post only
		// the shortfall.
		if missing := rp.missing(b); len(b.pending) == 0 && len(missing) > 0 {
			inner, err := rp.inner.Post(missing)
			if err != nil {
				lastErr = err
				rp.record(FailureEvent{Batch: batch, Attempt: b.attempts,
					Kind: "post-error", Missing: len(missing), Err: err.Error()})
				continue
			}
			rp.reportRepost()
			b.pending = append(b.pending, inner)
		}

		// Collect every in-flight inner batch of this attempt.
		stillPending := b.pending[:0]
		attemptErr := error(nil)
		for _, inner := range b.pending {
			answers, err := rp.collectInner(inner)
			if err != nil {
				attemptErr = err
				kind := "collect-error"
				if isTimeout(err) {
					kind = "timeout"
					// A timed-out inner batch may still complete later;
					// keep it pending so a retry can pick it up without
					// re-buying if the platform supports late collection.
					if rp.cctx != nil {
						stillPending = append(stillPending, inner)
					}
				}
				rp.record(FailureEvent{Batch: batch, Attempt: b.attempts,
					Kind: kind, Missing: len(rp.missing(b)), Err: err.Error()})
				continue
			}
			rp.accept(batch, b, answers)
		}
		b.pending = stillPending

		missing := rp.missing(b)
		if len(missing) == 0 {
			rp.settle(true)
			return b.answers, nil
		}
		if attemptErr == nil {
			// Clean collection, short batch: the platform silently lost
			// tasks. Record and retry the shortfall.
			rp.record(FailureEvent{Batch: batch, Attempt: b.attempts,
				Kind: "partial", Missing: len(missing)})
		} else {
			lastErr = attemptErr
		}
		// Re-post the shortfall for the next attempt. A straggling inner
		// batch may still be pending alongside the re-post; whichever
		// answers first fills the gap, and surplus answers from the other
		// are quarantined by accept — the engine is never double-charged.
		if b.attempts < rp.policy.MaxAttempts {
			inner, err := rp.inner.Post(missing)
			if err != nil {
				lastErr = err
				rp.record(FailureEvent{Batch: batch, Attempt: b.attempts,
					Kind: "post-error", Missing: len(missing), Err: err.Error()})
				continue
			}
			rp.reportRepost()
			b.pending = append(b.pending, inner)
		}
	}

	rp.settle(false)
	missing := len(rp.missing(b))
	rp.record(FailureEvent{Batch: batch, Attempt: b.attempts, Kind: "exhausted",
		Missing: missing, Err: errText(lastErr)})
	err := fmt.Errorf("crowd: batch %d: %d of %d tasks unanswered after %d attempts: %w",
		batch, missing, len(b.tasks), b.attempts, ErrBatchIncomplete)
	if lastErr != nil {
		err = fmt.Errorf("%w (last error: %v)", err, lastErr)
	}
	return b.answers, err
}

// collectInner collects one inner batch under the per-attempt deadline.
func (rp *ResilientPlatform) collectInner(inner int) ([]Answer, error) {
	if rp.policy.CollectTimeout <= 0 {
		return rp.inner.Collect(inner)
	}
	ctx, cancel := context.WithTimeout(context.Background(), rp.policy.CollectTimeout)
	defer cancel()
	if rp.cctx != nil {
		return rp.cctx.CollectContext(ctx, inner)
	}
	// Fallback for context-unaware platforms: collect on a goroutine and
	// abandon it at the deadline. The goroutine drains into a buffered
	// channel, so it terminates as soon as the inner Collect returns.
	type res struct {
		a   []Answer
		err error
	}
	ch := make(chan res, 1)
	go func() {
		a, err := rp.inner.Collect(inner)
		ch <- res{a, err}
	}()
	select {
	case r := <-ch:
		return r.a, r.err
	case <-ctx.Done():
		return nil, fmt.Errorf("crowd: collecting inner batch %d: %w", inner, ErrBatchTimeout)
	}
}

// accept merges valid answers into the batch, capped by the expected task
// multiset; surplus and mis-paired answers are quarantined as events.
func (rp *ResilientPlatform) accept(batch int, b *resBatch, answers []Answer) {
	// Count how many answers each pair still needs, orientation-free.
	need := make(map[pairKey]int, len(b.tasks))
	for _, t := range b.tasks {
		need[keyOf(t.I, t.J)]++
	}
	for _, a := range b.answers {
		need[keyOf(a.Task.I, a.Task.J)]--
	}
	for _, a := range answers {
		k := keyOf(a.Task.I, a.Task.J)
		n, expected := need[k]
		if _, okv := validPairAnswer(a, a.Task.I, a.Task.J); !okv || !expected || a.Task.I == a.Task.J {
			rp.record(FailureEvent{Batch: batch, Attempt: b.attempts, Kind: "quarantine",
				Err: fmt.Sprintf("invalid answer: task (%d,%d) value %v", a.Task.I, a.Task.J, a.Value)})
			continue
		}
		if n <= 0 {
			rp.record(FailureEvent{Batch: batch, Attempt: b.attempts, Kind: "quarantine",
				Err: fmt.Sprintf("surplus answer: task (%d,%d)", a.Task.I, a.Task.J)})
			continue
		}
		need[k] = n - 1
		b.answers = append(b.answers, a)
	}
}

// missing returns the tasks not yet covered by accepted answers.
func (rp *ResilientPlatform) missing(b *resBatch) []Task {
	have := make(map[pairKey]int, len(b.tasks))
	for _, a := range b.answers {
		have[keyOf(a.Task.I, a.Task.J)]++
	}
	var out []Task
	for _, t := range b.tasks {
		k := keyOf(t.I, t.J)
		if have[k] > 0 {
			have[k]--
			continue
		}
		out = append(out, t)
	}
	return out
}

// backoff returns the jittered exponential delay before the next attempt.
func (rp *ResilientPlatform) backoff(b *resBatch) time.Duration {
	d := rp.policy.BaseBackoff << uint(b.attempts-2)
	if d > rp.policy.MaxBackoff || d <= 0 {
		d = rp.policy.MaxBackoff
	}
	// Deterministic jitter in [0.5, 1.0): same seed, same batch, same
	// attempt — same delay, so fault schedules replay identically.
	return time.Duration((0.5 + 0.5*b.jitter.Float64()) * float64(d))
}

// settle updates the circuit breaker after a batch completes: success
// closes the failure streak, failure lengthens it and may open the
// breaker.
func (rp *ResilientPlatform) settle(success bool) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if success {
		rp.consecFails = 0
		return
	}
	rp.consecFails++
	if rp.consecFails >= rp.policy.FailureThreshold && !rp.open {
		rp.open = true
		rp.failures.append(FailureEvent{
			Batch: -1, Kind: "breaker-open",
			Err: fmt.Sprintf("%d consecutive batch failures", rp.consecFails),
		})
		if pi := rp.ins; pi != nil {
			pi.FailureEvents.Inc()
			pi.BreakerOpens.Inc()
			pi.BreakerOpen.Set(1)
		}
	}
}

// BreakerOpen reports whether the circuit breaker is open.
func (rp *ResilientPlatform) BreakerOpen() bool {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return rp.open
}

// Reset closes the circuit breaker and zeroes the failure streak, e.g.
// after the operator confirmed the platform recovered.
func (rp *ResilientPlatform) Reset() {
	rp.mu.Lock()
	rp.open = false
	rp.consecFails = 0
	rp.mu.Unlock()
	if pi := rp.ins; pi != nil {
		pi.BreakerOpen.Set(0)
	}
}

// Failures implements FailureReporter. The log is a bounded ring: when
// more than the configured limit of events occurred, the oldest were
// evicted (see DroppedFailures).
func (rp *ResilientPlatform) Failures() []FailureEvent {
	return rp.failures.snapshot()
}

// DroppedFailures returns how many failure events the bounded log evicted.
func (rp *ResilientPlatform) DroppedFailures() int64 {
	return rp.failures.droppedCount()
}

// Reposts returns how many shortfall re-posts the adapter issued — the
// retry traffic a flaky platform caused.
func (rp *ResilientPlatform) Reposts() int64 {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return rp.reposts
}

// Close implements Closer by closing the inner platform, when it can be
// closed.
func (rp *ResilientPlatform) Close() error {
	if c, ok := rp.inner.(Closer); ok {
		return c.Close()
	}
	return nil
}

// SetLogger wires structured logging of failure events (rate-limited —
// retry storms burst). Nil disables. Call before concurrent use.
func (rp *ResilientPlatform) SetLogger(lg *qlog.Logger) {
	rp.log = lg.With("component", "platform").Limited("platform-failure", 2, 10)
}

func (rp *ResilientPlatform) record(ev FailureEvent) {
	rp.failures.append(ev)
	rp.ins.classify(ev.Kind)
	rp.log.Warn("platform failure", "batch", ev.Batch, "attempt", ev.Attempt,
		"kind", ev.Kind, "missing", ev.Missing, "err", ev.Err)
}

func (rp *ResilientPlatform) reportRepost() {
	rp.mu.Lock()
	rp.reposts++
	rp.mu.Unlock()
	if pi := rp.ins; pi != nil {
		pi.Reposts.Inc()
	}
}

func isTimeout(err error) bool {
	return errors.Is(err, ErrBatchTimeout) || errors.Is(err, context.DeadlineExceeded)
}

func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
