package crowd

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// ErrInjectedFault is the root of every error FaultyPlatform fabricates,
// so chaos tests can tell injected failures from real bugs.
var ErrInjectedFault = errors.New("crowd: injected fault")

// FaultConfig schedules the misbehaviour of a FaultyPlatform. All rates
// are probabilities in [0, 1], drawn from a deterministic stream keyed by
// the Seed and the batch's pair identity — the same pair's n-th batch
// always suffers the same faults, regardless of how concurrent batches
// interleave. That is what makes a fault schedule replayable.
type FaultConfig struct {
	// Seed roots the fault schedule (default 1).
	Seed int64
	// Drop is the per-answer probability of the answer being silently
	// lost: the batch comes back short.
	Drop float64
	// Duplicate is the per-answer probability of the answer arriving
	// twice (the duplicate is appended to the batch).
	Duplicate float64
	// Flip is the per-answer probability of the answer being reported in
	// the flipped orientation — task reversed, value negated. A legal
	// presentation the adapter must normalize, not an error.
	Flip float64
	// Mispair is the per-answer probability of the answer's task being
	// rewritten to a pair that was never posted — garbage the validation
	// layer must quarantine.
	Mispair float64
	// Malformed is the per-answer probability of the value being replaced
	// by NaN or a value outside [-1, 1].
	Malformed float64
	// Straggle is the per-batch probability of the batch never returning:
	// collection blocks until its context is cancelled (a per-batch
	// deadline turns it into a timeout). Without a deadline a straggler
	// blocks forever, so straggler schedules require CollectTimeout > 0
	// in the retry policy.
	Straggle float64
	// PostError and CollectError are the per-batch probabilities of the
	// respective operation failing once with a transient error.
	PostError    float64
	CollectError float64
	// FailAfterPosts, when positive, makes the platform fail permanently
	// (every Post and every Collect errors) once that many batches have
	// been posted — the "market went down mid-query" scenario.
	FailAfterPosts int
}

// faultPlan is the decision set for one posted batch, drawn up-front from
// the batch's deterministic stream.
type faultPlan struct {
	postError    bool
	collectError bool
	straggle     bool
	rng          *rand.Rand // per-answer decisions, in answer order
}

// FaultyPlatform wraps a Platform with scheduled, seeded fault injection:
// dropped and duplicated answers, flipped orientations, mis-paired tasks,
// malformed values, stragglers, transient post/collect errors, and
// permanent failure after a set number of posts. It is the adversary the
// resilience layer is tested against.
//
// Faults are keyed by pair identity and per-pair batch ordinal, not by
// global post order, so a fixed seed yields the same schedule under any
// interleaving of concurrent batches.
type FaultyPlatform struct {
	inner Platform
	cctx  ContextPlatform
	cfg   FaultConfig

	mu       sync.Mutex
	perPair  map[pairKey]int64
	plans    map[int]*faultPlan
	posts    int
	served   int64
	injected int64
}

// NewFaultyPlatform wraps the platform with the fault schedule.
func NewFaultyPlatform(inner Platform, cfg FaultConfig) *FaultyPlatform {
	if inner == nil {
		panic("crowd: NewFaultyPlatform requires a platform")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	fp := &FaultyPlatform{
		inner:   inner,
		cfg:     cfg,
		perPair: make(map[pairKey]int64),
		plans:   make(map[int]*faultPlan),
	}
	fp.cctx, _ = inner.(ContextPlatform)
	return fp
}

// planFor draws the fault plan of a batch from the pair-keyed stream.
func (fp *FaultyPlatform) planFor(tasks []Task) *faultPlan {
	var k pairKey
	if len(tasks) > 0 {
		k = keyOf(tasks[0].I, tasks[0].J)
	}
	fp.mu.Lock()
	ordinal := fp.perPair[k]
	fp.perPair[k] = ordinal + 1
	fp.mu.Unlock()
	seed := fp.cfg.Seed ^ int64(mix64(uint64(uint32(k.lo))<<32|uint64(uint32(k.hi))^uint64(ordinal)*0x9e3779b97f4a7c15)>>1)
	rng := rand.New(rand.NewSource(seed))
	return &faultPlan{
		postError:    rng.Float64() < fp.cfg.PostError,
		collectError: rng.Float64() < fp.cfg.CollectError,
		straggle:     rng.Float64() < fp.cfg.Straggle,
		rng:          rng,
	}
}

// permanentlyDown reports whether the FailAfterPosts cliff has passed.
// Callers must hold fp.mu or tolerate a stale read (the counter only
// grows, so a stale false merely delays the cliff by one call).
func (fp *FaultyPlatform) permanentlyDown() bool {
	return fp.cfg.FailAfterPosts > 0 && fp.posts >= fp.cfg.FailAfterPosts
}

// Post implements Platform.
func (fp *FaultyPlatform) Post(tasks []Task) (int, error) {
	fp.mu.Lock()
	down := fp.permanentlyDown()
	if !down {
		fp.posts++
	}
	fp.mu.Unlock()
	if down {
		return 0, fmt.Errorf("crowd: platform permanently down: %w", ErrInjectedFault)
	}
	plan := fp.planFor(tasks)
	if plan.postError {
		fp.count()
		return 0, fmt.Errorf("crowd: transient post error: %w", ErrInjectedFault)
	}
	id, err := fp.inner.Post(tasks)
	if err != nil {
		return id, err
	}
	fp.mu.Lock()
	fp.plans[id] = plan
	fp.mu.Unlock()
	return id, nil
}

// Collect implements Platform. Straggling batches require CollectContext
// (or a closeable inner platform) to terminate; plain Collect of a
// straggler blocks forever, like a real lost batch would.
func (fp *FaultyPlatform) Collect(batch int) ([]Answer, error) {
	return fp.CollectContext(context.Background(), batch)
}

// CollectContext implements ContextPlatform.
func (fp *FaultyPlatform) CollectContext(ctx context.Context, batch int) ([]Answer, error) {
	fp.mu.Lock()
	down := fp.permanentlyDown()
	plan := fp.plans[batch]
	fp.mu.Unlock()
	if down {
		return nil, fmt.Errorf("crowd: platform permanently down: %w", ErrInjectedFault)
	}
	if plan != nil && plan.straggle {
		// The batch is lost in the crowd: block until the caller gives up.
		<-ctx.Done()
		return nil, fmt.Errorf("crowd: straggling batch %d: %w (%w)", batch, ErrBatchTimeout, ErrInjectedFault)
	}
	var answers []Answer
	var err error
	if fp.cctx != nil {
		answers, err = fp.cctx.CollectContext(ctx, batch)
	} else {
		answers, err = fp.inner.Collect(batch)
	}
	if err != nil {
		return answers, err
	}
	fp.mu.Lock()
	delete(fp.plans, batch)
	fp.mu.Unlock()
	if plan == nil {
		fp.serve(len(answers))
		return answers, nil
	}
	if plan.collectError {
		fp.count()
		// The answers are gone with the error; a retry re-posts.
		return nil, fmt.Errorf("crowd: transient collect error: %w", ErrInjectedFault)
	}
	out := fp.corrupt(plan, answers)
	fp.serve(len(out))
	return out, nil
}

// corrupt applies the per-answer faults of the plan, in answer order, so
// the corruption is as deterministic as the plan itself.
func (fp *FaultyPlatform) corrupt(plan *faultPlan, answers []Answer) []Answer {
	out := make([]Answer, 0, len(answers))
	for _, a := range answers {
		if plan.rng.Float64() < fp.cfg.Drop {
			fp.count()
			continue
		}
		if plan.rng.Float64() < fp.cfg.Flip {
			a = Answer{Task: Task{I: a.Task.J, J: a.Task.I}, Value: -a.Value}
		}
		if plan.rng.Float64() < fp.cfg.Mispair {
			fp.count()
			a.Task = Task{I: a.Task.I + 101, J: a.Task.J + 907} // never posted
		}
		if plan.rng.Float64() < fp.cfg.Malformed {
			fp.count()
			if plan.rng.Float64() < 0.5 {
				a.Value = math.NaN()
			} else {
				a.Value = 1.5 + plan.rng.Float64()
			}
		}
		out = append(out, a)
		if plan.rng.Float64() < fp.cfg.Duplicate {
			fp.count()
			out = append(out, a)
		}
	}
	return out
}

// Served returns how many answers the faulty platform delivered upward
// (after drops and including duplicates) — the basis of double-spend
// accounting checks.
func (fp *FaultyPlatform) Served() int64 {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	return fp.served
}

// Injected returns how many individual faults the schedule fired.
func (fp *FaultyPlatform) Injected() int64 {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	return fp.injected
}

// Posts returns how many batches were posted (before the permanent-failure
// cliff, if one is configured).
func (fp *FaultyPlatform) Posts() int {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	return fp.posts
}

// Close implements Closer by closing the inner platform, when possible.
func (fp *FaultyPlatform) Close() error {
	if c, ok := fp.inner.(Closer); ok {
		return c.Close()
	}
	return nil
}

func (fp *FaultyPlatform) serve(n int) {
	fp.mu.Lock()
	fp.served += int64(n)
	fp.mu.Unlock()
}

func (fp *FaultyPlatform) count() {
	fp.mu.Lock()
	fp.injected++
	fp.mu.Unlock()
}
