package crowd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// gaussOracle is a simple test oracle: item i has latent score float64(n-i)
// (item 0 is best), preferences are N(Δs/σscale, σ²) clipped to [-1,1].
type gaussOracle struct {
	n     int
	sigma float64
}

func (g gaussOracle) NumItems() int { return g.n }

func (g gaussOracle) Preference(rng *rand.Rand, i, j int) float64 {
	mu := float64(j-i) / float64(g.n) // i better than j iff i < j
	v := mu + rng.NormFloat64()*g.sigma
	return math.Max(-1, math.Min(1, v))
}

func (g gaussOracle) Grade(rng *rand.Rand, i int) float64 {
	return float64(g.n-i) + rng.NormFloat64()
}

func (g gaussOracle) TrueRank(i int) int { return i }

func (g gaussOracle) PairMoments(i, j int) (float64, float64) {
	return float64(j-i) / float64(g.n), g.sigma
}

func newTestEngine(n int, seed int64) *Engine {
	return NewEngine(gaussOracle{n: n, sigma: 0.2}, rand.New(rand.NewSource(seed)))
}

func TestEngineAccounting(t *testing.T) {
	e := newTestEngine(10, 1)
	if e.TMC() != 0 || e.Rounds() != 0 {
		t.Fatal("fresh engine must have zero counters")
	}
	e.Draw(0, 1, 30)
	e.Draw(2, 3, 5)
	e.Grade(4)
	if got := e.TMC(); got != 36 {
		t.Errorf("TMC = %d, want 36", got)
	}
	if got := e.PairwiseTasks(); got != 35 {
		t.Errorf("PairwiseTasks = %d, want 35", got)
	}
	if got := e.GradedTasks(); got != 1 {
		t.Errorf("GradedTasks = %d, want 1", got)
	}
	e.Tick(3)
	e.Tick(1)
	if got := e.Rounds(); got != 4 {
		t.Errorf("Rounds = %d, want 4", got)
	}
	if got := e.PairsTouched(); got != 2 {
		t.Errorf("PairsTouched = %d, want 2", got)
	}
}

func TestEngineViewOrientation(t *testing.T) {
	e := newTestEngine(10, 2)
	// Item 0 is better than item 9, so the mean oriented toward 0 must be
	// positive with many samples.
	v := e.Draw(0, 9, 500)
	if v.Mean <= 0 {
		t.Errorf("mean toward better item = %v, want > 0", v.Mean)
	}
	flipped := e.View(9, 0)
	if flipped.Mean != -v.Mean {
		t.Errorf("flipped mean = %v, want %v", flipped.Mean, -v.Mean)
	}
	if flipped.N != v.N || flipped.SD != v.SD {
		t.Errorf("flipped view changed N or SD: %+v vs %+v", flipped, v)
	}
	if flipped.BinMean != -v.BinMean {
		t.Errorf("flipped binary mean = %v, want %v", flipped.BinMean, -v.BinMean)
	}
}

func TestEngineBagsPersistAndAccumulate(t *testing.T) {
	e := newTestEngine(5, 3)
	v1 := e.Draw(1, 2, 10)
	if v1.N != 10 {
		t.Fatalf("N after first draw = %d, want 10", v1.N)
	}
	v2 := e.Draw(2, 1, 10) // same pair, other orientation
	if v2.N != 20 {
		t.Errorf("N after second draw = %d, want 20 (bag must be shared)", v2.N)
	}
	if e.PairsTouched() != 1 {
		t.Errorf("PairsTouched = %d, want 1", e.PairsTouched())
	}
}

func TestEngineViewUnknownPairIsZero(t *testing.T) {
	e := newTestEngine(5, 4)
	v := e.View(0, 4)
	if v.N != 0 || v.Mean != 0 || v.SD != 0 || v.BinN != 0 {
		t.Errorf("unknown pair view = %+v, want zero", v)
	}
}

func TestEngineBinaryViewDropsZeros(t *testing.T) {
	// An oracle that returns 0 half of the time.
	o := FuncOracle{N: 4, Pref: func(rng *rand.Rand, i, j int) float64 {
		if rng.Intn(2) == 0 {
			return 0
		}
		return 0.5
	}}
	e := NewEngine(o, rand.New(rand.NewSource(5)))
	v := e.Draw(0, 1, 1000)
	if v.N != 1000 {
		t.Fatalf("preference N = %d, want 1000", v.N)
	}
	if v.BinN >= 1000 || v.BinN == 0 {
		t.Errorf("binary N = %d, want in (0, 1000): zeros must be dropped", v.BinN)
	}
	if v.BinMean != 1 {
		t.Errorf("binary mean = %v, want 1 (all non-zero samples positive)", v.BinMean)
	}
}

func TestEngineReset(t *testing.T) {
	e := newTestEngine(5, 6)
	e.Draw(0, 1, 50)
	e.Tick(2)
	e.Grade(3)
	e.Reset()
	if e.TMC() != 0 || e.Rounds() != 0 || e.PairsTouched() != 0 || e.GradedTasks() != 0 {
		t.Errorf("Reset left counters: tmc=%d rounds=%d pairs=%d", e.TMC(), e.Rounds(), e.PairsTouched())
	}
	if v := e.View(0, 1); v.N != 0 {
		t.Errorf("Reset left bag with N=%d", v.N)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() (float64, int64) {
		e := newTestEngine(20, 42)
		v := e.Draw(3, 7, 200)
		return v.Mean, e.TMC()
	}
	m1, c1 := run()
	m2, c2 := run()
	if m1 != m2 || c1 != c2 {
		t.Errorf("same seed produced different runs: (%v,%v) vs (%v,%v)", m1, c1, m2, c2)
	}
}

func TestEngineMeanConvergesToOracleMoments(t *testing.T) {
	e := newTestEngine(10, 7)
	mu, _ := gaussOracle{n: 10, sigma: 0.2}.PairMoments(2, 8)
	v := e.Draw(2, 8, 20000)
	if math.Abs(v.Mean-mu) > 0.01 {
		t.Errorf("sample mean %v far from true mean %v", v.Mean, mu)
	}
	if math.Abs(v.SD-0.2) > 0.01 {
		t.Errorf("sample SD %v far from true SD 0.2", v.SD)
	}
}

func TestEngineAntisymmetryProperty(t *testing.T) {
	// For any pair and sample budget, the view toward i and toward j must
	// be exact mirrors.
	f := func(seed int64, ii, ji uint8, ni uint16) bool {
		n := 10
		i := int(ii) % n
		j := int(ji) % n
		if i == j {
			return true
		}
		cnt := int(ni%200) + 1
		e := newTestEngine(n, seed)
		vi := e.Draw(i, j, cnt)
		vj := e.View(j, i)
		return vi.Mean == -vj.Mean && vi.N == vj.N && vi.SD == vj.SD && vi.BinMean == -vj.BinMean
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnginePanics(t *testing.T) {
	e := newTestEngine(5, 8)
	assertPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanic("Draw same item", func() { e.Draw(2, 2, 1) })
	assertPanic("Draw negative", func() { e.Draw(0, 1, -1) })
	assertPanic("View same item", func() { e.View(3, 3) })
	assertPanic("Tick negative", func() { e.Tick(-1) })
	assertPanic("nil oracle", func() { NewEngine(nil, rand.New(rand.NewSource(1))) })
	assertPanic("nil rng", func() { NewEngine(gaussOracle{n: 2}, nil) })
	assertPanic("grade without grader", func() {
		e2 := NewEngine(FuncOracle{N: 2, Pref: func(*rand.Rand, int, int) float64 { return 0 }}, rand.New(rand.NewSource(1)))
		e2.Grade(0)
	})
	assertPanic("oracle out of range", func() {
		e3 := NewEngine(FuncOracle{N: 2, Pref: func(*rand.Rand, int, int) float64 { return 2 }}, rand.New(rand.NewSource(1)))
		e3.Draw(0, 1, 1)
	})
}
