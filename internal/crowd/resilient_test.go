package crowd

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// scriptStep describes how one posted batch behaves: how its Post call
// fails, how many of its tasks get answered, and whether collection
// errors or blocks until cancellation.
type scriptStep struct {
	postErr    error
	collectErr error
	serve      int // answers to deliver; -1 = all posted tasks
	dupFirst   bool
	block      bool
}

// scriptPlatform is a hand-scripted Platform: each Post consumes the next
// step of the script, so tests can choreograph exact failure sequences.
type scriptPlatform struct {
	mu       sync.Mutex
	steps    []scriptStep
	next     int
	nextID   int
	batches  map[int][]Task
	plan     map[int]scriptStep
	posts    [][]Task
	collects int
}

func newScriptPlatform(steps ...scriptStep) *scriptPlatform {
	return &scriptPlatform{
		steps:   steps,
		batches: make(map[int][]Task),
		plan:    make(map[int]scriptStep),
	}
}

func (sp *scriptPlatform) step() scriptStep {
	if sp.next < len(sp.steps) {
		s := sp.steps[sp.next]
		sp.next++
		return s
	}
	return scriptStep{serve: -1} // script over: behave perfectly
}

func (sp *scriptPlatform) Post(tasks []Task) (int, error) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	s := sp.step()
	sp.posts = append(sp.posts, append([]Task(nil), tasks...))
	if s.postErr != nil {
		return 0, s.postErr
	}
	id := sp.nextID
	sp.nextID++
	sp.batches[id] = append([]Task(nil), tasks...)
	sp.plan[id] = s
	return id, nil
}

func (sp *scriptPlatform) Collect(batch int) ([]Answer, error) {
	return sp.CollectContext(context.Background(), batch)
}

func (sp *scriptPlatform) CollectContext(ctx context.Context, batch int) ([]Answer, error) {
	sp.mu.Lock()
	tasks, ok := sp.batches[batch]
	s := sp.plan[batch]
	sp.collects++
	sp.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("unknown batch %d", batch)
	}
	if s.block {
		<-ctx.Done()
		return nil, fmt.Errorf("batch %d: %w", batch, ErrBatchTimeout)
	}
	sp.mu.Lock()
	delete(sp.batches, batch)
	sp.mu.Unlock()
	if s.collectErr != nil {
		return nil, s.collectErr
	}
	serve := s.serve
	if serve < 0 || serve > len(tasks) {
		serve = len(tasks)
	}
	answers := make([]Answer, 0, serve+1)
	for _, t := range tasks[:serve] {
		answers = append(answers, Answer{Task: t, Value: 0.5})
	}
	if s.dupFirst && len(answers) > 0 {
		answers = append(answers, answers[0])
	}
	return answers, nil
}

// noSleep is the policy Sleep hook for tests: full retry machinery, no
// wall-clock waits.
func noSleep(time.Duration) {}

func testPolicy(maxAttempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: maxAttempts, FailureThreshold: 3, Sleep: noSleep}
}

func tasksFor(n int) []Task {
	tasks := make([]Task, n)
	for t := range tasks {
		tasks[t] = Task{I: 1, J: 2}
	}
	return tasks
}

func TestResilientHappyPathTransparent(t *testing.T) {
	inner := newScriptPlatform(scriptStep{serve: -1})
	rp := NewResilientPlatform(inner, testPolicy(4))
	id, err := rp.Post(tasksFor(5))
	if err != nil {
		t.Fatal(err)
	}
	answers, err := rp.Collect(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 5 {
		t.Fatalf("got %d answers, want 5", len(answers))
	}
	if len(inner.posts) != 1 {
		t.Errorf("healthy platform saw %d posts, want exactly 1", len(inner.posts))
	}
	if n := rp.Reposts(); n != 0 {
		t.Errorf("reposts = %d on the happy path", n)
	}
	if f := rp.Failures(); len(f) != 0 {
		t.Errorf("failure log not empty: %v", f)
	}
}

func TestResilientRepostsOnlyMissing(t *testing.T) {
	// First collection is short by 2; the adapter must re-post exactly the
	// 2 missing tasks, not the whole batch.
	inner := newScriptPlatform(scriptStep{serve: 3}, scriptStep{serve: -1})
	rp := NewResilientPlatform(inner, testPolicy(4))
	id, _ := rp.Post(tasksFor(5))
	answers, err := rp.Collect(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 5 {
		t.Fatalf("got %d answers, want 5", len(answers))
	}
	if len(inner.posts) != 2 {
		t.Fatalf("saw %d posts, want 2", len(inner.posts))
	}
	if got := len(inner.posts[1]); got != 2 {
		t.Errorf("re-post carried %d tasks, want only the 2 missing", got)
	}
	if n := rp.Reposts(); n != 1 {
		t.Errorf("reposts = %d, want 1", n)
	}
	if !hasEventKind(rp.Failures(), "partial") {
		t.Errorf("failure log misses the partial event: %v", rp.Failures())
	}
}

func TestResilientSurvivesTransientPostError(t *testing.T) {
	wantErr := errors.New("market hiccup")
	inner := newScriptPlatform(scriptStep{postErr: wantErr}, scriptStep{serve: -1})
	rp := NewResilientPlatform(inner, testPolicy(4))
	id, err := rp.Post(tasksFor(4))
	if err != nil {
		t.Fatalf("transient post error must not surface from Post: %v", err)
	}
	answers, err := rp.Collect(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 4 {
		t.Fatalf("got %d answers, want 4", len(answers))
	}
	if !hasEventKind(rp.Failures(), "post-error") {
		t.Errorf("failure log misses the post error: %v", rp.Failures())
	}
}

func TestResilientSurvivesTransientCollectError(t *testing.T) {
	inner := newScriptPlatform(scriptStep{collectErr: errors.New("flaky fetch")}, scriptStep{serve: -1})
	rp := NewResilientPlatform(inner, testPolicy(4))
	id, _ := rp.Post(tasksFor(4))
	answers, err := rp.Collect(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 4 {
		t.Fatalf("got %d answers, want 4", len(answers))
	}
	if !hasEventKind(rp.Failures(), "collect-error") {
		t.Errorf("failure log misses the collect error: %v", rp.Failures())
	}
}

func TestResilientQuarantinesSurplusDuplicates(t *testing.T) {
	inner := newScriptPlatform(scriptStep{serve: -1, dupFirst: true})
	rp := NewResilientPlatform(inner, testPolicy(4))
	id, _ := rp.Post(tasksFor(3))
	answers, err := rp.Collect(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 3 {
		t.Fatalf("duplicate leaked: got %d answers, want 3", len(answers))
	}
	if !hasEventKind(rp.Failures(), "quarantine") {
		t.Errorf("failure log misses the quarantine event: %v", rp.Failures())
	}
}

func TestResilientExhaustionReturnsPartialEvidence(t *testing.T) {
	// Two attempts, both short: the collected answers must still come back
	// (they were paid for) together with ErrBatchIncomplete.
	inner := newScriptPlatform(scriptStep{serve: 2}, scriptStep{serve: 1}, scriptStep{serve: 0})
	rp := NewResilientPlatform(inner, testPolicy(2))
	id, _ := rp.Post(tasksFor(5))
	answers, err := rp.Collect(id)
	if err == nil {
		t.Fatal("exhausted batch reported success")
	}
	if !errors.Is(err, ErrBatchIncomplete) {
		t.Errorf("error %v does not wrap ErrBatchIncomplete", err)
	}
	if len(answers) != 3 {
		t.Errorf("got %d partial answers, want the 3 delivered", len(answers))
	}
	if !hasEventKind(rp.Failures(), "exhausted") {
		t.Errorf("failure log misses the exhaustion event: %v", rp.Failures())
	}
}

func TestResilientCircuitBreaker(t *testing.T) {
	// Every batch fails outright; after FailureThreshold consecutive
	// exhaustions the breaker opens and posts fail fast.
	steps := make([]scriptStep, 0, 16)
	for range [16]int{} {
		steps = append(steps, scriptStep{serve: 0})
	}
	inner := newScriptPlatform(steps...)
	rp := NewResilientPlatform(inner, RetryPolicy{MaxAttempts: 1, FailureThreshold: 2, Sleep: noSleep})
	for b := 0; b < 2; b++ {
		id, err := rp.Post(tasksFor(2))
		if err != nil {
			t.Fatalf("post %d failed before the breaker opened: %v", b, err)
		}
		if _, err := rp.Collect(id); err == nil {
			t.Fatalf("collect %d succeeded unexpectedly", b)
		}
	}
	if !rp.BreakerOpen() {
		t.Fatal("breaker still closed after threshold failures")
	}
	if _, err := rp.Post(tasksFor(2)); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker returned %v, want ErrCircuitOpen", err)
	}
	rp.Reset()
	if rp.BreakerOpen() {
		t.Fatal("Reset left the breaker open")
	}
	if _, err := rp.Post(tasksFor(2)); err != nil {
		t.Fatalf("post after Reset failed: %v", err)
	}
}

func TestResilientTimeoutThenRecovery(t *testing.T) {
	// The first inner batch straggles past the deadline; the re-post is
	// answered, so the outer batch still completes.
	inner := newScriptPlatform(scriptStep{block: true}, scriptStep{serve: -1})
	rp := NewResilientPlatform(inner, RetryPolicy{
		MaxAttempts: 3, FailureThreshold: 3,
		CollectTimeout: 5 * time.Millisecond, Sleep: noSleep,
	})
	id, _ := rp.Post(tasksFor(4))
	answers, err := rp.Collect(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 4 {
		t.Fatalf("got %d answers, want 4", len(answers))
	}
	if !hasEventKind(rp.Failures(), "timeout") {
		t.Errorf("failure log misses the timeout: %v", rp.Failures())
	}
}

func TestResilientBackoffDeterministicJitter(t *testing.T) {
	delays := func() []time.Duration {
		var ds []time.Duration
		inner := newScriptPlatform(
			scriptStep{serve: 0}, scriptStep{serve: 0}, scriptStep{serve: 0}, scriptStep{serve: -1})
		rp := NewResilientPlatform(inner, RetryPolicy{
			MaxAttempts: 4, FailureThreshold: 10, JitterSeed: 7,
			BaseBackoff: 10 * time.Millisecond, MaxBackoff: 40 * time.Millisecond,
			Sleep: func(d time.Duration) { ds = append(ds, d) },
		})
		id, _ := rp.Post(tasksFor(3))
		if _, err := rp.Collect(id); err != nil {
			t.Fatal(err)
		}
		return ds
	}
	a, b := delays(), delays()
	if len(a) != 3 {
		t.Fatalf("saw %d backoff sleeps, want 3", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter not deterministic: run1 %v vs run2 %v", a, b)
		}
		nominal := 10 * time.Millisecond << uint(i)
		if nominal > 40*time.Millisecond {
			nominal = 40 * time.Millisecond
		}
		if a[i] < nominal/2 || a[i] >= nominal {
			t.Errorf("delay %d = %v outside [%v, %v)", i, a[i], nominal/2, nominal)
		}
	}
}

func TestResilientCollectUnknownBatch(t *testing.T) {
	rp := NewResilientPlatform(newScriptPlatform(), testPolicy(2))
	if _, err := rp.Collect(42); err == nil {
		t.Error("collecting an unknown batch succeeded")
	}
}

func hasEventKind(events []FailureEvent, kind string) bool {
	for _, ev := range events {
		if ev.Kind == kind {
			return true
		}
	}
	return false
}
