package crowd

import "crowdtopk/internal/obs"

// EngineInstruments is the engine's pre-resolved bundle of metrics: every
// instrument is looked up from the registry exactly once, at wiring time,
// so the Draw/Grade hot paths pay one nil check on the bundle and then
// plain atomic adds — no map lookups, no allocation, no locks.
type EngineInstruments struct {
	Samples   *obs.Counter   // pairwise microtasks delivered into bags
	Graded    *obs.Counter   // graded microtasks delivered
	TMC       *obs.Counter   // total monetary cost charged (net of refunds)
	Refunds   *obs.Counter   // reserved-but-undelivered microtasks refunded
	CapDenied *obs.Counter   // requested microtasks declined by the cap/latch
	Batches   *obs.Counter   // Draw batch purchases dispatched
	Rounds    *obs.Counter   // latency clock ticks
	BagSize   *obs.Histogram // bag size after each batch purchase
}

// NewEngineInstruments resolves the engine's instruments from the
// registry; nil registry (telemetry disabled) yields nil, which the
// engine treats as "record nothing".
func NewEngineInstruments(reg *obs.Registry) *EngineInstruments {
	if reg == nil {
		return nil
	}
	return &EngineInstruments{
		Samples:   reg.Counter(obs.MSamples),
		Graded:    reg.Counter(obs.MGraded),
		TMC:       reg.Counter(obs.MTMC),
		Refunds:   reg.Counter(obs.MRefunds),
		CapDenied: reg.Counter(obs.MCapDenied),
		Batches:   reg.Counter(obs.MDrawBatches),
		Rounds:    reg.Counter(obs.MRounds),
		BagSize:   reg.Histogram(obs.MBagSize, obs.BagSizeBuckets),
	}
}

// SetInstruments attaches (or detaches, with nil) the engine's metric
// bundle. Call before the engine is shared across goroutines; purchases
// observe either the old bundle or the new one.
func (e *Engine) SetInstruments(ins *EngineInstruments) { e.ins = ins }

// PlatformInstruments is the resilience stack's metric bundle, shared by
// the platform oracle (quarantine) and the resilient adapter (retries,
// backoff, breaker). Resolved once from the registry, like the engine's.
type PlatformInstruments struct {
	Reposts        *obs.Counter // shortfall re-posts issued by the retry loop
	BackoffNs      *obs.Counter // nanoseconds of backoff delay requested
	PartialBatches *obs.Counter // clean-but-short collections detected
	Quarantined    *obs.Counter // answers rejected by validation
	PostErrors     *obs.Counter // failed Post calls
	Timeouts       *obs.Counter // collection attempts past their deadline
	Exhausted      *obs.Counter // batches that ran out of retry attempts
	BreakerOpens   *obs.Counter // circuit-breaker open transitions
	BreakerOpen    *obs.Gauge   // 1 while the breaker is open, else 0
	FailureEvents  *obs.Counter // failure-log entries recorded (incl. dropped)
	FailuresDrop   *obs.Counter // failure-log entries evicted by the ring
}

// NewPlatformInstruments resolves the resilience instruments from the
// registry; nil registry yields nil.
func NewPlatformInstruments(reg *obs.Registry) *PlatformInstruments {
	if reg == nil {
		return nil
	}
	return &PlatformInstruments{
		Reposts:        reg.Counter(obs.MReposts),
		BackoffNs:      reg.Counter(obs.MBackoffNs),
		PartialBatches: reg.Counter(obs.MPartialBatches),
		Quarantined:    reg.Counter(obs.MQuarantined),
		PostErrors:     reg.Counter(obs.MPostErrors),
		Timeouts:       reg.Counter(obs.MTimeouts),
		Exhausted:      reg.Counter(obs.MExhausted),
		BreakerOpens:   reg.Counter(obs.MBreakerOpens),
		BreakerOpen:    reg.Gauge(obs.MBreakerOpen),
		FailureEvents:  reg.Counter(obs.MFailureEvents),
		FailuresDrop:   reg.Counter(obs.MFailuresDropped),
	}
}

// classify routes one failure event onto its kind-specific counter. All
// counters are nil-safe, so a nil bundle records nothing.
func (pi *PlatformInstruments) classify(kind string) {
	if pi == nil {
		return
	}
	pi.FailureEvents.Inc()
	switch kind {
	case "post-error":
		pi.PostErrors.Inc()
	case "timeout":
		pi.Timeouts.Inc()
	case "partial":
		pi.PartialBatches.Inc()
	case "quarantine":
		pi.Quarantined.Inc()
	case "exhausted":
		pi.Exhausted.Inc()
		// "breaker-open" events are counted as failure events only; the
		// open/close transition itself is instrumented where it happens
		// (settle and Reset), so rejected posts don't inflate the count
		// of opens.
	}
}
