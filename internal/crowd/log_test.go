package crowd

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestLogDisabledByDefault(t *testing.T) {
	e := newTestEngine(5, 41)
	e.Draw(0, 1, 10)
	if got := e.Log(); len(got) != 0 {
		t.Errorf("log has %d records without EnableLog", len(got))
	}
}

func TestLogRecordsEveryMicrotask(t *testing.T) {
	e := newTestEngine(5, 42)
	e.EnableLog()
	e.Draw(0, 1, 10)
	e.Tick(1)
	e.DrawOne(2, 1)
	e.Grade(3)
	log := e.Log()
	if len(log) != 12 {
		t.Fatalf("log has %d records, want 12", len(log))
	}
	if int64(len(log)) != e.TMC() {
		t.Errorf("log length %d != TMC %d", len(log), e.TMC())
	}
	// The first 10 records are pair (0,1) at round 0.
	for _, r := range log[:10] {
		if r.I != 0 || r.J != 1 || r.Round != 0 || r.IsGraded() {
			t.Fatalf("unexpected record %+v", r)
		}
	}
	// The DrawOne happened after the tick and is stored canonically.
	if r := log[10]; r.I != 1 || r.J != 2 || r.Round != 1 {
		t.Errorf("DrawOne record %+v", r)
	}
	// The graded task marks J = -1.
	if r := log[11]; !r.IsGraded() || r.I != 3 {
		t.Errorf("grade record %+v", r)
	}
}

func TestLogRoundTripJSON(t *testing.T) {
	e := newTestEngine(6, 43)
	e.EnableLog()
	e.Draw(0, 5, 7)
	e.Grade(2)

	var buf bytes.Buffer
	if err := e.WriteLog(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(e.Log()) {
		t.Fatalf("round trip changed length: %d vs %d", len(back), len(e.Log()))
	}
	for i := range back {
		if back[i] != e.Log()[i] {
			t.Fatalf("record %d changed: %+v vs %+v", i, back[i], e.Log()[i])
		}
	}
}

func TestReadLogRejectsGarbage(t *testing.T) {
	if _, err := ReadLog(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestReadLogRejectsCorruptInput(t *testing.T) {
	// Audit logs are untrusted: crashes truncate them, storage corrupts
	// them. Every malformed shape must be rejected, never replayed.
	cases := []struct {
		name  string
		input string
		ok    bool
	}{
		{"valid empty", `[]`, true},
		{"valid pairwise", `[{"round":0,"i":0,"j":1,"value":0.5}]`, true},
		{"valid graded", `[{"round":2,"i":3,"j":-1,"value":4.2}]`, true},
		{"valid boundary values", `[{"round":0,"i":0,"j":1,"value":-1},{"round":0,"i":0,"j":1,"value":1}]`, true},
		{"truncated mid-record", `[{"round":0,"i":0,"j":1,"va`, false},
		{"truncated mid-array", `[{"round":0,"i":0,"j":1,"value":0.5},`, false},
		{"trailing garbage", `[] {"more":"data"}`, false},
		{"trailing second array", `[][]`, false},
		{"object not array", `{"round":0}`, false},
		{"value above range", `[{"round":0,"i":0,"j":1,"value":1.5}]`, false},
		{"value below range", `[{"round":0,"i":0,"j":1,"value":-1.01}]`, false},
		{"self pair", `[{"round":0,"i":2,"j":2,"value":0.5}]`, false},
		{"negative round", `[{"round":-1,"i":0,"j":1,"value":0.5}]`, false},
		{"negative item", `[{"round":0,"i":-3,"j":1,"value":0.5}]`, false},
		{"graded bad sentinel", `[{"round":0,"i":0,"j":-2,"value":1}]`, false},
		{"string value", `[{"round":0,"i":0,"j":1,"value":"0.5"}]`, false},
		{"corrupt record after valid ones", `[{"round":0,"i":0,"j":1,"value":0.5},{"round":0,"i":0,"j":0,"value":0.5}]`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			recs, err := ReadLog(strings.NewReader(tc.input))
			if tc.ok && err != nil {
				t.Fatalf("valid log rejected: %v", err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatalf("corrupt log accepted: %v", recs)
				}
				if recs != nil {
					t.Fatalf("corrupt log returned records alongside the error")
				}
			}
		})
	}
}

func TestReplayServesRecordedAnswers(t *testing.T) {
	// Record a run, then replay it: the same draws yield the same bags at
	// zero oracle involvement.
	e := newTestEngine(6, 44)
	e.EnableLog()
	v1 := e.Draw(2, 4, 50)
	g1, _ := e.Grade(1)

	rp := NewReplay(6, e.Log())
	if rp.NumItems() != 6 {
		t.Fatalf("NumItems = %d", rp.NumItems())
	}
	if got := rp.Remaining(2, 4); got != 50 {
		t.Fatalf("Remaining = %d, want 50", got)
	}
	e2 := NewEngine(rp, rand.New(rand.NewSource(1)))
	v2 := e2.Draw(2, 4, 50)
	if v1.Mean != v2.Mean || v1.SD != v2.SD || v1.N != v2.N {
		t.Errorf("replayed bag differs: %+v vs %+v", v2, v1)
	}
	if g2, _ := e2.Grade(1); g2 != g1 {
		t.Errorf("replayed grade %v != original %v", g2, g1)
	}
	if got := rp.Remaining(2, 4); got != 0 {
		t.Errorf("Remaining after replay = %d", got)
	}
}

func TestReplayOrientation(t *testing.T) {
	e := newTestEngine(4, 45)
	e.EnableLog()
	e.Draw(3, 0, 20) // drawn in flipped orientation
	rp := NewReplay(4, e.Log())
	e2 := NewEngine(rp, rand.New(rand.NewSource(2)))
	v := e2.Draw(0, 3, 20) // replayed in canonical orientation
	if v.Mean != e.View(0, 3).Mean {
		t.Errorf("orientation broken: %v vs %v", v.Mean, e.View(0, 3).Mean)
	}
}

func TestReplayPanicsWhenExhausted(t *testing.T) {
	e := newTestEngine(4, 46)
	e.EnableLog()
	e.Draw(0, 1, 3)
	rp := NewReplay(4, e.Log())
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3; i++ {
		rp.Preference(rng, 0, 1)
	}
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanics("exhausted pair", func() { rp.Preference(rng, 0, 1) })
	assertPanics("unknown pair", func() { rp.Preference(rng, 2, 3) })
	assertPanics("unknown grade", func() { rp.Grade(rng, 0) })
}

func TestResetClearsLog(t *testing.T) {
	e := newTestEngine(4, 47)
	e.EnableLog()
	e.Draw(0, 1, 5)
	e.Reset()
	if len(e.Log()) != 0 {
		t.Error("Reset kept the log")
	}
}
