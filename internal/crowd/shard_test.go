package crowd

import (
	"sync"
	"testing"
)

func TestShardLoadMissReturnsNil(t *testing.T) {
	var s shard
	if got := s.load(pairKey{0, 1}); got != nil {
		t.Fatalf("load on empty shard = %v, want nil", got)
	}
}

func TestShardLoadOrCreateIsIdempotent(t *testing.T) {
	var s shard
	k := pairKey{2, 5}
	created := 0
	mk := func() *pairState { created++; return &pairState{} }
	first := s.loadOrCreate(k, mk)
	if first == nil {
		t.Fatal("loadOrCreate returned nil")
	}
	if again := s.loadOrCreate(k, mk); again != first {
		t.Fatal("loadOrCreate returned a different state for the same key")
	}
	if created != 1 {
		t.Fatalf("create ran %d times, want 1", created)
	}
	if got := s.load(k); got != first {
		t.Fatal("load does not see the created state")
	}
	if got := s.count(); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
}

// TestShardPromotionKeepsAllKeys inserts enough keys and read-misses to
// drive dirty→read promotions, then checks every key resolves lock-free.
func TestShardPromotionKeepsAllKeys(t *testing.T) {
	var s shard
	const keys = 200
	states := make(map[pairKey]*pairState, keys)
	for i := 0; i < keys; i++ {
		k := pairKey{i, i + 1}
		states[k] = s.loadOrCreate(k, func() *pairState { return &pairState{} })
		// Interleave misses on existing keys so promotion actually fires.
		for j := 0; j <= i; j += 17 {
			s.load(pairKey{j, j + 1})
		}
	}
	if got := s.count(); got != keys {
		t.Fatalf("count = %d, want %d", got, keys)
	}
	for k, want := range states {
		if got := s.load(k); got != want {
			t.Fatalf("load(%v) = %p, want %p", k, got, want)
		}
	}
	if m := s.read.Load(); m == nil || len(*m) == 0 {
		t.Fatal("no promotion happened: read map still empty")
	}
}

func TestShardResetEmpties(t *testing.T) {
	var s shard
	for i := 0; i < 10; i++ {
		s.loadOrCreate(pairKey{i, i + 1}, func() *pairState { return &pairState{} })
	}
	s.reset()
	if got := s.count(); got != 0 {
		t.Fatalf("count after reset = %d, want 0", got)
	}
	if got := s.load(pairKey{0, 1}); got != nil {
		t.Fatalf("load after reset = %v, want nil", got)
	}
}

// TestShardConcurrent exercises mixed loads and creates from many
// goroutines; under -race this pins the read/dirty publication protocol.
func TestShardConcurrent(t *testing.T) {
	var s shard
	var wg sync.WaitGroup
	const perG, keys = 3000, 64
	results := make([][]*pairState, 8)
	for g := range results {
		results[g] = make([]*pairState, keys)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; n < perG; n++ {
				k := pairKey{(n + g) % keys, (n+g)%keys + 1}
				ps := s.loadOrCreate(k, func() *pairState { return &pairState{} })
				if prev := results[g][k.lo]; prev != nil && prev != ps {
					t.Errorf("goroutine %d saw two states for %v", g, k)
					return
				}
				results[g][k.lo] = ps
				s.load(k)
			}
		}(g)
	}
	wg.Wait()
	// All goroutines must have resolved identical states per key.
	for k := 0; k < keys; k++ {
		want := results[0][k]
		for g := 1; g < len(results); g++ {
			if results[g][k] != want {
				t.Fatalf("key %d: goroutine %d saw %p, goroutine 0 saw %p", k, g, results[g][k], want)
			}
		}
	}
	if got := s.count(); got != keys {
		t.Fatalf("count = %d, want %d", got, keys)
	}
}
