package crowd

import (
	"sync"
	"sync/atomic"
)

// shard is one stripe of the engine's pair-state index. It follows the
// sync.Map read/dirty design, specialized to pairKey -> *pairState so hot
// lookups stay free of both locks and interface boxing:
//
//   - read holds an immutable map published through an atomic pointer.
//     Readers that hit it never lock and never allocate — this is what
//     makes Engine.View (and everything built on it) mutex-free once a
//     pair is warm.
//   - dirty, guarded by mu, is a superset of read holding pairs created
//     since the last promotion. Entries are never deleted (Reset swaps
//     whole shards), which keeps the scheme far simpler than sync.Map:
//     there are no expunged tombstones.
//   - after enough read misses land on dirty, the dirty map is promoted:
//     published as the new read map and set to nil. The next insert
//     re-clones. Promotion is amortized O(1) per operation, exactly like
//     sync.Map.
type shard struct {
	mu      sync.Mutex
	read    atomic.Pointer[map[pairKey]*pairState]
	dirty   map[pairKey]*pairState
	amended atomic.Bool // dirty holds keys the read map does not
	misses  int
}

// load returns the state for k, or nil when the pair was never created.
// The fast path is a single atomic pointer load plus one map read.
func (s *shard) load(k pairKey) *pairState {
	if m := s.read.Load(); m != nil {
		if ps := (*m)[k]; ps != nil {
			return ps
		}
	}
	if !s.amended.Load() {
		return nil
	}
	s.mu.Lock()
	var ps *pairState
	if s.dirty != nil {
		ps = s.dirty[k]
		s.missLocked()
	} else if m := s.read.Load(); m != nil {
		// Promoted between our read miss and taking the lock.
		ps = (*m)[k]
	}
	s.mu.Unlock()
	return ps
}

// loadOrCreate returns the state for k, creating it with create() under
// the shard lock on first touch.
func (s *shard) loadOrCreate(k pairKey, create func() *pairState) *pairState {
	if m := s.read.Load(); m != nil {
		if ps := (*m)[k]; ps != nil {
			return ps
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dirty != nil {
		if ps := s.dirty[k]; ps != nil {
			return ps
		}
	} else if m := s.read.Load(); m != nil {
		if ps := (*m)[k]; ps != nil {
			return ps
		}
	}
	if s.dirty == nil {
		var src map[pairKey]*pairState
		if m := s.read.Load(); m != nil {
			src = *m
		}
		s.dirty = make(map[pairKey]*pairState, 2*len(src)+1)
		for kk, vv := range src {
			s.dirty[kk] = vv
		}
	}
	ps := create()
	s.dirty[k] = ps
	s.amended.Store(true)
	return ps
}

// missLocked records one read miss that had to consult dirty and promotes
// the dirty map once misses have paid for the clone the next insert does.
func (s *shard) missLocked() {
	s.misses++
	if s.misses < len(s.dirty) {
		return
	}
	m := s.dirty
	s.read.Store(&m)
	s.dirty = nil
	s.amended.Store(false)
	s.misses = 0
}

// count returns the number of pairs in the shard.
func (s *shard) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dirty != nil {
		return len(s.dirty)
	}
	if m := s.read.Load(); m != nil {
		return len(*m)
	}
	return 0
}

// reset discards every pair in the shard. It must not race with in-flight
// purchases (Engine.Reset's contract).
func (s *shard) reset() {
	s.mu.Lock()
	s.read.Store(nil)
	s.dirty = nil
	s.amended.Store(false)
	s.misses = 0
	s.mu.Unlock()
}
