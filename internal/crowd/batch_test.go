package crowd

import (
	"math/rand"
	"testing"
)

// scalarOnly hides an oracle's BatchOracle facet so tests (and benchmarks)
// can force the engine's per-sample fallback path.
type scalarOnly struct{ Oracle }

// noisyOracle is a cheap deterministic test oracle with a batch kernel.
type noisyOracle struct{ n int }

func (o noisyOracle) NumItems() int { return o.n }

func (o noisyOracle) Preference(rng *rand.Rand, i, j int) float64 {
	v := float64(j-i)/float64(o.n) + rng.NormFloat64()*0.25
	if v > 1 {
		return 1
	}
	if v < -1 {
		return -1
	}
	return v
}

func (o noisyOracle) Preferences(rng *rand.Rand, i, j int, dst []float64) {
	for t := range dst {
		dst[t] = o.Preference(rng, i, j)
	}
}

// TestDrawBatchMatchesScalarFallback pins the tentpole's determinism
// contract at the engine level: the batched hot path and the per-sample
// fallback must produce byte-identical bags, views, logs and counters.
func TestDrawBatchMatchesScalarFallback(t *testing.T) {
	const seed = 5
	run := func(o Oracle) *Engine {
		e := NewEngine(o, rand.New(rand.NewSource(seed)))
		e.EnableLog()
		e.Draw(0, 1, 40)
		e.Draw(3, 2, 17) // flipped orientation
		e.Draw(0, 1, 1)  // batch of one
		e.Tick(3)
		return e
	}
	batched := run(noisyOracle{n: 8})
	scalar := run(scalarOnly{noisyOracle{n: 8}})

	for _, p := range [][2]int{{0, 1}, {1, 0}, {2, 3}, {3, 2}} {
		b, s := batched.View(p[0], p[1]), scalar.View(p[0], p[1])
		if b != s {
			t.Fatalf("view(%d,%d): batch %+v != scalar %+v", p[0], p[1], b, s)
		}
	}
	if b, s := batched.TMC(), scalar.TMC(); b != s {
		t.Fatalf("TMC: batch %d != scalar %d", b, s)
	}
	bl, sl := batched.Log(), scalar.Log()
	if len(bl) != len(sl) {
		t.Fatalf("log length: batch %d != scalar %d", len(bl), len(sl))
	}
	for r := range bl {
		if bl[r] != sl[r] {
			t.Fatalf("log[%d]: batch %+v != scalar %+v", r, bl[r], sl[r])
		}
	}
}

// TestViewSeesLatestDraw checks the published snapshot is refreshed by
// every mutation, including single draws and cap-truncated batches.
func TestViewSeesLatestDraw(t *testing.T) {
	e := NewEngine(noisyOracle{n: 4}, rand.New(rand.NewSource(1)))
	if got := e.View(0, 1); got != (BagView{}) {
		t.Fatalf("view before any draw = %+v, want zero", got)
	}
	want := e.Draw(0, 1, 10)
	if got := e.View(0, 1); got != want {
		t.Fatalf("view after Draw = %+v, want %+v", got, want)
	}
	if v, ok := e.DrawOne(1, 0); !ok {
		t.Fatal("DrawOne failed")
	} else if flipped := e.View(1, 0); flipped.Mean == want.Mean && v != 0 {
		// Mean should have moved with the 11th sample (almost surely).
		_ = flipped
	}
	if got, want := e.View(0, 1).N, 11; got != want {
		t.Fatalf("view N = %d, want %d", got, want)
	}
	if got := e.View(0, 1).Mean; got != -e.View(1, 0).Mean {
		t.Fatalf("orientation flip broken: %v vs %v", got, -e.View(1, 0).Mean)
	}

	// A cap-exhausted draw publishes nothing new but must not corrupt the
	// snapshot either.
	e.SetSpendingCap(e.TMC())
	before := e.View(0, 1)
	e.Draw(0, 1, 5)
	if got := e.View(0, 1); got != before {
		t.Fatalf("cap-truncated draw changed view: %+v -> %+v", before, got)
	}
}
