package crowd

import (
	"math/rand"
	"testing"
)

// Every simulated query is millions of Draw calls; these benchmarks size
// the engine's per-microtask overhead.

func BenchmarkEngineDrawBatch(b *testing.B) {
	e := newTestEngine(100, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Draw(i%99, 99, 30)
	}
}

func BenchmarkEngineDrawOne(b *testing.B) {
	e := newTestEngine(100, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.DrawOne(i%99, 99)
	}
}

func BenchmarkEngineDrawLogged(b *testing.B) {
	e := newTestEngine(100, 3)
	e.EnableLog()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.DrawOne(i%99, 99)
	}
}

func BenchmarkEngineView(b *testing.B) {
	e := newTestEngine(100, 4)
	e.Draw(0, 1, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.View(0, 1)
	}
}

func BenchmarkWorkerPoolPreference(b *testing.B) {
	p := NewWorkerPool(gaussOracle{n: 100, sigma: 0.2}, WorkerPoolConfig{
		Workers: 200, SpammerFraction: 0.1, ScaleSD: 0.3, Seed: 5,
	})
	rng := rand.New(rand.NewSource(6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Preference(rng, i%99, 99)
	}
}
