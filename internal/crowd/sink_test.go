package crowd

import (
	"errors"
	"math/rand"
	"testing"
)

// captureSink copies every batch it receives (the slice is only valid
// during the call) and remembers the batch boundaries.
type captureSink struct {
	recs    []Record
	batches int
}

func (c *captureSink) Record(recs []Record) {
	c.recs = append(c.recs, recs...)
	c.batches++
}

func TestLogSinkStreamsEveryRecord(t *testing.T) {
	e := newTestEngine(8, 31)
	sink := &captureSink{}
	e.SetLogSink(sink) // enables logging as a side effect
	e.Draw(1, 4, 30)
	e.Draw(5, 2, 12)
	e.Grade(3)

	logged := e.Log()
	if len(logged) == 0 {
		t.Fatal("SetLogSink did not enable logging")
	}
	if len(sink.recs) != len(logged) {
		t.Fatalf("sink saw %d records, log holds %d", len(sink.recs), len(logged))
	}
	for i := range logged {
		if sink.recs[i] != logged[i] {
			t.Fatalf("record %d: sink got %+v, log holds %+v", i, sink.recs[i], logged[i])
		}
	}
	if int64(len(logged)) != e.TMC() {
		t.Fatalf("log holds %d records, TMC %d", len(logged), e.TMC())
	}

	// Detaching must stop the stream but leave the in-memory log running.
	seen := len(sink.recs)
	e.SetLogSink(nil)
	e.Draw(0, 7, 5)
	if len(sink.recs) != seen {
		t.Fatalf("detached sink still received records")
	}
	if len(e.Log()) != len(logged)+5 {
		t.Fatalf("in-memory log stopped accumulating after detach")
	}
}

func TestLogSinkChargedTasksOnlyOnShortfall(t *testing.T) {
	// Under a failing oracle only delivered answers are charged; the sink
	// must see exactly those, never the refunded slots.
	e := NewEngine(&brittleOracle{n: 5, supply: 20}, rand.New(rand.NewSource(7)))
	sink := &captureSink{}
	e.SetLogSink(sink)
	e.Draw(0, 1, 50)
	if len(sink.recs) != 20 {
		t.Fatalf("sink saw %d records, want the 20 delivered", len(sink.recs))
	}
	if int64(len(sink.recs)) != e.TMC() {
		t.Fatalf("sink records %d != TMC %d", len(sink.recs), e.TMC())
	}
}

func TestReplayThenLivePartialDeliversReplayedPrefix(t *testing.T) {
	// Record 25 judgments for one pair, then resume against a live oracle
	// that can only supply 5 more before failing: the replayed prefix must
	// arrive in full — history is already paid for and cannot fail — and
	// only the shortfall is the live oracle's.
	e := newTestEngine(8, 53)
	e.EnableLog()
	e.Draw(0, 3, 40)
	log := e.Log()[:25]

	rl := NewReplayThenLive(log, &brittleOracle{n: 8, supply: 5})
	rng := rand.New(rand.NewSource(9))
	dst := make([]float64, 40)
	filled, err := rl.PreferencesPartial(rng, 0, 3, dst)
	if filled != 30 {
		t.Fatalf("filled = %d, want 25 replayed + 5 live", filled)
	}
	if !errors.Is(err, errMarketDown) {
		t.Fatalf("err = %v, want the live oracle's failure", err)
	}
	if got := rl.ReplayedServed(); got != 25 {
		t.Fatalf("ReplayedServed = %d, want 25", got)
	}
	if got := rl.LiveTasks(); got != 5 {
		t.Fatalf("LiveTasks = %d, want 5 — replayed answers are free", got)
	}

	// Replay exhausted, live dead: nothing arrives, error persists.
	filled, err = rl.PreferencesPartial(rng, 0, 3, dst[:4])
	if filled != 0 || err == nil {
		t.Fatalf("after exhaustion: filled=%d err=%v, want 0 and an error", filled, err)
	}
}

func TestReplayThenLivePartialFullyReplayed(t *testing.T) {
	e := newTestEngine(6, 54)
	e.EnableLog()
	e.Draw(2, 5, 10)

	rl := NewReplayThenLive(e.Log(), &brittleOracle{n: 6, supply: 0})
	dst := make([]float64, 10)
	filled, err := rl.PreferencesPartial(rand.New(rand.NewSource(1)), 2, 5, dst)
	if filled != 10 || err != nil {
		t.Fatalf("filled=%d err=%v, want all 10 from replay with no error", filled, err)
	}
	if rl.LiveTasks() != 0 {
		t.Fatalf("full replay touched the live oracle: %d tasks", rl.LiveTasks())
	}
	if rl.ReplayedServed() != 10 {
		t.Fatalf("ReplayedServed = %d, want 10", rl.ReplayedServed())
	}
}
