package crowd

import (
	"errors"
	"math"
	"testing"
	"time"
)

func faultyOverSim(n, workers int, simSeed int64, cfg FaultConfig) *FaultyPlatform {
	base := gaussOracle{n: n, sigma: 0.2}
	return NewFaultyPlatform(NewSimPlatform(base, workers, simSeed), cfg)
}

func TestFaultyScheduleDeterministic(t *testing.T) {
	// Two faulty platforms with identical seeds, driven through the same
	// sequence of batches, must serve byte-identical answer streams.
	run := func() [][]Answer {
		fp := faultyOverSim(10, 1, 3, FaultConfig{
			Seed: 5, Drop: 0.2, Duplicate: 0.1, Flip: 0.2, Malformed: 0.1,
		})
		var out [][]Answer
		for b := 0; b < 8; b++ {
			tasks := []Task{{0, 1}, {0, 1}, {2, 3}}[b%2 : b%2+2]
			id, err := fp.Post(tasks)
			if err != nil {
				t.Fatal(err)
			}
			answers, err := fp.Collect(id)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, answers)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("batch counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("batch %d sizes differ: %d vs %d", i, len(a[i]), len(b[i]))
		}
		for t2 := range a[i] {
			x, y := a[i][t2], b[i][t2]
			// NaN is a scheduled malformed value; NaN != NaN, so compare
			// bit-level equivalence instead of ==.
			same := x.Task == y.Task &&
				(x.Value == y.Value || (math.IsNaN(x.Value) && math.IsNaN(y.Value)))
			if !same {
				t.Fatalf("batch %d answer %d differs: %v vs %v", i, t2, x, y)
			}
		}
	}
}

func TestFaultyFailAfterPosts(t *testing.T) {
	fp := faultyOverSim(6, 2, 4, FaultConfig{Seed: 2, FailAfterPosts: 2})
	var ids []int
	for b := 0; b < 2; b++ {
		id, err := fp.Post([]Task{{0, 1}})
		if err != nil {
			t.Fatalf("post %d before the cliff failed: %v", b, err)
		}
		ids = append(ids, id)
	}
	if _, err := fp.Post([]Task{{0, 1}}); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("post after the cliff returned %v, want an injected fault", err)
	}
	// Collections of earlier batches fail too: the market is down.
	if _, err := fp.Collect(ids[0]); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("collect after the cliff returned %v, want an injected fault", err)
	}
	if fp.Posts() != 2 {
		t.Errorf("Posts = %d, want 2", fp.Posts())
	}
}

func TestFaultyFlipIsLegalOrientation(t *testing.T) {
	// Flip rewrites the answer into the reversed orientation with a negated
	// value — a legal presentation the adapter must normalize, not reject.
	fp := faultyOverSim(8, 2, 6, FaultConfig{Seed: 3, Flip: 1})
	po := NewPlatformOracle(8, fp)
	dst := make([]float64, 20)
	filled, err := po.PreferencesPartial(nil, 1, 5, dst)
	if err != nil {
		t.Fatal(err)
	}
	if filled != 20 {
		t.Fatalf("flipped answers rejected: filled %d of 20", filled)
	}
	for _, v := range dst {
		if v < -1 || v > 1 {
			t.Fatalf("normalized value %v out of range", v)
		}
	}
	if q := po.Quarantined(); len(q) != 0 {
		t.Errorf("%d flipped answers quarantined; flips are valid", len(q))
	}
}

func TestFaultyMispairQuarantined(t *testing.T) {
	fp := faultyOverSim(8, 2, 7, FaultConfig{Seed: 4, Mispair: 1})
	po := NewPlatformOracle(8, fp)
	dst := make([]float64, 10)
	filled, err := po.PreferencesPartial(nil, 0, 3, dst)
	if err != nil {
		t.Fatal(err)
	}
	if filled != 0 {
		t.Fatalf("mis-paired answers accepted: filled = %d", filled)
	}
	if q := po.Quarantined(); len(q) != 10 {
		t.Errorf("quarantined %d answers, want all 10", len(q))
	}
	if !hasEventKind(po.Failures(), "quarantine") {
		t.Errorf("failure log misses quarantine events: %v", po.Failures())
	}
}

func TestFaultyMalformedQuarantined(t *testing.T) {
	fp := faultyOverSim(8, 2, 8, FaultConfig{Seed: 6, Malformed: 1})
	po := NewPlatformOracle(8, fp)
	dst := make([]float64, 10)
	filled, err := po.PreferencesPartial(nil, 2, 6, dst)
	if err != nil {
		t.Fatal(err)
	}
	if filled != 0 {
		t.Fatalf("malformed values accepted: filled = %d", filled)
	}
	for _, a := range po.Quarantined() {
		if a.Value >= -1 && a.Value <= 1 {
			t.Fatalf("quarantined answer %v is actually valid", a)
		}
	}
}

func TestFaultyStragglerTimesOutUnderResilience(t *testing.T) {
	// A straggling batch blocks until its context cancels; with a deadline
	// the resilient layer converts it into a timeout and recovers by
	// re-posting (the re-posted batch draws a new fault plan).
	fp := faultyOverSim(8, 2, 9, FaultConfig{Seed: 11, Straggle: 0.5})
	rp := NewResilientPlatform(fp, RetryPolicy{
		MaxAttempts: 6, FailureThreshold: 10,
		CollectTimeout: 5 * time.Millisecond, Sleep: noSleep,
	})
	for b := 0; b < 6; b++ {
		id, err := rp.Post([]Task{{0, 1}, {0, 1}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rp.Collect(id); err != nil {
			t.Fatalf("batch %d not recovered: %v", b, err)
		}
	}
	if !hasEventKind(rp.Failures(), "timeout") {
		t.Skip("no straggler fired in this schedule; widen the loop if this recurs")
	}
}

func TestFaultyCloseReachesInner(t *testing.T) {
	base := gaussOracle{n: 4, sigma: 0.1}
	sim := NewSimPlatform(base, 2, 10)
	fp := NewFaultyPlatform(sim, FaultConfig{Seed: 1})
	if err := fp.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Post([]Task{{0, 1}}); !errors.Is(err, ErrPlatformClosed) {
		t.Errorf("inner platform not closed: %v", err)
	}
}
