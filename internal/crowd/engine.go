package crowd

import (
	"fmt"
	"math/rand"
)

// Engine mediates every microtask purchase of a query. It accumulates the
// per-pair sample bags (reused across query phases), the total monetary
// cost, and the latency clock measured in batch rounds. An Engine is not
// safe for concurrent use; a query is a single logical thread of control.
type Engine struct {
	oracle Oracle
	rng    *rand.Rand

	bags map[pairKey]*bag

	tmc     int64 // microtasks purchased (pairwise + graded)
	rounds  int64 // latency clock, in batch rounds
	pairCmp int64 // pairwise microtasks only
	graded  int64 // graded microtasks only
	cap     int64 // global spending cap; 0 = unlimited

	logging bool
	log     []Record
}

// NewEngine returns an engine over the given oracle. rng drives all sample
// generation; pass a seeded source for reproducible experiments.
func NewEngine(o Oracle, rng *rand.Rand) *Engine {
	if o == nil {
		panic("crowd: NewEngine requires a non-nil oracle")
	}
	if rng == nil {
		panic("crowd: NewEngine requires a non-nil rng")
	}
	return &Engine{
		oracle: o,
		rng:    rng,
		bags:   make(map[pairKey]*bag),
	}
}

// Oracle returns the oracle the engine draws from.
func (e *Engine) Oracle() Oracle { return e.oracle }

// NumItems returns the size of the item set.
func (e *Engine) NumItems() int { return e.oracle.NumItems() }

// Rand returns the engine's random source, shared with algorithms that need
// randomization (sampling, shuffles) so a single seed fixes a whole run.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// SetSpendingCap limits the engine's total monetary cost: once TMC
// reaches the cap, further pairwise purchases are silently truncated and
// queries complete best-effort on the evidence at hand. cap <= 0 removes
// the limit. The cap compares against the TMC already spent, so it can be
// set (or tightened) mid-session.
func (e *Engine) SetSpendingCap(cap int64) {
	if cap <= 0 {
		e.cap = 0
		return
	}
	e.cap = cap
}

// Remaining returns how many more microtasks the cap allows, or a negative
// value when the engine is uncapped.
func (e *Engine) Remaining() int64 {
	if e.cap <= 0 {
		return -1
	}
	if left := e.cap - e.tmc; left > 0 {
		return left
	}
	return 0
}

// allow truncates a requested purchase to the cap.
func (e *Engine) allow(n int) int {
	if e.cap <= 0 {
		return n
	}
	left := e.cap - e.tmc
	if left <= 0 {
		return 0
	}
	if int64(n) > left {
		return int(left)
	}
	return n
}

// Draw purchases up to n more preference microtasks for the pair (i, j) —
// fewer if a spending cap is about to be hit — and returns the updated bag
// view oriented toward i. Each microtask costs one unit of TMC. Draw does
// not advance the latency clock; callers Tick at their batch boundaries.
func (e *Engine) Draw(i, j, n int) BagView {
	if i == j {
		panic(fmt.Sprintf("crowd: Draw on identical items %d", i))
	}
	if n < 0 {
		panic(fmt.Sprintf("crowd: Draw with negative count %d", n))
	}
	n = e.allow(n)
	k := keyOf(i, j)
	b := e.bags[k]
	if b == nil {
		b = &bag{}
		e.bags[k] = b
	}
	record := func(v float64) {
		if v < -1 || v > 1 {
			panic(fmt.Sprintf("crowd: oracle returned preference %v outside [-1,1] for pair (%d,%d)", v, k.lo, k.hi))
		}
		b.add(v)
		if e.logging {
			e.log = append(e.log, Record{Round: e.rounds, I: k.lo, J: k.hi, Value: v})
		}
	}
	// Oracles backed by asynchronous platforms answer whole batches in
	// one exchange; everyone else is sampled one microtask at a time.
	if bo, ok := e.oracle.(BatchOracle); ok && n > 1 {
		for _, v := range bo.Preferences(e.rng, k.lo, k.hi, n) {
			record(v)
		}
	} else {
		for t := 0; t < n; t++ {
			record(e.oracle.Preference(e.rng, k.lo, k.hi))
		}
	}
	e.tmc += int64(n)
	e.pairCmp += int64(n)
	return b.view(i != k.lo)
}

// DrawOne purchases a single preference microtask for the pair (i, j) and
// returns the sampled value oriented toward i (positive favors i). Like
// Draw it costs one unit of TMC and records the sample in the pair's bag.
// The second result is false — and nothing is purchased — when a spending
// cap is exhausted.
func (e *Engine) DrawOne(i, j int) (float64, bool) {
	if i == j {
		panic(fmt.Sprintf("crowd: DrawOne on identical items %d", i))
	}
	if e.allow(1) == 0 {
		return 0, false
	}
	k := keyOf(i, j)
	b := e.bags[k]
	if b == nil {
		b = &bag{}
		e.bags[k] = b
	}
	v := e.oracle.Preference(e.rng, k.lo, k.hi)
	if v < -1 || v > 1 {
		panic(fmt.Sprintf("crowd: oracle returned preference %v outside [-1,1] for pair (%d,%d)", v, k.lo, k.hi))
	}
	b.add(v)
	if e.logging {
		e.log = append(e.log, Record{Round: e.rounds, I: k.lo, J: k.hi, Value: v})
	}
	e.tmc++
	e.pairCmp++
	if i != k.lo {
		return -v, true
	}
	return v, true
}

// View returns the current bag view for pair (i, j) oriented toward i,
// without purchasing anything. A pair never drawn has a zero view.
func (e *Engine) View(i, j int) BagView {
	if i == j {
		panic(fmt.Sprintf("crowd: View on identical items %d", i))
	}
	k := keyOf(i, j)
	b := e.bags[k]
	if b == nil {
		return BagView{}
	}
	return b.view(i != k.lo)
}

// Grade purchases one graded microtask for item i and returns the grade.
// It costs one unit of TMC, like a pairwise microtask (Appendix B). The
// oracle must implement Grader.
func (e *Engine) Grade(i int) float64 {
	g, ok := e.oracle.(Grader)
	if !ok {
		panic("crowd: oracle does not support graded judgments")
	}
	e.tmc++
	e.graded++
	v := g.Grade(e.rng, i)
	if e.logging {
		e.log = append(e.log, Record{Round: e.rounds, I: i, J: -1, Value: v})
	}
	return v
}

// Tick advances the latency clock by n batch rounds. Algorithms call it
// once per wave of parallel batches (§5.5).
func (e *Engine) Tick(n int) {
	if n < 0 {
		panic(fmt.Sprintf("crowd: Tick with negative rounds %d", n))
	}
	e.rounds += int64(n)
}

// TMC returns the total monetary cost so far: the number of microtasks
// purchased, pairwise and graded combined.
func (e *Engine) TMC() int64 { return e.tmc }

// PairwiseTasks returns the number of pairwise microtasks purchased.
func (e *Engine) PairwiseTasks() int64 { return e.pairCmp }

// GradedTasks returns the number of graded microtasks purchased.
func (e *Engine) GradedTasks() int64 { return e.graded }

// Rounds returns the latency clock: the number of batch rounds elapsed.
func (e *Engine) Rounds() int64 { return e.rounds }

// PairsTouched returns how many distinct pairs have at least one purchased
// sample; useful for diagnostics and tests.
func (e *Engine) PairsTouched() int { return len(e.bags) }

// Reset discards all purchased samples, zeroes the cost and latency
// counters, and clears the audit log, keeping the oracle and random
// source.
func (e *Engine) Reset() {
	e.bags = make(map[pairKey]*bag)
	e.tmc, e.rounds, e.pairCmp, e.graded = 0, 0, 0, 0
	e.log = nil
}
