package crowd

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
)

// numShards stripes the pair-state map so concurrent purchases of distinct
// pairs rarely contend on the same lock. Must be a power of two.
const numShards = 64

// pairState holds one unordered pair's sample bag together with the pair's
// private random stream. The per-pair stream is what makes parallel
// execution deterministic: the t-th sample of a pair depends only on the
// engine seed and the pair identity, never on how purchases of different
// pairs interleave across goroutines.
//
// view is the pair's atomically published BagView snapshot in canonical
// (lo, hi) orientation. There is a single writer per pair — whoever holds
// mu — so publication is a plain pointer store; readers load the pointer
// and never touch the mutex. Snapshots are immutable once published.
type pairState struct {
	mu   sync.Mutex
	rng  *rand.Rand
	bag  bag
	view atomic.Pointer[BagView]
}

// publishLocked snapshots the bag in canonical orientation and publishes
// it for lock-free readers. Callers must hold ps.mu.
func (ps *pairState) publishLocked() {
	v := ps.bag.view(false)
	ps.view.Store(&v)
}

// drawBufPool recycles the per-batch sample scratch buffers so the Draw
// hot path allocates nothing for the samples themselves.
var drawBufPool = sync.Pool{
	New: func() any {
		s := make([]float64, 0, 256)
		return &s
	},
}

// Engine mediates every microtask purchase of a query. It accumulates the
// per-pair sample bags (reused across query phases), the total monetary
// cost, and the latency clock measured in batch rounds.
//
// An Engine is safe for concurrent use: the pair index is a striped
// read-mostly map whose hot lookups are lock-free, the cost and latency
// counters are atomic, and the spending cap is enforced by atomic
// reservation, so concurrent purchases never overshoot it. Each pair
// samples from its own deterministic random stream derived from the engine
// seed and the pair key, so a fixed seed yields identical samples for
// every pair regardless of goroutine interleaving — a parallel run is
// byte-identical to a sequential one.
//
// Reads are mutex-free: View loads the pair's atomically published bag
// snapshot, so observers (stopping-rule tests, leanings, workload probes)
// never contend with purchases. Writes batch: a Draw of n microtasks costs
// one dynamic oracle dispatch (via BatchOracle when implemented), one
// pooled scratch buffer, and — when logging — one audit-log flush, instead
// of n of each.
//
// Concurrency contract for collaborators: the Oracle (and Grader) must be
// safe for concurrent calls when the engine is driven from several
// goroutines; every oracle in this repository is. Rand() returns the
// control-thread generator and is NOT safe for concurrent use — it belongs
// to the query's single logical thread of control (shuffles, sampling
// plans), never to sampling workers.
type Engine struct {
	oracle   Oracle
	batch    BatchOracle         // oracle's batch kernel, cached once at construction
	fallible FallibleBatchOracle // oracle's error-aware kernel, preferred when present
	rng      *rand.Rand          // control-thread randomness, exposed via Rand()
	control  *ControlRand        // mutex-guarded view of rng for concurrent sessions
	baseSeed int64               // root of the per-pair and per-item sample streams

	shards [numShards]shard

	tmc     atomic.Int64 // microtasks purchased (pairwise + graded)
	rounds  atomic.Int64 // latency clock, in batch rounds
	pairCmp atomic.Int64 // pairwise microtasks only
	graded  atomic.Int64 // graded microtasks only
	cap     atomic.Int64 // global spending cap; 0 = unlimited

	// The failure latch: once the oracle reports an unrecoverable platform
	// error the engine degrades — every further purchase is declined (like
	// a spent cap), so in-flight queries conclude from the evidence already
	// bought and no more money is sent to a failing platform. failed is the
	// lock-free fast check; failCause holds the first error.
	failed    atomic.Bool
	failMu    sync.Mutex
	failCause error

	logging atomic.Bool
	logMu   sync.Mutex
	log     []Record
	sink    RecordSink

	// ins is the pre-resolved metric bundle; nil when telemetry is off.
	// Hot paths pay one nil check, then plain atomic adds.
	ins *EngineInstruments

	gradeMu  sync.Mutex
	gradeRng map[int]*rand.Rand // per-item graded sample streams
}

// NewEngine returns an engine over the given oracle. rng seeds all sample
// generation; pass a seeded source for reproducible experiments. The
// engine draws one value from rng to root its per-pair sample streams, so
// the same seeded rng always produces the same engine behaviour.
func NewEngine(o Oracle, rng *rand.Rand) *Engine {
	if o == nil {
		panic("crowd: NewEngine requires a non-nil oracle")
	}
	if rng == nil {
		panic("crowd: NewEngine requires a non-nil rng")
	}
	e := &Engine{
		oracle:   o,
		rng:      rng,
		baseSeed: rng.Int63(),
		gradeRng: make(map[int]*rand.Rand),
	}
	e.control = &ControlRand{r: rng}
	// The batch kernels are resolved once so the Draw hot path pays no
	// type assertion per call. The fallible kernel wins when both exist:
	// it is the only path that can decline part of a purchase instead of
	// panicking.
	e.batch, _ = o.(BatchOracle)
	e.fallible, _ = o.(FallibleBatchOracle)
	return e
}

// fail latches the engine into degraded mode; the first cause wins.
func (e *Engine) fail(cause error) {
	e.failMu.Lock()
	if e.failCause == nil {
		e.failCause = fmt.Errorf("%w: %w", ErrPlatformFailure, cause)
	}
	e.failMu.Unlock()
	e.failed.Store(true)
}

// Err returns the error that degraded the engine, or nil while healthy.
// A degraded engine declines every further purchase: queries over it
// conclude best-effort from the evidence already bought, exactly like a
// spent global cap, and the caller surfaces Err as a PartialResultError.
func (e *Engine) Err() error {
	if !e.failed.Load() {
		return nil
	}
	e.failMu.Lock()
	defer e.failMu.Unlock()
	return e.failCause
}

// mix64 is the SplitMix64 finalizer: a bijective avalanche so that nearby
// pair keys land on unrelated shards and unrelated sample streams.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// pairHash mixes a pair key into a well-spread 64-bit value.
func pairHash(k pairKey) uint64 {
	return mix64(uint64(uint32(k.lo))<<32 | uint64(uint32(k.hi)))
}

// pairSeed derives the pair's private stream seed: engine seed ⊕ pair
// identity. Deterministic per (seed, pair), independent of purchase order.
func (e *Engine) pairSeed(k pairKey) int64 {
	return e.baseSeed ^ int64(pairHash(k)>>1)
}

// gradeSeed derives the per-item graded stream seed; the constant keeps
// graded streams disjoint from pairwise streams of pairs involving i.
const gradeTag = 0x9e3779b97f4a7c15

func (e *Engine) gradeSeed(i int) int64 {
	return e.baseSeed ^ int64(mix64(uint64(uint32(i))^gradeTag)>>1)
}

// pair returns the pair's state, creating it on first touch.
func (e *Engine) pair(k pairKey) *pairState {
	s := &e.shards[pairHash(k)&(numShards-1)]
	return s.loadOrCreate(k, func() *pairState {
		return &pairState{rng: rand.New(rand.NewSource(e.pairSeed(k)))}
	})
}

// lookup returns the pair's state without creating it.
func (e *Engine) lookup(k pairKey) *pairState {
	return e.shards[pairHash(k)&(numShards-1)].load(k)
}

// Oracle returns the oracle the engine draws from.
func (e *Engine) Oracle() Oracle { return e.oracle }

// NumItems returns the size of the item set.
func (e *Engine) NumItems() int { return e.oracle.NumItems() }

// Rand returns the engine's control-thread random source, shared with
// algorithms that need randomization (sampling, shuffles) so a single seed
// fixes a whole run. It is not safe for concurrent use; only the query's
// control goroutine may touch it. Sample generation does not consume from
// it — samples come from per-pair streams — so control-flow randomness is
// identical whether comparison waves execute sequentially or in parallel.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// ControlRand is a mutex-guarded view over the engine's control-thread
// random source for sessions running several query control goroutines at
// once. Each call consumes from the same underlying stream as Rand(), so
// a single-query run that switches to ControlRand draws the identical
// sequence — only the cross-query interleaving is serialized.
type ControlRand struct {
	mu sync.Mutex
	r  *rand.Rand
}

// Intn is rand.Rand.Intn under the control mutex.
func (c *ControlRand) Intn(n int) int {
	c.mu.Lock()
	v := c.r.Intn(n)
	c.mu.Unlock()
	return v
}

// Perm is rand.Rand.Perm under the control mutex.
func (c *ControlRand) Perm(n int) []int {
	c.mu.Lock()
	p := c.r.Perm(n)
	c.mu.Unlock()
	return p
}

// Shuffle is rand.Rand.Shuffle under the control mutex.
func (c *ControlRand) Shuffle(n int, swap func(i, j int)) {
	c.mu.Lock()
	c.r.Shuffle(n, swap)
	c.mu.Unlock()
}

// Control returns the engine's concurrency-safe control random source.
// Use it instead of Rand() wherever more than one query may be running on
// the engine.
func (e *Engine) Control() *ControlRand { return e.control }

// SetSpendingCap limits the engine's total monetary cost: once TMC
// reaches the cap, further purchases are truncated and queries complete
// best-effort on the evidence at hand. cap <= 0 removes the limit. The cap
// compares against the TMC already spent, so it can be set (or tightened)
// mid-session, from any goroutine.
func (e *Engine) SetSpendingCap(cap int64) {
	if cap <= 0 {
		e.cap.Store(0)
		return
	}
	e.cap.Store(cap)
}

// Remaining returns how many more microtasks the cap allows, or a negative
// value when the engine is uncapped.
func (e *Engine) Remaining() int64 {
	c := e.cap.Load()
	if c <= 0 {
		return -1
	}
	if left := c - e.tmc.Load(); left > 0 {
		return left
	}
	return 0
}

// reserve atomically claims up to n units of TMC against the cap and
// returns how many were granted. Because the claim and the counter bump
// are one compare-and-swap, concurrent purchases can never overshoot the
// cap between check and increment.
func (e *Engine) reserve(n int) int {
	if n <= 0 {
		return 0
	}
	for {
		cur := e.tmc.Load()
		m := int64(n)
		if c := e.cap.Load(); c > 0 {
			left := c - cur
			if left <= 0 {
				return 0
			}
			if m > left {
				m = left
			}
		}
		if e.tmc.CompareAndSwap(cur, cur+m) {
			return int(m)
		}
	}
}

// flushLog appends one pair's batch of samples to the audit log under a
// single logMu acquisition — the per-sample lock round trip the scalar
// path used to pay is gone. Per-pair record order is preserved because
// callers still hold the pair mutex, which serializes batches of one pair.
func (e *Engine) flushLog(k pairKey, vs []float64) {
	round := e.rounds.Load()
	e.logMu.Lock()
	n0 := len(e.log)
	for _, v := range vs {
		e.log = append(e.log, Record{Round: round, I: k.lo, J: k.hi, Value: v})
	}
	if e.sink != nil {
		e.sink.Record(e.log[n0:])
	}
	e.logMu.Unlock()
}

// appendLog records one microtask if logging is enabled.
func (e *Engine) appendLog(r Record) {
	e.logMu.Lock()
	e.log = append(e.log, r)
	if e.sink != nil {
		e.sink.Record(e.log[len(e.log)-1:])
	}
	e.logMu.Unlock()
}

// Draw purchases up to n more preference microtasks for the pair (i, j) —
// fewer if a spending cap is about to be hit — and returns the updated bag
// view oriented toward i. Each microtask costs one unit of TMC. Draw does
// not advance the latency clock; callers Tick at their batch boundaries.
//
// DrawN is Draw plus the exact charge: the second result is how many
// microtasks were actually delivered and charged for this call, after cap
// truncation and platform-shortfall refunds. Callers attributing cost to
// one of several concurrent queries need the per-call count — a view diff
// would misattribute when another query draws the same pair concurrently.
//
// The whole batch is sampled through one dynamic dispatch: oracles
// implementing FallibleBatchOracle (preferred) or BatchOracle fill a
// pooled scratch buffer in a single call, everyone else falls back to n
// direct Preference calls. All paths consume the pair's private stream
// identically (BatchOracle's contract), so batching never changes the
// samples a pair receives.
//
// The fallible path may decline part of the purchase: only the answers
// actually delivered are charged (the reservation for undelivered slots
// is refunded), and a reported error latches the engine into degraded
// mode — this and every later Draw grant nothing more, so TMC always
// equals the answers accepted into bags, even mid-failure.
func (e *Engine) Draw(i, j, n int) BagView {
	v, _ := e.DrawN(i, j, n)
	return v
}

// DrawN purchases like Draw and additionally returns the number of
// microtasks delivered and charged by this call. See Draw.
func (e *Engine) DrawN(i, j, n int) (BagView, int) {
	if i == j {
		panic(fmt.Sprintf("crowd: DrawN on identical items %d", i))
	}
	if n < 0 {
		panic(fmt.Sprintf("crowd: DrawN with negative count %d", n))
	}
	k := keyOf(i, j)
	ps := e.pair(k)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if e.failed.Load() {
		return ps.bag.view(i != k.lo), 0
	}
	req := n
	n = e.reserve(n)
	if ins := e.ins; ins != nil && n < req {
		ins.CapDenied.Add(int64(req - n))
	}
	charged := 0
	if n > 0 {
		bufp := drawBufPool.Get().(*[]float64)
		buf := *bufp
		if cap(buf) < n {
			buf = make([]float64, n)
		}
		buf = buf[:n]
		filled := n
		switch {
		case e.fallible != nil:
			var err error
			filled, err = e.fallible.PreferencesPartial(ps.rng, k.lo, k.hi, buf)
			if filled < 0 {
				filled = 0
			} else if filled > n {
				filled = n
			}
			if err != nil {
				e.fail(err)
			}
		case e.batch != nil:
			e.batch.Preferences(ps.rng, k.lo, k.hi, buf)
		default:
			o := e.oracle
			for t := range buf {
				buf[t] = o.Preference(ps.rng, k.lo, k.hi)
			}
		}
		if filled < n {
			// Refund the reservation for answers that never arrived: TMC
			// charges only what was delivered and accepted.
			e.tmc.Add(int64(filled - n))
		}
		buf = buf[:filled]
		for _, v := range buf {
			if v < -1 || v > 1 {
				panic(fmt.Sprintf("crowd: oracle returned preference %v outside [-1,1] for pair (%d,%d)", v, k.lo, k.hi))
			}
		}
		if filled > 0 {
			ps.bag.addAll(buf)
			if e.logging.Load() {
				e.flushLog(k, buf)
			}
			e.pairCmp.Add(int64(filled))
			ps.publishLocked()
		}
		if ins := e.ins; ins != nil {
			ins.Batches.Inc()
			ins.Samples.Add(int64(filled))
			ins.TMC.Add(int64(filled))
			if filled < n {
				ins.Refunds.Add(int64(n - filled))
			}
			ins.BagSize.Observe(int64(ps.bag.pref.N()))
		}
		*bufp = buf[:0]
		drawBufPool.Put(bufp)
		charged = filled
	}
	return ps.bag.view(i != k.lo), charged
}

// DrawOne purchases a single preference microtask for the pair (i, j) and
// returns the sampled value oriented toward i (positive favors i). Like
// Draw it costs one unit of TMC and records the sample in the pair's bag.
// The second result is false — and nothing is purchased — when a spending
// cap is exhausted or the engine has degraded after a platform failure.
func (e *Engine) DrawOne(i, j int) (float64, bool) {
	if i == j {
		panic(fmt.Sprintf("crowd: DrawOne on identical items %d", i))
	}
	k := keyOf(i, j)
	ps := e.pair(k)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if e.failed.Load() {
		return 0, false
	}
	if e.reserve(1) == 0 {
		if ins := e.ins; ins != nil {
			ins.CapDenied.Inc()
		}
		return 0, false
	}
	var v float64
	if e.fallible != nil {
		var one [1]float64
		filled, err := e.fallible.PreferencesPartial(ps.rng, k.lo, k.hi, one[:])
		if err != nil {
			e.fail(err)
		}
		if filled <= 0 {
			e.tmc.Add(-1) // nothing delivered, nothing charged
			if ins := e.ins; ins != nil {
				ins.Batches.Inc()
				ins.Refunds.Inc()
			}
			return 0, false
		}
		v = one[0]
	} else {
		v = e.oracle.Preference(ps.rng, k.lo, k.hi)
	}
	if v < -1 || v > 1 {
		panic(fmt.Sprintf("crowd: oracle returned preference %v outside [-1,1] for pair (%d,%d)", v, k.lo, k.hi))
	}
	ps.bag.add(v)
	if e.logging.Load() {
		e.appendLog(Record{Round: e.rounds.Load(), I: k.lo, J: k.hi, Value: v})
	}
	e.pairCmp.Add(1)
	ps.publishLocked()
	if ins := e.ins; ins != nil {
		ins.Batches.Inc()
		ins.Samples.Inc()
		ins.TMC.Inc()
		ins.BagSize.Observe(int64(ps.bag.pref.N()))
	}
	if i != k.lo {
		return -v, true
	}
	return v, true
}

// View returns the current bag view for pair (i, j) oriented toward i,
// without purchasing anything. A pair never drawn has a zero view.
//
// View is mutex-free and allocation-free: it loads the pair's atomically
// published snapshot, so it never contends with in-flight purchases of the
// same pair. The snapshot is the state as of the last completed purchase.
func (e *Engine) View(i, j int) BagView {
	if i == j {
		panic(fmt.Sprintf("crowd: View on identical items %d", i))
	}
	k := keyOf(i, j)
	ps := e.lookup(k)
	if ps == nil {
		return BagView{}
	}
	p := ps.view.Load()
	if p == nil {
		// Pair created but nothing purchased yet (e.g. a cap-exhausted
		// draw): indistinguishable from never drawn.
		return BagView{}
	}
	if i != k.lo {
		return p.flipped()
	}
	return *p
}

// Posterior exports the exact Welford state of pair (i, j)'s sample bag
// in canonical (lo, hi) orientation, and whether the pair has any
// samples. It is the commit side of the judgment store round trip:
// Posterior → store → SeedPair reproduces the bag bit-for-bit.
func (e *Engine) Posterior(i, j int) (PairPosterior, bool) {
	if i == j {
		panic(fmt.Sprintf("crowd: Posterior on identical items %d", i))
	}
	ps := e.lookup(keyOf(i, j))
	if ps == nil {
		return PairPosterior{}, false
	}
	ps.mu.Lock()
	p := ps.bag.posterior()
	ps.mu.Unlock()
	return p, p.N > 0
}

// SeedPair installs a previously exported posterior as pair (i, j)'s
// sample bag — in canonical (lo, hi) orientation — without purchasing
// anything: no TMC is charged, no oracle is called, the pair's sample
// stream is not consumed, and nothing is appended to the audit log (the
// audit log records money spent; seeded evidence was paid for by an
// earlier query and is accounted in the store, not here).
//
// With overwrite false, seeding only succeeds on an untouched pair: once
// real samples exist the live evidence wins. With overwrite true, a
// posterior that subsumes the live bag (p.N >= live count) replaces it —
// sound because a pair's samples are a deterministic stream, so the live
// bag is a prefix of the larger recorded one; a live bag that has grown
// past the posterior still wins.
func (e *Engine) SeedPair(i, j int, p PairPosterior, overwrite bool) bool {
	if i == j {
		panic(fmt.Sprintf("crowd: SeedPair on identical items %d", i))
	}
	if p.N <= 0 {
		return false
	}
	ps := e.pair(keyOf(i, j))
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if live := ps.bag.pref.N(); live != 0 && (!overwrite || live > p.N) {
		return false
	}
	ps.bag.restore(p)
	ps.publishLocked()
	return true
}

// Grade purchases one graded microtask for item i and returns the grade.
// It costs one unit of TMC, like a pairwise microtask (Appendix B), and
// respects the spending cap: the second result is false — and nothing is
// purchased — when the cap is exhausted or the engine has degraded after
// a platform failure. The oracle must implement Grader.
func (e *Engine) Grade(i int) (float64, bool) {
	g, ok := e.oracle.(Grader)
	if !ok {
		panic("crowd: oracle does not support graded judgments")
	}
	e.gradeMu.Lock()
	defer e.gradeMu.Unlock()
	if e.failed.Load() {
		return 0, false
	}
	if e.reserve(1) == 0 {
		if ins := e.ins; ins != nil {
			ins.CapDenied.Inc()
		}
		return 0, false
	}
	rng := e.gradeRng[i]
	if rng == nil {
		rng = rand.New(rand.NewSource(e.gradeSeed(i)))
		e.gradeRng[i] = rng
	}
	v := g.Grade(rng, i)
	e.graded.Add(1)
	if e.logging.Load() {
		e.appendLog(Record{Round: e.rounds.Load(), I: i, J: -1, Value: v})
	}
	if ins := e.ins; ins != nil {
		ins.Graded.Inc()
		ins.TMC.Inc()
	}
	return v, true
}

// Tick advances the latency clock by n batch rounds. Algorithms call it
// once per wave of parallel batches (§5.5), from the wave's control
// goroutine.
func (e *Engine) Tick(n int) {
	if n < 0 {
		panic(fmt.Sprintf("crowd: Tick with negative rounds %d", n))
	}
	e.rounds.Add(int64(n))
	if ins := e.ins; ins != nil {
		ins.Rounds.Add(int64(n))
	}
}

// TMC returns the total monetary cost so far: the number of microtasks
// purchased, pairwise and graded combined. At quiescence (no purchase in
// flight) TMC equals PairwiseTasks + GradedTasks; mid-purchase the total
// is reserved before the per-kind counter is bumped.
func (e *Engine) TMC() int64 { return e.tmc.Load() }

// PairwiseTasks returns the number of pairwise microtasks purchased.
func (e *Engine) PairwiseTasks() int64 { return e.pairCmp.Load() }

// GradedTasks returns the number of graded microtasks purchased.
func (e *Engine) GradedTasks() int64 { return e.graded.Load() }

// Rounds returns the latency clock: the number of batch rounds elapsed.
func (e *Engine) Rounds() int64 { return e.rounds.Load() }

// PairsTouched returns how many distinct pairs have a sample bag; useful
// for diagnostics and tests.
func (e *Engine) PairsTouched() int {
	n := 0
	for s := range e.shards {
		n += e.shards[s].count()
	}
	return n
}

// Reset discards all purchased samples, zeroes the cost and latency
// counters, and clears the audit log, keeping the oracle, the seed and
// the control random source. Per-pair sample streams restart from the
// engine seed, so a reset engine replays the same samples for the same
// draws. Reset must not race with in-flight purchases.
func (e *Engine) Reset() {
	for s := range e.shards {
		e.shards[s].reset()
	}
	e.gradeMu.Lock()
	e.gradeRng = make(map[int]*rand.Rand)
	e.gradeMu.Unlock()
	e.tmc.Store(0)
	e.rounds.Store(0)
	e.pairCmp.Store(0)
	e.graded.Store(0)
	e.logMu.Lock()
	e.log = nil
	e.logMu.Unlock()
	e.failed.Store(false)
	e.failMu.Lock()
	e.failCause = nil
	e.failMu.Unlock()
}
