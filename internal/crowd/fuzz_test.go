package crowd

import (
	"strings"
	"testing"
)

// ReadLog parses untrusted JSON; any input must yield records or an
// error, never a panic, and accepted logs must replay cleanly.
func FuzzReadLog(f *testing.F) {
	f.Add(`[{"round":0,"i":0,"j":1,"value":0.5}]`)
	f.Add(`[]`)
	f.Add(`not json`)
	f.Add(`[{"round":-1,"i":5,"j":-1,"value":2}]`)
	f.Fuzz(func(t *testing.T, data string) {
		recs, err := ReadLog(strings.NewReader(data))
		if err != nil {
			return
		}
		// Building a replay from any parsed log must not panic as long as
		// the item ids fit the declared universe.
		n := 2
		for _, r := range recs {
			if r.I >= n {
				n = r.I + 1
			}
			if r.J >= n {
				n = r.J + 1
			}
		}
		if n > 1000 {
			return
		}
		NewReplay(n, recs)
	})
}
