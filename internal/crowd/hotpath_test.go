package crowd

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"crowdtopk/internal/obs"
)

// replayOracle answers from a fixed ring of precomputed values — the
// cheapest possible kernel, so benchmarks over it measure the engine's
// per-microtask overhead rather than the oracle's sampling cost.
type replayOracle struct {
	n    int
	vals []float64
}

func newReplayOracle(n, samples int, seed int64) replayOracle {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, samples)
	for t := range vals {
		vals[t] = rng.Float64()*2 - 1
	}
	return replayOracle{n: n, vals: vals}
}

func (o replayOracle) NumItems() int { return o.n }

func (o replayOracle) Preference(rng *rand.Rand, i, j int) float64 {
	return o.vals[rng.Intn(len(o.vals))]
}

func (o replayOracle) Preferences(rng *rand.Rand, i, j int, dst []float64) {
	vals := o.vals
	for t := range dst {
		dst[t] = vals[rng.Intn(len(vals))]
	}
}

// TestEngineViewAllocationFree asserts the satellite requirement directly:
// a warm Engine.View is 0 allocs/op, in both orientations and on missing
// pairs.
func TestEngineViewAllocationFree(t *testing.T) {
	e := NewEngine(newReplayOracle(8, 512, 3), rand.New(rand.NewSource(3)))
	e.Draw(0, 1, 60)
	for name, fn := range map[string]func(){
		"canonical": func() { e.View(0, 1) },
		"flipped":   func() { e.View(1, 0) },
		"missing":   func() { e.View(2, 3) },
	} {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("View (%s) allocates %.1f objects/op, want 0", name, allocs)
		}
	}
}

// TestDrawHotPathSingleAllocation pins the batch purchase path's only
// remaining allocation: the freshly published BagView snapshot. The
// snapshot cannot be pooled — readers may hold the previous one
// indefinitely — so one small object per batch is the designed floor;
// samples, scratch buffers and log records all come from pools or
// amortized slices.
func TestDrawHotPathSingleAllocation(t *testing.T) {
	e := NewEngine(newReplayOracle(8, 512, 4), rand.New(rand.NewSource(4)))
	e.Draw(0, 1, 64) // warm pair, pool and shard read map
	if allocs := testing.AllocsPerRun(100, func() { e.Draw(0, 1, 30) }); allocs > 1 {
		t.Errorf("Draw(30) allocates %.1f objects/op on a warm pair, want <= 1 (the published snapshot)", allocs)
	}
}

// TestDrawHotPathDisabledTelemetryAllocationFree pins the observability
// overhead contract on the purchase path: an engine that was explicitly
// wired for telemetry-off (nil registry resolves to a nil instrument
// bundle) allocates exactly what the uninstrumented engine does — the one
// published snapshot — and nothing for the disabled instruments.
func TestDrawHotPathDisabledTelemetryAllocationFree(t *testing.T) {
	e := NewEngine(newReplayOracle(8, 512, 4), rand.New(rand.NewSource(4)))
	e.SetInstruments(NewEngineInstruments(nil)) // disabled: resolves to nil
	e.Draw(0, 1, 64)
	if allocs := testing.AllocsPerRun(100, func() { e.Draw(0, 1, 30) }); allocs > 1 {
		t.Errorf("disabled-telemetry Draw(30) allocates %.1f objects/op, want <= 1", allocs)
	}
	e.DrawOne(0, 1)
	if allocs := testing.AllocsPerRun(100, func() { e.DrawOne(0, 1) }); allocs > 1 {
		t.Errorf("disabled-telemetry DrawOne allocates %.1f objects/op, want <= 1", allocs)
	}
}

// TestDrawHotPathEnabledTelemetryAllocationFree asserts that even enabled
// metrics add no allocations to a purchase: counters and histograms update
// atomics in place, so the published snapshot stays the only allocation.
func TestDrawHotPathEnabledTelemetryAllocationFree(t *testing.T) {
	e := NewEngine(newReplayOracle(8, 512, 4), rand.New(rand.NewSource(4)))
	e.SetInstruments(NewEngineInstruments(obs.NewRegistry()))
	e.Draw(0, 1, 64)
	if allocs := testing.AllocsPerRun(100, func() { e.Draw(0, 1, 30) }); allocs > 1 {
		t.Errorf("enabled-telemetry Draw(30) allocates %.1f objects/op, want <= 1", allocs)
	}
}

// benchDraw measures Draw throughput per microtask at the given batch
// size, forcing the scalar fallback when batched is false.
func benchDraw(b *testing.B, batch int, batched bool) {
	b.Helper()
	var o Oracle = newReplayOracle(16, 1024, 7)
	if !batched {
		o = scalarOnly{o}
	}
	e := NewEngine(o, rand.New(rand.NewSource(7)))
	e.Draw(0, 1, batch) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		e.Draw(0, 1, batch)
	}
	b.SetBytes(0)
	b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "microtasks/s")
}

// BenchmarkDrawHotPath measures per-microtask purchase cost at the
// paper's η = 30 and at a larger batch, across the three engine paths:
//
//   - onebyoneN: N sample-at-a-time purchases (DrawOne), the shape of the
//     hot path before batching — every sample pays the pair lock, the cap
//     reservation, the oracle dispatch and the snapshot publication;
//   - scalarN: one Draw(N) on an oracle without a batch kernel — the
//     engine batches the lock, the buffer and the bag ingestion, but
//     still dispatches per sample;
//   - batchN: one Draw(N) through the BatchOracle kernel — one dispatch
//     for the whole batch.
//
// The ≥3x acceptance target compares batch30 against onebyone30.
func BenchmarkDrawHotPath(b *testing.B) {
	b.Run("onebyone30", func(b *testing.B) { benchDrawOne(b, 30) })
	b.Run("scalar30", func(b *testing.B) { benchDraw(b, 30, false) })
	b.Run("batch30", func(b *testing.B) { benchDraw(b, 30, true) })
	b.Run("onebyone100", func(b *testing.B) { benchDrawOne(b, 100) })
	b.Run("scalar100", func(b *testing.B) { benchDraw(b, 100, false) })
	b.Run("batch100", func(b *testing.B) { benchDraw(b, 100, true) })
}

// BenchmarkDrawHotPathInstrumented measures the telemetry overhead on the
// η = 30 batch path directly: "off" is the baseline engine, "disabled" has
// instrumentation wired but resolved to nil (the production telemetry-off
// shape — the <2% contract), "enabled" updates live atomic instruments.
func BenchmarkDrawHotPathInstrumented(b *testing.B) {
	run := func(b *testing.B, ins *EngineInstruments) {
		e := NewEngine(newReplayOracle(16, 1024, 7), rand.New(rand.NewSource(7)))
		e.SetInstruments(ins)
		e.Draw(0, 1, 30)
		b.ReportAllocs()
		b.ResetTimer()
		for it := 0; it < b.N; it++ {
			e.Draw(0, 1, 30)
		}
		b.ReportMetric(float64(b.N*30)/b.Elapsed().Seconds(), "microtasks/s")
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("disabled", func(b *testing.B) { run(b, NewEngineInstruments(nil)) })
	b.Run("enabled", func(b *testing.B) { run(b, NewEngineInstruments(obs.NewRegistry())) })
}

// benchDrawOne purchases batch samples one microtask at a time, so one
// iteration buys as much evidence as one benchDraw iteration.
func benchDrawOne(b *testing.B, batch int) {
	b.Helper()
	e := NewEngine(newReplayOracle(16, 1024, 7), rand.New(rand.NewSource(7)))
	e.DrawOne(0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		for t := 0; t < batch; t++ {
			e.DrawOne(0, 1)
		}
	}
	b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "microtasks/s")
}

// BenchmarkViewParallel hammers one warm pair's snapshot from all procs —
// the read side SPR's stopping-rule checks exercise while a wave is in
// flight. Lock-free snapshots scale linearly; the old mutex path
// serialized here.
func BenchmarkViewParallel(b *testing.B) {
	e := NewEngine(newReplayOracle(16, 1024, 9), rand.New(rand.NewSource(9)))
	e.Draw(0, 1, 60)
	var sink atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var n int64
		for pb.Next() {
			v := e.View(0, 1)
			n += int64(v.N)
		}
		sink.Add(n)
	})
}
