// Package crowd simulates a paid crowdsourcing platform for pairwise
// preference microtasks, following the cost model of Kou et al. (SIGMOD
// 2017).
//
// An Oracle plays the role of the human crowd: it produces one preference
// sample v(o_i, o_j) ∈ [-1, 1] per microtask, where the sign encodes which
// item the (simulated) worker prefers and the magnitude encodes how
// strongly. Datasets provide oracles backed by rating histograms, per-user
// rating differences, or replayed judgment databases.
//
// The Engine is the single point through which algorithms may spend money.
// It owns:
//
//   - the per-pair bags of purchased samples (V_{i,j}), which persist for
//     the lifetime of a query so that comparison results are reusable
//     across query phases (§5.3 of the paper);
//   - the total monetary cost counter (TMC — one unit per microtask,
//     graded or pairwise, per Appendix B);
//   - the latency clock, measured in batch rounds (§5.5): algorithms call
//     Tick at their synchronization points, so a phase that compares many
//     pairs in parallel pays one round per batch wave.
//
// The engine itself draws raw preference values; converting them into
// binary votes, testing confidence intervals, and stopping rules are the
// business of package compare.
package crowd
