package crowd

import (
	"fmt"
	"math/rand"
	"sync"
)

// Task is one pairwise microtask to publish on a crowdsourcing platform:
// "compare item I with item J".
type Task struct {
	I, J int
}

// Answer is a worker's response to a published task: a preference in
// [-1, 1] oriented toward the task's I item.
type Answer struct {
	Task  Task
	Value float64
}

// Platform is the asynchronous interface real crowd markets expose:
// batches of microtasks are published, workers answer on their own
// schedule, and the requester collects the answers later. Post must not
// block on workers; Collect blocks until every answer of the posted batch
// is in. Implementations must be safe for use from one goroutine at a
// time (the engine is single-threaded).
type Platform interface {
	// Post publishes the batch and returns a handle for collection.
	Post(tasks []Task) (batch int, err error)
	// Collect blocks until the batch is fully answered.
	Collect(batch int) ([]Answer, error)
}

// PlatformOracle adapts a Platform to the Oracle interface the engine
// consumes. Each Preference call publishes one task and waits for its
// answer; the engine's batch purchases (Draw with n > 1) post the whole
// batch at once and collect it together, so a platform serving answers
// concurrently is exercised with real parallelism per batch. Posting or
// collection errors are surfaced as panics: the engine has no money-safe
// way to continue a query whose platform is failing.
type PlatformOracle struct {
	n        int
	platform Platform
}

// NewPlatformOracle wraps a platform over n items.
func NewPlatformOracle(n int, p Platform) *PlatformOracle {
	if n < 2 {
		panic(fmt.Sprintf("crowd: NewPlatformOracle requires n >= 2, got %d", n))
	}
	if p == nil {
		panic("crowd: NewPlatformOracle requires a platform")
	}
	return &PlatformOracle{n: n, platform: p}
}

// NumItems implements Oracle.
func (po *PlatformOracle) NumItems() int { return po.n }

// Preference implements Oracle: one task posted, one answer awaited.
func (po *PlatformOracle) Preference(_ *rand.Rand, i, j int) float64 {
	var v [1]float64
	po.preferences(i, j, v[:])
	return v[0]
}

// Preferences implements BatchOracle: the whole batch is posted at once.
func (po *PlatformOracle) Preferences(_ *rand.Rand, i, j int, dst []float64) {
	po.preferences(i, j, dst)
}

func (po *PlatformOracle) preferences(i, j int, dst []float64) {
	n := len(dst)
	tasks := make([]Task, n)
	for t := range tasks {
		tasks[t] = Task{I: i, J: j}
	}
	batch, err := po.platform.Post(tasks)
	if err != nil {
		panic(fmt.Sprintf("crowd: posting %d tasks: %v", n, err))
	}
	answers, err := po.platform.Collect(batch)
	if err != nil {
		panic(fmt.Sprintf("crowd: collecting batch %d: %v", batch, err))
	}
	if len(answers) != n {
		panic(fmt.Sprintf("crowd: batch %d returned %d answers, want %d", batch, len(answers), n))
	}
	for t, a := range answers {
		v := a.Value
		if a.Task.I == j && a.Task.J == i {
			v = -v // platform may report in flipped orientation
		}
		dst[t] = v
	}
}

// BatchOracle is implemented by oracles that can answer many microtasks
// for the same pair in one exchange — the natural shape for asynchronous
// platforms, and the fast path for simulated ones. The engine prefers one
// Preferences call over len(dst) sequential Preference calls; dst is a
// caller-owned scratch buffer, so implementations fill it rather than
// allocate.
//
// Contract: Preferences(rng, i, j, dst) must leave rng in exactly the
// state len(dst) sequential Preference(rng, i, j) calls would, and fill
// dst with exactly the values those calls would return. This is what lets
// the engine mix batch and scalar purchases of one pair (and replay audit
// logs) without perturbing the sample stream.
type BatchOracle interface {
	Preferences(rng *rand.Rand, i, j int, dst []float64)
}

// SimPlatform is an in-process Platform backed by a pool of worker
// goroutines answering from a base oracle — the test double for platform
// integrations, and a demonstration that the adapter tolerates real
// concurrency and out-of-order completion within a batch.
type SimPlatform struct {
	base    Oracle
	workers int

	mu      sync.Mutex
	nextID  int
	batches map[int]chan []Answer
	seed    int64
}

// NewSimPlatform returns a simulated platform with the given worker
// parallelism.
func NewSimPlatform(base Oracle, workers int, seed int64) *SimPlatform {
	if workers < 1 {
		panic(fmt.Sprintf("crowd: NewSimPlatform requires workers >= 1, got %d", workers))
	}
	return &SimPlatform{
		base:    base,
		workers: workers,
		batches: make(map[int]chan []Answer),
		seed:    seed,
	}
}

// Post implements Platform: it fans the batch out to worker goroutines
// and returns immediately.
func (sp *SimPlatform) Post(tasks []Task) (int, error) {
	sp.mu.Lock()
	id := sp.nextID
	sp.nextID++
	done := make(chan []Answer, 1)
	sp.batches[id] = done
	seed := sp.seed + int64(id)
	sp.mu.Unlock()

	go func() {
		answers := make([]Answer, len(tasks))
		var wg sync.WaitGroup
		sem := make(chan struct{}, sp.workers)
		for t := range tasks {
			wg.Add(1)
			sem <- struct{}{}
			go func(t int) {
				defer wg.Done()
				defer func() { <-sem }()
				// Each simulated worker has her own randomness.
				rng := rand.New(rand.NewSource(seed + int64(t)*7919))
				answers[t] = Answer{
					Task:  tasks[t],
					Value: sp.base.Preference(rng, tasks[t].I, tasks[t].J),
				}
			}(t)
		}
		wg.Wait()
		done <- answers
	}()
	return id, nil
}

// Collect implements Platform.
func (sp *SimPlatform) Collect(batch int) ([]Answer, error) {
	sp.mu.Lock()
	done, ok := sp.batches[batch]
	delete(sp.batches, batch)
	sp.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("crowd: unknown or already collected batch %d", batch)
	}
	return <-done, nil
}
