package crowd

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"

	qlog "crowdtopk/internal/obs/log"
)

// Task is one pairwise microtask to publish on a crowdsourcing platform:
// "compare item I with item J".
type Task struct {
	I, J int
}

// Answer is a worker's response to a published task: a preference in
// [-1, 1] oriented toward the task's I item.
type Answer struct {
	Task  Task
	Value float64
}

// Platform is the asynchronous interface real crowd markets expose:
// batches of microtasks are published, workers answer on their own
// schedule, and the requester collects the answers later. Post must not
// block on workers; Collect blocks until the batch is answered (or the
// platform gives up). Implementations must be safe for concurrent use on
// distinct batches: parallel comparison waves post and collect several
// pairs' batches at once, with exactly one collector per batch.
//
// Real markets misbehave: Collect may return fewer answers than were
// posted, duplicate answers, answers for tasks that were never posted, or
// values outside [-1, 1]. The PlatformOracle adapter validates and
// quarantines such answers, and the ResilientPlatform wrapper adds
// deadlines, retries and a circuit breaker on top of any Platform.
type Platform interface {
	// Post publishes the batch and returns a handle for collection.
	Post(tasks []Task) (batch int, err error)
	// Collect blocks until the batch is answered. It may return a partial
	// answer set together with a nil error (stragglers the platform gave
	// up on) or with a non-nil error (collection failed midway).
	Collect(batch int) ([]Answer, error)
}

// ContextPlatform is optionally implemented by platforms whose collection
// honors cancellation. The resilient layer uses it to enforce per-batch
// deadlines without leaking a blocked goroutine per timed-out collect.
type ContextPlatform interface {
	// CollectContext behaves like Collect but returns ctx.Err() promptly
	// once the context is done. A batch whose collection was cancelled
	// remains collectable later.
	CollectContext(ctx context.Context, batch int) ([]Answer, error)
}

// Closer is optionally implemented by platforms holding background
// resources (worker goroutines, connections). Closing cancels in-flight
// batches; Post and Collect fail with ErrPlatformClosed afterwards.
// It matches io.Closer.
type Closer interface {
	Close() error
}

// BatchOracle is implemented by oracles that can answer many microtasks
// for the same pair in one exchange — the natural shape for asynchronous
// platforms, and the fast path for simulated ones. The engine prefers one
// Preferences call over len(dst) sequential Preference calls; dst is a
// caller-owned scratch buffer, so implementations fill it rather than
// allocate.
//
// Contract: Preferences(rng, i, j, dst) must leave rng in exactly the
// state len(dst) sequential Preference(rng, i, j) calls would, and fill
// dst with exactly the values those calls would return. This is what lets
// the engine mix batch and scalar purchases of one pair (and replay audit
// logs) without perturbing the sample stream.
type BatchOracle interface {
	Preferences(rng *rand.Rand, i, j int, dst []float64)
}

// FallibleBatchOracle is the error-aware sibling of BatchOracle,
// implemented by oracles whose answers come from systems that can fail —
// above all PlatformOracle. PreferencesPartial fills dst with up to
// len(dst) validated preferences for the pair and returns how many were
// filled; filled may fall short of len(dst) when the backend lost tasks,
// and err is non-nil when the backend failed outright (the engine then
// latches into degraded mode and stops purchasing).
//
// The engine prefers this path over BatchOracle when both are available:
// it is the only way an oracle can decline part of a purchase without
// panicking, and the engine refunds every unfilled slot so the monetary
// accounting stays exact.
type FallibleBatchOracle interface {
	PreferencesPartial(rng *rand.Rand, i, j int, dst []float64) (filled int, err error)
}

// PlatformOracle adapts a Platform to the Oracle interface the engine
// consumes: each batch purchase posts the whole batch at once and
// collects it together, so a platform serving answers concurrently is
// exercised with real parallelism per batch.
//
// The adapter is the validation boundary of the system. Every collected
// answer is checked before it may enter a preference bag: its task must
// match the posted pair (in either orientation — flipped answers are
// re-oriented), and its value must be a real number in [-1, 1]. Answers
// failing validation are quarantined, counted, and recorded in the
// failure log; they never pollute the statistics. Platform errors are
// returned through the FallibleBatchOracle path — never panics — so the
// engine can degrade the query gracefully instead of crashing it.
type PlatformOracle struct {
	n        int
	platform Platform
	limit    int // retention bound for quarantined answers

	mu          sync.Mutex
	quarantined []Answer
	events      *failureLog          // bounded quarantine-event ring
	ins         *PlatformInstruments // metric bundle; nil = telemetry off
	log         *qlog.Logger         // rate-limited quarantine reporting; nil = off
}

// NewPlatformOracle wraps a platform over n items. The oracle's failure
// log and quarantine store are bounded to DefaultFailureLogLimit entries;
// use WithResilience's FailureLogLimit to change the bound.
func NewPlatformOracle(n int, p Platform) *PlatformOracle {
	if n < 2 {
		panic(fmt.Sprintf("crowd: NewPlatformOracle requires n >= 2, got %d", n))
	}
	if p == nil {
		panic("crowd: NewPlatformOracle requires a platform")
	}
	return &PlatformOracle{
		n: n, platform: p,
		limit:  DefaultFailureLogLimit,
		events: newFailureLog(0),
	}
}

// WithResilience returns a platform oracle over the same item count whose
// platform is wrapped in a ResilientPlatform with the given policy. If
// the platform is already resilient it is returned unchanged. The
// policy's FailureLogLimit bounds the new oracle's own log too.
func (po *PlatformOracle) WithResilience(policy RetryPolicy) *PlatformOracle {
	if _, ok := po.platform.(*ResilientPlatform); ok {
		return po
	}
	out := NewPlatformOracle(po.n, NewResilientPlatform(po.platform, policy))
	out.events = newFailureLog(policy.FailureLogLimit)
	if policy.FailureLogLimit != 0 {
		out.limit = policy.FailureLogLimit
	}
	return out
}

// Instrument attaches the resilience metric bundle (nil detaches) and
// propagates it to the wrapped ResilientPlatform, when there is one. Call
// before concurrent use.
func (po *PlatformOracle) Instrument(ins *PlatformInstruments) {
	po.ins = ins
	if ins != nil {
		po.events.instrument(ins.FailuresDrop)
	} else {
		po.events.instrument(nil)
	}
	if rp, ok := po.platform.(*ResilientPlatform); ok {
		rp.Instrument(ins)
	}
}

// SetLogger wires structured logging for validation quarantines and — via
// the wrapped ResilientPlatform, when there is one — retry/breaker
// failure events. Both streams are rate-limited: a misbehaving platform
// emits failures in bursts and must not flood the log. Nil disables.
// Call before concurrent use.
func (po *PlatformOracle) SetLogger(lg *qlog.Logger) {
	po.log = lg.With("component", "platform").Limited("platform-quarantine", 1, 5)
	if rp, ok := po.platform.(*ResilientPlatform); ok {
		rp.SetLogger(lg)
	}
}

// Platform returns the wrapped platform.
func (po *PlatformOracle) Platform() Platform { return po.platform }

// NumItems implements Oracle.
func (po *PlatformOracle) NumItems() int { return po.n }

// Preference implements Oracle: one task posted, one answer awaited.
// It panics on platform failure — this legacy scalar path exists only
// for direct use outside the engine; the engine always purchases through
// PreferencesPartial, which reports errors instead.
func (po *PlatformOracle) Preference(_ *rand.Rand, i, j int) float64 {
	var v [1]float64
	filled, err := po.PreferencesPartial(nil, i, j, v[:])
	if err != nil {
		panic(fmt.Sprintf("crowd: platform failure on pair (%d,%d): %v", i, j, err))
	}
	if filled == 0 {
		panic(fmt.Sprintf("crowd: platform returned no valid answer for pair (%d,%d)", i, j))
	}
	return v[0]
}

// Preferences implements BatchOracle for callers that cannot tolerate a
// short batch; like Preference it panics on failure and exists for direct
// use only. The engine uses PreferencesPartial.
func (po *PlatformOracle) Preferences(_ *rand.Rand, i, j int, dst []float64) {
	filled, err := po.PreferencesPartial(nil, i, j, dst)
	if err != nil {
		panic(fmt.Sprintf("crowd: platform failure on pair (%d,%d): %v", i, j, err))
	}
	if filled != len(dst) {
		panic(fmt.Sprintf("crowd: platform answered %d of %d tasks for pair (%d,%d)", filled, len(dst), i, j))
	}
}

// PreferencesPartial implements FallibleBatchOracle: the batch is posted
// in one call, collected in one call, and every answer validated before
// it reaches the caller. Invalid answers (mis-paired tasks, NaN or
// out-of-range values, surplus duplicates) are quarantined and simply
// reduce the filled count — with a ResilientPlatform underneath, the
// missing tasks have already been re-posted and retried before the
// shortfall becomes visible here.
func (po *PlatformOracle) PreferencesPartial(_ *rand.Rand, i, j int, dst []float64) (int, error) {
	n := len(dst)
	if n == 0 {
		return 0, nil
	}
	tasks := make([]Task, n)
	for t := range tasks {
		tasks[t] = Task{I: i, J: j}
	}
	batch, err := po.platform.Post(tasks)
	if err != nil {
		return 0, fmt.Errorf("posting %d tasks for pair (%d,%d): %w", n, i, j, err)
	}
	answers, collectErr := po.platform.Collect(batch)

	filled := 0
	for _, a := range answers {
		if filled == n {
			// Surplus answers (platform duplicates): paid for n, keep n.
			po.quarantine(batch, a, "surplus answer")
			continue
		}
		v, ok := validPairAnswer(a, i, j)
		if !ok {
			po.quarantine(batch, a, "invalid answer")
			continue
		}
		dst[filled] = v
		filled++
	}
	if collectErr != nil {
		return filled, fmt.Errorf("collecting batch %d for pair (%d,%d): %w", batch, i, j, collectErr)
	}
	return filled, nil
}

// validPairAnswer validates one collected answer against the posted pair
// (i, j): the task must match the pair in either orientation (flipped
// answers are negated back) and the value must be a real number in
// [-1, 1]. The second result is false for answers that must not enter a
// preference bag.
func validPairAnswer(a Answer, i, j int) (float64, bool) {
	v := a.Value
	switch {
	case a.Task.I == i && a.Task.J == j:
		// canonical orientation
	case a.Task.I == j && a.Task.J == i:
		v = -v // platform may report in flipped orientation
	default:
		return 0, false // mis-paired: belongs to neither orientation
	}
	if math.IsNaN(v) || v < -1 || v > 1 {
		return 0, false
	}
	return v, true
}

// quarantine records an invalid answer and its failure event. The answer
// store honors the retention bound; the event goes through the bounded
// ring, which counts anything it evicts.
func (po *PlatformOracle) quarantine(batch int, a Answer, why string) {
	po.mu.Lock()
	if po.limit < 0 || len(po.quarantined) < po.limit {
		po.quarantined = append(po.quarantined, a)
	}
	po.mu.Unlock()
	po.events.append(FailureEvent{
		Batch: batch, Attempt: 1, Kind: "quarantine",
		Err: fmt.Sprintf("%s: task (%d,%d) value %v", why, a.Task.I, a.Task.J, a.Value),
	})
	po.ins.classify("quarantine")
	po.log.Warn("answer quarantined", "batch", batch, "pair",
		fmt.Sprintf("%d-%d", a.Task.I, a.Task.J), "why", why)
}

// Quarantined returns a copy of the answers rejected by validation, for
// audit and debugging. Retention is bounded like the failure log.
func (po *PlatformOracle) Quarantined() []Answer {
	po.mu.Lock()
	defer po.mu.Unlock()
	return append([]Answer(nil), po.quarantined...)
}

// Failures implements FailureReporter: the oracle's own quarantine events
// followed by the wrapped platform's failure log, when it keeps one. Both
// logs are bounded rings; DroppedFailures counts what they evicted.
func (po *PlatformOracle) Failures() []FailureEvent {
	out := po.events.snapshot()
	if fr, ok := po.platform.(FailureReporter); ok {
		out = append(out, fr.Failures()...)
	}
	return out
}

// DroppedFailures returns how many failure events the bounded logs (the
// oracle's own and the wrapped resilient platform's) evicted in total.
func (po *PlatformOracle) DroppedFailures() int64 {
	d := po.events.droppedCount()
	if rp, ok := po.platform.(*ResilientPlatform); ok {
		d += rp.DroppedFailures()
	}
	return d
}

// SimPlatform is an in-process Platform backed by a pool of worker
// goroutines answering from a base oracle — the test double for platform
// integrations, and a demonstration that the adapter tolerates real
// concurrency and out-of-order completion within a batch.
//
// SimPlatform supports cancellation: CollectContext returns promptly when
// its context is done (the batch stays collectable), and Close cancels
// all in-flight batches, stops their workers at task granularity, and
// releases every batch entry — no goroutine or map entry outlives the
// platform.
type SimPlatform struct {
	base    Oracle
	workers int

	mu      sync.Mutex
	nextID  int
	batches map[int]chan []Answer
	seed    int64

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewSimPlatform returns a simulated platform with the given worker
// parallelism.
func NewSimPlatform(base Oracle, workers int, seed int64) *SimPlatform {
	if workers < 1 {
		panic(fmt.Sprintf("crowd: NewSimPlatform requires workers >= 1, got %d", workers))
	}
	return &SimPlatform{
		base:    base,
		workers: workers,
		batches: make(map[int]chan []Answer),
		seed:    seed,
		closed:  make(chan struct{}),
	}
}

// Post implements Platform: it fans the batch out to worker goroutines
// and returns immediately.
func (sp *SimPlatform) Post(tasks []Task) (int, error) {
	select {
	case <-sp.closed:
		return 0, ErrPlatformClosed
	default:
	}
	sp.mu.Lock()
	id := sp.nextID
	sp.nextID++
	done := make(chan []Answer, 1)
	sp.batches[id] = done
	seed := sp.seed + int64(id)
	sp.wg.Add(1)
	sp.mu.Unlock()

	go func() {
		defer sp.wg.Done()
		answers := make([]Answer, len(tasks))
		var wg sync.WaitGroup
		sem := make(chan struct{}, sp.workers)
	fanout:
		for t := range tasks {
			select {
			case <-sp.closed:
				// Cancelled: stop spawning work; unstarted tasks stay
				// zero-valued and are dropped below.
				break fanout
			default:
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(t int) {
				defer wg.Done()
				defer func() { <-sem }()
				// Each simulated worker has her own randomness.
				rng := rand.New(rand.NewSource(seed + int64(t)*7919))
				answers[t] = Answer{
					Task:  tasks[t],
					Value: sp.base.Preference(rng, tasks[t].I, tasks[t].J),
				}
			}(t)
		}
		wg.Wait()
		// Drop never-started tasks so a cancelled batch does not emit
		// zero-valued answers for work no worker performed.
		out := answers[:0]
		for t, a := range answers {
			if a.Task == tasks[t] {
				out = append(out, a)
			}
		}
		done <- out
	}()
	return id, nil
}

// Collect implements Platform.
func (sp *SimPlatform) Collect(batch int) ([]Answer, error) {
	return sp.CollectContext(context.Background(), batch)
}

// CollectContext implements ContextPlatform: it returns once the batch is
// answered, the context is done, or the platform is closed. On context
// cancellation the batch remains registered and can be collected later.
func (sp *SimPlatform) CollectContext(ctx context.Context, batch int) ([]Answer, error) {
	sp.mu.Lock()
	done, ok := sp.batches[batch]
	sp.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("crowd: unknown or already collected batch %d", batch)
	}
	select {
	case answers := <-done:
		sp.mu.Lock()
		delete(sp.batches, batch)
		sp.mu.Unlock()
		return answers, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("crowd: collecting batch %d: %w (%w)", batch, ErrBatchTimeout, ctx.Err())
	case <-sp.closed:
		return nil, ErrPlatformClosed
	}
}

// Close implements Closer: it cancels in-flight batches, waits for their
// workers to stop, and releases every batch entry. Post and Collect fail
// with ErrPlatformClosed afterwards. Close is idempotent.
func (sp *SimPlatform) Close() error {
	sp.closeOnce.Do(func() {
		close(sp.closed)
		sp.wg.Wait()
		sp.mu.Lock()
		sp.batches = make(map[int]chan []Answer)
		sp.mu.Unlock()
	})
	return nil
}

// PendingBatches returns the number of posted but uncollected batches —
// a leak diagnostic for tests.
func (sp *SimPlatform) PendingBatches() int {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return len(sp.batches)
}
