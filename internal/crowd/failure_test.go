package crowd

import (
	"errors"
	"math/rand"
	"testing"
)

var errMarketDown = errors.New("market down")

// brittleOracle delivers valid preferences until its supply runs out,
// then reports a permanent failure — the minimal FallibleBatchOracle for
// exercising the engine's degradation path.
type brittleOracle struct {
	n      int
	supply int
}

func (b *brittleOracle) NumItems() int { return b.n }

func (b *brittleOracle) Preference(rng *rand.Rand, i, j int) float64 {
	var one [1]float64
	if filled, _ := b.PreferencesPartial(rng, i, j, one[:]); filled == 1 {
		return one[0]
	}
	return 0
}

func (b *brittleOracle) Grade(rng *rand.Rand, i int) float64 { return float64(i) }

func (b *brittleOracle) PreferencesPartial(_ *rand.Rand, i, j int, dst []float64) (int, error) {
	fill := len(dst)
	if fill > b.supply {
		fill = b.supply
	}
	b.supply -= fill
	for t := 0; t < fill; t++ {
		dst[t] = 0.25
	}
	if fill < len(dst) {
		return fill, errMarketDown
	}
	return fill, nil
}

func TestEngineRefundsUndeliveredAnswers(t *testing.T) {
	e := NewEngine(&brittleOracle{n: 5, supply: 20}, rand.New(rand.NewSource(1)))
	e.EnableLog()
	v := e.Draw(0, 1, 50)
	if v.N != 20 {
		t.Fatalf("bag has %d samples, want the 20 delivered", v.N)
	}
	if e.TMC() != 20 {
		t.Errorf("TMC = %d, want 20 — undelivered slots must be refunded", e.TMC())
	}
	if got := len(e.Log()); got != 20 {
		t.Errorf("audit log has %d records, want 20: every charged task must be logged", got)
	}
	if err := e.Err(); !errors.Is(err, errMarketDown) || !errors.Is(err, ErrPlatformFailure) {
		t.Errorf("Err = %v, want wrap of both ErrPlatformFailure and the cause", err)
	}
}

func TestEngineLatchDeclinesAllPurchases(t *testing.T) {
	e := NewEngine(&brittleOracle{n: 5, supply: 10}, rand.New(rand.NewSource(2)))
	e.Draw(0, 1, 30) // fails after 10
	tmc := e.TMC()

	if v := e.Draw(2, 3, 30); v.N != 0 {
		t.Errorf("degraded engine still granted %d samples", v.N)
	}
	if _, ok := e.DrawOne(1, 4); ok {
		t.Error("degraded engine granted a DrawOne")
	}
	if _, ok := e.Grade(2); ok {
		t.Error("degraded engine granted a Grade")
	}
	if e.TMC() != tmc {
		t.Errorf("degraded engine charged money: TMC %d -> %d", tmc, e.TMC())
	}
	// The latched view still serves the evidence already purchased.
	if v := e.View(0, 1); v.N != 10 {
		t.Errorf("purchased evidence lost: view has %d samples", v.N)
	}
}

func TestEngineFirstFailureWins(t *testing.T) {
	e := NewEngine(&brittleOracle{n: 5, supply: 0}, rand.New(rand.NewSource(3)))
	e.Draw(0, 1, 5)
	first := e.Err()
	e.failed.Store(false) // simulate a racing purchase slipping past the latch
	e.Draw(2, 3, 5)
	if e.Err() == nil || e.Err().Error() != first.Error() {
		t.Errorf("first failure overwritten: %v -> %v", first, e.Err())
	}
}

func TestEngineDrawOneRefundsOnEmptyDelivery(t *testing.T) {
	e := NewEngine(&brittleOracle{n: 5, supply: 0}, rand.New(rand.NewSource(4)))
	if _, ok := e.DrawOne(0, 1); ok {
		t.Fatal("DrawOne reported success with nothing delivered")
	}
	if e.TMC() != 0 {
		t.Errorf("TMC = %d after an undelivered DrawOne, want 0", e.TMC())
	}
	if e.Err() == nil {
		t.Error("failure not latched")
	}
}

func TestEngineResetClearsFailureLatch(t *testing.T) {
	o := &brittleOracle{n: 5, supply: 5}
	e := NewEngine(o, rand.New(rand.NewSource(5)))
	e.Draw(0, 1, 10)
	if e.Err() == nil {
		t.Fatal("failure not latched")
	}
	o.supply = 100 // the market recovered
	e.Reset()
	if e.Err() != nil {
		t.Fatalf("Reset kept the failure: %v", e.Err())
	}
	if v := e.Draw(0, 1, 10); v.N != 10 {
		t.Errorf("post-reset draw granted %d of 10", v.N)
	}
}

func TestEngineCapAndFailureCompose(t *testing.T) {
	// A spending cap reached before the failure point: the cap truncates
	// first, the oracle never fails, the engine stays healthy.
	e := NewEngine(&brittleOracle{n: 5, supply: 10}, rand.New(rand.NewSource(6)))
	e.SetSpendingCap(8)
	v := e.Draw(0, 1, 20)
	if v.N != 8 {
		t.Fatalf("cap not honored: %d samples", v.N)
	}
	if e.Err() != nil {
		t.Errorf("cap truncation mis-reported as failure: %v", e.Err())
	}
}
