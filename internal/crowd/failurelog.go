package crowd

import (
	"sync"

	"crowdtopk/internal/obs"
)

// DefaultFailureLogLimit bounds a failure log's in-memory event ring.
// Under sustained platform trouble a long session could otherwise grow its
// failure log without limit; the ring keeps the most recent events and
// counts what it had to evict.
const DefaultFailureLogLimit = 1024

// failureLog is a bounded ring of FailureEvents: appends beyond the limit
// overwrite the oldest entry and are tallied as dropped. limit < 0 removes
// the bound (the pre-ring behaviour, for callers that need every event);
// limit == 0 means DefaultFailureLogLimit.
type failureLog struct {
	mu      sync.Mutex
	limit   int
	buf     []FailureEvent
	head    int // next overwrite position once the ring is full
	full    bool
	dropped int64
	drops   *obs.Counter // optional metric mirror of dropped
}

// newFailureLog returns a log bounded to limit events (0 = default,
// negative = unbounded).
func newFailureLog(limit int) *failureLog {
	if limit == 0 {
		limit = DefaultFailureLogLimit
	}
	return &failureLog{limit: limit}
}

// instrument mirrors future drops onto the counter (nil-safe).
func (fl *failureLog) instrument(drops *obs.Counter) {
	fl.mu.Lock()
	fl.drops = drops
	fl.mu.Unlock()
}

// append records one event, evicting the oldest when the ring is full.
func (fl *failureLog) append(ev FailureEvent) {
	fl.mu.Lock()
	switch {
	case fl.limit < 0 || len(fl.buf) < fl.limit:
		fl.buf = append(fl.buf, ev)
	default:
		fl.buf[fl.head] = ev
		fl.head++
		if fl.head == fl.limit {
			fl.head = 0
		}
		fl.full = true
		fl.dropped++
		fl.drops.Inc()
	}
	fl.mu.Unlock()
}

// snapshot returns the retained events oldest-first.
func (fl *failureLog) snapshot() []FailureEvent {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if !fl.full {
		return append([]FailureEvent(nil), fl.buf...)
	}
	out := make([]FailureEvent, 0, len(fl.buf))
	out = append(out, fl.buf[fl.head:]...)
	out = append(out, fl.buf[:fl.head]...)
	return out
}

// droppedCount returns how many events the ring evicted.
func (fl *failureLog) droppedCount() int64 {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	return fl.dropped
}
