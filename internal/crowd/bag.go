package crowd

import (
	"crowdtopk/internal/stats"
)

// pairKey canonically identifies an unordered item pair.
type pairKey struct{ lo, hi int }

func keyOf(i, j int) pairKey {
	if i < j {
		return pairKey{i, j}
	}
	return pairKey{j, i}
}

// bag accumulates the purchased preference samples of one unordered pair,
// stored in the orientation v(lo, hi).
type bag struct {
	pref stats.Running // preference samples v(lo, hi)
	bin  stats.Running // sign-only (±1) view of the same samples, zeros dropped
}

// BagView exposes the statistics of a pair's sample bag oriented to a
// caller-chosen (i, j): a positive Mean favors item i. The view is a value
// snapshot; it does not change when more samples are purchased.
type BagView struct {
	// N is the number of preference samples purchased for the pair.
	N int
	// Mean and SD are the sample mean and unbiased sample standard
	// deviation of the preference values, oriented toward i.
	Mean, SD float64
	// BinN, BinMean describe the ±1 sign view of the same samples (zero
	// preferences are dropped, as in the paper's binary judgment model).
	BinN    int
	BinMean float64
}

// view snapshots the bag in the orientation of (i, j) with i, j mapping to
// key (lo, hi).
func (b *bag) view(flip bool) BagView {
	v := BagView{
		N:       b.pref.N(),
		Mean:    b.pref.Mean(),
		SD:      b.pref.SD(),
		BinN:    b.bin.N(),
		BinMean: b.bin.Mean(),
	}
	if flip {
		v.Mean = -v.Mean
		v.BinMean = -v.BinMean
	}
	return v
}

// flipped returns the view with the orientation reversed. Only the means
// change sign; counts and spread are orientation-free.
func (v BagView) flipped() BagView {
	v.Mean = -v.Mean
	v.BinMean = -v.BinMean
	return v
}

// PairPosterior is the exact accumulated state of one pair's sample bag
// in canonical (lo, hi) orientation: the raw Welford triples of the
// preference bag and its ±1 sign-only view. Unlike BagView it carries the
// M2 accumulators rather than derived standard deviations, so a bag
// seeded from a PairPosterior (Engine.SeedPair) is bit-identical to the
// bag that exported it — the judgment store's round-trip contract.
type PairPosterior struct {
	N    int
	Mean float64
	M2   float64

	BinN    int
	BinMean float64
	BinM2   float64
}

// posterior exports the bag's exact Welford state.
func (b *bag) posterior() PairPosterior {
	return PairPosterior{
		N:       b.pref.N(),
		Mean:    b.pref.Mean(),
		M2:      b.pref.M2(),
		BinN:    b.bin.N(),
		BinMean: b.bin.Mean(),
		BinM2:   b.bin.M2(),
	}
}

// restore overwrites the bag with previously exported Welford state.
func (b *bag) restore(p PairPosterior) {
	b.pref = stats.Restore(p.N, p.Mean, p.M2)
	b.bin = stats.Restore(p.BinN, p.BinMean, p.BinM2)
}

// add records one preference sample already oriented as v(lo, hi).
func (b *bag) add(v float64) {
	b.pref.Add(v)
	switch {
	case v > 0:
		b.bin.Add(1)
	case v < 0:
		b.bin.Add(-1)
		// v == 0: the binary judgment model drops unidentifiable votes.
	}
}

// addAll records a batch of samples in order. It folds each sample into
// the same Welford recurrences as add, in the same per-sample order, so a
// batched purchase produces bit-identical statistics to sample-at-a-time
// ingestion — the determinism contract the equivalence suites pin down.
func (b *bag) addAll(vs []float64) {
	b.pref.AddAll(vs)
	for _, v := range vs {
		switch {
		case v > 0:
			b.bin.Add(1)
		case v < 0:
			b.bin.Add(-1)
		}
	}
}
