package crowd

import (
	"math/rand"
	"testing"
)

func TestReplayThenLiveFullLogSpendsNothing(t *testing.T) {
	// Record a run, then resume it from the complete log: every demand is
	// covered by the checkpoint, so zero microtasks reach the live oracle
	// and the resumed bags match the originals exactly.
	e := newTestEngine(8, 50)
	e.EnableLog()
	v1 := e.Draw(1, 4, 60)
	w1 := e.Draw(5, 2, 25)
	g1, _ := e.Grade(3)

	rl := NewReplayThenLive(e.Log(), gaussOracle{n: 8, sigma: 0.2})
	e2 := NewEngine(rl, rand.New(rand.NewSource(99)))
	v2 := e2.Draw(1, 4, 60)
	w2 := e2.Draw(5, 2, 25)
	g2, _ := e2.Grade(3)

	if v1 != v2 || w1 != w2 {
		t.Errorf("resumed bags differ: %+v vs %+v, %+v vs %+v", v2, v1, w2, w1)
	}
	if g1 != g2 {
		t.Errorf("resumed grade %v != recorded %v", g2, g1)
	}
	if n := rl.LiveTasks(); n != 0 {
		t.Errorf("full-log resume bought %d live tasks, want 0", n)
	}
}

func TestReplayThenLivePartialLogBuysOnlyTheRemainder(t *testing.T) {
	e := newTestEngine(8, 51)
	e.EnableLog()
	e.Draw(0, 3, 40)

	// Truncate the checkpoint: only the first 25 judgments survived.
	log := e.Log()[:25]
	rl := NewReplayThenLive(log, gaussOracle{n: 8, sigma: 0.2})
	e2 := NewEngine(rl, rand.New(rand.NewSource(100)))
	v := e2.Draw(0, 3, 40)
	if v.N != 40 {
		t.Fatalf("resumed bag has %d samples, want 40", v.N)
	}
	if n := rl.LiveTasks(); n != 15 {
		t.Errorf("live spend = %d, want exactly the 15 missing", n)
	}
	if r := rl.ReplayedRemaining(0, 3); r != 0 {
		t.Errorf("checkpoint not fully consumed: %d answers left", r)
	}
}

func TestReplayThenLiveScalarPath(t *testing.T) {
	e := newTestEngine(6, 52)
	e.EnableLog()
	e.Draw(2, 5, 2)

	rl := NewReplayThenLive(e.Log(), gaussOracle{n: 6, sigma: 0.2})
	rng := rand.New(rand.NewSource(5))
	rl.Preference(rng, 2, 5)
	rl.Preference(rng, 2, 5)
	if n := rl.LiveTasks(); n != 0 {
		t.Fatalf("replayed scalar calls bought %d live tasks", n)
	}
	// Third call exceeds the checkpoint and must hit the live oracle.
	rl.Preference(rng, 2, 5)
	if n := rl.LiveTasks(); n != 1 {
		t.Errorf("live spend = %d, want 1", n)
	}
}

func TestReplayThenLiveRequiresLiveOracle(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil live oracle accepted")
		}
	}()
	NewReplayThenLive(nil, nil)
}
