package crowd

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"
)

// Record is one purchased microtask in an engine's audit log: which pair
// was compared (or which item graded), what the worker answered, and in
// which batch round the answer arrived. Money in a crowdsourcing system is
// real; the log makes every spent cent attributable and every query
// replayable.
type Record struct {
	// Round is the latency-clock value when the microtask was purchased.
	Round int64 `json:"round"`
	// I and J identify the compared pair (I < J canonical orientation).
	// For graded microtasks J is -1.
	I int `json:"i"`
	J int `json:"j"`
	// Value is the worker's answer: a preference in [-1, 1] oriented
	// toward I for pairwise tasks, or the grade on the oracle's native
	// scale for graded tasks.
	Value float64 `json:"value"`
}

// IsGraded reports whether the record is a graded (absolute rating)
// microtask.
func (r Record) IsGraded() bool { return r.J < 0 }

// EnableLog switches on microtask recording. Recording costs one slice
// append per microtask; it is off by default.
func (e *Engine) EnableLog() { e.logging.Store(true) }

// RecordSink receives each freshly logged batch of microtask records,
// synchronously, in log order. The slice is only valid for the duration
// of the call — implementations that retain records must copy. Calls are
// serialized by the engine (made under its log mutex), so a sink needs
// no locking of its own against the engine, and records of one pair
// always arrive in purchase order. A slow sink applies backpressure to
// the purchase path; persistent sinks should buffer (see
// internal/auditlog, whose Log blocks only when its bounded commit
// queue is full).
type RecordSink interface {
	Record(recs []Record)
}

// SetLogSink streams every logged record to sink (enabling logging as a
// side effect). Pass nil to detach. The in-memory log keeps accumulating
// regardless, so TMC == len(Log()) continues to hold.
func (e *Engine) SetLogSink(sink RecordSink) {
	e.logMu.Lock()
	e.sink = sink
	e.logMu.Unlock()
	if sink != nil {
		e.logging.Store(true)
	}
}

// Log returns the recorded microtasks in purchase order. The slice is
// shared; callers must not modify it, and must not call Log while
// purchases are in flight. Under parallel comparison waves the order of
// records from different pairs follows the actual interleaving; records of
// one pair are always in purchase order, which is all replay needs.
func (e *Engine) Log() []Record {
	e.logMu.Lock()
	defer e.logMu.Unlock()
	return e.log
}

// WriteLog serializes the audit log as a JSON array.
func (e *Engine) WriteLog(w io.Writer) error {
	e.logMu.Lock()
	defer e.logMu.Unlock()
	enc := json.NewEncoder(w)
	return enc.Encode(e.log)
}

// ReadLog parses a JSON audit log previously written by WriteLog. The log
// is untrusted input — it may have been truncated by a crash or corrupted
// at rest — so ReadLog rejects malformed JSON, trailing garbage after the
// record array, and records whose values could poison a replay: NaN or
// infinite values, pairwise preferences outside [-1, 1], self-pairs,
// negative item indices, or negative rounds.
func ReadLog(r io.Reader) ([]Record, error) {
	dec := json.NewDecoder(r)
	var recs []Record
	if err := dec.Decode(&recs); err != nil {
		return nil, fmt.Errorf("crowd: decoding audit log: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("crowd: audit log has trailing data after the record array")
	}
	for idx, rec := range recs {
		if err := ValidateRecord(rec); err != nil {
			return nil, fmt.Errorf("crowd: audit log record %d: %w", idx, err)
		}
	}
	return recs, nil
}

// ValidateRecord checks one audit-log record's invariants. It is shared
// with the segmented persistent log (internal/auditlog), which validates
// each record line at both write and reload time.
func ValidateRecord(rec Record) error {
	if rec.Round < 0 {
		return fmt.Errorf("negative round %d", rec.Round)
	}
	if rec.I < 0 {
		return fmt.Errorf("negative item index %d", rec.I)
	}
	if math.IsNaN(rec.Value) || math.IsInf(rec.Value, 0) {
		return fmt.Errorf("non-finite value %v", rec.Value)
	}
	if rec.IsGraded() {
		if rec.J != -1 {
			return fmt.Errorf("graded record has J=%d, want -1", rec.J)
		}
		return nil
	}
	if rec.I == rec.J {
		return fmt.Errorf("pairwise record compares item %d with itself", rec.I)
	}
	if rec.Value < -1 || rec.Value > 1 {
		return fmt.Errorf("pairwise value %v outside [-1,1]", rec.Value)
	}
	return nil
}

// Replay is an Oracle that serves the answers of a recorded audit log:
// each Preference call pops the next recorded answer for that pair. It
// lets a query (or a cheaper variant of it) be re-run against the exact
// judgments a real crowd already gave, without spending again. Replay is
// safe for concurrent use, so a recorded run can be replayed under
// parallel comparison waves; answers are grouped per pair, so the
// cross-pair interleaving of the original run does not matter.
type Replay struct {
	n       int
	mu      sync.Mutex
	pending map[pairKey][]float64
	grades  map[int][]float64
}

// NewReplay builds a replay oracle over n items from an audit log.
func NewReplay(n int, log []Record) *Replay {
	rp := &Replay{
		n:       n,
		pending: make(map[pairKey][]float64),
		grades:  make(map[int][]float64),
	}
	for _, rec := range log {
		if rec.IsGraded() {
			rp.grades[rec.I] = append(rp.grades[rec.I], rec.Value)
			continue
		}
		k := keyOf(rec.I, rec.J)
		v := rec.Value
		if rec.I != k.lo {
			v = -v
		}
		rp.pending[k] = append(rp.pending[k], v)
	}
	return rp
}

// NumItems implements Oracle.
func (rp *Replay) NumItems() int { return rp.n }

// Remaining returns how many unused pairwise answers the replay still
// holds for the pair (i, j).
func (rp *Replay) Remaining(i, j int) int {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return len(rp.pending[keyOf(i, j)])
}

// Preference implements Oracle. It panics when the log holds no more
// answers for the pair — a replayed run that demands judgments the
// original never bought is a logic error the caller must see.
func (rp *Replay) Preference(_ *rand.Rand, i, j int) float64 {
	k := keyOf(i, j)
	rp.mu.Lock()
	q := rp.pending[k]
	if len(q) == 0 {
		rp.mu.Unlock()
		panic(fmt.Sprintf("crowd: replay exhausted for pair (%d,%d)", k.lo, k.hi))
	}
	v := q[0]
	rp.pending[k] = q[1:]
	rp.mu.Unlock()
	if i != k.lo {
		return -v
	}
	return v
}

// Preferences implements BatchOracle: the whole batch pops under one lock
// acquisition instead of len(dst). Replay ignores rng (the answers are
// recorded), so the stream-equivalence contract holds trivially.
func (rp *Replay) Preferences(_ *rand.Rand, i, j int, dst []float64) {
	k := keyOf(i, j)
	rp.mu.Lock()
	q := rp.pending[k]
	if len(q) < len(dst) {
		rp.mu.Unlock()
		panic(fmt.Sprintf("crowd: replay exhausted for pair (%d,%d)", k.lo, k.hi))
	}
	copy(dst, q[:len(dst)])
	rp.pending[k] = q[len(dst):]
	rp.mu.Unlock()
	if i != k.lo {
		for t := range dst {
			dst[t] = -dst[t]
		}
	}
}

// Grade implements Grader by replaying recorded grades for the item.
func (rp *Replay) Grade(_ *rand.Rand, i int) float64 {
	v, ok := rp.takeGrade(i)
	if !ok {
		panic(fmt.Sprintf("crowd: replay exhausted for grades of item %d", i))
	}
	return v
}

// take pops up to n recorded answers for (i, j), oriented toward i, into
// a fresh slice; ok is false when the log holds none. It is the
// non-panicking primitive ReplayThenLive resumes from.
func (rp *Replay) take(i, j, n int) ([]float64, bool) {
	buf := make([]float64, n)
	got := rp.takeUpTo(i, j, buf)
	if got == 0 {
		return nil, false
	}
	return buf[:got], true
}

// takeUpTo fills a prefix of dst with recorded answers for (i, j),
// oriented toward i, and returns how many it supplied.
func (rp *Replay) takeUpTo(i, j int, dst []float64) int {
	k := keyOf(i, j)
	rp.mu.Lock()
	q := rp.pending[k]
	n := len(dst)
	if n > len(q) {
		n = len(q)
	}
	copy(dst[:n], q[:n])
	rp.pending[k] = q[n:]
	rp.mu.Unlock()
	if i != k.lo {
		for t := range dst[:n] {
			dst[t] = -dst[t]
		}
	}
	return n
}

// takeGrade pops one recorded grade for item i; ok is false when the log
// holds none.
func (rp *Replay) takeGrade(i int) (float64, bool) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	q := rp.grades[i]
	if len(q) == 0 {
		return 0, false
	}
	rp.grades[i] = q[1:]
	return q[0], true
}
