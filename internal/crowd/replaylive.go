package crowd

import (
	"math/rand"
	"sync/atomic"
)

// ReplayThenLive is the checkpoint/resume oracle: it serves answers from
// a recorded audit log for as long as the log has them, then falls
// through to a live oracle. Re-driving a crashed query from its WriteLog
// output re-purchases nothing — every judgment the crashed run already
// paid for is replayed for free, and only demand beyond the checkpoint
// reaches the live crowd (counted by LiveTasks, the real money).
//
// Because a query's purchase pattern is deterministic for a fixed seed,
// the resumed query demands exactly the per-pair sample prefixes the
// crashed one bought; the log covers them and the live oracle only
// answers the remainder. Replayed answers do not consume the live
// oracle's random streams, so the post-checkpoint samples are fresh live
// draws — the resumed query is a valid (and typically identical-cost)
// continuation, though not guaranteed bit-identical to the run the crash
// interrupted.
type ReplayThenLive struct {
	replay *Replay
	live   Oracle
	tasks  atomic.Int64
	served atomic.Int64
}

// NewReplayThenLive builds the resume oracle from an audit log and the
// live oracle to continue on. The item count comes from the live oracle.
func NewReplayThenLive(log []Record, live Oracle) *ReplayThenLive {
	if live == nil {
		panic("crowd: NewReplayThenLive requires a live oracle")
	}
	return &ReplayThenLive{replay: NewReplay(live.NumItems(), log), live: live}
}

// NumItems implements Oracle.
func (rl *ReplayThenLive) NumItems() int { return rl.live.NumItems() }

// LiveTasks returns how many microtasks reached the live oracle — the
// spend beyond the replayed checkpoint.
func (rl *ReplayThenLive) LiveTasks() int64 { return rl.tasks.Load() }

// ReplayedServed returns how many recorded answers have been served from
// the log so far — together with LiveTasks it decomposes a resumed run's
// total demand into free history and new spend.
func (rl *ReplayThenLive) ReplayedServed() int64 { return rl.served.Load() }

// ReplayedRemaining returns how many recorded pairwise answers are still
// unused for the pair.
func (rl *ReplayThenLive) ReplayedRemaining(i, j int) int { return rl.replay.Remaining(i, j) }

// Preference implements Oracle: recorded answers first, then live.
func (rl *ReplayThenLive) Preference(rng *rand.Rand, i, j int) float64 {
	if v, ok := rl.replay.take(i, j, 1); ok {
		rl.served.Add(1)
		return v[0]
	}
	rl.tasks.Add(1)
	return rl.live.Preference(rng, i, j)
}

// Preferences implements BatchOracle: the prefix of the batch comes from
// the log, the remainder from the live oracle. Replayed answers ignore
// rng (they are recorded), live answers consume it exactly as sequential
// Preference calls would, so the stream-equivalence contract holds.
func (rl *ReplayThenLive) Preferences(rng *rand.Rand, i, j int, dst []float64) {
	replayed := rl.replay.takeUpTo(i, j, dst)
	rl.served.Add(int64(replayed))
	rest := dst[replayed:]
	if len(rest) == 0 {
		return
	}
	rl.tasks.Add(int64(len(rest)))
	if b, ok := rl.live.(BatchOracle); ok {
		b.Preferences(rng, i, j, rest)
		return
	}
	for t := range rest {
		rest[t] = rl.live.Preference(rng, i, j)
	}
}

// PreferencesPartial implements FallibleBatchOracle: the replayed prefix
// is always delivered (history is already paid for and cannot fail), and
// only the live remainder can come up short. LiveTasks counts the answers
// the live oracle actually delivered, mirroring the engine's charge-what-
// arrived accounting, so TMC equals replayed + live even across failures.
func (rl *ReplayThenLive) PreferencesPartial(rng *rand.Rand, i, j int, dst []float64) (int, error) {
	replayed := rl.replay.takeUpTo(i, j, dst)
	rl.served.Add(int64(replayed))
	rest := dst[replayed:]
	if len(rest) == 0 {
		return replayed, nil
	}
	if fb, ok := rl.live.(FallibleBatchOracle); ok {
		filled, err := fb.PreferencesPartial(rng, i, j, rest)
		rl.tasks.Add(int64(filled))
		return replayed + filled, err
	}
	rl.tasks.Add(int64(len(rest)))
	if b, ok := rl.live.(BatchOracle); ok {
		b.Preferences(rng, i, j, rest)
	} else {
		for t := range rest {
			rest[t] = rl.live.Preference(rng, i, j)
		}
	}
	return len(dst), nil
}

// Grade implements Grader: recorded grades first, then the live oracle,
// which must implement Grader once the log runs dry.
func (rl *ReplayThenLive) Grade(rng *rand.Rand, i int) float64 {
	if v, ok := rl.replay.takeGrade(i); ok {
		rl.served.Add(1)
		return v
	}
	rl.tasks.Add(1)
	return rl.live.(Grader).Grade(rng, i)
}
