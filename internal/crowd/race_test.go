package crowd

import (
	"math/rand"
	"sync"
	"testing"
)

// TestSpendingCapStopsGrade is the regression test for graded judgments
// bypassing the spending cap: Grade must charge against the same budget as
// pairwise draws and refuse to purchase once it is exhausted.
func TestSpendingCapStopsGrade(t *testing.T) {
	e := newTestEngine(10, 65)
	e.SetSpendingCap(2)
	for i := 0; i < 2; i++ {
		if _, ok := e.Grade(0); !ok {
			t.Fatalf("grade %d failed before the cap", i)
		}
	}
	if _, ok := e.Grade(0); ok {
		t.Error("cap did not stop Grade")
	}
	if e.TMC() != 2 || e.GradedTasks() != 2 {
		t.Errorf("TMC = %d, GradedTasks = %d, want 2, 2", e.TMC(), e.GradedTasks())
	}
	// Pairwise and graded purchases share one budget.
	e.SetSpendingCap(3)
	if _, ok := e.DrawOne(0, 1); !ok {
		t.Fatal("DrawOne failed with budget left")
	}
	if _, ok := e.Grade(1); ok {
		t.Error("Grade ignored budget spent by DrawOne")
	}
}

// TestSpendingCapConcurrentNeverOvershoots hammers a capped engine from
// many goroutines: whatever the interleaving, the atomic reservation must
// stop total spending exactly at the cap.
func TestSpendingCapConcurrentNeverOvershoots(t *testing.T) {
	const (
		cap     = 1000
		workers = 16
	)
	e := newTestEngine(50, 66)
	e.SetSpendingCap(cap)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for t := 0; t < 50; t++ {
				i, j := rng.Intn(50), rng.Intn(50)
				if i == j {
					j = (j + 1) % 50
				}
				switch t % 3 {
				case 0:
					e.Draw(i, j, 1+rng.Intn(10))
				case 1:
					e.DrawOne(i, j)
				default:
					e.Grade(i)
				}
			}
		}(w)
	}
	wg.Wait()
	// Demand (16 workers × 50 ops × ≥1 task) exceeds the cap, so spending
	// must land exactly on it — an overshoot means reservation raced.
	if e.TMC() != cap {
		t.Errorf("TMC = %d, want exactly the cap %d", e.TMC(), cap)
	}
	if got := e.PairwiseTasks() + e.GradedTasks(); got != e.TMC() {
		t.Errorf("PairwiseTasks+GradedTasks = %d != TMC %d", got, e.TMC())
	}
	if e.Remaining() != 0 {
		t.Errorf("Remaining = %d after exhaustion", e.Remaining())
	}
}

// TestConcurrentEngineStress drives every public engine entry point from
// many goroutines at once. Run under -race it verifies the locking story:
// striped pair bags, atomic counters, the audit log, and the per-item
// graded streams.
func TestConcurrentEngineStress(t *testing.T) {
	const (
		n       = 40
		workers = 12
		ops     = 200
	)
	e := newTestEngine(n, 67)
	e.EnableLog()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for t := 0; t < ops; t++ {
				i, j := rng.Intn(n), rng.Intn(n)
				if i == j {
					j = (j + 1) % n
				}
				switch t % 7 {
				case 0:
					e.Draw(i, j, 1+rng.Intn(5))
				case 1:
					e.DrawOne(i, j)
				case 2:
					e.View(i, j)
				case 3:
					e.Grade(i)
				case 4:
					e.TMC()
					e.Remaining()
				case 5:
					e.PairsTouched()
				default:
					e.SetSpendingCap(100_000) // far above demand: a no-op limit
				}
			}
		}(w)
	}
	wg.Wait()
	if got := e.PairwiseTasks() + e.GradedTasks(); got != e.TMC() {
		t.Errorf("PairwiseTasks+GradedTasks = %d != TMC %d", got, e.TMC())
	}
	if int64(len(e.Log())) != e.TMC() {
		t.Errorf("audit log has %d records, TMC is %d", len(e.Log()), e.TMC())
	}
}

// TestPairStreamsIndependentOfPurchaseOrder is the determinism heart of the
// concurrency design: every pair samples from a private stream derived from
// the engine seed and the pair identity, so the samples a pair receives do
// not depend on when — or interleaved with what — they were purchased.
func TestPairStreamsIndependentOfPurchaseOrder(t *testing.T) {
	const n = 12
	pairs := [][2]int{{0, 1}, {2, 9}, {4, 5}, {1, 7}, {3, 11}, {6, 8}}

	a := newTestEngine(n, 68)
	for _, p := range pairs { // forward order, one big batch each
		a.Draw(p[0], p[1], 20)
	}

	b := newTestEngine(n, 68)
	for round := 0; round < 20; round++ { // reverse order, interleaved singles
		for idx := len(pairs) - 1; idx >= 0; idx-- {
			p := pairs[idx]
			b.DrawOne(p[1], p[0]) // flipped orientation, too
		}
	}

	for _, p := range pairs {
		va, vb := a.View(p[0], p[1]), b.View(p[0], p[1])
		if va != vb {
			t.Errorf("pair %v bags diverged across purchase orders: %+v vs %+v", p, va, vb)
		}
	}

	// A third engine purchasing concurrently agrees as well.
	c := newTestEngine(n, 68)
	var wg sync.WaitGroup
	for _, p := range pairs {
		wg.Add(1)
		go func(p [2]int) {
			defer wg.Done()
			for t := 0; t < 20; t++ {
				c.DrawOne(p[0], p[1])
			}
		}(p)
	}
	wg.Wait()
	for _, p := range pairs {
		if va, vc := a.View(p[0], p[1]), c.View(p[0], p[1]); va != vc {
			t.Errorf("pair %v bags diverged under concurrency: %+v vs %+v", p, va, vc)
		}
	}
}

// TestGradeStreamsPerItem pins the graded analogue: each item's grades come
// from a private stream rooted in the engine seed, so two engines with the
// same seed agree item by item regardless of grading order.
func TestGradeStreamsPerItem(t *testing.T) {
	a := newTestEngine(6, 69)
	b := newTestEngine(6, 69)
	ga := make([][]float64, 6)
	for i := 0; i < 6; i++ {
		for rep := 0; rep < 5; rep++ {
			v, _ := a.Grade(i)
			ga[i] = append(ga[i], v)
		}
	}
	for rep := 0; rep < 5; rep++ { // transposed order
		for i := 5; i >= 0; i-- {
			v, _ := b.Grade(i)
			if v != ga[i][rep] {
				t.Fatalf("item %d grade %d diverged: %v vs %v", i, rep, v, ga[i][rep])
			}
		}
	}
}
