package crowd

import "testing"

func TestSpendingCapTruncatesDraw(t *testing.T) {
	e := newTestEngine(10, 61)
	e.SetSpendingCap(25)
	if got := e.Remaining(); got != 25 {
		t.Fatalf("Remaining = %d, want 25", got)
	}
	v := e.Draw(0, 1, 30)
	if v.N != 25 || e.TMC() != 25 {
		t.Errorf("capped draw bought %d (TMC %d), want 25", v.N, e.TMC())
	}
	if got := e.Remaining(); got != 0 {
		t.Errorf("Remaining after exhaustion = %d", got)
	}
	// Further draws buy nothing.
	v = e.Draw(0, 1, 10)
	if v.N != 25 {
		t.Errorf("post-cap draw changed N to %d", v.N)
	}
	if _, ok := e.DrawOne(2, 3); ok {
		t.Error("post-cap DrawOne succeeded")
	}
}

func TestSpendingCapUncapped(t *testing.T) {
	e := newTestEngine(10, 62)
	if got := e.Remaining(); got >= 0 {
		t.Errorf("uncapped Remaining = %d, want negative", got)
	}
	e.SetSpendingCap(5)
	e.SetSpendingCap(0) // remove again
	v := e.Draw(0, 1, 50)
	if v.N != 50 {
		t.Errorf("uncapped draw bought %d", v.N)
	}
}

func TestSpendingCapMidSessionTighten(t *testing.T) {
	e := newTestEngine(10, 63)
	e.Draw(0, 1, 40)
	e.SetSpendingCap(50) // 10 left
	v := e.Draw(0, 1, 30)
	if v.N != 50 {
		t.Errorf("tightened cap allowed N=%d, want 50", v.N)
	}
}

func TestSpendingCapDrawOneCounts(t *testing.T) {
	e := newTestEngine(10, 64)
	e.SetSpendingCap(3)
	for i := 0; i < 3; i++ {
		if _, ok := e.DrawOne(0, 1); !ok {
			t.Fatalf("draw %d failed before the cap", i)
		}
	}
	if _, ok := e.DrawOne(0, 1); ok {
		t.Error("cap did not stop DrawOne")
	}
	if e.TMC() != 3 {
		t.Errorf("TMC = %d, want 3", e.TMC())
	}
}
