package crowd

import (
	"fmt"
	"math"
	"math/rand"
)

// WorkerPool decorates an oracle with a finite population of imperfect
// workers. The base oracle models the *task* difficulty (how items
// disagree); the pool layers *worker* behaviour on top: reliable workers
// pass the base judgment through, spammers answer uniformly at random,
// adversaries negate the judgment, and every worker applies her personal
// slider scale. The decorator lets the robustness of the confidence-aware
// machinery be studied under the error models of the crowdsourcing
// literature (cf. Venetis et al.'s worker error models, §2).
type WorkerPool struct {
	base    Oracle
	workers []workerProfile
}

type workerProfile struct {
	kind  int8 // 0 reliable, 1 spammer, 2 adversary
	scale float64
}

// WorkerPoolConfig describes the worker population.
type WorkerPoolConfig struct {
	// Workers is the pool size (default 100).
	Workers int
	// SpammerFraction answer uniformly at random in [-1, 1].
	SpammerFraction float64
	// AdversaryFraction negate the true preference.
	AdversaryFraction float64
	// ScaleSD spreads the per-worker slider scale: each reliable worker
	// multiplies her answers by exp(N(0, ScaleSD²)) clamped into range.
	// It models the paper's observation that judgments "differ in scale
	// across judges" (§1).
	ScaleSD float64
	// Seed fixes the worker population.
	Seed int64
}

// NewWorkerPool builds the decorated oracle.
func NewWorkerPool(base Oracle, cfg WorkerPoolConfig) *WorkerPool {
	if base == nil {
		panic("crowd: NewWorkerPool requires a base oracle")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 100
	}
	if cfg.SpammerFraction < 0 || cfg.AdversaryFraction < 0 ||
		cfg.SpammerFraction+cfg.AdversaryFraction > 1 {
		panic(fmt.Sprintf("crowd: invalid worker fractions %v + %v",
			cfg.SpammerFraction, cfg.AdversaryFraction))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pool := &WorkerPool{base: base, workers: make([]workerProfile, cfg.Workers)}
	for w := range pool.workers {
		p := workerProfile{scale: 1}
		switch u := rng.Float64(); {
		case u < cfg.SpammerFraction:
			p.kind = 1
		case u < cfg.SpammerFraction+cfg.AdversaryFraction:
			p.kind = 2
		}
		if cfg.ScaleSD > 0 {
			p.scale = clampScale(rng.NormFloat64() * cfg.ScaleSD)
		}
		pool.workers[w] = p
	}
	return pool
}

// clampScale converts a log-scale draw into a multiplicative slider
// scale, bounded away from degenerate values.
func clampScale(logScale float64) float64 {
	if logScale > 1.5 {
		logScale = 1.5
	}
	if logScale < -1.5 {
		logScale = -1.5
	}
	return math.Exp(logScale)
}

// NumItems implements Oracle.
func (p *WorkerPool) NumItems() int { return p.base.NumItems() }

// Workers returns the pool size.
func (p *WorkerPool) Workers() int { return len(p.workers) }

// Preference implements Oracle: a uniformly random worker from the pool
// answers the microtask according to her profile.
func (p *WorkerPool) Preference(rng *rand.Rand, i, j int) float64 {
	w := p.workers[rng.Intn(len(p.workers))]
	switch w.kind {
	case 1: // spammer
		return rng.Float64()*2 - 1
	case 2: // adversary
		return -p.base.Preference(rng, i, j)
	default:
		v := p.base.Preference(rng, i, j) * w.scale
		if v > 1 {
			v = 1
		}
		if v < -1 {
			v = -1
		}
		return v
	}
}

// Preferences implements BatchOracle. Each slot draws its own worker and
// answer through the exact per-sample recurrence Preference uses, in
// order, so the pair's random stream is consumed identically whether the
// engine buys samples one at a time or by the batch.
func (p *WorkerPool) Preferences(rng *rand.Rand, i, j int, dst []float64) {
	for t := range dst {
		dst[t] = p.Preference(rng, i, j)
	}
}

// Grade implements Grader when the base oracle does; spammers grade
// randomly on a unit scale, adversaries and honest workers pass through
// (grading has no direction to flip).
func (p *WorkerPool) Grade(rng *rand.Rand, i int) float64 {
	g, ok := p.base.(Grader)
	if !ok {
		panic("crowd: base oracle does not support graded judgments")
	}
	w := p.workers[rng.Intn(len(p.workers))]
	if w.kind == 1 {
		return rng.Float64()
	}
	return g.Grade(rng, i)
}
