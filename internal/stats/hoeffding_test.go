package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHoeffdingHalfWidthShrinks(t *testing.T) {
	prev := math.Inf(1)
	for _, n := range []int{1, 10, 100, 1000, 10000} {
		w := HoeffdingHalfWidth(n, 2, 0.05)
		if w >= prev {
			t.Errorf("half-width not shrinking at n=%d: %v >= %v", n, w, prev)
		}
		prev = w
	}
}

func TestHoeffdingRoundTripProperty(t *testing.T) {
	// SamplesNeeded(t) must yield a half-width ≤ t, and one fewer sample a
	// half-width > t.
	f := func(ti uint16, ai uint8) bool {
		tol := 0.01 + float64(ti%1000)/1000 // (0.01, 1.01)
		alpha := 0.01 + float64(ai%90)/100  // (0.01, 0.91)
		n := HoeffdingSamples(tol, 2, alpha)
		if HoeffdingHalfWidth(n, 2, alpha) > tol+1e-12 {
			return false
		}
		if n > 1 && HoeffdingHalfWidth(n-1, 2, alpha) <= tol-1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHoeffdingCoverageMonteCarlo(t *testing.T) {
	// The Hoeffding interval is conservative: empirical coverage must be at
	// least the nominal level for bounded samples.
	const (
		alpha = 0.1
		n     = 200
		runs  = 2000
	)
	w := HoeffdingHalfWidth(n, 2, alpha)
	rng := newTestRand(99)
	mu := 0.3
	covered := 0
	for r := 0; r < runs; r++ {
		var s float64
		for i := 0; i < n; i++ {
			// Bounded sample in [-1,1] with mean mu.
			x := mu + (rng.Float64()*2-1)*(1-math.Abs(mu))
			s += x
		}
		m := s / n
		if math.Abs(m-mu) <= w {
			covered++
		}
	}
	if frac := float64(covered) / runs; frac < 1-alpha {
		t.Errorf("coverage %.3f below nominal %.3f", frac, 1-alpha)
	}
}

func TestBinaryShiftedMean(t *testing.T) {
	if got := BinaryShiftedMean(0, 1); got != 0 {
		t.Errorf("μ̃(0,1) = %v, want 0", got)
	}
	// μ/σ → ∞ gives μ̃ → 1.
	if got := BinaryShiftedMean(10, 0.1); !almostEqual(got, 1, 1e-9) {
		t.Errorf("μ̃(10,0.1) = %v, want ≈1", got)
	}
	// Antisymmetric in μ.
	if got := BinaryShiftedMean(0.4, 1) + BinaryShiftedMean(-0.4, 1); math.Abs(got) > 1e-12 {
		t.Errorf("μ̃ not antisymmetric: sum = %v", got)
	}
}

func TestBinaryNeedsMoreSamplesThanPreference(t *testing.T) {
	// The Appendix D claim (Figure 15): n_b > n for all μ, σ.
	for _, alpha := range []float64{0.05, 0.02, 0.01} {
		for mu := 0.05; mu <= 1.0; mu += 0.05 {
			for sigma := 0.05; sigma <= 1.0; sigma += 0.05 {
				n := PreferenceSamplesNeeded(mu, sigma, alpha)
				nb := BinarySamplesNeeded(mu, sigma, alpha)
				if nb <= n {
					t.Errorf("α=%v μ=%v σ=%v: n_b=%v ≤ n=%v", alpha, mu, sigma, nb, n)
				}
			}
		}
	}
}

func TestSamplesNeededInfiniteAtZeroMean(t *testing.T) {
	if !math.IsInf(PreferenceSamplesNeeded(0, 1, 0.05), 1) {
		t.Error("PreferenceSamplesNeeded(0, ...) should be +Inf")
	}
	if !math.IsInf(BinarySamplesNeeded(0, 1, 0.05), 1) {
		t.Error("BinarySamplesNeeded(0, ...) should be +Inf")
	}
}

func TestHoeffdingPanics(t *testing.T) {
	assertPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanic("HalfWidth n=0", func() { HoeffdingHalfWidth(0, 2, 0.05) })
	assertPanic("HalfWidth rang", func() { HoeffdingHalfWidth(10, 0, 0.05) })
	assertPanic("HalfWidth alpha", func() { HoeffdingHalfWidth(10, 2, 0) })
	assertPanic("Samples t", func() { HoeffdingSamples(0, 2, 0.05) })
	assertPanic("ShiftedMean sigma", func() { BinaryShiftedMean(1, 0) })
	assertPanic("PrefSamples sigma", func() { PreferenceSamplesNeeded(1, -1, 0.05) })
}
