package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol*(1+math.Max(math.Abs(a), math.Abs(b)))
}

func TestRegIncBetaEndpoints(t *testing.T) {
	for _, tc := range []struct{ a, b float64 }{
		{0.5, 0.5}, {1, 1}, {2, 3}, {10, 0.5}, {0.5, 10}, {100, 100},
	} {
		if got := RegIncBeta(tc.a, tc.b, 0); got != 0 {
			t.Errorf("I_0(%v,%v) = %v, want 0", tc.a, tc.b, got)
		}
		if got := RegIncBeta(tc.a, tc.b, 1); got != 1 {
			t.Errorf("I_1(%v,%v) = %v, want 1", tc.a, tc.b, got)
		}
	}
}

func TestRegIncBetaClosedForms(t *testing.T) {
	// I_x(1,1) = x.
	for _, x := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		if got := RegIncBeta(1, 1, x); !almostEqual(got, x, 1e-12) {
			t.Errorf("I_%v(1,1) = %v, want %v", x, got, x)
		}
	}
	// I_x(2,2) = 3x² − 2x³.
	for _, x := range []float64{0.1, 0.3, 0.5, 0.7, 0.95} {
		want := 3*x*x - 2*x*x*x
		if got := RegIncBeta(2, 2, x); !almostEqual(got, want, 1e-12) {
			t.Errorf("I_%v(2,2) = %v, want %v", x, got, want)
		}
	}
	// I_x(a,1) = x^a.
	for _, x := range []float64{0.2, 0.5, 0.8} {
		for _, a := range []float64{0.5, 1.5, 4} {
			want := math.Pow(x, a)
			if got := RegIncBeta(a, 1, x); !almostEqual(got, want, 1e-12) {
				t.Errorf("I_%v(%v,1) = %v, want %v", x, a, got, want)
			}
		}
	}
	// I_{1/2}(a,a) = 1/2 by symmetry.
	for _, a := range []float64{0.5, 1, 3, 17, 120} {
		if got := RegIncBeta(a, a, 0.5); !almostEqual(got, 0.5, 1e-12) {
			t.Errorf("I_0.5(%v,%v) = %v, want 0.5", a, a, got)
		}
	}
}

func TestRegIncBetaArcsineClosedForm(t *testing.T) {
	// I_x(1/2, 1/2) = (2/π) asin(√x), the arcsine distribution.
	for x := 0.05; x < 1; x += 0.05 {
		want := 2 / math.Pi * math.Asin(math.Sqrt(x))
		if got := RegIncBeta(0.5, 0.5, x); !almostEqual(got, want, 1e-10) {
			t.Errorf("I_%v(0.5,0.5) = %v, want %v", x, got, want)
		}
	}
}

// betaCDFBySimpson integrates the Beta(a,b) density on [0,x] with composite
// Simpson's rule, giving an independent cross-check of the continued
// fraction. It requires a, b >= 1 so the density is bounded.
func betaCDFBySimpson(a, b, x float64, n int) float64 {
	lgab, _ := math.Lgamma(a + b)
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	logC := lgab - lga - lgb
	pdf := func(u float64) float64 {
		if u <= 0 || u >= 1 {
			if (u == 0 && a == 1) || (u == 1 && b == 1) {
				return math.Exp(logC)
			}
			return 0
		}
		return math.Exp(logC + (a-1)*math.Log(u) + (b-1)*math.Log1p(-u))
	}
	h := x / float64(n)
	sum := pdf(0) + pdf(x)
	for i := 1; i < n; i++ {
		u := float64(i) * h
		if i%2 == 1 {
			sum += 4 * pdf(u)
		} else {
			sum += 2 * pdf(u)
		}
	}
	return sum * h / 3
}

func TestRegIncBetaAgainstNumericalIntegration(t *testing.T) {
	cases := []struct{ a, b float64 }{
		{1, 1}, {2, 3}, {5, 1.5}, {10, 10}, {15, 2}, {50, 25}, {5, 0.5 + 0.5}, // t-CDF like shapes
	}
	for _, tc := range cases {
		for _, x := range []float64{0.05, 0.2, 0.5, 0.8, 0.99} {
			want := betaCDFBySimpson(tc.a, tc.b, x, 20000)
			got := RegIncBeta(tc.a, tc.b, x)
			if !almostEqual(got, want, 1e-7) {
				t.Errorf("I_%v(%v,%v) = %.10f, Simpson says %.10f", x, tc.a, tc.b, got, want)
			}
		}
	}
}

func TestRegIncBetaSymmetryProperty(t *testing.T) {
	f := func(ai, bi uint8, xi uint16) bool {
		a := 0.5 + float64(ai%64)/4 // (0.5, 16.25]
		b := 0.5 + float64(bi%64)/4
		x := float64(xi%999+1) / 1000 // (0, 1)
		lhs := RegIncBeta(a, b, x)
		rhs := 1 - RegIncBeta(b, a, 1-x)
		return almostEqual(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegIncBetaMonotoneProperty(t *testing.T) {
	f := func(ai, bi uint8, x1i, x2i uint16) bool {
		a := 0.5 + float64(ai%40)/2
		b := 0.5 + float64(bi%40)/2
		x1 := float64(x1i%1000) / 1000
		x2 := float64(x2i%1000) / 1000
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		return RegIncBeta(a, b, x1) <= RegIncBeta(a, b, x2)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegIncBetaRangeProperty(t *testing.T) {
	f := func(ai, bi uint8, xi uint16) bool {
		a := 0.25 + float64(ai)/8
		b := 0.25 + float64(bi)/8
		x := float64(xi) / 65535
		v := RegIncBeta(a, b, x)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegIncBetaPanics(t *testing.T) {
	for _, tc := range []struct{ a, b, x float64 }{
		{0, 1, 0.5}, {1, 0, 0.5}, {-1, 1, 0.5}, {1, 1, -0.1}, {1, 1, 1.1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RegIncBeta(%v,%v,%v) did not panic", tc.a, tc.b, tc.x)
				}
			}()
			RegIncBeta(tc.a, tc.b, tc.x)
		}()
	}
}
