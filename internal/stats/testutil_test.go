package stats

import "math/rand"

// newTestRand returns a deterministic rng for Monte-Carlo tests.
func newTestRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
