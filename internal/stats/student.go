package stats

import (
	"fmt"
	"math"
)

// TCDF returns the cumulative distribution function of the Student-t
// distribution with df degrees of freedom, evaluated at t. df must be
// positive.
func TCDF(t float64, df float64) float64 {
	if df <= 0 {
		panic(fmt.Sprintf("stats: TCDF requires positive degrees of freedom, got %v", df))
	}
	if math.IsNaN(t) {
		return math.NaN()
	}
	if math.IsInf(t, 1) {
		return 1
	}
	if math.IsInf(t, -1) {
		return 0
	}
	if t == 0 {
		return 0.5
	}
	x := df / (df + t*t)
	p := 0.5 * RegIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// TPDF returns the density of the Student-t distribution with df degrees of
// freedom at t.
func TPDF(t float64, df float64) float64 {
	if df <= 0 {
		panic(fmt.Sprintf("stats: TPDF requires positive degrees of freedom, got %v", df))
	}
	lg1, _ := math.Lgamma((df + 1) / 2)
	lg2, _ := math.Lgamma(df / 2)
	logc := lg1 - lg2 - 0.5*math.Log(df*math.Pi)
	return math.Exp(logc - (df+1)/2*math.Log1p(t*t/df))
}

// TQuantile returns the p-quantile of the Student-t distribution with df
// degrees of freedom, i.e. the t such that TCDF(t, df) = p. p must lie in
// (0, 1).
//
// The solver starts from the normal quantile (exact as df → ∞) widened for
// heavy tails, then runs safeguarded Newton iterations on the CDF. One-digit
// degrees of freedom, where t tails are extremely heavy, are bracketed and
// bisected first.
func TQuantile(p float64, df float64) float64 {
	if df <= 0 {
		panic(fmt.Sprintf("stats: TQuantile requires positive degrees of freedom, got %v", df))
	}
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: TQuantile requires p in (0,1), got %v", p))
	}
	if p == 0.5 {
		return 0
	}
	// Exploit symmetry: solve in the upper tail only.
	if p < 0.5 {
		return -TQuantile(1-p, df)
	}

	// Exact closed forms for the two heaviest-tailed cases.
	if df == 1 {
		return math.Tan(math.Pi * (p - 0.5))
	}
	if df == 2 {
		a := 2*p - 1
		return a * math.Sqrt(2/(1-a*a))
	}

	// Initial guess: normal quantile with a Cornish-Fisher style tail
	// correction, then bracket.
	z := NormalQuantile(p)
	g := z + (z*z*z+z)/(4*df)
	lo, hi := 0.0, math.Max(2*g, 2.0)
	for TCDF(hi, df) < p {
		lo = hi
		hi *= 2
	}

	t := math.Min(math.Max(g, lo), hi)
	for iter := 0; iter < 100; iter++ {
		f := TCDF(t, df) - p
		if f > 0 {
			hi = t
		} else {
			lo = t
		}
		d := TPDF(t, df)
		var next float64
		if d > 0 {
			next = t - f/d
		}
		if d <= 0 || next <= lo || next >= hi {
			next = (lo + hi) / 2
		}
		if math.Abs(next-t) <= 1e-12*(1+math.Abs(t)) {
			return next
		}
		t = next
	}
	return t
}

// TCritical returns the two-sided critical value t_{α/2, df}: the value c
// such that a Student-t variable with df degrees of freedom exceeds c with
// probability α/2. This is the multiplier in the confidence interval
// μ ∈ [x̄ ± c·S/√n] of the paper's STUDENTCOMP (Algorithm 1).
func TCritical(alpha float64, df int) float64 {
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("stats: TCritical requires alpha in (0,1), got %v", alpha))
	}
	if df < 1 {
		panic(fmt.Sprintf("stats: TCritical requires df >= 1, got %d", df))
	}
	return TQuantile(1-alpha/2, float64(df))
}

// TTable memoizes two-sided critical values t_{α/2, df} for a fixed α.
// The comparison processes request the same (α, df) pairs millions of times
// during a simulated query, so the cache keeps the quantile inversion off
// the hot path. TTable is safe for concurrent use; warm lookups are
// lock-free and allocation-free (see F64Cache).
type TTable struct {
	alpha float64
	crit  *F64Cache
}

// NewTTable returns a critical-value cache for significance level alpha.
func NewTTable(alpha float64) *TTable {
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("stats: NewTTable requires alpha in (0,1), got %v", alpha))
	}
	tt := &TTable{alpha: alpha}
	tt.crit = NewF64Cache(func(df int) float64 { return TCritical(alpha, df) })
	return tt
}

// Alpha returns the significance level the table was built for.
func (tt *TTable) Alpha() float64 { return tt.alpha }

// Critical returns t_{α/2, df}, computing and caching it on first use.
func (tt *TTable) Critical(df int) float64 {
	return tt.crit.Get(df)
}
