package stats

import "math"

// Running accumulates the count, mean and variance of a stream of
// observations using Welford's numerically stable one-pass recurrence.
// The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64 // sum of squared deviations from the running mean
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// AddAll incorporates every observation in xs, in order. It runs the same
// per-sample Welford recurrence as Add — the floating-point operation
// sequence is identical, so the result is bit-equal to len(xs) Add calls —
// but accumulates in locals so the loop stays in registers instead of
// writing the struct back every sample.
func (r *Running) AddAll(xs []float64) {
	n, mean, m2 := r.n, r.mean, r.m2
	for _, x := range xs {
		n++
		d := x - mean
		mean += d / float64(n)
		m2 += d * (x - mean)
	}
	r.n, r.mean, r.m2 = n, mean, m2
}

// Restore reconstructs an accumulator from previously exported Welford
// state (N, Mean, M2 — see the M2 accessor). A restored accumulator is
// bit-identical to the one that exported the state: the judgment store
// round-trips bags through Restore so warm-started queries observe the
// exact views a cold run would have produced.
func Restore(n int, mean, m2 float64) Running {
	if n <= 0 {
		return Running{}
	}
	return Running{n: n, mean: mean, m2: m2}
}

// N returns the number of observations seen so far.
func (r *Running) N() int { return r.n }

// M2 returns the raw Welford second-moment accumulator (the sum of
// squared deviations from the running mean). Exporting M2 instead of the
// derived SD lets Restore rebuild the accumulator without rounding loss.
func (r *Running) M2() float64 { return r.m2 }

// Mean returns the sample mean, or 0 if no observations have been added.
func (r *Running) Mean() float64 { return r.mean }

// Var returns the unbiased sample variance (divisor n−1), or 0 when fewer
// than two observations have been added.
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// SD returns the unbiased sample standard deviation.
func (r *Running) SD() float64 { return math.Sqrt(r.Var()) }

// SE returns the standard error of the mean, S/√n, or 0 when fewer than two
// observations have been added.
func (r *Running) SE() float64 {
	if r.n < 2 {
		return 0
	}
	return r.SD() / math.Sqrt(float64(r.n))
}

// Reset discards all accumulated observations.
func (r *Running) Reset() { *r = Running{} }

// Merge combines another accumulator into r, as if every observation added
// to o had been added to r (Chan et al.'s parallel variance update).
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n := r.n + o.n
	d := o.mean - r.mean
	r.m2 += o.m2 + d*d*float64(r.n)*float64(o.n)/float64(n)
	r.mean += d * float64(o.n) / float64(n)
	r.n = n
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the unbiased sample standard deviation of xs, or 0 when
// len(xs) < 2.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}
