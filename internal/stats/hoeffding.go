package stats

import (
	"fmt"
	"math"
)

// HoeffdingHalfWidth returns the half-width t of the two-sided Hoeffding
// confidence interval for the mean of n i.i.d. samples bounded in an
// interval of width rang, at confidence level 1-alpha:
//
//	Pr{ |x̄ - μ| ≥ t } ≤ 2 exp(-2 n t² / rang²) = alpha.
//
// With the paper's preference range [-1, 1], rang = 2 and the bound reduces
// to the form used in Appendix D.
func HoeffdingHalfWidth(n int, rang, alpha float64) float64 {
	if n <= 0 {
		panic(fmt.Sprintf("stats: HoeffdingHalfWidth requires n > 0, got %d", n))
	}
	if rang <= 0 {
		panic(fmt.Sprintf("stats: HoeffdingHalfWidth requires positive range, got %v", rang))
	}
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("stats: HoeffdingHalfWidth requires alpha in (0,1), got %v", alpha))
	}
	return rang * math.Sqrt(math.Log(2/alpha)/(2*float64(n)))
}

// HoeffdingSamples returns the smallest n such that the Hoeffding half-width
// at confidence 1-alpha is at most t, for samples bounded in an interval of
// width rang. It is the closed-form workload n_b of Appendix D, Eq. (3)
// (there specialized to rang = 2).
func HoeffdingSamples(t, rang, alpha float64) int {
	if t <= 0 {
		panic(fmt.Sprintf("stats: HoeffdingSamples requires t > 0, got %v", t))
	}
	if rang <= 0 {
		panic(fmt.Sprintf("stats: HoeffdingSamples requires positive range, got %v", rang))
	}
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("stats: HoeffdingSamples requires alpha in (0,1), got %v", alpha))
	}
	n := rang * rang * math.Log(2/alpha) / (2 * t * t)
	return int(math.Ceil(n))
}

// BinaryShiftedMean returns μ̃ = 2Φ(μ/σ) − 1, the mean of the ±1 binary
// judgment derived by thresholding a Gaussian preference N(μ, σ²) at zero
// (Appendix D). It quantifies how much signal survives binarization.
func BinaryShiftedMean(mu, sigma float64) float64 {
	if sigma <= 0 {
		panic(fmt.Sprintf("stats: BinaryShiftedMean requires sigma > 0, got %v", sigma))
	}
	return 2*NormalCDF(mu/sigma) - 1
}

// PreferenceSamplesNeeded returns the approximate workload n at which the
// Student-t confidence interval around a preference with true mean mu and
// standard deviation sigma first excludes zero at confidence 1-alpha:
// n = (t_{α/2,n-1}·σ/μ)², solved by fixed-point iteration (Appendix D).
func PreferenceSamplesNeeded(mu, sigma, alpha float64) float64 {
	if sigma < 0 {
		panic(fmt.Sprintf("stats: PreferenceSamplesNeeded requires sigma >= 0, got %v", sigma))
	}
	if mu == 0 {
		return math.Inf(1)
	}
	if sigma == 0 {
		// A deterministic judgment distribution (e.g. a replayed database
		// whose records all agree): any two samples decide.
		return 2
	}
	ratio := sigma / math.Abs(mu)
	// Start from the normal-limit workload and iterate the implicit
	// definition; it converges in a handful of steps because t_{α/2,n-1}
	// changes slowly in n.
	z := NormalQuantile(1 - alpha/2)
	n := math.Max(2, (z*ratio)*(z*ratio))
	for i := 0; i < 50; i++ {
		df := math.Max(1, n-1)
		t := TQuantile(1-alpha/2, df)
		next := (t * ratio) * (t * ratio)
		if next < 2 {
			next = 2
		}
		if math.Abs(next-n) < 1e-9*(1+n) {
			return next
		}
		n = next
	}
	return n
}

// BinarySamplesNeeded returns the Appendix D closed-form workload of the
// pairwise binary judgment for a Gaussian preference N(μ, σ²):
// n_b = (2/μ̃²)·log(2/α) with μ̃ = 2Φ(μ/σ)−1.
func BinarySamplesNeeded(mu, sigma, alpha float64) float64 {
	if mu == 0 {
		return math.Inf(1)
	}
	mt := BinaryShiftedMean(mu, sigma)
	if mt == 0 {
		return math.Inf(1)
	}
	return 2 / (mt * mt) * math.Log(2/alpha)
}
