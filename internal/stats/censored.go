package stats

import (
	"fmt"
	"math"
)

// CensoredNormalMoments returns the exact mean and standard deviation of
// clamp(X, a, b) for X ~ N(mu, sigma²): the censored (not truncated)
// normal distribution, where probability mass outside [a, b] piles up on
// the bounds. Datasets that clip worker preferences to [-1, 1] use it so
// their reported pair moments match the judgment distribution exactly.
func CensoredNormalMoments(mu, sigma, a, b float64) (mean, sd float64) {
	if b < a {
		panic(fmt.Sprintf("stats: CensoredNormalMoments requires a <= b, got [%v,%v]", a, b))
	}
	if sigma < 0 {
		panic(fmt.Sprintf("stats: CensoredNormalMoments requires sigma >= 0, got %v", sigma))
	}
	if sigma == 0 {
		m := math.Min(math.Max(mu, a), b)
		return m, 0
	}
	alpha := (a - mu) / sigma
	beta := (b - mu) / sigma
	pa := NormalCDF(alpha)     // mass censored at a
	pb := 1 - NormalCDF(beta)  // mass censored at b
	pm := math.Max(0, 1-pa-pb) // interior mass
	fa, fb := NormalPDF(alpha), NormalPDF(beta)

	mean = a*pa + b*pb + mu*pm - sigma*(fb-fa)
	// Rounding in the extreme-censoring regime (|μ| ≫ bounds) can push
	// the mean past a boundary by ~1e-15; the true mean lives in [a, b].
	if mean < a {
		mean = a
	}
	if mean > b {
		mean = b
	}

	// E[Y²] with Y = clamp(X, a, b): boundary atoms plus the interior
	// second moment ∫(μ+σz)²φ(z)dz over [α, β].
	interior := (mu*mu+sigma*sigma)*pm +
		2*mu*sigma*(fa-fb) +
		sigma*sigma*(alphaTimesPhi(alpha)-alphaTimesPhi(beta))
	ey2 := a*a*pa + b*b*pb + interior
	v := ey2 - mean*mean
	if v < 0 {
		v = 0 // guard tiny negative rounding
	}
	return mean, math.Sqrt(v)
}

// alphaTimesPhi returns x·φ(x), with the 0·φ(±∞) limit handled.
func alphaTimesPhi(x float64) float64 {
	if math.IsInf(x, 0) {
		return 0
	}
	return x * NormalPDF(x)
}
