package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCensoredNormalMomentsNoClipping(t *testing.T) {
	// Bounds far away: moments are the plain Gaussian moments.
	m, s := CensoredNormalMoments(0.3, 0.1, -100, 100)
	if !almostEqual(m, 0.3, 1e-12) || !almostEqual(s, 0.1, 1e-9) {
		t.Errorf("wide bounds: (%v,%v), want (0.3,0.1)", m, s)
	}
}

func TestCensoredNormalMomentsFullClipping(t *testing.T) {
	// Mean far above the upper bound: everything censors to b.
	m, s := CensoredNormalMoments(50, 1, -1, 1)
	if !almostEqual(m, 1, 1e-9) || s > 1e-6 {
		t.Errorf("fully censored: (%v,%v), want (1,0)", m, s)
	}
}

func TestCensoredNormalMomentsSymmetric(t *testing.T) {
	// Symmetric setup: mean 0 stays 0, variance shrinks.
	m, s := CensoredNormalMoments(0, 1, -1, 1)
	if math.Abs(m) > 1e-12 {
		t.Errorf("symmetric mean = %v, want 0", m)
	}
	if s >= 1 || s <= 0 {
		t.Errorf("censored sd = %v, want in (0,1)", s)
	}
}

func TestCensoredNormalMomentsZeroSigma(t *testing.T) {
	if m, s := CensoredNormalMoments(0.5, 0, -1, 1); m != 0.5 || s != 0 {
		t.Errorf("σ=0 interior: (%v,%v)", m, s)
	}
	if m, s := CensoredNormalMoments(3, 0, -1, 1); m != 1 || s != 0 {
		t.Errorf("σ=0 censored: (%v,%v)", m, s)
	}
}

func TestCensoredNormalMomentsMonteCarlo(t *testing.T) {
	rng := newTestRand(31)
	cases := []struct{ mu, sigma, a, b float64 }{
		{0.9, 0.3, -1, 1},
		{-0.5, 0.8, -1, 1},
		{0, 2, -1, 1},
		{0.2, 0.05, -1, 1},
		{1.5, 0.5, -1, 1},
	}
	for _, tc := range cases {
		var r Running
		for i := 0; i < 400000; i++ {
			x := tc.mu + rng.NormFloat64()*tc.sigma
			r.Add(math.Min(math.Max(x, tc.a), tc.b))
		}
		m, s := CensoredNormalMoments(tc.mu, tc.sigma, tc.a, tc.b)
		if math.Abs(r.Mean()-m) > 4e-3 {
			t.Errorf("μ=%v σ=%v: MC mean %v vs analytic %v", tc.mu, tc.sigma, r.Mean(), m)
		}
		if math.Abs(r.SD()-s) > 4e-3 {
			t.Errorf("μ=%v σ=%v: MC sd %v vs analytic %v", tc.mu, tc.sigma, r.SD(), s)
		}
	}
}

func TestCensoredNormalMomentsBoundsProperty(t *testing.T) {
	f := func(mui int16, sigi uint16) bool {
		mu := float64(mui) / 8192 // ~[-4, 4]
		sigma := float64(sigi)/16384 + 1e-6
		m, s := CensoredNormalMoments(mu, sigma, -1, 1)
		if m < -1 || m > 1 || s < 0 || s > 1 {
			return false
		}
		// Censoring can only reduce spread versus the raw Gaussian.
		return s <= sigma+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCensoredNormalMomentsPanics(t *testing.T) {
	assertPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanic("b<a", func() { CensoredNormalMoments(0, 1, 1, -1) })
	assertPanic("sigma<0", func() { CensoredNormalMoments(0, -1, -1, 1) })
}
