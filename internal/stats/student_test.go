package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTCDFSpecialValues(t *testing.T) {
	for _, df := range []float64{1, 2, 5, 30, 1000} {
		if got := TCDF(0, df); got != 0.5 {
			t.Errorf("TCDF(0, %v) = %v, want 0.5", df, got)
		}
		if got := TCDF(math.Inf(1), df); got != 1 {
			t.Errorf("TCDF(+inf, %v) = %v, want 1", df, got)
		}
		if got := TCDF(math.Inf(-1), df); got != 0 {
			t.Errorf("TCDF(-inf, %v) = %v, want 0", df, got)
		}
	}
}

func TestTCDFCauchyClosedForm(t *testing.T) {
	// df = 1 is the Cauchy distribution: F(t) = 1/2 + atan(t)/π.
	for _, x := range []float64{-10, -2, -0.5, 0.3, 1, 7} {
		want := 0.5 + math.Atan(x)/math.Pi
		if got := TCDF(x, 1); !almostEqual(got, want, 1e-12) {
			t.Errorf("TCDF(%v, 1) = %v, want %v", x, got, want)
		}
	}
}

func TestTCDFdf2ClosedForm(t *testing.T) {
	// df = 2: F(t) = 1/2 + t / (2√(2+t²)).
	for _, x := range []float64{-5, -1, 0.25, 2, 9} {
		want := 0.5 + x/(2*math.Sqrt(2+x*x))
		if got := TCDF(x, 2); !almostEqual(got, want, 1e-12) {
			t.Errorf("TCDF(%v, 2) = %v, want %v", x, got, want)
		}
	}
}

func TestTQuantileReferenceValues(t *testing.T) {
	// Standard two-sided critical values t_{α/2, ν} from statistical tables.
	cases := []struct {
		alpha float64
		df    int
		want  float64
	}{
		{0.05, 1, 12.706204736432095},
		{0.05, 2, 4.302652729911275},
		{0.05, 5, 2.5705818366147395},
		{0.05, 10, 2.2281388519649385},
		{0.05, 29, 2.045229642132703},
		{0.05, 30, 2.0422724563012373},
		{0.01, 30, 2.7499956535670305},
		{0.02, 99, 2.3646058614359737},
		{0.05, 1000, 1.9623390808264078},
	}
	for _, tc := range cases {
		got := TCritical(tc.alpha, tc.df)
		if math.Abs(got-tc.want) > 1e-4 {
			t.Errorf("t_{%v/2, %d} = %.9f, want %.9f", tc.alpha, tc.df, got, tc.want)
		}
	}
}

func TestTQuantileRoundTripProperty(t *testing.T) {
	f := func(pi uint32, dfi uint16) bool {
		p := (float64(pi%9998) + 1) / 10000 // (0, 1)
		df := float64(dfi%2000 + 1)
		x := TQuantile(p, df)
		return math.Abs(TCDF(x, df)-p) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTCDFMonotoneProperty(t *testing.T) {
	f := func(x1i, x2i int16, dfi uint16) bool {
		x1 := float64(x1i) / 100
		x2 := float64(x2i) / 100
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		df := float64(dfi%500 + 1)
		return TCDF(x1, df) <= TCDF(x2, df)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTQuantileSymmetryProperty(t *testing.T) {
	f := func(pi uint32, dfi uint16) bool {
		p := (float64(pi%4998) + 1) / 10000 // (0, 0.5)
		df := float64(dfi%300 + 1)
		return math.Abs(TQuantile(p, df)+TQuantile(1-p, df)) < 1e-7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTQuantileApproachesNormal(t *testing.T) {
	// As df → ∞ the t quantile converges to the normal quantile from above
	// (upper tail).
	for _, p := range []float64{0.9, 0.95, 0.975, 0.99, 0.995} {
		z := NormalQuantile(p)
		prev := math.Inf(1)
		for _, df := range []float64{3, 10, 30, 100, 1000, 100000} {
			q := TQuantile(p, df)
			if q < z-1e-9 {
				t.Errorf("TQuantile(%v, %v) = %v below normal %v", p, df, q, z)
			}
			if q > prev+1e-9 {
				t.Errorf("TQuantile(%v, df) not decreasing in df at df=%v: %v > %v", p, df, q, prev)
			}
			prev = q
		}
		if math.Abs(TQuantile(p, 1e7)-z) > 1e-4 {
			t.Errorf("TQuantile(%v, 1e7) = %v, want ≈ %v", p, TQuantile(p, 1e7), z)
		}
	}
}

func TestTPDFIntegratesToOne(t *testing.T) {
	for _, df := range []float64{3, 10, 50} {
		const h = 1e-3
		sum := 0.0
		for x := -60.0; x < 60; x += h {
			sum += h * (TPDF(x, df) + TPDF(x+h, df)) / 2
		}
		if !almostEqual(sum, 1, 1e-5) {
			t.Errorf("∫TPDF(df=%v) = %v, want 1", df, sum)
		}
	}
}

func TestTTableCachesAndMatches(t *testing.T) {
	tt := NewTTable(0.02)
	for _, df := range []int{1, 5, 29, 29, 100, 5, 999} {
		want := TCritical(0.02, df)
		if got := tt.Critical(df); got != want {
			t.Errorf("TTable.Critical(%d) = %v, want %v", df, got, want)
		}
	}
	if tt.Alpha() != 0.02 {
		t.Errorf("Alpha() = %v, want 0.02", tt.Alpha())
	}
}

func TestTTableConcurrent(t *testing.T) {
	tt := NewTTable(0.05)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for df := 1; df <= 200; df++ {
				tt.Critical(df)
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if got, want := tt.Critical(10), TCritical(0.05, 10); got != want {
		t.Errorf("after concurrent fill, Critical(10) = %v, want %v", got, want)
	}
}

func TestStudentPanics(t *testing.T) {
	assertPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanic("TCDF df<=0", func() { TCDF(1, 0) })
	assertPanic("TPDF df<=0", func() { TPDF(1, -3) })
	assertPanic("TQuantile p=0", func() { TQuantile(0, 5) })
	assertPanic("TQuantile p=1", func() { TQuantile(1, 5) })
	assertPanic("TQuantile df<=0", func() { TQuantile(0.5, 0) })
	assertPanic("TCritical alpha", func() { TCritical(0, 5) })
	assertPanic("TCritical df", func() { TCritical(0.05, 0) })
	assertPanic("NewTTable alpha", func() { NewTTable(1) })
}
