package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRunningEmptyAndSingle(t *testing.T) {
	var r Running
	if r.N() != 0 || r.Mean() != 0 || r.Var() != 0 || r.SD() != 0 || r.SE() != 0 {
		t.Errorf("zero Running should report all zeros, got n=%d mean=%v var=%v", r.N(), r.Mean(), r.Var())
	}
	r.Add(42)
	if r.N() != 1 || r.Mean() != 42 || r.Var() != 0 || r.SE() != 0 {
		t.Errorf("single observation: n=%d mean=%v var=%v", r.N(), r.Mean(), r.Var())
	}
}

func TestRunningMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 0, 1000)
	var r Running
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 100
		xs = append(xs, x)
		r.Add(x)
	}
	if !almostEqual(r.Mean(), Mean(xs), 1e-12) {
		t.Errorf("Mean: running %v vs two-pass %v", r.Mean(), Mean(xs))
	}
	if !almostEqual(r.SD(), StdDev(xs), 1e-12) {
		t.Errorf("SD: running %v vs two-pass %v", r.SD(), StdDev(xs))
	}
	wantSE := StdDev(xs) / math.Sqrt(1000)
	if !almostEqual(r.SE(), wantSE, 1e-12) {
		t.Errorf("SE: running %v vs %v", r.SE(), wantSE)
	}
}

func TestRunningMatchesTwoPassProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		var r Running
		for i, v := range raw {
			xs[i] = float64(v) / 7
			r.Add(xs[i])
		}
		return almostEqual(r.Mean(), Mean(xs), 1e-9) && almostEqual(r.SD(), StdDev(xs), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRunningMergeEquivalentToSequential(t *testing.T) {
	f := func(a, b []int8) bool {
		var ra, rb, rall Running
		for _, v := range a {
			ra.Add(float64(v))
			rall.Add(float64(v))
		}
		for _, v := range b {
			rb.Add(float64(v))
			rall.Add(float64(v))
		}
		ra.Merge(rb)
		if ra.N() != rall.N() {
			return false
		}
		if ra.N() == 0 {
			return true
		}
		return almostEqual(ra.Mean(), rall.Mean(), 1e-9) && almostEqual(ra.Var(), rall.Var(), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRunningReset(t *testing.T) {
	var r Running
	r.AddAll([]float64{1, 2, 3})
	r.Reset()
	if r.N() != 0 || r.Mean() != 0 || r.Var() != 0 {
		t.Errorf("after Reset: n=%d mean=%v var=%v", r.N(), r.Mean(), r.Var())
	}
}

func TestRunningNumericalStability(t *testing.T) {
	// Classic catastrophic-cancellation scenario: huge offset, tiny spread.
	var r Running
	const offset = 1e9
	for _, v := range []float64{4, 7, 13, 16} {
		r.Add(offset + v)
	}
	if !almostEqual(r.Mean(), offset+10, 1e-12) {
		t.Errorf("Mean = %v, want %v", r.Mean(), offset+10.0)
	}
	if !almostEqual(r.Var(), 30, 1e-9) { // var of {4,7,13,16} is 30
		t.Errorf("Var = %v, want 30", r.Var())
	}
}

func TestMeanStdDevEdgeCases(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("StdDev of single element != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEqual(got, 2.138089935299395, 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
}
