// Package stats provides the statistical substrate of the crowdtopk
// library: special functions (regularized incomplete beta), the Student-t
// and normal distributions with numerically inverted quantiles, Hoeffding
// bounds for bounded variables, and numerically stable running moments.
//
// Everything is implemented from scratch on top of the math package so the
// module has no third-party dependencies. Accuracy targets are those needed
// by the confidence-aware comparison processes of Kou et al. (SIGMOD 2017):
// quantiles accurate to ~1e-8, which is far below the Monte-Carlo noise of
// any crowdsourced estimate.
package stats
