package stats

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

func TestF64CacheReturnsFunctionValues(t *testing.T) {
	var calls atomic.Int64
	c := NewF64Cache(func(n int) float64 {
		calls.Add(1)
		return float64(n) + 0.5
	})
	for round := 0; round < 3; round++ {
		for n := 0; n < 200; n++ {
			if got, want := c.Get(n), float64(n)+0.5; got != want {
				t.Fatalf("Get(%d) = %v, want %v", n, got, want)
			}
		}
	}
	if got := calls.Load(); got != 200 {
		t.Errorf("function called %d times for 200 distinct keys, want 200", got)
	}
}

func TestF64CacheGrowthPreservesEntries(t *testing.T) {
	c := NewF64Cache(func(n int) float64 { return math.Sqrt(float64(n) + 1) })
	small := c.Get(3)
	// Force several doublings past the initial capacity.
	big := c.Get(5000)
	if got := c.Get(3); got != small {
		t.Errorf("Get(3) after growth = %v, want %v", got, small)
	}
	if want := math.Sqrt(5001); big != want {
		t.Errorf("Get(5000) = %v, want %v", big, want)
	}
}

func TestF64CacheWarmLookupsAllocationFree(t *testing.T) {
	c := NewF64Cache(func(n int) float64 { return float64(n) + 1 })
	c.Get(40)
	if allocs := testing.AllocsPerRun(100, func() { c.Get(40) }); allocs != 0 {
		t.Errorf("warm Get allocates %.1f objects/op, want 0", allocs)
	}
}

func TestF64CachePanicsOnNonPositive(t *testing.T) {
	c := NewF64Cache(func(n int) float64 { return float64(n) }) // 0 at n=0
	defer func() {
		if recover() == nil {
			t.Fatal("Get(0) on a zero-valued function did not panic")
		}
	}()
	c.Get(0)
}

// TestF64CacheConcurrent hammers one cache from many goroutines with
// overlapping keys spanning several growth boundaries; run under -race
// this pins the publication safety of the in-place stores and COW growth.
func TestF64CacheConcurrent(t *testing.T) {
	c := NewF64Cache(func(n int) float64 { return 1 / (float64(n) + 1) })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; n < 2000; n++ {
				k := (n*7 + g*13) % 1500
				if got, want := c.Get(k), 1/(float64(k)+1); got != want {
					t.Errorf("Get(%d) = %v, want %v", k, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
