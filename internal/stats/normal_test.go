package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalCDFReferenceValues(t *testing.T) {
	// Classic z-table anchors.
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{1.959963984540054, 0.975},
		{2.575829303548901, 0.995},
		{-3, 0.0013498980316300933},
		{6, 0.9999999990134123},
	}
	for _, tc := range cases {
		if got := NormalCDF(tc.x); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("Φ(%v) = %.16f, want %.16f", tc.x, got, tc.want)
		}
	}
}

func TestNormalQuantileReferenceValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.995, 2.575829303548901},
		{0.99, 2.3263478740408408},
		{0.95, 1.6448536269514722},
		{0.9, 1.2815515655446004},
		{0.025, -1.959963984540054},
		{1e-6, -4.753424308822899},
	}
	for _, tc := range cases {
		if got := NormalQuantile(tc.p); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Φ⁻¹(%v) = %.12f, want %.12f", tc.p, got, tc.want)
		}
	}
}

func TestNormalQuantileRoundTripProperty(t *testing.T) {
	f := func(pi uint32) bool {
		p := (float64(pi%999998) + 1) / 1000000 // (0, 1)
		x := NormalQuantile(p)
		return math.Abs(NormalCDF(x)-p) < 1e-10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalQuantileSymmetryProperty(t *testing.T) {
	f := func(pi uint32) bool {
		p := (float64(pi%499998) + 1) / 1000000 // (0, 0.5)
		return math.Abs(NormalQuantile(p)+NormalQuantile(1-p)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalPDFIntegratesToCDF(t *testing.T) {
	// Trapezoid integration of the pdf should track the CDF.
	const h = 1e-4
	acc := NormalCDF(-8)
	x := -8.0
	for x < 3 {
		acc += h * (NormalPDF(x) + NormalPDF(x+h)) / 2
		x += h
		if math.Mod(x, 1) < h { // spot check near integers
			if !almostEqual(acc, NormalCDF(x), 1e-6) {
				t.Fatalf("integral of pdf at %v = %v, CDF = %v", x, acc, NormalCDF(x))
			}
		}
	}
}

func TestNormalQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormalQuantile(%v) did not panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}
