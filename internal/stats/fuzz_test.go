package stats

import (
	"math"
	"testing"
)

// The statistical kernels run millions of times per simulated query; fuzz
// their numeric domains for NaNs, range violations and inversion drift.

func FuzzRegIncBeta(f *testing.F) {
	f.Add(0.5, 0.5, 0.5)
	f.Add(100.0, 0.5, 0.99)
	f.Add(1.0, 1.0, 0.0)
	f.Fuzz(func(t *testing.T, a, b, x float64) {
		if !(a > 0 && a < 1e6) || !(b > 0 && b < 1e6) || !(x >= 0 && x <= 1) {
			return
		}
		v := RegIncBeta(a, b, x)
		if math.IsNaN(v) || v < -1e-12 || v > 1+1e-12 {
			t.Fatalf("I_%v(%v,%v) = %v out of [0,1]", x, a, b, v)
		}
	})
}

func FuzzTQuantileRoundTrip(f *testing.F) {
	f.Add(0.975, 10.0)
	f.Add(0.5, 1.0)
	f.Add(0.001, 3.0)
	f.Fuzz(func(t *testing.T, p, df float64) {
		if !(p > 1e-6 && p < 1-1e-6) || !(df >= 1 && df < 1e5) {
			return
		}
		q := TQuantile(p, df)
		if math.IsNaN(q) {
			t.Fatalf("TQuantile(%v,%v) is NaN", p, df)
		}
		back := TCDF(q, df)
		if math.Abs(back-p) > 1e-6 {
			t.Fatalf("round trip drift: p=%v df=%v q=%v back=%v", p, df, q, back)
		}
	})
}

func FuzzCensoredNormalMoments(f *testing.F) {
	f.Add(0.0, 1.0)
	f.Add(5.0, 0.1)
	f.Add(-3.0, 2.0)
	f.Fuzz(func(t *testing.T, mu, sigma float64) {
		if math.IsNaN(mu) || math.IsInf(mu, 0) || !(sigma >= 0 && sigma < 1e6) || math.Abs(mu) > 1e6 {
			return
		}
		m, s := CensoredNormalMoments(mu, sigma, -1, 1)
		if math.IsNaN(m) || m < -1-1e-9 || m > 1+1e-9 {
			t.Fatalf("censored mean %v out of [-1,1] for μ=%v σ=%v", m, mu, sigma)
		}
		if math.IsNaN(s) || s < 0 || s > 1+1e-9 {
			t.Fatalf("censored sd %v out of [0,1] for μ=%v σ=%v", s, mu, sigma)
		}
	})
}
