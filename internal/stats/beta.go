package stats

import (
	"fmt"
	"math"
)

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// for a > 0, b > 0 and x in [0, 1]. It underpins the Student-t CDF.
//
// The evaluation uses the continued-fraction expansion (modified Lentz
// algorithm) on whichever tail converges fast, exploiting the symmetry
// I_x(a,b) = 1 - I_{1-x}(b,a).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(x):
		return math.NaN()
	case a <= 0 || b <= 0:
		panic(fmt.Sprintf("stats: RegIncBeta requires positive shape parameters, got a=%v b=%v", a, b))
	case x < 0 || x > 1:
		panic(fmt.Sprintf("stats: RegIncBeta requires x in [0,1], got x=%v", x))
	case x == 0:
		return 0
	case x == 1:
		return 1
	}

	lgab, _ := math.Lgamma(a + b)
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	// Prefactor x^a (1-x)^b / (a B(a,b)) shared by both tails.
	logBT := lgab - lga - lgb + a*math.Log(x) + b*math.Log1p(-x)
	bt := math.Exp(logBT)

	if x < (a+1)/(a+b+2) {
		return bt * betaCF(a, b, x) / a
	}
	return 1 - bt*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 400
		eps     = 3e-16
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		fm := float64(m)

		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c

		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			return h
		}
	}
	// The fraction converges within a handful of iterations for every
	// argument the library produces; reaching here indicates a precision
	// plateau, and h is still the best available estimate.
	return h
}
