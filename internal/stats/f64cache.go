package stats

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// F64Cache memoizes a positive function of a small non-negative integer —
// critical values keyed by degrees of freedom, interval half-widths keyed
// by sample size. The stopping rules evaluate such functions millions of
// times per simulated query over a tiny set of dense keys, so the cache is
// built for that shape:
//
//   - storage is a dense []uint64 of math.Float64bits values, indexed by
//     key, published through an atomic pointer;
//   - a zero cell means "not computed yet" (the cached function must be
//     strictly positive, so 0 is never a legal value's bit pattern);
//   - hits are two atomic loads and no locks, no map hashing, and no
//     allocation — warm lookups are safe to call from allocation-free
//     hot paths;
//   - misses compute under a mutex and store the bits into the cell in
//     place with an atomic store. Growth copies into a doubled slice and
//     republishes the pointer; readers of the old slice still see valid
//     (possibly slightly stale-empty) cells and simply take the miss path.
type F64Cache struct {
	fn func(int) float64

	mu    sync.Mutex
	cells atomic.Pointer[[]uint64]
}

// NewF64Cache returns a cache over fn, which must be deterministic and
// strictly positive for every key it is asked for.
func NewF64Cache(fn func(int) float64) *F64Cache {
	if fn == nil {
		panic("stats: NewF64Cache requires a function")
	}
	return &F64Cache{fn: fn}
}

// Get returns fn(n), computing and caching it on first use.
func (c *F64Cache) Get(n int) float64 {
	if n < 0 {
		panic(fmt.Sprintf("stats: F64Cache.Get requires n >= 0, got %d", n))
	}
	if p := c.cells.Load(); p != nil && n < len(*p) {
		if bits := atomic.LoadUint64(&(*p)[n]); bits != 0 {
			return math.Float64frombits(bits)
		}
	}
	return c.fill(n)
}

// fill computes, stores and returns fn(n); the slow path of Get.
func (c *F64Cache) fill(n int) float64 {
	v := c.fn(n)
	if !(v > 0) || math.IsInf(v, 1) {
		panic(fmt.Sprintf("stats: F64Cache function returned %v for %d; must be positive and finite", v, n))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cells := c.cells.Load()
	if cells == nil || n >= len(*cells) {
		size := 64
		if cells != nil {
			size = 2 * len(*cells)
		}
		for size <= n {
			size *= 2
		}
		grown := make([]uint64, size)
		if cells != nil {
			copy(grown, *cells) // no concurrent writers: all stores hold mu
		}
		c.cells.Store(&grown)
		cells = &grown
	}
	atomic.StoreUint64(&(*cells)[n], math.Float64bits(v))
	return v
}
