package stats

import "testing"

// The comparison processes evaluate quantiles and running moments on every
// purchased sample; these benchmarks size those hot paths.

func BenchmarkRegIncBeta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RegIncBeta(15, 0.5, 0.7)
	}
}

func BenchmarkTQuantileCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		TQuantile(0.99, float64(i%1000+2))
	}
}

func BenchmarkTTableCriticalHot(b *testing.B) {
	tt := NewTTable(0.02)
	for df := 1; df <= 1000; df++ {
		tt.Critical(df) // warm the cache
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tt.Critical(i%1000 + 1)
	}
}

func BenchmarkNormalQuantile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NormalQuantile(0.975)
	}
}

func BenchmarkRunningAdd(b *testing.B) {
	var r Running
	for i := 0; i < b.N; i++ {
		r.Add(float64(i % 17))
	}
}

func BenchmarkCensoredNormalMoments(b *testing.B) {
	for i := 0; i < b.N; i++ {
		CensoredNormalMoments(0.3, 0.5, -1, 1)
	}
}

func BenchmarkHoeffdingHalfWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		HoeffdingHalfWidth(i%5000+1, 2, 0.02)
	}
}
