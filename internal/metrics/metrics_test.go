package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

// identityRank treats item id as its rank.
func identityRank(i int) int { return i }

func TestNDCGPerfectList(t *testing.T) {
	if got := NDCG([]int{0, 1, 2, 3, 4}, identityRank, 100); got != 1 {
		t.Errorf("perfect NDCG = %v, want 1", got)
	}
}

func TestNDCGOrderMatters(t *testing.T) {
	right := NDCG([]int{0, 1, 2}, identityRank, 50)
	swapped := NDCG([]int{1, 0, 2}, identityRank, 50)
	if swapped >= right {
		t.Errorf("swapping top items did not lower NDCG: %v >= %v", swapped, right)
	}
	if swapped <= 0 || swapped >= 1 {
		t.Errorf("swapped NDCG %v out of (0,1)", swapped)
	}
}

func TestNDCGWorstItems(t *testing.T) {
	n := 100
	// Items entirely outside the true top-k earn zero gain.
	if bad := NDCG([]int{97, 98, 99}, identityRank, n); bad != 0 {
		t.Errorf("bottom items NDCG = %v, want 0", bad)
	}
	good := NDCG([]int{0, 1, 5}, identityRank, n)
	if good <= 0 || good >= 1 {
		t.Errorf("partially-correct NDCG %v out of (0,1)", good)
	}
}

func TestNDCGMembershipSensitiveAtLargeN(t *testing.T) {
	// The top-k-focused gain must punish swapping the true rank-9 item for
	// the rank-10 item even in a huge universe — the blunt linear-gain
	// variant would barely move.
	n := 10000
	perfect := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	offByOne := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 10}
	a := NDCG(perfect, identityRank, n)
	b := NDCG(offByOne, identityRank, n)
	if a != 1 {
		t.Fatalf("perfect NDCG = %v", a)
	}
	if b > 0.995 {
		// The blunt linear-gain variant would score ≈ 0.99997 here.
		t.Errorf("off-by-one NDCG %v too close to 1: gain not top-k-focused", b)
	}
	if b >= a {
		t.Errorf("off-by-one NDCG %v not below perfect %v", b, a)
	}
}

func TestNDCGBoundsProperty(t *testing.T) {
	f := func(picks []uint8) bool {
		if len(picks) == 0 {
			return true
		}
		n := 256
		seen := map[int]bool{}
		var got []int
		for _, p := range picks {
			if !seen[int(p)] {
				seen[int(p)] = true
				got = append(got, int(p))
			}
		}
		v := NDCG(got, identityRank, n)
		return v >= 0 && v <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrecisionAtK(t *testing.T) {
	if got := PrecisionAtK([]int{0, 1, 2, 3}, identityRank); got != 1 {
		t.Errorf("perfect precision = %v", got)
	}
	if got := PrecisionAtK([]int{0, 1, 50, 60}, identityRank); got != 0.5 {
		t.Errorf("half precision = %v", got)
	}
	if got := PrecisionAtK([]int{90, 91, 92, 93}, identityRank); got != 0 {
		t.Errorf("zero precision = %v", got)
	}
	// Precision ignores order.
	if PrecisionAtK([]int{3, 0, 2, 1}, identityRank) != 1 {
		t.Error("precision must be order-insensitive")
	}
}

func TestKendallTau(t *testing.T) {
	if got := KendallTau([]int{2, 5, 9, 11}, identityRank); got != 1 {
		t.Errorf("sorted tau = %v, want 1", got)
	}
	if got := KendallTau([]int{11, 9, 5, 2}, identityRank); got != -1 {
		t.Errorf("reversed tau = %v, want -1", got)
	}
	// One adjacent swap in 3 items: 2 concordant, 1 discordant → 1/3.
	if got := KendallTau([]int{1, 0, 2}, identityRank); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("one-swap tau = %v, want 1/3", got)
	}
}

func TestSpearmanFootrule(t *testing.T) {
	if got := SpearmanFootrule([]int{4, 7, 9}, identityRank); got != 0 {
		t.Errorf("sorted footrule = %v, want 0", got)
	}
	if got := SpearmanFootrule([]int{9, 7, 4, 1}, identityRank); got != 1 {
		t.Errorf("reversed footrule = %v, want 1", got)
	}
	got := SpearmanFootrule([]int{7, 4, 9}, identityRank) // displacement 1+1+0 of max 4
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("footrule = %v, want 0.5", got)
	}
}

func TestRankCorrelationAgreementProperty(t *testing.T) {
	// Tau = 1 ⟺ footrule = 0 on any duplicate-free list.
	f := func(picks []uint16) bool {
		seen := map[int]bool{}
		var got []int
		for _, p := range picks {
			if !seen[int(p)] {
				seen[int(p)] = true
				got = append(got, int(p))
			}
		}
		if len(got) < 2 {
			return true
		}
		tau := KendallTau(got, identityRank)
		foot := SpearmanFootrule(got, identityRank)
		if (tau == 1) != (foot == 0) {
			return false
		}
		return tau >= -1-1e-12 && tau <= 1+1e-12 && foot >= 0 && foot <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMetricsPanics(t *testing.T) {
	assertPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanic("NDCG empty", func() { NDCG(nil, identityRank, 10) })
	assertPanic("NDCG oversize", func() { NDCG([]int{0, 1, 2}, identityRank, 2) })
	assertPanic("NDCG bad rank", func() { NDCG([]int{11}, identityRank, 10) })
	assertPanic("Precision empty", func() { PrecisionAtK(nil, identityRank) })
	assertPanic("Tau single", func() { KendallTau([]int{1}, identityRank) })
	assertPanic("Footrule single", func() { SpearmanFootrule([]int{1}, identityRank) })
}
