// Package metrics provides the ranking-quality measures of the paper's
// evaluation: NDCG (§6.2, after Järvelin & Kekäläinen), precision@k, and
// the rank-correlation measures (Kendall tau, Spearman's footrule)
// commonly reported alongside.
package metrics

import (
	"fmt"
	"math"
)

// NDCG computes the Normalized Discounted Cumulative Gain of a returned
// top-k list against a ground-truth ranking. trueRank maps an item to its
// 0-based rank in the total order (0 is best) over n items. The gain is
// top-k-focused, the standard choice for top-k retrieval: an item of true
// rank r contributes k − r when it belongs to the true top-k and 0
// otherwise, and position i (0-based) is discounted by 1/log2(i+2). The
// result is normalized by the ideal DCG, so NDCG ∈ [0, 1] with 1 iff the
// list is exactly the true top-k in order; with this gain the measure is
// sensitive to both membership and order even when n ≫ k.
func NDCG(got []int, trueRank func(int) int, n int) float64 {
	k := len(got)
	if k == 0 {
		panic("metrics: NDCG of an empty list")
	}
	if k > n {
		panic(fmt.Sprintf("metrics: list of %d items exceeds universe %d", k, n))
	}
	dcg := 0.0
	for i, o := range got {
		r := trueRank(o)
		if r < 0 || r >= n {
			panic(fmt.Sprintf("metrics: trueRank(%d) = %d out of range [0,%d)", o, r, n))
		}
		if r < k {
			dcg += float64(k-r) / math.Log2(float64(i)+2)
		}
	}
	ideal := 0.0
	for i := 0; i < k; i++ {
		ideal += float64(k-i) / math.Log2(float64(i)+2)
	}
	return dcg / ideal
}

// PrecisionAtK returns the fraction of the true top-k present in the
// returned list (order-insensitive). got and the truth both have k items.
func PrecisionAtK(got []int, trueRank func(int) int) float64 {
	if len(got) == 0 {
		panic("metrics: PrecisionAtK of an empty list")
	}
	k := len(got)
	hits := 0
	for _, o := range got {
		if trueRank(o) < k {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// KendallTau returns the Kendall rank-correlation coefficient between the
// order of the returned list and the ground truth restricted to those
// items: 1 for perfect agreement, −1 for full reversal.
func KendallTau(got []int, trueRank func(int) int) float64 {
	k := len(got)
	if k < 2 {
		panic("metrics: KendallTau requires at least two items")
	}
	concordant, discordant := 0, 0
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			// Position order says got[a] before got[b].
			if trueRank(got[a]) < trueRank(got[b]) {
				concordant++
			} else {
				discordant++
			}
		}
	}
	return float64(concordant-discordant) / float64(concordant+discordant)
}

// SpearmanFootrule returns the normalized Spearman footrule distance
// between the returned order and the true relative order of the same
// items: 0 for identical orders, 1 for the maximal displacement.
func SpearmanFootrule(got []int, trueRank func(int) int) float64 {
	k := len(got)
	if k < 2 {
		panic("metrics: SpearmanFootrule requires at least two items")
	}
	// Rank the items among themselves by ground truth.
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort by trueRank (k is small).
	for i := 1; i < k; i++ {
		for j := i; j > 0 && trueRank(got[idx[j]]) < trueRank(got[idx[j-1]]); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	relative := make([]int, k) // relative[positionInGot] = rank among got
	for r, i := range idx {
		relative[i] = r
	}
	sum := 0
	for i, r := range relative {
		d := i - r
		if d < 0 {
			d = -d
		}
		sum += d
	}
	// Maximal footrule displacement is ⌊k²/2⌋.
	return float64(sum) / float64(k*k/2)
}
