package metrics

import "testing"

func BenchmarkNDCG(b *testing.B) {
	got := []int{5, 2, 9, 1, 0, 3, 11, 7, 4, 6}
	for i := 0; i < b.N; i++ {
		NDCG(got, identityRank, 1225)
	}
}

func BenchmarkKendallTau(b *testing.B) {
	got := []int{5, 2, 9, 1, 0, 3, 11, 7, 4, 6}
	for i := 0; i < b.N; i++ {
		KendallTau(got, identityRank)
	}
}
