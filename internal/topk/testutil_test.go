package topk

import "math/rand"

// newTestRand returns a deterministic rng for test-local randomness.
func newTestRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
