package topk

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"crowdtopk/internal/compare"
	"crowdtopk/internal/dataset"
)

func TestBubbleMedianCost(t *testing.T) {
	// Appendix C: C(A,m) = (3m² + m − 2)/8 comparisons for bubble sort.
	for _, m := range []int{1, 3, 5, 7, 9, 11, 101} {
		want := (3*m*m + m - 2) / 8
		if got := bubbleMedianCost(m); got != want {
			t.Errorf("C(bubble,%d) = %d, want %d", m, got, want)
		}
	}
	// The formula must upper-bound the sum Σ_{i=1..⌈m/2⌉}(m−i) it was
	// derived from (Appendix C).
	for m := 1; m <= 201; m += 2 {
		sum := 0
		for i := 1; i <= (m+1)/2; i++ {
			sum += m - i
		}
		if bound := bubbleMedianCost(m); sum > bound {
			t.Errorf("m=%d: actual bubble comparisons %d exceed bound %d", m, sum, bound)
		}
	}
}

func TestPlanReferenceRespectsBudget(t *testing.T) {
	for _, n := range []int{25, 100, 537, 1225} {
		for _, k := range []int{1, 5, 10, 20} {
			if k >= n {
				continue
			}
			plan := planReference(n, k, 1.5)
			if plan.m < 1 || plan.m%2 != 1 {
				t.Errorf("n=%d k=%d: m=%d not odd positive", n, k, plan.m)
			}
			if plan.x < 1 || plan.x > n {
				t.Errorf("n=%d k=%d: x=%d out of range", n, k, plan.x)
			}
			if cost := plan.m*(plan.x-1) + bubbleMedianCost(plan.m); cost > n {
				t.Errorf("n=%d k=%d: sampling cost %d exceeds budget %d", n, k, cost, n)
			}
			if plan.prob < 0 || plan.prob > 1 {
				t.Errorf("n=%d k=%d: probability %v outside [0,1]", n, k, plan.prob)
			}
		}
	}
}

func TestSweetSpotProbSaneShape(t *testing.T) {
	// With more sampling procedures the median concentrates: probability at
	// (x*, m) should not collapse, and a decent plan must beat the wild
	// guess ck/N for realistic sizes.
	n, k, c := 1225, 10, 1.5
	plan := planReference(n, k, c)
	wild := c * float64(k) / float64(n)
	if plan.prob <= wild {
		t.Errorf("planned probability %v not above wild guess %v", plan.prob, wild)
	}
	if plan.prob < 0.3 {
		t.Errorf("planned probability %v suspiciously low", plan.prob)
	}
}

func TestSweetSpotProbMatchesMonteCarlo(t *testing.T) {
	// Validate the closed-form §5.1 probability against simulation on the
	// rank scale (sampling is rank-uniform, so no crowd is needed).
	n, k, c := 200, 10, 1.5
	x, m := 40, 5
	want := sweetSpotProb(n, k, x, m, c)

	rng := newTestRand(4242)
	const runs = 20000
	hits := 0
	ck := int(math.Floor(c * float64(k)))
	for run := 0; run < runs; run++ {
		medianOf := make([]int, m)
		for s := 0; s < m; s++ {
			best := n // ranks are 0-based, lower is better
			for t2 := 0; t2 < x; t2++ {
				if r := rng.Intn(n); r < best {
					best = r
				}
			}
			medianOf[s] = best
		}
		sort.Ints(medianOf)
		med := medianOf[m/2]
		// Sweet spot: o_k* ⪰ r ⪰ o_ck*, i.e. rank in [k-1, ck-1].
		if med >= k-1 && med <= ck-1 {
			hits++
		}
	}
	got := float64(hits) / runs
	if math.Abs(got-want) > 0.02 {
		t.Errorf("closed form %v vs Monte Carlo %v", want, got)
	}
}

func TestSelectReferenceLandsNearSweetSpot(t *testing.T) {
	// Over repetitions, the selected reference must be far from a uniform
	// draw: its average rank should sit near the sweet spot, well above k
	// times worse than random.
	const n, k = 200, 10
	sumRank := 0
	const runs = 20
	for rep := 0; rep < runs; rep++ {
		r, src := noisyRunner(n, 0.2, int64(900+rep))
		ref := NewSPR().selectReference(r, allItems(n), k)
		sumRank += src.TrueRank(ref)
	}
	avg := float64(sumRank) / runs
	if avg > float64(n)/4 {
		t.Errorf("average reference rank %v too far from sweet spot (uniform would be %v)", avg, float64(n)/2)
	}
}

func TestPartitionInvariants(t *testing.T) {
	const n, k = 50, 8
	r, src := noisyRunner(n, 0.25, 31)
	items := allItems(n)
	ref := dataset.Order(src)[12] // a known mid reference
	res := partition(r, items, k, ref, 2)

	// The three groups plus the final reference partition the item set.
	seen := map[int]int{}
	for _, o := range res.winners {
		seen[o]++
	}
	for _, o := range res.ties {
		seen[o]++
	}
	for _, o := range res.losers {
		seen[o]++
	}
	if !res.refInWinners {
		seen[res.ref]++
	}
	if len(seen) != n {
		t.Fatalf("partition covers %d items, want %d", len(seen), n)
	}
	for o, c := range seen {
		if c != 1 {
			t.Fatalf("item %d appears %d times in the partition", o, c)
		}
	}

	// Confirmed winners beat the final reference per the memo; confirmed
	// losers lose to it.
	for _, o := range res.winners {
		if res.refInWinners && o == res.ref {
			continue
		}
		if out, ok := r.Concluded(o, res.ref); ok && out != compare.FirstWins {
			t.Errorf("winner %d concluded %v against reference", o, out)
		}
	}
	for _, o := range res.losers {
		if out, ok := r.Concluded(o, res.ref); ok && out != compare.SecondWins {
			t.Errorf("loser %d concluded %v against reference", o, out)
		}
	}
	if res.refChanges > 2 {
		t.Errorf("refChanges %d exceeds cap", res.refChanges)
	}
}

func TestPartitionNoRefChangeWhenDisabled(t *testing.T) {
	const n, k = 40, 5
	r, src := noisyRunner(n, 0.25, 32)
	ref := dataset.Order(src)[8]
	res := partition(r, allItems(n), k, ref, 0)
	if res.refChanges != 0 {
		t.Errorf("refChanges = %d with maxRefChanges=0", res.refChanges)
	}
	if res.ref != ref {
		t.Errorf("reference changed from %d to %d despite cap 0", ref, res.ref)
	}
}

func TestPartitionPerfectReferencePrunesEverything(t *testing.T) {
	// Noiseless data with the true o_k* as reference: exactly the k-1
	// better items win, everyone else loses, no ties.
	const n, k = 30, 6
	r, src := exactRunner(n, 33)
	order := dataset.Order(src)
	res := partition(r, allItems(n), k, order[k-1], 0)
	if len(res.winners) != k-1+1 || !res.refInWinners {
		// k-1 strict winners plus the reference added back (line 13).
		t.Fatalf("winners = %v (refInWinners=%v), want %d strict winners + ref",
			res.winners, res.refInWinners, k-1)
	}
	if len(res.ties) != 0 {
		t.Errorf("ties = %v, want none on noiseless data", res.ties)
	}
	if len(res.losers) != n-k {
		t.Errorf("losers = %d, want %d", len(res.losers), n-k)
	}
}

func TestAdjacentSortExact(t *testing.T) {
	r, src := exactRunner(25, 34)
	order := dataset.Order(src)
	// Shuffle, sort by crowd, expect the exact order.
	items := append([]int(nil), order...)
	rng := newTestRand(35)
	rng.Shuffle(len(items), func(a, b int) { items[a], items[b] = items[b], items[a] })
	got := sortByCrowd(r, items)
	for i := range got {
		if got[i] != order[i] {
			t.Fatalf("sorted[%d] = %d, want %d", i, got[i], order[i])
		}
	}
}

func TestAdjacentSortAlmostSortedIsCheap(t *testing.T) {
	// Sorting an already sorted sequence must cost at most one comparison
	// per adjacent pair (near-linear best case, §5.3).
	r, src := exactRunner(30, 36)
	order := dataset.Order(src)
	tmc0 := r.Engine().TMC()
	sortByCrowd(r, order)
	perPair := float64(r.Engine().TMC()-tmc0) / float64(len(order)-1)
	if perPair > float64(r.Params().I)+1 {
		t.Errorf("already-sorted input cost %.1f tasks/pair, want ≈ I", perPair)
	}
}

func TestMaxItemAndMaxItemsExact(t *testing.T) {
	r, src := exactRunner(20, 37)
	order := dataset.Order(src)
	if got := maxItem(r, order); got != order[0] {
		t.Errorf("maxItem = %d, want %d", got, order[0])
	}
	// Multi-tournament variant agrees, including duplicate samples.
	winners := maxItems(r, [][]int{order, order[5:], {order[3]}})
	if winners[0] != order[0] || winners[1] != order[5] || winners[2] != order[3] {
		t.Errorf("maxItems = %v", winners)
	}
}

func TestCompareAllDedupesAndOrients(t *testing.T) {
	r, _ := exactRunner(10, 38)
	pairs := [][2]int{{0, 1}, {1, 0}, {0, 1}, {2, 2}}
	outs := compareAll(r, pairs)
	if outs[0] != outs[1].Flip() || outs[0] != outs[2] {
		t.Errorf("duplicate orientations disagree: %v", outs)
	}
	if outs[3] != compare.Tie {
		t.Errorf("identical pair outcome = %v, want Tie", outs[3])
	}
	// Dedup means the pair's workload is that of a single comparison.
	if w := r.Workload(0, 1); w > r.Params().B {
		t.Errorf("deduped pair workload %d exceeds a single budget", w)
	}
}

func TestSweetSpotProbProperty(t *testing.T) {
	f := func(ni, ki, xi, mi uint8) bool {
		n := int(ni)%500 + 20
		k := int(ki)%10 + 1
		if 2*k >= n {
			return true
		}
		x := int(xi)%n + 1
		m := 2*(int(mi)%10) + 1
		p := sweetSpotProb(n, k, x, m, 1.5)
		return p >= -1e-9 && p <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
