package topk

import "crowdtopk/internal/compare"

// TourTree answers top-k queries with a tournament tree over a random
// permutation of the items (§4.1, after Davidson et al.): winners of
// paired comparisons are promoted level by level until the best item
// reaches the root; the next best item is then recovered among the items
// that lost directly to an already-extracted champion. Expected cost is
// O(Nw + kw·logN); matches of one level run in parallel (§5.5).
type TourTree struct{}

// Name implements Algorithm.
func (TourTree) Name() string { return "tourtree" }

// TopK implements Algorithm.
func (TourTree) TopK(r *compare.Runner, k int) []int {
	validateK(r, k)
	n := r.Engine().NumItems()
	perm := r.Rand().Perm(n)

	// lostTo[c] accumulates the items that lost a match directly against
	// c; the (j+1)-th best item always lost to one of the j best, so it is
	// found among their direct losers.
	lostTo := make(map[int][]int, n)

	champion := tournamentMax(r, perm, lostTo)
	result := make([]int, 0, k)
	result = append(result, champion)

	// candidates of the next extraction: direct losers of all extracted
	// champions, minus the extracted ones.
	for len(result) < k {
		var cands []int
		skip := make(map[int]bool, len(result))
		for _, c := range result {
			skip[c] = true
		}
		for _, c := range result {
			for _, l := range lostTo[c] {
				if !skip[l] {
					skip[l] = true // dedupe: replayed matches record losers again
					cands = append(cands, l)
				}
			}
		}
		next := tournamentMax(r, cands, lostTo)
		result = append(result, next)
	}
	return result
}

// tournamentMax runs a single-elimination tournament bracket on the
// shared scheduler, recording direct losers as matches decide.
func tournamentMax(r *compare.Runner, items []int, lostTo map[int][]int) int {
	if len(items) == 0 {
		panic("topk: tournamentMax on empty slice")
	}
	p := newBracketPlan(r, [][]int{items}, func(winner, loser int) {
		lostTo[winner] = append(lostTo[winner], loser)
	})
	drive(r, p)
	return p.winner(0)
}
