package topk

import (
	"math/rand"
	"testing"

	"crowdtopk/internal/compare"
	"crowdtopk/internal/crowd"
	"crowdtopk/internal/dataset"
)

// benchRunner builds a fresh paper-default runner over a 200-item
// synthetic instance; iteration i gets its own crowd stream.
func benchRunner(i int) *compare.Runner {
	src := dataset.NewSynthetic(200, 0.3, 1) // one fixed dataset
	eng := crowd.NewEngine(src, rand.New(rand.NewSource(int64(i+1))))
	return compare.NewRunner(eng, compare.NewStudent(0.02), compare.Params{B: 1000, I: 30, Step: 30})
}

func benchAlgorithm(b *testing.B, alg Algorithm) {
	b.Helper()
	var tmc int64
	for i := 0; i < b.N; i++ {
		r := benchRunner(i)
		tmc = Run(alg, r, 10).TMC
	}
	b.ReportMetric(float64(tmc), "tasks")
}

func BenchmarkSPR(b *testing.B) { benchAlgorithm(b, NewSPR()) }

// BenchmarkSPREndToEnd is the perf-trajectory headline number: one full
// SPR top-10 query over the 200-item synthetic instance, CPU-bound on the
// microtask hot path (batched kernels, snapshot reads, memo lookups, and
// the stopping rules' cached statistics). Unlike BenchmarkSPR it reports
// per-microtask cost, so the number is comparable across instances.
func BenchmarkSPREndToEnd(b *testing.B) {
	b.ReportAllocs()
	var tasks int64
	for i := 0; i < b.N; i++ {
		r := benchRunner(i)
		tasks += Run(NewSPR(), r, 10).TMC
	}
	if tasks > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(tasks), "ns/microtask")
	}
}
func BenchmarkTourTree(b *testing.B)    { benchAlgorithm(b, TourTree{}) }
func BenchmarkHeapSort(b *testing.B)    { benchAlgorithm(b, HeapSort{}) }
func BenchmarkQuickSelect(b *testing.B) { benchAlgorithm(b, QuickSelect{}) }
func BenchmarkPBR(b *testing.B)         { benchAlgorithm(b, NewPBR()) }

func BenchmarkSelectReference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(i)
		NewSPR().selectReference(r, allItems(200), 10)
	}
}

func BenchmarkPartition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(i)
		partition(r, allItems(200), 10, 17, 2)
	}
}

func BenchmarkAdjacentSortAlmostSorted(b *testing.B) {
	src := dataset.NewSynthetic(100, 0.2, 2)
	order := dataset.Order(src)
	for i := 0; i < b.N; i++ {
		eng := crowd.NewEngine(src, rand.New(rand.NewSource(int64(i+1))))
		r := compare.NewRunner(eng, compare.NewStudent(0.02), compare.Params{B: 300, I: 30, Step: 30})
		sortByCrowd(r, order)
	}
}

func BenchmarkInfimumCost(b *testing.B) {
	src := dataset.NewIMDb(3)
	p := InfimumParams{Alpha: 0.02, B: 1000, I: 30, Eta: 30}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		InfimumCost(src, 10, p)
	}
}

func BenchmarkIntervalGroups(b *testing.B) {
	src := dataset.NewSynthetic(60, 0.2, 4)
	eng := crowd.NewEngine(src, rand.New(rand.NewSource(5)))
	r := compare.NewRunner(eng, compare.NewStudent(0.05), compare.Params{B: 500, I: 30, Step: 30})
	items := allItems(60)
	for _, o := range items[1:] {
		r.Compare(o, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IntervalGroups(eng, items, 0, 0.05)
	}
}
