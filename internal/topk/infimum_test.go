package topk

import (
	"math"
	"math/rand"
	"testing"

	"crowdtopk/internal/compare"
	"crowdtopk/internal/crowd"
	"crowdtopk/internal/dataset"
)

func infParams() InfimumParams {
	return InfimumParams{Alpha: 0.02, B: 1000, I: 30, Eta: 30}
}

func TestExpectedWorkloadBounds(t *testing.T) {
	src := dataset.NewSynthetic(40, 0.3, 51)
	p := infParams()
	order := dataset.Order(src)
	// An easy pair clamps to I; adjacent mid-ranked pairs cost more.
	easy := ExpectedWorkload(src, order[0], order[39], p)
	if easy != float64(p.I) {
		t.Errorf("easy pair workload %v, want I=%d", easy, p.I)
	}
	hard := ExpectedWorkload(src, order[19], order[20], p)
	if hard <= easy {
		t.Errorf("adjacent pair workload %v not above easy %v", hard, easy)
	}
	if hard > float64(p.B) {
		t.Errorf("workload %v exceeds budget %d", hard, p.B)
	}
}

func TestExpectedWorkloadInverseDistance(t *testing.T) {
	// §4.4: W(o_i, o_j) ∝ 1/|s(o_i) − s(o_j)| — monotone in rank distance
	// for a homogeneous-noise latent source with unbounded budget.
	scores := make([]float64, 20)
	for i := range scores {
		scores[i] = float64(20-i) / 20
	}
	src := dataset.NewLatent(dataset.LatentConfig{
		Name: "even", Scores: scores, Gain: 0.5, NoiseSD: 0.4,
	})
	p := InfimumParams{Alpha: 0.02, B: 0, I: 2, Eta: 30}
	prev := math.Inf(1)
	for d := 1; d < 19; d++ {
		w := ExpectedWorkload(src, 0, d, p)
		if w > prev+1e-9 {
			t.Errorf("workload not decreasing with distance at d=%d: %v > %v", d, w, prev)
		}
		prev = w
	}
}

func TestInfimumLemma4Monotone(t *testing.T) {
	// Lemma 4 assumes the idealized workload model W ∝ 1/|Δs| over a
	// homogeneous item space; build exactly that — evenly spaced scores,
	// uniform noise — and expect strict monotonicity.
	k := 10
	scores := make([]float64, 200)
	for i := range scores {
		scores[i] = 1 - float64(i)/200
	}
	even := dataset.NewLatent(dataset.LatentConfig{
		Name: "even", Scores: scores, Gain: 0.5, NoiseSD: 0.4,
	})
	p := InfimumParams{Alpha: 0.02, B: 0, I: 2, Eta: 30}
	prev := -1.0
	for ell := k - 1; ell < 60; ell++ {
		c := InfimumCostWithReference(even, k, ell, p)
		if c < prev-1e-9 {
			t.Errorf("TMC_inf(o_%d*) = %v below TMC_inf at ℓ-1 (%v): violates Lemma 4", ell, c, prev)
		}
		prev = c
	}

	// On heterogeneous real-style data only the overall trend survives:
	// a reference far from o_k* must cost more than o_k* itself.
	imdb := dataset.NewIMDb(52)
	pi := infParams()
	base := InfimumCostWithReference(imdb, k, k-1, pi)
	far := InfimumCostWithReference(imdb, k, k+50, pi)
	if far <= base {
		t.Errorf("IMDb: TMC_inf at ℓ=k+50 (%v) not above TMC_inf at o_k* (%v)", far, base)
	}
	if got, want := InfimumCostWithReference(imdb, k, k-1, pi), InfimumCost(imdb, k, pi); got != want {
		t.Errorf("Lemma 3 at ℓ=k disagrees with Lemma 1: %v vs %v", got, want)
	}
}

func TestInfimumBelowMeasuredAlgorithms(t *testing.T) {
	// The floor must actually floor the measured costs at matched settings.
	const n, k = 120, 10
	src := dataset.NewSynthetic(n, 0.3, 53)
	p := InfimumParams{Alpha: 0.02, B: 500, I: 30, Eta: 30}
	floor := InfimumCost(src, k, p)
	for _, alg := range []Algorithm{NewSPR(), TourTree{}, HeapSort{}, QuickSelect{}} {
		eng := crowd.NewEngine(src, rand.New(rand.NewSource(54)))
		r := compare.NewRunner(eng, compare.NewStudent(0.02), compare.Params{B: 500, I: 30, Step: 30})
		res := Run(alg, r, k)
		if float64(res.TMC) < floor*0.8 {
			// 0.8 slack: the infimum uses expected workloads, single runs
			// fluctuate.
			t.Errorf("%s measured TMC %d below infimum %v", alg.Name(), res.TMC, floor)
		}
	}
}

func TestInfimumResultShape(t *testing.T) {
	src := dataset.NewSynthetic(30, 0.2, 55)
	res := Infimum(src, 5, infParams())
	if res.Algorithm != "infimum" || len(res.TopK) != 5 || res.TMC <= 0 || res.Rounds <= 0 {
		t.Errorf("unexpected infimum result %+v", res)
	}
}

func TestInfimumPanics(t *testing.T) {
	src := dataset.NewSynthetic(10, 0.2, 56)
	assertPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanic("k=0", func() { InfimumCost(src, 0, infParams()) })
	assertPanic("k>n", func() { InfimumCost(src, 11, infParams()) })
	assertPanic("ell<k-1", func() { InfimumCostWithReference(src, 5, 3, infParams()) })
	assertPanic("ell>=n", func() { InfimumCostWithReference(src, 5, 10, infParams()) })
	assertPanic("eta", func() {
		p := infParams()
		p.Eta = 0
		InfimumRounds(src, 5, p)
	})
}
