package topk

import (
	"fmt"
	"sort"

	"crowdtopk/internal/compare"
	"crowdtopk/internal/obs"
)

// SPR is the paper's Select-Partition-Rank framework (§5): select a
// reference item from the sweet spot {o_k*, ..., o_ck*} by sampled maxima
// (Algorithm 3), partition all items against it with incremental
// confidence-aware comparisons (Algorithm 4), and rank the surviving
// candidates by a reference-bootstrapped near-linear sort (§5.3). SPR
// minimizes total monetary cost by avoiding comparisons between items that
// are adjacent in the unknown total order.
type SPR struct {
	// C controls the sweet-spot width ck (c > 1; the paper's default is
	// 1.5, Table 6).
	C float64
	// MaxRefChanges caps how many times partitioning may upgrade the
	// reference (Table 4 finds 2-4 optimal; default 2).
	MaxRefChanges int
	// SelectionBudget caps the per-pair microtasks of reference-selection
	// comparisons. 0 selects the default of 2I (see selectReference); a
	// negative value disables the cap and uses the full pairwise budget B
	// (the naive reading of Algorithm 3 — measurably wasteful, kept for
	// the ablation study).
	SelectionBudget int
	// PriorScores, when non-nil, must score every item of the runner's
	// item space (higher is better) and replaces sampled reference
	// selection entirely: the reference is the item whose prior rank sits
	// in the middle of the sweet spot, at zero crowd cost. This is the
	// §7 future-work direction ("given some partial knowledge of the
	// items, SPR could more effectively select a reference"). Priors only
	// steer efficiency; correctness still rests on the confidence-aware
	// partition.
	PriorScores []float64
	// Trace, when non-nil, is filled during TopK with the per-phase cost
	// breakdown of the run (accumulated across recursions).
	Trace *PhaseTrace
}

// PhaseCost is the money and latency one query phase consumed.
type PhaseCost struct {
	TMC    int64
	Rounds int64
}

// PhaseTrace breaks one SPR query down by framework phase — the paper's
// cost anatomy (selection §5.1, partitioning §5.2, ranking §5.3) made
// observable.
type PhaseTrace struct {
	Select    PhaseCost
	Partition PhaseCost
	Rank      PhaseCost
	// RefChanges counts Algorithm 4's reference upgrades across the run.
	RefChanges int
	// Winners, Ties and Losers are the partition sizes of the outermost
	// call.
	Winners, Ties, Losers int
	// Recursions counts Algorithm 2's descents into the loser set.
	Recursions int
}

// NewSPR returns SPR with the paper's default parameters.
func NewSPR() *SPR { return &SPR{C: 1.5, MaxRefChanges: 2} }

// Name implements Algorithm.
func (s *SPR) Name() string { return "spr" }

// TopK implements Algorithm.
func (s *SPR) TopK(r *compare.Runner, k int) []int {
	validateK(r, k)
	if s.C <= 1 {
		panic(fmt.Sprintf("topk: SPR requires C > 1, got %v", s.C))
	}
	if s.MaxRefChanges < 0 {
		panic(fmt.Sprintf("topk: SPR requires MaxRefChanges >= 0, got %d", s.MaxRefChanges))
	}
	if s.Trace != nil {
		*s.Trace = PhaseTrace{} // one trace per query
	}
	return s.topK(r, allItems(r.Engine().NumItems()), k)
}

// TopKSubset answers the top-k query restricted to the given candidate
// items (all indices of the runner's item space). It is the entry point
// for two-phase methods that first filter candidates by other means, such
// as HybridSPR (§6.5).
func (s *SPR) TopKSubset(r *compare.Runner, items []int, k int) []int {
	if k < 1 || k > len(items) {
		panic(fmt.Sprintf("topk: SPR subset query k=%d out of range [1,%d]", k, len(items)))
	}
	return s.topK(r, items, k)
}

// phaseSpan snapshots the runner's per-query counters so phases can
// attribute their cost exactly — even while other queries share the
// engine — and, when the runner carries telemetry, holds the phase's
// open trace span and the parent span to restore once the phase ends.
type phaseSpan struct {
	name        string
	tmc, rounds int64
	span        *obs.ActiveSpan
	prevParent  obs.SpanID
	prevPhase   string
}

func (s *SPR) beginPhase(r *compare.Runner, name string) phaseSpan {
	ps := phaseSpan{name: name, tmc: r.QueryTMC(), rounds: r.QueryRounds()}
	ps.prevPhase = r.Phase()
	r.SetPhase(name)
	if tr := r.Tracer(); tr != nil {
		ps.prevParent = r.ParentSpan()
		ps.span = tr.Start("phase:"+name, ps.prevParent)
		r.SetParentSpan(ps.span.ID())
	}
	return ps
}

func (s *SPR) endPhase(r *compare.Runner, ps phaseSpan, into *PhaseCost) {
	r.SetPhase(ps.prevPhase)
	dTMC := r.QueryTMC() - ps.tmc
	dRounds := r.QueryRounds() - ps.rounds
	into.TMC += dTMC
	into.Rounds += dRounds
	if reg := r.Registry(); reg != nil {
		reg.Counter(obs.PhaseTMC(ps.name)).Add(dTMC)
		reg.Counter(obs.PhaseRounds(ps.name)).Add(dRounds)
	}
	if ps.span != nil {
		ps.span.SetAttr("tmc", float64(dTMC))
		ps.span.SetAttr("rounds", float64(dRounds))
		ps.span.End()
		r.SetParentSpan(ps.prevParent)
	}
}

// topK is Algorithm 2 (SPR) on an item subset.
func (s *SPR) topK(r *compare.Runner, items []int, k int) []int {
	return s.topKTraced(r, items, k, true)
}

func (s *SPR) topKTraced(r *compare.Runner, items []int, k int, outermost bool) []int {
	if k >= len(items) {
		// Nothing to prune; rank everything.
		span := s.beginPhase(r, "rank")
		out := s.rank(r, items, -1)[:k]
		s.endPhase(r, span, s.traceRank())
		return out
	}

	span := s.beginPhase(r, "select")
	ref := s.selectReference(r, items, k) // §5.1
	s.endPhase(r, span, s.traceSelect())

	span = s.beginPhase(r, "partition")
	part := partition(r, items, k, ref, s.MaxRefChanges)
	s.endPhase(r, span, s.tracePartition())
	if s.Trace != nil {
		s.Trace.RefChanges += part.refChanges
		if outermost {
			s.Trace.Winners = len(part.winners)
			s.Trace.Ties = len(part.ties)
			s.Trace.Losers = len(part.losers)
		}
	}

	w, t := part.winners, part.ties
	sortRef := part.ref

	switch {
	case len(w) >= k:
		// Line 10: enough confirmed winners; rank them.
		span = s.beginPhase(r, "rank")
		out := s.rank(r, w, sortRef)[:k]
		s.endPhase(r, span, s.traceRank())
		return out
	case len(w)+len(t) >= k:
		// Lines 4-6: fill up with random ties.
		need := k - len(w)
		r.Rand().Shuffle(len(t), func(a, b int) { t[a], t[b] = t[b], t[a] })
		cands := append(append([]int{}, w...), t[:need]...)
		span = s.beginPhase(r, "rank")
		out := s.rank(r, cands, sortRef)[:k]
		s.endPhase(r, span, s.traceRank())
		return out
	default:
		// Lines 7-9: recurse into the losers for the remainder.
		if s.Trace != nil {
			s.Trace.Recursions++
		}
		cands := append(append([]int{}, w...), t...)
		rest := s.topKTraced(r, part.losers, k-len(cands), false)
		cands = append(cands, rest...)
		span = s.beginPhase(r, "rank")
		out := s.rank(r, cands, sortRef)[:k]
		s.endPhase(r, span, s.traceRank())
		return out
	}
}

// trace accessors tolerate a nil trace so call sites stay linear.
func (s *SPR) traceSelect() *PhaseCost {
	if s.Trace == nil {
		return &PhaseCost{}
	}
	return &s.Trace.Select
}

func (s *SPR) tracePartition() *PhaseCost {
	if s.Trace == nil {
		return &PhaseCost{}
	}
	return &s.Trace.Partition
}

func (s *SPR) traceRank() *PhaseCost {
	if s.Trace == nil {
		return &PhaseCost{}
	}
	return &s.Trace.Rank
}

// rank implements reference-based sorting (§5.3): candidates are first
// ordered by their estimated preference means against the reference —
// the order maximizing Thurstone's pairwise probabilities Φ((μ̂_i−μ̂_j)/σ̂)
// — and the almost-sorted sequence is then repaired by a best-case-linear
// crowd sort whose comparisons are reusable. ref < 0 means no reference
// information is available and the initial order is arbitrary.
func (s *SPR) rank(r *compare.Runner, items []int, ref int) []int {
	out := append([]int(nil), items...)
	if len(out) < 2 {
		return out
	}
	if ref >= 0 {
		mean := func(o int) float64 {
			if o == ref {
				return 0 // an item neither beats nor loses to itself
			}
			return r.Engine().View(o, ref).Mean
		}
		sort.SliceStable(out, func(a, b int) bool { return mean(out[a]) > mean(out[b]) })
	}
	adjacentSort(r, out)
	return out
}
