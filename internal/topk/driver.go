package topk

import (
	"time"

	"crowdtopk/internal/compare"
	"crowdtopk/internal/sched"
)

// match is one comparison a plan wants answered: the pair (i, j), with
// the outcome eventually reported to decide oriented toward i.
type match struct {
	id   int64
	i, j int
}

// plan is an algorithm's comparison schedule, the shape every top-k
// processor reduces to: ready returns the matches whose inputs are now
// known (each match is returned exactly once — the driver takes
// ownership), and decide delivers a match's raw outcome, from which the
// plan updates its state so further matches become ready. Plans apply
// their own tie-resolution policy inside decide; the driver reports
// conclusions verbatim (memoized verdicts, definitional self-pair ties,
// and budget-exhausted ties included).
//
// One driver executes every plan in both scheduling modes, so the wave
// bookkeeping that used to be copied across the tournament, sorting,
// merging and flat-batch loops lives in exactly one place.
type plan interface {
	ready() []match
	decide(id int64, o compare.Outcome)
}

// chain is one live comparison process: a canonical pair being advanced
// batch by batch, plus every match waiting on its verdict (duplicate
// requests for one pair — in either orientation — share a single chain,
// so each distinct pair advances at most once per round).
type chain struct {
	tag     int64
	lo, hi  int
	round   int64
	waiters []match
	out     compare.Outcome
	done    bool
}

// drive runs a plan to completion on the runner's shared scheduler.
//
// In deterministic mode (the default) it advances all live chains in
// lockstep waves: every chain gets one batch, the drain is the wave
// barrier of §5.5, the clock ticks once per wave, and conclusions apply
// in chain-creation order on the control goroutine — so the result is
// byte-identical for any Parallelism at a fixed seed.
//
// In async mode chains free-run: the moment a chain's batch completes it
// is either concluded (immediately freeing its pool slot for another
// pair, or another query) or resubmitted, with no barrier. Latency is
// accounted as the high-water mark of per-chain rounds — the depth of
// the longest comparison process, which is what a real crowd deployment
// with enough workers would observe.
func drive(r *compare.Runner, p plan) {
	q, release := r.Borrow()
	defer release()

	chains := make(map[[2]int]*chain)
	byTag := make(map[int64]*chain)
	var nextTag int64

	conclude := func(c *chain) {
		delete(chains, [2]int{c.lo, c.hi})
		delete(byTag, c.tag)
		for _, m := range c.waiters {
			o := c.out
			if m.i != c.lo {
				o = o.Flip()
			}
			p.decide(m.id, o)
		}
	}

	// pump admits every ready match: self-pairs (a tie by definition —
	// they arise when sampling with replacement yields the same max
	// twice) and memoized pairs decide immediately at zero cost; the
	// rest attach to the pair's live chain or start a new one. Deciding
	// can make further matches ready, so pump polls until quiescent. It
	// returns the chains started, in creation order.
	pump := func() []*chain {
		var started []*chain
		for {
			ms := p.ready()
			if len(ms) == 0 {
				return started
			}
			for _, m := range ms {
				if m.i == m.j {
					p.decide(m.id, compare.Tie)
					continue
				}
				if o, ok := r.Concluded(m.i, m.j); ok {
					p.decide(m.id, o)
					continue
				}
				lo, hi := m.i, m.j
				if lo > hi {
					lo, hi = hi, lo
				}
				key := [2]int{lo, hi}
				if c := chains[key]; c != nil {
					c.waiters = append(c.waiters, m)
					continue
				}
				c := &chain{tag: nextTag, lo: lo, hi: hi, waiters: []match{m}}
				nextTag++
				chains[key] = c
				byTag[c.tag] = c
				started = append(started, c)
			}
		}
	}

	if !r.AsyncMode() {
		driveWaves(r, q, p, pump, conclude)
		return
	}

	live := pump()
	var ticked int64
	inflight := 0
	submit := func(c *chain) {
		q.Submit(sched.Task{Tag: c.tag, Round: c.round + 1, Run: func() {
			c.out, c.done = r.Advance(c.lo, c.hi)
		}})
		inflight++
	}
	for _, c := range live {
		c.round = ticked
		submit(c)
	}
	for inflight > 0 {
		tag := q.Next()
		inflight--
		c := byTag[tag]
		// A stopped query's pending steps are dropped by the scheduler —
		// their completions arrive without Run having executed. Conclude
		// such chains inline: Advance on a stopped runner purchases
		// nothing and reports the best-effort verdict immediately, so the
		// drain makes monotonic progress at zero cost.
		if !c.done && r.Stopped() {
			c.out, c.done = r.Advance(c.lo, c.hi)
		}
		c.round++
		// High-water latency: chains advance in lockstep rounds, so the
		// query is as deep as its deepest chain. Chains behind the mark
		// ride rounds already paid for.
		if c.round > ticked {
			r.Tick(int(c.round - ticked))
			ticked = c.round
		}
		if !c.done {
			submit(c)
			continue
		}
		conclude(c)
		for _, n := range pump() {
			n.round = ticked
			submit(n)
		}
	}
}

// driveWaves is the deterministic mode of drive: lockstep waves with a
// drain barrier, one latency round per wave, conclusions applied in
// chain-creation order.
func driveWaves(r *compare.Runner, q *sched.Query, p plan, pump func() []*chain, conclude func(*chain)) {
	ins := r.Instruments()
	live := pump()
	var wave int64
	for len(live) > 0 {
		wave++
		var waveStart time.Time
		if ins != nil {
			ins.Waves.Inc()
			ins.WaveWidth.Observe(int64(len(live)))
			ins.WaveWidthMax.SetMax(int64(len(live)))
			waveStart = time.Now()
		}
		for _, c := range live {
			c := c
			q.Submit(sched.Task{Tag: c.tag, Round: wave, Run: func() {
				c.out, c.done = r.Advance(c.lo, c.hi)
			}})
		}
		q.Drain(len(live))
		if ins != nil {
			ins.WaveNs.Add(time.Since(waveStart).Nanoseconds())
		}
		r.Tick(1)
		next := live[:0]
		for _, c := range live {
			// Steps dropped by a stopped query's scheduler cancel never
			// ran; conclude their chains best-effort at zero cost so the
			// wave loop drains instead of resubmitting forever.
			if !c.done && r.Stopped() {
				c.out, c.done = r.Advance(c.lo, c.hi)
			}
			if c.done {
				conclude(c)
			} else {
				next = append(next, c)
			}
		}
		live = append(next, pump()...)
	}
}
