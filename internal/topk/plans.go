package topk

import "crowdtopk/internal/compare"

// flatPlan answers a fixed batch of pairs — the shape of compareAll and
// of quickselect's pivot phase. Every pair is ready immediately; outcomes
// are recorded raw, oriented toward each pair's first item.
type flatPlan struct {
	pairs  [][2]int
	out    []compare.Outcome
	issued bool
}

func newFlatPlan(pairs [][2]int) *flatPlan {
	return &flatPlan{pairs: pairs, out: make([]compare.Outcome, len(pairs))}
}

func (p *flatPlan) ready() []match {
	if p.issued {
		return nil
	}
	p.issued = true
	ms := make([]match, len(p.pairs))
	for idx, pr := range p.pairs {
		ms[idx] = match{id: int64(idx), i: pr[0], j: pr[1]}
	}
	return ms
}

func (p *flatPlan) decide(id int64, o compare.Outcome) { p.out[id] = o }

// bracketPlan runs single-elimination tournaments — one bracket per
// entrant list, all sharing the driver's pool. A match becomes ready the
// moment both of its slots are known, so sibling brackets and even
// consecutive levels of one bracket overlap: the winner of a fast match
// advances while its cousins are still racing. Odd entrants get a bye
// appended after the level's winners, preserving the classic pairing.
// onMatch, when non-nil, observes every decided match (tournament-tree
// loser bookkeeping).
type bracketPlan struct {
	r       *compare.Runner
	trees   []*bracketTree
	pending map[int64][3]int // match id -> {tree, level, match index}
	nextID  int64
	onMatch func(winner, loser int)
}

type bracketTree struct {
	levels [][]int  // levels[0] = entrants; -1 marks an unknown slot
	issued [][]bool // issued[l][t]: match t of level l handed to the driver
}

func newBracketPlan(r *compare.Runner, entrants [][]int, onMatch func(winner, loser int)) *bracketPlan {
	p := &bracketPlan{r: r, pending: make(map[int64][3]int), onMatch: onMatch}
	for _, es := range entrants {
		if len(es) == 0 {
			panic("topk: tournament over an empty entrant list")
		}
		t := &bracketTree{}
		lvl := append([]int(nil), es...)
		for {
			t.levels = append(t.levels, lvl)
			n := len(lvl)
			if n == 1 {
				break
			}
			t.issued = append(t.issued, make([]bool, n/2))
			up := make([]int, n/2+n%2)
			for i := range up {
				up[i] = -1
			}
			lvl = up
		}
		p.trees = append(p.trees, t)
	}
	// Seed the bye cascade: an odd level's last entrant advances for free.
	for _, t := range p.trees {
		for l := 0; l+1 < len(t.levels); l++ {
			if n := len(t.levels[l]); n%2 == 1 {
				t.levels[l+1][n/2] = t.levels[l][n-1]
			}
		}
	}
	return p
}

// winner returns the champion of tree ti; only valid after the drive.
func (p *bracketPlan) winner(ti int) int {
	t := p.trees[ti]
	return t.levels[len(t.levels)-1][0]
}

func (p *bracketPlan) ready() []match {
	var ms []match
	for ti, t := range p.trees {
		for l, iss := range t.issued {
			lvl := t.levels[l]
			for mt := range iss {
				if iss[mt] || lvl[2*mt] < 0 || lvl[2*mt+1] < 0 {
					continue
				}
				iss[mt] = true
				id := p.nextID
				p.nextID++
				p.pending[id] = [3]int{ti, l, mt}
				ms = append(ms, match{id: id, i: lvl[2*mt], j: lvl[2*mt+1]})
			}
		}
	}
	return ms
}

func (p *bracketPlan) decide(id int64, o compare.Outcome) {
	at := p.pending[id]
	delete(p.pending, id)
	t := p.trees[at[0]]
	lvl := t.levels[at[1]]
	a, b := lvl[2*at[2]], lvl[2*at[2]+1]
	w, loser := a, b
	if resolve(p.r, a, b, o) != compare.FirstWins {
		w, loser = b, a
	}
	if p.onMatch != nil {
		p.onMatch(w, loser)
	}
	t.fill(at[1]+1, at[2], w)
}

// fill writes a decided slot, cascading the level's bye when the slot
// completes an odd level.
func (t *bracketTree) fill(level, slot, v int) {
	t.levels[level][slot] = v
	// Byes beyond level 0 cascade as soon as the carried slot fills.
	if n := len(t.levels[level]); level+1 < len(t.levels) && n%2 == 1 && slot == n-1 {
		t.fill(level+1, n/2, v)
	}
}

// oddEvenPlan is odd-even transposition sort (parallel bubble sort) over
// items, in place: the disjoint adjacent pairs of one parity form one
// bank of matches; the opposite parity becomes ready only once the bank
// drains (its pairs depend on the swaps), so the parity barrier is
// inherent in the data dependencies, not imposed by the driver. A pass
// cap guards against livelock when noisy, budget-exhausted judgments are
// intransitive; the sort is stable under indistinguishable ties.
type oddEvenPlan struct {
	r           *compare.Runner
	items       []int
	pass        int
	parity      int // 0, 1; 2 = end of pass
	swapped     bool
	outstanding int
	pos         map[int64]int // match id -> left index of its pair
	nextID      int64
	finished    bool
}

func newOddEvenPlan(r *compare.Runner, items []int) *oddEvenPlan {
	return &oddEvenPlan{r: r, items: items, pos: make(map[int64]int)}
}

func (p *oddEvenPlan) ready() []match {
	if p.outstanding > 0 || p.finished {
		return nil
	}
	for {
		if p.parity == 2 {
			// A consistent comparator finishes within n double-passes.
			if !p.swapped || p.pass >= len(p.items) {
				p.finished = true
				return nil
			}
			p.pass++
			p.parity = 0
			p.swapped = false
		}
		var ms []match
		for i := p.parity; i+1 < len(p.items); i += 2 {
			id := p.nextID
			p.nextID++
			p.pos[id] = i
			ms = append(ms, match{id: id, i: p.items[i], j: p.items[i+1]})
		}
		p.parity++
		if len(ms) > 0 {
			p.outstanding = len(ms)
			return ms
		}
	}
}

func (p *oddEvenPlan) decide(id int64, o compare.Outcome) {
	i := p.pos[id]
	delete(p.pos, id)
	p.outstanding--
	a, b := p.items[i], p.items[i+1]
	if o == compare.Tie && a != b {
		o = p.r.Leaning(a, b) // keep the current order if still tied
	}
	if o == compare.SecondWins {
		p.items[i], p.items[i+1] = b, a
		p.swapped = true
	}
}

// mergePlan is a crowd-backed merge sort over the items: a static binary
// merge tree whose leaves are the items in input order. Each merger
// emits one comparison at a time (merging is inherently sequential), but
// all mergers with complete inputs run concurrently — including across
// levels, since a merger becomes ready the moment its two input runs
// finish, regardless of its cousins.
type mergePlan struct {
	r       *compare.Runner
	root    *mergeNode
	nodes   []*mergeNode // internal nodes, creation order (determinism)
	pending map[int64]*mergeNode
	nextID  int64
}

type mergeNode struct {
	left, right *mergeNode
	out         []int
	ai, bi      int // merge progress into left.out / right.out
	complete    bool
	inFlight    bool
}

func newMergePlan(r *compare.Runner, items []int) *mergePlan {
	p := &mergePlan{r: r, pending: make(map[int64]*mergeNode)}
	cur := make([]*mergeNode, len(items))
	for i, o := range items {
		cur[i] = &mergeNode{out: []int{o}, complete: true}
	}
	for len(cur) > 1 {
		var up []*mergeNode
		for i := 0; i+1 < len(cur); i += 2 {
			n := &mergeNode{left: cur[i], right: cur[i+1]}
			p.nodes = append(p.nodes, n)
			up = append(up, n)
		}
		if len(cur)%2 == 1 {
			up = append(up, cur[len(cur)-1]) // odd run carries up unchanged
		}
		cur = up
	}
	p.root = cur[0]
	return p
}

// sorted returns the fully merged order; only valid after the drive.
func (p *mergePlan) sorted() []int { return p.root.out }

func (p *mergePlan) ready() []match {
	var ms []match
	for _, n := range p.nodes {
		if n.complete || n.inFlight || !n.left.complete || !n.right.complete {
			continue
		}
		// Drain without comparisons once either side is exhausted.
		if n.ai == len(n.left.out) || n.bi == len(n.right.out) {
			n.out = append(n.out, n.left.out[n.ai:]...)
			n.out = append(n.out, n.right.out[n.bi:]...)
			n.complete = true
			continue
		}
		n.inFlight = true
		id := p.nextID
		p.nextID++
		p.pending[id] = n
		ms = append(ms, match{id: id, i: n.left.out[n.ai], j: n.right.out[n.bi]})
	}
	return ms
}

func (p *mergePlan) decide(id int64, o compare.Outcome) {
	n := p.pending[id]
	delete(p.pending, id)
	n.inFlight = false
	a, b := n.left.out[n.ai], n.right.out[n.bi]
	if resolve(p.r, a, b, o) == compare.FirstWins {
		n.out = append(n.out, a)
		n.ai++
	} else {
		n.out = append(n.out, b)
		n.bi++
	}
}
