package topk

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"crowdtopk/internal/compare"
	"crowdtopk/internal/crowd"
	"crowdtopk/internal/dataset"
)

// chaosPolicy retries aggressively but never sleeps on the wall clock, so
// chaos runs exercise the full resilience machinery at test speed.
func chaosPolicy(maxAttempts int, timeout time.Duration) crowd.RetryPolicy {
	return crowd.RetryPolicy{
		MaxAttempts:      maxAttempts,
		FailureThreshold: 1 << 30, // chaos tests study retries, not the breaker
		CollectTimeout:   timeout,
		Sleep:            func(time.Duration) {},
	}
}

// chaosStack builds the full platform path: synthetic dataset → simulated
// workers → seeded fault injection → resilience layer → validation →
// engine, with audit logging on.
func chaosStack(n int, seed int64, cfg crowd.FaultConfig, policy crowd.RetryPolicy, parallelism int) (*compare.Runner, dataset.Source, *crowd.FaultyPlatform) {
	src := dataset.NewSynthetic(n, 0.2, seed)
	fp := crowd.NewFaultyPlatform(crowd.NewSimPlatform(src, 4, seed+1), cfg)
	po := crowd.NewPlatformOracle(n, fp).WithResilience(policy)
	eng := crowd.NewEngine(po, rand.New(rand.NewSource(seed+2)))
	eng.EnableLog()
	r := compare.NewRunner(eng, compare.NewStudent(0.05), compare.Params{
		B: 200, I: 10, Step: 10, Parallelism: parallelism,
	})
	return r, src, fp
}

// checkChaosInvariants asserts what must hold under ANY fault schedule:
// the query returns exactly k items, never panics (implied by arriving
// here), and the monetary accounting is exact — TMC equals the audit-log
// length, i.e. every charged microtask is an accepted, logged answer even
// under drops, duplicates, timeouts, re-posts and permanent failure.
func checkChaosInvariants(t *testing.T, r *compare.Runner, res Result, k int) {
	t.Helper()
	if len(res.TopK) != k {
		t.Fatalf("returned %d items, want %d", len(res.TopK), k)
	}
	e := r.Engine()
	if e.TMC() != int64(len(e.Log())) {
		t.Fatalf("accounting drift: TMC %d != %d logged microtasks", e.TMC(), len(e.Log()))
	}
	if e.TMC() != e.PairwiseTasks()+e.GradedTasks() {
		t.Fatalf("TMC %d != pairwise %d + graded %d", e.TMC(), e.PairwiseTasks(), e.GradedTasks())
	}
}

func reportRecall(t *testing.T, name string, got []int, src dataset.Source, k int) int {
	t.Helper()
	hits := overlap(got, dataset.TopK(src, k))
	t.Logf("%s: recall@%d = %d/%d (TopK %v)", name, k, hits, k, got)
	return hits
}

func TestChaosDropHeavy(t *testing.T) {
	const n, k = 20, 5
	r, src, fp := chaosStack(n, 101, crowd.FaultConfig{Seed: 11, Drop: 0.25, Duplicate: 0.1},
		chaosPolicy(6, 0), 4)
	res := Run(NewSPR(), r, k)
	checkChaosInvariants(t, r, res, k)
	hits := reportRecall(t, "drop-heavy", res.TopK, src, k)
	if fp.Injected() == 0 {
		t.Error("fault schedule fired nothing; the test exercised no chaos")
	}
	if res.Err == nil && hits < k-1 {
		t.Errorf("healthy completion with recall %d/%d", hits, k)
	}
}

func TestChaosStragglerHeavy(t *testing.T) {
	const n, k = 12, 3
	r, src, _ := chaosStack(n, 103, crowd.FaultConfig{Seed: 13, Straggle: 0.2},
		chaosPolicy(6, 5*time.Millisecond), 4)
	res := Run(NewSPR(), r, k)
	checkChaosInvariants(t, r, res, k)
	hits := reportRecall(t, "straggler-heavy", res.TopK, src, k)
	if res.Err == nil && hits < k-1 {
		t.Errorf("healthy completion with recall %d/%d", hits, k)
	}
}

func TestChaosTransientErrorBursts(t *testing.T) {
	const n, k = 20, 5
	r, src, fp := chaosStack(n, 105, crowd.FaultConfig{Seed: 17, PostError: 0.2, CollectError: 0.2},
		chaosPolicy(6, 0), 4)
	res := Run(NewSPR(), r, k)
	checkChaosInvariants(t, r, res, k)
	hits := reportRecall(t, "transient-bursts", res.TopK, src, k)
	if fp.Injected() == 0 {
		t.Error("fault schedule fired nothing")
	}
	if res.Err == nil && hits < k-1 {
		t.Errorf("healthy completion with recall %d/%d", hits, k)
	}
}

func TestChaosEverythingAtOnce(t *testing.T) {
	// All fault classes firing together, across every algorithm: nothing
	// may panic and the accounting must stay exact.
	cfg := crowd.FaultConfig{
		Seed: 19, Drop: 0.15, Duplicate: 0.1, Flip: 0.2, Mispair: 0.05,
		Malformed: 0.05, PostError: 0.1, CollectError: 0.1,
	}
	for _, alg := range allAlgorithms() {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			const n, k = 12, 3
			r, src, _ := chaosStack(n, 107, cfg, chaosPolicy(6, 0), 4)
			res := Run(alg, r, k)
			checkChaosInvariants(t, r, res, k)
			reportRecall(t, alg.Name(), res.TopK, src, k)
		})
	}
}

func TestChaosPermanentFailureMidQuery(t *testing.T) {
	// The market goes down for good mid-query: SPR must still return k
	// items (best effort from the evidence bought before the cliff),
	// report the failure through Result.Err, and keep the spend exact.
	const n, k = 20, 5
	r, src, fp := chaosStack(n, 109, crowd.FaultConfig{Seed: 23, FailAfterPosts: 25},
		chaosPolicy(3, 0), 4)
	res := Run(NewSPR(), r, k)
	checkChaosInvariants(t, r, res, k)
	if res.Err == nil {
		t.Fatal("permanent platform failure not reported through Result.Err")
	}
	if r.Err() == nil {
		t.Fatal("runner does not expose the degradation")
	}
	if fp.Posts() != 25 {
		t.Errorf("platform saw %d posts, want the cliff at 25", fp.Posts())
	}
	if res.TMC == 0 {
		t.Error("no evidence purchased before the cliff; FailAfterPosts too low for this test")
	}
	reportRecall(t, "permanent-failure", res.TopK, src, k)
}

func TestChaosAuditLogByteIdentical(t *testing.T) {
	// Same fault schedule, same seeds, sequential execution: two runs must
	// produce byte-identical audit logs — the property that makes chaos
	// failures replayable.
	runLog := func() []byte {
		r, _, _ := chaosStack(16, 111, crowd.FaultConfig{
			Seed: 29, Drop: 0.2, Duplicate: 0.1, Flip: 0.2, Malformed: 0.1,
		}, chaosPolicy(6, 0), 1)
		res := Run(NewSPR(), r, 4)
		checkChaosInvariants(t, r, res, 4)
		var buf bytes.Buffer
		if err := r.Engine().WriteLog(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := runLog(), runLog()
	if !bytes.Equal(a, b) {
		t.Errorf("audit logs differ across identical chaos runs (%d vs %d bytes)", len(a), len(b))
	}
}

func TestChaosCheckpointResume(t *testing.T) {
	// Crash-resume drill: record a healthy run's audit log, then re-drive
	// the same query through ReplayThenLive — the resumed run must buy
	// nothing and return the same answer.
	const n, k = 16, 4
	src := dataset.NewSynthetic(n, 0.2, 113)
	eng := crowd.NewEngine(src, rand.New(rand.NewSource(7)))
	eng.EnableLog()
	r := compare.NewRunner(eng, compare.NewStudent(0.05), compare.Params{B: 200, I: 10, Step: 10, Parallelism: 1})
	first := Run(NewSPR(), r, k)

	rl := crowd.NewReplayThenLive(eng.Log(), src)
	eng2 := crowd.NewEngine(rl, rand.New(rand.NewSource(7)))
	r2 := compare.NewRunner(eng2, compare.NewStudent(0.05), compare.Params{B: 200, I: 10, Step: 10, Parallelism: 1})
	second := Run(NewSPR(), r2, k)

	if rl.LiveTasks() != 0 {
		t.Errorf("resume bought %d live microtasks, want 0 — the log covers the whole query", rl.LiveTasks())
	}
	if len(first.TopK) != len(second.TopK) {
		t.Fatalf("resume changed the answer size: %v vs %v", second.TopK, first.TopK)
	}
	for i := range first.TopK {
		if first.TopK[i] != second.TopK[i] {
			t.Fatalf("resume changed the answer: %v vs %v", second.TopK, first.TopK)
		}
	}
}

// FuzzFaultSchedule drives a small query through randomized fault
// schedules: whatever the platform throws at it, the query must return
// exactly k items without panicking and with exact spend accounting.
func FuzzFaultSchedule(f *testing.F) {
	f.Add(int64(1), uint8(50), uint8(20), uint8(40), uint8(10), uint8(10), uint8(30), uint8(30), uint8(0))
	f.Add(int64(2), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(12))
	f.Add(int64(3), uint8(255), uint8(255), uint8(255), uint8(255), uint8(255), uint8(255), uint8(255), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, drop, dup, flip, mispair, malformed, postE, collectE, failAfter uint8) {
		// Scale byte inputs to probabilities bounded away from 1 so runs
		// terminate quickly; FailAfterPosts 0 disables the cliff.
		p := func(b uint8) float64 { return float64(b) / 255 * 0.4 }
		cfg := crowd.FaultConfig{
			Seed: seed, Drop: p(drop), Duplicate: p(dup), Flip: p(flip),
			Mispair: p(mispair), Malformed: p(malformed),
			PostError: p(postE), CollectError: p(collectE),
			FailAfterPosts: int(failAfter % 40),
		}
		const n, k = 10, 3
		r, _, _ := chaosStack(n, 1000+seed, cfg, chaosPolicy(3, 0), 2)
		res := Run(NewSPR(), r, k)
		if len(res.TopK) != k {
			t.Fatalf("returned %d items, want %d", len(res.TopK), k)
		}
		e := r.Engine()
		if e.TMC() != int64(len(e.Log())) {
			t.Fatalf("accounting drift: TMC %d != %d logged microtasks", e.TMC(), len(e.Log()))
		}
	})
}
