// Package topk implements the crowdsourced top-k query processors of Kou
// et al. (SIGMOD 2017): the paper's Select-Partition-Rank framework (SPR,
// §5) and the confidence-aware baselines it is evaluated against —
// tournament tree (§4.1), heap sort (§4.2), quick selection (§4.3) and the
// preference-based racing algorithm PBR of Busa-Fekete et al. (§6.2). The
// package also provides the infimum-cost calculator of Lemmas 1 and 3
// (§4.4), the theoretical floor every algorithm is compared to.
//
// All algorithms speak to the crowd exclusively through a compare.Runner,
// so they share the same confidence-aware comparison processes, monetary
// accounting, latency clock, and judgment reuse. Latency follows the
// paper's batch model (§5.5): independent comparisons advance together in
// waves, one engine tick per wave.
package topk
