package topk

import (
	"sync"
	"sync/atomic"
	"time"

	"crowdtopk/internal/compare"
	"crowdtopk/internal/crowd"
)

// compareAll drives the comparison processes of all given pairs to
// completion in parallel batch waves: every still-undecided pair advances
// by one batch per wave, and each wave costs one latency round (§5.5).
// It returns the outcome of every pair, oriented toward the pair's first
// item. Pairs already concluded complete immediately at zero cost, and
// duplicate pairs (in either orientation) are advanced only once per wave.
//
// Waves execute on a bounded worker pool sized by the runner's
// Parallelism: each distinct undecided pair is advanced by exactly one
// worker per wave, and the wave barrier plus the engine's per-pair sample
// streams make the result byte-identical to the sequential execution
// (Parallelism = 1) for a fixed seed. The latency accounting is untouched:
// one Tick per wave, issued by the control goroutine at the barrier.
func compareAll(r *compare.Runner, pairs [][2]int) []compare.Outcome {
	out := make([]compare.Outcome, len(pairs))

	// Group indices by canonical pair so each distinct pair advances once.
	type group struct {
		i, j    int
		indices []int
	}
	byKey := make(map[[2]int]*group, len(pairs))
	var pending []*group
	for idx, p := range pairs {
		key := [2]int{p[0], p[1]}
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		g, ok := byKey[key]
		if !ok {
			g = &group{i: key[0], j: key[1]}
			byKey[key] = g
			pending = append(pending, g)
		}
		g.indices = append(g.indices, idx)
	}

	assign := func(g *group, o compare.Outcome) {
		for _, idx := range g.indices {
			if pairs[idx][0] == g.i {
				out[idx] = o
			} else {
				out[idx] = o.Flip()
			}
		}
	}

	// Skip identical-item pairs (a tie by definition — they arise when
	// sampling with replacement yields the same max twice) and pairs that
	// concluded in an earlier phase.
	live := pending[:0]
	for _, g := range pending {
		if g.i == g.j {
			assign(g, compare.Tie)
			continue
		}
		if o, ok := r.Concluded(g.i, g.j); ok {
			assign(g, o)
		} else {
			live = append(live, g)
		}
	}
	pending = live

	workers := r.Parallelism()
	ins := r.Instruments()
	outs := make([]compare.Outcome, len(pending))
	dones := make([]bool, len(pending))
	for len(pending) > 0 {
		outs, dones = outs[:len(pending)], dones[:len(pending)]
		var waveStart time.Time
		if ins != nil {
			ins.Waves.Inc()
			ins.WaveWidth.Observe(int64(len(pending)))
			ins.WaveWidthMax.SetMax(int64(len(pending)))
			waveStart = time.Now()
		}
		if workers > 1 && len(pending) > 1 {
			// Fan the wave's distinct pairs across the pool; the WaitGroup
			// is the wave barrier of §5.5.
			w := workers
			if w > len(pending) {
				w = len(pending)
			}
			var next atomic.Int64
			var wg sync.WaitGroup
			for t := 0; t < w; t++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						gi := int(next.Add(1)) - 1
						if gi >= len(pending) {
							return
						}
						if ins != nil {
							// Time from wave start to worker pickup: how
							// long the pair sat queued for a pool slot.
							ins.QueueWaitNs.Add(time.Since(waveStart).Nanoseconds())
						}
						g := pending[gi]
						outs[gi], dones[gi] = r.Advance(g.i, g.j)
					}
				}()
			}
			wg.Wait()
		} else {
			for gi, g := range pending {
				outs[gi], dones[gi] = r.Advance(g.i, g.j)
			}
		}
		if ins != nil {
			ins.WaveNs.Add(time.Since(waveStart).Nanoseconds())
		}
		// Conclusions are applied in input order on the control goroutine,
		// keeping the caller's view deterministic.
		nextPending := pending[:0]
		for gi, g := range pending {
			if dones[gi] {
				assign(g, outs[gi])
			} else {
				nextPending = append(nextPending, g)
			}
		}
		r.Engine().Tick(1)
		pending = nextPending
	}
	return out
}

// drawResult is one answer of a drawAll wave.
type drawResult struct {
	v  float64
	ok bool
}

// drawAll purchases one preference microtask per request — the wave shape
// of racing algorithms (PBR) — on a bounded worker pool. Requests are
// grouped by canonical pair: groups run concurrently, requests within a
// group run sequentially in input order, so every request receives exactly
// the sample it would have received under sequential execution (the
// engine's per-pair streams make the group order irrelevant). ok is false
// for requests truncated by a spending cap. drawAll does not Tick; callers
// account latency at their wave boundaries.
func drawAll(e *crowd.Engine, reqs [][2]int, workers int) []drawResult {
	res := make([]drawResult, len(reqs))
	if len(reqs) == 0 {
		return res
	}
	if workers <= 1 || len(reqs) == 1 {
		for idx, q := range reqs {
			v, ok := e.DrawOne(q[0], q[1])
			res[idx] = drawResult{v, ok}
		}
		return res
	}

	byKey := make(map[[2]int]int, len(reqs)) // canonical pair -> groups index
	var groups [][]int
	for idx, q := range reqs {
		key := [2]int{q[0], q[1]}
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		gi, ok := byKey[key]
		if !ok {
			gi = len(groups)
			byKey[key] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], idx)
	}

	if workers > len(groups) {
		workers = len(groups)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for t := 0; t < workers; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				gi := int(next.Add(1)) - 1
				if gi >= len(groups) {
					return
				}
				for _, idx := range groups[gi] {
					q := reqs[idx]
					v, ok := e.DrawOne(q[0], q[1])
					res[idx] = drawResult{v, ok}
				}
			}
		}()
	}
	wg.Wait()
	return res
}

// resolve turns a possibly tied outcome for (i, j) into a usable direction:
// confidence-level conclusions win; otherwise the sample-mean leaning; and
// as a final tie-break the first item. It never returns Tie.
func resolve(r *compare.Runner, i, j int, o compare.Outcome) compare.Outcome {
	if o != compare.Tie {
		return o
	}
	if i != j {
		if l := r.Leaning(i, j); l != compare.Tie {
			return l
		}
	}
	return compare.FirstWins
}

// better reports whether item i beats item j, running the full comparison
// process if needed and breaking budget-exhausted ties by leaning.
func better(r *compare.Runner, i, j int) bool {
	return resolve(r, i, j, r.Compare(i, j)) == compare.FirstWins
}
