package topk

import (
	"crowdtopk/internal/compare"
	"crowdtopk/internal/sched"
)

// compareAll drives the comparison processes of all given pairs to
// completion on the shared scheduler and returns the outcome of every
// pair, oriented toward the pair's first item. Pairs already concluded
// complete immediately at zero cost, duplicate pairs (in either
// orientation) share one comparison process, and identical-item pairs
// are ties by definition.
//
// It is a thin compatibility shim over the plan driver: the batch is a
// flatPlan, so in deterministic mode every still-undecided pair advances
// by one batch per lockstep wave — one latency round per wave (§5.5),
// byte-identical to sequential execution for a fixed seed — while in
// async mode each pair free-runs and frees its pool slot the moment it
// concludes.
func compareAll(r *compare.Runner, pairs [][2]int) []compare.Outcome {
	p := newFlatPlan(pairs)
	drive(r, p)
	return p.out
}

// drawResult is one answer of a drawAll batch.
type drawResult struct {
	v  float64
	ok bool
}

// drawAll purchases one preference microtask per request — the wave
// shape of racing algorithms (PBR) — through the runner's scheduler.
// Requests are grouped by canonical pair: groups run concurrently as one
// scheduler task each, requests within a group run sequentially in input
// order, so every request receives exactly the sample it would have
// received under sequential execution (the engine's per-pair streams
// make the group order irrelevant). ok is false for requests truncated
// by a spending cap. drawAll does not Tick; callers account latency at
// their wave boundaries.
func drawAll(r *compare.Runner, reqs [][2]int) []drawResult {
	res := make([]drawResult, len(reqs))
	if len(reqs) == 0 {
		return res
	}
	q, release := r.Borrow()
	defer release()

	byKey := make(map[[2]int]int, len(reqs)) // canonical pair -> groups index
	var groups [][]int
	for idx, pr := range reqs {
		key := [2]int{pr[0], pr[1]}
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		gi, ok := byKey[key]
		if !ok {
			gi = len(groups)
			byKey[key] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], idx)
	}
	for gi := range groups {
		idxs := groups[gi]
		q.Submit(sched.Task{Tag: int64(gi), Run: func() {
			for _, idx := range idxs {
				pr := reqs[idx]
				v, ok := r.DrawOne(pr[0], pr[1])
				res[idx] = drawResult{v, ok}
			}
		}})
	}
	q.Drain(len(groups))
	return res
}

// resolve turns a possibly tied outcome for (i, j) into a usable direction:
// confidence-level conclusions win; otherwise the sample-mean leaning; and
// as a final tie-break the first item. It never returns Tie.
func resolve(r *compare.Runner, i, j int, o compare.Outcome) compare.Outcome {
	if o != compare.Tie {
		return o
	}
	if i != j {
		if l := r.Leaning(i, j); l != compare.Tie {
			return l
		}
	}
	return compare.FirstWins
}

// better reports whether item i beats item j, running the full comparison
// process if needed and breaking budget-exhausted ties by leaning.
func better(r *compare.Runner, i, j int) bool {
	return resolve(r, i, j, r.Compare(i, j)) == compare.FirstWins
}
