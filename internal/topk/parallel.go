package topk

import "crowdtopk/internal/compare"

// compareAll drives the comparison processes of all given pairs to
// completion in parallel batch waves: every still-undecided pair advances
// by one batch per wave, and each wave costs one latency round (§5.5).
// It returns the outcome of every pair, oriented toward the pair's first
// item. Pairs already concluded complete immediately at zero cost, and
// duplicate pairs (in either orientation) are advanced only once per wave.
func compareAll(r *compare.Runner, pairs [][2]int) []compare.Outcome {
	out := make([]compare.Outcome, len(pairs))

	// Group indices by canonical pair so each distinct pair advances once.
	type group struct {
		i, j    int
		indices []int
	}
	byKey := make(map[[2]int]*group, len(pairs))
	var pending []*group
	for idx, p := range pairs {
		key := [2]int{p[0], p[1]}
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		g, ok := byKey[key]
		if !ok {
			g = &group{i: key[0], j: key[1]}
			byKey[key] = g
			pending = append(pending, g)
		}
		g.indices = append(g.indices, idx)
	}

	assign := func(g *group, o compare.Outcome) {
		for _, idx := range g.indices {
			if pairs[idx][0] == g.i {
				out[idx] = o
			} else {
				out[idx] = o.Flip()
			}
		}
	}

	// Skip identical-item pairs (a tie by definition — they arise when
	// sampling with replacement yields the same max twice) and pairs that
	// concluded in an earlier phase.
	live := pending[:0]
	for _, g := range pending {
		if g.i == g.j {
			assign(g, compare.Tie)
			continue
		}
		if o, ok := r.Concluded(g.i, g.j); ok {
			assign(g, o)
		} else {
			live = append(live, g)
		}
	}
	pending = live

	for len(pending) > 0 {
		next := pending[:0]
		for _, g := range pending {
			o, done := r.Advance(g.i, g.j)
			if done {
				assign(g, o)
			} else {
				next = append(next, g)
			}
		}
		r.Engine().Tick(1)
		pending = next
	}
	return out
}

// resolve turns a possibly tied outcome for (i, j) into a usable direction:
// confidence-level conclusions win; otherwise the sample-mean leaning; and
// as a final tie-break the first item. It never returns Tie.
func resolve(r *compare.Runner, i, j int, o compare.Outcome) compare.Outcome {
	if o != compare.Tie {
		return o
	}
	if i != j {
		if l := r.Leaning(i, j); l != compare.Tie {
			return l
		}
	}
	return compare.FirstWins
}

// better reports whether item i beats item j, running the full comparison
// process if needed and breaking budget-exhausted ties by leaning.
func better(r *compare.Runner, i, j int) bool {
	return resolve(r, i, j, r.Compare(i, j)) == compare.FirstWins
}
