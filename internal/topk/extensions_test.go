package topk

import (
	"math"
	"math/rand"
	"testing"

	"crowdtopk/internal/compare"
	"crowdtopk/internal/crowd"
	"crowdtopk/internal/dataset"
	"crowdtopk/internal/metrics"
)

func TestPriorReferenceSkipsSamplingCost(t *testing.T) {
	const n, k = 120, 10
	src := dataset.NewSynthetic(n, 0.3, 900)
	prior := make([]float64, n)
	for i := 0; i < n; i++ {
		prior[i] = -float64(src.TrueRank(i)) // perfect prior
	}

	run := func(s *SPR, seed int64) Result {
		eng := crowd.NewEngine(src, rand.New(rand.NewSource(seed)))
		r := compare.NewRunner(eng, compare.NewStudent(0.02), compare.Params{B: 500, I: 30, Step: 30})
		return Run(s, r, k)
	}
	// The saving (the skipped selection sampling) is small relative to the
	// run-to-run TMC noise, so compare totals over several seeds rather
	// than a single lucky one.
	var vanilla, informed int64
	for seed := int64(901); seed <= 905; seed++ {
		vanilla += run(NewSPR(), seed).TMC
		inf := run(&SPR{C: 1.5, MaxRefChanges: 2, PriorScores: prior}, seed)
		informed += inf.TMC
		if p := metrics.PrecisionAtK(inf.TopK, src.TrueRank); p < 0.7 {
			t.Errorf("seed %d: prior-informed precision %v too low", seed, p)
		}
	}
	if informed >= vanilla {
		t.Errorf("prior-informed total TMC %d not below vanilla %d", informed, vanilla)
	}
}

func TestPriorReferenceTargetsSweetSpot(t *testing.T) {
	prior := []float64{10, 9, 8, 7, 6, 5, 4, 3, 2, 1} // item i has prior rank i
	// k=2, c=1.5 → sweet spot ranks [1, 2], middle index (1+2)/2 = 1.
	if got := priorReference(prior, allItems(10), 2, 1.5); got != 1 {
		t.Errorf("reference = %d, want 1", got)
	}
	// Subset remaps: the same call over items {5..9} picks by prior order
	// within the subset.
	if got := priorReference(prior, []int{9, 7, 5, 8, 6}, 2, 1.5); got != 6 {
		t.Errorf("subset reference = %d, want 6", got)
	}
	// Degenerate small subsets stay in range.
	if got := priorReference(prior, []int{4}, 10, 2.0); got != 4 {
		t.Errorf("single-item reference = %d", got)
	}
}

func TestNoisyPriorStillHelps(t *testing.T) {
	// Priors only steer reference selection; even badly noisy priors must
	// not break correctness (the partition still verifies with the crowd).
	const n, k = 80, 8
	src := dataset.NewSynthetic(n, 0.25, 902)
	rng := rand.New(rand.NewSource(903))
	prior := make([]float64, n)
	for i := 0; i < n; i++ {
		// Rank noise of ~n/8: the prior is mediocre but monotone-ish. (A
		// totally wrong prior can park the reference far above o_k*,
		// where Algorithm 2's random tie-filling legitimately degrades —
		// the trade-off §7 hints at.)
		prior[i] = -float64(src.TrueRank(i)) + rng.NormFloat64()*float64(n)/8
	}
	eng := crowd.NewEngine(src, rand.New(rand.NewSource(904)))
	r := compare.NewRunner(eng, compare.NewStudent(0.05), compare.Params{B: 500, I: 30, Step: 30})
	res := Run(&SPR{C: 1.5, MaxRefChanges: 2, PriorScores: prior}, r, k)
	if p := metrics.PrecisionAtK(res.TopK, src.TrueRank); p < 0.6 {
		t.Errorf("noisy-prior precision %v too low", p)
	}
}

func TestSelectionBudgetAblation(t *testing.T) {
	// The DESIGN.md decision: uncapped selection comparisons (the naive
	// Algorithm 3 reading) must cost visibly more than the capped default
	// on a dataset with near-tied top items.
	src := dataset.NewIMDb(905)
	run := func(selBudget int) int64 {
		eng := crowd.NewEngine(src, rand.New(rand.NewSource(906)))
		r := compare.NewRunner(eng, compare.NewStudent(0.02), compare.Params{B: 1000, I: 30, Step: 30})
		return Run(&SPR{C: 1.5, MaxRefChanges: 2, SelectionBudget: selBudget}, r, 10).TMC
	}
	capped := run(0)    // default 2I
	uncapped := run(-1) // full B
	if uncapped <= capped {
		t.Errorf("uncapped selection TMC %d not above capped %d", uncapped, capped)
	}
}

func TestIntervalGroupsOrderAndSeparation(t *testing.T) {
	const n = 30
	src := dataset.NewSynthetic(n, 0.2, 907)
	eng := crowd.NewEngine(src, rand.New(rand.NewSource(908)))
	r := compare.NewRunner(eng, compare.NewStudent(0.05), compare.Params{B: 2000, I: 30, Step: 30})

	order := dataset.Order(src)
	ref := order[n/2]
	items := append([]int(nil), order[:8]...)
	items = append(items, order[n-4:]...)
	for _, o := range items {
		r.Compare(o, ref) // buy the evidence the intervals will use
	}

	groups := IntervalGroups(eng, items, ref, 0.05)

	// Every item appears exactly once.
	seen := map[int]bool{}
	total := 0
	for _, g := range groups {
		for _, o := range g {
			if seen[o] {
				t.Fatalf("item %d in two groups", o)
			}
			seen[o] = true
			total++
		}
	}
	if total != len(items) {
		t.Fatalf("groups cover %d items, want %d", total, len(items))
	}

	// Tiers separate: the worst items (far below the reference) cannot
	// share a tier with the best items (far above it).
	tierOf := map[int]int{}
	for ti, g := range groups {
		for _, o := range g {
			tierOf[o] = ti
		}
	}
	if tierOf[order[0]] >= tierOf[order[n-1]] {
		t.Errorf("best item tier %d not before worst item tier %d",
			tierOf[order[0]], tierOf[order[n-1]])
	}

	// Mean monotonicity across tiers.
	prevWorst := math.Inf(1)
	for _, g := range groups {
		for _, o := range g {
			m := 0.0
			if o != ref {
				m = eng.View(o, ref).Mean
			}
			if m > prevWorst+1e-9 {
				t.Fatalf("tier means not monotone at item %d", o)
			}
		}
		// prevWorst = min mean in this tier.
		for _, o := range g {
			m := 0.0
			if o != ref {
				m = eng.View(o, ref).Mean
			}
			if m < prevWorst {
				prevWorst = m
			}
		}
	}
}

func TestIntervalGroupsUnsampledItemsMergeEverything(t *testing.T) {
	src := dataset.NewSynthetic(10, 0.2, 909)
	eng := crowd.NewEngine(src, rand.New(rand.NewSource(910)))
	// No purchases at all: every interval is unbounded, one giant tier.
	groups := IntervalGroups(eng, allItems(10), 0, 0.05)
	if len(groups) != 1 || len(groups[0]) != 10 {
		t.Errorf("expected a single 10-item tier, got %v", groups)
	}
}

func TestIntervalGroupsIncludesReferencePoint(t *testing.T) {
	src := dataset.NewSynthetic(12, 0.1, 911)
	eng := crowd.NewEngine(src, rand.New(rand.NewSource(912)))
	r := compare.NewRunner(eng, compare.NewStudent(0.05), compare.Params{B: 2000, I: 30, Step: 30})
	order := dataset.Order(src)
	ref := order[5]
	for _, o := range order {
		if o != ref {
			r.Compare(o, ref)
		}
	}
	groups := IntervalGroups(eng, order, ref, 0.05)
	found := false
	for _, g := range groups {
		for _, o := range g {
			if o == ref {
				found = true
			}
		}
	}
	if !found {
		t.Error("reference missing from groups")
	}
	if len(groups) < 2 {
		t.Errorf("well-separated data yielded %d tier(s)", len(groups))
	}
}

func TestIntervalGroupsPanicsOnBadAlpha(t *testing.T) {
	src := dataset.NewSynthetic(5, 0.2, 913)
	eng := crowd.NewEngine(src, rand.New(rand.NewSource(914)))
	for _, a := range []float64{0, 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha=%v accepted", a)
				}
			}()
			IntervalGroups(eng, allItems(5), 0, a)
		}()
	}
	if got := IntervalGroups(eng, nil, 0, 0.05); got != nil {
		t.Errorf("empty items returned %v", got)
	}
}
