package topk

import (
	"math/rand"
	"testing"
	"time"

	"crowdtopk/internal/compare"
	"crowdtopk/internal/crowd"
)

// slowOracle models a crowd platform with a fixed round-trip latency per
// batch exchange: posting a batch of microtasks and collecting the answers
// blocks the calling worker, exactly like a real platform integration. The
// wall-clock win of the comparison-wave worker pool comes from overlapping
// those waits, so it shows even on a single-CPU machine.
type slowOracle struct {
	n     int
	delay time.Duration
}

func (o slowOracle) NumItems() int { return o.n }

func (o slowOracle) sample(rng *rand.Rand, i, j int) float64 {
	v := float64(j-i)/float64(o.n) + rng.NormFloat64()*0.3
	if v > 1 {
		return 1
	}
	if v < -1 {
		return -1
	}
	return v
}

func (o slowOracle) Preference(rng *rand.Rand, i, j int) float64 {
	time.Sleep(o.delay)
	return o.sample(rng, i, j)
}

// Preferences implements crowd.BatchOracle: one round trip per batch.
func (o slowOracle) Preferences(rng *rand.Rand, i, j int, dst []float64) {
	time.Sleep(o.delay)
	for t := range dst {
		dst[t] = o.sample(rng, i, j)
	}
}

// benchCompareAll measures one full compareAll batch — 200 pairs of a
// 60-item instance racing to conclusion in waves — at the given pool bound.
func benchCompareAll(b *testing.B, parallelism int) {
	b.Helper()
	const n = 60
	var pairs [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < i+5 && j < n; j++ {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	for it := 0; it < b.N; it++ {
		eng := crowd.NewEngine(slowOracle{n: n, delay: 200 * time.Microsecond},
			rand.New(rand.NewSource(int64(it+1))))
		r := compare.NewRunner(eng, compare.NewStudent(0.05),
			compare.Params{B: 300, I: 30, Step: 30, Parallelism: parallelism})
		compareAll(r, pairs)
	}
}

// BenchmarkCompareAllParallel contrasts sequential waves with worker pools
// of 4 and 16. The pool bound is deliberately explicit rather than
// GOMAXPROCS: workers spend their time blocked on the platform round trip,
// so the pool pays off beyond the CPU count (and on single-CPU machines).
func BenchmarkCompareAllParallel(b *testing.B) {
	b.Run("sequential", func(b *testing.B) { benchCompareAll(b, 1) })
	b.Run("pool4", func(b *testing.B) { benchCompareAll(b, 4) })
	b.Run("pool16", func(b *testing.B) { benchCompareAll(b, 16) })
}
