package topk

import (
	"fmt"
	"math"

	"crowdtopk/internal/dataset"
	"crowdtopk/internal/stats"
)

// InfimumParams configures the infimum-cost calculator of §4.4.
type InfimumParams struct {
	// Alpha is the comparison significance level (1−confidence).
	Alpha float64
	// B and I are the per-pair budget and minimum workload, bounding every
	// expected workload to [I, B]. B <= 0 means unlimited.
	B, I int
	// Eta is the batch size used for the latency floor.
	Eta int
}

// ExpectedWorkload returns W(o_i, o_j): the expected number of preference
// microtasks the Student-t comparison process needs to separate the pair at
// confidence 1−α, clamped to the execution bounds [I, B]. It is computed
// from the pair's true judgment moments, so it is only available to the
// evaluator, never to the algorithms (§4.4: W(o_i,o_j) ∝ 1/|s(o_i)−s(o_j)|).
func ExpectedWorkload(src dataset.Source, i, j int, p InfimumParams) float64 {
	mu, sigma := src.PairMoments(i, j)
	w := stats.PreferenceSamplesNeeded(mu, sigma, p.Alpha)
	if w < float64(p.I) {
		w = float64(p.I)
	}
	if p.B > 0 && w > float64(p.B) {
		w = float64(p.B)
	}
	return w
}

// InfimumCost computes TMC_inf of Lemma 1: the minimum possible monetary
// cost of a top-k query — comparing each adjacent pair of the top-k
// (confirming o_1* ≻ ... ≻ o_k*) plus comparing every non-result item
// directly with o_k*.
func InfimumCost(src dataset.Source, k int, p InfimumParams) float64 {
	return InfimumCostWithReference(src, k, k-1, p)
}

// InfimumCostWithReference computes TMC_inf(o_ℓ*) of Lemma 3: the infimum
// cost when partitioning uses the rank-ℓ item (0-based: ell) as reference.
// ell = k−1 reproduces Lemma 1, and the value is monotonically increasing
// in ell (Lemma 4).
func InfimumCostWithReference(src dataset.Source, k int, ell int, p InfimumParams) float64 {
	n := src.NumItems()
	if k < 1 || k > n {
		panic(fmt.Sprintf("topk: infimum k=%d out of range [1,%d]", k, n))
	}
	if ell < k-1 || ell >= n {
		panic(fmt.Sprintf("topk: infimum reference rank %d out of range [%d,%d)", ell, k-1, n))
	}
	order := dataset.Order(src)

	total := 0.0
	// (i) confirm o_1* ≻ o_2* ≻ ... ≻ o_k*.
	for j := 0; j+1 < k; j++ {
		total += ExpectedWorkload(src, order[j], order[j+1], p)
	}
	// (ii) o_k* ≻ o_j* for k < j ≤ ℓ (0-based: ranks k..ell).
	for j := k; j <= ell; j++ {
		total += ExpectedWorkload(src, order[j], order[k-1], p)
	}
	// (iii) o_ℓ* ≻ o_j* for j > ℓ.
	for j := ell + 1; j < n; j++ {
		total += ExpectedWorkload(src, order[j], order[ell], p)
	}
	return total
}

// InfimumRounds estimates the latency floor corresponding to Lemma 1 under
// the batch model of §5.5: all pruning comparisons against o_k* run in
// parallel (rounds = the largest per-pair batch count), and the already
// sorted top-k needs one more parallel wave of adjacent confirmations.
func InfimumRounds(src dataset.Source, k int, p InfimumParams) float64 {
	if p.Eta < 1 {
		panic(fmt.Sprintf("topk: infimum requires Eta >= 1, got %d", p.Eta))
	}
	n := src.NumItems()
	if k < 1 || k > n {
		panic(fmt.Sprintf("topk: infimum k=%d out of range [1,%d]", k, n))
	}
	order := dataset.Order(src)

	batches := func(w float64) float64 { return math.Ceil(w / float64(p.Eta)) }

	prune := 0.0
	for j := k; j < n; j++ {
		if b := batches(ExpectedWorkload(src, order[j], order[k-1], p)); b > prune {
			prune = b
		}
	}
	confirm := 0.0
	for j := 0; j+1 < k; j++ {
		if b := batches(ExpectedWorkload(src, order[j], order[j+1], p)); b > confirm {
			confirm = b
		}
	}
	return prune + confirm
}

// Infimum packages the Lemma 1 floor for reporting alongside measured
// algorithm results.
func Infimum(src dataset.Source, k int, p InfimumParams) Result {
	return Result{
		Algorithm: "infimum",
		TopK:      dataset.TopK(src, k),
		TMC:       int64(math.Round(InfimumCost(src, k, p))),
		Rounds:    int64(math.Round(InfimumRounds(src, k, p))),
	}
}
