package topk

import (
	"math/rand"
	"testing"

	"crowdtopk/internal/compare"
	"crowdtopk/internal/crowd"
	"crowdtopk/internal/dataset"
	"crowdtopk/internal/metrics"
)

// TestIntegrationAllDatasetsAllAlgorithms runs every algorithm end-to-end
// on a subset of every paper dataset and checks basic sanity: k distinct
// valid items, positive cost, and non-degenerate quality.
func TestIntegrationAllDatasetsAllAlgorithms(t *testing.T) {
	sources := []dataset.Source{
		dataset.NewIMDb(3),
		dataset.NewBook(4),
		dataset.NewJester(5),
		dataset.NewPhoto(6),
		dataset.NewPeopleAge(7),
	}
	for _, base := range sources {
		base := base
		t.Run(base.Name(), func(t *testing.T) {
			src := dataset.Source(base)
			if src.NumItems() > 80 {
				src = dataset.RandomSubset(base, 80, rand.New(rand.NewSource(11)))
			}
			for _, alg := range allAlgorithms() {
				eng := crowd.NewEngine(src, rand.New(rand.NewSource(12)))
				r := compare.NewRunner(eng, compare.NewStudent(0.05), compare.Params{B: 300, I: 30, Step: 30})
				res := Run(alg, r, 8)

				seen := map[int]bool{}
				for _, o := range res.TopK {
					if o < 0 || o >= src.NumItems() || seen[o] {
						t.Fatalf("%s on %s: invalid result %v", alg.Name(), src.Name(), res.TopK)
					}
					seen[o] = true
				}
				if res.TMC <= 0 || res.Rounds <= 0 {
					t.Errorf("%s on %s: no cost recorded", alg.Name(), src.Name())
				}
				if ndcg := metrics.NDCG(res.TopK, src.TrueRank, src.NumItems()); ndcg < 0.15 {
					t.Errorf("%s on %s: NDCG %.3f degenerate", alg.Name(), src.Name(), ndcg)
				}
			}
		})
	}
}

// TestSystemAccuracyLowerBound verifies the §5.4 analysis: the expected
// precision of SPR is at least (1−α)/c — in practice far higher, since
// the ranking phase refines the partition.
func TestSystemAccuracyLowerBound(t *testing.T) {
	const (
		alpha = 0.05
		c     = 1.5
		k     = 6
		runs  = 10
	)
	var precision float64
	for rep := 0; rep < runs; rep++ {
		src := dataset.NewSynthetic(80, 0.3, int64(400+rep))
		eng := crowd.NewEngine(src, rand.New(rand.NewSource(int64(500+rep))))
		r := compare.NewRunner(eng, compare.NewStudent(alpha), compare.Params{B: 1000, I: 30, Step: 30})
		res := Run(&SPR{C: c, MaxRefChanges: 2}, r, k)
		precision += metrics.PrecisionAtK(res.TopK, src.TrueRank)
	}
	precision /= runs
	if bound := (1 - alpha) / c; precision < bound {
		t.Errorf("SPR precision %.3f below the §5.4 lower bound %.3f", precision, bound)
	}
}

// flipOracle wraps a source with adversarial workers: a fraction of the
// crowd answers with the *negated* preference (worse than random). The
// confidence machinery has no worker model, so quality must degrade
// gracefully — small fractions are absorbed by the widened variance, and
// sanity (valid result sets, budgets respected) must hold at any fraction.
type flipOracle struct {
	dataset.Source
	fraction float64
}

func (f flipOracle) Preference(rng *rand.Rand, i, j int) float64 {
	v := f.Source.Preference(rng, i, j)
	if rng.Float64() < f.fraction {
		return -v
	}
	return v
}

func TestAdversarialWorkersDegradeGracefully(t *testing.T) {
	precisionAt := func(fraction float64) float64 {
		var total float64
		const runs = 4
		for rep := 0; rep < runs; rep++ {
			src := dataset.NewSynthetic(60, 0.25, int64(600+rep))
			adv := flipOracle{Source: src, fraction: fraction}
			eng := crowd.NewEngine(adv, rand.New(rand.NewSource(int64(700+rep))))
			r := compare.NewRunner(eng, compare.NewStudent(0.05), compare.Params{B: 500, I: 30, Step: 30})
			res := Run(NewSPR(), r, 6)
			total += metrics.PrecisionAtK(res.TopK, src.TrueRank)
		}
		return total / runs
	}

	clean := precisionAt(0)
	mild := precisionAt(0.15)
	hostile := precisionAt(0.45)

	if clean < 0.8 {
		t.Fatalf("clean precision %.2f unexpectedly low", clean)
	}
	// 15% flipped workers shrink the mean preference by 30% — noticeable
	// but absorbable.
	if mild < 0.5 {
		t.Errorf("15%% adversaries collapsed precision to %.2f", mild)
	}
	// 45% flipped workers leave almost no signal; anything can happen to
	// quality, but the run must stay sane (covered by not panicking) and
	// can not be better than the clean crowd.
	if hostile > clean+1e-9 {
		t.Errorf("45%% adversaries improved precision (%.2f > %.2f)?", hostile, clean)
	}
}

// TestJudgmentReuseAcrossPhases verifies the §5.3 reuse property at the
// system level: re-running the ranking over items already compared costs
// nothing extra.
func TestJudgmentReuseAcrossPhases(t *testing.T) {
	src := dataset.NewSynthetic(40, 0.25, 800)
	eng := crowd.NewEngine(src, rand.New(rand.NewSource(801)))
	r := compare.NewRunner(eng, compare.NewStudent(0.05), compare.Params{B: 300, I: 30, Step: 30})

	s := NewSPR()
	first := Run(s, r, 5)
	cost := eng.TMC()
	// Sorting the returned items again touches only memoized pairs.
	again := sortByCrowd(r, first.TopK)
	if eng.TMC() != cost {
		t.Errorf("re-sorting the result set cost %d extra tasks", eng.TMC()-cost)
	}
	for i := range again {
		if again[i] != first.TopK[i] {
			t.Errorf("re-sort changed the order: %v vs %v", again, first.TopK)
			break
		}
	}
}

// TestPartitionErrorRateMatchesSection54 validates the paper's §5.4
// analysis by Monte Carlo: a true top-k item loses against a sweet-spot
// reference with probability at most α, so the expected number of top-k
// items erroneously pruned by the partition is at most αk.
func TestPartitionErrorRateMatchesSection54(t *testing.T) {
	const (
		alpha = 0.05
		k     = 10
		n     = 80
		runs  = 30
	)
	totalPruned := 0.0
	for rep := 0; rep < runs; rep++ {
		src := dataset.NewSynthetic(n, 0.3, int64(2000+rep))
		order := dataset.Order(src)
		eng := crowd.NewEngine(src, rand.New(rand.NewSource(int64(3000+rep))))
		r := compare.NewRunner(eng, compare.NewStudent(alpha), compare.Params{B: 4000, I: 30, Step: 30})

		ref := order[k+2] // a known sweet-spot reference (rank within [k, 1.5k])
		res := partition(r, allItems(n), k, ref, 0)

		inTopK := map[int]bool{}
		for _, o := range order[:k] {
			inTopK[o] = true
		}
		for _, o := range res.losers {
			if inTopK[o] {
				totalPruned++
			}
		}
	}
	avgPruned := totalPruned / runs
	// §5.4: E[pruned] = αk = 0.5. Allow generous Monte Carlo slack, but a
	// value of, say, 2 would falsify the analysis.
	if avgPruned > 3*alpha*k {
		t.Errorf("average erroneously pruned top-k items %.2f far above αk = %.2f",
			avgPruned, alpha*k)
	}
}
