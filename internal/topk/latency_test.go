package topk

import (
	"math/rand"
	"testing"

	"crowdtopk/internal/compare"
	"crowdtopk/internal/crowd"
	"crowdtopk/internal/dataset"
)

// The §5.5 latency analysis, verified as scaling laws rather than absolute
// numbers: heap sort's round count grows roughly linearly in N (its scan
// is sequential), while SPR's stays nearly flat (its phases are
// parallel).

func measuredRounds(alg Algorithm, n int, seed int64) float64 {
	src := dataset.NewSynthetic(n, 0.3, seed)
	eng := crowd.NewEngine(src, rand.New(rand.NewSource(seed+1)))
	r := compare.NewRunner(eng, compare.NewStudent(0.05), compare.Params{B: 300, I: 30, Step: 30})
	return float64(Run(alg, r, 8).Rounds)
}

func avgRounds(alg Algorithm, n int) float64 {
	total := 0.0
	const runs = 3
	for s := int64(0); s < runs; s++ {
		total += measuredRounds(alg, n, 100*s+int64(n))
	}
	return total / runs
}

func TestLatencyScalingLaws(t *testing.T) {
	small, large := 60, 240 // 4× the items

	heapGrowth := avgRounds(HeapSort{}, large) / avgRounds(HeapSort{}, small)
	sprGrowth := avgRounds(NewSPR(), large) / avgRounds(NewSPR(), small)
	qsGrowth := avgRounds(QuickSelect{}, large) / avgRounds(QuickSelect{}, small)

	// Heap's sequential scan: rounds ≈ Θ(N). 4× items give ≈4× scan
	// comparisons; per-comparison round counts vary with pair difficulty,
	// so assert clearly-superlinear-vs-flat rather than the exact factor.
	if heapGrowth < 2.0 {
		t.Errorf("heap sort round growth %.2f too small for a sequential scan", heapGrowth)
	}
	// SPR and QuickSelect parallelize their phases: growth far below
	// linear.
	if sprGrowth > heapGrowth/1.5 {
		t.Errorf("SPR round growth %.2f not clearly below heap's %.2f", sprGrowth, heapGrowth)
	}
	if qsGrowth > heapGrowth/1.5 {
		t.Errorf("quickselect round growth %.2f not clearly below heap's %.2f", qsGrowth, heapGrowth)
	}
}

func TestLatencyGrowsWithKForHeapAndTournament(t *testing.T) {
	// §5.5: heap (N−k)·log k scan rounds and the tournament's k·loglogN
	// extractions both grow in k; SPR's constant-round partition keeps its
	// growth mild.
	roundsAt := func(alg Algorithm, k int) float64 {
		src := dataset.NewSynthetic(100, 0.3, 7)
		eng := crowd.NewEngine(src, rand.New(rand.NewSource(8)))
		r := compare.NewRunner(eng, compare.NewStudent(0.05), compare.Params{B: 300, I: 30, Step: 30})
		return float64(Run(alg, r, k).Rounds)
	}
	for _, alg := range []Algorithm{HeapSort{}, TourTree{}} {
		lo, hi := roundsAt(alg, 2), roundsAt(alg, 16)
		if hi <= lo {
			t.Errorf("%s rounds did not grow with k: %v -> %v", alg.Name(), lo, hi)
		}
	}
}
