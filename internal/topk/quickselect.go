package topk

import "crowdtopk/internal/compare"

// QuickSelect answers top-k queries by crowd-backed quick selection
// (§4.3, after Hoare's FIND): a random pivot is compared with every other
// item in one parallel batch phase, then the recursion descends into the
// side containing the k-th item. Average cost is O(Nw + kw·logk); latency
// is O(logN) phases, the best of the baselines (§5.5).
type QuickSelect struct{}

// Name implements Algorithm.
func (QuickSelect) Name() string { return "quickselect" }

// TopK implements Algorithm.
func (QuickSelect) TopK(r *compare.Runner, k int) []int {
	validateK(r, k)
	items := allItems(r.Engine().NumItems())
	top := quickSelect(r, items, k)
	return sortByCrowd(r, top)[:k]
}

// quickSelect returns some k best items of items (unordered).
func quickSelect(r *compare.Runner, items []int, k int) []int {
	if k <= 0 {
		return nil
	}
	if len(items) <= k {
		return items
	}
	pivot := items[r.Rand().Intn(len(items))]

	pairs := make([][2]int, 0, len(items)-1)
	for _, o := range items {
		if o != pivot {
			pairs = append(pairs, [2]int{o, pivot})
		}
	}
	// The pivot phase is a flat batch on the shared scheduler: every
	// item races the pivot, and in async mode a decided item frees its
	// pool slot without waiting for the phase's stragglers.
	p := newFlatPlan(pairs)
	drive(r, p)
	outs := p.out

	var winners, losers []int
	for pi, p := range pairs {
		if resolve(r, p[0], p[1], outs[pi]) == compare.FirstWins {
			winners = append(winners, p[0])
		} else {
			losers = append(losers, p[0])
		}
	}

	switch {
	case len(winners) >= k:
		return quickSelect(r, winners, k)
	case len(winners)+1 == k:
		return append(winners, pivot)
	default:
		rest := quickSelect(r, losers, k-len(winners)-1)
		return append(append(winners, pivot), rest...)
	}
}
