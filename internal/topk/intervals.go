package topk

import (
	"fmt"
	"math"
	"sort"

	"crowdtopk/internal/crowd"
	"crowdtopk/internal/stats"
)

// IntervalGroups infers a partial ranking of the given items from the
// confidence intervals of their preference means against a common
// reference item — the §7 future-work direction ("infer the partial
// ranking based on the distinguishable intervals and their dependence").
//
// Every item's 1−α Student-t interval of μ_{i,ref} is computed from the
// samples already purchased (no new microtasks are spent). Items are then
// grouped into tiers: consecutive tiers have non-overlapping intervals,
// so every item of a tier beats every item of later tiers with confidence
// 1−α per pair, while items inside one tier remain statistically
// indistinguishable on the evidence at hand. The reference itself may be
// included among items; its self-interval is the point {0}.
//
// The tiers are returned best-first, each tier ordered by estimated mean.
func IntervalGroups(e *crowd.Engine, items []int, ref int, alpha float64) [][]int {
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("topk: IntervalGroups requires alpha in (0,1), got %v", alpha))
	}
	if len(items) == 0 {
		return nil
	}
	tt := stats.NewTTable(alpha)

	type iv struct {
		item         int
		lo, hi, mean float64
	}
	ivs := make([]iv, 0, len(items))
	for _, o := range items {
		if o == ref {
			ivs = append(ivs, iv{item: o})
			continue
		}
		v := e.View(o, ref)
		if v.N < 2 {
			// No usable evidence: an unbounded interval.
			ivs = append(ivs, iv{item: o, lo: math.Inf(-1), hi: math.Inf(1), mean: v.Mean})
			continue
		}
		half := tt.Critical(v.N-1) * v.SD / math.Sqrt(float64(v.N))
		ivs = append(ivs, iv{item: o, lo: v.Mean - half, hi: v.Mean + half, mean: v.Mean})
	}

	sort.SliceStable(ivs, func(a, b int) bool { return ivs[a].mean > ivs[b].mean })

	var groups [][]int
	var cur []int
	minLo := math.Inf(1)
	for _, x := range ivs {
		if len(cur) > 0 && x.hi < minLo {
			groups = append(groups, cur)
			cur = nil
			minLo = math.Inf(1)
		}
		cur = append(cur, x.item)
		if x.lo < minLo {
			minLo = x.lo
		}
	}
	groups = append(groups, cur)
	return groups
}
