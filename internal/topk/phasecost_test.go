package topk

import (
	"math/rand"
	"testing"

	"crowdtopk/internal/compare"
	"crowdtopk/internal/crowd"
	"crowdtopk/internal/dataset"
)

// TestSPRPhaseTrace verifies the per-phase cost breakdown on the
// paper-scale IMDb instance: the phases must account for the full spend,
// and the partition must dominate selection (the cost anatomy behind the
// reduced-budget selection decision in DESIGN.md).
func TestSPRPhaseTrace(t *testing.T) {
	src := dataset.NewIMDb(1)
	eng := crowd.NewEngine(src, rand.New(rand.NewSource(2)))
	r := compare.NewRunner(eng, compare.NewStudent(0.02), compare.Params{B: 1000, I: 30, Step: 30})

	trace := &PhaseTrace{}
	s := NewSPR()
	s.Trace = trace
	res := Run(s, r, 10)

	total := trace.Select.TMC + trace.Partition.TMC + trace.Rank.TMC
	if total != res.TMC {
		t.Errorf("phase TMCs sum to %d, run reports %d", total, res.TMC)
	}
	roundTotal := trace.Select.Rounds + trace.Partition.Rounds + trace.Rank.Rounds
	if roundTotal != res.Rounds {
		t.Errorf("phase rounds sum to %d, run reports %d", roundTotal, res.Rounds)
	}
	if trace.Select.TMC <= 0 || trace.Partition.TMC <= 0 || trace.Rank.TMC < 0 {
		t.Errorf("degenerate phase costs: %+v", trace)
	}
	if trace.Select.TMC >= trace.Partition.TMC*2 {
		t.Errorf("selection (%d) should not dwarf partitioning (%d) with the capped budget",
			trace.Select.TMC, trace.Partition.TMC)
	}
	if trace.Winners+trace.Ties+trace.Losers < src.NumItems()-1 {
		t.Errorf("partition sizes %d+%d+%d do not cover the items",
			trace.Winners, trace.Ties, trace.Losers)
	}
	t.Logf("select=%+v partition=%+v rank=%+v refChanges=%d W/T/L=%d/%d/%d recursions=%d",
		trace.Select, trace.Partition, trace.Rank,
		trace.RefChanges, trace.Winners, trace.Ties, trace.Losers, trace.Recursions)
}

// TestSPRPhaseTraceResetsPerQuery guards against stale accumulation when
// one SPR value runs several queries.
func TestSPRPhaseTraceResetsPerQuery(t *testing.T) {
	src := dataset.NewSynthetic(40, 0.25, 3)
	trace := &PhaseTrace{}
	s := NewSPR()
	s.Trace = trace

	run := func() int64 {
		eng := crowd.NewEngine(src, rand.New(rand.NewSource(4)))
		r := compare.NewRunner(eng, compare.NewStudent(0.05), compare.Params{B: 300, I: 30, Step: 30})
		Run(s, r, 5)
		return trace.Select.TMC + trace.Partition.TMC + trace.Rank.TMC
	}
	first := run()
	second := run()
	if second != first {
		t.Errorf("trace accumulated across queries: %d then %d", first, second)
	}
}

// TestSPRNilTraceIsFree checks the no-trace fast path stays intact.
func TestSPRNilTraceIsFree(t *testing.T) {
	src := dataset.NewSynthetic(30, 0.25, 5)
	eng := crowd.NewEngine(src, rand.New(rand.NewSource(6)))
	r := compare.NewRunner(eng, compare.NewStudent(0.05), compare.Params{B: 300, I: 30, Step: 30})
	res := Run(NewSPR(), r, 5) // Trace nil: must simply work
	if len(res.TopK) != 5 {
		t.Fatalf("result %v", res.TopK)
	}
}
