package topk

import (
	"math/rand"
	"testing"

	"crowdtopk/internal/compare"
	"crowdtopk/internal/crowd"
	"crowdtopk/internal/dataset"
)

func TestMergeSortByCrowdExact(t *testing.T) {
	r, src := exactRunner(30, 71)
	order := dataset.Order(src)
	shuffled := append([]int(nil), order...)
	rng := newTestRand(72)
	rng.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
	got := mergeSortByCrowd(r, shuffled)
	for i := range got {
		if got[i] != order[i] {
			t.Fatalf("sorted[%d] = %d, want %d", i, got[i], order[i])
		}
	}
}

func TestMergeSortHandlesOddAndTinyInputs(t *testing.T) {
	r, src := exactRunner(9, 73)
	order := dataset.Order(src)
	for n := 1; n <= 9; n++ {
		in := append([]int(nil), order[:n]...)
		rng := newTestRand(int64(74 + n))
		rng.Shuffle(len(in), func(a, b int) { in[a], in[b] = in[b], in[a] })
		got := mergeSortByCrowd(r, in)
		for i := range got {
			if got[i] != order[i] {
				t.Fatalf("n=%d: sorted[%d] = %d, want %d", n, i, got[i], order[i])
			}
		}
	}
}

// TestBubbleBeatsMergeOnAlmostSorted verifies the §5.3 design argument:
// on the almost-sorted candidate order the ranking phase produces, the
// adjacent (bubble) sort costs less crowd money than merge sort, because
// merge re-compares across the whole sequence regardless of presortedness.
func TestBubbleBeatsMergeOnAlmostSorted(t *testing.T) {
	var bubbleCost, mergeCost int64
	const runs = 5
	for rep := 0; rep < runs; rep++ {
		src := dataset.NewSynthetic(40, 0.25, int64(800+rep))
		order := dataset.Order(src)
		// Almost sorted: a few adjacent swaps, as the Thurstone bootstrap
		// leaves behind.
		almost := append([]int(nil), order...)
		rng := newTestRand(int64(810 + rep))
		for s := 0; s < 4; s++ {
			i := rng.Intn(len(almost) - 1)
			almost[i], almost[i+1] = almost[i+1], almost[i]
		}

		run := func(sorter func(*compare.Runner, []int) []int) int64 {
			eng := crowd.NewEngine(src, rand.New(rand.NewSource(int64(820+rep))))
			r := compare.NewRunner(eng, compare.NewStudent(0.05), compare.Params{B: 300, I: 30, Step: 30})
			sorter(r, almost)
			return eng.TMC()
		}
		bubbleCost += run(sortByCrowd)
		mergeCost += run(mergeSortByCrowd)
	}
	if bubbleCost >= mergeCost {
		t.Errorf("bubble sort cost %d not below merge sort %d on almost-sorted input",
			bubbleCost, mergeCost)
	}
}
