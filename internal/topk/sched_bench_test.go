package topk

import (
	"math/rand"
	"testing"
	"time"

	"crowdtopk/internal/compare"
	"crowdtopk/internal/crowd"
)

// stragglerOracle simulates crowd latency: every microtask blocks its
// worker for fast, except the straggler pair, whose workers take slow per
// answer. Fast pairs are near-ties (they run their comparison to the
// budget, many rounds); the straggler is decisive (one round of very late
// answers) — the one-late-batch-stalls-the-wave shape of §5.5.
type stragglerOracle struct {
	n          int
	slowI      int
	slowJ      int
	fast, slow time.Duration
}

func (s stragglerOracle) NumItems() int { return s.n }

func (s stragglerOracle) Preference(rng *rand.Rand, i, j int) float64 {
	if (i == s.slowI && j == s.slowJ) || (i == s.slowJ && j == s.slowI) {
		time.Sleep(s.slow)
		v := 0.85 + 0.1*rng.Float64() // decisive: concluded in one batch
		if i == s.slowJ {
			return -v
		}
		return v
	}
	time.Sleep(s.fast)
	// Near-tie with antisymmetric drift: runs to the per-pair budget.
	v := 0.001*float64(j-i) + 0.9*(2*rng.Float64()-1)
	if v > 1 {
		v = 1
	} else if v < -1 {
		v = -1
	}
	return v
}

// BenchmarkSchedulerStraggler measures what the async scheduler exists
// for: a flat batch of 200 pairs in which one pair's crowd answers come
// back two orders of magnitude later than everyone else's. In wave mode
// the first round drains behind the straggler while the rest of the pool
// idles, and the remaining rounds of the near-tie pairs only start after
// that barrier; in async mode every decided or resubmitted chain keeps
// the workers fed, so the straggler's batch overlaps the other pairs'
// whole budget. Besides wall-clock time per batch it reports pool
// utilization — busyNs/(wall × workers) — as the "util" metric that
// perfcheck gates on (async must beat wave).
func BenchmarkSchedulerStraggler(b *testing.B) {
	const (
		pairs   = 200
		workers = 8
		fast    = 50 * time.Microsecond
		slow    = 100 * time.Millisecond
	)
	for _, mode := range []struct {
		name  string
		async bool
	}{{"wave", false}, {"async", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var busy, wall int64
			for i := 0; i < b.N; i++ {
				o := stragglerOracle{n: 2 * pairs, slowI: 0, slowJ: pairs, fast: fast, slow: slow}
				eng := crowd.NewEngine(o, rand.New(rand.NewSource(int64(i+1))))
				r := compare.NewRunner(eng, compare.NewStudent(0.05), compare.Params{
					B: 100, I: 20, Step: 20, Parallelism: workers, Async: mode.async,
				})
				reqs := make([][2]int, pairs)
				for t := 0; t < pairs; t++ {
					reqs[t] = [2]int{t, t + pairs}
				}
				start := time.Now()
				drive(r, newFlatPlan(reqs))
				wall += time.Since(start).Nanoseconds()
				busy += r.Sched().BusyNs()
			}
			if wall > 0 {
				b.ReportMetric(float64(busy)/(float64(wall)*workers), "util")
			}
		})
	}
}
