package topk

import "crowdtopk/internal/compare"

// maxItem returns the best of items via a single-elimination tournament
// bracket on the shared scheduler: in deterministic mode each level's
// matches run as lockstep waves (O(log n) rounds, §5.5); in async mode
// matches start the moment both contenders are known, pipelining across
// levels. Budget-exhausted ties are resolved by sample-mean leaning.
func maxItem(r *compare.Runner, items []int) int {
	if len(items) == 0 {
		panic("topk: maxItem on empty slice")
	}
	p := newBracketPlan(r, [][]int{items}, nil)
	drive(r, p)
	return p.winner(0)
}

// maxItems runs one single-elimination tournament per sample, all
// sharing the scheduler pool: the matches of every tournament join the
// same rounds, so the total latency is O(log max|sample|) rounds — the
// paper's reference-selection parallelism (§5.5). It returns the winner
// of each sample.
func maxItems(r *compare.Runner, samples [][]int) []int {
	for _, sample := range samples {
		if len(sample) == 0 {
			panic("topk: maxItems on empty sample")
		}
	}
	p := newBracketPlan(r, samples, nil)
	drive(r, p)
	winners := make([]int, len(samples))
	for s := range winners {
		winners[s] = p.winner(s)
	}
	return winners
}

// adjacentSort sorts items best-first by odd-even transposition (parallel
// bubble sort): the disjoint adjacent pairs of one parity advance
// together on the scheduler. On an almost-sorted input — the situation
// reference-based sorting engineers (§5.3) — it terminates in
// near-linear cost and very few rounds. The sort is stable under
// indistinguishable ties: a budget-exhausted pair keeps its current
// order unless the sample mean says otherwise.
func adjacentSort(r *compare.Runner, items []int) {
	if len(items) < 2 {
		return
	}
	drive(r, newOddEvenPlan(r, items))
}

// sortByCrowd returns a new slice with items ordered best-first purely by
// crowd comparisons, starting from the given order.
func sortByCrowd(r *compare.Runner, items []int) []int {
	out := append([]int(nil), items...)
	adjacentSort(r, out)
	return out
}

// SortStrategy selects the crowd sorting algorithm used by RankCandidates.
type SortStrategy int

// Available sorting strategies.
const (
	// SortAdjacent is the near-linear-on-almost-sorted odd-even
	// transposition sort the paper recommends for the ranking phase
	// (§5.3, "bubble sort could be a good choice").
	SortAdjacent SortStrategy = iota
	// SortMerge is a crowd-backed merge sort — the divide-and-conquer
	// strategy §5.3 argues against; provided for the ablation.
	SortMerge
)

// RankCandidates sorts items best-first by crowd comparisons with the
// chosen strategy, for callers that rank candidate sets outside a full
// SPR run (ablations, custom pipelines).
func RankCandidates(r *compare.Runner, items []int, strategy SortStrategy) []int {
	switch strategy {
	case SortMerge:
		return mergeSortByCrowd(r, items)
	default:
		return sortByCrowd(r, items)
	}
}

// mergeSortByCrowd sorts items best-first with a crowd-backed merge sort.
// It exists to test the paper's §5.3 claim empirically: divide-and-conquer
// sorts take no advantage of an almost-sorted input — every merge
// re-compares across the full sequence — so on the reference-bootstrapped
// candidate order the adjacent (bubble) sort is strictly cheaper. Mergers
// with complete inputs run concurrently on the scheduler, one comparison
// per merger per round.
func mergeSortByCrowd(r *compare.Runner, items []int) []int {
	p := newMergePlan(r, items)
	drive(r, p)
	return p.sorted()
}
