package topk

import "crowdtopk/internal/compare"

// maxItem returns the best of items via a parallel single-elimination
// tournament: each level's matches run as one parallel wave, so the
// latency is O(log n) rounds of comparisons (§5.5). Budget-exhausted ties
// are resolved by sample-mean leaning.
func maxItem(r *compare.Runner, items []int) int {
	if len(items) == 0 {
		panic("topk: maxItem on empty slice")
	}
	cur := append([]int(nil), items...)
	for len(cur) > 1 {
		var pairs [][2]int
		for i := 0; i+1 < len(cur); i += 2 {
			pairs = append(pairs, [2]int{cur[i], cur[i+1]})
		}
		outs := compareAll(r, pairs)
		next := cur[:0]
		for pi, p := range pairs {
			if resolve(r, p[0], p[1], outs[pi]) == compare.FirstWins {
				next = append(next, p[0])
			} else {
				next = append(next, p[1])
			}
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1]) // bye
		}
		cur = next
	}
	return cur[0]
}

// maxItems runs one single-elimination tournament per sample, all
// level-synchronized: the matches of every tournament's current level join
// the same parallel waves, so the total latency is O(log max|sample|)
// rounds — the paper's reference-selection parallelism (§5.5). It returns
// the winner of each sample.
func maxItems(r *compare.Runner, samples [][]int) []int {
	cur := make([][]int, len(samples))
	for s, sample := range samples {
		if len(sample) == 0 {
			panic("topk: maxItems on empty sample")
		}
		cur[s] = append([]int(nil), sample...)
	}
	for {
		var pairs [][2]int
		type ref struct{ s, slot int }
		var refs []ref
		for s := range cur {
			for i := 0; i+1 < len(cur[s]); i += 2 {
				pairs = append(pairs, [2]int{cur[s][i], cur[s][i+1]})
				refs = append(refs, ref{s, i})
			}
		}
		if len(pairs) == 0 {
			break
		}
		outs := compareAll(r, pairs)
		next := make([][]int, len(cur))
		for s := range cur {
			next[s] = cur[s][:0]
		}
		for pi, p := range pairs {
			s := refs[pi].s
			if resolve(r, p[0], p[1], outs[pi]) == compare.FirstWins {
				next[s] = append(next[s], p[0])
			} else {
				next[s] = append(next[s], p[1])
			}
		}
		for s := range cur {
			if len(cur[s])%2 == 1 {
				next[s] = append(next[s], cur[s][len(cur[s])-1])
			}
		}
		cur = next
	}
	winners := make([]int, len(cur))
	for s := range cur {
		winners[s] = cur[s][0]
	}
	return winners
}

// adjacentSort sorts items best-first by odd-even transposition (parallel
// bubble sort): each pass compares the disjoint adjacent pairs of one
// parity in a single parallel wave. On an almost-sorted input — the
// situation reference-based sorting engineers (§5.3) — it terminates in
// near-linear cost and very few rounds. The sort is stable under
// indistinguishable ties: a budget-exhausted pair keeps its current order
// unless the sample mean says otherwise.
func adjacentSort(r *compare.Runner, items []int) {
	n := len(items)
	if n < 2 {
		return
	}
	// A consistent comparator finishes within n double-passes; the cap
	// guards against livelock when noisy, budget-exhausted judgments are
	// intransitive.
	for pass := 0; pass <= n; pass++ {
		swapped := false
		for parity := 0; parity < 2; parity++ {
			var pairs [][2]int
			var pos []int
			for i := parity; i+1 < n; i += 2 {
				pairs = append(pairs, [2]int{items[i], items[i+1]})
				pos = append(pos, i)
			}
			if len(pairs) == 0 {
				continue
			}
			outs := compareAll(r, pairs)
			for pi, p := range pairs {
				o := outs[pi]
				if o == compare.Tie && p[0] != p[1] {
					o = r.Leaning(p[0], p[1]) // keep order if still tied
				}
				if o == compare.SecondWins {
					i := pos[pi]
					items[i], items[i+1] = items[i+1], items[i]
					swapped = true
				}
			}
		}
		if !swapped {
			return
		}
	}
}

// sortByCrowd returns a new slice with items ordered best-first purely by
// crowd comparisons, starting from the given order.
func sortByCrowd(r *compare.Runner, items []int) []int {
	out := append([]int(nil), items...)
	adjacentSort(r, out)
	return out
}

// SortStrategy selects the crowd sorting algorithm used by RankCandidates.
type SortStrategy int

// Available sorting strategies.
const (
	// SortAdjacent is the near-linear-on-almost-sorted odd-even
	// transposition sort the paper recommends for the ranking phase
	// (§5.3, "bubble sort could be a good choice").
	SortAdjacent SortStrategy = iota
	// SortMerge is a crowd-backed merge sort — the divide-and-conquer
	// strategy §5.3 argues against; provided for the ablation.
	SortMerge
)

// RankCandidates sorts items best-first by crowd comparisons with the
// chosen strategy, for callers that rank candidate sets outside a full
// SPR run (ablations, custom pipelines).
func RankCandidates(r *compare.Runner, items []int, strategy SortStrategy) []int {
	switch strategy {
	case SortMerge:
		return mergeSortByCrowd(r, items)
	default:
		return sortByCrowd(r, items)
	}
}

// mergeSortByCrowd sorts items best-first with a crowd-backed merge sort.
// It exists to test the paper's §5.3 claim empirically: divide-and-conquer
// sorts take no advantage of an almost-sorted input — every merge
// re-compares across the full sequence — so on the reference-bootstrapped
// candidate order the adjacent (bubble) sort is strictly cheaper. Merges
// of disjoint sublists share parallel waves, one comparison per merge step
// per wave.
func mergeSortByCrowd(r *compare.Runner, items []int) []int {
	n := len(items)
	cur := make([][]int, n)
	for i, o := range items {
		cur[i] = []int{o}
	}
	for len(cur) > 1 {
		var next [][]int
		// Pair up runs; merge each pair step by step, all pairs advancing
		// in the same waves.
		type merger struct {
			a, b []int
			out  []int
		}
		var ms []*merger
		for i := 0; i+1 < len(cur); i += 2 {
			ms = append(ms, &merger{a: cur[i], b: cur[i+1]})
		}
		for {
			var pairs [][2]int
			var who []*merger
			for _, m := range ms {
				if len(m.a) > 0 && len(m.b) > 0 {
					pairs = append(pairs, [2]int{m.a[0], m.b[0]})
					who = append(who, m)
				}
			}
			if len(pairs) == 0 {
				break
			}
			outs := compareAll(r, pairs)
			for pi, m := range who {
				if resolve(r, pairs[pi][0], pairs[pi][1], outs[pi]) == compare.FirstWins {
					m.out = append(m.out, m.a[0])
					m.a = m.a[1:]
				} else {
					m.out = append(m.out, m.b[0])
					m.b = m.b[1:]
				}
			}
		}
		for _, m := range ms {
			m.out = append(m.out, m.a...)
			m.out = append(m.out, m.b...)
			next = append(next, m.out)
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		cur = next
	}
	return cur[0]
}
