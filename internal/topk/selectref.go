package topk

import (
	"fmt"
	"math"
	"sort"

	"crowdtopk/internal/compare"
)

// refPlan is a solution of the paper's Problem (2): take m independent
// sampling procedures of x items each, and use the median of their maxima
// as the reference.
type refPlan struct {
	x, m int
	// prob is Pr{o_k* ⪰ r ⪰ o_ck* | x, m}, the probability the median of
	// maxima lands in the sweet spot.
	prob float64
}

// bubbleMedianCost is C(A, m) for bubble sort (Appendix C): the worst-case
// number of comparisons to surface the median of m numbers,
// (3m² + m − 2)/8. The paper's Problem (2) budget uses this bound.
func bubbleMedianCost(m int) int {
	return (3*m*m + m - 2) / 8
}

// MedianCostBound returns the Appendix C / Table 10 worst-case comparison
// bound for surfacing the median of m numbers with the named algorithm:
// "bubble" and "selection" share (3m²+m−2)/8, "merge" is 3m·log₂m, "heap"
// is m + 2m·log₂(m/2), and "quick" is m(m−1)/2. m must be positive.
func MedianCostBound(algorithm string, m int) float64 {
	if m < 1 {
		panic(fmt.Sprintf("topk: MedianCostBound requires m >= 1, got %d", m))
	}
	fm := float64(m)
	switch algorithm {
	case "bubble", "selection":
		return float64(bubbleMedianCost(m))
	case "merge":
		if m == 1 {
			return 0
		}
		return 3 * fm * math.Log2(fm)
	case "heap":
		if m < 2 {
			return 0
		}
		return fm + 2*fm*math.Log2(fm/2)
	case "quick":
		return fm * (fm - 1) / 2
	default:
		panic(fmt.Sprintf("topk: unknown median algorithm %q", algorithm))
	}
}

// sweetSpotProb evaluates Pr{o_k* ⪰ r ⪰ o_ck* | x, m} from §5.1:
//
//	1 − Σ_{i=⌈m/2⌉}^m C(m,i)·pⁱ(1−p)^{m−i} − Σ_{i=⌈(m+1)/2⌉}^m C(m,i)·q^{m−i}(1−q)ⁱ
//
// where p = Pr{max of x samples ⪰ o_{k−1}*} penalizes overshooting the
// sweet spot and q = Pr{max ⪰ o_{ck}*} rewards reaching it.
func sweetSpotProb(n, k, x, m int, c float64) float64 {
	p := 1 - math.Pow(1-float64(k-1)/float64(n), float64(x))
	ck := int(math.Floor(c * float64(k)))
	if ck > n {
		ck = n
	}
	q := 1 - math.Pow(1-float64(ck)/float64(n), float64(x))

	overshoot := binomUpperTail(m, p, (m+1)/2)     // i = ⌈m/2⌉ .. m
	undershoot := binomLowerTailQ(m, q, (m+2)/2-1) // i = ⌈(m+1)/2⌉ .. m of C(m,i) q^{m-i}(1-q)^i
	return 1 - overshoot - undershoot
}

// binomUpperTail returns Σ_{i=lo}^m C(m,i)·pⁱ(1−p)^{m−i}.
func binomUpperTail(m int, p float64, lo int) float64 {
	s := 0.0
	for i := lo; i <= m; i++ {
		s += binomPMF(m, i, p)
	}
	return s
}

// binomLowerTailQ returns Σ_{i=lo+1}^m C(m,i)·q^{m−i}(1−q)ⁱ — the second
// penalty sum of §5.1, which is a binomial tail in the *failure*
// probability 1−q.
func binomLowerTailQ(m int, q float64, lo int) float64 {
	s := 0.0
	for i := lo + 1; i <= m; i++ {
		s += binomPMF(m, i, 1-q)
	}
	return s
}

func binomPMF(m, i int, p float64) float64 {
	if p <= 0 {
		if i == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if i == m {
			return 1
		}
		return 0
	}
	lg := lchoose(m, i) + float64(i)*math.Log(p) + float64(m-i)*math.Log1p(-p)
	return math.Exp(lg)
}

func lchoose(n, k int) float64 {
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}

// planReference solves Problem (2) by grid search: maximize the sweet-spot
// probability subject to the sampling budget m(x−1) + C(bubble, m) ≤ n
// comparisons, so reference selection never dominates the O(N) partition
// cost. m is kept odd so the median is a single item.
func planReference(n, k int, c float64) refPlan {
	best := refPlan{x: 1, m: 1, prob: -1}
	for m := 1; ; m += 2 {
		budget := n - bubbleMedianCost(m)
		if budget < 0 {
			break
		}
		x := budget/m + 1
		if x < 1 {
			break
		}
		if x > n {
			x = n
		}
		if p := sweetSpotProb(n, k, x, m, c); p > best.prob {
			best = refPlan{x: x, m: m, prob: p}
		}
	}
	return best
}

// selectReference implements Algorithm 3 (SELECTREFERENCE) on the given
// item subset: m sampling procedures of x random items each (with
// replacement), one crowd tournament per sample to find its max (the m
// tournaments run in parallel — §5.5), then a crowd bubble sort of the m
// maxima to surface their median. When prior scores are available the
// sampling is skipped entirely (§7).
//
// Selection comparisons run on a reduced per-pair budget with sample-mean
// fallback: an incorrect judgment here "will only affect the efficiency"
// of the query, never its correctness (§5.4), and the sampled maxima are
// all near-top items whose full-budget comparisons would dominate the
// entire query cost — exactly the difficult pairs SPR exists to avoid.
func (s *SPR) selectReference(r *compare.Runner, items []int, k int) int {
	if len(items) == 1 {
		return items[0]
	}
	if s.PriorScores != nil {
		return priorReference(s.PriorScores, items, k, s.C)
	}
	plan := planReference(len(items), k, s.C)
	rng := r.Rand()

	selB := s.SelectionBudget
	switch {
	case selB == 0:
		selB = 2 * r.Params().I
		if b := r.Params().B; b > 0 && b < selB {
			selB = b
		}
	case selB < 0:
		selB = r.Params().B
	case selB < r.Params().I:
		selB = r.Params().I
	}
	// Derive, not NewRunner: the sub-phase shares the query's scheduler
	// handle and accounting (its purchases are this query's cost) but
	// gets a private conclusion memo — selection's reduced-budget ties
	// must not pollute the main query's verdict table.
	selR := r.Derive(compare.Params{
		B: selB, I: r.Params().I, Step: r.Params().Step,
		Parallelism: r.Params().Parallelism, Async: r.Params().Async,
	})

	samples := make([][]int, plan.m)
	for s := range samples {
		// Sample x items with replacement and dedupe: comparing an item
		// with itself is meaningless and the max is unaffected.
		seen := make(map[int]bool, plan.x)
		for t := 0; t < plan.x; t++ {
			o := items[rng.Intn(len(items))]
			if !seen[o] {
				seen[o] = true
				samples[s] = append(samples[s], o)
			}
		}
	}
	// The m sampling procedures are independent, so their tournaments run
	// level-synchronized in the same parallel waves (§5.5).
	maxima := maxItems(selR, samples)

	// Median of the maxima via crowd sorting (Appendix C uses bubble
	// sort; our odd-even variant has the same comparison bound and fewer
	// rounds).
	sorted := sortByCrowd(selR, maxima)
	return sorted[len(sorted)/2]
}

// priorReference picks the reference from prior scores: the item whose
// prior rank lies in the middle of the sweet spot [o_k*, o_ck*]. No crowd
// cost; the priors need only be roughly monotone with quality.
func priorReference(prior []float64, items []int, k int, c float64) int {
	ranked := append([]int(nil), items...)
	sort.SliceStable(ranked, func(a, b int) bool {
		return prior[ranked[a]] > prior[ranked[b]]
	})
	ck := int(math.Floor(c * float64(k)))
	target := (k - 1 + ck - 1) / 2
	if target >= len(ranked) {
		target = len(ranked) - 1
	}
	if target < 0 {
		target = 0
	}
	return ranked[target]
}
