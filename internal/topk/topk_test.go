package topk

import (
	"math/rand"
	"reflect"
	"testing"

	"crowdtopk/internal/compare"
	"crowdtopk/internal/crowd"
	"crowdtopk/internal/dataset"
)

// exactRunner wraps a noise-free latent dataset: every comparison resolves
// on the minimum workload, so algorithm logic can be verified exactly.
func exactRunner(n int, seed int64) (*compare.Runner, dataset.Source) {
	src := dataset.NewSynthetic(n, 0, seed)
	eng := crowd.NewEngine(src, rand.New(rand.NewSource(seed+1000)))
	r := compare.NewRunner(eng, compare.NewStudent(0.02), compare.Params{B: 50, I: 2, Step: 1})
	return r, src
}

// noisyRunner wraps a moderately noisy dataset under paper-like execution
// parameters (scaled down for test speed).
func noisyRunner(n int, noise float64, seed int64) (*compare.Runner, dataset.Source) {
	src := dataset.NewSynthetic(n, noise, seed)
	eng := crowd.NewEngine(src, rand.New(rand.NewSource(seed+2000)))
	r := compare.NewRunner(eng, compare.NewStudent(0.05), compare.Params{B: 300, I: 30, Step: 30})
	return r, src
}

func allAlgorithms() []Algorithm {
	return []Algorithm{NewSPR(), TourTree{}, HeapSort{}, QuickSelect{}, NewPBR()}
}

func TestAlgorithmsExactOnNoiselessData(t *testing.T) {
	for _, alg := range allAlgorithms() {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			for _, n := range []int{5, 12, 40} {
				for _, k := range []int{1, 3, 5} {
					r, src := exactRunner(n, int64(10*n+k))
					got := Run(alg, r, k)
					want := dataset.TopK(src, k)
					if alg.Name() == "pbr" {
						// PBR races Borda scores against random opponents:
						// even noise-free judgments leave opponent-choice
						// randomness, so under a tiny cap only most of the
						// set is guaranteed.
						if overlap(got.TopK, want) < (k+1)/2 {
							t.Errorf("n=%d k=%d: pbr set = %v overlaps %v too little", n, k, got.TopK, want)
						}
						continue
					}
					if !reflect.DeepEqual(got.TopK, want) {
						t.Errorf("n=%d k=%d: %s = %v, want %v", n, k, alg.Name(), got.TopK, want)
					}
				}
			}
		})
	}
}

func overlap(a, b []int) int {
	in := make(map[int]bool, len(b))
	for _, x := range b {
		in[x] = true
	}
	n := 0
	for _, x := range a {
		if in[x] {
			n++
		}
	}
	return n
}

func TestAlgorithmsAccurateOnNoisyData(t *testing.T) {
	// With real noise and a reasonable budget, every method must recover
	// most of the true top-k (the paper's Figure 13 regime).
	for _, alg := range allAlgorithms() {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			const n, k = 60, 8
			hits, total := 0, 0
			for rep := 0; rep < 3; rep++ {
				r, src := noisyRunner(n, 0.25, int64(100+rep))
				got := Run(alg, r, k)
				want := map[int]bool{}
				for _, o := range dataset.TopK(src, k) {
					want[o] = true
				}
				for _, o := range got.TopK {
					if want[o] {
						hits++
					}
				}
				total += k
			}
			if frac := float64(hits) / float64(total); frac < 0.7 {
				t.Errorf("%s precision %.2f below 0.7", alg.Name(), frac)
			}
		})
	}
}

func TestRunAccounting(t *testing.T) {
	r, _ := noisyRunner(30, 0.3, 7)
	res := Run(NewSPR(), r, 5)
	if res.Algorithm != "spr" {
		t.Errorf("Algorithm = %q", res.Algorithm)
	}
	if res.TMC <= 0 || res.Rounds <= 0 {
		t.Errorf("cost deltas not positive: TMC=%d rounds=%d", res.TMC, res.Rounds)
	}
	if res.TMC != r.Engine().TMC() {
		t.Errorf("TMC delta %d != engine total %d on fresh engine", res.TMC, r.Engine().TMC())
	}
	// A second run on the same engine attributes only its own cost.
	res2 := Run(TourTree{}, r, 5)
	if res2.TMC+res.TMC != r.Engine().TMC() {
		t.Errorf("second run delta wrong: %d + %d != %d", res.TMC, res2.TMC, r.Engine().TMC())
	}
}

func TestRunDeterministicUnderSeed(t *testing.T) {
	for _, alg := range allAlgorithms() {
		run := func() Result {
			r, _ := noisyRunner(40, 0.3, 99)
			return Run(alg, r, 6)
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s not deterministic under fixed seed", alg.Name())
		}
	}
}

func TestValidateKPanics(t *testing.T) {
	r, _ := exactRunner(10, 1)
	for _, k := range []int{0, -1, 11} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d did not panic", k)
				}
			}()
			Run(NewSPR(), r, k)
		}()
	}
}

func TestSPRKEqualsN(t *testing.T) {
	r, src := exactRunner(8, 3)
	got := Run(NewSPR(), r, 8)
	if !reflect.DeepEqual(got.TopK, dataset.Order(src)) {
		t.Errorf("k=N: %v, want full order %v", got.TopK, dataset.Order(src))
	}
}

func TestSPRConfigPanics(t *testing.T) {
	r, _ := exactRunner(10, 4)
	for _, s := range []*SPR{{C: 1.0, MaxRefChanges: 2}, {C: 1.5, MaxRefChanges: -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SPR %+v did not panic", s)
				}
			}()
			s.TopK(r, 3)
		}()
	}
}

func TestSPRCheaperThanBaselinesOnLargerInstance(t *testing.T) {
	// The headline Table 7 shape at test scale: SPR's TMC beats TourTree
	// and QuickSelect, and PBR is the most expensive by far.
	const n, k = 150, 10
	cost := map[string]int64{}
	for _, alg := range allAlgorithms() {
		var total int64
		for rep := 0; rep < 2; rep++ {
			src := dataset.NewSynthetic(n, 0.3, int64(500+rep))
			eng := crowd.NewEngine(src, rand.New(rand.NewSource(int64(600+rep))))
			r := compare.NewRunner(eng, compare.NewStudent(0.02), compare.Params{B: 500, I: 30, Step: 30})
			total += Run(alg, r, k).TMC
		}
		cost[alg.Name()] = total
	}
	if cost["spr"] >= cost["tourtree"] {
		t.Errorf("SPR (%d) not cheaper than TourTree (%d)", cost["spr"], cost["tourtree"])
	}
	if cost["spr"] >= cost["quickselect"] {
		t.Errorf("SPR (%d) not cheaper than QuickSelect (%d)", cost["spr"], cost["quickselect"])
	}
	// At paper scale the PBR/SPR gap is 10-20×; at this test scale assert
	// the direction only (the full-scale gap is exercised by the Table 7
	// bench).
	if cost["pbr"] <= cost["spr"] {
		t.Errorf("PBR (%d) not above SPR (%d)", cost["pbr"], cost["spr"])
	}
}

func TestHeapSortLatencyWorstQuickSelectBest(t *testing.T) {
	// §5.5's latency ordering at test scale.
	const n, k = 120, 10
	rounds := map[string]int64{}
	for _, alg := range []Algorithm{NewSPR(), HeapSort{}, QuickSelect{}} {
		src := dataset.NewSynthetic(n, 0.3, 700)
		eng := crowd.NewEngine(src, rand.New(rand.NewSource(701)))
		r := compare.NewRunner(eng, compare.NewStudent(0.02), compare.Params{B: 500, I: 30, Step: 30})
		rounds[alg.Name()] = Run(alg, r, k).Rounds
	}
	if rounds["heapsort"] <= rounds["spr"] {
		t.Errorf("heap sort rounds (%d) not above SPR (%d)", rounds["heapsort"], rounds["spr"])
	}
	if rounds["heapsort"] <= rounds["quickselect"] {
		t.Errorf("heap sort rounds (%d) not above quickselect (%d)", rounds["heapsort"], rounds["quickselect"])
	}
}
