package topk

import (
	"math/rand"
	"reflect"
	"testing"

	"crowdtopk/internal/compare"
	"crowdtopk/internal/crowd"
	"crowdtopk/internal/dataset"
)

// runnerAt builds a runner over a fresh synthetic dataset with the given
// worker-pool bound; everything else matches noisyRunner.
func runnerAt(n int, noise float64, seed int64, parallelism int) *compare.Runner {
	src := dataset.NewSynthetic(n, noise, seed)
	eng := crowd.NewEngine(src, rand.New(rand.NewSource(seed+2000)))
	return compare.NewRunner(eng, compare.NewStudent(0.05),
		compare.Params{B: 300, I: 30, Step: 30, Parallelism: parallelism})
}

// TestCompareAllParallelEquivalence is the core determinism contract of the
// concurrent engine: compareAll over the same pair list — duplicates, both
// orientations and identical-item pairs included — returns byte-identical
// outcomes, cost and latency whether waves run on one goroutine or eight.
func TestCompareAllParallelEquivalence(t *testing.T) {
	const n = 30
	var pairs [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < i+5 && j < n; j++ {
			pairs = append(pairs, [2]int{i, j})
			if j%2 == 0 {
				pairs = append(pairs, [2]int{j, i}) // flipped duplicate
			}
		}
	}
	pairs = append(pairs, [2]int{4, 4}, [2]int{0, 1}) // self pair + plain duplicate

	for _, seed := range []int64{501, 502, 503} {
		r1 := runnerAt(n, 0.25, seed, 1)
		r8 := runnerAt(n, 0.25, seed, 8)
		out1 := compareAll(r1, pairs)
		out8 := compareAll(r8, pairs)
		if !reflect.DeepEqual(out1, out8) {
			t.Errorf("seed %d: outcomes diverged\n p=1: %v\n p=8: %v", seed, out1, out8)
		}
		e1, e8 := r1.Engine(), r8.Engine()
		if e1.TMC() != e8.TMC() || e1.Rounds() != e8.Rounds() {
			t.Errorf("seed %d: accounting diverged: TMC %d vs %d, rounds %d vs %d",
				seed, e1.TMC(), e8.TMC(), e1.Rounds(), e8.Rounds())
		}
		for _, p := range pairs {
			if p[0] == p[1] {
				continue
			}
			if v1, v8 := e1.View(p[0], p[1]), e8.View(p[0], p[1]); v1 != v8 {
				t.Errorf("seed %d: pair %v bags diverged: %+v vs %+v", seed, p, v1, v8)
			}
		}
	}
}

// TestAlgorithmsParallelEquivalence runs every confidence-aware algorithm
// end to end at Parallelism 1 and 8 over two synthetic datasets and several
// k: the full Result — answer, cost, latency — must be identical.
func TestAlgorithmsParallelEquivalence(t *testing.T) {
	datasets := []struct {
		n     int
		noise float64
	}{
		{40, 0.2},
		{70, 0.35},
	}
	for _, alg := range allAlgorithms() {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			for _, d := range datasets {
				for _, k := range []int{3, 8} {
					seed := int64(600 + 10*d.n + k)
					seq := Run(alg, runnerAt(d.n, d.noise, seed, 1), k)
					par := Run(alg, runnerAt(d.n, d.noise, seed, 8), k)
					if !reflect.DeepEqual(seq, par) {
						t.Errorf("n=%d k=%d: results diverged\n p=1: %+v\n p=8: %+v", d.n, k, seq, par)
					}
				}
			}
		})
	}
}

// TestParallelAccountingInvariants runs SPR with a full worker pool and
// checks the ledger arithmetic the concurrent counters must preserve, then
// repeats under a tight global cap: spending never exceeds it.
func TestParallelAccountingInvariants(t *testing.T) {
	r := runnerAt(60, 0.3, 701, 8)
	res := Run(NewSPR(), r, 8)
	e := r.Engine()
	if got := e.PairwiseTasks() + e.GradedTasks(); got != e.TMC() {
		t.Errorf("PairwiseTasks+GradedTasks = %d != TMC %d", got, e.TMC())
	}
	if res.TMC != e.TMC() {
		t.Errorf("result TMC %d != engine TMC %d", res.TMC, e.TMC())
	}

	const cap = 2000
	rCap := runnerAt(60, 0.3, 701, 8)
	rCap.Engine().SetSpendingCap(cap)
	capped := Run(NewSPR(), rCap, 8)
	if capped.TMC > cap {
		t.Errorf("capped run spent %d > cap %d", capped.TMC, cap)
	}
	if got := rCap.Engine().TMC(); got > cap {
		t.Errorf("engine spent %d > cap %d", got, cap)
	}
	if len(capped.TopK) != 8 {
		t.Errorf("capped run returned %d items, want best-effort 8", len(capped.TopK))
	}
}

// FuzzCompareAllGrouping feeds compareAll arbitrary pair lists and checks
// the grouping/orientation algebra: requests for the same unordered pair
// agree up to Flip, identical-item pairs are ties, and the whole batch is
// reproducible.
func FuzzCompareAllGrouping(f *testing.F) {
	f.Add([]byte{0, 1, 1, 0, 2, 2}, int64(1))
	f.Add([]byte{5, 9, 9, 5, 5, 9, 3, 3}, int64(7))
	f.Add([]byte{}, int64(3))
	f.Fuzz(func(t *testing.T, raw []byte, seed int64) {
		const n = 10
		if len(raw) > 64 {
			raw = raw[:64]
		}
		pairs := make([][2]int, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			pairs = append(pairs, [2]int{int(raw[i]) % n, int(raw[i+1]) % n})
		}

		r := runnerAt(n, 0.2, seed, 4)
		out := compareAll(r, pairs)
		if len(out) != len(pairs) {
			t.Fatalf("got %d outcomes for %d pairs", len(out), len(pairs))
		}
		verdict := map[[2]int]compare.Outcome{}
		for idx, p := range pairs {
			if p[0] == p[1] {
				if out[idx] != compare.Tie {
					t.Fatalf("self pair %v resolved to %v", p, out[idx])
				}
				continue
			}
			key := [2]int{p[0], p[1]}
			o := out[idx]
			if key[0] > key[1] {
				key[0], key[1] = key[1], key[0]
				o = o.Flip()
			}
			if prev, ok := verdict[key]; ok && prev != o {
				t.Fatalf("pair %v got both %v and %v (canonical)", key, prev, o)
			}
			verdict[key] = o
		}

		// The batch is reproducible: a fresh sequential runner with the
		// same seed returns the same outcomes.
		again := compareAll(runnerAt(n, 0.2, seed, 1), pairs)
		if !reflect.DeepEqual(out, again) {
			t.Fatalf("rerun diverged:\n first: %v\n again: %v", out, again)
		}
	})
}
