package topk

import (
	"crowdtopk/internal/compare"
	"crowdtopk/internal/sched"
)

// partitionResult is the three-way split of Algorithm 4: winners beat the
// final reference at confidence 1−α, losers lose to it, and ties exhausted
// their pairwise budget undecided. The final reference is added into
// winners when winners would otherwise fall short of k (Algorithm 4,
// line 13).
type partitionResult struct {
	winners []int
	ties    []int
	losers  []int
	// ref is the final reference item (it may differ from the initial one
	// after reference changes).
	ref int
	// refInWinners reports whether ref was added back into winners.
	refInWinners bool
	// refChanges counts how many times the reference was upgraded.
	refChanges int
}

// partition implements Algorithm 4 (PARTITION): every item is compared
// with the reference incrementally — one batch per still-tied item per
// round, all items advancing in parallel — deferring difficult
// comparisons as long as possible. Whenever k confirmed winners
// accumulate, the reference may be upgraded to the estimated k-th best
// winner (Lines 9-12; at most maxRefChanges times, cf. Table 4), which
// reactivates the still-tied comparisons against a reference closer to
// o_k* (Lemma 4).
//
// In deterministic mode the items advance in lockstep passes on the
// control goroutine, exactly reproducing the historical sequential
// execution; in async mode each item races the reference as its own
// free-running chain on the scheduler (partitionAsync).
func partition(r *compare.Runner, items []int, k, ref, maxRefChanges int) partitionResult {
	if r.AsyncMode() {
		return partitionAsync(r, items, k, ref, maxRefChanges)
	}
	var winners, losers []int
	changes := 0

	// active holds items still racing against the current reference;
	// exhausted holds items whose pairwise budget ran out undecided.
	active := make([]int, 0, len(items)-1)
	for _, o := range items {
		if o != ref {
			active = append(active, o)
		}
	}
	var exhausted []int

	for len(active) > 0 {
		kept := make([]int, 0, len(active))
		for idx := 0; idx < len(active); idx++ {
			o := active[idx]
			out, done := r.Advance(o, ref)
			if !done {
				kept = append(kept, o)
				continue
			}
			switch out {
			case compare.FirstWins:
				winners = append(winners, o)
			case compare.SecondWins:
				losers = append(losers, o)
			default:
				exhausted = append(exhausted, o)
			}

			if len(winners) == k && changes < maxRefChanges {
				// Lines 9-12: the estimated k-th best winner r' satisfies
				// o_k* ⪰ r' ≻ r, a strictly better reference (Lemma 4).
				newRef, ok := estimatedKth(r, winners, ref)
				if !ok {
					continue // no winner has evidence against this ref yet
				}
				changes++
				losers = append(losers, ref)
				winners = removeItem(winners, newRef)
				ref = newRef
				// Budget-exhausted ties get a fresh race against the new
				// reference; unprocessed items simply continue against it.
				kept = append(kept, exhausted...)
				kept = append(kept, active[idx+1:]...)
				exhausted = nil
				break
			}
		}
		r.Tick(1)
		active = kept
	}

	res := partitionResult{
		winners:    winners,
		ties:       exhausted,
		losers:     losers,
		ref:        ref,
		refChanges: changes,
	}
	if len(res.winners) < k {
		// Line 13: the reference itself is a top-k candidate.
		res.winners = append(res.winners, ref)
		res.refInWinners = true
	}
	return res
}

// partitionAsync is Algorithm 4 on free-running chains: every item races
// the current reference as its own comparison process on the shared
// scheduler, and a decided item immediately frees its pool slot instead
// of waiting for the round's stragglers. Reference upgrades take effect
// at each chain's next step: a batch that was in flight against the old
// reference still counts (its samples are banked per pair), but the
// chain's continuation — and its classification — happen against the
// current reference only. Latency is the high-water mark of per-chain
// rounds.
func partitionAsync(r *compare.Runner, items []int, k, ref, maxRefChanges int) partitionResult {
	q, release := r.Borrow()
	defer release()

	var winners, losers, exhausted []int
	changes := 0
	cur := ref

	type race struct {
		item  int
		ref   int // reference the last submitted batch ran against
		round int64
		out   compare.Outcome
		done  bool
	}
	races := make(map[int64]*race)
	var nextTag, ticked int64
	inflight := 0

	submit := func(tag int64, rc *race) {
		rc.ref = cur
		q.Submit(sched.Task{Tag: tag, Round: rc.round + 1, Run: func() {
			rc.out, rc.done = r.Advance(rc.item, rc.ref)
		}})
		inflight++
	}
	start := func(item int) {
		rc := &race{item: item, round: ticked}
		tag := nextTag
		nextTag++
		races[tag] = rc
		submit(tag, rc)
	}

	for _, o := range items {
		if o != cur {
			start(o)
		}
	}
	for inflight > 0 {
		tag := q.Next()
		inflight--
		rc := races[tag]
		// A stopped query's pending steps are dropped by the scheduler and
		// delivered unrun. Classify such races inline: Advance on a stopped
		// runner purchases nothing and reports the best-effort verdict, so
		// the drain terminates instead of resubmitting dropped work forever.
		if r.Stopped() && (!rc.done || rc.ref != cur) {
			rc.out, rc.done = r.Advance(rc.item, cur)
			rc.ref = cur
		}
		rc.round++
		if rc.round > ticked {
			r.Tick(int(rc.round - ticked))
			ticked = rc.round
		}
		if rc.ref != cur {
			// The reference was upgraded while this batch was in flight:
			// whatever the old race concluded, the item must be classified
			// against the current reference. Its samples are banked, so
			// the switch costs only the comparisons not yet bought.
			submit(tag, rc)
			continue
		}
		if !rc.done {
			submit(tag, rc)
			continue
		}
		delete(races, tag)
		switch rc.out {
		case compare.FirstWins:
			winners = append(winners, rc.item)
		case compare.SecondWins:
			losers = append(losers, rc.item)
		default:
			exhausted = append(exhausted, rc.item)
		}
		if len(winners) == k && changes < maxRefChanges {
			newRef, ok := estimatedKth(r, winners, cur)
			if ok {
				changes++
				losers = append(losers, cur)
				winners = removeItem(winners, newRef)
				cur = newRef
				// Budget-exhausted ties get a fresh race against the new
				// reference; in-flight chains pick it up at their next step.
				for _, o := range exhausted {
					start(o)
				}
				exhausted = nil
			}
		}
	}

	res := partitionResult{
		winners:    winners,
		ties:       exhausted,
		losers:     losers,
		ref:        cur,
		refChanges: changes,
	}
	if len(res.winners) < k {
		// Line 13: the reference itself is a top-k candidate.
		res.winners = append(res.winners, cur)
		res.refInWinners = true
	}
	return res
}

// estimatedKth returns the winner with the k-th best (here: smallest,
// since all winners beat the reference) estimated preference mean against
// the current reference — the paper's r', satisfying o_k* ⪰ r' ≻ r.
// Two guards keep the upgrade honest. Only winners with purchased evidence
// against the current reference are candidates: after an earlier upgrade
// the winner set mixes items concluded against older references, and an
// unsampled pair's zero mean would otherwise always win the argmin and
// promote an item whose relation to the current reference is unknown,
// breaking the r' ≻ r chain. And the candidate means must discriminate:
// when every candidate shows the same mean (e.g. exactly +1 on noiseless
// data) the argmin carries no ranking information and an arbitrary upgrade
// could overshoot past o_k*, so the upgrade is skipped. The second result
// is false when no informative candidate exists.
func estimatedKth(r *compare.Runner, winners []int, ref int) (int, bool) {
	best := -1
	var bestMean, maxMean float64
	for _, w := range winners {
		v := r.Engine().View(w, ref)
		if v.N == 0 {
			continue
		}
		if best < 0 {
			best, bestMean, maxMean = w, v.Mean, v.Mean
			continue
		}
		if v.Mean < bestMean {
			best, bestMean = w, v.Mean
		}
		if v.Mean > maxMean {
			maxMean = v.Mean
		}
	}
	if best < 0 || bestMean == maxMean {
		return ref, false
	}
	return best, true
}

func removeItem(items []int, x int) []int {
	out := items[:0]
	for _, o := range items {
		if o != x {
			out = append(out, o)
		}
	}
	return out
}
