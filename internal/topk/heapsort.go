package topk

import "crowdtopk/internal/compare"

// HeapSort answers top-k queries with a crowd-backed min-heap of k
// candidates (§4.2): the heap root is the worst current candidate; every
// remaining item is tested against the root and replaces it on a win.
// Expected cost is O(Nw·logk). The scan is inherently sequential, which is
// why the paper reports heap sort's latency as the worst of all methods
// (§5.5).
type HeapSort struct{}

// Name implements Algorithm.
func (HeapSort) Name() string { return "heapsort" }

// TopK implements Algorithm.
func (HeapSort) TopK(r *compare.Runner, k int) []int {
	validateK(r, k)
	n := r.Engine().NumItems()
	perm := r.Rand().Perm(n)

	// heap[0] is the worst candidate (min-heap in quality).
	heap := append([]int(nil), perm[:k]...)
	for i := k/2 - 1; i >= 0; i-- {
		siftDown(r, heap, i)
	}

	for _, o := range perm[k:] {
		// If o beats the worst candidate, it becomes a candidate.
		if better(r, o, heap[0]) {
			heap[0] = o
			siftDown(r, heap, 0)
		}
	}

	// Extract candidates worst-first, then reverse into best-first order.
	out := make([]int, k)
	for i := k - 1; i >= 0; i-- {
		last := len(heap) - 1
		out[i] = heap[0]
		heap[0] = heap[last]
		heap = heap[:last]
		if len(heap) > 1 {
			siftDown(r, heap, 0)
		}
	}
	return out
}

// siftDown restores the min-heap property below position i: a parent must
// be worse than (lose to) its children.
func siftDown(r *compare.Runner, heap []int, i int) {
	n := len(heap)
	for {
		worst := i
		if l := 2*i + 1; l < n && better(r, heap[worst], heap[l]) {
			worst = l
		}
		if rt := 2*i + 2; rt < n && better(r, heap[worst], heap[rt]) {
			worst = rt
		}
		if worst == i {
			return
		}
		heap[i], heap[worst] = heap[worst], heap[i]
		i = worst
	}
}
