package topk

import (
	"sort"

	"crowdtopk/internal/compare"
	"crowdtopk/internal/stats"
)

// PBR is the preference-based racing baseline after Busa-Fekete et al.
// (ICML 2013), as used in the paper's Table 7: top-k selection from
// pairwise *binary* judgments with distribution-free Hoeffding races. Each
// item races on its Borda score y_i = Pr{i beats a uniformly random
// opponent}; an item is selected once at most k undecided items can still
// have a higher score, and discarded once at least k undecided items
// surely beat it. Because binary votes carry far less information than
// graded preferences (Appendix D), PBR needs an order of magnitude more
// microtasks than the preference-based methods — which is exactly why the
// paper drops it after Table 7.
type PBR struct {
	// Alpha is the racing significance level; the intervals use a union
	// bound over items and rounds, as in Hoeffding races.
	Alpha float64
	// MaxSamplesPerItem caps each item's race — the per-item analogue of
	// the pairwise budget B. 0 means: use the runner's B.
	MaxSamplesPerItem int
}

// NewPBR returns PBR at the paper's default confidence (1−α = 0.98).
func NewPBR() *PBR { return &PBR{Alpha: 0.02} }

// Name implements Algorithm.
func (*PBR) Name() string { return "pbr" }

// TopK implements Algorithm.
func (p *PBR) TopK(r *compare.Runner, k int) []int {
	validateK(r, k)
	n := r.Engine().NumItems()
	rng := r.Rand()

	// Racing on Borda scores needs far more samples per item than a single
	// pairwise process needs per pair: near the selection boundary the
	// score gaps shrink like 1/N. Busa-Fekete et al. run the race
	// δ-driven; the default cap of 4B keeps it finite while preserving the
	// order-of-magnitude gap the paper reports (Table 7).
	limit := p.MaxSamplesPerItem
	if limit <= 0 && r.Params().B > 0 {
		limit = 4 * r.Params().B
	}
	if limit <= 0 {
		limit = 1 << 20 // unlimited runner: racing still needs a bound
	}

	wins := make([]float64, n) // 1 per win, 0.5 per unidentifiable vote
	count := make([]int, n)
	state := make([]int8, n) // 0 undecided, 1 selected, -1 discarded
	nSelected, nDiscarded := 0, 0

	delta := p.Alpha / float64(n*limit)

	half := func(i int) float64 {
		if count[i] == 0 {
			return 0.5
		}
		return stats.HoeffdingHalfWidth(count[i], 1, delta)
	}
	point := func(i int) float64 {
		if count[i] == 0 {
			return 0.5
		}
		return wins[i] / float64(count[i])
	}

	for nSelected < k && n-nDiscarded > k {
		// One racing round: every racing item buys one binary vote
		// against a uniformly random opponent; all purchases share one
		// latency round. Opponents are drawn on the control goroutine
		// (deterministic), then the round's purchases fan out across the
		// shared scheduler. The round boundary is inherent to racing —
		// the confidence bounds need every vote of the round — so PBR
		// keeps its barrier in both scheduling modes.
		var reqs [][2]int
		var who []int
		for i := 0; i < n; i++ {
			if state[i] != 0 || count[i] >= limit {
				continue
			}
			j := rng.Intn(n - 1)
			if j >= i {
				j++
			}
			reqs = append(reqs, [2]int{i, j})
			who = append(who, i)
		}
		results := drawAll(r, reqs)
		progressed := false
		for t, i := range who {
			if !results[t].ok {
				continue // global spending cap exhausted
			}
			v := results[t].v
			count[i]++
			switch {
			case v > 0:
				wins[i]++
			case v == 0:
				wins[i] += 0.5
			}
			progressed = true
		}
		r.Tick(1)

		// Bounds of the undecided items, sorted for tail counting.
		var lcbs, ucbs []float64
		for i := 0; i < n; i++ {
			if state[i] == 0 {
				h := half(i)
				lcbs = append(lcbs, point(i)-h)
				ucbs = append(ucbs, point(i)+h)
			}
		}
		sort.Float64s(lcbs)
		sort.Float64s(ucbs)

		for i := 0; i < n; i++ {
			if state[i] != 0 {
				continue
			}
			h := half(i)
			li, ui := point(i)-h, point(i)+h
			// Undecided items (incl. i itself) whose UCB exceeds i's LCB:
			// only those can still rank above i.
			above := len(ucbs) - sort.SearchFloat64s(ucbs, li)
			if above <= k-nSelected {
				state[i] = 1
				nSelected++
				continue
			}
			// Undecided items whose LCB is at least i's UCB surely beat i.
			below := len(lcbs) - sort.SearchFloat64s(lcbs, ui)
			if below >= k-nSelected {
				state[i] = -1
				nDiscarded++
			}
		}

		if !progressed {
			break // all races capped; fall back to point estimates
		}
	}

	// Assemble the result: selected items plus the best remaining by point
	// estimate, ranked by estimated Borda score.
	var out, rest []int
	for i := 0; i < n; i++ {
		switch state[i] {
		case 1:
			out = append(out, i)
		case 0:
			rest = append(rest, i)
		}
	}
	sort.Slice(rest, func(a, b int) bool { return point(rest[a]) > point(rest[b]) })
	out = append(out, rest...)
	if len(out) < k {
		// Pathological: too many discards (possible only with tiny limits).
		for i := 0; i < n && len(out) < k; i++ {
			if state[i] == -1 {
				out = append(out, i)
			}
		}
	}
	out = out[:k]
	sort.Slice(out, func(a, b int) bool { return point(out[a]) > point(out[b]) })
	return out
}
