package topk

import (
	"fmt"

	"crowdtopk/internal/compare"
	"crowdtopk/internal/obs"
)

// Algorithm is a crowdsourced top-k query processor: given a comparison
// runner over N items and a query parameter k, it returns the k best items
// in ranked order (best first). Implementations spend money and latency
// only through the runner.
type Algorithm interface {
	// Name identifies the algorithm in reports ("spr", "tourtree", ...).
	Name() string
	// TopK answers the query. 1 <= k <= N is required.
	TopK(r *compare.Runner, k int) []int
}

// Result captures the outcome and cost of one query run.
type Result struct {
	// Algorithm is the processor that produced the result.
	Algorithm string
	// TopK holds the returned items, best first.
	TopK []int
	// TMC is the total monetary cost: microtasks purchased during the run.
	TMC int64
	// Rounds is the query latency in batch rounds.
	Rounds int64
	// Err is the platform failure that degraded the engine during the
	// run, if any. When non-nil, TopK is a best-effort answer computed
	// from the evidence purchased before (and during) the failure, and
	// TMC is still exact — only delivered answers were charged.
	Err error
}

// Run executes alg on a fresh accounting window of the runner and
// returns the result with cost deltas attributed to this run. The
// runner's per-query accounting makes the deltas exact even while other
// queries (forked runners) share the engine and its spending cap. Run
// borrows the query's scheduler handle for the whole execution, so the
// algorithm's comparison waves — and even its sequential comparisons —
// share the session's worker pool fairly with concurrent queries. When
// the runner carries a tracer, the whole run is recorded under one
// "query" root span: phases nest under it, comparison spans under the
// phases.
func Run(alg Algorithm, r *compare.Runner, k int) Result {
	validateK(r, k)
	e := r.Engine()
	_, release := r.Borrow()
	defer release()
	tmc0, rounds0 := r.QueryTMC(), r.QueryRounds()

	var span *obs.ActiveSpan
	var prevParent obs.SpanID
	if tr := r.Tracer(); tr != nil {
		prevParent = r.ParentSpan()
		span = tr.Start("query", prevParent)
		span.SetLabel("algorithm", alg.Name())
		span.SetAttr("k", float64(k))
		r.SetParentSpan(span.ID())
	}

	items := alg.TopK(r, k)
	if len(items) != k {
		panic(fmt.Sprintf("topk: %s returned %d items, want %d", alg.Name(), len(items), k))
	}
	res := Result{
		Algorithm: alg.Name(),
		TopK:      items,
		TMC:       r.QueryTMC() - tmc0,
		Rounds:    r.QueryRounds() - rounds0,
		Err:       e.Err(),
	}
	if span != nil {
		// Close the spans of comparisons the algorithm abandoned mid-wave
		// (reference upgrades) so the trace covers every process started.
		r.FlushOpenComparisons()
		span.SetAttr("tmc", float64(res.TMC))
		span.SetAttr("rounds", float64(res.Rounds))
		span.End()
		r.SetParentSpan(prevParent)
	}
	return res
}

func validateK(r *compare.Runner, k int) {
	n := r.Engine().NumItems()
	if k < 1 || k > n {
		panic(fmt.Sprintf("topk: k=%d out of range [1,%d]", k, n))
	}
}

// allItems returns [0, 1, ..., n).
func allItems(n int) []int {
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	return items
}
