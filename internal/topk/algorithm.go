package topk

import (
	"context"
	"fmt"

	"crowdtopk/internal/compare"
	"crowdtopk/internal/obs"
)

// Algorithm is a crowdsourced top-k query processor: given a comparison
// runner over N items and a query parameter k, it returns the k best items
// in ranked order (best first). Implementations spend money and latency
// only through the runner.
type Algorithm interface {
	// Name identifies the algorithm in reports ("spr", "tourtree", ...).
	Name() string
	// TopK answers the query. 1 <= k <= N is required.
	TopK(r *compare.Runner, k int) []int
}

// Result captures the outcome and cost of one query run.
type Result struct {
	// Algorithm is the processor that produced the result.
	Algorithm string
	// TopK holds the returned items, best first.
	TopK []int
	// TMC is the total monetary cost: microtasks purchased during the run.
	TMC int64
	// Rounds is the query latency in batch rounds.
	Rounds int64
	// Err is what degraded the run, if anything: a platform failure that
	// latched the engine, or the query's own stop cause — context
	// cancellation, an expired deadline, or an exhausted per-query budget
	// sub-cap. When non-nil, TopK is a best-effort answer computed from
	// the evidence purchased before (and during) the degradation, and
	// TMC is still exact — only delivered answers were charged.
	Err error
}

// Run executes alg on a fresh accounting window of the runner and
// returns the result with cost deltas attributed to this run. The
// runner's per-query accounting makes the deltas exact even while other
// queries (forked runners) share the engine and its spending cap. Run
// borrows the query's scheduler handle for the whole execution, so the
// algorithm's comparison waves — and even its sequential comparisons —
// share the session's worker pool fairly with concurrent queries. When
// the runner carries a tracer, the whole run is recorded under one
// "query" root span: phases nest under it, comparison spans under the
// phases.
func Run(alg Algorithm, r *compare.Runner, k int) Result {
	return RunContext(context.Background(), alg, r, k)
}

// RunContext is Run under a context: when ctx is canceled or its
// deadline expires, the query's stop latch is set (purchases decline,
// pending scheduler tasks are dropped, in-flight comparison chains
// drain) and the algorithm concludes best-effort on the evidence it
// already paid for. The Result then carries the exact spend and
// context.Cause(ctx) in Err. A ctx that is already canceled yields a
// zero-spend best-effort run.
func RunContext(ctx context.Context, alg Algorithm, r *compare.Runner, k int) Result {
	validateK(r, k)
	e := r.Engine()
	_, release := r.Borrow()
	defer release()
	if ctx != nil && ctx.Done() != nil {
		if err := context.Cause(ctx); err != nil {
			// Already canceled: latch synchronously so the run is
			// guaranteed zero-spend, not merely likely so (AfterFunc
			// fires on its own goroutine and could lose the race).
			r.Stop(err)
		} else {
			// Stop must precede the handle cancel inside it, so a dropped
			// scheduler task can never be the only signal a driver sees.
			unwatch := context.AfterFunc(ctx, func() {
				r.Stop(context.Cause(ctx))
			})
			defer unwatch()
		}
	}
	tmc0, rounds0 := r.QueryTMC(), r.QueryRounds()

	var span *obs.ActiveSpan
	var prevParent obs.SpanID
	if tr := r.Tracer(); tr != nil {
		prevParent = r.ParentSpan()
		span = tr.Start("query", prevParent)
		span.SetLabel("algorithm", alg.Name())
		span.SetAttr("k", float64(k))
		r.SetParentSpan(span.ID())
	}

	items := alg.TopK(r, k)
	if len(items) != k {
		panic(fmt.Sprintf("topk: %s returned %d items, want %d", alg.Name(), len(items), k))
	}
	res := Result{
		Algorithm: alg.Name(),
		TopK:      items,
		TMC:       r.QueryTMC() - tmc0,
		Rounds:    r.QueryRounds() - rounds0,
		Err:       e.Err(),
	}
	if res.Err == nil {
		// The query's own degradation: canceled, deadline-expired, or
		// budget-stopped. A cancellation that races the final batch still
		// reports partial — the caller cannot tell a complete answer from
		// a truncated one, so the error is the honest signal.
		res.Err = r.StopCause()
	}
	if span != nil {
		// Close the spans of comparisons the algorithm abandoned mid-wave
		// (reference upgrades) so the trace covers every process started.
		r.FlushOpenComparisons()
		span.SetAttr("tmc", float64(res.TMC))
		span.SetAttr("rounds", float64(res.Rounds))
		span.End()
		r.SetParentSpan(prevParent)
	}
	return res
}

func validateK(r *compare.Runner, k int) {
	n := r.Engine().NumItems()
	if k < 1 || k > n {
		panic(fmt.Sprintf("topk: k=%d out of range [1,%d]", k, n))
	}
}

// allItems returns [0, 1, ..., n).
func allItems(n int) []int {
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	return items
}
