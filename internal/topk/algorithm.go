package topk

import (
	"fmt"

	"crowdtopk/internal/compare"
)

// Algorithm is a crowdsourced top-k query processor: given a comparison
// runner over N items and a query parameter k, it returns the k best items
// in ranked order (best first). Implementations spend money and latency
// only through the runner.
type Algorithm interface {
	// Name identifies the algorithm in reports ("spr", "tourtree", ...).
	Name() string
	// TopK answers the query. 1 <= k <= N is required.
	TopK(r *compare.Runner, k int) []int
}

// Result captures the outcome and cost of one query run.
type Result struct {
	// Algorithm is the processor that produced the result.
	Algorithm string
	// TopK holds the returned items, best first.
	TopK []int
	// TMC is the total monetary cost: microtasks purchased during the run.
	TMC int64
	// Rounds is the query latency in batch rounds.
	Rounds int64
	// Err is the platform failure that degraded the engine during the
	// run, if any. When non-nil, TopK is a best-effort answer computed
	// from the evidence purchased before (and during) the failure, and
	// TMC is still exact — only delivered answers were charged.
	Err error
}

// Run executes alg on a fresh accounting window of the runner's engine and
// returns the result with cost deltas attributed to this run.
func Run(alg Algorithm, r *compare.Runner, k int) Result {
	validateK(r, k)
	e := r.Engine()
	tmc0, rounds0 := e.TMC(), e.Rounds()
	items := alg.TopK(r, k)
	if len(items) != k {
		panic(fmt.Sprintf("topk: %s returned %d items, want %d", alg.Name(), len(items), k))
	}
	return Result{
		Algorithm: alg.Name(),
		TopK:      items,
		TMC:       e.TMC() - tmc0,
		Rounds:    e.Rounds() - rounds0,
		Err:       e.Err(),
	}
}

func validateK(r *compare.Runner, k int) {
	n := r.Engine().NumItems()
	if k < 1 || k > n {
		panic(fmt.Sprintf("topk: k=%d out of range [1,%d]", k, n))
	}
}

// allItems returns [0, 1, ..., n).
func allItems(n int) []int {
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	return items
}
