package optimize

import "testing"

// BenchmarkBFGSQuadratic100 sizes one CrowdBT-scale BFGS leg: 100
// parameters, convex objective.
func BenchmarkBFGSQuadratic100(b *testing.B) {
	const n = 100
	p := Problem{
		F: func(x []float64) float64 {
			s := 0.0
			for i := range x {
				d := x[i] - float64(i%7)
				s += d * d
			}
			return s
		},
		Grad: func(x, out []float64) {
			for i := range x {
				out[i] = 2 * (x[i] - float64(i%7))
			}
		},
	}
	x0 := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BFGS(p, x0, Options{MaxIter: 30})
	}
}
