// Package optimize provides the small numerical-optimization substrate the
// CrowdBT baseline needs: dense BFGS with Armijo backtracking line search,
// as used by the paper for the Bradley-Terry-Luce likelihood ("optimized
// by BFGS with 100 iterations", §6.5).
package optimize

import (
	"fmt"
	"math"
)

// Problem is an unconstrained minimization problem. Grad writes ∇f(x) into
// out (len(out) == len(x)).
type Problem struct {
	F    func(x []float64) float64
	Grad func(x, out []float64)
}

// Options tunes the solver. Zero values select defaults.
type Options struct {
	// MaxIter caps the BFGS iterations (default 100, the paper's setting).
	MaxIter int
	// GradTol stops the solver once the gradient ∞-norm drops below it
	// (default 1e-8).
	GradTol float64
}

// Result reports the solution found.
type Result struct {
	X         []float64
	F         float64
	Iters     int
	Converged bool
}

// BFGS minimizes the problem from x0 with the classic dense inverse-Hessian
// update. The line search is Armijo backtracking, which is sufficient for
// the smooth convex-ish likelihoods this library optimizes.
func BFGS(p Problem, x0 []float64, opt Options) Result {
	if p.F == nil || p.Grad == nil {
		panic("optimize: BFGS requires both F and Grad")
	}
	n := len(x0)
	if n == 0 {
		panic("optimize: BFGS requires a non-empty start point")
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 100
	}
	if opt.GradTol <= 0 {
		opt.GradTol = 1e-8
	}

	x := append([]float64(nil), x0...)
	fx := p.F(x)
	if math.IsNaN(fx) || math.IsInf(fx, 0) {
		panic(fmt.Sprintf("optimize: F(x0) is not finite: %v", fx))
	}
	g := make([]float64, n)
	p.Grad(x, g)

	// h is the inverse Hessian approximation, initialized to I.
	h := eye(n)
	dir := make([]float64, n)
	xNew := make([]float64, n)
	gNew := make([]float64, n)
	s := make([]float64, n)
	y := make([]float64, n)

	res := Result{X: x, F: fx}
	for iter := 0; iter < opt.MaxIter; iter++ {
		if infNorm(g) < opt.GradTol {
			res.Converged = true
			break
		}
		// dir = -H·g.
		for i := 0; i < n; i++ {
			d := 0.0
			row := h[i]
			for j := 0; j < n; j++ {
				d -= row[j] * g[j]
			}
			dir[i] = d
		}
		// Safeguard: fall back to steepest descent on a non-descent
		// direction (can happen after a skipped update).
		if dot(dir, g) >= 0 {
			for i := range dir {
				dir[i] = -g[i]
			}
		}

		step, ok := armijo(p, x, fx, g, dir, xNew)
		if !ok {
			break // no progress possible along this direction
		}
		fNew := p.F(xNew)
		p.Grad(xNew, gNew)

		for i := 0; i < n; i++ {
			s[i] = step * dir[i]
			y[i] = gNew[i] - g[i]
		}
		if sy := dot(s, y); sy > 1e-12 {
			bfgsUpdate(h, s, y, sy)
		}

		copy(x, xNew)
		copy(g, gNew)
		fx = fNew
		res.Iters = iter + 1
	}
	res.X = x
	res.F = fx
	if infNorm(g) < opt.GradTol {
		res.Converged = true
	}
	return res
}

// armijo backtracks from step 1 until the sufficient-decrease condition
// f(x+t·d) ≤ f(x) + c1·t·gᵀd holds, writing the accepted point into xNew.
func armijo(p Problem, x []float64, fx float64, g, dir, xNew []float64) (float64, bool) {
	const (
		c1     = 1e-4
		shrink = 0.5
		minT   = 1e-16
	)
	gd := dot(g, dir)
	for t := 1.0; t >= minT; t *= shrink {
		for i := range x {
			xNew[i] = x[i] + t*dir[i]
		}
		f := p.F(xNew)
		if !math.IsNaN(f) && f <= fx+c1*t*gd {
			return t, true
		}
	}
	return 0, false
}

// bfgsUpdate applies the inverse-Hessian BFGS update
// H ← (I − ρsyᵀ)H(I − ρysᵀ) + ρssᵀ with ρ = 1/sᵀy.
func bfgsUpdate(h [][]float64, s, y []float64, sy float64) {
	n := len(s)
	rho := 1 / sy
	// hy = H·y.
	hy := make([]float64, n)
	for i := 0; i < n; i++ {
		d := 0.0
		row := h[i]
		for j := 0; j < n; j++ {
			d += row[j] * y[j]
		}
		hy[i] = d
	}
	yhy := dot(y, hy)
	// H ← H − ρ(s·hyᵀ + hy·sᵀ) + ρ²(yᵀHy)ssᵀ + ρssᵀ.
	c := rho * rho * yhy
	for i := 0; i < n; i++ {
		row := h[i]
		for j := 0; j < n; j++ {
			row[j] += -rho*(s[i]*hy[j]+hy[i]*s[j]) + (c+rho)*s[i]*s[j]
		}
	}
}

func eye(n int) [][]float64 {
	h := make([][]float64, n)
	for i := range h {
		h[i] = make([]float64, n)
		h[i][i] = 1
	}
	return h
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func infNorm(a []float64) float64 {
	m := 0.0
	for _, v := range a {
		if av := math.Abs(v); av > m {
			m = av
		}
	}
	return m
}
