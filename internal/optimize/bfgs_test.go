package optimize

import (
	"math"
	"math/rand"
	"testing"
)

func TestBFGSQuadratic(t *testing.T) {
	// f(x) = Σ a_i (x_i − b_i)², minimized at b.
	a := []float64{1, 4, 0.5, 10}
	b := []float64{3, -2, 7, 0.25}
	p := Problem{
		F: func(x []float64) float64 {
			s := 0.0
			for i := range x {
				d := x[i] - b[i]
				s += a[i] * d * d
			}
			return s
		},
		Grad: func(x, out []float64) {
			for i := range x {
				out[i] = 2 * a[i] * (x[i] - b[i])
			}
		},
	}
	res := BFGS(p, make([]float64, 4), Options{})
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	for i := range b {
		if math.Abs(res.X[i]-b[i]) > 1e-6 {
			t.Errorf("x[%d] = %v, want %v", i, res.X[i], b[i])
		}
	}
	if res.F > 1e-10 {
		t.Errorf("F = %v, want ≈ 0", res.F)
	}
}

func TestBFGSRosenbrock(t *testing.T) {
	p := Problem{
		F: func(x []float64) float64 {
			a := 1 - x[0]
			b := x[1] - x[0]*x[0]
			return a*a + 100*b*b
		},
		Grad: func(x, out []float64) {
			out[0] = -2*(1-x[0]) - 400*x[0]*(x[1]-x[0]*x[0])
			out[1] = 200 * (x[1] - x[0]*x[0])
		},
	}
	res := BFGS(p, []float64{-1.2, 1}, Options{MaxIter: 500, GradTol: 1e-8})
	if math.Abs(res.X[0]-1) > 1e-4 || math.Abs(res.X[1]-1) > 1e-4 {
		t.Errorf("Rosenbrock solution %v, want (1,1); f=%v iters=%d", res.X, res.F, res.Iters)
	}
}

func TestBFGSLogistic(t *testing.T) {
	// A BTL-like logistic log-likelihood in 3 parameters; checks descent on
	// the exact structure CrowdBT optimizes.
	rng := rand.New(rand.NewSource(5))
	theta := []float64{1.5, 0, -1.5}
	type vote struct{ i, j int }
	var votes []vote
	for t2 := 0; t2 < 3000; t2++ {
		i, j := rng.Intn(3), rng.Intn(3)
		if i == j {
			continue
		}
		p := 1 / (1 + math.Exp(theta[j]-theta[i]))
		if rng.Float64() < p {
			votes = append(votes, vote{i, j})
		} else {
			votes = append(votes, vote{j, i})
		}
	}
	const lambda = 0.01
	p := Problem{
		F: func(x []float64) float64 {
			s := 0.0
			for _, v := range votes {
				s += math.Log1p(math.Exp(x[v.j] - x[v.i]))
			}
			for _, xi := range x {
				s += lambda * xi * xi
			}
			return s
		},
		Grad: func(x, out []float64) {
			for i := range out {
				out[i] = 2 * lambda * x[i]
			}
			for _, v := range votes {
				q := 1 / (1 + math.Exp(x[v.i]-x[v.j])) // σ(θj−θi)
				out[v.i] -= q
				out[v.j] += q
			}
		},
	}
	res := BFGS(p, make([]float64, 3), Options{MaxIter: 200, GradTol: 1e-7})
	// Recovered ordering must match the generator.
	if !(res.X[0] > res.X[1] && res.X[1] > res.X[2]) {
		t.Errorf("recovered scores %v do not order as 0 > 1 > 2", res.X)
	}
}

func TestBFGSMonotoneDecrease(t *testing.T) {
	// Every accepted iterate must not increase f; probe via a wrapper.
	var seen []float64
	p := Problem{
		F: func(x []float64) float64 {
			return math.Cosh(x[0]) + x[1]*x[1]*0.5
		},
		Grad: func(x, out []float64) {
			out[0] = math.Sinh(x[0])
			out[1] = x[1]
		},
	}
	wrapped := Problem{
		F:    p.F,
		Grad: p.Grad,
	}
	x := []float64{2, -3}
	fPrev := p.F(x)
	for iter := 0; iter < 10; iter++ {
		res := BFGS(wrapped, x, Options{MaxIter: 1})
		if res.F > fPrev+1e-12 {
			t.Fatalf("iteration increased f: %v -> %v", fPrev, res.F)
		}
		seen = append(seen, res.F)
		fPrev = res.F
		x = res.X
	}
	if seen[len(seen)-1] >= seen[0] {
		t.Errorf("no overall progress: %v", seen)
	}
}

func TestBFGSPanics(t *testing.T) {
	assertPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	ok := Problem{
		F:    func(x []float64) float64 { return x[0] * x[0] },
		Grad: func(x, out []float64) { out[0] = 2 * x[0] },
	}
	assertPanic("nil F", func() { BFGS(Problem{Grad: ok.Grad}, []float64{1}, Options{}) })
	assertPanic("nil Grad", func() { BFGS(Problem{F: ok.F}, []float64{1}, Options{}) })
	assertPanic("empty x0", func() { BFGS(ok, nil, Options{}) })
	assertPanic("non-finite f", func() {
		BFGS(Problem{
			F:    func(x []float64) float64 { return math.NaN() },
			Grad: func(x, out []float64) {},
		}, []float64{1}, Options{})
	})
}
