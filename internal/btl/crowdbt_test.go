package btl

import (
	"math/rand"
	"testing"

	"crowdtopk/internal/compare"
	"crowdtopk/internal/crowd"
	"crowdtopk/internal/dataset"
)

func newEngine(n int, noise float64, seed int64) (*crowd.Engine, dataset.Source) {
	src := dataset.NewSynthetic(n, noise, seed)
	return crowd.NewEngine(src, rand.New(rand.NewSource(seed+1))), src
}

func TestCrowdBTSpendsExactBudget(t *testing.T) {
	e, _ := newEngine(20, 0.3, 1)
	c := NewCrowdBT(2000)
	c.Rank(e)
	if got := e.TMC(); got != 2000 {
		t.Errorf("TMC = %d, want exactly the budget 2000", got)
	}
	if e.Rounds() <= 0 {
		t.Error("no latency recorded")
	}
}

func TestCrowdBTRecoversOrderWithGenerousBudget(t *testing.T) {
	e, src := newEngine(15, 0.2, 2)
	c := NewCrowdBT(12000)
	got := c.Rank(e)
	if len(got) != 15 {
		t.Fatalf("ranking has %d items", len(got))
	}
	// With a generous budget the top third must be mostly right.
	want := map[int]bool{}
	for _, o := range dataset.TopK(src, 5) {
		want[o] = true
	}
	hits := 0
	for _, o := range got[:5] {
		if want[o] {
			hits++
		}
	}
	if hits < 3 {
		t.Errorf("top-5 overlap %d/5 too low; got %v", hits, got[:5])
	}
}

func TestCrowdBTDegradesWithTinyBudget(t *testing.T) {
	// The §6.5 observation: insufficient budget leaves scores poorly
	// estimated. A tiny budget must do visibly worse than a generous one.
	score := func(budget int64) int {
		hits := 0
		for rep := int64(0); rep < 3; rep++ {
			e, src := newEngine(30, 0.3, 100+rep)
			got := NewCrowdBT(budget).Rank(e)
			want := map[int]bool{}
			for _, o := range dataset.TopK(src, 5) {
				want[o] = true
			}
			for _, o := range got[:5] {
				if want[o] {
					hits++
				}
			}
		}
		return hits
	}
	rich, poor := score(15000), score(150)
	if poor >= rich {
		t.Errorf("tiny budget (%d hits) not worse than generous (%d hits)", poor, rich)
	}
}

func TestCrowdBTTopKFacade(t *testing.T) {
	e, _ := newEngine(12, 0.25, 3)
	r := compare.NewRunner(e, compare.NewStudent(0.05), compare.DefaultParams())
	c := NewCrowdBT(3000)
	top := c.TopK(r, 4)
	if len(top) != 4 {
		t.Fatalf("TopK returned %d items", len(top))
	}
	seen := map[int]bool{}
	for _, o := range top {
		if o < 0 || o >= 12 || seen[o] {
			t.Fatalf("invalid top-k %v", top)
		}
		seen[o] = true
	}
	if c.Name() != "crowdbt" {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestCrowdBTDeterministic(t *testing.T) {
	run := func() []int {
		e, _ := newEngine(15, 0.3, 7)
		return NewCrowdBT(2000).Rank(e)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestCrowdBTPanics(t *testing.T) {
	e, _ := newEngine(10, 0.3, 8)
	assertPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanic("zero budget", func() { NewCrowdBT(0).Rank(e) })
	assertPanic("bad k", func() {
		r := compare.NewRunner(e, compare.NewStudent(0.05), compare.DefaultParams())
		NewCrowdBT(100).TopK(r, 0)
	})
}

func TestCrowdBTActiveBeatsRandomAtTightBudget(t *testing.T) {
	// Active pair selection concentrates votes on uncertain pairs; with a
	// tight budget it should recover the top items at least as well as
	// uniform sampling, usually better.
	score := func(active bool) int {
		hits := 0
		for rep := int64(0); rep < 4; rep++ {
			e, src := newEngine(30, 0.3, 300+rep)
			c := NewCrowdBT(2500)
			c.Active = active
			got := c.Rank(e)
			want := map[int]bool{}
			for _, o := range dataset.TopK(src, 5) {
				want[o] = true
			}
			for _, o := range got[:5] {
				if want[o] {
					hits++
				}
			}
		}
		return hits
	}
	random, active := score(false), score(true)
	if active < random-2 {
		t.Errorf("active selection (%d hits) clearly worse than random (%d)", active, random)
	}
}

func TestCrowdBTActiveSpendsExactBudget(t *testing.T) {
	e, _ := newEngine(15, 0.3, 310)
	c := NewCrowdBT(1234)
	c.Active = true
	c.Rank(e)
	if got := e.TMC(); got != 1234 {
		t.Errorf("active TMC = %d, want 1234", got)
	}
}
