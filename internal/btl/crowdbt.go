// Package btl implements the CrowdBT baseline of Chen et al. (WSDM 2013)
// as evaluated in the paper's §6.5: a Bradley-Terry-Luce model over
// pairwise binary votes with per-worker quality, fitted by BFGS under a
// fixed monetary budget (the paper grants it the same budget as SPR's
// measured TMC for fairness).
package btl

import (
	"fmt"
	"math"
	"sort"

	"crowdtopk/internal/compare"
	"crowdtopk/internal/crowd"
	"crowdtopk/internal/optimize"
)

// vote records that worker w preferred item i over item j.
type vote struct{ w, i, j int }

// CrowdBT ranks items from crowdsourced binary votes under the BTL model
// P(i ≻ j | worker w) = η_w·σ(θ_i−θ_j) + (1−η_w)·σ(θ_j−θ_i), alternating
// worker-quality EM updates with BFGS passes over the item scores.
type CrowdBT struct {
	// Budget is the number of microtasks to spend. Budget <= 0 panics: the
	// whole point of the baseline is budgeted operation.
	Budget int64
	// Workers is the size of the simulated worker pool votes are
	// attributed to (default 50).
	Workers int
	// Iterations is the total number of BFGS iterations (default 100, the
	// paper's setting), split across the EM rounds.
	Iterations int
	// EMRounds alternates score fitting and worker-quality updates
	// (default 3).
	EMRounds int
	// Lambda is the L2 regularization on scores (default 0.01).
	Lambda float64
	// Eta is the batch size for latency accounting (default 30).
	Eta int
	// Active switches from uniform random pair selection to an adaptive
	// scheme in the spirit of Chen et al.: the budget is spent in stages
	// with the model refit in between, and later stages focus their votes
	// on the head of the current ranking — the items whose relative order
	// decides a top-k answer. (Pure uncertainty sampling is deliberately
	// avoided: it sinks the budget into genuinely tied pairs, the very
	// pathology the paper's workload model warns about.)
	Active bool
	// Stages is the number of refit stages in active mode (default 10).
	Stages int
	// FocusHead is the size of the ranking head active stages concentrate
	// on (default max(10, n/5)).
	FocusHead int
}

// NewCrowdBT returns CrowdBT with the defaults above and the given budget.
func NewCrowdBT(budget int64) *CrowdBT {
	return &CrowdBT{Budget: budget, Workers: 50, Iterations: 100, EMRounds: 3, Lambda: 0.01, Eta: 30}
}

// Name implements topk.Algorithm.
func (*CrowdBT) Name() string { return "crowdbt" }

// TopK implements topk.Algorithm: the first k items of Rank.
func (c *CrowdBT) TopK(r *compare.Runner, k int) []int {
	scores := c.Rank(r.Engine())
	if k < 1 || k > len(scores) {
		panic(fmt.Sprintf("btl: k=%d out of range [1,%d]", k, len(scores)))
	}
	return scores[:k]
}

// Rank buys Budget random binary votes through the engine, fits the
// CrowdBT model, and returns all items ranked best-first by fitted score.
func (c *CrowdBT) Rank(e *crowd.Engine) []int {
	if c.Budget <= 0 {
		panic("btl: CrowdBT requires a positive budget")
	}
	workers := c.Workers
	if workers <= 0 {
		workers = 50
	}
	iters := c.Iterations
	if iters <= 0 {
		iters = 100
	}
	emRounds := c.EMRounds
	if emRounds <= 0 {
		emRounds = 3
	}
	eta := c.Eta
	if eta <= 0 {
		eta = 30
	}

	n := e.NumItems()
	rng := e.Rand()

	theta := make([]float64, n)
	quality := make([]float64, workers)
	for w := range quality {
		quality[w] = 0.9 // optimistic prior, as in Chen et al.
	}

	// Spend the budget on binary votes: uniformly random pairs by
	// default, or actively selected pairs with interleaved refits.
	// Unidentifiable (zero) preferences cost money but yield no vote, as
	// in the paper's binary model.
	var votes []vote
	capped := false
	buy := func(i, j int) {
		v, ok := e.DrawOne(i, j)
		if !ok {
			capped = true // global spending cap exhausted
			return
		}
		w := rng.Intn(workers)
		switch {
		case v > 0:
			votes = append(votes, vote{w, i, j})
		case v < 0:
			votes = append(votes, vote{w, j, i})
		}
	}
	randomPair := func() (int, int) {
		i := rng.Intn(n)
		j := rng.Intn(n - 1)
		if j >= i {
			j++
		}
		return i, j
	}

	if !c.Active {
		for t := int64(0); t < c.Budget && !capped; t++ {
			buy(randomPair())
		}
	} else {
		stages := c.Stages
		if stages <= 0 {
			stages = 10
		}
		head := c.FocusHead
		if head <= 0 {
			head = maxInt(10, n/5)
		}
		if head > n {
			head = n
		}
		perStage := c.Budget / int64(stages)
		if perStage < 1 {
			perStage = 1
		}
		spent := int64(0)
		for stage := 0; spent < c.Budget && !capped; stage++ {
			if stage == 0 {
				// Cold start: one stage of uniform coverage, so every
				// item has evidence before the ranking head means much.
				for t := int64(0); t < perStage && spent < c.Budget && !capped; t++ {
					buy(randomPair())
					spent++
				}
				continue
			}
			// Refit on the evidence so far (a cheap leg), then focus the
			// stage on the current head: head-vs-head votes refine the
			// top order, head-vs-rest votes defend the boundary.
			theta = c.fitScores(votes, theta, quality, maxInt(iters/(2*stages), 2))
			headItems := topOf(theta, head)
			for t := int64(0); t < perStage && spent < c.Budget && !capped; t++ {
				i := headItems[rng.Intn(len(headItems))]
				var j int
				for {
					if rng.Intn(2) == 0 && len(headItems) > 1 {
						j = headItems[rng.Intn(len(headItems))]
					} else {
						j = rng.Intn(n)
					}
					if j != i {
						break
					}
				}
				buy(i, j)
				spent++
			}
		}
	}
	e.Tick(int((c.Budget + int64(eta) - 1) / int64(eta)))

	perRound := iters / emRounds
	if perRound < 1 {
		perRound = 1
	}
	for round := 0; round < emRounds; round++ {
		theta = c.fitScores(votes, theta, quality, perRound)
		updateQuality(votes, theta, quality)
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return theta[order[a]] > theta[order[b]] })
	return order
}

// sigmoid is σ(x) = 1/(1+e^{−x}).
func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// topOf returns the indices of the h highest-scored items.
func topOf(theta []float64, h int) []int {
	order := make([]int, len(theta))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return theta[order[a]] > theta[order[b]] })
	return order[:h]
}

// fitScores maximizes the CrowdBT log-likelihood in θ with worker
// qualities held fixed (one BFGS leg of the EM alternation).
func (c *CrowdBT) fitScores(votes []vote, theta0, quality []float64, iters int) []float64 {
	lambda := c.Lambda
	if lambda <= 0 {
		lambda = 0.01
	}
	p := optimize.Problem{
		F: func(x []float64) float64 {
			s := 0.0
			for _, v := range votes {
				pr := likelihood(quality[v.w], x[v.i]-x[v.j])
				s -= math.Log(pr)
			}
			for _, xi := range x {
				s += lambda * xi * xi
			}
			return s
		},
		Grad: func(x, out []float64) {
			for i := range out {
				out[i] = 2 * lambda * x[i]
			}
			for _, v := range votes {
				d := x[v.i] - x[v.j]
				sg := sigmoid(d)
				pr := likelihood(quality[v.w], d)
				// d/dd of [η σ(d) + (1−η)(1−σ(d))] = (2η−1) σ'(d).
				g := (2*quality[v.w] - 1) * sg * (1 - sg) / pr
				out[v.i] -= g
				out[v.j] += g
			}
		},
	}
	res := optimize.BFGS(p, theta0, optimize.Options{MaxIter: iters, GradTol: 1e-9})
	return res.X
}

// likelihood is P(vote says i ≻ j) under worker quality eta and score
// difference d = θ_i − θ_j, floored away from zero for numerical safety.
func likelihood(eta, d float64) float64 {
	sg := sigmoid(d)
	pr := eta*sg + (1-eta)*(1-sg)
	if pr < 1e-12 {
		pr = 1e-12
	}
	return pr
}

// updateQuality performs the EM quality step: a worker's quality becomes
// the mean posterior probability that her votes agree with the model.
func updateQuality(votes []vote, theta []float64, quality []float64) {
	sum := make([]float64, len(quality))
	cnt := make([]float64, len(quality))
	for _, v := range votes {
		d := theta[v.i] - theta[v.j]
		sg := sigmoid(d)
		eta := quality[v.w]
		post := eta * sg / (eta*sg + (1-eta)*(1-sg) + 1e-12)
		sum[v.w] += post
		cnt[v.w]++
	}
	for w := range quality {
		if cnt[w] > 0 {
			// Smooth toward the prior so sparse workers do not collapse.
			quality[w] = (sum[w] + 0.9*5) / (cnt[w] + 5)
		}
	}
}
