package loadtest

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"crowdtopk"
)

// slowOracle adds a fixed per-judgment delay, making scheduler slots the
// bottleneck so dequeue priority becomes observable end to end. (With an
// instant oracle the pending queue is almost always empty and priority
// never gets to decide anything.)
type slowOracle struct {
	crowdtopk.Oracle
	delay time.Duration
}

func (s *slowOracle) Preference(rng *rand.Rand, i, j int) float64 {
	time.Sleep(s.delay)
	return s.Oracle.Preference(rng, i, j)
}

// newLoadSession builds the session the harness tests drive: async
// scheduling (so queries share the pool live), audit log on (so the
// ledger check is three-way), and optionally the faulty simulated
// platform in front of the synthetic dataset.
func newLoadSession(t *testing.T, n int, faulty bool, parallelism int) *crowdtopk.Session {
	t.Helper()
	data := crowdtopk.SyntheticDataset(n, 0.3, 7)
	oracle := crowdtopk.Oracle(data)
	opts := crowdtopk.Options{
		Algorithm:   crowdtopk.SPR,
		Confidence:  0.9,
		Budget:      25,
		MinWorkload: 10,
		Scheduling:  crowdtopk.Async,
		Parallelism: parallelism,
		Seed:        3,
	}
	if faulty {
		var p crowdtopk.Platform = crowdtopk.SimulatedPlatform(data, 8, 11)
		p = crowdtopk.InjectFaults(p, crowdtopk.FaultSchedule{
			Seed:         13,
			Drop:         0.02,
			Duplicate:    0.02,
			CollectError: 0.02,
		})
		oracle = crowdtopk.WrapPlatform(n, p)
		opts.Resilience = &crowdtopk.ResilienceOptions{
			CollectTimeout: 5 * time.Second,
		}
	}
	sess, err := crowdtopk.NewSession(oracle, opts)
	if err != nil {
		t.Fatal(err)
	}
	sess.EnableAuditLog()
	t.Cleanup(func() { sess.Close() })
	return sess
}

// TestLoadMixed is the harness smoke: a few dozen queries with mixed
// priorities, sub-caps, algorithms and mid-flight cancellations against
// the faulty platform — every invariant in Report.Check must hold.
func TestLoadMixed(t *testing.T) {
	queries := 40
	if testing.Short() {
		queries = 12
	}
	sess := newLoadSession(t, 40, true, 4)
	rep := Run(sess, Config{
		Queries:     queries,
		K:           3,
		Priorities:  []int{0, 2, 5},
		Budgets:     []int64{0, 50, 200},
		Algorithms:  []crowdtopk.Algorithm{crowdtopk.SPR, crowdtopk.TourTree, crowdtopk.HeapSort},
		CancelEvery: 5,
		Seed:        1,
	})
	if err := rep.Check(); err != nil {
		t.Fatal(err)
	}
	canceled, budget, other := rep.Partials()
	t.Logf("load: %d queries, session TMC %d; partials: %d canceled, %d budget, %d other",
		queries, rep.SessionTMC, canceled, budget, other)
}

// TestLoadLarge is the acceptance-scale run: hundreds of concurrent
// queries with mixed priorities, budgets and random cancellations, exact
// global accounting throughout. Skipped in -short.
func TestLoadLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("acceptance-scale load run")
	}
	sess := newLoadSession(t, 40, true, 8)
	rep := Run(sess, Config{
		Queries:     220,
		K:           3,
		Priorities:  []int{0, 1, 3, 7},
		Budgets:     []int64{0, 30, 80, 300},
		Algorithms:  []crowdtopk.Algorithm{crowdtopk.SPR, crowdtopk.TourTree, crowdtopk.QuickSelect},
		CancelEvery: 7,
		Seed:        2,
	})
	if err := rep.Check(); err != nil {
		t.Fatal(err)
	}
	canceled, budget, other := rep.Partials()
	if canceled == 0 {
		t.Error("no query reported a canceled partial; the cancel arm never fired")
	}
	if budget == 0 {
		t.Error("no query reported budget exhaustion; sub-caps never bound")
	}
	t.Logf("load: 220 queries, session TMC %d; partials: %d canceled, %d budget, %d other",
		rep.SessionTMC, canceled, budget, other)
}

// TestLoadPriorityOrdering checks that scheduler priority is visible
// end to end: on a deliberately starved worker pool, high-priority
// queries launched together with low-priority ones finish earlier on
// average.
func TestLoadPriorityOrdering(t *testing.T) {
	queries := 30
	if testing.Short() {
		queries = 12
	}
	// A slow oracle and a two-worker pool: every comparison batch costs
	// real time on a scarce slot, so dequeue order is the dominant term
	// in completion order.
	oracle := &slowOracle{Oracle: crowdtopk.SyntheticDataset(30, 0.3, 7), delay: 20 * time.Microsecond}
	sess, err := crowdtopk.NewSession(oracle, crowdtopk.Options{
		Algorithm:   crowdtopk.SPR,
		Confidence:  0.9,
		Budget:      25,
		MinWorkload: 10,
		Scheduling:  crowdtopk.Async,
		Parallelism: 2,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sess.EnableAuditLog()
	t.Cleanup(func() { sess.Close() })
	rep := Run(sess, Config{
		Queries:    queries,
		K:          3,
		Priorities: []int{0, 9},
		Seed:       4,
	})
	if err := rep.Check(); err != nil {
		t.Fatal(err)
	}
	hi, lo := rep.MeanFinishOrder(9), rep.MeanFinishOrder(0)
	if hi >= lo {
		t.Fatalf("priority inversion: mean finish order %.1f for priority 9 vs %.1f for priority 0", hi, lo)
	}
	t.Logf("mean finish order: %.1f (priority 9) vs %.1f (priority 0)", hi, lo)
}

// TestLoadGoroutineStability brackets a full churn cycle — run, cancel,
// close — and requires the goroutine count to return to its baseline.
func TestLoadGoroutineStability(t *testing.T) {
	before := runtime.NumGoroutine()
	sess := newLoadSession(t, 30, true, 4)
	rep := Run(sess, Config{
		Queries:     16,
		K:           3,
		Priorities:  []int{0, 3},
		Budgets:     []int64{0, 40},
		CancelEvery: 3,
		Seed:        5,
	})
	if err := rep.Check(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if after := StableGoroutines(before, 3, 5*time.Second); after > before+3 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}
