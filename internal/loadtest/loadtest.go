// Package loadtest drives a crowdtopk Session with hundreds of
// concurrent top-k queries — mixed priorities, budget sub-caps, random
// cancellations — and checks the global invariants that make the service
// layer trustworthy: exact accounting (the per-query meters, the session
// meter and the audit log all agree), well-formed best-effort partials in
// every degraded cell, no budget overdraws, and no leaked goroutines.
//
// It is both a test library (loadtest_test.go runs it under -race) and
// the engine of the service smoke script.
package loadtest

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"crowdtopk"
)

// Config shapes one load run. Zero values select a small sane default.
type Config struct {
	// Queries is how many top-k queries to launch (default 20).
	Queries int
	// Concurrency bounds simultaneously running queries (0 = all at once).
	Concurrency int
	// K is the per-query parameter (default 3). Every query uses the same
	// k so result well-formedness is a uniform check.
	K int
	// Priorities is cycled over the queries (empty = all zero).
	Priorities []int
	// Budgets is cycled over the queries as per-query MaxCost sub-caps
	// (empty = uncapped; a zero entry means "this query uncapped").
	Budgets []int64
	// Algorithms is cycled over the queries (empty = session default).
	Algorithms []crowdtopk.Algorithm
	// CancelEvery cancels every Nth query (0 = none): the cancel fires
	// once the query's live TMC meter crosses CancelAfterTMC, so it lands
	// mid-flight rather than before the fork starts work.
	CancelEvery int
	// CancelAfterTMC is the spend threshold that triggers a cancellation
	// (default 1, i.e. as soon as the query has bought anything).
	CancelAfterTMC int64
	// Seed drives the run's own randomness (jittered launch order).
	Seed int64
}

// QueryReport is one query's outcome.
type QueryReport struct {
	Index     int
	K         int
	Priority  int
	Budget    int64
	Algorithm crowdtopk.Algorithm

	TMC    int64
	Rounds int64
	Items  int // len(TopK)
	Err    error

	// CancelRequested records that the harness asked for cancellation;
	// Canceled that the query actually reported a canceled partial (a
	// request can race completion and lose — that is legal).
	CancelRequested bool
	Canceled        bool
	// BudgetStopped reports a partial wrapping ErrBudgetExhausted.
	BudgetStopped bool

	// FinishOrder is the query's rank in completion order (0 = first).
	FinishOrder int
}

// Report aggregates a run.
type Report struct {
	Config  Config
	Queries []QueryReport

	// SessionTMC and AuditLen are deltas over the run.
	SessionTMC int64
	AuditLen   int
	// AuditOn records whether the session had its audit log enabled
	// before the run (the audit invariant is only checked when true).
	AuditOn bool

	// GoroutinesBefore/After bracket the run (After is sampled once the
	// session has quiesced; see StableGoroutines).
	GoroutinesBefore int
	GoroutinesAfter  int
}

// Run launches cfg.Queries concurrent queries against the session and
// waits for all of them. It does not Close the session.
func Run(sess *crowdtopk.Session, cfg Config) *Report {
	if cfg.Queries <= 0 {
		cfg.Queries = 20
	}
	if cfg.K <= 0 {
		cfg.K = 3
	}
	if cfg.CancelAfterTMC <= 0 {
		cfg.CancelAfterTMC = 1
	}
	rep := &Report{Config: cfg, Queries: make([]QueryReport, cfg.Queries)}
	rep.GoroutinesBefore = runtime.NumGoroutine()
	tmc0 := sess.TMC()
	audit0 := len(sess.AuditLog())

	rng := rand.New(rand.NewSource(cfg.Seed))
	order := rng.Perm(cfg.Queries) // jitter launch order vs priority order

	var sem chan struct{}
	if cfg.Concurrency > 0 {
		sem = make(chan struct{}, cfg.Concurrency)
	}
	var finish struct {
		sync.Mutex
		n int
	}
	var wg sync.WaitGroup
	for _, idx := range order {
		qr := &rep.Queries[idx]
		qr.Index = idx
		qr.K = cfg.K
		if len(cfg.Priorities) > 0 {
			qr.Priority = cfg.Priorities[idx%len(cfg.Priorities)]
		}
		if len(cfg.Budgets) > 0 {
			qr.Budget = cfg.Budgets[idx%len(cfg.Budgets)]
		}
		if len(cfg.Algorithms) > 0 {
			qr.Algorithm = cfg.Algorithms[idx%len(cfg.Algorithms)]
		}
		qr.CancelRequested = cfg.CancelEvery > 0 && idx%cfg.CancelEvery == 0

		wg.Add(1)
		go func(qr *QueryReport) {
			defer wg.Done()
			if sem != nil {
				sem <- struct{}{}
				defer func() { <-sem }()
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			h, err := sess.StartTopK(ctx, qr.K, crowdtopk.QueryOptions{
				Algorithm: qr.Algorithm,
				MaxCost:   qr.Budget,
				Priority:  qr.Priority,
			})
			if err != nil {
				qr.Err = err
				return
			}
			stopWatch := make(chan struct{})
			if qr.CancelRequested {
				// Cancel mid-flight: wait for the live meter to show real
				// spend, then pull the plug.
				go func() {
					for {
						select {
						case <-stopWatch:
							return
						case <-time.After(100 * time.Microsecond):
						}
						if h.TMC() >= cfg.CancelAfterTMC {
							cancel()
							return
						}
					}
				}()
			}
			res, rerr := h.Wait()
			close(stopWatch)
			qr.TMC, qr.Rounds, qr.Items = res.TMC, res.Rounds, len(res.TopK)
			qr.Err = rerr
			qr.Canceled = errors.Is(rerr, context.Canceled)
			qr.BudgetStopped = errors.Is(rerr, crowdtopk.ErrBudgetExhausted)
			finish.Lock()
			qr.FinishOrder = finish.n
			finish.n++
			finish.Unlock()
		}(qr)
	}
	wg.Wait()

	rep.SessionTMC = sess.TMC() - tmc0
	rep.AuditLen = len(sess.AuditLog()) - audit0
	// A disabled audit log reads nil even after spending; an enabled one
	// is non-nil as soon as anything was charged.
	rep.AuditOn = sess.AuditLog() != nil
	rep.GoroutinesAfter = runtime.NumGoroutine()
	return rep
}

// Check verifies the run's invariants and returns the first violation.
func (r *Report) Check() error {
	var sum int64
	for i := range r.Queries {
		q := &r.Queries[i]
		sum += q.TMC
		if q.Err != nil {
			var partial *crowdtopk.PartialResultError
			if !errors.As(q.Err, &partial) {
				return fmt.Errorf("query %d: error is not a PartialResultError: %v", q.Index, q.Err)
			}
		}
		if q.Items != q.K {
			return fmt.Errorf("query %d: got %d items, want k=%d (err=%v)", q.Index, q.Items, q.K, q.Err)
		}
		if q.Budget > 0 && q.TMC > q.Budget {
			return fmt.Errorf("query %d: overdraw: spent %d over sub-cap %d", q.Index, q.TMC, q.Budget)
		}
		if q.TMC < 0 || q.Rounds < 0 {
			return fmt.Errorf("query %d: negative meters: tmc=%d rounds=%d", q.Index, q.TMC, q.Rounds)
		}
	}
	// The global ledger: every microtask the session charged is owned by
	// exactly one query, and every audit record was charged.
	if sum != r.SessionTMC {
		return fmt.Errorf("accounting: sum of per-query TMC %d != session TMC %d", sum, r.SessionTMC)
	}
	if r.AuditOn && int64(r.AuditLen) != r.SessionTMC {
		return fmt.Errorf("accounting: audit log grew by %d, session TMC by %d", r.AuditLen, r.SessionTMC)
	}
	return nil
}

// Partials counts queries that returned a degraded (partial) result.
func (r *Report) Partials() (canceled, budget, other int) {
	for i := range r.Queries {
		q := &r.Queries[i]
		switch {
		case q.Err == nil:
		case q.Canceled:
			canceled++
		case q.BudgetStopped:
			budget++
		default:
			other++
		}
	}
	return
}

// MeanFinishOrder returns the average completion rank of the queries at
// the given priority — the load test's priority-ordering probe: under a
// contended worker pool, higher-priority queries should finish earlier
// (smaller mean rank) than lower-priority ones launched together.
func (r *Report) MeanFinishOrder(priority int) float64 {
	var sum, n float64
	for i := range r.Queries {
		if r.Queries[i].Priority == priority {
			sum += float64(r.Queries[i].FinishOrder)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// StableGoroutines polls until the goroutine count drops to at most
// want+slack or the timeout elapses, returning the final count. Draining
// platform workers and AfterFunc timers land asynchronously after Close,
// so leak checks need a grace window rather than an instant sample.
func StableGoroutines(want, slack int, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	for {
		runtime.GC() // finalize dead timer goroutines promptly
		n := runtime.NumGoroutine()
		if n <= want+slack || time.Now().After(deadline) {
			return n
		}
		time.Sleep(5 * time.Millisecond)
	}
}
