package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"crowdtopk"
	"crowdtopk/internal/obs/slo"
)

// gateOracle blocks every judgment until released, so tests can hold
// queries mid-flight deterministically (admission, cancel, SSE) without
// sleeping.
type gateOracle struct {
	crowdtopk.Oracle
	hold    chan struct{} // closed to release
	served  atomic.Int64
	started chan struct{} // closed on first judgment
	once    atomic.Bool
}

func (g *gateOracle) Preference(rng *rand.Rand, i, j int) float64 {
	if g.once.CompareAndSwap(false, true) {
		close(g.started)
	}
	if g.hold != nil {
		<-g.hold
	}
	g.served.Add(1)
	return g.Oracle.Preference(rng, i, j)
}

func newTestServer(t *testing.T, oracle crowdtopk.Oracle, cfg Config) (*Server, *httptest.Server, *crowdtopk.Session) {
	t.Helper()
	tel := crowdtopk.NewTelemetry()
	sess, err := crowdtopk.NewSession(oracle, crowdtopk.Options{
		Algorithm:   crowdtopk.SPR,
		Confidence:  0.9,
		Budget:      25,
		MinWorkload: 10,
		Scheduling:  crowdtopk.Async,
		Parallelism: 4,
		Seed:        3,
		Telemetry:   tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	sess.EnableAuditLog()
	cfg.Session = sess
	cfg.Telemetry = tel
	cfg.AuditEnabled = true
	if cfg.EventInterval == 0 {
		cfg.EventInterval = 5 * time.Millisecond
	}
	srv := New(cfg)
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		_ = sess.Close()
	})
	return srv, hs, sess
}

func postQuery(t *testing.T, base string, req Request) (Status, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/queries", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	_ = json.NewDecoder(resp.Body).Decode(&st)
	return st, resp.StatusCode
}

func getStatus(t *testing.T, base, id string) Status {
	t.Helper()
	resp, err := http.Get(base + "/queries/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitDone(t *testing.T, base, id string) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := getStatus(t, base, id)
		if st.State == "done" || st.State == "canceled" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("query %s stuck in state %q", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestQueryLifecycle walks one query through submit → status → result
// and checks the live endpoints around it.
func TestQueryLifecycle(t *testing.T) {
	_, hs, sess := newTestServer(t, crowdtopk.SyntheticDataset(30, 0.3, 7), Config{})
	st, code := postQuery(t, hs.URL, Request{K: 3, Algorithm: "spr", Priority: 2})
	if code != http.StatusAccepted {
		t.Fatalf("POST /queries: status %d", code)
	}
	if st.ID == "" || (st.State != "queued" && st.State != "running") {
		t.Fatalf("unexpected accept response: %+v", st)
	}
	final := waitDone(t, hs.URL, st.ID)
	if final.State != "done" || len(final.TopK) != 3 || final.Error != "" {
		t.Fatalf("unexpected final state: %+v", final)
	}
	if final.TMC <= 0 {
		t.Fatalf("finished query reports TMC %d", final.TMC)
	}
	if got := sess.TMC(); got != final.TMC {
		t.Fatalf("accounting: query TMC %d != session TMC %d", final.TMC, got)
	}

	// /metrics is live and carries the engine counters.
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "crowdtopk_tmc_total") {
		t.Fatalf("/metrics missing engine counters:\n%s", buf.String())
	}

	// /debug/accounting balances at quiescence.
	aresp, err := http.Get(hs.URL + "/debug/accounting")
	if err != nil {
		t.Fatal(err)
	}
	defer aresp.Body.Close()
	var acc Accounting
	if err := json.NewDecoder(aresp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	if !acc.Balanced {
		t.Fatalf("accounting unbalanced at quiescence: %+v", acc)
	}
}

// TestValidation pins the 400 family.
func TestValidation(t *testing.T) {
	_, hs, _ := newTestServer(t, crowdtopk.SyntheticDataset(20, 0.3, 7), Config{})
	if _, code := postQuery(t, hs.URL, Request{K: 0}); code != http.StatusBadRequest {
		t.Fatalf("k=0: status %d, want 400", code)
	}
	if _, code := postQuery(t, hs.URL, Request{K: 99}); code != http.StatusBadRequest {
		t.Fatalf("k>n: status %d, want 400", code)
	}
	if _, code := postQuery(t, hs.URL, Request{K: 3, Algorithm: "nope"}); code != http.StatusBadRequest {
		t.Fatalf("bad algorithm: status %d, want 400", code)
	}
	if _, code := postQuery(t, hs.URL, Request{K: 3, Policy: "nope"}); code != http.StatusBadRequest {
		t.Fatalf("bad policy: status %d, want 400", code)
	}
	resp, err := http.Get(hs.URL + "/queries/zzz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing id: status %d, want 404", resp.StatusCode)
	}
}

// TestPerQueryPolicyOverride runs one query under the adaptive VoI
// policy and checks the name is reported everywhere the API surfaces it:
// the status, the explain view, and the policy-labeled metrics — while a
// sibling query on the same session stays on the session default.
func TestPerQueryPolicyOverride(t *testing.T) {
	_, hs, _ := newTestServer(t, crowdtopk.SyntheticDataset(30, 0.3, 7), Config{})
	st, code := postQuery(t, hs.URL, Request{K: 3, Policy: "voi"})
	if code != http.StatusAccepted {
		t.Fatalf("POST /queries: status %d", code)
	}
	if st.Policy != "voi" {
		t.Fatalf("accept response policy %q, want voi", st.Policy)
	}
	final := waitDone(t, hs.URL, st.ID)
	if final.State != "done" || final.Policy != "voi" || len(final.TopK) != 3 {
		t.Fatalf("unexpected final state: %+v", final)
	}

	st2, _ := postQuery(t, hs.URL, Request{K: 3})
	if f2 := waitDone(t, hs.URL, st2.ID); f2.Policy != "fixed" {
		t.Fatalf("default query policy %q, want fixed", f2.Policy)
	}

	eresp, err := http.Get(hs.URL + "/queries/" + st.ID + "/explain")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	var ex ExplainResponse
	if err := json.NewDecoder(eresp.Body).Decode(&ex); err != nil {
		t.Fatal(err)
	}
	if ex.Policy != "voi" {
		t.Fatalf("/explain policy %q, want voi", ex.Policy)
	}

	mresp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(mresp.Body)
	for _, want := range []string{
		`crowdtopk_comparisons_total{policy="voi"}`,
		`crowdtopk_comparisons_total{policy="fixed"}`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestSLOReconfigureEndpoint drives POST /debug/slo: live objectives
// are updated (and echoed on the next GET), invalid ones bounce with
// 400 leaving the tracker untouched, and a server without SLO tracking
// answers 409.
func TestSLOReconfigureEndpoint(t *testing.T) {
	_, hs, _ := newTestServer(t, crowdtopk.SyntheticDataset(20, 0.3, 7), Config{
		SLO: &slo.Objectives{
			LatencyTarget: time.Second, LatencyGoal: 0.95,
			Budget: 10000, BudgetHorizon: time.Hour,
		},
	})
	getSLO := func() SLOResponse {
		t.Helper()
		resp, err := http.Get(hs.URL + "/debug/slo")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out SLOResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	postSLO := func(body string) (SLOResponse, int) {
		t.Helper()
		resp, err := http.Post(hs.URL+"/debug/slo", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out SLOResponse
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return out, resp.StatusCode
	}

	if got := getSLO(); !got.Enabled || got.Objectives == nil || got.Objectives.Budget != 10000 {
		t.Fatalf("initial GET /debug/slo = %+v", got)
	}

	upd, code := postSLO(`{"latency_target_ms":500,"latency_goal":0.9,"budget":5000,"budget_horizon_s":1800}`)
	if code != http.StatusOK {
		t.Fatalf("POST /debug/slo: status %d", code)
	}
	if upd.Objectives.Budget != 5000 || upd.Objectives.LatencyTargetMS != 500 || upd.Objectives.BudgetHorizonS != 1800 {
		t.Fatalf("reconfigure echo = %+v", upd.Objectives)
	}
	if got := getSLO(); got.Objectives.Budget != 5000 || got.Objectives.LatencyGoal != 0.9 {
		t.Fatalf("GET after reconfigure = %+v", got.Objectives)
	}

	if _, code := postSLO(`{"budget":-1}`); code != http.StatusBadRequest {
		t.Fatalf("negative budget: status %d, want 400", code)
	}
	if _, code := postSLO(`{not json`); code != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", code)
	}
	if got := getSLO(); got.Objectives.Budget != 5000 {
		t.Fatalf("rejected update mutated objectives: %+v", got.Objectives)
	}

	// A server booted without objectives has no tracker to reconfigure.
	_, hs2, _ := newTestServer(t, crowdtopk.SyntheticDataset(20, 0.3, 7), Config{})
	resp, err := http.Post(hs2.URL+"/debug/slo", "application/json", strings.NewReader(`{"budget":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("disabled SLO reconfigure: status %d, want 409", resp.StatusCode)
	}
}

// TestAdmissionBackpressure fills one execution slot and a one-deep
// queue with gated queries, then requires the next submission to bounce
// with 429 and a Retry-After hint.
func TestAdmissionBackpressure(t *testing.T) {
	g := &gateOracle{
		Oracle:  crowdtopk.SyntheticDataset(30, 0.3, 7),
		hold:    make(chan struct{}),
		started: make(chan struct{}),
	}
	_, hs, _ := newTestServer(t, g, Config{MaxInFlight: 1, MaxQueue: 1})

	first, code := postQuery(t, hs.URL, Request{K: 3})
	if code != http.StatusAccepted {
		t.Fatalf("first query: status %d", code)
	}
	<-g.started // the slot is provably occupied
	if _, code := postQuery(t, hs.URL, Request{K: 3}); code != http.StatusAccepted {
		t.Fatalf("queued query: status %d", code)
	}
	body, _ := json.Marshal(Request{K: 3})
	resp, err := http.Post(hs.URL+"/queries", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity query: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	close(g.hold) // release the workers; everything drains
	waitDone(t, hs.URL, first.ID)
}

// TestCancelRunning cancels a gated (provably mid-flight) query via
// DELETE and requires a canceled partial with exact spend.
func TestCancelRunning(t *testing.T) {
	g := &gateOracle{
		Oracle:  crowdtopk.SyntheticDataset(30, 0.3, 7),
		hold:    make(chan struct{}),
		started: make(chan struct{}),
	}
	_, hs, sess := newTestServer(t, g, Config{})
	st, _ := postQuery(t, hs.URL, Request{K: 3})
	<-g.started

	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/queries/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	close(g.hold)

	final := waitDone(t, hs.URL, st.ID)
	if !final.Canceled {
		t.Fatalf("canceled query not marked canceled: %+v", final)
	}
	if len(final.TopK) != 3 {
		t.Fatalf("canceled query returned %d items, want best-effort 3", len(final.TopK))
	}
	if got := sess.TMC(); got != final.TMC {
		t.Fatalf("accounting after cancel: query TMC %d != session TMC %d", final.TMC, got)
	}
}

// TestCancelQueued cancels a query that never got an execution slot; it
// must retire with zero spend and free its queue entry.
func TestCancelQueued(t *testing.T) {
	g := &gateOracle{
		Oracle:  crowdtopk.SyntheticDataset(30, 0.3, 7),
		hold:    make(chan struct{}),
		started: make(chan struct{}),
	}
	srv, hs, _ := newTestServer(t, g, Config{MaxInFlight: 1, MaxQueue: 2})
	first, _ := postQuery(t, hs.URL, Request{K: 3})
	<-g.started
	queued, _ := postQuery(t, hs.URL, Request{K: 3})

	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/queries/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	final := getStatus(t, hs.URL, queued.ID)
	if final.State != "canceled" || final.TMC != 0 {
		t.Fatalf("canceled queued query: %+v", final)
	}
	srv.mu.Lock()
	q := srv.queued
	srv.mu.Unlock()
	if q != 0 {
		t.Fatalf("queue still counts %d entries after cancel", q)
	}
	close(g.hold)
	waitDone(t, hs.URL, first.ID)
}

// TestCancelCompletedConflicts deletes a query that already finished:
// the cancel must be rejected with 409 Conflict carrying the terminal
// state, and must not disturb the stored result.
func TestCancelCompletedConflicts(t *testing.T) {
	_, hs, _ := newTestServer(t, crowdtopk.SyntheticDataset(30, 0.3, 7), Config{})
	st, _ := postQuery(t, hs.URL, Request{K: 3})
	done := waitDone(t, hs.URL, st.ID)
	if done.State != "done" {
		t.Fatalf("query finished in state %q, want done", done.State)
	}

	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/queries/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE on completed query: status %d, want %d", resp.StatusCode, http.StatusConflict)
	}
	var body Status
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.State != "done" || body.Canceled {
		t.Fatalf("409 body should carry the terminal state, got %+v", body)
	}

	after := getStatus(t, hs.URL, st.ID)
	if after.State != "done" || after.Canceled || len(after.TopK) != len(done.TopK) {
		t.Fatalf("completed query mutated by rejected cancel: %+v", after)
	}
}

// TestPriorityAdmission starves the single execution slot, queues a
// low-priority and then a high-priority query, and requires the
// high-priority one to be dispatched first when the slot frees.
func TestPriorityAdmission(t *testing.T) {
	g := &gateOracle{
		Oracle:  crowdtopk.SyntheticDataset(30, 0.3, 7),
		hold:    make(chan struct{}),
		started: make(chan struct{}),
	}
	_, hs, _ := newTestServer(t, g, Config{MaxInFlight: 1, MaxQueue: 8})
	first, _ := postQuery(t, hs.URL, Request{K: 3})
	<-g.started
	low, _ := postQuery(t, hs.URL, Request{K: 3, Priority: 0})
	high, _ := postQuery(t, hs.URL, Request{K: 3, Priority: 9})

	close(g.hold)
	// One slot serializes everything: admission order IS completion
	// order. The high-priority late arrival must finish before the
	// low-priority query that was queued ahead of it.
	waitDone(t, hs.URL, first.ID)
	hiDone := waitDone(t, hs.URL, high.ID)
	loDone := waitDone(t, hs.URL, low.ID)
	if hiDone.FinishedAtUnixNano >= loDone.FinishedAtUnixNano {
		t.Fatalf("priority inversion: high finished at %d, low at %d",
			hiDone.FinishedAtUnixNano, loDone.FinishedAtUnixNano)
	}
}

// TestEventsStream reads the SSE endpoint end to end: at least one
// progress event and a final done event carrying the result.
func TestEventsStream(t *testing.T) {
	_, hs, _ := newTestServer(t, crowdtopk.SyntheticDataset(30, 0.3, 7), Config{})
	st, _ := postQuery(t, hs.URL, Request{K: 3})

	resp, err := http.Get(hs.URL + "/queries/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var progress, done int
	var last Status
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "event: progress":
			progress++
		case line == "event: done":
			done++
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(line[len("data: "):]), &last); err != nil {
				t.Fatalf("bad event payload: %v in %q", err, line)
			}
		}
		if done > 0 && last.State != "" && (last.State == "done" || last.State == "canceled") {
			break
		}
	}
	if progress == 0 || done == 0 {
		t.Fatalf("stream carried %d progress / %d done events", progress, done)
	}
	if last.State != "done" || len(last.TopK) != 3 {
		t.Fatalf("final event payload: %+v", last)
	}
}

// TestConcurrentServiceLoad pushes a burst of queries with mixed
// priorities and budgets through the HTTP surface and checks the global
// ledger via /debug/accounting.
func TestConcurrentServiceLoad(t *testing.T) {
	queries := 24
	if testing.Short() {
		queries = 8
	}
	_, hs, _ := newTestServer(t, crowdtopk.SyntheticDataset(30, 0.3, 7), Config{MaxInFlight: 6, MaxQueue: 64})
	ids := make([]string, 0, queries)
	for i := 0; i < queries; i++ {
		st, code := postQuery(t, hs.URL, Request{
			K:        3,
			Priority: i % 3,
			MaxCost:  int64((i % 4) * 50), // 0 means uncapped
		})
		if code != http.StatusAccepted {
			t.Fatalf("query %d: status %d", i, code)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		st := waitDone(t, hs.URL, id)
		if len(st.TopK) != 3 {
			t.Fatalf("query %s: %d items (state %s, err %q)", id, len(st.TopK), st.State, st.Error)
		}
		if st.MaxCost > 0 && st.TMC > st.MaxCost {
			t.Fatalf("query %s overdrew: %d over %d", id, st.TMC, st.MaxCost)
		}
	}
	resp, err := http.Get(hs.URL + "/debug/accounting")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var acc Accounting
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	if !acc.Balanced {
		t.Fatalf("ledger unbalanced after burst: %+v", acc)
	}
	if acc.SessionTMC == 0 {
		t.Fatal("burst spent nothing; test is vacuous")
	}
}

// TestShutdownDrains stops the server with queries in flight: Shutdown
// must cancel them, drain, and leave the ledger balanced.
func TestShutdownDrains(t *testing.T) {
	g := &gateOracle{
		Oracle:  crowdtopk.SyntheticDataset(30, 0.3, 7),
		started: make(chan struct{}),
	}
	srv, hs, sess := newTestServer(t, g, Config{MaxInFlight: 2, MaxQueue: 8})
	for i := 0; i < 5; i++ {
		if _, code := postQuery(t, hs.URL, Request{K: 3}); code != http.StatusAccepted {
			t.Fatalf("query %d: status %d", i, code)
		}
	}
	<-g.started
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// After the drain every query is finished and POST is refused.
	srv.mu.Lock()
	running := srv.running
	srv.mu.Unlock()
	if running != 0 {
		t.Fatalf("%d queries still running after Shutdown", running)
	}
	body, _ := json.Marshal(Request{K: 3})
	resp, err := http.Post(hs.URL+"/queries", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST after shutdown: status %d, want 503", resp.StatusCode)
	}
	acc := srv.accounting()
	if !acc.Balanced {
		t.Fatalf("ledger unbalanced after shutdown: %+v", acc)
	}
	_ = sess.Close()
}
