package service

import (
	"encoding/json"
	"net/http"
	"time"

	"crowdtopk"
	"crowdtopk/internal/obs"
	"crowdtopk/internal/obs/slo"
)

// ExplainResponse is GET /queries/{id}/explain: the query's cost
// attribution tree plus the reconciliation verdict against the query's
// authoritative TMC meter.
type ExplainResponse struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Policy is the comparison sampling policy the query ran under.
	Policy string `json:"policy,omitempty"`
	// Enabled reports whether attribution was recording for this query
	// (session telemetry on, or QueryOptions.Explain). A disabled query
	// serves an empty tree and Reconciled is meaningless.
	Enabled bool `json:"enabled"`
	// TMC is the query's authoritative spend meter: the final Result.TMC
	// for a terminal query, the live accounting meter otherwise.
	TMC int64 `json:"tmc"`
	// Terminal reports the query finished, so TMC and the tree are final.
	Terminal bool `json:"terminal"`
	// Reconciled is the invariant check: the tree's leaf TMC sum equals
	// the meter. Exact for terminal queries; a live query sampled between
	// a charge and its attribution may transiently read false.
	Reconciled bool                `json:"reconciled"`
	Tree       *crowdtopk.CostTree `json:"tree"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	q := s.lookup(w, r)
	if q == nil {
		return
	}
	q.mu.Lock()
	h := q.handle
	state := q.state
	terminal := state == "done" || state == "canceled"
	tmc := int64(0)
	if terminal {
		tmc = q.result.TMC
	}
	restored := q.restored != nil
	q.mu.Unlock()

	resp := ExplainResponse{ID: q.id, State: state, Terminal: terminal, Policy: q.req.Policy}
	if h == nil {
		// Queued (never started) or restored from a journal: there is no
		// live collector. A restored query's spend predates this process,
		// so its attribution is honestly unavailable rather than empty.
		if restored {
			httpError(w, http.StatusGone, "query %q was restored from the journal; its attribution did not survive the restart", q.id)
			return
		}
		resp.Tree = &crowdtopk.CostTree{}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	if !terminal {
		tmc = h.TMC()
	}
	if resp.Policy == "" {
		resp.Policy = string(h.Policy())
	}
	resp.Enabled = h.ExplainEnabled()
	resp.TMC = tmc
	resp.Tree = h.Explain()
	resp.Reconciled = resp.Enabled && resp.Tree.TMC == tmc
	writeJSON(w, http.StatusOK, resp)
}

// SLOResponse is GET /debug/slo (and the POST /debug/slo echo).
type SLOResponse struct {
	Enabled bool `json:"enabled"`
	// Objectives echoes the live configuration — which POST /debug/slo
	// can change at runtime.
	Objectives *SLOObjectives `json:"objectives,omitempty"`
	Status     slo.Status     `json:"status"`
}

// SLOObjectives is the wire form of slo.Objectives: the POST /debug/slo
// body and the objectives echo in GET /debug/slo. Durations travel in
// the units the daemon flags use (milliseconds for the latency target,
// seconds for windows and horizon); zero fields take the tracker
// defaults, so a partial update body must re-state every objective it
// wants to keep.
type SLOObjectives struct {
	LatencyTargetMS int64   `json:"latency_target_ms,omitempty"`
	LatencyGoal     float64 `json:"latency_goal,omitempty"`
	Budget          int64   `json:"budget,omitempty"`
	BudgetHorizonS  int64   `json:"budget_horizon_s,omitempty"`
	ShortWindowS    int64   `json:"short_window_s,omitempty"`
	LongWindowS     int64   `json:"long_window_s,omitempty"`
	WarnBurn        float64 `json:"warn_burn,omitempty"`
	PageBurn        float64 `json:"page_burn,omitempty"`
}

func (o SLOObjectives) objectives() slo.Objectives {
	return slo.Objectives{
		LatencyTarget: time.Duration(o.LatencyTargetMS) * time.Millisecond,
		LatencyGoal:   o.LatencyGoal,
		Budget:        o.Budget,
		BudgetHorizon: time.Duration(o.BudgetHorizonS) * time.Second,
		ShortWindow:   time.Duration(o.ShortWindowS) * time.Second,
		LongWindow:    time.Duration(o.LongWindowS) * time.Second,
		WarnBurn:      o.WarnBurn,
		PageBurn:      o.PageBurn,
	}
}

func wireObjectives(o slo.Objectives) *SLOObjectives {
	return &SLOObjectives{
		LatencyTargetMS: o.LatencyTarget.Milliseconds(),
		LatencyGoal:     o.LatencyGoal,
		Budget:          o.Budget,
		BudgetHorizonS:  int64(o.BudgetHorizon / time.Second),
		ShortWindowS:    int64(o.ShortWindow / time.Second),
		LongWindowS:     int64(o.LongWindow / time.Second),
		WarnBurn:        o.WarnBurn,
		PageBurn:        o.PageBurn,
	}
}

func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	resp := SLOResponse{
		Enabled: s.slo != nil,
		Status:  s.syncSLO(),
	}
	if s.slo != nil {
		resp.Objectives = wireObjectives(s.slo.Objectives())
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSLOUpdate is POST /debug/slo: runtime reconfiguration of the
// live tracker's objectives. The update is validated and applied
// atomically — observation history is carried over, so the new burn
// rates are computed from the same rings the old objectives filled —
// and the response echoes the resolved objectives plus a fresh status.
func (s *Server) handleSLOUpdate(w http.ResponseWriter, r *http.Request) {
	if s.slo == nil {
		httpError(w, http.StatusConflict, "slo tracking is disabled; boot with objectives (topkd -slo-latency / -total-budget) to enable runtime reconfiguration")
		return
	}
	var upd SLOObjectives
	if err := json.NewDecoder(r.Body).Decode(&upd); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if err := s.slo.Reconfigure(upd.objectives()); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	obj := s.slo.Objectives()
	s.log.Info("slo reconfigured",
		"latency_target_ms", obj.LatencyTarget.Milliseconds(), "latency_goal", obj.LatencyGoal,
		"budget", obj.Budget, "horizon", obj.BudgetHorizon.String())
	writeJSON(w, http.StatusOK, SLOResponse{
		Enabled:    true,
		Objectives: wireObjectives(obj),
		Status:     s.syncSLO(),
	})
}

// syncSLO feeds the tracker the current session spend and republishes
// the burn-rate gauges — called on every scrape/readout, so the rings
// stay current without a sampler goroutine. Nil-safe when SLO is off.
func (s *Server) syncSLO() slo.Status {
	if s.slo != nil {
		s.slo.SyncSpend(s.cfg.Session.TMC())
	}
	st := s.slo.Snapshot()
	s.publishSLO(st)
	return st
}

// publishSLO mirrors the snapshot into registry gauges (milli-units;
// the registry is integer-only) so /metrics scrapes carry burn rates.
func (s *Server) publishSLO(st slo.Status) {
	if s.slo == nil || s.cfg.Telemetry == nil {
		return
	}
	reg := s.cfg.Telemetry.Obs().Registry()
	if reg == nil {
		return
	}
	stateVal := func(state string) int64 {
		switch state {
		case "page":
			return 2
		case "warn":
			return 1
		default:
			return 0
		}
	}
	if st.Latency.Enabled {
		reg.Gauge(obs.MSLOLatencyBurnShort).Set(int64(st.Latency.Short.Burn * 1000))
		reg.Gauge(obs.MSLOLatencyBurnLong).Set(int64(st.Latency.Long.Burn * 1000))
		reg.Gauge(obs.MSLOLatencyState).Set(stateVal(st.Latency.State))
	}
	if st.Budget.Enabled {
		reg.Gauge(obs.MSLOBudgetBurnShort).Set(int64(st.Budget.Short.Burn * 1000))
		reg.Gauge(obs.MSLOBudgetBurnLong).Set(int64(st.Budget.Long.Burn * 1000))
		reg.Gauge(obs.MSLOBudgetState).Set(stateVal(st.Budget.State))
		reg.Gauge(obs.MSLOBudgetRemaining).Set(st.Budget.Remaining)
		reg.Gauge(obs.MSLOBudgetExhaustS).Set(st.Budget.ExhaustSeconds)
	}
}

// SLOTracker exposes the tracker for tests; nil when SLO is off.
func (s *Server) SLOTracker() *slo.Tracker { return s.slo }
