// Package service is the HTTP/JSON query service over a crowdtopk
// Session: clients POST top-k queries (with per-query algorithm, budget
// sub-cap, priority and deadline), watch their progress live, cancel
// them, and collect best-effort results — while the service enforces
// admission control so a burst of queries degrades into 429 backpressure
// instead of an unbounded worker pile-up.
//
// The endpoints, in Go 1.22 method-pattern form:
//
//	POST   /queries             submit a query     → 202 (or 429 when full)
//	GET    /queries             list all queries
//	GET    /queries/{id}        one query's status (live TMC/rounds/phase)
//	DELETE /queries/{id}        cancel (queued or running)
//	GET    /queries/{id}/events SSE progress stream until completion
//	GET    /healthz             liveness + admission gauges
//	GET    /debug/accounting    global cost invariant, live
//	/metrics, /debug/vars, ...  the session Telemetry handler, when given
//
// Admission is two-stage: at most MaxInFlight queries run concurrently;
// the next MaxQueue wait in a priority queue (priority desc, arrival asc
// — consistent with the comparison scheduler's dequeue weighting); beyond
// that, POST returns 429 with a Retry-After hint. Canceling a queued
// query removes it lazily at dispatch.
package service

import (
	"container/heap"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"crowdtopk"
	qlog "crowdtopk/internal/obs/log"
	"crowdtopk/internal/obs/slo"
)

// Config assembles a Server. Session is required; everything else has a
// serviceable default.
type Config struct {
	// Session executes the queries. The server owns its lifecycle from
	// Shutdown on: queries in flight are stopped through it.
	Session *crowdtopk.Session
	// Telemetry, when non-nil, is mounted under /metrics, /debug/vars,
	// /trace and /debug/pprof/.
	Telemetry *crowdtopk.Telemetry
	// MaxInFlight bounds concurrently executing queries (default 8).
	MaxInFlight int
	// MaxQueue bounds queries waiting for an execution slot (default 64).
	// A full queue is the 429 backpressure signal.
	MaxQueue int
	// AuditEnabled declares that the session records an audit log, so
	// /debug/accounting can check TMC == audit length (the caller enables
	// the log; the server cannot tell an empty log from a disabled one).
	AuditEnabled bool
	// EventInterval is the SSE progress sampling period (default 100ms).
	EventInterval time.Duration
	// Journal, when non-nil, records every query's accept and terminal
	// transition durably. Together with a persistent audit log it makes
	// the daemon crash-safe: Restore re-admits the queries that died in
	// flight and reinstates the finished ones' results.
	Journal Journal
	// SLO, when non-nil, enables burn-rate tracking over query latency
	// and session budget burn: alert states are served at /debug/slo, on
	// the dashboard, and — with Telemetry — as gauges in /metrics.
	SLO *slo.Objectives
	// Logger, when non-nil, receives structured service events (accepts,
	// rejections, completions, journal failures) as JSONL.
	Logger *qlog.Logger
}

// Server is the query service. Create with New, mount via Handler (it is
// an http.Handler), stop with Shutdown.
type Server struct {
	cfg Config
	mux *http.ServeMux

	// slo is the burn-rate tracker (nil when Config.SLO is unset); log is
	// the service's bound structured logger (nil = off; every call site is
	// nil-safe). rej rate-limits admission-reject warnings so a client
	// retry storm cannot flood the log.
	slo *slo.Tracker
	log *qlog.Logger
	rej *qlog.Logger

	mu       sync.Mutex
	queries  map[string]*query
	order    []*query // insertion order, for GET /queries
	queue    admissionQueue
	queued   int // non-canceled entries in queue
	running  int
	nextID   int64
	nextSeq  int64
	closed   bool
	wake     chan struct{}
	shutdown chan struct{}
	wg       sync.WaitGroup

	// jerr latches the first journal-write failure for diagnostics; the
	// queries themselves keep running (losing a finish entry re-runs the
	// query on the next resume, which replay makes free).
	jmu  sync.Mutex
	jerr error
}

// query is one submitted top-k query moving through the service:
// queued → running → done, with canceled reachable from both live states.
type query struct {
	id       string
	req      Request
	accepted time.Time

	// claimed arbitrates the dispatch-vs-cancel race on a queued query:
	// exactly one of the dispatcher (to run it) and a canceler (to retire
	// it in place) wins the CAS and owns the state transition.
	claimed atomic.Bool

	mu       sync.Mutex
	state    string // "queued", "running", "done", "canceled"
	canceled bool
	handle   *crowdtopk.QueryHandle
	result   crowdtopk.Result
	err      error
	finished time.Time
	done     chan struct{} // closed when state reaches done/canceled

	// restored, when non-nil, is the terminal snapshot replayed from the
	// journal of a previous process: the query finished before the crash
	// and serves its recorded status verbatim instead of live state.
	restored *Status
}

// Request is the POST /queries body.
type Request struct {
	// K is the query parameter: how many top items to return.
	K int `json:"k"`
	// Algorithm optionally overrides the session default
	// ("spr", "tourtree", "heapsort", "quickselect", "pbr").
	Algorithm string `json:"algorithm,omitempty"`
	// Policy optionally overrides the session's comparison sampling
	// policy for this query ("fixed", "voi", "pac", ...; the full list is
	// crowdtopk.PolicyNames). Empty keeps the session default.
	Policy string `json:"policy,omitempty"`
	// MaxCost is the per-query budget sub-cap in microtasks (0 = none).
	MaxCost int64 `json:"max_cost,omitempty"`
	// Priority weights both admission and the comparison scheduler.
	Priority int `json:"priority,omitempty"`
	// TimeoutMS is the query's execution deadline, measured from the
	// moment it starts running (0 = none).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Status is the JSON view of one query.
type Status struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	K         int    `json:"k"`
	Algorithm string `json:"algorithm,omitempty"`
	Policy    string `json:"policy,omitempty"`
	Priority  int    `json:"priority"`
	MaxCost   int64  `json:"max_cost,omitempty"`

	TMC    int64  `json:"tmc"`
	Rounds int64  `json:"rounds"`
	Phase  string `json:"phase,omitempty"`

	TopK []int `json:"top_k,omitempty"`
	// FinishedAtUnixNano orders completions across queries (0 while live).
	FinishedAtUnixNano int64  `json:"finished_at_unix_nano,omitempty"`
	Error              string `json:"error,omitempty"`
	Partial            bool   `json:"partial,omitempty"`
	BudgetExhausted    bool   `json:"budget_exhausted,omitempty"`
	Canceled           bool   `json:"canceled,omitempty"`
}

// Accounting is GET /debug/accounting: the global cost invariant read
// live. Balanced is only guaranteed at quiescence — while queries run,
// the three meters are sampled at slightly different instants.
type Accounting struct {
	SessionTMC  int64 `json:"session_tmc"`
	SumQueryTMC int64 `json:"sum_query_tmc"`
	AuditLen    int   `json:"audit_len"`
	AuditOn     bool  `json:"audit_on"`
	Balanced    bool  `json:"balanced"`
	Running     int   `json:"running"`
	Queued      int   `json:"queued"`

	// Judgment-store traffic (all zero without Options.JudgmentStore).
	// Store hits charge no TMC, so they never unbalance the invariant;
	// they explain why SessionTMC is lower than a cold run's would be.
	StoreHits    int64 `json:"store_hits,omitempty"`
	StoreStale   int64 `json:"store_stale,omitempty"`
	StoreMisses  int64 `json:"store_misses,omitempty"`
	StoreCommits int64 `json:"store_commits,omitempty"`
	StoreSize    int   `json:"store_size,omitempty"`
}

var validAlgorithms = map[string]bool{
	"": true, string(crowdtopk.SPR): true, string(crowdtopk.TourTree): true,
	string(crowdtopk.HeapSort): true, string(crowdtopk.QuickSelect): true,
	string(crowdtopk.PBR): true,
}

// New builds the server and starts its dispatcher.
func New(cfg Config) *Server {
	if cfg.Session == nil {
		panic("service: Config.Session is required")
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 8
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.EventInterval <= 0 {
		cfg.EventInterval = 100 * time.Millisecond
	}
	s := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		queries:  make(map[string]*query),
		wake:     make(chan struct{}, 1),
		shutdown: make(chan struct{}),
	}
	if cfg.SLO != nil {
		s.slo = slo.New(*cfg.SLO, nil)
	}
	if cfg.Logger != nil {
		s.log = cfg.Logger.With("component", "service")
		s.rej = s.log.Limited("admission-reject", 1, 5)
	}
	s.mux.HandleFunc("POST /queries", s.handleSubmit)
	s.mux.HandleFunc("GET /queries", s.handleList)
	s.mux.HandleFunc("GET /queries/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /queries/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /queries/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /queries/{id}/explain", s.handleExplain)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /debug/accounting", s.handleAccounting)
	s.mux.HandleFunc("GET /debug/slo", s.handleSLO)
	s.mux.HandleFunc("POST /debug/slo", s.handleSLOUpdate)
	s.mux.HandleFunc("GET /debug/dashboard", s.handleDashboard)
	if cfg.Telemetry != nil {
		// /metrics refreshes the SLO gauges before delegating, so every
		// scrape carries current burn rates without a sampler goroutine.
		th := cfg.Telemetry.Handler()
		s.mux.Handle("/metrics", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			s.syncSLO()
			th.ServeHTTP(w, r)
		}))
		s.mux.Handle("/debug/vars", th)
		s.mux.Handle("/trace", th)
		s.mux.Handle("/debug/pprof/", th)
	}
	s.wg.Add(1)
	go s.dispatch()
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP makes *Server an http.Handler directly.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shutdown stops admission, cancels every queued and running query, and
// waits (up to ctx) for the drain. The session itself is left to the
// caller to Close — its own drain is then a no-op.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.shutdown)
		s.log.Info("shutting down", "running", s.running, "queued", s.queued)
	}
	var toCancel []*query
	for _, q := range s.queries {
		toCancel = append(toCancel, q)
	}
	s.mu.Unlock()
	for _, q := range toCancel {
		s.cancelQuery(q)
	}
	drained := make(chan struct{})
	go func() { s.wg.Wait(); close(drained) }()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// dispatch is the admission loop: it moves queries from the priority
// queue into execution slots, skipping entries canceled while queued.
func (s *Server) dispatch() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var next *query
		for s.running < s.cfg.MaxInFlight && s.queue.Len() > 0 {
			q := heap.Pop(&s.queue).(*admitted).q
			if !q.claimed.CompareAndSwap(false, true) {
				continue // canceled while queued; the canceler retired it
			}
			s.queued--
			s.running++
			next = q
			break
		}
		s.mu.Unlock()
		if next != nil {
			s.wg.Add(1)
			go s.run(next)
			continue
		}
		select {
		case <-s.wake:
		case <-s.shutdown:
			return
		}
	}
}

// run executes one admitted query to completion on the session.
func (s *Server) run(q *query) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		s.running--
		s.mu.Unlock()
		s.kick()
	}()
	started := time.Now()
	s.log.Debug("query dispatched", "query", q.id, "k", q.req.K,
		"algorithm", q.req.Algorithm, "priority", q.req.Priority)

	ctx := context.Background()
	var cancelTimeout context.CancelFunc
	if q.req.TimeoutMS > 0 {
		ctx, cancelTimeout = context.WithTimeout(ctx, time.Duration(q.req.TimeoutMS)*time.Millisecond)
		defer cancelTimeout()
	}

	h, err := s.cfg.Session.StartTopK(ctx, q.req.K, crowdtopk.QueryOptions{
		Algorithm: crowdtopk.Algorithm(q.req.Algorithm),
		Policy:    crowdtopk.PolicyName(q.req.Policy),
		MaxCost:   q.req.MaxCost,
		Priority:  q.req.Priority,
	})
	if err != nil {
		q.mu.Lock()
		q.state = "done"
		q.err = err
		q.finished = time.Now()
		close(q.done)
		q.mu.Unlock()
		s.log.Error("query failed to start", "query", q.id, "err", err)
		s.journalFinish(q)
		return
	}

	q.mu.Lock()
	wasCanceled := q.canceled
	q.state = "running"
	q.handle = h
	q.mu.Unlock()
	if wasCanceled {
		// DELETE raced admission: the cancel mark landed before the handle
		// existed, so apply it now — the query still returns a well-formed
		// partial with exact spend.
		h.Cancel()
	}

	res, rerr := h.Wait()
	wall := time.Since(started)
	q.mu.Lock()
	q.state = "done"
	if q.canceled {
		q.state = "canceled"
	}
	state := q.state
	q.result = res
	q.err = rerr
	q.finished = time.Now()
	close(q.done)
	q.mu.Unlock()
	// Feed the SLO tracker: one latency observation per finished query,
	// and the session spend meter synced so budget burn reflects this
	// query's purchases even if nobody scrapes between completions.
	s.slo.ObserveQuery(wall)
	s.slo.SyncSpend(s.cfg.Session.TMC())
	s.log.Info("query finished", "query", q.id, "state", state,
		"tmc", res.TMC, "rounds", res.Rounds, "wall", wall, "err", rerr)
	s.journalFinish(q)
}

// journalFinish records a query's terminal snapshot, best-effort: the
// query has already finished, so a write failure is latched (JournalErr)
// rather than undoing reality. On the next resume the entry's absence
// re-admits the query, and replay answers it from history for free.
func (s *Server) journalFinish(q *query) {
	if s.cfg.Journal == nil {
		return
	}
	if err := s.cfg.Journal.Finished(q.status()); err != nil {
		s.journalFail(err)
	}
}

func (s *Server) journalFail(err error) {
	s.log.Error("journal write failed", "err", err)
	s.jmu.Lock()
	if s.jerr == nil {
		s.jerr = err
	}
	s.jmu.Unlock()
}

// JournalErr returns the first journal-write failure, if any.
func (s *Server) JournalErr() error {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	return s.jerr
}

// kick nudges the dispatcher without blocking.
func (s *Server) kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if n := s.cfg.Session.NumItems(); req.K < 1 || req.K > n {
		httpError(w, http.StatusBadRequest, "k=%d out of range [1,%d]", req.K, n)
		return
	}
	if !validAlgorithms[req.Algorithm] {
		httpError(w, http.StatusBadRequest, "unknown algorithm %q", req.Algorithm)
		return
	}
	if req.Policy != "" && !crowdtopk.PolicyRegistered(req.Policy) {
		httpError(w, http.StatusBadRequest, "unknown policy %q (available: %s)",
			req.Policy, strings.Join(crowdtopk.PolicyNames(), ", "))
		return
	}
	if req.MaxCost < 0 {
		httpError(w, http.StatusBadRequest, "max_cost must be >= 0")
		return
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	if s.queued >= s.cfg.MaxQueue {
		s.mu.Unlock()
		s.rej.Warn("admission rejected: queue full",
			"queued", s.cfg.MaxQueue, "running", s.cfg.MaxInFlight)
		// The client's politeness hint: the queue drains one query at a
		// time, so "soon" is the honest estimate.
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "admission queue full (%d queued, %d running)",
			s.cfg.MaxQueue, s.cfg.MaxInFlight)
		return
	}
	s.nextID++
	s.nextSeq++
	q := &query{
		id:       fmt.Sprintf("q%d", s.nextID),
		req:      req,
		accepted: time.Now(),
		state:    "queued",
		done:     make(chan struct{}),
	}
	if s.cfg.Journal != nil {
		// Journal before admitting: an accepted query the journal missed
		// would silently vanish on resume, which is the one lie a durable
		// service must not tell. Refusing admission is honest.
		if err := s.cfg.Journal.Accepted(q.id, req); err != nil {
			s.nextID--
			s.nextSeq--
			s.mu.Unlock()
			s.journalFail(err)
			httpError(w, http.StatusInternalServerError, "journal write failed: %v", err)
			return
		}
	}
	s.queries[q.id] = q
	s.order = append(s.order, q)
	heap.Push(&s.queue, &admitted{q: q, seq: s.nextSeq})
	s.queued++
	s.mu.Unlock()
	s.log.Debug("query accepted", "query", q.id, "k", req.K,
		"algorithm", req.Algorithm, "max_cost", req.MaxCost, "priority", req.Priority)
	s.kick()

	w.Header().Set("Location", "/queries/"+q.id)
	writeJSON(w, http.StatusAccepted, q.status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]Status, 0, len(s.order))
	for _, q := range s.order {
		out = append(out, q.status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	q := s.lookup(w, r)
	if q == nil {
		return
	}
	writeJSON(w, http.StatusOK, q.status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	q := s.lookup(w, r)
	if q == nil {
		return
	}
	q.mu.Lock()
	terminal := q.state == "done" || q.state == "canceled"
	q.mu.Unlock()
	if terminal {
		// Canceling a finished query is a conflict, not a success: the
		// client gets the terminal state it raced against, unchanged.
		writeJSON(w, http.StatusConflict, q.status())
		return
	}
	s.cancelQuery(q)
	s.log.Debug("query canceled", "query", q.id)
	writeJSON(w, http.StatusOK, q.status())
}

// cancelQuery cancels a query in any live state: queued entries are
// marked (and lazily skipped at dispatch), running ones are stopped
// through their handle, finished ones are left alone.
func (s *Server) cancelQuery(q *query) {
	q.mu.Lock()
	if q.state == "done" || q.state == "canceled" || q.canceled {
		q.mu.Unlock()
		return
	}
	q.canceled = true
	h := q.handle
	// Winning the claim means the dispatcher has not (and now cannot)
	// start this query: retire it in place. Losing it means the query is
	// being (or has been) started: stop it through the handle — run()
	// applies the mark itself when the handle is not born yet.
	if q.claimed.CompareAndSwap(false, true) {
		q.state = "canceled"
		q.err = context.Canceled
		q.finished = time.Now()
		close(q.done)
		q.mu.Unlock()
		s.mu.Lock()
		s.queued--
		s.mu.Unlock()
		s.journalFinish(q)
		s.kick()
		return
	}
	q.mu.Unlock()
	if h != nil {
		h.Cancel()
	}
}

// handleEvents streams SSE progress samples until the query finishes.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := s.lookup(w, r)
	if q == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	emit := func(event string) {
		data, _ := json.Marshal(q.status())
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		fl.Flush()
	}
	emit("progress")
	tick := time.NewTicker(s.cfg.EventInterval)
	defer tick.Stop()
	for {
		select {
		case <-q.done:
			emit("done")
			return
		case <-tick.C:
			emit("progress")
		case <-r.Context().Done():
			return
		case <-s.shutdown:
			return
		}
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := map[string]any{
		"status":       "ok",
		"running":      s.running,
		"queued":       s.queued,
		"max_inflight": s.cfg.MaxInFlight,
		"max_queue":    s.cfg.MaxQueue,
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleAccounting(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.accounting())
}

// accounting reads the global cost invariant: the session meter, the sum
// of per-query meters, and the audit log must agree at quiescence.
func (s *Server) accounting() Accounting {
	s.mu.Lock()
	var sum int64
	running, queued := s.running, s.queued
	for _, q := range s.order {
		sum += q.tmc()
	}
	s.mu.Unlock()
	sess := s.cfg.Session
	acc := Accounting{
		SessionTMC:  sess.TMC(),
		SumQueryTMC: sum,
		AuditLen:    len(sess.AuditLog()),
		Running:     running,
		Queued:      queued,
	}
	acc.AuditOn = s.cfg.AuditEnabled
	acc.Balanced = acc.SessionTMC == acc.SumQueryTMC &&
		(!acc.AuditOn || int64(acc.AuditLen) == acc.SessionTMC)
	ss := sess.StoreStats()
	acc.StoreHits, acc.StoreStale = ss.Hits, ss.Stale
	acc.StoreMisses, acc.StoreCommits = ss.Misses, ss.Commits
	acc.StoreSize = ss.Size
	return acc
}

// lookup resolves {id} or writes 404.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *query {
	id := r.PathValue("id")
	s.mu.Lock()
	q := s.queries[id]
	s.mu.Unlock()
	if q == nil {
		httpError(w, http.StatusNotFound, "no query %q", id)
	}
	return q
}

// status snapshots a query for JSON.
func (q *query) status() Status {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.restored != nil {
		return *q.restored
	}
	st := Status{
		ID: q.id, State: q.state, K: q.req.K, Algorithm: q.req.Algorithm,
		Policy: q.req.Policy, Priority: q.req.Priority, MaxCost: q.req.MaxCost,
		Canceled: q.canceled,
	}
	if h := q.handle; h != nil {
		st.TMC, st.Rounds, st.Phase = h.TMC(), h.Rounds(), h.Phase()
		if st.Algorithm == "" {
			st.Algorithm = string(h.Algorithm())
		}
		if st.Policy == "" {
			st.Policy = string(h.Policy())
		}
	}
	if q.state == "done" || q.state == "canceled" {
		st.TopK = q.result.TopK
		st.TMC, st.Rounds = q.result.TMC, q.result.Rounds
		st.Phase = ""
		st.FinishedAtUnixNano = q.finished.UnixNano()
		if q.err != nil {
			st.Error = q.err.Error()
			var partial *crowdtopk.PartialResultError
			st.Partial = errors.As(q.err, &partial)
			st.BudgetExhausted = errors.Is(q.err, crowdtopk.ErrBudgetExhausted)
		}
	}
	return st
}

func (q *query) tmc() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.restored != nil {
		return q.restored.TMC
	}
	if q.state == "done" || q.state == "canceled" {
		return q.result.TMC
	}
	if q.handle != nil {
		return q.handle.TMC()
	}
	return 0
}

// admitted is one queue entry; seq breaks priority ties by arrival.
type admitted struct {
	q   *query
	seq int64
}

// admissionQueue is a max-heap by (priority, then earliest arrival) —
// the service-level mirror of the comparison scheduler's dequeue order.
type admissionQueue []*admitted

func (a admissionQueue) Len() int { return len(a) }
func (a admissionQueue) Less(i, j int) bool {
	if a[i].q.req.Priority != a[j].q.req.Priority {
		return a[i].q.req.Priority > a[j].q.req.Priority
	}
	return a[i].seq < a[j].seq
}
func (a admissionQueue) Swap(i, j int) { a[i], a[j] = a[j], a[i] }
func (a *admissionQueue) Push(x any)   { *a = append(*a, x.(*admitted)) }
func (a *admissionQueue) Pop() any {
	old := *a
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*a = old[:n-1]
	return x
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{
		"error": fmt.Sprintf(format, args...),
		"code":  strconv.Itoa(code),
	})
}
