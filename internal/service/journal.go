package service

import (
	"bufio"
	"container/heap"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// JournalEntry is one line of the query journal: a query was accepted,
// or reached a terminal state. Replayed at boot, the journal tells a
// restarted daemon which queries died in flight (accepted, never
// finished) so it can re-admit them against the replayed audit log, and
// which already finished so their results survive the crash.
type JournalEntry struct {
	Op string `json:"op"` // "accept" or "finish"
	ID string `json:"id"`
	// Req is set on accept entries.
	Req *Request `json:"req,omitempty"`
	// Status is the terminal snapshot, set on finish entries.
	Status   *Status `json:"status,omitempty"`
	UnixNano int64   `json:"unix_nano"`
}

// Journal persists the accept/finish lifecycle of queries. Both calls
// must be durable before returning: a journal that lags the state it
// records would resurrect finished queries or lose accepted ones.
type Journal interface {
	Accepted(id string, req Request) error
	Finished(st Status) error
}

// FileJournal is the JSONL Journal: one entry per line, fsync per entry
// (queries are rare next to microtasks; per-entry durability is cheap at
// this rate). A torn final line — crash mid-append — is tolerated on
// reload; corruption mid-file is refused, mirroring jstore.
type FileJournal struct {
	mu sync.Mutex
	f  *os.File
}

// OpenFileJournal opens (creating if absent) the journal at path and
// returns the entries already recorded, in order.
func OpenFileJournal(path string) (*FileJournal, []JournalEntry, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("service: journal: %w", err)
	}
	var entries []JournalEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	bad := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e JournalEntry
		if err := json.Unmarshal(line, &e); err != nil || (e.Op != "accept" && e.Op != "finish") || e.ID == "" {
			bad++
			continue
		}
		if bad > 0 {
			f.Close()
			return nil, nil, fmt.Errorf("service: journal %s: corrupt entry mid-file (%d bad lines before a valid one)", path, bad)
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("service: journal %s: %w", path, err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("service: journal %s: %w", path, err)
	}
	return &FileJournal{f: f}, entries, nil
}

func (j *FileJournal) append(e JournalEntry) error {
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("service: journal is closed")
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return err
	}
	return j.f.Sync()
}

// Accepted implements Journal.
func (j *FileJournal) Accepted(id string, req Request) error {
	return j.append(JournalEntry{Op: "accept", ID: id, Req: &req, UnixNano: time.Now().UnixNano()})
}

// Finished implements Journal.
func (j *FileJournal) Finished(st Status) error {
	return j.append(JournalEntry{Op: "finish", ID: st.ID, Status: &st, UnixNano: time.Now().UnixNano()})
}

// Restore replays a previous process's journal into a freshly built
// server, before it starts serving: queries with a recorded terminal
// snapshot are reinstated verbatim (their results survived the crash),
// and queries that were accepted but never finished are re-admitted
// under their original IDs — against a session resumed from the audit
// log, their replayed work costs nothing new. Restore keeps the ID
// counter ahead of everything replayed, so new submissions never
// collide. It reports how many queries were re-admitted and how many
// reinstated.
//
// Restored queries are not re-journaled: their accept entries are
// already durable, and re-admitted ones write a fresh finish entry when
// they conclude in this process.
func (s *Server) Restore(entries []JournalEntry) (pending, finished int) {
	finishes := make(map[string]*Status)
	for _, e := range entries {
		if e.Op == "finish" && e.Status != nil {
			finishes[e.ID] = e.Status
		}
	}
	s.mu.Lock()
	var maxID int64
	for _, e := range entries {
		if e.Op != "accept" || e.Req == nil || s.queries[e.ID] != nil {
			continue
		}
		if n, err := strconv.ParseInt(strings.TrimPrefix(e.ID, "q"), 10, 64); err == nil && n > maxID {
			maxID = n
		}
		q := &query{
			id:       e.ID,
			req:      *e.Req,
			accepted: time.Unix(0, e.UnixNano),
			done:     make(chan struct{}),
		}
		if st, ok := finishes[e.ID]; ok {
			cp := *st
			q.restored = &cp
			q.state = st.State
			if q.state != "done" && q.state != "canceled" {
				q.state = "done"
			}
			q.canceled = st.Canceled
			q.claimed.Store(true)
			close(q.done)
			finished++
		} else {
			q.state = "queued"
			s.nextSeq++
			heap.Push(&s.queue, &admitted{q: q, seq: s.nextSeq})
			s.queued++
			pending++
		}
		s.queries[e.ID] = q
		s.order = append(s.order, q)
	}
	if maxID > s.nextID {
		s.nextID = maxID
	}
	s.mu.Unlock()
	s.kick()
	return pending, finished
}

// Close closes the journal file.
func (j *FileJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
