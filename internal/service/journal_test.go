package service

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"crowdtopk"
)

func TestFileJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queries.jsonl")
	j, entries, err := OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("fresh journal returned %d entries", len(entries))
	}
	req := Request{K: 3, Priority: 2}
	if err := j.Accepted("q1", req); err != nil {
		t.Fatal(err)
	}
	st := Status{ID: "q1", State: "done", K: 3, TMC: 42, TopK: []int{4, 1, 7}, FinishedAtUnixNano: 99}
	if err := j.Finished(st); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, entries, err := OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(entries) != 2 {
		t.Fatalf("reloaded %d entries, want 2", len(entries))
	}
	if entries[0].Op != "accept" || entries[0].ID != "q1" || entries[0].Req == nil || entries[0].Req.K != 3 {
		t.Fatalf("accept entry mangled: %+v", entries[0])
	}
	fin := entries[1]
	if fin.Op != "finish" || fin.Status == nil || fin.Status.TMC != 42 || len(fin.Status.TopK) != 3 {
		t.Fatalf("finish entry mangled: %+v", fin)
	}
}

func TestFileJournalToleratesTornTailRefusesMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queries.jsonl")
	j, _, err := OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	_ = j.Accepted("q1", Request{K: 2})
	_ = j.Accepted("q2", Request{K: 2})
	j.Close()

	// A torn final line — crash mid-append — must be tolerated.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte{}, data...), []byte(`{"op":"acce`)...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, entries, err := OpenFileJournal(path)
	if err != nil {
		t.Fatalf("torn tail refused: %v", err)
	}
	j2.Close()
	if len(entries) != 2 {
		t.Fatalf("torn-tail reload returned %d entries, want 2", len(entries))
	}

	// Garbage with a valid entry after it is mid-file corruption: committed
	// entries would be silently dropped, so the journal must refuse.
	lines := append([]byte("garbage line\n"), data...)
	if err := os.WriteFile(path, lines, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenFileJournal(path); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

// memJournal records entries in memory so tests can assert what a
// restored server writes without re-reading files.
type memJournal struct {
	mu      sync.Mutex
	entries []JournalEntry
}

func (m *memJournal) Accepted(id string, req Request) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries = append(m.entries, JournalEntry{Op: "accept", ID: id, Req: &req})
	return nil
}

func (m *memJournal) Finished(st Status) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries = append(m.entries, JournalEntry{Op: "finish", ID: st.ID, Status: &st})
	return nil
}

func (m *memJournal) finishes() map[string]Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := map[string]Status{}
	for _, e := range m.entries {
		if e.Op == "finish" {
			out[e.ID] = *e.Status
		}
	}
	return out
}

// TestServerRestore replays a dead daemon's journal into a fresh server:
// the finished query's snapshot is served verbatim, the in-flight one is
// re-admitted under its original ID and runs to a fresh finish entry, and
// new submissions never collide with replayed IDs.
func TestServerRestore(t *testing.T) {
	jr := &memJournal{}
	srv, hs, _ := newTestServer(t, crowdtopk.SyntheticDataset(30, 0.3, 7), Config{Journal: jr})

	recorded := Status{
		ID: "q1", State: "done", K: 4, TMC: 123, Rounds: 9,
		TopK: []int{3, 0, 8, 2}, FinishedAtUnixNano: time.Now().UnixNano(),
	}
	entries := []JournalEntry{
		{Op: "accept", ID: "q1", Req: &Request{K: 4}, UnixNano: 1},
		{Op: "finish", ID: "q1", Status: &recorded},
		{Op: "accept", ID: "q2", Req: &Request{K: 2}, UnixNano: 2},
	}
	pending, finished := srv.Restore(entries)
	if pending != 1 || finished != 1 {
		t.Fatalf("Restore = (%d pending, %d finished), want (1, 1)", pending, finished)
	}

	// The finished query serves its recorded snapshot, not live state.
	st := getStatus(t, hs.URL, "q1")
	if st.State != "done" || st.TMC != 123 || len(st.TopK) != 4 || st.TopK[0] != 3 {
		t.Fatalf("restored terminal status mangled: %+v", st)
	}

	// The in-flight query runs to completion under its original ID.
	st = waitDone(t, hs.URL, "q2")
	if st.State != "done" || len(st.TopK) != 2 {
		t.Fatalf("re-admitted query: %+v", st)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := jr.finishes()["q2"]; ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("re-admitted query never wrote a finish entry")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, ok := jr.finishes()["q1"]; ok {
		t.Fatal("restored terminal query was re-journaled")
	}

	// New submissions continue past the replayed IDs.
	nst, code := postQuery(t, hs.URL, Request{K: 2})
	if code != 202 {
		t.Fatalf("submit after restore: HTTP %d", code)
	}
	if nst.ID != "q3" {
		t.Fatalf("new query got ID %s, want q3 (counter must clear replayed IDs)", nst.ID)
	}
	if err := srv.JournalErr(); err != nil {
		t.Fatalf("journal error latched: %v", err)
	}
}

// TestServerRestoreCanceledSnapshot pins that a canceled terminal state
// survives restore as canceled, not as a runnable query.
func TestServerRestoreCanceledSnapshot(t *testing.T) {
	srv, hs, _ := newTestServer(t, crowdtopk.SyntheticDataset(20, 0.3, 7), Config{})
	recorded := Status{ID: "q1", State: "canceled", K: 2, Canceled: true, FinishedAtUnixNano: 5}
	pending, finished := srv.Restore([]JournalEntry{
		{Op: "accept", ID: "q1", Req: &Request{K: 2}, UnixNano: 1},
		{Op: "finish", ID: "q1", Status: &recorded},
	})
	if pending != 0 || finished != 1 {
		t.Fatalf("Restore = (%d, %d), want (0, 1)", pending, finished)
	}
	st := getStatus(t, hs.URL, "q1")
	if st.State != "canceled" || !st.Canceled {
		t.Fatalf("canceled snapshot restored as %+v", st)
	}
}

var _ Journal = (*memJournal)(nil)
