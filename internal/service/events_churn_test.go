package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"crowdtopk"
	"crowdtopk/internal/loadtest"
)

// TestEventsChurn hammers the SSE endpoint with subscriber churn:
// several queries, each watched by persistent readers and by readers
// that disconnect mid-stream, while some of the queries are canceled
// under the subscribers' feet. Two guarantees are pinned: every
// subscriber that stays connected observes a terminal event (done or
// canceled) as its last payload, and the churn leaks no goroutines
// once the service drains.
func TestEventsChurn(t *testing.T) {
	before := runtime.NumGoroutine()

	srv, hs, sess := newTestServer(t, crowdtopk.SyntheticDataset(30, 0.3, 51), Config{
		MaxInFlight: 4,
	})

	const queries = 6
	ids := make([]string, queries)
	for i := range ids {
		st, code := postQuery(t, hs.URL, Request{K: 3})
		if code != http.StatusAccepted {
			t.Fatalf("query %d: admission status %d", i, code)
		}
		ids[i] = st.ID
	}

	// watch subscribes to one query's stream. When quit is non-nil the
	// reader disconnects after the first event instead of waiting for
	// the terminal one.
	watch := func(id string, quit bool) (last Status, sawDone bool, err error) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		req, _ := http.NewRequestWithContext(ctx, "GET", hs.URL+"/queries/"+id+"/events", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return Status{}, false, err
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		events := 0
		for sc.Scan() {
			line := sc.Text()
			if line == "event: done" {
				sawDone = true
			}
			if strings.HasPrefix(line, "data: ") {
				events++
				if jerr := json.Unmarshal([]byte(line[len("data: "):]), &last); jerr != nil {
					return last, sawDone, fmt.Errorf("bad payload %q: %w", line, jerr)
				}
				if quit && events >= 1 {
					cancel() // abandon the stream mid-flight
					return last, sawDone, nil
				}
				if sawDone {
					return last, sawDone, nil
				}
			}
		}
		return last, sawDone, sc.Err()
	}

	type outcome struct {
		id      string
		last    Status
		sawDone bool
		err     error
	}
	var wg sync.WaitGroup
	results := make(chan outcome, queries*3)
	for _, id := range ids {
		for sub := 0; sub < 3; sub++ {
			wg.Add(1)
			go func(id string, quit bool) {
				defer wg.Done()
				last, sawDone, err := watch(id, quit)
				results <- outcome{id: id, last: last, sawDone: sawDone, err: err}
			}(id, sub == 2) // two persistent readers, one early quitter
		}
	}

	// Cancel half the queries while the subscribers watch.
	for i, id := range ids {
		if i%2 == 1 {
			req, _ := http.NewRequest("DELETE", hs.URL+"/queries/"+id, nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
	}
	wg.Wait()
	close(results)

	persistent := 0
	for out := range results {
		if out.err != nil {
			t.Errorf("subscriber of %s: %v", out.id, out.err)
			continue
		}
		if !out.sawDone {
			continue // the early quitter; no terminal guarantee
		}
		persistent++
		if out.last.State != "done" && out.last.State != "canceled" {
			t.Errorf("subscriber of %s: terminal event carried state %q", out.id, out.last.State)
		}
	}
	if want := queries * 2; persistent != want {
		t.Errorf("%d persistent subscribers saw a terminal event, want %d", persistent, want)
	}

	// Drain everything, then the goroutine bracket: the churn must not
	// leak stream handlers, dispatchers or pool workers.
	hs.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if n := loadtest.StableGoroutines(before, 4, 5*time.Second); n > before+4 {
		t.Errorf("goroutine leak: %d before churn, %d after drain", before, n)
	}
}
