package service

import "net/http"

// handleDashboard serves the live ops dashboard: a single self-contained
// HTML page (no external assets, no build step) that polls the service's
// own JSON endpoints — /queries, /debug/slo, /debug/accounting — every
// two seconds and renders burn-rate alert banners, spend-vs-cap
// sparklines, scheduler/store gauges and the active query table.
func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Header().Set("Cache-Control", "no-cache")
	_, _ = w.Write([]byte(dashboardHTML))
}

const dashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>crowdtopk ops</title>
<style>
  :root {
    --bg: #11151c; --panel: #1a202b; --line: #2a3342; --fg: #d7dde7;
    --dim: #8b95a6; --ok: #3fb07f; --warn: #d9a03f; --page: #d95f4c;
    --accent: #5f9bd9;
  }
  * { box-sizing: border-box; }
  body { margin: 0; background: var(--bg); color: var(--fg);
         font: 13px/1.45 ui-monospace, SFMono-Regular, Menlo, Consolas, monospace; }
  header { display: flex; align-items: baseline; gap: 12px;
           padding: 10px 16px; border-bottom: 1px solid var(--line); }
  header h1 { font-size: 15px; margin: 0; font-weight: 600; }
  header .sub { color: var(--dim); }
  #banners { padding: 0 16px; }
  .banner { margin: 10px 0 0; padding: 8px 12px; border-radius: 4px;
            border: 1px solid; font-weight: 600; }
  .banner.warn { border-color: var(--warn); color: var(--warn); background: rgba(217,160,63,.08); }
  .banner.page { border-color: var(--page); color: var(--page); background: rgba(217,95,76,.10); }
  main { padding: 12px 16px; display: grid; gap: 12px; }
  .cards { display: grid; grid-template-columns: repeat(auto-fit, minmax(150px, 1fr)); gap: 10px; }
  .card { background: var(--panel); border: 1px solid var(--line); border-radius: 6px; padding: 10px 12px; }
  .card .label { color: var(--dim); font-size: 11px; text-transform: uppercase; letter-spacing: .06em; }
  .card .value { font-size: 20px; margin-top: 2px; }
  .card .hint { color: var(--dim); font-size: 11px; }
  .card.ok .value { color: var(--ok); }
  .card.warn .value { color: var(--warn); }
  .card.page .value { color: var(--page); }
  .panel { background: var(--panel); border: 1px solid var(--line); border-radius: 6px; padding: 10px 12px; }
  .panel h2 { margin: 0 0 8px; font-size: 12px; color: var(--dim);
              text-transform: uppercase; letter-spacing: .06em; font-weight: 600; }
  svg.spark { width: 100%; height: 64px; display: block; }
  table { border-collapse: collapse; width: 100%; }
  th, td { text-align: left; padding: 4px 10px 4px 0; border-bottom: 1px solid var(--line); }
  th { color: var(--dim); font-weight: 600; font-size: 11px; text-transform: uppercase; letter-spacing: .05em; }
  tr:last-child td { border-bottom: none; }
  .state-running { color: var(--accent); }
  .state-done { color: var(--ok); }
  .state-canceled, .state-queued { color: var(--dim); }
  .bar { background: var(--line); border-radius: 3px; height: 8px; width: 120px; overflow: hidden; display: inline-block; vertical-align: middle; }
  .bar i { display: block; height: 100%; background: var(--accent); }
  .bar.hot i { background: var(--warn); }
  #err { color: var(--page); padding: 4px 16px; }
</style>
</head>
<body>
<header>
  <h1>crowdtopk ops</h1>
  <span class="sub">live · polls every 2s</span>
  <span class="sub" id="updated"></span>
</header>
<div id="err"></div>
<div id="banners"></div>
<main>
  <div class="cards" id="cards"></div>
  <div class="panel">
    <h2>session spend rate (microtasks / poll)</h2>
    <svg class="spark" id="spark" preserveAspectRatio="none" viewBox="0 0 300 64"></svg>
  </div>
  <div class="panel">
    <h2>queries</h2>
    <table>
      <thead><tr>
        <th>id</th><th>state</th><th>k</th><th>algorithm</th><th>phase</th>
        <th>tmc</th><th>budget</th><th>rounds</th>
      </tr></thead>
      <tbody id="rows"></tbody>
    </table>
  </div>
</main>
<script>
"use strict";
const hist = [];            // per-poll spend deltas for the sparkline
let lastTMC = null;
const esc = s => String(s).replace(/[&<>"]/g,
  c => ({'&':'&amp;','<':'&lt;','>':'&gt;','"':'&quot;'}[c]));

function card(label, value, hint, cls) {
  return '<div class="card ' + (cls || '') + '"><div class="label">' + esc(label) +
    '</div><div class="value">' + esc(value) + '</div>' +
    (hint ? '<div class="hint">' + esc(hint) + '</div>' : '') + '</div>';
}

function burnHint(o) {
  return 'burn ' + o.short.burn.toFixed(2) + ' / ' + o.long.burn.toFixed(2) +
    ' (' + o.short.window_s + 's/' + o.long.window_s + 's)';
}

function renderBanners(sloResp) {
  const el = document.getElementById('banners');
  if (!sloResp.enabled) { el.innerHTML = ''; return; }
  const st = sloResp.status, out = [];
  if (st.latency.enabled && st.latency.state !== 'ok')
    out.push('<div class="banner ' + st.latency.state + '">latency SLO ' +
      st.latency.state.toUpperCase() + ' — ' + burnHint(st.latency) +
      ', ' + st.latency.breached + '/' + st.latency.total + ' queries over target</div>');
  if (st.budget.enabled && st.budget.state !== 'ok') {
    let ex = st.budget.exhaust_s >= 0 ? ', exhausts in ~' + st.budget.exhaust_s + 's' : '';
    out.push('<div class="banner ' + st.budget.state + '">budget burn ' +
      st.budget.state.toUpperCase() + ' — ' + burnHint(st.budget) +
      ', ' + st.budget.remaining + ' of ' + st.budget.budget + ' left' + ex + '</div>');
  }
  el.innerHTML = out.join('');
}

function renderCards(acct, health, sloResp) {
  const c = [];
  c.push(card('session tmc', acct.session_tmc,
    acct.audit_on ? 'audit ' + acct.audit_len + (acct.balanced ? ' · balanced' : ' · UNBALANCED') : 'audit off',
    acct.balanced ? 'ok' : 'page'));
  c.push(card('running', acct.running + ' / ' + health.max_inflight,
    acct.queued + ' queued (cap ' + health.max_queue + ')'));
  if (sloResp.enabled) {
    const l = sloResp.status.latency, b = sloResp.status.budget;
    if (l.enabled) c.push(card('latency slo', l.state,
      'target ' + l.target_ms + 'ms @ ' + l.goal + ' · ' + burnHint(l), l.state));
    if (b.enabled) c.push(card('budget burn', b.state,
      b.remaining + ' of ' + b.budget + ' left over ' + b.horizon_s + 's' +
      (b.exhaust_s >= 0 ? ' · ~' + b.exhaust_s + 's' : ''), b.state));
  }
  if (acct.store_hits || acct.store_size)
    c.push(card('store', acct.store_hits + ' hits',
      (acct.store_stale||0) + ' stale · ' + (acct.store_size||0) + ' records'));
  document.getElementById('cards').innerHTML = c.join('');
}

function renderSpark(tmc) {
  if (lastTMC !== null) {
    hist.push(Math.max(0, tmc - lastTMC));
    if (hist.length > 150) hist.shift();
  }
  lastTMC = tmc;
  const max = Math.max(1, ...hist);
  const w = 300 / Math.max(1, hist.length - 1);
  const pts = hist.map((v, i) =>
    (i * w).toFixed(1) + ',' + (60 - v / max * 56).toFixed(1)).join(' ');
  document.getElementById('spark').innerHTML = hist.length > 1
    ? '<polyline fill="none" stroke="#5f9bd9" stroke-width="1.5" points="' + pts + '"/>' +
      '<text x="2" y="12" fill="#8b95a6" font-size="10">peak ' + max + '</text>'
    : '<text x="2" y="34" fill="#8b95a6" font-size="11">collecting…</text>';
}

function renderRows(queries) {
  const rows = queries.slice().reverse().slice(0, 50).map(q => {
    let budget = '—';
    if (q.max_cost > 0) {
      const pct = Math.min(100, 100 * q.tmc / q.max_cost);
      budget = '<span class="bar' + (pct > 85 ? ' hot' : '') +
        '"><i style="width:' + pct.toFixed(0) + '%"></i></span> ' + pct.toFixed(0) + '%';
    }
    return '<tr><td>' + esc(q.id) + '</td><td class="state-' + esc(q.state) + '">' +
      esc(q.state) + (q.partial ? ' (partial)' : '') + '</td><td>' + q.k + '</td><td>' +
      esc(q.algorithm || '') + '</td><td>' + esc(q.phase || '') + '</td><td>' + q.tmc +
      '</td><td>' + budget + '</td><td>' + q.rounds + '</td></tr>';
  });
  document.getElementById('rows').innerHTML =
    rows.join('') || '<tr><td colspan="8" style="color:#8b95a6">no queries yet</td></tr>';
}

async function tick() {
  try {
    const [queries, acct, health, sloResp] = await Promise.all([
      fetch('/queries').then(r => r.json()),
      fetch('/debug/accounting').then(r => r.json()),
      fetch('/healthz').then(r => r.json()),
      fetch('/debug/slo').then(r => r.json()),
    ]);
    renderBanners(sloResp);
    renderCards(acct, health, sloResp);
    renderSpark(acct.session_tmc);
    renderRows(queries);
    document.getElementById('err').textContent = '';
    document.getElementById('updated').textContent = 'updated ' + new Date().toLocaleTimeString();
  } catch (e) {
    document.getElementById('err').textContent = 'poll failed: ' + e;
  }
}
tick();
setInterval(tick, 2000);
</script>
</body>
</html>
`
