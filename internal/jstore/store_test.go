package jstore

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"
)

func rec(lo, hi, n int, mean float64) Record {
	return Record{Lo: lo, Hi: hi, Outcome: 1, N: n, Mean: mean, M2: 1.5,
		BinN: n, BinMean: 0.8, BinM2: float64(n) * 0.36, Confidence: 0.98}
}

func TestMemStoreCommitLookup(t *testing.T) {
	s := NewMemStore()
	if s.Len() != 0 {
		t.Fatalf("fresh store Len = %d", s.Len())
	}
	if !s.Commit(rec(1, 2, 30, 0.4)) {
		t.Fatal("first commit of a pair should grow the store")
	}
	got, ok := s.Lookup(1, 2)
	if !ok {
		t.Fatal("committed pair not found")
	}
	if got.N != 30 || got.Mean != 0.4 || got.Outcome != 1 {
		t.Errorf("lookup = %+v", got)
	}
	if got.Seq == 0 {
		t.Error("Commit did not assign Seq")
	}
	if got.UnixNano == 0 {
		t.Error("Commit did not stamp UnixNano")
	}
	if _, ok := s.Lookup(2, 1); ok {
		t.Error("non-canonical lookup (2,1) found a record")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestMemStoreRejectsMalformedRecords(t *testing.T) {
	s := NewMemStore()
	for _, r := range []Record{
		rec(2, 1, 30, 0), // not canonical
		rec(3, 3, 30, 0), // degenerate pair
		rec(1, 2, 0, 0),  // empty bag
	} {
		if s.Commit(r) {
			t.Errorf("Commit accepted malformed record %+v", r)
		}
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d after rejected commits", s.Len())
	}
}

func TestMemStoreNewestWins(t *testing.T) {
	s := NewMemStore()
	s.Commit(rec(1, 2, 30, 0.4))
	first, _ := s.Lookup(1, 2)
	if s.Commit(rec(1, 2, 60, 0.5)) {
		t.Error("re-commit of a pair reported growth")
	}
	got, _ := s.Lookup(1, 2)
	if got.N != 60 || got.Mean != 0.5 {
		t.Errorf("re-commit did not replace: %+v", got)
	}
	if got.Seq <= first.Seq {
		t.Errorf("Seq did not advance: %d then %d", first.Seq, got.Seq)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestMemStoreKeepsExplicitTimestamp(t *testing.T) {
	s := NewMemStore()
	at := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC).UnixNano()
	r := rec(1, 2, 30, 0.4)
	r.UnixNano = at
	s.Commit(r)
	got, _ := s.Lookup(1, 2)
	if got.UnixNano != at {
		t.Errorf("explicit UnixNano %d overwritten to %d", at, got.UnixNano)
	}
}

func TestMemStoreSnapshotSorted(t *testing.T) {
	s := NewMemStore()
	for _, k := range [][2]int{{5, 9}, {1, 2}, {5, 7}, {0, 3}} {
		s.Commit(rec(k[0], k[1], 30, 0.1))
	}
	snap := s.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d records, want 4", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		a, b := snap[i-1], snap[i]
		if a.Lo > b.Lo || (a.Lo == b.Lo && a.Hi >= b.Hi) {
			t.Errorf("snapshot not sorted at %d: (%d,%d) before (%d,%d)", i, a.Lo, a.Hi, b.Lo, b.Hi)
		}
	}
}

func TestMemStoreConcurrentCommits(t *testing.T) {
	s := NewMemStore()
	const workers, pairs = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for p := 0; p < pairs; p++ {
				s.Commit(rec(p, p+1+w%3+1, 30+w, 0.1*float64(w)))
				s.Lookup(p, p+2)
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != len(s.Snapshot()) {
		t.Errorf("Len %d != snapshot %d", s.Len(), len(s.Snapshot()))
	}
	// Seq must be unique per commit: workers*pairs commits happened.
	if got := s.seq.Load(); got != workers*pairs {
		t.Errorf("seq clock = %d, want %d", got, workers*pairs)
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	path := t.TempDir() + "/js.jsonl"
	fs, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if !fs.Commit(rec(i, i+1, 30+i, 0.1*float64(i))) {
			t.Fatalf("commit %d rejected", i)
		}
	}
	fs.Commit(rec(3, 4, 99, 0.9)) // supersede one pair
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 10 {
		t.Fatalf("reloaded Len = %d, want 10", re.Len())
	}
	got, ok := re.Lookup(3, 4)
	if !ok || got.N != 99 || got.Mean != 0.9 {
		t.Errorf("newest-wins on reload failed: %+v (ok=%v)", got, ok)
	}
	// The logical clock continues past the loaded records.
	re.Commit(rec(20, 21, 5, 0))
	fresh, _ := re.Lookup(20, 21)
	if fresh.Seq <= got.Seq {
		t.Errorf("seq clock did not continue: loaded %d, fresh %d", got.Seq, fresh.Seq)
	}
}

func TestFileStoreSkipsCorruptTail(t *testing.T) {
	path := t.TempDir() + "/js.jsonl"
	fs, _ := OpenFile(path)
	fs.Commit(rec(1, 2, 30, 0.4))
	fs.Commit(rec(2, 3, 30, 0.2))
	fs.Close()

	// Simulate a crash mid-append: a truncated last line.
	f, err := openAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"lo":7,"hi":8,"o":1,"n":3`)
	f.Close()

	re, err := OpenFile(path)
	if err != nil {
		t.Fatalf("truncated tail should be tolerated: %v", err)
	}
	defer re.Close()
	if re.Len() != 2 {
		t.Errorf("Len = %d, want 2 (tail dropped)", re.Len())
	}
}

func TestFileStoreRejectsMidFileCorruption(t *testing.T) {
	path := t.TempDir() + "/js.jsonl"
	fs, _ := OpenFile(path)
	fs.Commit(rec(1, 2, 30, 0.4))
	fs.Close()

	f, err := openAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("garbage, not json\n")
	f.Close()
	fs2, _ := OpenFile(path) // garbage is the tail here: tolerated
	fs2.Commit(rec(2, 3, 30, 0.2))
	fs2.Close()

	if _, err := OpenFile(path); err == nil {
		t.Fatal("mid-file corruption (garbage before a valid record) must error, not drop data")
	}
}

func TestFileStoreCompact(t *testing.T) {
	path := t.TempDir() + "/js.jsonl"
	fs, _ := OpenFile(path)
	// Many superseding commits of few pairs: the file grows, the index not.
	for i := 0; i < 50; i++ {
		fs.Commit(rec(1, 2, 30+i, 0.1))
		fs.Commit(rec(2, 3, 30+i, 0.2))
	}
	if fs.lines != 100 {
		t.Fatalf("lines = %d, want 100 pre-compact", fs.lines)
	}
	if err := fs.Compact(); err != nil {
		t.Fatal(err)
	}
	if fs.lines != 2 {
		t.Errorf("lines = %d, want 2 post-compact", fs.lines)
	}
	// The store keeps working after the handle swap.
	if !fs.Commit(rec(5, 6, 30, 0.5)) {
		t.Error("commit after compact rejected")
	}
	fs.Close()

	re, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 3 {
		t.Errorf("reloaded Len = %d, want 3", re.Len())
	}
	if got, _ := re.Lookup(1, 2); got.N != 79 {
		t.Errorf("compact lost the newest record: N = %d, want 79", got.N)
	}
}

func TestFileStoreAutoCompacts(t *testing.T) {
	path := t.TempDir() + "/js.jsonl"
	fs, _ := OpenFile(path)
	// Push far past the floor with only 16 live pairs: dead > live forces
	// the automatic rewrite, after which the file restarts at O(pairs).
	const commits = compactFloor + 128
	for i := 0; i < commits; i++ {
		fs.Commit(rec(i%16, i%16+1+16, 30, 0.1))
	}
	if fs.lines >= commits {
		t.Errorf("auto-compact never triggered: %d lines after %d commits of %d pairs",
			fs.lines, commits, fs.Len())
	}
	fs.Close()
}

func TestFileStoreConcurrentCommits(t *testing.T) {
	path := t.TempDir() + "/js.jsonl"
	fs, _ := OpenFile(path)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for p := 0; p < 100; p++ {
				fs.Commit(rec(p, p+1+w, 30, 0.1))
				fs.Lookup(p, p+1)
			}
		}(w)
	}
	wg.Wait()
	n := fs.Len()
	fs.Close()
	re, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != n {
		t.Errorf("reloaded %d pairs, committed %d", re.Len(), n)
	}
}

// openAppend opens the raw file for test-side tampering.
func openAppend(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
}

func TestStripeOfStaysInRange(t *testing.T) {
	for i := 0; i < 1000; i++ {
		k := [2]int{i, i * 7}
		if s := stripeOf(k); s >= storeStripes {
			t.Fatalf("stripeOf(%v) = %d out of range", k, s)
		}
	}
}

func ExampleRecord_Key() {
	fmt.Println(rec(3, 9, 30, 0.5).Key())
	// Output: [3 9]
}
