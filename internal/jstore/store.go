// Package jstore is the persistent cross-query judgment store: concluded
// comparison verdicts, keyed by canonical item pair, together with the
// exact posterior summary of the samples that produced them. The paper's
// §5.5 comparison cache lives inside one query; this store is the same
// asset lifted to fleet scope — a warm store answers repeat-heavy traffic
// at near-zero marginal TMC, because a concluded pair's verdict and bag
// statistics can be replayed into a fresh engine instead of re-bought
// from the crowd.
//
// Two drivers implement the minimal Store interface: MemStore, an
// in-memory 64-way striped map (mirroring the comparison runner's memo
// stripes), and FileStore, a reviewable JSONL file with load-on-open and
// atomic rewrite-on-compact. Both are safe for concurrent use.
package jstore

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Record is one concluded comparison: the verdict plus the exact
// accumulated state of the pair's sample bag at conclusion time. Mean/M2
// are the raw Welford accumulators (not derived statistics), so a bag
// restored from a Record is bit-identical to the bag that produced it —
// the property that makes warm-started queries return byte-identical
// top-k sets.
type Record struct {
	// Lo, Hi identify the pair canonically (Lo < Hi).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Outcome is the concluded verdict toward Lo: +1 Lo wins, -1 Hi wins,
	// 0 statistically indistinguishable under the per-pair budget.
	Outcome int `json:"o"`
	// Exhausted marks an Outcome of 0 that was forced by the per-pair
	// budget rather than genuine equality evidence.
	Exhausted bool `json:"exh,omitempty"`

	// N, Mean, M2 are the preference bag's Welford state oriented toward
	// Lo (count, running mean, sum of squared deviations).
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	// BinN, BinMean, BinM2 are the same for the ±1 sign-only view.
	BinN    int     `json:"bin_n"`
	BinMean float64 `json:"bin_mean"`
	BinM2   float64 `json:"bin_m2"`

	// Confidence is the per-comparison confidence level 1−α the verdict
	// was concluded at. Queries demanding a higher level treat the record
	// as a prior to verify, not a verdict to trust.
	Confidence float64 `json:"conf"`

	// Policy names the comparison sampling-schedule policy that concluded
	// the verdict ("fixed", "voi", "pac", ...). A query running under a
	// different policy treats the record as a prior to verify, not a
	// verdict to trust — the stopping semantics it was concluded under are
	// not the consumer's. Empty on records from before the policy layer,
	// which are read as "fixed" — the only schedule that existed when
	// they were committed.
	Policy string `json:"pol,omitempty"`

	// Seq is the store's logical commit timestamp: a monotonic sequence
	// number assigned at Commit, so "newest wins" is well defined even
	// when wall clocks jump. UnixNano is the wall-clock commit time the
	// TTL/staleness policy measures age against.
	Seq      uint64 `json:"seq"`
	UnixNano int64  `json:"at"`
}

// Key returns the record's canonical pair key.
func (r Record) Key() [2]int { return [2]int{r.Lo, r.Hi} }

// Store is the minimal judgment-store contract (the dataset-store shape:
// a small interface, a file driver first). Implementations must be safe
// for concurrent use.
type Store interface {
	// Lookup returns the stored record for the canonical pair (lo, hi).
	Lookup(lo, hi int) (Record, bool)
	// Commit stores a record, replacing any existing record for the pair
	// (newest wins); the store assigns Seq and, when zero, UnixNano. It
	// reports whether the pair was new to the store (its size grew).
	Commit(Record) bool
	// Snapshot returns a copy of every live record, sorted by (Lo, Hi).
	Snapshot() []Record
	// Len returns the number of distinct pairs stored.
	Len() int
}

// storeStripes must be a power of two; it mirrors the comparison
// runner's memo striping so neither table becomes the other's bottleneck.
const storeStripes = 64

type stripe struct {
	mu sync.RWMutex
	m  map[[2]int]Record
}

// stripeOf spreads canonical pairs over stripes (same mix as the memo).
func stripeOf(k [2]int) uint64 {
	x := uint64(uint32(k[0]))<<32 | uint64(uint32(k[1]))
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x & (storeStripes - 1)
}

// MemStore is the in-memory driver: a 64-way striped map. The zero value
// is not ready; use NewMemStore.
type MemStore struct {
	stripes [storeStripes]stripe
	seq     atomic.Uint64
	size    atomic.Int64
	now     func() time.Time
}

// NewMemStore returns an empty in-memory judgment store.
func NewMemStore() *MemStore {
	return &MemStore{now: time.Now}
}

// Lookup implements Store.
func (s *MemStore) Lookup(lo, hi int) (Record, bool) {
	k := [2]int{lo, hi}
	st := &s.stripes[stripeOf(k)]
	st.mu.RLock()
	r, ok := st.m[k]
	st.mu.RUnlock()
	return r, ok
}

// Commit implements Store. Records with Lo >= Hi or N <= 0 are rejected
// (returning false) — they could never seed a bag.
func (s *MemStore) Commit(r Record) bool {
	if r.Lo >= r.Hi || r.N <= 0 {
		return false
	}
	r.Seq = s.seq.Add(1)
	if r.UnixNano == 0 {
		r.UnixNano = s.now().UnixNano()
	}
	k := r.Key()
	st := &s.stripes[stripeOf(k)]
	st.mu.Lock()
	if st.m == nil {
		st.m = make(map[[2]int]Record)
	}
	_, existed := st.m[k]
	st.m[k] = r
	st.mu.Unlock()
	if !existed {
		s.size.Add(1)
	}
	return !existed
}

// Snapshot implements Store.
func (s *MemStore) Snapshot() []Record {
	out := make([]Record, 0, s.Len())
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		for _, r := range st.m {
			out = append(out, r)
		}
		st.mu.RUnlock()
	}
	sortRecords(out)
	return out
}

// Len implements Store.
func (s *MemStore) Len() int { return int(s.size.Load()) }

// sortRecords orders records by canonical pair for stable, reviewable
// snapshots and compacted files.
func sortRecords(rs []Record) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Lo != rs[j].Lo {
			return rs[i].Lo < rs[j].Lo
		}
		return rs[i].Hi < rs[j].Hi
	})
}
