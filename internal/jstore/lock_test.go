package jstore

import (
	"errors"
	"path/filepath"
	"testing"
)

// TestFileStoreWriterLock pins the single-writer guarantee: a second
// OpenFile on a held store fails fast with ErrStoreLocked instead of
// interleaving half-lines into the JSONL file, and Close releases the
// lock so the next opener succeeds with the data intact.
func TestFileStoreWriterLock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "judgments.jsonl")
	fs, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !fs.Commit(rec(1, 2, 30, 0.4)) {
		t.Fatal("commit under lock failed")
	}

	_, err = OpenFile(path)
	if !errors.Is(err, ErrStoreLocked) {
		t.Fatalf("second open: got %v, want ErrStoreLocked", err)
	}

	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	fs2, err := OpenFile(path)
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	defer fs2.Close()
	got, ok := fs2.Lookup(1, 2)
	if !ok || got.N != 30 {
		t.Fatalf("data lost across lock cycle: %+v ok=%v", got, ok)
	}
}

// TestFileStoreLockSurvivesCompact pins that compaction's file swap does
// not drop the lock: the store stays exclusively held afterwards.
func TestFileStoreLockSurvivesCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "judgments.jsonl")
	fs, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	for i := 0; i < 10; i++ {
		fs.Commit(rec(i, i+1, 5+i, 0.1))
	}
	if err := fs.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); !errors.Is(err, ErrStoreLocked) {
		t.Fatalf("store unlocked after compact: %v", err)
	}
	if fs.Len() != 10 {
		t.Fatalf("Len = %d after compact, want 10", fs.Len())
	}
}
