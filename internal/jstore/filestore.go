package jstore

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"crowdtopk/internal/lockfile"
)

// ErrStoreLocked reports that another process holds the store's writer
// lock. Errors returned by OpenFile wrap it (with the holder's PID when
// readable); detect with errors.Is.
var ErrStoreLocked = errors.New("jstore: store locked by another process")

// FileStore is the persistent driver: an append-only JSONL file (one
// Record per line, human-reviewable) mirrored by an in-memory MemStore
// index for lock-cheap lookups. Open loads the file, replaying lines in
// order so the last record per pair wins; Commit appends; Compact
// atomically rewrites the file with one line per live pair, sorted by
// pair for reviewable diffs. Compaction triggers automatically once the
// file carries more superseded lines than live ones (past a small floor),
// so a long-lived store's file stays O(pairs), not O(commits).
type FileStore struct {
	mem *MemStore

	mu    sync.Mutex
	path  string
	f     *os.File
	w     *bufio.Writer
	lines int // lines in the file since last compact (live + superseded)
	lock  *lockfile.Lock
}

// compactFloor keeps tiny stores from compacting on every few commits.
const compactFloor = 1024

// OpenFile opens (creating if absent) a JSONL judgment store at path.
// Corrupt or truncated trailing lines — a crash mid-append — are skipped
// with the valid prefix preserved; a corrupt line in the middle of the
// file is reported as an error.
//
// The store is guarded by an advisory lock on a sidecar file
// (path+".lock"): two processes appending to one JSONL file interleave
// half-lines and destroy it, so a second opener fails fast with an
// error wrapping ErrStoreLocked instead. The kernel drops the lock when
// the holder exits, even on SIGKILL — a crashed holder never wedges the
// store.
func OpenFile(path string) (*FileStore, error) {
	lock, err := lockfile.Acquire(path + ".lock")
	if err != nil {
		if errors.Is(err, lockfile.ErrLocked) {
			return nil, fmt.Errorf("jstore: %s: %w: %v", path, ErrStoreLocked, err)
		}
		return nil, fmt.Errorf("jstore: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		lock.Release()
		return nil, fmt.Errorf("jstore: %w", err)
	}
	fs := &FileStore{mem: NewMemStore(), path: path, lock: lock}
	var maxSeq uint64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	bad := 0 // candidate-corrupt lines seen so far (only a suffix may be)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			bad++
			continue
		}
		if bad > 0 {
			// A valid record after an invalid line: the corruption was not
			// a truncated tail, refuse to silently drop committed data.
			f.Close()
			lock.Release()
			return nil, fmt.Errorf("jstore: %s: corrupt record mid-file (%d bad lines before a valid one)", path, bad)
		}
		fs.restore(r)
		if r.Seq > maxSeq {
			maxSeq = r.Seq
		}
		fs.lines++
	}
	if err := sc.Err(); err != nil {
		f.Close()
		lock.Release()
		return nil, fmt.Errorf("jstore: read %s: %w", path, err)
	}
	// Continue the logical clock past everything on disk.
	fs.mem.seq.Store(maxSeq)
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		lock.Release()
		return nil, fmt.Errorf("jstore: seek %s: %w", path, err)
	}
	fs.f = f
	fs.w = bufio.NewWriter(f)
	return fs, nil
}

// restore inserts a loaded record into the index keeping its original
// Seq/UnixNano (unlike Commit, which stamps fresh ones).
func (fs *FileStore) restore(r Record) {
	if r.Lo >= r.Hi || r.N <= 0 {
		return
	}
	k := r.Key()
	st := &fs.mem.stripes[stripeOf(k)]
	st.mu.Lock()
	if st.m == nil {
		st.m = make(map[[2]int]Record)
	}
	prev, existed := st.m[k]
	if !existed || r.Seq >= prev.Seq {
		st.m[k] = r
	}
	st.mu.Unlock()
	if !existed {
		fs.mem.size.Add(1)
	}
}

// Lookup implements Store.
func (fs *FileStore) Lookup(lo, hi int) (Record, bool) { return fs.mem.Lookup(lo, hi) }

// Len implements Store.
func (fs *FileStore) Len() int { return fs.mem.Len() }

// Snapshot implements Store.
func (fs *FileStore) Snapshot() []Record { return fs.mem.Snapshot() }

// Commit implements Store: the record is indexed, appended to the file
// and flushed. A failed append keeps the in-memory record (the evidence
// is still good this process lifetime) but is reported on Close.
func (fs *FileStore) Commit(r Record) bool {
	if r.Lo >= r.Hi || r.N <= 0 {
		return false
	}
	grew := fs.mem.Commit(r)
	// Re-read the stamped record so the file carries the assigned Seq.
	stamped, _ := fs.mem.Lookup(r.Lo, r.Hi)
	line, err := json.Marshal(stamped)
	if err != nil {
		return grew
	}
	fs.mu.Lock()
	if fs.w != nil {
		fs.w.Write(line)
		fs.w.WriteByte('\n')
		fs.w.Flush()
		fs.lines++
		dead := fs.lines - fs.mem.Len()
		if dead > fs.mem.Len() && fs.lines > compactFloor {
			fs.compactLocked()
		}
	}
	fs.mu.Unlock()
	return grew
}

// Compact rewrites the file with one line per live pair, sorted, via an
// atomic temp-file rename — readers of the path never observe a partial
// file, and a crash mid-compact leaves the original intact.
func (fs *FileStore) Compact() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.compactLocked()
}

func (fs *FileStore) compactLocked() error {
	recs := fs.mem.Snapshot()
	dir := filepath.Dir(fs.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(fs.path)+".compact-*")
	if err != nil {
		return fmt.Errorf("jstore: compact %s: %w", fs.path, err)
	}
	tw := bufio.NewWriter(tmp)
	for _, r := range recs {
		line, err := json.Marshal(r)
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("jstore: compact %s: %w", fs.path, err)
		}
		tw.Write(line)
		tw.WriteByte('\n')
	}
	if err := tw.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("jstore: compact %s: %w", fs.path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("jstore: compact %s: %w", fs.path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("jstore: compact %s: %w", fs.path, err)
	}
	if err := os.Rename(tmp.Name(), fs.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("jstore: compact %s: %w", fs.path, err)
	}
	// Swap the append handle to the new file.
	if fs.w != nil {
		fs.w.Flush()
	}
	if fs.f != nil {
		fs.f.Close()
	}
	f, err := os.OpenFile(fs.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		fs.f, fs.w = nil, nil
		return fmt.Errorf("jstore: reopen %s after compact: %w", fs.path, err)
	}
	fs.f = f
	fs.w = bufio.NewWriter(f)
	fs.lines = len(recs)
	return nil
}

// Close flushes and closes the file and releases the writer lock. The
// in-memory index stays readable.
func (fs *FileStore) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var err error
	if fs.w != nil {
		err = fs.w.Flush()
		fs.w = nil
	}
	if fs.f != nil {
		if cerr := fs.f.Close(); err == nil {
			err = cerr
		}
		fs.f = nil
	}
	if fs.lock != nil {
		if lerr := fs.lock.Release(); err == nil {
			err = lerr
		}
		fs.lock = nil
	}
	return err
}

// Path returns the backing file path.
func (fs *FileStore) Path() string { return fs.path }
