package dataset

import "testing"

// Preference sampling is the innermost loop of every simulation; these
// benchmarks size one microtask per dataset mechanism.

func benchPreference(b *testing.B, s Source) {
	b.Helper()
	rng := newRand(1)
	n := s.NumItems()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Preference(rng, i%(n-1), n-1)
	}
}

func BenchmarkPreferenceIMDb(b *testing.B)   { benchPreference(b, NewIMDb(1)) }
func BenchmarkPreferenceJester(b *testing.B) { benchPreference(b, NewJester(2)) }
func BenchmarkPreferencePhoto(b *testing.B)  { benchPreference(b, NewPhoto(3)) }
func BenchmarkPreferenceLatent(b *testing.B) { benchPreference(b, NewSynthetic(200, 0.3, 4)) }

func BenchmarkGenerateIMDb(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NewIMDb(int64(i))
	}
}

func BenchmarkGeneratePhoto(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NewPhoto(int64(i))
	}
}

func BenchmarkPairMomentsJesterColdAndHot(b *testing.B) {
	j := NewJester(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.PairMoments(i%99, 99)
	}
}
