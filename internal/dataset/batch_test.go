package dataset

import (
	"math/rand"
	"testing"

	"crowdtopk/internal/crowd"
)

// batchSources returns every built-in source family, each of which must
// implement crowd.BatchOracle with a kernel that is stream- and
// value-equivalent to scalar sampling.
func batchSources(t *testing.T) map[string]Source {
	t.Helper()
	return map[string]Source{
		"latent":     NewSynthetic(40, 0.3, 7),
		"peopleage":  NewPeopleAge(7),
		"histogram":  NewBook(7),
		"matrix":     NewJester(7),
		"judgmentdb": NewPhoto(7),
		"subset":     RandomSubset(NewBook(7), 25, newRand(11)),
	}
}

// TestBatchKernelsMatchScalar pins the BatchOracle contract for every
// built-in source: Preferences(rng, i, j, dst) must return exactly the
// values — and leave rng in exactly the state — of len(dst) sequential
// Preference calls. The engine relies on this to mix batched and scalar
// purchases of one pair without perturbing the sample stream.
func TestBatchKernelsMatchScalar(t *testing.T) {
	for name, src := range batchSources(t) {
		t.Run(name, func(t *testing.T) {
			bo, ok := any(src).(crowd.BatchOracle)
			if !ok {
				t.Fatalf("%s does not implement crowd.BatchOracle", name)
			}
			n := src.NumItems()
			pairs := [][2]int{{0, 1}, {1, 0}, {2, n - 1}, {n - 1, 2}, {n / 2, n/2 + 1}}
			for _, p := range pairs {
				const batch = 33
				scalarRng := rand.New(rand.NewSource(42))
				batchRng := rand.New(rand.NewSource(42))

				want := make([]float64, batch)
				for t := range want {
					want[t] = src.Preference(scalarRng, p[0], p[1])
				}
				got := make([]float64, batch)
				bo.Preferences(batchRng, p[0], p[1], got)

				for s := range want {
					if got[s] != want[s] {
						t.Fatalf("pair %v sample %d: batch %v != scalar %v", p, s, got[s], want[s])
					}
				}
				// The two generators must be in identical states afterwards:
				// the next draws agree.
				if a, b := scalarRng.Int63(), batchRng.Int63(); a != b {
					t.Fatalf("pair %v: rng state diverged after batch (%d vs %d)", p, a, b)
				}
			}
		})
	}
}

// TestBatchKernelSplitInvariance checks that slicing one logical stream
// into arbitrary batch sizes does not change the values: 1+5+27 batched
// samples equal one batch of 33.
func TestBatchKernelSplitInvariance(t *testing.T) {
	for name, src := range batchSources(t) {
		t.Run(name, func(t *testing.T) {
			bo := any(src).(crowd.BatchOracle)
			i, j := 1, src.NumItems()-1

			oneRng := rand.New(rand.NewSource(99))
			one := make([]float64, 33)
			bo.Preferences(oneRng, i, j, one)

			splitRng := rand.New(rand.NewSource(99))
			var split []float64
			for _, sz := range []int{1, 5, 27} {
				part := make([]float64, sz)
				bo.Preferences(splitRng, i, j, part)
				split = append(split, part...)
			}
			for s := range one {
				if one[s] != split[s] {
					t.Fatalf("sample %d: whole %v != split %v", s, one[s], split[s])
				}
			}
		})
	}
}
