package dataset

import (
	"fmt"
	"math"

	"crowdtopk/internal/stats"
)

// Matrix is a dense user×item rating dataset in the style of Jester: a
// pairwise judgment picks one random user and returns the normalized
// difference of her ratings for the two items, so inter-user disagreement
// (not per-rating noise) is the source of comparison difficulty (§6.1).
type Matrix struct {
	name    string
	ratings [][]float64 // ratings[u][i]
	lo, hi  float64     // rating scale bounds
	mean    []float64   // per-item mean over users
	rank    []int

	// momentsMemo caches PairMoments, which require a pass over all users.
	momentsMemo map[[2]int][2]float64
}

// MatrixConfig parameterizes the synthetic user×item generator.
type MatrixConfig struct {
	Name  string
	Items int
	Users int
	// Lo and Hi bound the rating scale (Jester uses [-10, 10]).
	Lo, Hi float64
	// ItemSD spreads the item means; UserBiasSD and NoiseSD shape per-user
	// systematic and idiosyncratic disagreement.
	ItemSD, UserBiasSD, NoiseSD float64
	Seed                        int64
}

// NewMatrix generates a matrix dataset from the config.
func NewMatrix(cfg MatrixConfig) *Matrix {
	if cfg.Items < 2 || cfg.Users < 1 {
		panic(fmt.Sprintf("dataset: NewMatrix requires Items >= 2 and Users >= 1, got %d, %d", cfg.Items, cfg.Users))
	}
	if cfg.Hi <= cfg.Lo {
		panic(fmt.Sprintf("dataset: NewMatrix requires Lo < Hi, got [%v,%v]", cfg.Lo, cfg.Hi))
	}
	rng := newRand(cfg.Seed)
	mid := (cfg.Lo + cfg.Hi) / 2

	itemMean := make([]float64, cfg.Items)
	for i := range itemMean {
		itemMean[i] = clamp(mid+rng.NormFloat64()*cfg.ItemSD, cfg.Lo, cfg.Hi)
	}

	m := &Matrix{
		name:        cfg.Name,
		ratings:     make([][]float64, cfg.Users),
		lo:          cfg.Lo,
		hi:          cfg.Hi,
		mean:        make([]float64, cfg.Items),
		momentsMemo: make(map[[2]int][2]float64),
	}
	for u := 0; u < cfg.Users; u++ {
		bias := rng.NormFloat64() * cfg.UserBiasSD
		row := make([]float64, cfg.Items)
		for i := 0; i < cfg.Items; i++ {
			row[i] = clamp(itemMean[i]+bias+rng.NormFloat64()*cfg.NoiseSD, cfg.Lo, cfg.Hi)
		}
		m.ratings[u] = row
	}
	for i := 0; i < cfg.Items; i++ {
		s := 0.0
		for u := 0; u < cfg.Users; u++ {
			s += m.ratings[u][i]
		}
		m.mean[i] = s / float64(cfg.Users)
	}
	m.rank = ranksFromScores(m.mean)
	return m
}

// NewJester returns the Jester-like dataset: 100 jokes rated by a dense
// population of users on the [−10, 10] scale; ground truth by mean rating.
func NewJester(seed int64) *Matrix {
	return NewMatrix(MatrixConfig{
		Name:       "jester",
		Items:      100,
		Users:      5000,
		Lo:         -10,
		Hi:         10,
		ItemSD:     2.2,
		UserBiasSD: 1.5,
		NoiseSD:    4.0,
		Seed:       seed,
	})
}

// Name implements Source.
func (m *Matrix) Name() string { return m.name }

// NumItems implements crowd.Oracle.
func (m *Matrix) NumItems() int { return len(m.mean) }

// Users returns the number of simulated users.
func (m *Matrix) Users() int { return len(m.ratings) }

// Preference implements crowd.Oracle: v = (r_{u,i} − r_{u,j})/(hi−lo) for
// a uniformly random user u.
func (m *Matrix) Preference(rng *randSource, i, j int) float64 {
	u := rng.Intn(len(m.ratings))
	return (m.ratings[u][i] - m.ratings[u][j]) / (m.hi - m.lo)
}

// Preferences implements crowd.BatchOracle: one Intn per slot, same stream
// and same normalized difference as Preference, with the slice header and
// scale width hoisted out of the loop.
func (m *Matrix) Preferences(rng *randSource, i, j int, dst []float64) {
	ratings := m.ratings
	d := m.hi - m.lo
	for t := range dst {
		row := ratings[rng.Intn(len(ratings))]
		dst[t] = (row[i] - row[j]) / d
	}
}

// Grade implements crowd.Grader: a random user's rating of the item.
func (m *Matrix) Grade(rng *randSource, i int) float64 {
	return m.ratings[rng.Intn(len(m.ratings))][i]
}

// TrueRank implements crowd.TruthOracle.
func (m *Matrix) TrueRank(i int) int { return m.rank[i] }

// PairMoments implements crowd.TruthOracle: the exact moments of the
// judgment distribution, i.e. of the per-user rating differences.
func (m *Matrix) PairMoments(i, j int) (float64, float64) {
	key := [2]int{i, j}
	flip := false
	if i > j {
		key = [2]int{j, i}
		flip = true
	}
	mom, ok := m.momentsMemo[key]
	if !ok {
		var r stats.Running
		for u := range m.ratings {
			r.Add((m.ratings[u][key[0]] - m.ratings[u][key[1]]) / (m.hi - m.lo))
		}
		// Population SD over the full user base: this IS the judgment
		// distribution, so use the n divisor.
		sd := r.SD()
		if n := r.N(); n > 1 {
			sd *= math.Sqrt(float64(n-1) / float64(n))
		}
		mom = [2]float64{r.Mean(), sd}
		m.momentsMemo[key] = mom
	}
	mu, sd := mom[0], mom[1]
	if flip {
		mu = -mu
	}
	return mu, sd
}
