package dataset

import (
	"fmt"
	"sort"

	"crowdtopk/internal/crowd"
)

// Source is a dataset: a crowd oracle with known ground truth. Query
// algorithms only ever see the crowd.Oracle facet; the truth facet serves
// evaluation and the infimum-cost calculator.
type Source interface {
	crowd.Oracle
	crowd.TruthOracle
	// Name identifies the dataset in reports.
	Name() string
}

// Order returns the ground-truth total order of the source: Order(s)[r] is
// the item at rank r (0 is best).
func Order(s Source) []int {
	n := s.NumItems()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return s.TrueRank(order[a]) < s.TrueRank(order[b])
	})
	return order
}

// TopK returns the ground-truth top-k item set of the source.
func TopK(s Source, k int) []int {
	if k < 0 || k > s.NumItems() {
		panic(fmt.Sprintf("dataset: TopK with k=%d out of range [0,%d]", k, s.NumItems()))
	}
	return Order(s)[:k]
}

// ranksFromScores converts a higher-is-better score slice into ranks,
// breaking ties by item index so every source has a strict total order.
func ranksFromScores(scores []float64) []int {
	n := len(scores)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if scores[order[a]] != scores[order[b]] {
			return scores[order[a]] > scores[order[b]]
		}
		return order[a] < order[b]
	})
	rank := make([]int, n)
	for r, item := range order {
		rank[item] = r
	}
	return rank
}

// WeightedRank computes IMDb's Bayesian weighted rating used by the paper
// as ground truth: votes/(votes+K)·mean + K/(votes+K)·C, with the paper's
// constants K = 25,000 and C = 6.9 for the IMDb dataset.
func WeightedRank(mean float64, votes int, k, c float64) float64 {
	v := float64(votes)
	return v/(v+k)*mean + k/(v+k)*c
}

// Subset restricts a source to the given items (in the given order; the
// new item t corresponds to items[t] of the base source). Ranks are
// recomputed within the subset. It is how the paper's cardinality sweeps
// (Figure 9) and the 30-movie study of Table 3 are built.
type Subset struct {
	base  Source
	batch crowd.BatchOracle // base's batch kernel, cached at construction
	items []int
	rank  []int
	name  string
}

// NewSubset returns a subset source over base restricted to items, which
// must be distinct and in range.
func NewSubset(base Source, items []int) *Subset {
	seen := make(map[int]bool, len(items))
	for _, it := range items {
		if it < 0 || it >= base.NumItems() {
			panic(fmt.Sprintf("dataset: subset item %d out of range [0,%d)", it, base.NumItems()))
		}
		if seen[it] {
			panic(fmt.Sprintf("dataset: duplicate subset item %d", it))
		}
		seen[it] = true
	}
	// Recompute ranks: order the subset positions by base rank.
	scores := make([]float64, len(items))
	for t, it := range items {
		scores[t] = -float64(base.TrueRank(it))
	}
	s := &Subset{
		base:  base,
		items: items,
		rank:  ranksFromScores(scores),
		name:  fmt.Sprintf("%s[%d]", base.Name(), len(items)),
	}
	s.batch, _ = base.(crowd.BatchOracle)
	return s
}

// Name implements Source.
func (s *Subset) Name() string { return s.name }

// NumItems implements crowd.Oracle.
func (s *Subset) NumItems() int { return len(s.items) }

// Preference implements crowd.Oracle.
func (s *Subset) Preference(rng *randSource, i, j int) float64 {
	return s.base.Preference(rng, s.items[i], s.items[j])
}

// Preferences implements crowd.BatchOracle by delegating to the base
// source's batch kernel (resolved once at construction), falling back to
// per-sample delegation for bases without one. Either way the base
// consumes rng exactly as len(dst) Preference calls would.
func (s *Subset) Preferences(rng *randSource, i, j int, dst []float64) {
	bi, bj := s.items[i], s.items[j]
	if s.batch != nil {
		s.batch.Preferences(rng, bi, bj, dst)
		return
	}
	for t := range dst {
		dst[t] = s.base.Preference(rng, bi, bj)
	}
}

// Grade implements crowd.Grader when the base source does.
func (s *Subset) Grade(rng *randSource, i int) float64 {
	g, ok := s.base.(crowd.Grader)
	if !ok {
		panic("dataset: base source does not support graded judgments")
	}
	return g.Grade(rng, s.items[i])
}

// TrueRank implements crowd.TruthOracle.
func (s *Subset) TrueRank(i int) int { return s.rank[i] }

// PairMoments implements crowd.TruthOracle.
func (s *Subset) PairMoments(i, j int) (float64, float64) {
	return s.base.PairMoments(s.items[i], s.items[j])
}

// RandomSubset returns a subset of n distinct random items of base.
func RandomSubset(base Source, n int, rng *randSource) *Subset {
	if n > base.NumItems() {
		panic(fmt.Sprintf("dataset: RandomSubset n=%d exceeds base size %d", n, base.NumItems()))
	}
	perm := rng.Perm(base.NumItems())
	return NewSubset(base, perm[:n])
}
