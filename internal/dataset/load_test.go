package dataset

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestLoadHistogramCSV(t *testing.T) {
	// Three items on a 1..5 scale. Item "good" has high ratings, "bad"
	// low; "niche" is great but has few votes, so the weighted rank must
	// pull it below "good" when k is large.
	csvData := strings.Join([]string{
		"good,100000,0,0,10,40,50",
		"bad,100000,50,40,10,0,0",
		"niche,100,0,0,0,10,90",
	}, "\n")
	h, err := LoadHistogramCSV(strings.NewReader(csvData), "mini", 25000, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if h.Name() != "mini" || h.NumItems() != 3 || h.Scale() != 5 {
		t.Fatalf("metadata: %s %d %d", h.Name(), h.NumItems(), h.Scale())
	}
	// Histogram means: good = 4.4, bad = 1.6, niche = 4.9.
	mu, _ := h.PairMoments(0, 1)
	if want := (4.4 - 1.6) / 4; math.Abs(mu-want) > 1e-9 {
		t.Errorf("mean diff = %v, want %v", mu, want)
	}
	// Weighted rank demotes the under-voted niche item below good.
	if !(h.TrueRank(0) < h.TrueRank(2) && h.TrueRank(2) < h.TrueRank(1)) {
		t.Errorf("ranks: good=%d niche=%d bad=%d", h.TrueRank(0), h.TrueRank(2), h.TrueRank(1))
	}
	checkSourceContract(t, h)

	// Plain-mean ground truth (k=0) ranks niche first instead.
	h2, err := LoadHistogramCSV(strings.NewReader(csvData), "mini2", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h2.TrueRank(2) != 0 {
		t.Errorf("plain-mean rank of niche = %d, want 0", h2.TrueRank(2))
	}
}

func TestLoadHistogramCSVErrors(t *testing.T) {
	cases := []string{
		"solo,10,1,2",                  // single item
		"a,10,1,2\nb,10,1",             // ragged row
		"a,0,1,2\nb,10,1,2",            // zero votes
		"a,10,-1,2\nb,10,1,2",          // negative count
		"a,10,0,0\nb,10,1,2",           // empty histogram
		"a,x,1,2\nb,10,1,2",            // bad votes
		"a,10,y,2\nb,10,1,2",           // bad count
		"a,10\nb,10",                   // no rating columns
		"a,10,1,2\nb,10,1,2,3",         // inconsistent width (csv error)
		"\"unterminated,10,1,2\nb,1,1", // csv syntax error
	}
	for _, c := range cases {
		if _, err := LoadHistogramCSV(strings.NewReader(c), "x", 0, 0); err == nil {
			t.Errorf("accepted malformed input %q", c)
		}
	}
}

func TestLoadMatrixCSV(t *testing.T) {
	csvData := "5,-3,0\n4,-5,2\n3,-1,1"
	m, err := LoadMatrixCSV(strings.NewReader(csvData), "jmini", -10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumItems() != 3 || m.Users() != 3 {
		t.Fatalf("shape: %d items, %d users", m.NumItems(), m.Users())
	}
	// Means: item0 = 4, item1 = -3, item2 = 1 → ranks 0, 2, 1.
	if m.TrueRank(0) != 0 || m.TrueRank(1) != 2 || m.TrueRank(2) != 1 {
		t.Errorf("ranks: %d %d %d", m.TrueRank(0), m.TrueRank(1), m.TrueRank(2))
	}
	// Judgments are per-user differences / 20.
	mu, _ := m.PairMoments(0, 1)
	if want := (4.0 - (-3.0)) / 20; math.Abs(mu-want) > 1e-9 {
		t.Errorf("pair mean = %v, want %v", mu, want)
	}
	checkSourceContract(t, m)
}

func TestLoadMatrixCSVErrors(t *testing.T) {
	cases := []struct {
		data   string
		lo, hi float64
	}{
		{"5", -10, 10},         // one item
		{"5,3\n4", -10, 10},    // ragged (csv error)
		{"5,30\n4,3", -10, 10}, // out of scale
		{"5,x\n4,3", -10, 10},  // non-numeric
		{"5,3\n4,3", 10, -10},  // inverted scale
		{"", -10, 10},          // empty
	}
	for _, c := range cases {
		if _, err := LoadMatrixCSV(strings.NewReader(c.data), "x", c.lo, c.hi); err == nil {
			t.Errorf("accepted malformed input %q", c.data)
		}
	}
}

func TestLoadJudgmentCSV(t *testing.T) {
	// Three items; every pair has records. Item 0 beats both, 1 beats 2.
	csvData := strings.Join([]string{
		"0,1,0.6", "1,0,-0.4", "0,2,0.8", "2,0,-1", "1,2,0.3", "1,2,0.5",
	}, "\n")
	db, err := LoadJudgmentCSV(strings.NewReader(csvData), "pmini", 3)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumItems() != 3 {
		t.Fatalf("n = %d", db.NumItems())
	}
	if db.TrueRank(0) != 0 || db.TrueRank(1) != 1 || db.TrueRank(2) != 2 {
		t.Errorf("ranks: %d %d %d", db.TrueRank(0), db.TrueRank(1), db.TrueRank(2))
	}
	// Pair (0,1) records: 0.6 and (flipped) 0.4 → mean 0.5.
	mu, _ := db.PairMoments(0, 1)
	if math.Abs(mu-0.5) > 1e-9 {
		t.Errorf("pair (0,1) mean = %v, want 0.5", mu)
	}
	// Replay serves only stored values.
	rng := newRand(9)
	for k := 0; k < 50; k++ {
		v := db.Preference(rng, 1, 2)
		if v != 0.3 && v != 0.5 {
			t.Fatalf("unexpected replayed value %v", v)
		}
	}
	checkSourceContract(t, db)
}

func TestLoadJudgmentCSVErrors(t *testing.T) {
	cases := []struct {
		data string
		n    int
	}{
		{"0,1,0.5", 1}, // n too small
		{"0,1,0.5", 3}, // missing pair (0,2) etc.
		{"0,0,0.5\n0,1,0.1\n0,2,0.1\n1,2,0.1", 3}, // self pair
		{"0,5,0.5\n0,1,0.1\n0,2,0.1\n1,2,0.1", 3}, // out of range
		{"0,1,2\n0,2,0.1\n1,2,0.1", 3},            // preference out of range
		{"0,1\n0,2,0.1\n1,2,0.1", 3},              // wrong arity (csv error)
		{"a,1,0.5\n0,2,0.1\n1,2,0.1", 3},          // non-numeric
	}
	for _, c := range cases {
		if _, err := LoadJudgmentCSV(strings.NewReader(c.data), "x", c.n); err == nil {
			t.Errorf("accepted malformed input %q", c.data)
		}
	}
}

func TestLoadedRoundTripWithDatagenFormat(t *testing.T) {
	// A loaded histogram behaves like a generated one end to end: sample
	// judgments, check moments converge.
	csvData := "a,1000,1,2,3,4,10\nb,1000,10,4,3,2,1\nc,1000,2,2,2,2,2"
	h, err := LoadHistogramCSV(strings.NewReader(csvData), "rt", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := newRand(10)
	mu, _ := h.PairMoments(0, 1)
	sum := 0.0
	const draws = 20000
	for k := 0; k < draws; k++ {
		sum += h.Preference(rng, 0, 1)
	}
	if got := sum / draws; math.Abs(got-mu) > 0.02 {
		t.Errorf("empirical mean %v vs moments %v", got, mu)
	}
}

func TestJudgmentDBRoundTripThroughCSV(t *testing.T) {
	// Dump a generated judgment database in the i,j,preference format and
	// load it back: moments and ground truth must survive exactly.
	orig := NewJudgmentDB(JudgmentDBConfig{
		Name: "rt", N: 12, RecordsPerPair: 6, LikertPoints: 8,
		Gain: 1.2, NoiseSD: 0.5, Seed: 99,
	})
	var sb strings.Builder
	for i := 0; i < orig.NumItems(); i++ {
		for j := i + 1; j < orig.NumItems(); j++ {
			for _, v := range orig.Records(i, j) {
				fmt.Fprintf(&sb, "%d,%d,%g\n", i, j, v)
			}
		}
	}
	back, err := LoadJudgmentCSV(strings.NewReader(sb.String()), "rt2", orig.NumItems())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < orig.NumItems(); i++ {
		if back.TrueRank(i) != orig.TrueRank(i) {
			t.Errorf("item %d rank changed: %d vs %d", i, back.TrueRank(i), orig.TrueRank(i))
		}
		for j := i + 1; j < orig.NumItems(); j++ {
			m1, s1 := orig.PairMoments(i, j)
			m2, s2 := back.PairMoments(i, j)
			if math.Abs(m1-m2) > 1e-6 || math.Abs(s1-s2) > 1e-6 {
				t.Errorf("pair (%d,%d) moments changed: (%v,%v) vs (%v,%v)", i, j, m1, s1, m2, s2)
			}
		}
	}
}
