// Package dataset provides the item collections and crowd oracles used in
// the paper's evaluation (§6.1 and Appendix F): IMDb, Book, Jester, Photo
// and PeopleAge, plus a configurable synthetic source for examples and
// tests.
//
// The original datasets are proprietary dumps (IMDb interface files,
// Book-Crossing, the Jester matrix) or bespoke CrowdFlower collections
// (Photo, PeopleAge). This package generates synthetic stand-ins with the
// same *mechanics* and statistics:
//
//   - IMDb/Book: items carry vote histograms on a 1..10 scale; a pairwise
//     judgment samples one rating per item from the histograms and returns
//     the normalized difference — exactly how the paper simulates
//     preference judgments from rating data. Ground truth follows the
//     paper's weighted-rank formula for IMDb and the histogram mean for
//     Book.
//   - Jester: a dense user×joke rating matrix; a judgment picks a random
//     user and differences her two ratings, preserving inter-user
//     disagreement.
//   - Photo: a replayed judgment database with ≥10 pre-collected 8-point
//     Likert records per pair; a judgment samples one stored record.
//   - PeopleAge: photos of people aged 1..100 with age-dependent
//     perception noise; the query asks for the k youngest.
//
// All generators are deterministic in their seed. Every source implements
// crowd.Oracle and crowd.TruthOracle; those that can answer absolute
// rating microtasks also implement crowd.Grader.
package dataset
