package dataset

import (
	"math"
	"testing"

	"crowdtopk/internal/crowd"
	"crowdtopk/internal/stats"
)

// checkSourceContract exercises the invariants every Source must satisfy.
func checkSourceContract(t *testing.T, s Source) {
	t.Helper()
	n := s.NumItems()
	if n < 2 {
		t.Fatalf("%s: NumItems = %d", s.Name(), n)
	}

	// Ranks are a permutation of 0..n-1.
	seen := make([]bool, n)
	for i := 0; i < n; i++ {
		r := s.TrueRank(i)
		if r < 0 || r >= n || seen[r] {
			t.Fatalf("%s: TrueRank not a permutation at item %d (rank %d)", s.Name(), i, r)
		}
		seen[r] = true
	}

	// Order inverts TrueRank.
	order := Order(s)
	for r, item := range order {
		if s.TrueRank(item) != r {
			t.Fatalf("%s: Order[%d] = %d but TrueRank = %d", s.Name(), r, item, s.TrueRank(item))
		}
	}

	rng := newRand(123)
	for trial := 0; trial < 50; trial++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		// Preferences stay in [-1, 1].
		for k := 0; k < 20; k++ {
			v := s.Preference(rng, i, j)
			if v < -1 || v > 1 || math.IsNaN(v) {
				t.Fatalf("%s: preference %v outside [-1,1] for (%d,%d)", s.Name(), v, i, j)
			}
		}
		// PairMoments are antisymmetric in the mean, symmetric in sigma.
		mu1, sd1 := s.PairMoments(i, j)
		mu2, sd2 := s.PairMoments(j, i)
		if math.Abs(mu1+mu2) > 1e-12 || math.Abs(sd1-sd2) > 1e-12 {
			t.Fatalf("%s: PairMoments not antisymmetric for (%d,%d): (%v,%v) vs (%v,%v)",
				s.Name(), i, j, mu1, sd1, mu2, sd2)
		}
		if sd1 < 0 {
			t.Fatalf("%s: negative sigma %v", s.Name(), sd1)
		}
	}

	// The empirical preference mean must track PairMoments for a
	// well-separated pair (best vs worst).
	best, worst := order[0], order[n-1]
	mu, _ := s.PairMoments(best, worst)
	var run stats.Running
	for k := 0; k < 4000; k++ {
		run.Add(s.Preference(rng, best, worst))
	}
	if math.Abs(run.Mean()-mu) > 0.05 {
		t.Errorf("%s: empirical mean %v far from moment mean %v (best vs worst)", s.Name(), run.Mean(), mu)
	}
	if mu <= 0 {
		t.Errorf("%s: best-vs-worst moment mean %v not positive", s.Name(), mu)
	}
}

func TestSourceContracts(t *testing.T) {
	sources := []Source{
		NewIMDb(1),
		NewBook(2),
		NewJester(3),
		NewPhoto(4),
		NewPeopleAge(5),
		NewSynthetic(50, 0.3, 6),
	}
	for _, s := range sources {
		s := s
		t.Run(s.Name(), func(t *testing.T) { checkSourceContract(t, s) })
	}
}

func TestPaperCardinalities(t *testing.T) {
	if n := NewIMDb(1).NumItems(); n != 1225 {
		t.Errorf("IMDb N = %d, want 1225", n)
	}
	if n := NewBook(1).NumItems(); n != 537 {
		t.Errorf("Book N = %d, want 537", n)
	}
	if n := NewJester(1).NumItems(); n != 100 {
		t.Errorf("Jester N = %d, want 100", n)
	}
	if n := NewPhoto(1).NumItems(); n != 200 {
		t.Errorf("Photo N = %d, want 200", n)
	}
	if n := NewPeopleAge(1).NumItems(); n != 100 {
		t.Errorf("PeopleAge N = %d, want 100", n)
	}
}

func TestIMDbVotesAboveFilter(t *testing.T) {
	im := NewIMDb(7)
	for i := 0; i < im.NumItems(); i++ {
		if im.Votes(i) < 100_000 {
			t.Fatalf("item %d has %d votes, below the 100k filter", i, im.Votes(i))
		}
	}
}

func TestHistogramsNormalized(t *testing.T) {
	for _, h := range []*Histogram{NewIMDb(8), NewBook(9)} {
		if h.Scale() != 10 {
			t.Errorf("%s scale = %d, want 10", h.Name(), h.Scale())
		}
		for i := 0; i < h.NumItems(); i += 97 {
			sum := 0.0
			for _, p := range h.HistogramOf(i) {
				if p < 0 {
					t.Fatalf("%s item %d has negative bin %v", h.Name(), i, p)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("%s item %d histogram sums to %v", h.Name(), i, sum)
			}
		}
	}
}

func TestWeightedRank(t *testing.T) {
	// With no votes the weighted rank is the prior C; with infinite votes
	// it approaches the mean.
	if got := WeightedRank(9.0, 0, 25000, 6.9); got != 6.9 {
		t.Errorf("zero votes: %v, want 6.9", got)
	}
	if got := WeightedRank(9.0, 100_000_000, 25000, 6.9); math.Abs(got-9.0) > 0.01 {
		t.Errorf("many votes: %v, want ≈ 9.0", got)
	}
	// Paper constants: 100k votes shrink a 9.0 movie to 0.8·9 + 0.2·6.9 = 8.58.
	if got := WeightedRank(9.0, 100_000, 25000, 6.9); math.Abs(got-8.58) > 1e-12 {
		t.Errorf("paper example: %v, want 8.58", got)
	}
}

func TestIMDbGroundTruthUsesWeightedRank(t *testing.T) {
	// Construct a tiny histogram dataset where raw means and weighted ranks
	// disagree: a high-mean item with few votes must rank below a slightly
	// lower-mean item with huge support when K is large.
	// We verify on the real generator that rank ordering follows the
	// weighted rank, not the raw mean, whenever the two disagree.
	im := NewIMDb(10)
	disagreements := 0
	for i := 0; i < im.NumItems()-1 && disagreements < 5; i++ {
		for j := i + 1; j < im.NumItems() && disagreements < 5; j++ {
			mi, _ := im.PairMoments(i, j)
			wi := WeightedRank(rawMean(im, i), im.Votes(i), 25000, 6.9)
			wj := WeightedRank(rawMean(im, j), im.Votes(j), 25000, 6.9)
			if (mi > 0) == (wi > wj) {
				continue // raw-mean order agrees with weighted order
			}
			disagreements++
			if (im.TrueRank(i) < im.TrueRank(j)) != (wi > wj) {
				t.Fatalf("items %d,%d: rank order contradicts weighted rank", i, j)
			}
		}
	}
}

func rawMean(h *Histogram, i int) float64 {
	m := 0.0
	for b, p := range h.HistogramOf(i) {
		m += float64(b+1) * p
	}
	return m
}

func TestJesterJudgmentsComeFromUsers(t *testing.T) {
	j := NewJester(11)
	if j.Users() != 5000 {
		t.Errorf("Users = %d, want 5000", j.Users())
	}
	// Every preference must be expressible as a rating difference / 20 of
	// some user; in particular the set of values for one pair is finite.
	rng := newRand(12)
	vals := make(map[float64]bool)
	for k := 0; k < 1000; k++ {
		vals[j.Preference(rng, 0, 1)] = true
	}
	if len(vals) > j.Users() {
		t.Errorf("more distinct judgment values (%d) than users", len(vals))
	}
}

func TestPhotoRecordsAreLikert(t *testing.T) {
	p := NewPhoto(13)
	// All records live on the 8-point Likert lattice {±1/7, ±3/7, ±5/7, ±1}.
	lattice := map[float64]bool{}
	for _, l := range []float64{1, 3, 5, 7} {
		lattice[l/7] = true
		lattice[-l/7] = true
	}
	recs := p.Records(0, 1)
	if len(recs) < 10 {
		t.Fatalf("pair has %d records, want >= 10", len(recs))
	}
	for _, r := range recs {
		ok := false
		for v := range lattice {
			if math.Abs(r-v) < 1e-12 {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("record %v not on the 8-point Likert lattice", r)
		}
	}
	// Records are antisymmetric under orientation flip.
	flip := p.Records(1, 0)
	for t2 := range recs {
		if recs[t2] != -flip[t2] {
			t.Fatal("Records not antisymmetric")
		}
	}
}

func TestPhotoPreferenceReplaysDatabase(t *testing.T) {
	p := NewPhoto(14)
	recs := map[float64]bool{}
	for _, r := range p.Records(5, 9) {
		recs[r] = true
	}
	rng := newRand(15)
	for k := 0; k < 200; k++ {
		v := p.Preference(rng, 5, 9)
		if !recs[v] {
			t.Fatalf("preference %v not in the stored record set", v)
		}
	}
}

func TestPeopleAgeYoungestRankFirst(t *testing.T) {
	pa := NewPeopleAge(16)
	order := Order(pa)
	// The best item must have the highest score (= youngest person).
	best := order[0]
	for i := 0; i < pa.NumItems(); i++ {
		if pa.Score(i) > pa.Score(best) {
			t.Fatalf("item %d has better score than rank-0 item", i)
		}
	}
	// Noise grows with age: sigma between the two oldest items exceeds
	// sigma between the two youngest.
	youngA, youngB := order[0], order[1]
	oldA, oldB := order[len(order)-1], order[len(order)-2]
	_, sdYoung := pa.PairMoments(youngA, youngB)
	_, sdOld := pa.PairMoments(oldA, oldB)
	if sdOld <= sdYoung {
		t.Errorf("age-dependent noise violated: old sd %v <= young sd %v", sdOld, sdYoung)
	}
}

func TestSubsetRemapsEverything(t *testing.T) {
	base := NewSynthetic(30, 0.2, 17)
	items := []int{5, 0, 12, 29, 7}
	sub := NewSubset(base, items)
	if sub.NumItems() != 5 {
		t.Fatalf("subset size = %d", sub.NumItems())
	}
	// Ranks inside the subset respect base ranks.
	for a := 0; a < 5; a++ {
		for b := 0; b < 5; b++ {
			if a == b {
				continue
			}
			baseLess := base.TrueRank(items[a]) < base.TrueRank(items[b])
			subLess := sub.TrueRank(a) < sub.TrueRank(b)
			if baseLess != subLess {
				t.Fatalf("subset rank order differs from base for %d,%d", a, b)
			}
		}
	}
	// Moments delegate to the base pair.
	muS, sdS := sub.PairMoments(0, 2)
	muB, sdB := base.PairMoments(5, 12)
	if muS != muB || sdS != sdB {
		t.Errorf("subset moments (%v,%v) differ from base (%v,%v)", muS, sdS, muB, sdB)
	}
	checkSourceContract(t, sub)
}

func TestRandomSubsetDistinct(t *testing.T) {
	base := NewJester(18)
	sub := RandomSubset(base, 25, newRand(19))
	if sub.NumItems() != 25 {
		t.Fatalf("size = %d, want 25", sub.NumItems())
	}
	checkSourceContract(t, sub)
}

func TestSubsetPanics(t *testing.T) {
	base := NewSynthetic(10, 0.2, 20)
	assertPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanic("out of range", func() { NewSubset(base, []int{0, 10}) })
	assertPanic("duplicate", func() { NewSubset(base, []int{3, 3}) })
	assertPanic("too large random", func() { RandomSubset(base, 11, newRand(1)) })
	assertPanic("TopK k", func() { TopK(base, 11) })
}

func TestGradersGradeOnNativeScale(t *testing.T) {
	rng := newRand(21)
	var graders = []struct {
		s      Source
		lo, hi float64
	}{
		{NewIMDb(22), 1, 10},
		{NewBook(23), 1, 10},
		{NewJester(24), -10, 10},
	}
	for _, g := range graders {
		gr := g.s.(crowd.Grader)
		for k := 0; k < 100; k++ {
			v := gr.Grade(rng, k%g.s.NumItems())
			if v < g.lo || v > g.hi {
				t.Errorf("%s grade %v outside [%v,%v]", g.s.Name(), v, g.lo, g.hi)
			}
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a, b := NewIMDb(42), NewIMDb(42)
	for i := 0; i < a.NumItems(); i += 111 {
		if a.TrueRank(i) != b.TrueRank(i) || a.Votes(i) != b.Votes(i) {
			t.Fatalf("same seed, different dataset at item %d", i)
		}
	}
	c := NewIMDb(43)
	diff := 0
	for i := 0; i < a.NumItems(); i++ {
		if a.TrueRank(i) != c.TrueRank(i) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical rank permutations")
	}
}

func TestConfigValidation(t *testing.T) {
	assertPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanic("histogram N", func() { NewHistogram(HistogramConfig{N: 1, Scale: 10, VotesLo: 1, VotesHi: 2}) })
	assertPanic("histogram scale", func() { NewHistogram(HistogramConfig{N: 5, Scale: 1, VotesLo: 1, VotesHi: 2}) })
	assertPanic("histogram votes", func() { NewHistogram(HistogramConfig{N: 5, Scale: 10, VotesLo: 10, VotesHi: 5}) })
	assertPanic("matrix items", func() { NewMatrix(MatrixConfig{Items: 1, Users: 5, Lo: 0, Hi: 1}) })
	assertPanic("matrix scale", func() { NewMatrix(MatrixConfig{Items: 5, Users: 5, Lo: 1, Hi: 1}) })
	assertPanic("judgmentdb N", func() { NewJudgmentDB(JudgmentDBConfig{N: 1, RecordsPerPair: 5, LikertPoints: 8}) })
	assertPanic("judgmentdb likert odd", func() { NewJudgmentDB(JudgmentDBConfig{N: 5, RecordsPerPair: 5, LikertPoints: 7}) })
	assertPanic("judgmentdb records", func() { NewJudgmentDB(JudgmentDBConfig{N: 5, RecordsPerPair: 0, LikertPoints: 8}) })
	assertPanic("latent scores", func() { NewLatent(LatentConfig{Scores: []float64{1}}) })
	assertPanic("latent noise", func() { NewLatent(LatentConfig{Scores: []float64{1, 2}, NoiseSD: -1}) })
	assertPanic("latent per-item", func() { NewLatent(LatentConfig{Scores: []float64{1, 2}, PerItemNoise: []float64{1}}) })
}
