package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"crowdtopk/internal/stats"
)

// This file loads real data dumps in simple CSV formats, so the synthetic
// stand-ins can be swapped for the paper's actual datasets when the user
// has them (IMDb interface files, Book-Crossing, Jester, or any judgment
// collection of their own).

// LoadHistogramCSV reads a rating-histogram dataset (IMDb/Book style).
// Each row is one item:
//
//	name,votes,count_1,count_2,...,count_S
//
// where count_r is how many ratings of value r the item received (S ≥ 2,
// constant across rows). Ground truth follows the weighted-rank formula
// when k > 0 (pass the paper's IMDb constants k=25000, c=6.9), the plain
// histogram mean otherwise.
func LoadHistogramCSV(r io.Reader, name string, k, c float64) (*Histogram, error) {
	rows, err := csv.NewReader(r).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading histogram CSV: %w", err)
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("dataset: histogram CSV needs at least 2 items, got %d", len(rows))
	}
	scale := len(rows[0]) - 2
	if scale < 2 {
		return nil, fmt.Errorf("dataset: histogram CSV needs at least 2 rating columns, got %d", scale)
	}

	h := &Histogram{
		name:  name,
		scale: scale,
		hist:  make([][]float64, len(rows)),
		cum:   make([][]float64, len(rows)),
		votes: make([]int, len(rows)),
		mean:  make([]float64, len(rows)),
		sd:    make([]float64, len(rows)),
	}
	for i, row := range rows {
		if len(row) != scale+2 {
			return nil, fmt.Errorf("dataset: row %d has %d fields, want %d", i, len(row), scale+2)
		}
		votes, err := strconv.Atoi(row[1])
		if err != nil || votes < 1 {
			return nil, fmt.Errorf("dataset: row %d has invalid vote count %q", i, row[1])
		}
		counts := make([]float64, scale)
		total := 0.0
		for b := 0; b < scale; b++ {
			v, err := strconv.ParseFloat(row[b+2], 64)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("dataset: row %d rating %d has invalid count %q", i, b+1, row[b+2])
			}
			counts[b] = v
			total += v
		}
		if total == 0 {
			return nil, fmt.Errorf("dataset: row %d has an empty histogram", i)
		}
		for b := range counts {
			counts[b] /= total
		}
		h.votes[i] = votes
		h.hist[i] = counts
		h.cum[i] = cumsum(counts)
		h.mean[i], h.sd[i] = histMoments(counts)
	}

	scores := make([]float64, len(rows))
	for i := range scores {
		if k > 0 {
			scores[i] = WeightedRank(h.mean[i], h.votes[i], k, c)
		} else {
			scores[i] = h.mean[i]
		}
	}
	h.rank = ranksFromScores(scores)
	return h, nil
}

// LoadMatrixCSV reads a user×item rating dataset (Jester style). Each row
// is one user's ratings of every item:
//
//	rating_item0,rating_item1,...
//
// lo and hi bound the rating scale (Jester uses -10, 10). Ground truth is
// the per-item mean rating.
func LoadMatrixCSV(r io.Reader, name string, lo, hi float64) (*Matrix, error) {
	if hi <= lo {
		return nil, fmt.Errorf("dataset: matrix scale [%v,%v] invalid", lo, hi)
	}
	rows, err := csv.NewReader(r).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading matrix CSV: %w", err)
	}
	if len(rows) < 1 || len(rows[0]) < 2 {
		return nil, fmt.Errorf("dataset: matrix CSV needs >=1 user and >=2 items")
	}
	items := len(rows[0])

	m := &Matrix{
		name:        name,
		ratings:     make([][]float64, len(rows)),
		lo:          lo,
		hi:          hi,
		mean:        make([]float64, items),
		momentsMemo: make(map[[2]int][2]float64),
	}
	for u, row := range rows {
		if len(row) != items {
			return nil, fmt.Errorf("dataset: user %d has %d ratings, want %d", u, len(row), items)
		}
		m.ratings[u] = make([]float64, items)
		for i, cell := range row {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil || v < lo || v > hi {
				return nil, fmt.Errorf("dataset: user %d item %d has invalid rating %q", u, i, cell)
			}
			m.ratings[u][i] = v
		}
	}
	for i := 0; i < items; i++ {
		s := 0.0
		for u := range m.ratings {
			s += m.ratings[u][i]
		}
		m.mean[i] = s / float64(len(m.ratings))
	}
	m.rank = ranksFromScores(m.mean)
	return m, nil
}

// LoadJudgmentCSV reads a pre-collected pairwise judgment database (Photo
// style). Each row is one judgment record:
//
//	i,j,preference
//
// with 0-based item ids and preference in [-1, 1] oriented toward i.
// n is the total item count (items may appear in no record only if every
// pair they belong to is missing — which is rejected: every pair needs at
// least one record for replay to be total). Ground truth is the order
// induced by the mean stored preference against all other items.
func LoadJudgmentCSV(r io.Reader, name string, n int) (*JudgmentDB, error) {
	if n < 2 {
		return nil, fmt.Errorf("dataset: judgment CSV needs n >= 2, got %d", n)
	}
	rows, err := csv.NewReader(r).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading judgment CSV: %w", err)
	}
	db := &JudgmentDB{
		name:    name,
		n:       n,
		records: make([][]float64, n*(n-1)/2),
		moments: make([][2]float64, n*(n-1)/2),
	}
	for ri, row := range rows {
		if len(row) != 3 {
			return nil, fmt.Errorf("dataset: record %d has %d fields, want 3", ri, len(row))
		}
		i, err1 := strconv.Atoi(row[0])
		j, err2 := strconv.Atoi(row[1])
		v, err3 := strconv.ParseFloat(row[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("dataset: record %d is malformed: %v", ri, row)
		}
		if i < 0 || i >= n || j < 0 || j >= n || i == j {
			return nil, fmt.Errorf("dataset: record %d has invalid pair (%d,%d)", ri, i, j)
		}
		if v < -1 || v > 1 {
			return nil, fmt.Errorf("dataset: record %d has preference %v outside [-1,1]", ri, v)
		}
		if i > j {
			i, j = j, i
			v = -v
		}
		p := db.pairIndex(i, j)
		db.records[p] = append(db.records[p], v)
	}

	borda := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := db.pairIndex(i, j)
			if len(db.records[p]) == 0 {
				return nil, fmt.Errorf("dataset: pair (%d,%d) has no judgment records", i, j)
			}
			var run stats.Running
			for _, v := range db.records[p] {
				run.Add(v)
			}
			sd := run.SD()
			if cnt := run.N(); cnt > 1 {
				// Population form: the record set IS the distribution.
				sd *= math.Sqrt(float64(cnt-1) / float64(cnt))
			}
			db.moments[p] = [2]float64{run.Mean(), sd}
			borda[i] += run.Mean()
			borda[j] -= run.Mean()
		}
	}
	db.rank = ranksFromScores(borda)
	return db, nil
}
