package dataset

import "math/rand"

// randSource aliases math/rand.Rand so oracle method signatures in this
// package stay short while still satisfying the crowd interfaces.
type randSource = rand.Rand

// newRand returns a deterministic generator for dataset construction.
func newRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// clamp limits v to [lo, hi].
func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
