package dataset

import (
	"fmt"
	"math"

	"crowdtopk/internal/stats"
)

// Latent is a dataset defined directly by hidden item scores s(o_i): a
// judgment returns clamp(Gain·(s_i − s_j) + noise) as the paper's model of
// §3.1, with Gaussian worker noise. It backs the quickstart/synthetic
// scenarios and the PeopleAge reproduction.
type Latent struct {
	name    string
	scores  []float64
	gain    float64
	noiseSD []float64 // per-item noise contribution (age-dependent for PeopleAge)
	rank    []int
}

// LatentConfig parameterizes the synthetic latent-score generator.
type LatentConfig struct {
	Name string
	// Scores are the hidden item scores (higher is better). They are
	// copied.
	Scores []float64
	// Gain scales score differences into the preference continuum.
	Gain float64
	// NoiseSD is the common worker noise; PerItemNoise optionally adds an
	// item-specific component (combined in quadrature).
	NoiseSD      float64
	PerItemNoise []float64
}

// NewLatent builds a latent-score dataset.
func NewLatent(cfg LatentConfig) *Latent {
	if len(cfg.Scores) < 2 {
		panic(fmt.Sprintf("dataset: NewLatent requires >= 2 scores, got %d", len(cfg.Scores)))
	}
	if cfg.NoiseSD < 0 {
		panic(fmt.Sprintf("dataset: NewLatent requires NoiseSD >= 0, got %v", cfg.NoiseSD))
	}
	if cfg.PerItemNoise != nil && len(cfg.PerItemNoise) != len(cfg.Scores) {
		panic("dataset: PerItemNoise length must match Scores")
	}
	scores := make([]float64, len(cfg.Scores))
	copy(scores, cfg.Scores)
	noise := make([]float64, len(scores))
	for i := range noise {
		n2 := cfg.NoiseSD * cfg.NoiseSD / 2 // split common noise across the two items
		if cfg.PerItemNoise != nil {
			n2 += cfg.PerItemNoise[i] * cfg.PerItemNoise[i]
		}
		noise[i] = math.Sqrt(n2)
	}
	return &Latent{
		name:    cfg.Name,
		scores:  scores,
		gain:    cfg.Gain,
		noiseSD: noise,
		rank:    ranksFromScores(scores),
	}
}

// NewSynthetic returns a generic n-item dataset with latent scores drawn
// uniformly from [0, 1] and homogeneous worker noise. It is the quickstart
// workload: difficulty grows smoothly as items get closer in score.
func NewSynthetic(n int, noiseSD float64, seed int64) *Latent {
	rng := newRand(seed)
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	return NewLatent(LatentConfig{
		Name:    "synthetic",
		Scores:  scores,
		Gain:    1.0,
		NoiseSD: noiseSD,
	})
}

// NewPeopleAge returns the Appendix F interactive dataset: 100 people aged
// 1..100 (shuffled item order), where the query asks for the youngest
// people, i.e. s(o_i) = −age_i. Age-perception noise grows with age:
// σ(age) = 2 + 0.08·age years.
func NewPeopleAge(seed int64) *Latent {
	rng := newRand(seed)
	perm := rng.Perm(100)
	scores := make([]float64, 100)
	perItem := make([]float64, 100)
	for i, p := range perm {
		age := float64(p + 1)
		scores[i] = -age / 99 // normalized: younger is better
		perItem[i] = (2 + 0.08*age) / 99
	}
	return NewLatent(LatentConfig{
		Name:         "peopleage",
		Scores:       scores,
		Gain:         1.0,
		NoiseSD:      0,
		PerItemNoise: perItem,
	})
}

// Name implements Source.
func (l *Latent) Name() string { return l.name }

// NumItems implements crowd.Oracle.
func (l *Latent) NumItems() int { return len(l.scores) }

// Preference implements crowd.Oracle.
func (l *Latent) Preference(rng *randSource, i, j int) float64 {
	mu, sd := l.rawMoments(i, j)
	return clamp(mu+rng.NormFloat64()*sd, -1, 1)
}

// Preferences implements crowd.BatchOracle: the pair's Gaussian parameters
// are computed once for the whole batch, and each slot consumes exactly
// one NormFloat64 — the same stream and the same arithmetic as len(dst)
// Preference calls.
func (l *Latent) Preferences(rng *randSource, i, j int, dst []float64) {
	mu, sd := l.rawMoments(i, j)
	for t := range dst {
		dst[t] = clamp(mu+rng.NormFloat64()*sd, -1, 1)
	}
}

// Grade implements crowd.Grader: the latent score plus one item's worth of
// perception noise.
func (l *Latent) Grade(rng *randSource, i int) float64 {
	return l.scores[i] + rng.NormFloat64()*l.noiseSD[i]
}

// TrueRank implements crowd.TruthOracle.
func (l *Latent) TrueRank(i int) int { return l.rank[i] }

// rawMoments returns the pre-clamping Gaussian parameters of the
// judgment distribution for the pair.
func (l *Latent) rawMoments(i, j int) (float64, float64) {
	mu := l.gain * (l.scores[i] - l.scores[j])
	sd := l.gain * math.Hypot(l.noiseSD[i], l.noiseSD[j])
	return mu, sd
}

// PairMoments implements crowd.TruthOracle: the exact moments of the
// clamp-to-[-1,1] (censored Gaussian) judgment distribution.
func (l *Latent) PairMoments(i, j int) (float64, float64) {
	mu, sd := l.rawMoments(i, j)
	return stats.CensoredNormalMoments(mu, sd, -1, 1)
}

// Score returns item i's hidden score; for evaluation only.
func (l *Latent) Score(i int) float64 { return l.scores[i] }
