package dataset

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a rating-histogram dataset in the style of the paper's IMDb
// and Book sources: every item carries a histogram of integer ratings on a
// 1..scale axis, and a pairwise preference judgment samples one rating per
// item from the histograms and returns the normalized difference
// v = (s_i − s_j)/(scale−1) ∈ [−1, 1] (§6.1).
type Histogram struct {
	name  string
	scale int
	// hist[i][b] is the probability of rating b+1 for item i; cum[i] its
	// prefix sums for inverse-CDF sampling.
	hist [][]float64
	cum  [][]float64
	// votes[i] is the number of votes behind the histogram (drives the
	// weighted-rank ground truth for IMDb).
	votes []int
	mean  []float64 // histogram means
	sd    []float64 // histogram standard deviations
	rank  []int
}

// HistogramConfig parameterizes the synthetic histogram generator.
type HistogramConfig struct {
	Name string
	// N is the number of items.
	N int
	// Scale is the top rating (ratings are 1..Scale).
	Scale int
	// QualityMean and QualitySD shape the distribution of item means.
	QualityMean, QualitySD float64
	// SpreadLo and SpreadHi bound the per-item rating standard deviation.
	SpreadLo, SpreadHi float64
	// MixUniform is the fraction of ratings drawn uniformly (models the
	// 1-star/10-star bumps of real rating histograms).
	MixUniform float64
	// VotesLo and VotesHi bound the per-item vote counts (log-uniform).
	VotesLo, VotesHi int
	// WeightedRankK and WeightedRankC, when WeightedRankK > 0, switch the
	// ground truth to IMDb's weighted-rank formula with these constants.
	WeightedRankK, WeightedRankC float64
	// Seed fixes the generated dataset.
	Seed int64
}

// NewHistogram generates a histogram dataset from the config.
func NewHistogram(cfg HistogramConfig) *Histogram {
	if cfg.N < 2 {
		panic(fmt.Sprintf("dataset: NewHistogram requires N >= 2, got %d", cfg.N))
	}
	if cfg.Scale < 2 {
		panic(fmt.Sprintf("dataset: NewHistogram requires Scale >= 2, got %d", cfg.Scale))
	}
	if cfg.VotesLo < 1 || cfg.VotesHi < cfg.VotesLo {
		panic(fmt.Sprintf("dataset: NewHistogram requires 1 <= VotesLo <= VotesHi, got [%d,%d]", cfg.VotesLo, cfg.VotesHi))
	}
	rng := newRand(cfg.Seed)
	h := &Histogram{
		name:  cfg.Name,
		scale: cfg.Scale,
		hist:  make([][]float64, cfg.N),
		cum:   make([][]float64, cfg.N),
		votes: make([]int, cfg.N),
		mean:  make([]float64, cfg.N),
		sd:    make([]float64, cfg.N),
	}
	for i := 0; i < cfg.N; i++ {
		q := squashQuality(cfg.QualityMean+rng.NormFloat64()*cfg.QualitySD, 1, float64(cfg.Scale))
		spread := cfg.SpreadLo + rng.Float64()*(cfg.SpreadHi-cfg.SpreadLo)

		probs := make([]float64, cfg.Scale)
		total := 0.0
		for b := 0; b < cfg.Scale; b++ {
			r := float64(b + 1)
			p := math.Exp(-(r - q) * (r - q) / (2 * spread * spread))
			probs[b] = p
			total += p
		}
		for b := range probs {
			probs[b] = (1-cfg.MixUniform)*probs[b]/total + cfg.MixUniform/float64(cfg.Scale)
		}

		// Votes: log-uniform between the bounds.
		lo, hi := math.Log(float64(cfg.VotesLo)), math.Log(float64(cfg.VotesHi))
		h.votes[i] = int(math.Exp(lo + rng.Float64()*(hi-lo)))

		h.hist[i] = probs
		h.cum[i] = cumsum(probs)
		h.mean[i], h.sd[i] = histMoments(probs)
	}

	// Ground truth: weighted rank when configured (IMDb), plain histogram
	// mean otherwise (Book).
	scores := make([]float64, cfg.N)
	for i := range scores {
		if cfg.WeightedRankK > 0 {
			scores[i] = WeightedRank(h.mean[i], h.votes[i], cfg.WeightedRankK, cfg.WeightedRankC)
		} else {
			scores[i] = h.mean[i]
		}
	}
	h.rank = ranksFromScores(scores)
	return h
}

// NewIMDb returns the IMDb-like dataset of the paper: 1,225 movies with
// ≥100,000 votes each, ratings on a 1..10 scale, ground truth by the
// weighted-rank formula with K = 25,000 and C = 6.9.
func NewIMDb(seed int64) *Histogram {
	return NewHistogram(HistogramConfig{
		Name:          "imdb",
		N:             1225,
		Scale:         10,
		QualityMean:   6.8,
		QualitySD:     1.6,
		SpreadLo:      0.6,
		SpreadHi:      1.3,
		MixUniform:    0.02,
		VotesLo:       100_000,
		VotesHi:       2_000_000,
		WeightedRankK: 25_000,
		WeightedRankC: 6.9,
		Seed:          seed,
	})
}

// NewBook returns the Book-Crossing-like dataset: 537 books with at least
// 50 votes, noisier histograms, ground truth by histogram mean.
func NewBook(seed int64) *Histogram {
	return NewHistogram(HistogramConfig{
		Name:        "book",
		N:           537,
		Scale:       10,
		QualityMean: 7.0,
		QualitySD:   1.7,
		SpreadLo:    0.8,
		SpreadHi:    1.7,
		MixUniform:  0.04,
		VotesLo:     50,
		VotesHi:     5_000,
		Seed:        seed,
	})
}

// squashQuality maps an unbounded raw quality smoothly into (lo, hi):
// approximately the identity in the interior, with softplus-compressed
// tails. A hard clamp would pile the best items onto one exactly-tied
// atom at the boundary, destroying the strict total order the paper's
// ground truth Ω requires; real rating data has close but distinct tops.
func squashQuality(raw, lo, hi float64) float64 {
	q := hi - math.Log1p(math.Exp(hi-raw)) // soft upper bound
	return lo + math.Log1p(math.Exp(q-lo)) // soft lower bound
}

func cumsum(p []float64) []float64 {
	c := make([]float64, len(p))
	s := 0.0
	for i, v := range p {
		s += v
		c[i] = s
	}
	c[len(c)-1] = 1 // guard against rounding
	return c
}

func histMoments(p []float64) (mean, sd float64) {
	for b, q := range p {
		mean += float64(b+1) * q
	}
	var v float64
	for b, q := range p {
		d := float64(b+1) - mean
		v += q * d * d
	}
	return mean, math.Sqrt(v)
}

// Name implements Source.
func (h *Histogram) Name() string { return h.name }

// NumItems implements crowd.Oracle.
func (h *Histogram) NumItems() int { return len(h.hist) }

// sampleRating draws one rating for item i by inverse-CDF sampling.
func (h *Histogram) sampleRating(rng *randSource, i int) float64 {
	return sampleCDF(rng, h.cum[i])
}

// sampleCDF draws one rating from a cumulative distribution row: one
// uniform, one binary search.
func sampleCDF(rng *randSource, cum []float64) float64 {
	u := rng.Float64()
	b := sort.SearchFloat64s(cum, u)
	if b >= len(cum) {
		b = len(cum) - 1
	}
	return float64(b + 1)
}

// Preference implements crowd.Oracle: v = (s_i − s_j)/(scale−1).
func (h *Histogram) Preference(rng *randSource, i, j int) float64 {
	si := h.sampleRating(rng, i)
	sj := h.sampleRating(rng, j)
	return (si - sj) / float64(h.scale-1)
}

// Preferences implements crowd.BatchOracle. The CDF rows and the scale
// divisor are resolved once per batch; each slot still draws the same two
// uniforms in the same order as one Preference call, through the same
// inverse-CDF search, so the sample stream is unchanged.
func (h *Histogram) Preferences(rng *randSource, i, j int, dst []float64) {
	ci, cj := h.cum[i], h.cum[j]
	d := float64(h.scale - 1)
	for t := range dst {
		si := sampleCDF(rng, ci)
		sj := sampleCDF(rng, cj)
		dst[t] = (si - sj) / d
	}
}

// Grade implements crowd.Grader: one rating sampled from the item's
// histogram.
func (h *Histogram) Grade(rng *randSource, i int) float64 {
	return h.sampleRating(rng, i)
}

// TrueRank implements crowd.TruthOracle.
func (h *Histogram) TrueRank(i int) int { return h.rank[i] }

// PairMoments implements crowd.TruthOracle: the exact mean and standard
// deviation of the preference distribution induced by the two histograms.
func (h *Histogram) PairMoments(i, j int) (float64, float64) {
	d := float64(h.scale - 1)
	mu := (h.mean[i] - h.mean[j]) / d
	sigma := math.Sqrt(h.sd[i]*h.sd[i]+h.sd[j]*h.sd[j]) / d
	return mu, sigma
}

// Votes returns the vote count behind item i's histogram.
func (h *Histogram) Votes(i int) int { return h.votes[i] }

// HistogramOf returns item i's rating distribution (probability per rating
// 1..Scale). The slice is shared; callers must not modify it.
func (h *Histogram) HistogramOf(i int) []float64 { return h.hist[i] }

// Scale returns the top rating of the histogram axis.
func (h *Histogram) Scale() int { return h.scale }
