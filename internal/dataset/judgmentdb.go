package dataset

import (
	"fmt"
	"math"

	"crowdtopk/internal/stats"
)

// JudgmentDB is a replayed judgment database in the style of the paper's
// Photo dataset: every unordered pair carries a set of pre-collected
// discrete (Likert-scale) preference records, and a judgment microtask
// samples one stored record uniformly (§6.1).
type JudgmentDB struct {
	name string
	n    int
	// records[p] holds the stored preferences of canonical pair p,
	// oriented toward the lower item index and already normalized to
	// [-1, 1].
	records [][]float64
	moments [][2]float64 // per-pair mean and population SD
	rank    []int
}

// JudgmentDBConfig parameterizes the synthetic judgment-database generator.
type JudgmentDBConfig struct {
	Name string
	N    int
	// RecordsPerPair is the minimum number of stored judgments per pair
	// (the paper collects at least 10).
	RecordsPerPair int
	// LikertPoints is the number of scale points (the paper uses 8, i.e.
	// no neutral option).
	LikertPoints int
	// Gain scales latent score differences into the Likert continuum;
	// NoiseSD is the per-record worker noise before discretization.
	Gain, NoiseSD float64
	Seed          int64
}

// NewJudgmentDB generates a judgment database from the config. Latent item
// scores are uniform in [0, 1]; each stored record discretizes
// Gain·(s_i − s_j) + noise onto the Likert scale.
func NewJudgmentDB(cfg JudgmentDBConfig) *JudgmentDB {
	if cfg.N < 2 {
		panic(fmt.Sprintf("dataset: NewJudgmentDB requires N >= 2, got %d", cfg.N))
	}
	if cfg.RecordsPerPair < 1 {
		panic(fmt.Sprintf("dataset: NewJudgmentDB requires RecordsPerPair >= 1, got %d", cfg.RecordsPerPair))
	}
	if cfg.LikertPoints < 2 || cfg.LikertPoints%2 != 0 {
		panic(fmt.Sprintf("dataset: NewJudgmentDB requires an even LikertPoints >= 2, got %d", cfg.LikertPoints))
	}
	rng := newRand(cfg.Seed)

	scores := make([]float64, cfg.N)
	for i := range scores {
		scores[i] = rng.Float64()
	}

	db := &JudgmentDB{
		name:    cfg.Name,
		n:       cfg.N,
		records: make([][]float64, cfg.N*(cfg.N-1)/2),
		moments: make([][2]float64, cfg.N*(cfg.N-1)/2),
	}
	borda := make([]float64, cfg.N)
	for i := 0; i < cfg.N; i++ {
		for j := i + 1; j < cfg.N; j++ {
			p := db.pairIndex(i, j)
			count := cfg.RecordsPerPair + rng.Intn(cfg.RecordsPerPair/2+1)
			recs := make([]float64, count)
			var r stats.Running
			for t := range recs {
				raw := cfg.Gain*(scores[i]-scores[j]) + rng.NormFloat64()*cfg.NoiseSD
				recs[t] = likert(raw, cfg.LikertPoints)
				r.Add(recs[t])
			}
			db.records[p] = recs
			sd := r.SD()
			if n := r.N(); n > 1 {
				sd *= math.Sqrt(float64(n-1) / float64(n))
			}
			db.moments[p] = [2]float64{r.Mean(), sd}
			borda[i] += r.Mean()
			borda[j] -= r.Mean()
		}
	}
	// Ground truth is the order induced by the database itself (mean
	// stored preference against every other item): with finitely many
	// records per pair, the replay distribution is the only observable —
	// the latent generator order may disagree with it on close pairs and
	// would then be unlearnable by ANY judgment-based method.
	db.rank = ranksFromScores(borda)
	return db
}

// NewPhoto returns the Photo-like dataset: 200 items, at least 10 stored
// 8-point-Likert judgments per pair.
func NewPhoto(seed int64) *JudgmentDB {
	return NewJudgmentDB(JudgmentDBConfig{
		Name:           "photo",
		N:              200,
		RecordsPerPair: 10,
		LikertPoints:   8,
		Gain:           1.2,
		NoiseSD:        0.55,
		Seed:           seed,
	})
}

// likert discretizes a raw preference in the continuum onto a points-level
// scale with no neutral option, normalized to [-1, 1]. With points = 8 the
// attainable values are ±1/7, ±3/7, ±5/7, ±1.
func likert(raw float64, points int) float64 {
	half := points / 2
	// Map |raw| in [0, ~1] onto level 1..half.
	level := int(math.Ceil(clamp(math.Abs(raw), 1e-9, 1) * float64(half)))
	if level < 1 {
		level = 1
	}
	if level > half {
		level = half
	}
	v := float64(2*level-1) / float64(points-1)
	if raw < 0 {
		return -v
	}
	return v
}

func (db *JudgmentDB) pairIndex(i, j int) int {
	if i > j {
		i, j = j, i
	}
	// Index of (i, j), i < j, in row-major upper-triangular order.
	return i*(2*db.n-i-1)/2 + (j - i - 1)
}

// Name implements Source.
func (db *JudgmentDB) Name() string { return db.name }

// NumItems implements crowd.Oracle.
func (db *JudgmentDB) NumItems() int { return db.n }

// Preference implements crowd.Oracle: one stored record sampled uniformly
// with replacement, as the paper replays its CrowdFlower database.
func (db *JudgmentDB) Preference(rng *randSource, i, j int) float64 {
	recs := db.records[db.pairIndex(i, j)]
	v := recs[rng.Intn(len(recs))]
	if i > j {
		return -v
	}
	return v
}

// Preferences implements crowd.BatchOracle: the pair's record set is
// resolved once, then each slot draws one uniform index — the identical
// stream consumption of len(dst) Preference calls.
func (db *JudgmentDB) Preferences(rng *randSource, i, j int, dst []float64) {
	recs := db.records[db.pairIndex(i, j)]
	if i > j {
		for t := range dst {
			dst[t] = -recs[rng.Intn(len(recs))]
		}
		return
	}
	for t := range dst {
		dst[t] = recs[rng.Intn(len(recs))]
	}
}

// TrueRank implements crowd.TruthOracle.
func (db *JudgmentDB) TrueRank(i int) int { return db.rank[i] }

// PairMoments implements crowd.TruthOracle: the exact moments of the
// record-replay distribution.
func (db *JudgmentDB) PairMoments(i, j int) (float64, float64) {
	m := db.moments[db.pairIndex(i, j)]
	mu, sd := m[0], m[1]
	if i > j {
		mu = -mu
	}
	return mu, sd
}

// Records returns the stored judgments for pair (i, j) oriented toward i.
// The returned slice is freshly allocated.
func (db *JudgmentDB) Records(i, j int) []float64 {
	recs := db.records[db.pairIndex(i, j)]
	out := make([]float64, len(recs))
	copy(out, recs)
	if i > j {
		for t := range out {
			out[t] = -out[t]
		}
	}
	return out
}
