package dataset

import (
	"strings"
	"testing"
)

// The CSV loaders parse untrusted files; fuzz them for panics — any
// malformed input must come back as an error.

func FuzzLoadHistogramCSV(f *testing.F) {
	f.Add("a,10,1,2\nb,10,2,1")
	f.Add("a,10,1,2,3,4\nb,0,1,2,3,4")
	f.Add("x")
	f.Add("a,10,-1\nb,2,3")
	f.Fuzz(func(t *testing.T, data string) {
		h, err := LoadHistogramCSV(strings.NewReader(data), "fuzz", 25000, 6.9)
		if err != nil {
			return
		}
		// A successfully loaded dataset must satisfy basic invariants.
		if h.NumItems() < 2 || h.Scale() < 2 {
			t.Fatalf("accepted degenerate dataset: n=%d scale=%d", h.NumItems(), h.Scale())
		}
		rng := newRand(1)
		v := h.Preference(rng, 0, 1)
		if v < -1 || v > 1 {
			t.Fatalf("loaded dataset produced preference %v", v)
		}
	})
}

func FuzzLoadMatrixCSV(f *testing.F) {
	f.Add("1,2\n3,4")
	f.Add("1,2,3")
	f.Add("")
	f.Add("x,y\n1,2")
	f.Fuzz(func(t *testing.T, data string) {
		m, err := LoadMatrixCSV(strings.NewReader(data), "fuzz", -10, 10)
		if err != nil {
			return
		}
		if m.NumItems() < 2 || m.Users() < 1 {
			t.Fatalf("accepted degenerate matrix: %d items, %d users", m.NumItems(), m.Users())
		}
	})
}

func FuzzLoadJudgmentCSV(f *testing.F) {
	f.Add("0,1,0.5\n0,2,0.1\n1,2,-0.2", 3)
	f.Add("0,1,0.5", 2)
	f.Add("0,0,0", 2)
	f.Add("junk", 5)
	f.Fuzz(func(t *testing.T, data string, n int) {
		if n < 2 || n > 20 {
			return // keep the pair matrix small
		}
		db, err := LoadJudgmentCSV(strings.NewReader(data), "fuzz", n)
		if err != nil {
			return
		}
		rng := newRand(2)
		v := db.Preference(rng, 0, 1)
		if v < -1 || v > 1 {
			t.Fatalf("loaded judgment DB produced preference %v", v)
		}
	})
}
