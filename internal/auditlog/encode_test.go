package auditlog

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"crowdtopk/internal/crowd"
)

// TestAppendRecordJSONMatchesStdlib pins byte equivalence between the
// hand-rolled record encoder and encoding/json. Segment Merkle leaves
// hash the line bytes, so a single divergent byte would make every new
// directory unverifiable by a stdlib-based reader — this test is the
// contract that lets writeBatch skip reflection.
func TestAppendRecordJSONMatchesStdlib(t *testing.T) {
	check := func(r crowd.Record) {
		t.Helper()
		want, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		got := appendRecordJSON(nil, r)
		if string(got) != string(want) {
			t.Fatalf("encoders disagree for %+v:\n  hand-rolled %s\n  stdlib      %s", r, got, want)
		}
	}

	values := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, -0.25, 1.0 / 3.0,
		1e-6, 9.999999e-7, 1e-7, -1e-7, 1e21, 9.99e20, -1e21, 1e22,
		5e-324, -5e-324, math.MaxFloat64, -math.MaxFloat64,
		math.SmallestNonzeroFloat64, 0.1, 0.2, 0.30000000000000004,
		123456789.123456789, 1e100, -1e-100, 2.5e-10,
	}
	for _, v := range values {
		check(crowd.Record{Round: 3, I: 1, J: 2, Value: v})
	}
	check(crowd.Record{Round: 0, I: 0, J: -1, Value: 4})
	check(crowd.Record{Round: math.MaxInt64, I: math.MaxInt32, J: math.MaxInt32, Value: -0.125})

	rng := rand.New(rand.NewSource(11))
	for n := 0; n < 5000; n++ {
		v := math.Float64frombits(rng.Uint64())
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue // ValidateRecord rejects these before encoding
		}
		check(crowd.Record{Round: rng.Int63n(1 << 40), I: rng.Intn(1 << 20), J: rng.Intn(1 << 20), Value: v})
	}
}
