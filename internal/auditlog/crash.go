package auditlog

import (
	"errors"
	"os"
	"sync/atomic"
)

// errSimulatedCrash is the death certificate of an injected crash: the
// hook performed part (or none) of the io and the writer must behave as
// if the process died there — no compensation, no cleanup, recovery is
// the next Open's job.
var errSimulatedCrash = errors.New("auditlog: simulated crash")

// crashHooks funnels every byte the log puts on disk, so tests can kill
// the writer at any io step — mid-record (torn write), between a seal
// and its manifest update, between a checkpoint rename and the folded
// segments' deletion. A schedule is (KillAt, Partial): the KillAt-th io
// step dies after writing only Partial bytes of its payload. Like
// FaultyPlatform schedules it is deterministic and replayable: the same
// schedule against the same append sequence dies at the same byte.
//
// A nil *crashHooks is the production path: direct io, no counting.
type crashHooks struct {
	// KillAt is the 1-based io step to die at; 0 never dies.
	KillAt int64
	// Partial caps the bytes actually written by the dying write step
	// (ignored for sync/rename/remove steps, which die whole).
	Partial int

	step atomic.Int64
	dead atomic.Bool
	// DiedOp records which operation the crash landed on, for test
	// diagnostics ("write", "sync", "rename", "remove").
	DiedOp atomic.Value
}

// Steps returns how many io steps have executed — run a schedule with
// KillAt 0 first to learn the step universe, then replay killing each.
func (h *crashHooks) Steps() int64 { return h.step.Load() }

// Died reports whether the schedule has fired.
func (h *crashHooks) Died() bool { return h != nil && h.dead.Load() }

// trip returns true when this step is the scheduled death.
func (h *crashHooks) trip(op string) bool {
	if h.dead.Load() {
		return true
	}
	if h.step.Add(1) == h.KillAt {
		h.DiedOp.Store(op)
		h.dead.Store(true)
		return true
	}
	return false
}

func (h *crashHooks) write(f *os.File, data []byte) error {
	if h == nil {
		_, err := f.Write(data)
		return err
	}
	if h.trip("write") {
		n := h.Partial
		if n > len(data) {
			n = len(data)
		}
		if n > 0 {
			_, _ = f.Write(data[:n])
		}
		return errSimulatedCrash
	}
	_, err := f.Write(data)
	return err
}

func (h *crashHooks) sync(f *os.File) error {
	if h == nil {
		return f.Sync()
	}
	if h.trip("sync") {
		return errSimulatedCrash
	}
	return f.Sync()
}

func (h *crashHooks) rename(oldpath, newpath string) error {
	if h == nil {
		return os.Rename(oldpath, newpath)
	}
	if h.trip("rename") {
		return errSimulatedCrash
	}
	return os.Rename(oldpath, newpath)
}

func (h *crashHooks) remove(path string) error {
	if h == nil {
		return os.Remove(path)
	}
	if h.trip("remove") {
		return errSimulatedCrash
	}
	return os.Remove(path)
}
