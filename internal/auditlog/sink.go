package auditlog

import (
	"sync"

	"crowdtopk/internal/crowd"
)

// ResumeSink filters the record stream of a resumed session before it
// reaches the persistent log. A resumed engine serves replayed answers
// through the same draw path as live ones, so it re-logs every replayed
// draw; blindly persisting that stream would duplicate history already
// on disk. The sink instead skips, per pair, exactly as many records as
// the directory already holds — replay hands a pair its recorded answers
// in recorded order before any live purchase can occur, so the first
// n_p records the engine emits for pair p are precisely the n_p already
// persisted. What passes through is exactly the live purchases,
// regardless of how queries interleave across pairs.
type ResumeSink struct {
	mu      sync.Mutex
	skip    map[[2]int]int64
	dst     *Log
	skipped int64
	passed  int64
}

// NewResumeSink wraps log for a session resumed from prior (the records
// Load returned, also fed to the replay oracle).
func NewResumeSink(log *Log, prior []crowd.Record) *ResumeSink {
	s := &ResumeSink{skip: make(map[[2]int]int64), dst: log}
	for _, r := range prior {
		s.skip[sinkKey(r)]++
	}
	return s
}

func sinkKey(r crowd.Record) [2]int {
	if r.IsGraded() {
		return [2]int{r.I, -1}
	}
	return [2]int{r.I, r.J}
}

// Record implements crowd.RecordSink: skip each pair's replayed prefix,
// forward the rest to the persistent log.
func (s *ResumeSink) Record(recs []crowd.Record) {
	s.mu.Lock()
	var pass []crowd.Record
	for _, r := range recs {
		k := sinkKey(r)
		if s.skip[k] > 0 {
			s.skip[k]--
			s.skipped++
			continue
		}
		s.passed++
		pass = append(pass, r)
	}
	s.mu.Unlock()
	if len(pass) > 0 {
		s.dst.Append(pass)
	}
}

// Skipped returns how many replayed records were suppressed so far.
func (s *ResumeSink) Skipped() int64 { return s.counter(&s.skipped) }

// Passed returns how many live records were forwarded so far.
func (s *ResumeSink) Passed() int64 { return s.counter(&s.passed) }

func (s *ResumeSink) counter(p *int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return *p
}
