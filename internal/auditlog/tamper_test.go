package auditlog

import (
	"os"
	"path/filepath"
	"testing"
)

// buildSealedDir writes a log whose Close leaves several sealed segments
// on disk (compaction off), returning the segment file names in chain
// order.
func buildSealedDir(t *testing.T) (string, []string) {
	t.Helper()
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentMaxRecords: 8, CompactEvery: -1, Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, mkRecords(50))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) < 3 {
		t.Fatalf("want several sealed segments, got %d", len(seqs))
	}
	names := make([]string, len(seqs))
	for i, s := range seqs {
		names[i] = segmentFile(s)
	}
	return dir, names
}

func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		data, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// flipByte flips one bit of a mid-file byte, skipping newlines so the
// line structure survives and the damage is purely content-level.
func flipByte(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for off := len(data) / 2; off < len(data); off++ {
		b := data[off]
		if b == '\n' || b^0x01 == '\n' {
			continue
		}
		data[off] = b ^ 0x01
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	t.Fatal("no flippable byte found")
}

// TestTamperAttributedToSegment is the headline tamper guarantee: flip a
// single byte in any sealed segment and Verify names exactly that
// segment — every other element still passes, so the damage is
// localized, not merely detected.
func TestTamperAttributedToSegment(t *testing.T) {
	src, names := buildSealedDir(t)
	for _, victim := range names {
		victim := victim
		t.Run(victim, func(t *testing.T) {
			dir := copyDir(t, src)
			flipByte(t, filepath.Join(dir, victim))
			rep, err := Verify(dir)
			if err != nil {
				t.Fatal(err)
			}
			if rep.OK {
				t.Fatal("verify passed on a tampered directory")
			}
			if rep.FirstBad != victim {
				t.Fatalf("first bad = %s, want %s", rep.FirstBad, victim)
			}
			for _, el := range rep.Elements {
				if el.File == victim {
					if el.OK {
						t.Fatalf("%s reported OK despite tamper", victim)
					}
					continue
				}
				if !el.OK {
					t.Fatalf("undamaged %s reported bad (%s): attribution leaked", el.File, el.Detail)
				}
			}
			// Open must refuse the directory outright — tampered history
			// cannot be silently resumed from.
			if _, err := Open(dir, Options{}); err == nil {
				t.Fatal("open accepted a tampered directory")
			}
		})
	}
}

func TestTamperedCheckpointDetected(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentMaxRecords: 8, CompactEvery: 2, Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, mkRecords(64))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	ckpts, err := listCheckpoints(dir)
	if err != nil || len(ckpts) == 0 {
		t.Fatalf("no checkpoint written (err %v)", err)
	}
	victim := checkpointFile(ckpts[len(ckpts)-1])
	flipByte(t, filepath.Join(dir, victim))
	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK || rep.FirstBad != victim {
		t.Fatalf("ok=%v firstBad=%s, want tampered checkpoint %s flagged", rep.OK, rep.FirstBad, victim)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("open accepted a tampered checkpoint")
	}
}

func TestMissingSegmentDetected(t *testing.T) {
	src, names := buildSealedDir(t)
	dir := copyDir(t, src)
	victim := names[1]
	if err := os.Remove(filepath.Join(dir, victim)); err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK || rep.FirstBad != victim {
		t.Fatalf("ok=%v firstBad=%s, want deleted %s flagged", rep.OK, rep.FirstBad, victim)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("open accepted a directory missing a manifested segment")
	}
}

func TestTamperedManifestDetected(t *testing.T) {
	src, _ := buildSealedDir(t)
	dir := copyDir(t, src)
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{ not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK || rep.FirstBad != manifestName {
		t.Fatalf("ok=%v firstBad=%s, want manifest flagged", rep.OK, rep.FirstBad)
	}
}

// TestSealLineTamperDetected rewrites a seal's chain value: the records
// still match their root, but the rewritten seal no longer agrees with
// the manifest's pinned chain, so the segment is flagged even though its
// content is untouched.
func TestSealLineTamperDetected(t *testing.T) {
	src, names := buildSealedDir(t)
	dir := copyDir(t, src)
	victim := names[len(names)-1]
	path := filepath.Join(dir, victim)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The seal is the last line; its chain hex is the last hash in the
	// file. Swap one hex digit for another.
	for off := len(data) - 2; off > 0; off-- {
		if b := data[off]; b >= '0' && b <= '9' {
			data[off] = 'a' + (b - '0')
			break
		}
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK || rep.FirstBad != victim {
		t.Fatalf("ok=%v firstBad=%s, want %s", rep.OK, rep.FirstBad, victim)
	}
}

func TestVerifyCleanDirectoryWithCheckpoint(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentMaxRecords: 8, CompactEvery: 2, Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	recs := mkRecords(100)
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("verify failed at %s", rep.FirstBad)
	}
	if rep.Records != int64(len(recs)) {
		t.Fatalf("verify covered %d records, want %d", rep.Records, len(recs))
	}
}

func TestVerifyEmptyDirectory(t *testing.T) {
	rep, err := Verify(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatal("empty directory should verify clean")
	}
}
