// Package auditlog is the durable successor to the in-memory audit trail
// of internal/crowd: a segmented, tamper-evident, crash-recoverable log
// of every microtask a session buys.
//
// Records stream from the engine's hot path into a bounded queue and are
// committed by a single background goroutine, so the asker never waits
// on disk unless the queue is full (bounded memory beats unbounded
// buffering; the fsync policy decides how much tail a power cut may
// cost). Segments rotate by size or count; sealed segments carry a
// Merkle root chained across the directory; compaction folds sealed
// history into a checkpoint with one entry per pair, making resume cost
// proportional to pairs touched, not microtasks ever purchased.
package auditlog

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"crowdtopk/internal/crowd"
	"crowdtopk/internal/lockfile"
)

// ErrLogLocked reports that another process holds the audit-log
// directory's writer lock.
var ErrLogLocked = lockfile.ErrLocked

// ErrClosed reports an operation on a closed log.
var ErrClosed = errors.New("auditlog: log is closed")

// SyncPolicy selects when the committer fsyncs the active segment.
type SyncPolicy string

const (
	// SyncAlways fsyncs after every committed batch: no acknowledged
	// record is ever lost, at the price of one fsync per batch.
	SyncAlways SyncPolicy = "always"
	// SyncIntervalPolicy fsyncs on a timer while dirty: a crash loses at
	// most the last interval's records (they are re-bought on resume).
	SyncIntervalPolicy SyncPolicy = "interval"
	// SyncOff leaves durability to the OS page cache: fastest, and a
	// crash may lose everything since the last rotation (seals always
	// fsync regardless of policy).
	SyncOff SyncPolicy = "off"
)

// ParseSyncPolicy maps a flag string onto a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch SyncPolicy(s) {
	case SyncAlways, SyncIntervalPolicy, SyncOff:
		return SyncPolicy(s), nil
	}
	return "", fmt.Errorf("auditlog: unknown sync policy %q (want always, interval or off)", s)
}

// Options tunes a Log. The zero value selects the defaults below.
type Options struct {
	// SegmentMaxRecords rotates the active segment once it holds this
	// many records. Default 4096.
	SegmentMaxRecords int
	// SegmentMaxBytes rotates the active segment once it reaches this
	// size. Default 1 MiB.
	SegmentMaxBytes int64
	// Sync is the fsync policy for record batches. Default SyncIntervalPolicy.
	Sync SyncPolicy
	// SyncInterval is the flush period under SyncIntervalPolicy. Default 100ms.
	SyncInterval time.Duration
	// QueueBatches bounds the commit queue; a full queue applies
	// backpressure to Append rather than buffering without limit.
	// Default 256.
	QueueBatches int
	// CompactEvery folds sealed segments into a checkpoint once this
	// many accumulate. Default 4; negative disables automatic folding
	// (explicit Checkpoint calls still fold).
	CompactEvery int

	// hooks injects simulated crashes at io boundaries (tests only).
	hooks *crashHooks
}

func (o Options) withDefaults() Options {
	if o.SegmentMaxRecords <= 0 {
		o.SegmentMaxRecords = 4096
	}
	if o.SegmentMaxBytes <= 0 {
		o.SegmentMaxBytes = 1 << 20
	}
	if o.Sync == "" {
		o.Sync = SyncIntervalPolicy
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = 100 * time.Millisecond
	}
	if o.QueueBatches <= 0 {
		o.QueueBatches = 256
	}
	if o.CompactEvery == 0 {
		o.CompactEvery = 4
	}
	return o
}

type ctlOp int

const (
	opFlush ctlOp = iota
	opCheckpoint
	opClose
	// opAbandon simulates kill -9 for tests: the committer exits without
	// flushing, sealing or checkpointing, leaving the directory exactly
	// as a dead process would.
	opAbandon
)

type ctlReq struct {
	op   ctlOp
	done chan error
}

// Log is a segmented audit log open for writing. One Log owns its
// directory exclusively (flock); Append is safe for concurrent use and
// never blocks on disk unless the bounded queue is full.
type Log struct {
	dir  string
	o    Options
	lock *lockfile.Lock

	queue chan *[]crowd.Record
	ctl   chan ctlReq
	done  chan struct{} // closed when the committer exits
	// batchPool recycles the producer-side batch copies: a query logs
	// thousands of small batches, and fresh allocations for each would
	// drive the GC hard enough to show up in query wall time.
	batchPool sync.Pool

	closed    atomic.Bool
	closeOnce sync.Once
	closeErr  error

	appended  atomic.Int64 // records accepted by Append this session
	committed atomic.Int64 // records written to segments this session
	total     atomic.Int64 // records on disk overall (inherited + committed)

	failMu  sync.Mutex
	failErr error

	// Committer-goroutine state: the active segment and manifest.
	f      *os.File
	seq    int
	base   int64
	count  int
	size   int64
	leaves [][32]byte
	chain  [32]byte // chain root after the last sealed segment
	dirty  bool
	man    manifest
	// wbuf stages encoded records across one drain cycle so many queued
	// batches land in a single write(2); reused between cycles.
	wbuf []byte
	// wake nudges a lazily-scheduled committer (Sync != SyncAlways) once
	// the queue is half full; 1-buffered, so a nudge is never lost.
	wake chan struct{}
}

// Open acquires the directory (creating it if needed), recovers from any
// crash it finds — truncating a torn active tail, discarding
// half-finished folds, deleting already-folded leftovers — and starts
// the background committer. It refuses directories whose damage
// truncation cannot explain; run Verify to localize such damage.
func Open(dir string, o Options) (*Log, error) {
	o = o.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("auditlog: %w", err)
	}
	lock, err := lockfile.Acquire(filepath.Join(dir, lockName))
	if err != nil {
		return nil, err
	}
	st, err := recoverDir(dir)
	if err != nil {
		lock.Release()
		return nil, err
	}
	// Apply the recovery plan: drop folded leftovers and half-finished
	// folds, cut the torn tail back to its last whole record.
	for _, name := range st.leftovers {
		if err := os.Remove(filepath.Join(dir, name)); err != nil && !os.IsNotExist(err) {
			lock.Release()
			return nil, fmt.Errorf("auditlog: removing leftover %s: %w", name, err)
		}
	}
	if st.active != nil && st.active.torn {
		if err := os.Truncate(filepath.Join(dir, st.active.file), st.active.validLen); err != nil {
			lock.Release()
			return nil, fmt.Errorf("auditlog: truncating torn tail of %s: %w", st.active.file, err)
		}
	}

	l := &Log{
		dir:   dir,
		o:     o,
		lock:  lock,
		queue: make(chan *[]crowd.Record, o.QueueBatches),
		ctl:   make(chan ctlReq),
		done:  make(chan struct{}),
		wake:  make(chan struct{}, 1),
		chain: st.chain,
	}
	l.total.Store(st.total)
	l.man = manifest{Kind: "manifest", Checkpoint: st.manCkpt, Segments: st.manSegs, Records: st.total - st.activeCount()}

	if st.active != nil {
		// Adopt the recovered tail and keep appending to it.
		path := filepath.Join(dir, st.active.file)
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			lock.Release()
			return nil, fmt.Errorf("auditlog: reopening active segment: %w", err)
		}
		// The adopted bytes predate this process; sync once so recovery
		// decisions (the truncate above) are durable before new appends.
		if err := f.Sync(); err != nil {
			f.Close()
			lock.Release()
			return nil, fmt.Errorf("auditlog: syncing recovered segment: %w", err)
		}
		l.f = f
		l.seq = st.active.header.Seq
		l.base = st.active.header.Base
		l.count = len(st.active.records)
		l.size = st.active.validLen
		l.leaves = st.active.leaves
		l.man.ActiveSeq = l.seq
		if err := l.writeManifest(); err != nil {
			f.Close()
			lock.Release()
			return nil, err
		}
	} else {
		l.openSegment(st.nextSeq())
		if err := l.loadErr(); err != nil {
			if l.f != nil {
				l.f.Close()
			}
			lock.Release()
			return nil, err
		}
	}

	go l.run()
	return l, nil
}

// Append queues records for commit. It blocks only when the bounded
// queue is full (backpressure, not unbounded buffering) and returns
// without error after the log has failed — the first commit error is
// latched and reported by Err, Flush and Close, so the hot path never
// gains an error branch.
func (l *Log) Append(recs []crowd.Record) {
	if len(recs) == 0 || l.closed.Load() {
		return
	}
	var batch *[]crowd.Record
	if v := l.batchPool.Get(); v != nil {
		batch = v.(*[]crowd.Record)
	} else {
		batch = new([]crowd.Record)
	}
	*batch = append((*batch)[:0], recs...)
	select {
	case l.queue <- batch:
		l.appended.Add(int64(len(recs)))
		// Lazily-scheduled committer: waking it per batch would cost a
		// context switch per Append, so let batches pool in the queue and
		// nudge only once it is half full — the sync ticker and control
		// ops bound how long a quiet queue sits. SyncAlways commits (and
		// fsyncs) every batch promptly, so there the committer watches
		// the queue directly and needs no nudge.
		if l.o.Sync != SyncAlways && len(l.queue) >= l.wakeAt() {
			select {
			case l.wake <- struct{}{}:
			default:
			}
		}
	case <-l.done:
		// Racing a Close: the committer is gone; drop rather than wedge
		// the producer. Sessions quiesce before closing their log, so
		// this path only fires on misuse.
		l.batchPool.Put(batch)
	}
}

// Record queues a single record (crowd.RecordSink).
func (l *Log) Record(recs []crowd.Record) { l.Append(recs) }

// Flush drains the queue and fsyncs the active segment regardless of
// the sync policy, then reports the first commit error, if any.
func (l *Log) Flush() error { return l.control(opFlush) }

// Checkpoint seals the active segment (if it holds records), folds all
// sealed segments into a fresh checkpoint, and opens a new active
// segment. Resume cost after a Checkpoint is proportional to the pairs
// ever touched, not to the records ever purchased.
func (l *Log) Checkpoint() error { return l.control(opCheckpoint) }

// Close drains the queue, writes a final checkpoint, closes the active
// segment and releases the directory lock. Safe to call twice.
func (l *Log) Close() error {
	l.closeOnce.Do(func() {
		l.closed.Store(true)
		l.closeErr = l.control(opClose)
		if rerr := l.lock.Release(); l.closeErr == nil {
			l.closeErr = rerr
		}
	})
	return l.closeErr
}

func (l *Log) control(op ctlOp) error {
	req := ctlReq{op: op, done: make(chan error, 1)}
	select {
	case l.ctl <- req:
		return <-req.done
	case <-l.done:
		if err := l.Err(); err != nil {
			return err
		}
		return ErrClosed
	}
}

// Err returns the first commit error, if any. Once a commit fails the
// log stops writing: later appends are counted but dropped, and the
// error surfaces here and from Flush/Close.
func (l *Log) Err() error {
	l.failMu.Lock()
	defer l.failMu.Unlock()
	return l.failErr
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Appended returns the records accepted by Append this session.
func (l *Log) Appended() int64 { return l.appended.Load() }

// Committed returns the records written to segment files this session.
func (l *Log) Committed() int64 { return l.committed.Load() }

// Total returns the records on disk overall, including history
// inherited from previous sessions of this directory.
func (l *Log) Total() int64 { return l.total.Load() }

func (l *Log) fail(err error) {
	l.failMu.Lock()
	if l.failErr == nil {
		l.failErr = err
	}
	l.failMu.Unlock()
}

func (l *Log) loadErr() error {
	l.failMu.Lock()
	defer l.failMu.Unlock()
	return l.failErr
}

// wakeAt is the queue depth that triggers an eager committer nudge:
// half the capacity, so producers never reach a full queue with the
// nudge still unsent.
func (l *Log) wakeAt() int {
	return (cap(l.queue) + 1) / 2
}

// run is the committer: the only goroutine that touches the files.
//
// Scheduling depends on the sync policy. SyncAlways watches the queue
// and commits (write + fsync) every batch as it arrives. The other
// policies are lazy: batches pool in the queue until a half-full nudge
// from Append, the sync ticker, or a control op drains them all into a
// single write — on small machines per-batch wakeups would cost more
// than the encoding itself.
func (l *Log) run() {
	defer close(l.done)
	eager := l.o.Sync == SyncAlways
	var incoming chan *[]crowd.Record
	var tick <-chan time.Time
	if eager {
		incoming = l.queue
	} else {
		t := time.NewTicker(l.o.SyncInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case batch := <-incoming:
			l.stageBatch(batch)
			l.drainQueued()
			l.flushStaged()
			l.syncNow()
		case <-l.wake:
			l.drainQueued()
			l.flushStaged()
		case <-tick:
			l.drainQueued()
			l.flushStaged()
			if l.dirty && l.o.Sync == SyncIntervalPolicy {
				l.syncNow()
			}
		case req := <-l.ctl:
			l.drainQueued()
			l.flushStaged()
			switch req.op {
			case opFlush:
				l.syncNow()
			case opCheckpoint:
				l.checkpointNow(true, true)
			case opClose:
				// A clean close writes the final checkpoint so the next boot
				// resumes in O(pairs); with compaction disabled it only seals,
				// preserving per-segment history.
				l.checkpointNow(l.o.CompactEvery > 0, false)
				if l.f != nil {
					l.syncNow()
					if err := l.f.Close(); err != nil {
						l.fail(err)
					}
					l.f = nil
				}
				req.done <- l.loadErr()
				return
			case opAbandon:
				if l.f != nil {
					_ = l.f.Close() // an open fd flushes nothing; kernel cache survives
					l.f = nil
				}
				req.done <- nil
				return
			}
			req.done <- l.loadErr()
		}
	}
}

// drainQueued folds everything already queued into the current commit
// cycle without blocking, so one write and one fsync cover many appends.
func (l *Log) drainQueued() {
	for {
		select {
		case batch := <-l.queue:
			l.stageBatch(batch)
		default:
			return
		}
	}
}

// stageBatch validates and encodes a queued batch into the staging
// buffer, recycling the batch's backing array afterwards. The bytes
// reach the file at the next flushStaged — always within the same
// select iteration, so no staged record ever outlives a commit cycle.
func (l *Log) stageBatch(batch *[]crowd.Record) {
	recs := *batch
	defer l.batchPool.Put(batch)
	if l.loadErr() != nil || len(recs) == 0 {
		return
	}
	staged := len(l.wbuf)
	for _, r := range recs {
		if err := crowd.ValidateRecord(r); err != nil {
			l.wbuf = l.wbuf[:staged]
			l.leaves = l.leaves[:l.count]
			l.fail(fmt.Errorf("auditlog: refusing record: %w", err))
			return
		}
		start := len(l.wbuf)
		l.wbuf = appendRecordJSON(l.wbuf, r)
		l.leaves = append(l.leaves, leafHash(l.wbuf[start:]))
		l.wbuf = append(l.wbuf, '\n')
	}
	l.count += len(recs)
	l.size += int64(len(l.wbuf) - staged)
	l.committed.Add(int64(len(recs)))
	l.total.Add(int64(len(recs)))
	if l.count >= l.o.SegmentMaxRecords || l.size >= l.o.SegmentMaxBytes {
		l.flushStaged()
		l.rotate()
	}
}

// flushStaged lands the staging buffer in one write(2) and resets it
// (capacity retained). seal calls it too, so a segment can never seal
// over unwritten records.
func (l *Log) flushStaged() {
	if len(l.wbuf) == 0 {
		return
	}
	if l.loadErr() == nil {
		if err := l.o.hooks.write(l.f, l.wbuf); err != nil {
			l.fail(err)
		} else {
			l.dirty = true
		}
	}
	l.wbuf = l.wbuf[:0]
}

func (l *Log) syncNow() {
	if l.loadErr() != nil || l.f == nil || !l.dirty {
		return
	}
	if err := l.o.hooks.sync(l.f); err != nil {
		l.fail(err)
		return
	}
	l.dirty = false
}

// rotate seals the active segment, folds if enough sealed segments have
// accumulated, and opens the successor.
func (l *Log) rotate() {
	l.seal()
	if l.o.CompactEvery > 0 && len(l.man.Segments) >= l.o.CompactEvery {
		l.fold()
	}
	l.openSegment(l.seq + 1)
}

// seal finalizes the active segment: fsync the records, append the seal
// line committing to the Merkle root and advanced chain, fsync again,
// then pin root and chain in the manifest. After the final fsync the
// segment is immutable; everything after it is bookkeeping that recovery
// can redo.
func (l *Log) seal() {
	l.flushStaged()
	if l.loadErr() != nil {
		return
	}
	if err := l.o.hooks.sync(l.f); err != nil {
		l.fail(err)
		return
	}
	root := merkleRoot(l.leaves)
	next := chainRoot(l.chain, root)
	seal := segmentSeal{Kind: "seal", Count: l.count, Root: hex.EncodeToString(root[:]), Chain: hexChain(next)}
	line, err := json.Marshal(seal)
	if err != nil {
		l.fail(err)
		return
	}
	if err := l.o.hooks.write(l.f, append(line, '\n')); err != nil {
		l.fail(err)
		return
	}
	if err := l.o.hooks.sync(l.f); err != nil {
		l.fail(err)
		return
	}
	if err := l.f.Close(); err != nil {
		l.fail(err)
		return
	}
	l.f = nil
	l.dirty = false
	l.man.Segments = append(l.man.Segments, manifestSegment{
		File: segmentFile(l.seq), Seq: l.seq, Base: l.base, Count: l.count,
		Root: seal.Root, Chain: seal.Chain,
	})
	l.man.Records += int64(l.count)
	// No unsealed segment exists until openSegment creates the successor;
	// a manifest pointing at a sealed (or folded-away) seq as active
	// would send Verify chasing a ghost.
	l.man.ActiveSeq = 0
	l.chain = next
	if err := l.writeManifest(); err != nil {
		l.fail(err)
	}
}

// fold compacts the prior checkpoint plus every sealed segment into a
// fresh checkpoint, commits it through the manifest, and only then
// deletes the folded files. A crash at any point leaves either the old
// world (manifest still names it) or the new one plus deletable
// leftovers — never a world missing records.
func (l *Log) fold() {
	if l.loadErr() != nil || len(l.man.Segments) == 0 {
		return
	}
	fo := newFolder()
	var folded []string
	if l.man.Checkpoint != nil {
		doc, _, err := readCheckpoint(filepath.Join(l.dir, l.man.Checkpoint.File))
		if err != nil {
			l.fail(err)
			return
		}
		fo.addDoc(doc)
		folded = append(folded, l.man.Checkpoint.File)
	}
	for _, ms := range l.man.Segments {
		ps, err := readSegment(filepath.Join(l.dir, ms.File))
		if err != nil {
			l.fail(err)
			return
		}
		fo.addRecords(ps.records)
		folded = append(folded, ms.File)
	}
	upTo := l.man.Segments[len(l.man.Segments)-1].Seq
	doc := fo.doc(upTo, hexChain(l.chain))
	data, err := json.Marshal(doc)
	if err != nil {
		l.fail(err)
		return
	}
	name := checkpointFile(upTo)
	if err := writeFileAtomic(filepath.Join(l.dir, name), data, l.o.hooks); err != nil {
		l.fail(err)
		return
	}
	sum := sha256.Sum256(data)
	l.man.Checkpoint = &manifestCheckpoint{
		File: name, UpTo: upTo, Records: doc.Records,
		Chain: doc.Chain, SHA256: hex.EncodeToString(sum[:]),
	}
	l.man.Segments = nil
	if err := l.writeManifest(); err != nil {
		l.fail(err)
		return
	}
	for _, f := range folded {
		if f == name {
			continue
		}
		if err := l.o.hooks.remove(filepath.Join(l.dir, f)); err != nil && !os.IsNotExist(err) {
			l.fail(err)
			return
		}
	}
}

// openSegment creates segment seq, writes its header (committing to the
// current chain root) and records it as active in the manifest.
func (l *Log) openSegment(seq int) {
	if l.loadErr() != nil {
		return
	}
	path := filepath.Join(l.dir, segmentFile(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		l.fail(fmt.Errorf("auditlog: creating segment: %w", err))
		return
	}
	hdr := segmentHeader{Kind: "header", Seq: seq, Prev: hexChain(l.chain), Base: l.total.Load()}
	line, err := json.Marshal(hdr)
	if err != nil {
		l.fail(err)
		f.Close()
		return
	}
	if err := l.o.hooks.write(f, append(line, '\n')); err != nil {
		l.fail(err)
		f.Close()
		return
	}
	if err := l.o.hooks.sync(f); err != nil {
		l.fail(err)
		f.Close()
		return
	}
	l.f = f
	l.seq = seq
	l.base = l.total.Load()
	l.count = 0
	l.size = int64(len(line) + 1)
	// Reuse the sealed predecessor's leaf array: rotation would otherwise
	// reallocate (and GC) SegmentMaxRecords hashes per segment.
	l.leaves = append(l.leaves[:0], leafHash(line))
	l.dirty = false
	l.man.ActiveSeq = seq
	if err := l.writeManifest(); err != nil {
		l.fail(err)
	}
}

// checkpointNow seals the active segment when it holds records,
// optionally folds everything sealed, and (when reopen is set) opens a
// fresh active segment for further appends.
func (l *Log) checkpointNow(fold, reopen bool) {
	if l.loadErr() != nil {
		return
	}
	if l.count > 0 {
		l.seal()
	}
	if fold && len(l.man.Segments) > 0 {
		l.fold()
	}
	if reopen && l.f == nil && l.loadErr() == nil {
		l.openSegment(l.seq + 1)
	}
}

// abandon simulates kill -9 (tests only): the committer stops without
// any cleanup io and the flock is released the way the kernel would on
// process death. Whatever the directory holds at this instant is what
// the next Open must recover from.
func (l *Log) abandon() {
	l.closeOnce.Do(func() {
		l.closed.Store(true)
		l.closeErr = l.control(opAbandon)
		_ = l.lock.Release()
	})
}

func (l *Log) writeManifest() error {
	data, err := json.MarshalIndent(&l.man, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(l.dir, manifestName), append(data, '\n'), l.o.hooks)
}
