package auditlog

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"crowdtopk/internal/crowd"
)

// On-disk layout of an audit-log directory:
//
//	seg-000001.log          sealed segment (header, records, seal)
//	seg-000002.log          active segment (header, records, no seal yet)
//	checkpoint-000004.json  fold of segments 1..4 (one entry per pair)
//	MANIFEST.json           roots + chain heads, atomically rewritten
//	LOCK                    flock sidecar (one writer process)
//
// A segment is JSONL: the first line is its header, then one line per
// record, and — once rotated out — a final seal line. The seal commits to
// a SHA-256 Merkle root over the header line and every record line
// exactly as written, and to the running chain root
//
//	chain_k = SHA256(chain_{k-1} || root_k)
//
// so each segment's integrity covers its whole history: silently editing
// any sealed byte changes that segment's recomputed root, and rewriting
// the seal to match changes the chain every later segment (and the
// manifest) committed to.

const (
	manifestName = "MANIFEST.json"
	lockName     = "LOCK"
)

func segmentFile(seq int) string    { return fmt.Sprintf("seg-%06d.log", seq) }
func checkpointFile(upTo int) string { return fmt.Sprintf("checkpoint-%06d.json", upTo) }

// segmentSeq parses the sequence number out of a segment file name, or -1.
func segmentSeq(name string) int {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".log") {
		return -1
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".log"))
	if err != nil || n < 1 {
		return -1
	}
	return n
}

// checkpointSeq parses the fold horizon out of a checkpoint file name, or -1.
func checkpointSeq(name string) int {
	if !strings.HasPrefix(name, "checkpoint-") || !strings.HasSuffix(name, ".json") {
		return -1
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "checkpoint-"), ".json"))
	if err != nil || n < 1 {
		return -1
	}
	return n
}

// segmentHeader is the first line of every segment.
type segmentHeader struct {
	Kind string `json:"kind"` // "header"
	Seq  int    `json:"seq"`
	// Prev is the chain root after the predecessor segment (hex), ""
	// for the genesis segment.
	Prev string `json:"prev"`
	// Base is the global index of the segment's first record.
	Base int64 `json:"base"`
}

// segmentSeal is the last line of a sealed segment.
type segmentSeal struct {
	Kind  string `json:"kind"` // "seal"
	Count int    `json:"count"`
	// Root is the Merkle root over the header line and the record lines.
	Root string `json:"root"`
	// Chain is SHA256(prev-chain || root), the value the next segment's
	// header (and the manifest) commit to.
	Chain string `json:"chain"`
}

// lineProbe sniffs a line's kind without committing to a shape. Record
// lines carry no "kind" field and probe empty.
type lineProbe struct {
	Kind string `json:"kind"`
}

// leafHash is the Merkle leaf of one line as written (no newline).
func leafHash(line []byte) [32]byte { return sha256.Sum256(line) }

// merkleArity is the fan-in of interior Merkle nodes. Wider than binary
// because the tree buys per-segment attribution, not per-leaf proofs:
// interior digests cost ~N/(arity-1) instead of ~N, and sealing a
// default 4096-record segment hashes ~585 interior nodes instead of
// ~4095 — committer CPU the -log-bench overhead gate budgets for.
const merkleArity = 8

// merkleRoot folds leaf hashes merkleArity at a time; a lone child is
// promoted unchanged. The empty tree has the zero root (only a segment
// with no header could produce it, which never exists on disk).
func merkleRoot(leaves [][32]byte) [32]byte {
	if len(leaves) == 0 {
		return [32]byte{}
	}
	level := leaves
	var buf [merkleArity * 32]byte
	for len(level) > 1 {
		next := make([][32]byte, 0, (len(level)+merkleArity-1)/merkleArity)
		for i := 0; i < len(level); i += merkleArity {
			end := i + merkleArity
			if end > len(level) {
				end = len(level)
			}
			if end-i == 1 {
				next = append(next, level[i])
				continue
			}
			n := 0
			for _, h := range level[i:end] {
				copy(buf[n:], h[:])
				n += 32
			}
			next = append(next, sha256.Sum256(buf[:n]))
		}
		level = next
	}
	return level[0]
}

// chainRoot advances the cross-segment hash chain.
func chainRoot(prev, root [32]byte) [32]byte {
	var buf [64]byte
	copy(buf[:32], prev[:])
	copy(buf[32:], root[:])
	return sha256.Sum256(buf[:])
}

// genesisChain is the chain value before the first segment: all zeroes,
// rendered as "" in headers.
var genesisChain [32]byte

func hexChain(c [32]byte) string {
	if c == genesisChain {
		return ""
	}
	return hex.EncodeToString(c[:])
}

func parseChain(s string) ([32]byte, error) {
	if s == "" {
		return genesisChain, nil
	}
	var c [32]byte
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != 32 {
		return c, fmt.Errorf("auditlog: malformed hash %q", s)
	}
	copy(c[:], b)
	return c, nil
}

// parsedSegment is one segment file decoded with the raw line hashes
// retained, so sealing and verification hash exactly the bytes on disk.
type parsedSegment struct {
	file    string
	header  segmentHeader
	records []crowd.Record
	leaves  [][32]byte // header + record lines, in file order
	seal    *segmentSeal

	// validLen is the byte length of the well-formed prefix. torn reports
	// trailing bytes past it that failed to parse — the signature of a
	// crash mid-append, recoverable by truncating to validLen.
	validLen int64
	torn     bool
}

// errCorrupt marks damage that truncation cannot explain: a bad line with
// committed records after it, content after a seal, a malformed header.
// Open refuses to silently drop data behind it; Verify attributes it.
type corruptError struct {
	file   string
	reason string
}

func (e *corruptError) Error() string {
	return fmt.Sprintf("auditlog: %s: %s", e.file, e.reason)
}

// readSegment parses one segment file. A torn tail (crash mid-append) is
// tolerated and reported via the torn flag; corruption that truncation
// cannot explain returns a *corruptError.
func readSegment(path string) (*parsedSegment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("auditlog: read %s: %w", path, err)
	}
	return parseSegment(filepath.Base(path), data)
}

func parseSegment(name string, data []byte) (*parsedSegment, error) {
	ps := &parsedSegment{file: name}
	off := 0
	lineNo := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// Unterminated tail: the write (or the disk) stopped mid-line.
			ps.torn = true
			break
		}
		line := data[off : off+nl]
		ok, reason := ps.consumeLine(lineNo, line)
		if !ok {
			// A bad line is recoverable only when nothing valid follows it:
			// then it is the torn tail of a crashed append. A valid record
			// after it means committed data would be dropped — refuse.
			if segmentHasValidLineAfter(data[off+nl+1:]) {
				return nil, &corruptError{file: name, reason: reason}
			}
			ps.torn = true
			break
		}
		off += nl + 1
		ps.validLen = int64(off)
		lineNo++
	}
	if ps.torn && ps.seal != nil {
		// Bytes after a seal are never a torn append — nothing is written
		// to a segment after sealing.
		return nil, &corruptError{file: name, reason: "trailing data after seal"}
	}
	if lineNo == 0 && !ps.torn && len(data) > 0 {
		return nil, &corruptError{file: name, reason: "no parsable content"}
	}
	return ps, nil
}

// consumeLine folds one line into the parse state. It reports whether the
// line was accepted and, if not, why.
func (ps *parsedSegment) consumeLine(lineNo int, line []byte) (bool, string) {
	if len(line) == 0 {
		return false, "empty line"
	}
	var probe lineProbe
	if err := json.Unmarshal(line, &probe); err != nil {
		return false, fmt.Sprintf("line %d: %v", lineNo+1, err)
	}
	switch {
	case lineNo == 0:
		if probe.Kind != "header" {
			return false, "first line is not a segment header"
		}
		if err := json.Unmarshal(line, &ps.header); err != nil {
			return false, fmt.Sprintf("header: %v", err)
		}
		if ps.header.Seq < 1 || ps.header.Base < 0 {
			return false, "header out of range"
		}
		ps.leaves = append(ps.leaves, leafHash(line))
	case probe.Kind == "seal":
		if ps.seal != nil {
			return false, "duplicate seal"
		}
		var seal segmentSeal
		if err := json.Unmarshal(line, &seal); err != nil {
			return false, fmt.Sprintf("seal: %v", err)
		}
		ps.seal = &seal
	case probe.Kind != "":
		return false, fmt.Sprintf("unknown line kind %q", probe.Kind)
	case ps.seal != nil:
		return false, "record after seal"
	default:
		var rec crowd.Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return false, fmt.Sprintf("record %d: %v", len(ps.records), err)
		}
		if err := crowd.ValidateRecord(rec); err != nil {
			return false, fmt.Sprintf("record %d: %v", len(ps.records), err)
		}
		ps.records = append(ps.records, rec)
		ps.leaves = append(ps.leaves, leafHash(line))
	}
	return true, ""
}

// segmentHasValidLineAfter reports whether any complete line in rest
// parses as segment content — the test separating a torn tail from
// mid-file corruption.
func segmentHasValidLineAfter(rest []byte) bool {
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			return false
		}
		line := rest[:nl]
		rest = rest[nl+1:]
		if len(line) == 0 {
			continue
		}
		var probe lineProbe
		if json.Unmarshal(line, &probe) != nil {
			continue
		}
		if probe.Kind == "seal" || probe.Kind == "header" {
			return true
		}
		var rec crowd.Record
		if json.Unmarshal(line, &rec) == nil && crowd.ValidateRecord(rec) == nil {
			return true
		}
	}
	return false
}

// listSegments returns the segment sequence numbers present in dir,
// ascending.
func listSegments(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("auditlog: %w", err)
	}
	var seqs []int
	for _, ent := range ents {
		if seq := segmentSeq(ent.Name()); seq > 0 {
			seqs = append(seqs, seq)
		}
	}
	sort.Ints(seqs)
	return seqs, nil
}

// listCheckpoints returns the checkpoint horizons present in dir,
// ascending.
func listCheckpoints(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("auditlog: %w", err)
	}
	var seqs []int
	for _, ent := range ents {
		if seq := checkpointSeq(ent.Name()); seq > 0 {
			seqs = append(seqs, seq)
		}
	}
	sort.Ints(seqs)
	return seqs, nil
}
