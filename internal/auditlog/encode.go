package auditlog

import (
	"math"
	"strconv"

	"crowdtopk/internal/crowd"
)

// appendRecordJSON renders one record exactly as encoding/json would —
// same field order, same float formatting — without reflection. The
// committer serializes every purchased microtask; on small machines its
// CPU time is the audit log's entire overhead, so the record line is the
// one encode worth hand-rolling. Byte equivalence with json.Marshal is
// pinned by TestAppendRecordJSONMatchesStdlib: segment hashes cover the
// line bytes, so the two encoders must never disagree.
func appendRecordJSON(buf []byte, r crowd.Record) []byte {
	buf = append(buf, `{"round":`...)
	buf = strconv.AppendInt(buf, r.Round, 10)
	buf = append(buf, `,"i":`...)
	buf = strconv.AppendInt(buf, int64(r.I), 10)
	buf = append(buf, `,"j":`...)
	buf = strconv.AppendInt(buf, int64(r.J), 10)
	buf = append(buf, `,"value":`...)
	buf = appendJSONFloat(buf, r.Value)
	return append(buf, '}')
}

// appendJSONFloat formats f the way encoding/json formats a float64:
// shortest round-trip representation, %f for ordinary magnitudes, %e
// outside [1e-6, 1e21) with the exponent's leading zero trimmed.
// NaN/Inf never reach here — ValidateRecord rejects them first.
func appendJSONFloat(buf []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	buf = strconv.AppendFloat(buf, f, format, -1, 64)
	if format == 'e' {
		// 1e+09 → 1e+9, matching encoding/json's cleanup.
		if n := len(buf); n >= 4 && buf[n-4] == 'e' && buf[n-2] == '0' {
			buf[n-2] = buf[n-1]
			buf = buf[:n-1]
		}
	}
	return buf
}
