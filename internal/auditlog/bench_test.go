package auditlog

import (
	"testing"

	"crowdtopk/internal/crowd"
)

// BenchmarkAppendCommit measures the full logging cost of one purchased
// batch: the producer-side copy and enqueue plus the committer's encode,
// hash and write, amortized by draining everything at the end. This is
// the number the -log-bench overhead gate rests on — on a single-core
// machine the committer's CPU time is the whole durability tax.
func BenchmarkAppendCommit(b *testing.B) {
	dir := b.TempDir()
	// CompactEvery -1: Close only seals, so the deferred shutdown does
	// not re-read the benchmark's multi-million-record segment.
	l, err := Open(dir, Options{Sync: SyncOff, SegmentMaxRecords: 1 << 20, SegmentMaxBytes: 1 << 40, CompactEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	batch := make([]crowd.Record, 10)
	for i := range batch {
		batch[i] = crowd.Record{Round: int64(i), I: 3, J: 7, Value: float64(i)/9.5 - 0.5}
	}
	b.SetBytes(int64(len(batch)))
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		l.Append(batch)
	}
	if err := l.Flush(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if got := l.Committed(); got != int64(b.N*len(batch)) {
		b.Fatalf("committed %d records, want %d", got, b.N*len(batch))
	}
}
