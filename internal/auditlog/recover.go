package auditlog

import (
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"crowdtopk/internal/crowd"
)

// dirState is the outcome of scanning an audit-log directory: what is
// live, what is deletable crash debris, and where the chain stands. It
// is a plan, not an action — Open applies the deletions and truncation,
// Load only reads.
type dirState struct {
	ckpt    *checkpointDoc
	manCkpt *manifestCheckpoint
	manSegs []manifestSegment
	sealed  []*parsedSegment
	active  *parsedSegment
	chain   [32]byte
	total   int64
	lastSeq int
	// leftovers are files recovery deletes: segments and checkpoints
	// already folded into the adopted checkpoint, half-finished folds the
	// manifest never committed to, and orphaned atomic-write temp files.
	leftovers []string
}

func (st *dirState) activeCount() int64 {
	if st.active == nil {
		return 0
	}
	return int64(len(st.active.records))
}

func (st *dirState) nextSeq() int { return st.lastSeq + 1 }

// records assembles the full replayable history: checkpoint expansion,
// then sealed segments, then the active tail's valid prefix.
func (st *dirState) records() []crowd.Record {
	var recs []crowd.Record
	if st.ckpt != nil {
		recs = st.ckpt.expand()
	}
	for _, ps := range st.sealed {
		recs = append(recs, ps.records...)
	}
	if st.active != nil {
		recs = append(recs, st.active.records...)
	}
	return recs
}

// recoverDir reconstructs the directory's committed state. The manifest
// is the commit point: a checkpoint it does not name is an incomplete
// fold (debris), segments at or below the named checkpoint's horizon are
// folded leftovers, and every sealed segment must agree with both its
// own seal and the manifest's pinned root. Damage that crash-truncation
// cannot explain is refused with a *corruptError naming the file.
func recoverDir(dir string) (*dirState, error) {
	st := &dirState{}
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}

	ckpts, err := listCheckpoints(dir)
	if err != nil {
		return nil, err
	}
	upTo := 0
	if man != nil && man.Checkpoint != nil {
		doc, sha, err := readCheckpoint(filepath.Join(dir, man.Checkpoint.File))
		if err != nil {
			return nil, err
		}
		if sha != man.Checkpoint.SHA256 {
			return nil, &corruptError{file: man.Checkpoint.File, reason: "content does not match the manifest's SHA-256"}
		}
		if doc.UpTo != man.Checkpoint.UpTo || doc.Records != man.Checkpoint.Records {
			return nil, &corruptError{file: man.Checkpoint.File, reason: "horizon or record count disagrees with manifest"}
		}
		chain, err := parseChain(doc.Chain)
		if err != nil {
			return nil, &corruptError{file: man.Checkpoint.File, reason: err.Error()}
		}
		st.ckpt = doc
		st.manCkpt = man.Checkpoint
		st.chain = chain
		st.total = doc.Records
		upTo = doc.UpTo
	}
	for _, seq := range ckpts {
		if st.manCkpt != nil && checkpointFile(seq) == st.manCkpt.File {
			continue
		}
		if man == nil {
			// A checkpoint can only be committed through a manifest write;
			// a checkpoint with no manifest at all is not crash debris.
			return nil, &corruptError{file: checkpointFile(seq), reason: "checkpoint present but manifest missing"}
		}
		// Superseded (fold completed, delete lost) or half-finished (fold
		// never committed): either way the manifest does not vouch for it.
		st.leftovers = append(st.leftovers, checkpointFile(seq))
	}

	manBySeq := map[int]manifestSegment{}
	if man != nil {
		for _, e := range man.Segments {
			manBySeq[e.Seq] = e
		}
	}

	seqs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	st.lastSeq = upTo
	prev := upTo
	var live []int
	for _, seq := range seqs {
		if seq <= upTo {
			st.leftovers = append(st.leftovers, segmentFile(seq))
			continue
		}
		live = append(live, seq)
	}
	for idx, seq := range live {
		name := segmentFile(seq)
		if seq != prev+1 {
			return nil, &corruptError{file: name, reason: fmt.Sprintf("segment gap: expected seq %d next", prev+1)}
		}
		ps, err := readSegment(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if len(ps.leaves) == 0 {
			// No whole header line survived: the segment died at birth,
			// before any record could have been acknowledged.
			if idx != len(live)-1 {
				return nil, &corruptError{file: name, reason: "headerless segment followed by others"}
			}
			st.leftovers = append(st.leftovers, name)
			break
		}
		if ps.header.Seq != seq {
			return nil, &corruptError{file: name, reason: fmt.Sprintf("header says seq %d", ps.header.Seq)}
		}
		if ps.header.Prev != hexChain(st.chain) {
			return nil, &corruptError{file: name, reason: "header does not chain from predecessor"}
		}
		if ps.header.Base != st.total {
			return nil, &corruptError{file: name, reason: fmt.Sprintf("header base %d, want %d", ps.header.Base, st.total)}
		}
		if ps.seal == nil {
			if idx != len(live)-1 {
				return nil, &corruptError{file: name, reason: "unsealed segment followed by others"}
			}
			if _, pinned := manBySeq[seq]; pinned {
				// The manifest only pins a segment after its seal is on
				// disk; an unsealed file here means the seal was cut out.
				return nil, &corruptError{file: name, reason: "manifest records a seal this segment lacks"}
			}
			st.active = ps
			st.total += int64(len(ps.records))
			st.lastSeq = seq
			break
		}
		root := merkleRoot(ps.leaves)
		if ps.seal.Root != hex.EncodeToString(root[:]) {
			return nil, &corruptError{file: name, reason: "records do not match the seal's Merkle root"}
		}
		if ps.seal.Count != len(ps.records) {
			return nil, &corruptError{file: name, reason: fmt.Sprintf("seal counts %d records, file has %d", ps.seal.Count, len(ps.records))}
		}
		next := chainRoot(st.chain, root)
		if ps.seal.Chain != hexChain(next) {
			return nil, &corruptError{file: name, reason: "seal's chain value does not extend the predecessor"}
		}
		if e, pinned := manBySeq[seq]; pinned {
			if e.Root != ps.seal.Root || e.Chain != ps.seal.Chain || e.Count != ps.seal.Count || e.Base != ps.header.Base {
				return nil, &corruptError{file: name, reason: "segment disagrees with the manifest's pinned seal"}
			}
		}
		st.manSegs = append(st.manSegs, manifestSegment{
			File: name, Seq: seq, Base: ps.header.Base, Count: ps.seal.Count,
			Root: ps.seal.Root, Chain: ps.seal.Chain,
		})
		st.sealed = append(st.sealed, ps)
		st.chain = next
		st.total += int64(len(ps.records))
		st.lastSeq = seq
		prev = seq
	}
	// Every segment the manifest still vouches for must exist: files are
	// only deleted after a fold raises the checkpoint horizon past them.
	for seq := range manBySeq {
		if seq <= upTo {
			continue
		}
		found := false
		for _, ms := range st.manSegs {
			if ms.Seq == seq {
				found = true
				break
			}
		}
		if !found {
			return nil, &corruptError{file: segmentFile(seq), reason: "manifest records this sealed segment but the file is gone"}
		}
	}

	// Orphaned atomic-write temp files are debris by construction.
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("auditlog: %w", err)
	}
	for _, ent := range ents {
		if strings.Contains(ent.Name(), ".tmp-") {
			st.leftovers = append(st.leftovers, ent.Name())
		}
	}
	return st, nil
}

// Load reads the full replayable history of an audit-log directory
// without taking the writer lock or modifying anything: the checkpoint's
// expansion, then every sealed segment, then the valid prefix of the
// active tail. The result feeds crowd.NewReplay / ReplayThenLive
// directly, so a crashed daemon resumes at zero re-bought microtasks
// for everything that reached disk.
func Load(dir string) ([]crowd.Record, error) {
	if _, err := os.Stat(dir); err != nil {
		return nil, fmt.Errorf("auditlog: %w", err)
	}
	st, err := recoverDir(dir)
	if err != nil {
		return nil, err
	}
	return st.records(), nil
}
