package auditlog

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"crowdtopk/internal/crowd"
)

// crashScript drives a log through every io-generating path — appends,
// rotations, an automatic fold, an explicit checkpoint, a clean close —
// under a deterministic schedule: Sync is off and every Append is
// followed by a Flush, so the committer performs exactly one write (and
// one sync) per batch and the io-step sequence is a pure function of the
// input. Returns the records it attempted to append.
func crashScript(dir string, h *crashHooks) ([]crowd.Record, error) {
	recs := mkRecords(30)
	// SyncInterval an hour out: the lazy committer's housekeeping ticker
	// must never inject an io step into the deterministic schedule.
	l, err := Open(dir, Options{SegmentMaxRecords: 4, CompactEvery: 2, Sync: SyncOff, SyncInterval: time.Hour, hooks: h})
	if err != nil {
		return recs, err
	}
	step := func(i, n int) {
		end := i + n
		if end > len(recs) {
			end = len(recs)
		}
		l.Append(recs[i:end])
		_ = l.Flush()
	}
	for i := 0; i < 21; i += 3 {
		step(i, 3)
	}
	_ = l.Checkpoint()
	for i := 21; i < len(recs); i += 3 {
		step(i, 3)
	}
	return recs, l.Close()
}

// isPairPrefix asserts got's per-pair value streams are each a prefix of
// want's — the exact shape a crash can leave: whole per-pair histories
// up to the last byte that reached the disk, never a reordering and
// never a value from the future.
func isPairPrefix(t *testing.T, want, got []crowd.Record) {
	t.Helper()
	w, g := perPair(want), perPair(got)
	for k, gs := range g {
		ws := w[k]
		if len(gs) > len(ws) {
			t.Fatalf("pair %v: recovered %d values, only %d ever appended", k, len(gs), len(ws))
		}
		for i := range gs {
			if gs[i] != ws[i] {
				t.Fatalf("pair %v value %d: recovered %v, appended %v", k, i, gs[i], ws[i])
			}
		}
	}
}

// TestCrashAtEveryIOStep is the recovery table test: learn the io-step
// universe of a fixed script, then for every step (and for a torn
// partial write at that step) kill the writer there and require the next
// Open to recover a verifiable, appendable directory whose contents are
// per-pair prefixes of what was appended.
func TestCrashAtEveryIOStep(t *testing.T) {
	base := t.TempDir()
	probe := &crashHooks{}
	recs, err := crashScript(filepath.Join(base, "baseline"), probe)
	if err != nil {
		t.Fatalf("baseline run failed: %v", err)
	}
	steps := probe.Steps()
	if steps < 40 {
		t.Fatalf("baseline script too small to be interesting: %d io steps", steps)
	}
	for kill := int64(1); kill <= steps; kill++ {
		for _, partial := range []int{0, 7} {
			kill, partial := kill, partial
			t.Run(fmt.Sprintf("kill%03d_partial%d", kill, partial), func(t *testing.T) {
				dir := filepath.Join(base, fmt.Sprintf("k%d_p%d", kill, partial))
				h := &crashHooks{KillAt: kill, Partial: partial}
				_, _ = crashScript(dir, h)
				if !h.Died() {
					t.Fatalf("schedule (%d,%d) never fired", kill, partial)
				}

				// The dead directory must still audit clean: crash debris is
				// reported in notes, never misread as tampering.
				rep, err := Verify(dir)
				if err != nil {
					t.Fatalf("verify io error: %v", err)
				}
				if !rep.OK {
					t.Fatalf("crash at %s step %d reads as tamper: firstBad=%s elements=%+v",
						h.DiedOp.Load(), kill, rep.FirstBad, rep.Elements)
				}
				// …and a fresh Open must recover it without hooks.
				l, err := Open(dir, Options{SegmentMaxRecords: 4, CompactEvery: 2, Sync: SyncOff})
				if err != nil {
					t.Fatalf("reopen after crash at %s step %d: %v (verify: ok=%v firstBad=%s)",
						h.DiedOp.Load(), kill, err, rep.OK, rep.FirstBad)
				}
				recovered := l.Total()
				got, lerr := Load(dir)
				if lerr != nil {
					t.Fatalf("load under reopened log: %v", lerr)
				}
				isPairPrefix(t, recs, got)
				if int64(len(got)) != recovered {
					t.Fatalf("Total says %d records, Load returned %d", recovered, len(got))
				}

				// The survivor must accept new work and close cleanly.
				extra := []crowd.Record{{I: 90, J: 91, Value: 0.25}, {I: 90, J: 91, Value: -0.5}}
				l.Append(extra)
				if err := l.Flush(); err != nil {
					t.Fatalf("append after recovery: %v", err)
				}
				if err := l.Close(); err != nil {
					t.Fatalf("close after recovery: %v", err)
				}
				final, err := Load(dir)
				if err != nil {
					t.Fatal(err)
				}
				if int64(len(final)) != recovered+2 {
					t.Fatalf("after recovery+append: %d records, want %d", len(final), recovered+2)
				}
				rep2, err := Verify(dir)
				if err != nil {
					t.Fatal(err)
				}
				if !rep2.OK {
					t.Fatalf("recovered directory fails verify at %s", rep2.FirstBad)
				}
			})
		}
	}
}

// TestTruncateActiveAtEveryOffset models a disk that persisted only a
// byte prefix of the active segment (power cut under Sync off): for
// every truncation point, Open must recover the longest whole-record
// prefix without error.
func TestTruncateActiveAtEveryOffset(t *testing.T) {
	src := t.TempDir()
	l, err := Open(src, Options{Sync: SyncOff, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	recs := mkRecords(12)
	appendAll(t, l, recs)
	l.abandon() // die with the segment unsealed — the interesting state

	seqs, err := listSegments(src)
	if err != nil || len(seqs) != 1 {
		t.Fatalf("want exactly one active segment, got %v (err %v)", seqs, err)
	}
	active := segmentFile(seqs[0])
	full, err := os.ReadFile(filepath.Join(src, active))
	if err != nil {
		t.Fatal(err)
	}

	for off := 0; off <= len(full); off++ {
		dir := copyDir(t, src)
		if err := os.Truncate(filepath.Join(dir, active), int64(off)); err != nil {
			t.Fatalf("off %d: %v", off, err)
		}
		got, err := Load(dir)
		if err != nil {
			t.Fatalf("off %d: load: %v", off, err)
		}
		isPairPrefix(t, recs, got)
		l2, err := Open(dir, Options{Sync: SyncOff})
		if err != nil {
			t.Fatalf("off %d: open: %v", off, err)
		}
		if l2.Total() != int64(len(got)) {
			t.Fatalf("off %d: open sees %d records, load saw %d", off, l2.Total(), len(got))
		}
		if err := l2.Close(); err != nil {
			t.Fatalf("off %d: close: %v", off, err)
		}
	}
}
