package auditlog

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"crowdtopk/internal/crowd"
	"crowdtopk/internal/lockfile"
)

// mkRecords builds a deterministic record stream over a handful of pairs
// (and one graded item), exercising interleavings the checkpoint fold
// must preserve per pair.
func mkRecords(n int) []crowd.Record {
	pairs := [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 5}}
	recs := make([]crowd.Record, 0, n)
	for t := 0; t < n; t++ {
		if t%7 == 6 {
			recs = append(recs, crowd.Record{Round: int64(t / 5), I: t % 3, J: -1, Value: float64(t%11) / 2})
			continue
		}
		p := pairs[t%len(pairs)]
		v := float64(t%19)/9.5 - 1 // in [-1, 1]
		recs = append(recs, crowd.Record{Round: int64(t / 5), I: p[0], J: p[1], Value: v})
	}
	return recs
}

// appendAll streams recs into l in small batches, flushing at the end.
func appendAll(t testing.TB, l *Log, recs []crowd.Record) {
	t.Helper()
	for i := 0; i < len(recs); i += 3 {
		end := i + 3
		if end > len(recs) {
			end = len(recs)
		}
		l.Append(recs[i:end])
	}
	if err := l.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
}

// perPair collects each pair's (and graded item's) value sequence in
// stream order — the only structure replay depends on.
func perPair(recs []crowd.Record) map[[2]int][]float64 {
	m := make(map[[2]int][]float64)
	for _, r := range recs {
		k := sinkKey(r)
		m[k] = append(m[k], r.Value)
	}
	return m
}

func samePairStreams(t *testing.T, want, got []crowd.Record) {
	t.Helper()
	w, g := perPair(want), perPair(got)
	if len(w) != len(g) {
		t.Fatalf("pair count mismatch: want %d, got %d", len(w), len(g))
	}
	for k, ws := range w {
		gs := g[k]
		if len(ws) != len(gs) {
			t.Fatalf("pair %v: want %d values, got %d", k, len(ws), len(gs))
		}
		for i := range ws {
			if ws[i] != gs[i] {
				t.Fatalf("pair %v value %d: want %v, got %v", k, i, ws[i], gs[i])
			}
		}
	}
}

func TestRoundTripExactOrder(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncOff, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	recs := mkRecords(100)
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Without compaction the exact global order survives, not just the
	// per-pair streams.
	if len(got) != len(recs) {
		t.Fatalf("loaded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestRotationSealsAndChains(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentMaxRecords: 8, Sync: SyncOff, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	recs := mkRecords(50)
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) < 5 {
		t.Fatalf("expected several sealed segments, found %d", len(seqs))
	}
	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("verify failed: first bad %s: %+v", rep.FirstBad, rep.Elements)
	}
	if rep.Records != int64(len(recs)) {
		t.Fatalf("verify covered %d records, want %d", rep.Records, len(recs))
	}
}

func TestCheckpointFoldEquivalence(t *testing.T) {
	// The same stream through a folding log and a non-folding log must
	// load back with identical per-pair value sequences — the checkpoint
	// loses nothing replay can observe.
	recs := mkRecords(120)
	folded, plain := t.TempDir(), t.TempDir()

	lf, err := Open(folded, Options{SegmentMaxRecords: 8, CompactEvery: 2, Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, lf, recs)
	if err := lf.Close(); err != nil {
		t.Fatal(err)
	}
	lp, err := Open(plain, Options{SegmentMaxRecords: 8, CompactEvery: -1, Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, lp, recs)
	if err := lp.Close(); err != nil {
		t.Fatal(err)
	}

	ckpts, err := listCheckpoints(folded)
	if err != nil || len(ckpts) == 0 {
		t.Fatalf("folding log wrote no checkpoint (err %v)", err)
	}
	gotF, err := Load(folded)
	if err != nil {
		t.Fatal(err)
	}
	gotP, err := Load(plain)
	if err != nil {
		t.Fatal(err)
	}
	samePairStreams(t, recs, gotF)
	samePairStreams(t, recs, gotP)
	for _, dir := range []string{folded, plain} {
		rep, err := Verify(dir)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK {
			t.Fatalf("%s: verify failed at %s", dir, rep.FirstBad)
		}
	}
}

func TestReopenContinuesChain(t *testing.T) {
	dir := t.TempDir()
	recs := mkRecords(90)
	// Three sessions, each appending a third, mixed fold settings.
	for s := 0; s < 3; s++ {
		l, err := Open(dir, Options{SegmentMaxRecords: 7, CompactEvery: 3, Sync: SyncOff})
		if err != nil {
			t.Fatalf("session %d: %v", s, err)
		}
		appendAll(t, l, recs[s*30:(s+1)*30])
		if l.Total() != int64((s+1)*30) {
			t.Fatalf("session %d: total %d, want %d", s, l.Total(), (s+1)*30)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("session %d close: %v", s, err)
		}
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("loaded %d records, want %d", len(got), len(recs))
	}
	samePairStreams(t, recs, got)
	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("verify failed at %s", rep.FirstBad)
	}
}

func TestExplicitCheckpointShrinksResume(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentMaxRecords: 8, CompactEvery: -1, Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	recs := mkRecords(64)
	appendAll(t, l, recs)
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Everything sealed is folded; only the fresh active segment remains.
	if len(segs) != 1 {
		t.Fatalf("after checkpoint: %d segment files, want 1 (fresh active)", len(segs))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	samePairStreams(t, recs, got)
}

func TestConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentMaxRecords: 64, CompactEvery: 4, QueueBatches: 4})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, per = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v := float64((g*per+i)%19)/9.5 - 1
				l.Append([]crowd.Record{{I: g, J: g + 1 + i%3, Value: v}})
			}
		}(g)
	}
	wg.Wait()
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := l.Appended(); got != goroutines*per {
		t.Fatalf("appended %d, want %d", got, goroutines*per)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != goroutines*per {
		t.Fatalf("loaded %d records, want %d", len(got), goroutines*per)
	}
	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("verify failed at %s", rep.FirstBad)
	}
}

func TestDirectoryLock(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrLogLocked) {
		t.Fatalf("second open: got %v, want ErrLogLocked", err)
	}
	// Load must not need the lock.
	if _, err := Load(dir); err != nil {
		t.Fatalf("load under lock: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	l2.Close()
}

func TestLockReleasedOnAbandon(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Append(mkRecords(5))
	l.abandon()
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after abandon: %v", err)
	}
	l2.Close()
}

func TestRejectsInvalidRecord(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]crowd.Record{{I: 3, J: 3, Value: 0.5}}) // self-pair
	if err := l.Flush(); err == nil {
		t.Fatal("flush accepted an invalid record")
	}
	if l.Err() == nil {
		t.Fatal("error not latched")
	}
	l.Close()
}

func TestLockfilePIDHint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.lock")
	lk, err := lockfile.Acquire(path)
	if err != nil {
		t.Fatal(err)
	}
	_, err = lockfile.Acquire(path)
	if !errors.Is(err, lockfile.ErrLocked) {
		t.Fatalf("got %v, want ErrLocked", err)
	}
	want := fmt.Sprintf("pid %d", os.Getpid())
	if msg := err.Error(); !containsStr(msg, want) {
		t.Fatalf("error %q does not carry the holder hint %q", msg, want)
	}
	if err := lk.Release(); err != nil {
		t.Fatal(err)
	}
	lk2, err := lockfile.Acquire(path)
	if err != nil {
		t.Fatalf("reacquire after release: %v", err)
	}
	lk2.Release()
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
