package auditlog

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"crowdtopk/internal/crowd"
)

// A checkpoint folds every sealed segment up to a horizon into one
// snapshot with a single entry per pair (and per graded item), each
// holding that pair's answer values in purchase order. Replay only ever
// consumes answers per pair in order — the cross-pair interleaving and
// the round stamps of history are irrelevant to resume — so the fold
// loses nothing a resumed query can observe, while shrinking resume I/O
// from O(records ever purchased) to O(pairs ever touched).
//
// The checkpoint commits to the chain root of the last folded segment,
// keeping the Merkle chain anchored across compaction: segments after
// the horizon chain from checkpoint.Chain, and the checkpoint file's own
// SHA-256 is pinned in the manifest.
type checkpointDoc struct {
	Kind string `json:"kind"` // "checkpoint"
	// UpTo is the highest folded segment sequence number.
	UpTo int `json:"upto"`
	// Chain is the chain root after segment UpTo (hex).
	Chain string `json:"chain"`
	// Records is the total number of microtask records folded in.
	Records int64 `json:"records"`
	// Pairs holds one entry per compared pair, sorted by (i, j), values
	// in purchase order, canonical i < j orientation.
	Pairs []checkpointPair `json:"pairs"`
	// Grades holds one entry per graded item, sorted by item.
	Grades []checkpointGrade `json:"grades,omitempty"`
}

type checkpointPair struct {
	I      int       `json:"i"`
	J      int       `json:"j"`
	Values []float64 `json:"values"`
}

type checkpointGrade struct {
	I      int       `json:"i"`
	Values []float64 `json:"values"`
}

// foldRecords merges records into the checkpoint's per-pair entries,
// preserving per-pair purchase order.
type folder struct {
	pairs  map[[2]int][]float64
	grades map[int][]float64
	n      int64
}

func newFolder() *folder {
	return &folder{pairs: make(map[[2]int][]float64), grades: make(map[int][]float64)}
}

func (f *folder) addDoc(doc *checkpointDoc) {
	for _, p := range doc.Pairs {
		f.pairs[[2]int{p.I, p.J}] = append(f.pairs[[2]int{p.I, p.J}], p.Values...)
		f.n += int64(len(p.Values))
	}
	for _, g := range doc.Grades {
		f.grades[g.I] = append(f.grades[g.I], g.Values...)
		f.n += int64(len(g.Values))
	}
}

func (f *folder) addRecords(recs []crowd.Record) {
	for _, r := range recs {
		if r.IsGraded() {
			f.grades[r.I] = append(f.grades[r.I], r.Value)
		} else {
			f.pairs[[2]int{r.I, r.J}] = append(f.pairs[[2]int{r.I, r.J}], r.Value)
		}
		f.n++
	}
}

// doc freezes the fold into a deterministic document: pairs sorted by
// (i, j), grades by item, so the same history always serializes to the
// same bytes.
func (f *folder) doc(upTo int, chain string) *checkpointDoc {
	doc := &checkpointDoc{Kind: "checkpoint", UpTo: upTo, Chain: chain, Records: f.n}
	for k, vs := range f.pairs {
		doc.Pairs = append(doc.Pairs, checkpointPair{I: k[0], J: k[1], Values: vs})
	}
	sort.Slice(doc.Pairs, func(a, b int) bool {
		if doc.Pairs[a].I != doc.Pairs[b].I {
			return doc.Pairs[a].I < doc.Pairs[b].I
		}
		return doc.Pairs[a].J < doc.Pairs[b].J
	})
	for i, vs := range f.grades {
		doc.Grades = append(doc.Grades, checkpointGrade{I: i, Values: vs})
	}
	sort.Slice(doc.Grades, func(a, b int) bool { return doc.Grades[a].I < doc.Grades[b].I })
	return doc
}

// expand turns a checkpoint back into replayable records: per-pair values
// in order, pairs in sorted order, grades after. Rounds are folded away
// (replay never reads them; the latency clock is not money).
func (doc *checkpointDoc) expand() []crowd.Record {
	recs := make([]crowd.Record, 0, doc.Records)
	for _, p := range doc.Pairs {
		for _, v := range p.Values {
			recs = append(recs, crowd.Record{I: p.I, J: p.J, Value: v})
		}
	}
	for _, g := range doc.Grades {
		for _, v := range g.Values {
			recs = append(recs, crowd.Record{I: g.I, J: -1, Value: v})
		}
	}
	return recs
}

// readCheckpoint loads and validates a checkpoint file, returning the doc
// and the SHA-256 of its exact bytes.
func readCheckpoint(path string) (*checkpointDoc, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", fmt.Errorf("auditlog: read %s: %w", path, err)
	}
	var doc checkpointDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, "", &corruptError{file: filepath.Base(path), reason: err.Error()}
	}
	if doc.Kind != "checkpoint" || doc.UpTo < 1 {
		return nil, "", &corruptError{file: filepath.Base(path), reason: "not a checkpoint document"}
	}
	var n int64
	for _, p := range doc.Pairs {
		if p.I < 0 || p.J <= p.I {
			return nil, "", &corruptError{file: filepath.Base(path), reason: fmt.Sprintf("invalid pair (%d,%d)", p.I, p.J)}
		}
		n += int64(len(p.Values))
	}
	for _, g := range doc.Grades {
		if g.I < 0 {
			return nil, "", &corruptError{file: filepath.Base(path), reason: fmt.Sprintf("invalid graded item %d", g.I)}
		}
		n += int64(len(g.Values))
	}
	if n != doc.Records {
		return nil, "", &corruptError{file: filepath.Base(path), reason: fmt.Sprintf("record count %d does not match content %d", doc.Records, n)}
	}
	sum := sha256.Sum256(data)
	return &doc, hex.EncodeToString(sum[:]), nil
}

// manifest is the directory's table of contents and tamper anchor,
// atomically rewritten at every seal and fold. Each sealed segment's
// Merkle root and chain value are pinned here at seal time, so Verify
// has a reference the segment files themselves cannot quietly outrun.
type manifest struct {
	Kind       string              `json:"kind"` // "manifest"
	Checkpoint *manifestCheckpoint `json:"checkpoint,omitempty"`
	Segments   []manifestSegment   `json:"segments"`
	// ActiveSeq is the unsealed segment currently being appended to.
	ActiveSeq int `json:"active_seq"`
	// Records is the total committed to checkpoint + sealed segments
	// (the active tail is not counted until sealed).
	Records int64 `json:"records"`
}

type manifestCheckpoint struct {
	File    string `json:"file"`
	UpTo    int    `json:"upto"`
	Records int64  `json:"records"`
	Chain   string `json:"chain"`
	SHA256  string `json:"sha256"`
}

type manifestSegment struct {
	File  string `json:"file"`
	Seq   int    `json:"seq"`
	Base  int64  `json:"base"`
	Count int    `json:"count"`
	Root  string `json:"root"`
	Chain string `json:"chain"`
}

// readManifest loads the manifest, or returns nil when absent (a fresh
// or pre-manifest directory).
func readManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("auditlog: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, &corruptError{file: manifestName, reason: err.Error()}
	}
	if m.Kind != "manifest" {
		return nil, &corruptError{file: manifestName, reason: "not a manifest document"}
	}
	return &m, nil
}

// writeFileAtomic writes data to path via a temp file, fsync and rename,
// so readers never observe a partial file and a crash leaves either the
// old content or the new — never a blend.
func writeFileAtomic(path string, data []byte, hooks *crashHooks) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if err := hooks.write(tmp, data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := hooks.sync(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := hooks.rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
