package auditlog

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzSegmentReload throws arbitrary bytes at the segment parser — the
// code every boot trusts with whatever a crash left on disk. The parser
// must never panic, must keep validLen inside the input, and everything
// it accepts must re-parse identically after truncating to validLen
// (recovery's idempotence: recovering a recovered file is a no-op).
func FuzzSegmentReload(f *testing.F) {
	dir := f.TempDir()
	l, err := Open(dir, Options{SegmentMaxRecords: 4, CompactEvery: -1, Sync: SyncOff})
	if err != nil {
		f.Fatal(err)
	}
	appendAll(f, l, mkRecords(10))
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	seqs, _ := listSegments(dir)
	for _, seq := range seqs {
		data, err := os.ReadFile(filepath.Join(dir, segmentFile(seq)))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)                    // a whole sealed segment
		f.Add(data[:len(data)/2])      // torn mid-file
		f.Add(data[:len(data)-1])      // torn final newline
	}
	f.Add([]byte{})
	f.Add([]byte("{\"kind\":\"header\",\"seq\":1,\"prev\":\"\",\"base\":0}\n"))
	f.Add([]byte("not json at all\nstill not\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		ps, err := parseSegment("seg-000001.log", data)
		if err != nil {
			return // refused outright — fine, just must not panic
		}
		if ps.validLen < 0 || ps.validLen > int64(len(data)) {
			t.Fatalf("validLen %d outside input of %d bytes", ps.validLen, len(data))
		}
		if len(ps.leaves) > 0 && len(ps.leaves) != len(ps.records)+1 {
			t.Fatalf("%d leaves for %d records", len(ps.leaves), len(ps.records))
		}
		// Idempotence: the valid prefix must re-parse to the same shape.
		ps2, err := parseSegment("seg-000001.log", data[:ps.validLen])
		if err != nil {
			t.Fatalf("valid prefix refused on re-parse: %v", err)
		}
		if ps2.torn {
			t.Fatal("valid prefix re-parsed as torn")
		}
		if len(ps2.records) != len(ps.records) {
			t.Fatalf("re-parse found %d records, first parse %d", len(ps2.records), len(ps.records))
		}
		for i := range ps.records {
			if ps2.records[i] != ps.records[i] {
				t.Fatalf("record %d changed across re-parse", i)
			}
		}
	})
}
