package auditlog

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
)

// ElementReport is the verification verdict for one file in the
// directory: the checkpoint, a sealed segment, or the active tail.
type ElementReport struct {
	File    string `json:"file"`
	Seq     int    `json:"seq,omitempty"`
	Sealed  bool   `json:"sealed"`
	Records int    `json:"records"`
	OK      bool   `json:"ok"`
	Detail  string `json:"detail,omitempty"`
}

// VerifyReport is the outcome of auditing an audit-log directory
// against its manifest. When tampering is found, FirstBad names the
// earliest damaged file in chain order — the Merkle chain localizes
// damage to a segment, it does not merely detect that some byte
// somewhere changed.
type VerifyReport struct {
	OK       bool            `json:"ok"`
	FirstBad string          `json:"first_bad,omitempty"`
	Records  int64           `json:"records"`
	Elements []ElementReport `json:"elements"`
	Notes    []string        `json:"notes,omitempty"`
}

func (r *VerifyReport) flag(er ElementReport) {
	r.Elements = append(r.Elements, er)
	if er.OK {
		r.Records += int64(er.Records)
		return
	}
	r.OK = false
	if r.FirstBad == "" {
		r.FirstBad = er.File
	}
}

// Verify audits dir against its manifest: the checkpoint's SHA-256, each
// pinned segment's Merkle root and chain linkage, and the active tail's
// chain anchor. It never modifies the directory and does not take the
// writer lock, so it can audit a directory a daemon is writing — though
// a concurrent writer can make the active tail report a torn note.
//
// The returned error is reserved for io-level failures (unreadable
// directory); integrity problems are reported in the VerifyReport.
func Verify(dir string) (*VerifyReport, error) {
	rep := &VerifyReport{OK: true}
	if _, err := os.Stat(dir); err != nil {
		return nil, fmt.Errorf("auditlog: %w", err)
	}
	man, err := readManifest(dir)
	if err != nil {
		rep.flag(ElementReport{File: manifestName, OK: false, Detail: err.Error()})
		return rep, nil
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	ckpts, err := listCheckpoints(dir)
	if err != nil {
		return nil, err
	}
	if man == nil {
		if len(segs) == 0 && len(ckpts) == 0 {
			rep.Notes = append(rep.Notes, "empty directory: nothing to verify")
			return rep, nil
		}
		// The only manifest-less state a crash can produce: death during
		// the very first openSegment, before any record existed. The dir
		// then holds exactly one empty, unsealed genesis segment.
		if len(ckpts) == 0 && len(segs) == 1 && segs[0] == 1 {
			ps, perr := readSegment(filepath.Join(dir, segmentFile(1)))
			if perr == nil && ps.seal == nil && len(ps.records) == 0 &&
				(len(ps.leaves) == 0 || (ps.header.Prev == "" && ps.header.Base == 0)) {
				rep.Notes = append(rep.Notes, segmentFile(1)+": newborn genesis segment with no manifest yet (crash-normal; recovery adopts or deletes it)")
				return rep, nil
			}
		}
		rep.flag(ElementReport{File: manifestName, OK: false, Detail: "manifest missing but log files present"})
		return rep, nil
	}

	chain := genesisChain
	upTo := 0
	covered := map[int]bool{}

	if man.Checkpoint != nil {
		er := ElementReport{File: man.Checkpoint.File, Seq: man.Checkpoint.UpTo, Sealed: true, OK: true}
		upTo = man.Checkpoint.UpTo
		data, rerr := os.ReadFile(filepath.Join(dir, man.Checkpoint.File))
		switch {
		case rerr != nil:
			er.OK = false
			er.Detail = rerr.Error()
		default:
			sum := sha256.Sum256(data)
			if hex.EncodeToString(sum[:]) != man.Checkpoint.SHA256 {
				er.OK = false
				er.Detail = "content does not match the manifest's SHA-256"
				break
			}
			doc, _, perr := readCheckpoint(filepath.Join(dir, man.Checkpoint.File))
			if perr != nil {
				er.OK = false
				er.Detail = perr.Error()
				break
			}
			if doc.UpTo != man.Checkpoint.UpTo || doc.Records != man.Checkpoint.Records {
				er.OK = false
				er.Detail = "horizon or record count disagrees with manifest"
				break
			}
			er.Records = int(doc.Records)
		}
		rep.flag(er)
		// Continue from the manifest's claimed chain either way, so later
		// segments are still individually attributable.
		if c, perr := parseChain(man.Checkpoint.Chain); perr == nil {
			chain = c
		}
	}

	for _, e := range man.Segments {
		covered[e.Seq] = true
		er := verifySealedSegment(dir, e, chain)
		rep.flag(er)
		if c, perr := parseChain(e.Chain); perr == nil {
			chain = c
		}
	}

	// The active tail: unsealed (normal), sealed-but-unpinned (crash
	// between seal and manifest write), or a bare header. When the
	// manifest names no active segment — a crash landed between sealing
	// one segment and registering its successor — the chain-consecutive
	// successor file, if present, is still a tail, not tamper.
	tailSeq := man.ActiveSeq
	required := tailSeq > 0 // the manifest promises this file exists
	if tailSeq == 0 {
		lastPinned := upTo
		if n := len(man.Segments); n > 0 {
			lastPinned = man.Segments[n-1].Seq
		}
		tailSeq = lastPinned + 1
	}
	if tailSeq > 0 && !covered[tailSeq] {
		name := segmentFile(tailSeq)
		_, serr := os.Stat(filepath.Join(dir, name))
		if serr == nil || required {
			covered[tailSeq] = true
			er := ElementReport{File: name, Seq: tailSeq, OK: true}
			ps, perr := readSegment(filepath.Join(dir, name))
			switch {
			case perr != nil:
				er.OK = false
				er.Detail = perr.Error()
			case len(ps.leaves) == 0:
				rep.Notes = append(rep.Notes, name+": headerless newborn segment (crash debris, recovery deletes it)")
				er.Detail = "headerless"
			case ps.header.Seq != tailSeq:
				er.OK = false
				er.Detail = fmt.Sprintf("header says seq %d", ps.header.Seq)
			case ps.header.Prev != hexChain(chain):
				er.OK = false
				er.Detail = "header does not chain from predecessor"
			default:
				er.Records = len(ps.records)
				if ps.seal != nil {
					er.Sealed = true
					root := merkleRoot(ps.leaves)
					next := chainRoot(chain, root)
					if ps.seal.Root != hex.EncodeToString(root[:]) || ps.seal.Chain != hexChain(next) || ps.seal.Count != len(ps.records) {
						er.OK = false
						er.Detail = "seal does not match segment content"
					} else {
						rep.Notes = append(rep.Notes, name+": sealed but not yet pinned in manifest (crash between seal and manifest write)")
					}
				} else if ps.torn {
					rep.Notes = append(rep.Notes, fmt.Sprintf("%s: torn tail after %d records (crash-normal; recovery truncates)", name, len(ps.records)))
				}
			}
			rep.flag(er)
		}
	}

	// Files the manifest does not vouch for.
	for _, seq := range segs {
		if covered[seq] {
			continue
		}
		if seq <= upTo {
			rep.Notes = append(rep.Notes, segmentFile(seq)+": folded leftover (crash debris, recovery deletes it)")
			continue
		}
		rep.flag(ElementReport{File: segmentFile(seq), Seq: seq, OK: false, Detail: "segment not recorded in manifest"})
	}
	for _, seq := range ckpts {
		name := checkpointFile(seq)
		if man.Checkpoint != nil && man.Checkpoint.File == name {
			continue
		}
		rep.Notes = append(rep.Notes, name+": checkpoint not committed by manifest (crash debris, recovery deletes it)")
	}
	return rep, nil
}

// verifySealedSegment audits one manifest-pinned segment: existence,
// parse, seal present, recomputed Merkle root matching both the seal and
// the manifest, and chain linkage from the predecessor.
func verifySealedSegment(dir string, e manifestSegment, chain [32]byte) ElementReport {
	er := ElementReport{File: e.File, Seq: e.Seq, Sealed: true, OK: true}
	ps, err := readSegment(filepath.Join(dir, e.File))
	if err != nil {
		er.OK = false
		er.Detail = err.Error()
		return er
	}
	if ps.seal == nil {
		er.OK = false
		if ps.torn {
			er.Detail = "sealed segment is truncated"
		} else {
			er.Detail = "manifest records a seal this segment lacks"
		}
		return er
	}
	if ps.header.Seq != e.Seq || ps.header.Base != e.Base {
		er.OK = false
		er.Detail = "header disagrees with manifest"
		return er
	}
	if ps.header.Prev != hexChain(chain) {
		er.OK = false
		er.Detail = "header does not chain from predecessor"
		return er
	}
	root := merkleRoot(ps.leaves)
	next := chainRoot(chain, root)
	switch {
	case hex.EncodeToString(root[:]) != e.Root || ps.seal.Root != e.Root:
		er.OK = false
		er.Detail = "records do not match the pinned Merkle root"
	case ps.seal.Count != len(ps.records) || e.Count != len(ps.records):
		er.OK = false
		er.Detail = fmt.Sprintf("record count %d disagrees with seal/manifest", len(ps.records))
	case ps.seal.Chain != e.Chain || hexChain(next) != e.Chain:
		er.OK = false
		er.Detail = "chain value does not extend the predecessor"
	default:
		er.Records = len(ps.records)
	}
	return er
}
