package compare

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"crowdtopk/internal/crowd"
	"crowdtopk/internal/jstore"
)

// StorePolicy governs when a stored judgment may be trusted as-is and
// when it has gone stale and must be re-verified against fresh evidence.
type StorePolicy struct {
	// TTL is the record age beyond which preferences are presumed to have
	// drifted. A record younger than TTL is served fresh: its verdict is
	// memoized and its bag replayed at zero TMC. Past TTL the record's
	// evidence decays exponentially (half-life TTL): the decayed posterior
	// seeds the pair as a prior, and the comparison still buys a reduced
	// verification batch before concluding — the evidence-decay shape of
	// Bayesian dynamic ranking. TTL <= 0 means records never go stale.
	TTL time.Duration
	// Confidence is the per-comparison confidence level 1−α this fleet
	// concludes at. Records concluded at a lower level are not trusted as
	// verdicts — they seed the pair as a prior to verify, like stale ones.
	Confidence float64
}

// stale reports whether a record must be re-verified, and the evidence
// decay factor in (0, 1] to apply to its posterior.
func (p StorePolicy) stale(rec jstore.Record, now time.Time) (bool, float64) {
	if rec.Confidence+1e-12 < p.Confidence {
		return true, 1 // adequate evidence, inadequate confidence: verify
	}
	if p.TTL <= 0 {
		return false, 1
	}
	age := now.Sub(time.Unix(0, rec.UnixNano))
	if age <= p.TTL {
		return false, 1
	}
	over := float64(age-p.TTL) / float64(p.TTL)
	return true, math.Exp2(-over)
}

// storeDecision is the latched outcome of one pair's store consultation.
type storeDecision uint8

const (
	storeMiss storeDecision = iota + 1
	storeHit
	storeStale
)

type seenEntry struct {
	d      storeDecision
	o      Outcome // toward lo, valid when d == storeHit
	pol    string  // committing policy of a hit record ("" reads as "fixed")
	verify bool    // stale prior seeded, one reduced batch still owed
}

type seenStripe struct {
	mu sync.Mutex
	m  map[[2]int]seenEntry
}

// storeState is the judgment-store attachment shared by every runner
// forked or derived off one session: the store itself, the staleness
// policy, the per-pair consultation latch (so a pair is looked up and
// seeded at most once per session, however many queries touch it), and
// the session-wide reuse counters.
type storeState struct {
	store jstore.Store
	pol   StorePolicy
	now   func() time.Time

	seen [memoStripes]seenStripe

	hits    atomic.Int64 // comparisons answered from the store for free
	stale   atomic.Int64 // pairs served as a decayed prior to verify
	misses  atomic.Int64 // pairs consulted and not found (or unusable)
	commits atomic.Int64 // records committed back post-query
}

// StoreStats is a point-in-time view of the session's judgment-store
// traffic.
type StoreStats struct {
	// Hits counts comparisons answered from the store at zero TMC.
	Hits int64
	// Stale counts pairs whose record was served as a decayed prior and
	// re-verified with a reduced purchase.
	Stale int64
	// Misses counts pairs consulted but not usable from the store.
	Misses int64
	// Commits counts records committed back to the store.
	Commits int64
	// Size is the store's current record count.
	Size int
}

// SetJudgmentStore attaches a persistent judgment store to the runner
// (and, through Fork, to every query of its session): concluded verdicts
// are consulted before a pair's first batch is scheduled — a fresh hit
// seeds the memo table and the pair's bag at zero TMC, a stale hit seeds
// a decayed prior that is verified with a reduced batch — and every newly
// concluded pair is committed back by CommitConclusions post-query. Call
// before the runner is shared across goroutines.
func (r *Runner) SetJudgmentStore(s jstore.Store, pol StorePolicy) {
	if s == nil {
		r.js = nil
		return
	}
	r.js = &storeState{store: s, pol: pol, now: time.Now}
}

// JudgmentStore returns the attached store, nil when reuse is off.
func (r *Runner) JudgmentStore() jstore.Store {
	if r.js == nil {
		return nil
	}
	return r.js.store
}

// StoreStats returns the session's judgment-store traffic counters; the
// zero value when no store is attached.
func (r *Runner) StoreStats() StoreStats {
	js := r.js
	if js == nil {
		return StoreStats{}
	}
	return StoreStats{
		Hits:    js.hits.Load(),
		Stale:   js.stale.Load(),
		Misses:  js.misses.Load(),
		Commits: js.commits.Load(),
		Size:    js.store.Len(),
	}
}

// storeServe consults the judgment store for a canonical pair that
// missed the conclusion memo. On a fresh hit it memoizes the stored
// verdict (into THIS runner's memo — forks share it, derived sub-phase
// runners serve their private memo from the same latched consultation)
// and returns it; the pair's bag was seeded with the exact stored
// posterior, so every later mean/leaning read observes what a cold run
// would have produced. On a stale hit it seeds the decayed posterior as
// a prior, latches one verification purchase, and reports no conclusion.
// Each pair is looked up and seeded at most once per session.
func (r *Runner) storeServe(k [2]int) (Outcome, bool) {
	js := r.js
	st := &js.seen[stripeOf(k)]
	st.mu.Lock()
	ent, ok := st.m[k]
	if !ok {
		ent = r.consultLocked(js, k)
		if st.m == nil {
			st.m = make(map[[2]int]seenEntry)
		}
		st.m[k] = ent
	}
	st.mu.Unlock()
	if ent.d != storeHit {
		return Tie, false
	}
	if !r.trustsPolicy(ent.pol) {
		// The hit was latched by a consumer that trusted the committing
		// policy; this runner is pinned to a different one. The pair's bag
		// was already seeded with the record's full posterior, so declining
		// to serve the verdict makes the comparison re-run this policy's
		// stopping rule over that evidence — the per-reader mirror of the
		// consult-time cross-policy downgrade.
		return Tie, false
	}
	// Serve the latched verdict into this runner's memo: a fork shares
	// the memo that was already written, but a derived runner's private
	// memo (or the main memo after a derived-phase consultation) learns
	// it here, again at zero TMC.
	r.remember(k[0], k[1], ent.o)
	js.hits.Add(1)
	if ins := r.ins; ins != nil {
		ins.StoreHits.Inc()
	}
	if c := r.acct.explain; c != nil {
		c.StoreHit(r.Phase(), k[0], k[1])
	}
	return ent.o, true
}

// consultLocked performs the store lookup and bag seeding for a pair's
// first consultation. Callers hold the pair's seen-stripe lock, which
// serializes racing consultations of one pair.
func (r *Runner) consultLocked(js *storeState, k [2]int) seenEntry {
	rec, ok := js.store.Lookup(k[0], k[1])
	if !ok {
		js.misses.Add(1)
		if ins := r.ins; ins != nil {
			ins.StoreMisses.Inc()
		}
		return seenEntry{d: storeMiss}
	}
	stale, decay := js.pol.stale(rec, js.now())
	if !stale && !r.trustsPolicy(rec.Policy) {
		// Concluded under a different sampling policy than this runner's:
		// the verdict was reached under stopping semantics the consumer
		// did not choose (an adaptive policy's early surrender is not the
		// fixed schedule's exhausted tie, and vice versa). Downgrade the
		// fresh hit to a full-strength prior and re-verify at reduced
		// cost instead of trusting it outright.
		stale, decay = true, 1
	}
	post := crowd.PairPosterior{
		N: rec.N, Mean: rec.Mean, M2: rec.M2,
		BinN: rec.BinN, BinMean: rec.BinMean, BinM2: rec.BinM2,
	}
	if !stale {
		// Overwrite-seeding: a sub-phase may have bought a prefix of the
		// pair's (deterministic) sample stream already; the recorded bag
		// subsumes it. Only a live bag that outgrew the record wins.
		if !r.eng.SeedPair(k[0], k[1], post, true) {
			js.misses.Add(1)
			if ins := r.ins; ins != nil {
				ins.StoreMisses.Inc()
			}
			return seenEntry{d: storeMiss}
		}
		return seenEntry{d: storeHit, o: Outcome(rec.Outcome), pol: rec.Policy}
	}
	// Stale (or under-confident): decay the evidence and seed it as a
	// prior. The comparison proceeds normally from the seeded bag — its
	// cold start is already covered (fully or partly), so it re-verifies
	// with a reduced purchase instead of re-buying the full workload.
	dn := int(float64(post.N) * decay)
	if dn < 2 {
		js.misses.Add(1)
		if ins := r.ins; ins != nil {
			ins.StoreMisses.Inc()
		}
		return seenEntry{d: storeMiss}
	}
	if dn < post.N {
		if post.N > 1 {
			post.M2 *= float64(dn-1) / float64(post.N-1)
		}
		post.N = dn
		bn := int(float64(post.BinN) * decay)
		if bn > dn {
			bn = dn
		}
		post.BinN = bn
		// ±1 samples with mean m have exactly M2 = n(1−m²).
		post.BinM2 = float64(bn) * (1 - post.BinMean*post.BinMean)
	}
	// A decayed prior is only a prior: it never overwrites live samples.
	if !r.eng.SeedPair(k[0], k[1], post, false) {
		js.misses.Add(1)
		if ins := r.ins; ins != nil {
			ins.StoreMisses.Inc()
		}
		return seenEntry{d: storeMiss}
	}
	js.stale.Add(1)
	if ins := r.ins; ins != nil {
		ins.StoreStale.Inc()
	}
	return seenEntry{d: storeStale, verify: true}
}

// trustsPolicy reports whether a stored record's committing policy is
// trustworthy to this runner as a verdict. Records from before the
// policy layer carry no name and are read as "fixed", the only schedule
// that existed when they were committed.
func (r *Runner) trustsPolicy(committed string) bool {
	if committed == "" {
		committed = "fixed"
	}
	return committed == r.policy.Name()
}

// takeVerify consumes the pair's pending stale-verification obligation:
// the first comparison step to purchase for the pair clears it. It
// reports whether a verification purchase is still owed for a pair whose
// seeded prior already covers the cold-start workload.
func (r *Runner) takeVerify(i, j int) bool {
	js := r.js
	if js == nil {
		return false
	}
	k, _ := canonical(i, j)
	st := &js.seen[stripeOf(k)]
	st.mu.Lock()
	ent, ok := st.m[k]
	v := ok && ent.verify
	if v {
		ent.verify = false
		st.m[k] = ent
	}
	st.mu.Unlock()
	return v
}

// pendingConclusion is one verdict this query concluded, queued for the
// post-query commit. The outcome is carried explicitly because derived
// sub-phase runners conclude into private memos the committing fork
// cannot read.
type pendingConclusion struct {
	k [2]int
	o Outcome // toward lo
}

// noteConclusion queues a freshly concluded pair for the post-query
// store commit. Budget-exhausted ties from derived sub-phase runners are
// skipped: they were concluded under a reduced per-pair budget and are
// not session-level verdicts (the same reason Derive gets a private
// memo). Decisive verdicts commit from any runner — the stopping rule's
// checkpoints (I, I+Step, ...) are shared, so a derived decisive
// conclusion is exactly what the main process would have concluded.
func (r *Runner) noteConclusion(i, j int, o Outcome, exhausted bool) {
	if r.js == nil {
		return
	}
	if exhausted && r.derived {
		return
	}
	k, flip := canonical(i, j)
	if flip {
		o = o.Flip()
	}
	a := r.acct
	a.pendMu.Lock()
	a.pending = append(a.pending, pendingConclusion{k: k, o: o})
	a.pendMu.Unlock()
}

// CommitConclusions drains the query's concluded pairs into the judgment
// store: for each, the engine's exact posterior is exported and committed
// (newest wins), so the next query — in this session, a concurrent one,
// or a future process sharing a FileStore — replays the verdict instead
// of re-buying it. Call once the query has quiesced (post-run); it
// returns the number of records committed. No-op without a store.
func (r *Runner) CommitConclusions() int {
	js := r.js
	if js == nil {
		return 0
	}
	a := r.acct
	a.pendMu.Lock()
	pend := a.pending
	a.pending = nil
	a.pendMu.Unlock()
	if len(pend) == 0 {
		if ins := r.ins; ins != nil {
			ins.StoreSize.Set(int64(js.store.Len()))
		}
		return 0
	}
	done := make(map[[2]int]bool, len(pend))
	n := 0
	for _, pc := range pend {
		if done[pc.k] {
			continue
		}
		done[pc.k] = true
		post, ok := r.eng.Posterior(pc.k[0], pc.k[1])
		if !ok {
			continue
		}
		// A protocol-exhausted tie spent the full per-pair budget B; a tie
		// at less evidence was truncated from outside the protocol — a
		// failure-latched engine declining purchases, a spending cap, a
		// canceled query concluding best-effort. Truncated ties are not
		// verdicts the crowd reached and must not be served to anyone.
		// (With B <= 0, unlimited, every tie is a truncation.)
		if pc.o == Tie && (r.params.B <= 0 || post.N < r.params.B) {
			continue
		}
		rec := jstore.Record{
			Lo: pc.k[0], Hi: pc.k[1],
			Outcome:   int(pc.o),
			Exhausted: pc.o == Tie,
			N:         post.N, Mean: post.Mean, M2: post.M2,
			BinN: post.BinN, BinMean: post.BinMean, BinM2: post.BinM2,
			Confidence: js.pol.Confidence,
			Policy:     r.policy.Name(),
		}
		js.store.Commit(rec)
		js.commits.Add(1)
		if ins := r.ins; ins != nil {
			ins.StoreCommits.Inc()
		}
		n++
	}
	if ins := r.ins; ins != nil {
		ins.StoreSize.Set(int64(js.store.Len()))
	}
	return n
}
