package compare

import (
	"testing"

	"crowdtopk/internal/crowd"
)

// The stopping rules run after every batch; these benchmarks size one
// policy test and one full comparison process.

func BenchmarkStudentTest(b *testing.B) {
	p := NewStudent(0.02)
	v := crowd.BagView{N: 120, Mean: 0.05, SD: 0.3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Test(v)
	}
}

func BenchmarkSteinTest(b *testing.B) {
	p := NewStein(0.02)
	v := crowd.BagView{N: 120, Mean: 0.05, SD: 0.3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Test(v)
	}
}

func BenchmarkHoeffdingTest(b *testing.B) {
	p := NewHoeffding(0.02)
	v := crowd.BagView{BinN: 120, BinMean: 0.1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Test(v)
	}
}

func BenchmarkCompareEasyPair(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := NewRunner(pairEngine(0.5, 0.1, int64(i)), NewStudent(0.02), DefaultParams())
		r.Compare(0, 1)
	}
}

func BenchmarkCompareHardPair(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := NewRunner(pairEngine(0.02, 0.4, int64(i)), NewStudent(0.02), DefaultParams())
		r.Compare(0, 1)
	}
}

func BenchmarkCompareMemoized(b *testing.B) {
	r := NewRunner(pairEngine(0.3, 0.2, 1), NewStudent(0.02), DefaultParams())
	r.Compare(0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Compare(0, 1)
	}
}
