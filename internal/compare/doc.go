// Package compare implements the confidence-aware pairwise comparison
// processes COMP(o_i, o_j) of Kou et al. (SIGMOD 2017, §3 and Appendices D
// and E).
//
// A comparison process progressively purchases preference microtasks for a
// pair of items until a statistical test at confidence level 1−α can call a
// winner, or a per-pair budget B is exhausted (outcome: tie, i.e.
// indistinguishable under budget). Three interchangeable decision policies
// are provided:
//
//   - Student: Algorithm 1 (STUDENTCOMP). The 1−α confidence interval of
//     the preference mean, x̄ ± t_{α/2,n−1}·S/√n, must exclude the neutral
//     value 0.
//   - Stein: Algorithm 5 (STEINCOMP). Stein's two-stage estimation recast
//     progressively: stop as soon as S²·L⁻²·t²_{1−α/2,n−1} ≤ n with
//     L = |x̄| − ε, i.e. the Stein interval of half-width just under |x̄|
//     is supported by the current sample size.
//   - Hoeffding: the pairwise *binary* judgment model of Busa-Fekete et
//     al., using the distribution-free Hoeffding interval over ±1 votes.
//     It needs no normality assumption but requires far larger workloads
//     (Table 3, Appendix D).
//
// A Runner binds a policy to a crowd.Engine and adds the paper's execution
// machinery: minimum initial workload I, per-pair budget B, batch step η
// (§5.5 microtask-level batch processing), latency ticking, and
// memoization of concluded comparisons so that every query phase reuses
// previously purchased judgments (§5.3).
package compare
