package compare

import (
	"math/rand"
	"sync"
	"testing"

	"crowdtopk/internal/crowd"
)

// waveOracle is an n-item latent oracle for the interleaving tests: item i
// has score n−i, preferences are the score gap plus Gaussian noise, clipped.
type waveOracle struct {
	n     int
	sigma float64
}

func (o waveOracle) NumItems() int { return o.n }

func (o waveOracle) Preference(rng *rand.Rand, i, j int) float64 {
	v := float64(j-i)/float64(o.n) + rng.NormFloat64()*o.sigma
	if v > 1 {
		return 1
	}
	if v < -1 {
		return -1
	}
	return v
}

// waveRunner builds a runner over a fresh engine for the interleaving
// tests. Parallelism stays at the caller's choice via Params.
func waveRunner(n int, seed int64, p Params) *Runner {
	eng := crowd.NewEngine(waveOracle{n: n, sigma: 0.3}, rand.New(rand.NewSource(seed)))
	return NewRunner(eng, NewStudent(0.05), p)
}

// TestConcurrentAdvanceMatchesSequential drives the same wave schedule —
// every undecided pair advances exactly once per wave — once sequentially
// and once with the per-wave advances fanned across goroutines. Outcomes,
// per-pair workloads and total cost must be identical: the engine's
// per-pair streams make the fan-out invisible.
func TestConcurrentAdvanceMatchesSequential(t *testing.T) {
	const n = 20
	params := Params{B: 200, I: 10, Step: 10}
	var pairs [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < i+4 && j < n; j++ {
			pairs = append(pairs, [2]int{i, j})
		}
	}

	run := func(parallel bool) (*Runner, []Outcome) {
		r := waveRunner(n, 77, params)
		out := make([]Outcome, len(pairs))
		done := make([]bool, len(pairs))
		remaining := len(pairs)
		for remaining > 0 {
			if parallel {
				var wg sync.WaitGroup
				for idx := range pairs {
					if done[idx] {
						continue
					}
					wg.Add(1)
					go func(idx int) {
						defer wg.Done()
						out[idx], done[idx] = r.Advance(pairs[idx][0], pairs[idx][1])
					}(idx)
				}
				wg.Wait()
			} else {
				for idx := range pairs {
					if done[idx] {
						continue
					}
					out[idx], done[idx] = r.Advance(pairs[idx][0], pairs[idx][1])
				}
			}
			remaining = 0
			for idx := range pairs {
				if !done[idx] {
					remaining++
				}
			}
			r.Engine().Tick(1)
		}
		return r, out
	}

	rSeq, outSeq := run(false)
	rPar, outPar := run(true)
	for idx, p := range pairs {
		if outSeq[idx] != outPar[idx] {
			t.Errorf("pair %v outcome diverged: %v vs %v", p, outSeq[idx], outPar[idx])
		}
		if ws, wp := rSeq.Workload(p[0], p[1]), rPar.Workload(p[0], p[1]); ws != wp {
			t.Errorf("pair %v workload diverged: %d vs %d", p, ws, wp)
		}
	}
	if rSeq.Engine().TMC() != rPar.Engine().TMC() {
		t.Errorf("TMC diverged: %d vs %d", rSeq.Engine().TMC(), rPar.Engine().TMC())
	}
}

// TestConcludedOutcomeStable verifies outcome immutability: once a pair
// concludes, further Advance calls — concurrent ones included — return the
// same verdict and purchase nothing.
func TestConcludedOutcomeStable(t *testing.T) {
	r := waveRunner(10, 78, Params{B: 500, I: 30, Step: 30})
	want := r.Compare(0, 9)
	if _, ok := r.Concluded(0, 9); !ok {
		t.Fatal("pair did not conclude")
	}
	spent := r.Workload(0, 9)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				if o, done := r.Advance(0, 9); !done || o != want {
					t.Errorf("concluded pair re-opened: done=%v o=%v want %v", done, o, want)
					return
				}
				if o, ok := r.Concluded(9, 0); !ok || o != want.Flip() {
					t.Errorf("flipped conclusion unstable: ok=%v o=%v", ok, o)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Workload(0, 9); got != spent {
		t.Errorf("concluded pair kept buying: workload %d -> %d", spent, got)
	}
}

// TestRememberFirstWriteWins pins the memo's write-once contract directly:
// a second, conflicting write is ignored, so concurrent workers that race
// to conclude the same pair cannot flip a published verdict.
func TestRememberFirstWriteWins(t *testing.T) {
	r := waveRunner(10, 79, DefaultParams())
	r.remember(3, 4, FirstWins)
	r.remember(3, 4, SecondWins) // ignored
	r.remember(4, 3, FirstWins)  // flipped orientation, also ignored
	if o, ok := r.Concluded(3, 4); !ok || o != FirstWins {
		t.Errorf("memo overwritten: ok=%v o=%v", ok, o)
	}
	r.ForgetConclusions()
	if _, ok := r.Concluded(3, 4); ok {
		t.Error("ForgetConclusions kept the memo")
	}
	r.remember(3, 4, SecondWins) // now the slot is free again
	if o, _ := r.Concluded(3, 4); o != SecondWins {
		t.Errorf("fresh memo not recorded, got %v", o)
	}
}

// TestParallelismResolution covers the Params plumbing: explicit values
// pass through, zero resolves to a positive machine-wide default.
func TestParallelismResolution(t *testing.T) {
	if got := waveRunner(5, 80, Params{B: 100, I: 10, Step: 10, Parallelism: 3}).Parallelism(); got != 3 {
		t.Errorf("explicit Parallelism = %d, want 3", got)
	}
	if got := waveRunner(5, 81, Params{B: 100, I: 10, Step: 10}).Parallelism(); got < 1 {
		t.Errorf("default Parallelism = %d, want >= 1", got)
	}
}
