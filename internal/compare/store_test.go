package compare

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"crowdtopk/internal/crowd"
	"crowdtopk/internal/jstore"
)

// gaussItems is a deterministic oracle over n items with linearly spaced
// qualities; the preference toward the better item is N(gap·Δq, sigma²).
type gaussItems struct {
	n     int
	sigma float64
}

func (g gaussItems) NumItems() int { return g.n }

func (g gaussItems) Preference(rng *rand.Rand, i, j int) float64 {
	mu := 0.15 * float64(j-i) // later items are worse
	v := mu + rng.NormFloat64()*g.sigma
	return math.Max(-1, math.Min(1, v))
}

func itemsRunner(n int, sigma float64, p Params, seed int64) *Runner {
	eng := crowd.NewEngine(gaussItems{n, sigma}, rand.New(rand.NewSource(seed)))
	return NewRunner(eng, NewStudent(0.02), p)
}

func TestForkedRunnersShareConclusions(t *testing.T) {
	r := itemsRunner(4, 0.2, Params{B: 1000, I: 30, Step: 30}, 11)
	f1, f2 := r.Fork(), r.Fork()

	out := f1.Compare(0, 1)
	if out != FirstWins {
		t.Fatalf("Compare = %v, want FirstWins", out)
	}
	cost := r.Engine().TMC()

	// The sibling fork observes the conclusion through the shared memo.
	got, ok := f2.Concluded(0, 1)
	if !ok || got != out {
		t.Fatalf("sibling fork Concluded = (%v, %v), want (%v, true)", got, ok, out)
	}
	if f2.Compare(0, 1) != out {
		t.Error("sibling fork re-compared to a different verdict")
	}
	if f2.Compare(1, 0) != out.Flip() {
		t.Error("sibling fork mirror orientation not flipped")
	}
	if r.Engine().TMC() != cost {
		t.Errorf("sibling fork spent money on a shared conclusion: TMC %d → %d", cost, r.Engine().TMC())
	}
}

func TestConcurrentForksObserveEachOther(t *testing.T) {
	const n = 8
	r := itemsRunner(n, 0.2, Params{B: 2000, I: 30, Step: 30, Parallelism: 4}, 12)

	// Phase 1: concurrent forks conclude disjoint pairs.
	var wg sync.WaitGroup
	for f := 0; f < 4; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			fork := r.Fork()
			for i := f; i < n-1; i += 4 {
				fork.Compare(i, i+1)
			}
		}(f)
	}
	wg.Wait()
	cost := r.Engine().TMC()

	// Phase 2: fresh concurrent forks read every conclusion for free.
	var misses sync.Map
	for f := 0; f < 4; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			fork := r.Fork()
			for i := 0; i < n-1; i++ {
				if _, ok := fork.Concluded(i, i+1); !ok {
					misses.Store([2]int{i, i + 1}, true)
				}
				fork.Compare(i, i+1)
			}
		}(f)
	}
	wg.Wait()
	misses.Range(func(k, _ any) bool {
		t.Errorf("pair %v concluded in phase 1 was not visible to a phase-2 fork", k)
		return true
	})
	if r.Engine().TMC() != cost {
		t.Errorf("phase 2 spent money re-reading shared conclusions: TMC %d → %d", cost, r.Engine().TMC())
	}
}

func TestStoreSeededRunEquivalentToColdRun(t *testing.T) {
	params := Params{B: 1000, I: 30, Step: 30}
	store := jstore.NewMemStore()
	pol := StorePolicy{Confidence: 0.98}

	// Cold run: conclude, commit.
	cold := itemsRunner(4, 0.2, params, 21)
	cold.SetJudgmentStore(store, pol)
	var coldOut [3]Outcome
	for i := 0; i < 3; i++ {
		coldOut[i] = cold.Compare(i, i+1)
	}
	coldCost := cold.Engine().TMC()
	if coldCost == 0 {
		t.Fatal("cold run spent nothing")
	}
	if n := cold.CommitConclusions(); n != 3 {
		t.Fatalf("CommitConclusions = %d, want 3", n)
	}
	var coldViews [3]crowd.BagView
	for i := 0; i < 3; i++ {
		coldViews[i] = cold.Engine().View(i, i+1)
	}

	// Warm run on a fresh engine: identical verdicts and bit-identical
	// bag state, at zero TMC.
	warm := itemsRunner(4, 0.2, params, 21)
	warm.SetJudgmentStore(store, pol)
	for i := 0; i < 3; i++ {
		if got := warm.Compare(i, i+1); got != coldOut[i] {
			t.Errorf("warm Compare(%d,%d) = %v, cold %v", i, i+1, got, coldOut[i])
		}
	}
	if tmc := warm.Engine().TMC(); tmc != 0 {
		t.Errorf("warm run spent %d microtasks, want 0", tmc)
	}
	for i := 0; i < 3; i++ {
		wv, cv := warm.Engine().View(i, i+1), coldViews[i]
		if wv.N != cv.N || wv.Mean != cv.Mean || wv.SD != cv.SD {
			t.Errorf("warm view (%d,%d) = %+v, cold %+v (must be bit-identical)", i, i+1, wv, cv)
		}
	}
	ss := warm.StoreStats()
	if ss.Hits != 3 || ss.Stale != 0 || ss.Commits != 0 {
		t.Errorf("warm StoreStats = %+v, want 3 hits, 0 stale, 0 commits", ss)
	}
	if warm.CommitConclusions() != 0 {
		t.Error("warm run re-committed store-served verdicts")
	}
}

func TestStaleRecordVerifiedAtReducedCost(t *testing.T) {
	params := Params{B: 1000, I: 30, Step: 30}
	store := jstore.NewMemStore()

	cold := itemsRunner(2, 0.1, params, 31)
	cold.SetJudgmentStore(store, StorePolicy{Confidence: 0.98})
	coldOut := cold.Compare(0, 1)
	coldCost := cold.Engine().TMC()
	cold.CommitConclusions()

	// Age the record to 3×TTL: evidence decays to 2^-2 = 25%.
	ttl := time.Hour
	rec, _ := store.Lookup(0, 1)
	rec.UnixNano = time.Now().Add(-3 * ttl).UnixNano()
	store.Commit(rec)

	warm := itemsRunner(2, 0.1, params, 31)
	warm.SetJudgmentStore(store, StorePolicy{TTL: ttl, Confidence: 0.98})
	if got := warm.Compare(0, 1); got != coldOut {
		t.Errorf("verified stale verdict = %v, cold %v", got, coldOut)
	}
	warmCost := warm.Engine().TMC()
	if warmCost == 0 {
		t.Error("stale record was trusted without verification")
	}
	if warmCost >= coldCost {
		t.Errorf("stale verification cost %d, not reduced vs cold %d", warmCost, coldCost)
	}
	ss := warm.StoreStats()
	if ss.Stale != 1 || ss.Hits != 0 {
		t.Errorf("StoreStats = %+v, want 1 stale, 0 hits", ss)
	}
	// The verified conclusion re-commits with a fresh timestamp.
	warm.CommitConclusions()
	fresh, _ := store.Lookup(0, 1)
	if fresh.UnixNano == rec.UnixNano {
		t.Error("verified conclusion did not refresh the stored record")
	}
}

func TestUnderConfidentRecordNotTrustedAsVerdict(t *testing.T) {
	params := Params{B: 1000, I: 30, Step: 30}
	store := jstore.NewMemStore()

	cold := itemsRunner(2, 0.1, params, 41)
	cold.SetJudgmentStore(store, StorePolicy{Confidence: 0.90})
	cold.Compare(0, 1)
	cold.CommitConclusions()

	// A fleet demanding 0.98 must not adopt a 0.90 verdict wholesale.
	warm := itemsRunner(2, 0.1, params, 41)
	warm.SetJudgmentStore(store, StorePolicy{Confidence: 0.98})
	warm.Compare(0, 1)
	if tmc := warm.Engine().TMC(); tmc == 0 {
		t.Error("under-confident record served as a free verdict")
	}
	if ss := warm.StoreStats(); ss.Stale != 1 {
		t.Errorf("StoreStats = %+v, want the record counted stale", ss)
	}
}

func TestDecayedRecordBelowFloorIsAMiss(t *testing.T) {
	store := jstore.NewMemStore()
	// A record aged so far that its decayed sample count collapses.
	store.Commit(jstore.Record{
		Lo: 0, Hi: 1, Outcome: 1, N: 30, Mean: 0.3, M2: 1.0,
		BinN: 30, BinMean: 0.9, BinM2: 30 * (1 - 0.81), Confidence: 0.98,
		UnixNano: time.Now().Add(-100 * time.Hour).UnixNano(),
	})
	warm := itemsRunner(2, 0.1, Params{B: 1000, I: 30, Step: 30}, 51)
	warm.SetJudgmentStore(store, StorePolicy{TTL: time.Hour, Confidence: 0.98})
	warm.Compare(0, 1)
	if ss := warm.StoreStats(); ss.Misses != 1 || ss.Stale != 0 {
		t.Errorf("StoreStats = %+v, want 1 miss (evidence decayed away)", ss)
	}
}

func TestTruncatedTieNotCommitted(t *testing.T) {
	// A near-tie pair under a tight spending cap concludes tie with less
	// than the per-pair budget B of evidence — a truncation, not a crowd
	// verdict. It must not be committed to the store.
	store := jstore.NewMemStore()
	capped := itemsRunner(2, 1.0, Params{B: 400, I: 30, Step: 30}, 71)
	capped.SetJudgmentStore(store, StorePolicy{Confidence: 0.99})
	capped.Engine().SetSpendingCap(60)
	if out := capped.Compare(0, 1); out != Tie {
		t.Skipf("pair decided decisively (%v) under the cap; seed no longer exercises truncation", out)
	}
	if n := capped.CommitConclusions(); n != 0 {
		t.Errorf("committed %d truncated tie(s); store must only hold crowd verdicts", n)
	}

	// The same pair genuinely exhausting B = 60 is a protocol conclusion
	// and does commit.
	honest := itemsRunner(2, 1.0, Params{B: 60, I: 30, Step: 30}, 71)
	honest.SetJudgmentStore(store, StorePolicy{Confidence: 0.99})
	if out := honest.Compare(0, 1); out != Tie {
		t.Skipf("pair decided decisively (%v) within B=60", out)
	}
	if n := honest.CommitConclusions(); n != 1 {
		t.Errorf("protocol-exhausted tie not committed: got %d commits, want 1", n)
	}
}

func TestCrossPolicyRecordDowngradedToPrior(t *testing.T) {
	params := Params{B: 1000, I: 30, Step: 30}
	store := jstore.NewMemStore()
	pol := StorePolicy{Confidence: 0.98}

	// Conclude and commit under the fixed-step schedule.
	cold := itemsRunner(2, 0.1, params, 81)
	cold.SetJudgmentStore(store, pol)
	coldOut := cold.Compare(0, 1)
	coldCost := cold.Engine().TMC()
	if coldOut == Tie || coldCost == 0 {
		t.Fatalf("cold run inconclusive (out %v, cost %d); seed no longer exercises the scenario", coldOut, coldCost)
	}
	cold.CommitConclusions()
	rec, ok := store.Lookup(0, 1)
	if !ok || rec.Policy != "fixed" {
		t.Fatalf("committed record = (%+v, %v), want Policy \"fixed\"", rec, ok)
	}

	// A same-policy consumer gets the fresh hit: verdict served free.
	same := itemsRunner(2, 0.1, params, 81)
	same.SetJudgmentStore(store, pol)
	if got := same.Compare(0, 1); got != coldOut {
		t.Errorf("same-policy warm Compare = %v, cold %v", got, coldOut)
	}
	if tmc := same.Engine().TMC(); tmc != 0 {
		t.Errorf("same-policy consumer spent %d microtasks, want 0", tmc)
	}
	if ss := same.StoreStats(); ss.Hits != 1 || ss.Stale != 0 {
		t.Errorf("same-policy StoreStats = %+v, want 1 hit, 0 stale", ss)
	}

	// A consumer under a different policy must not adopt the verdict
	// wholesale: the record downgrades to a full-strength prior that is
	// re-verified with a reduced purchase.
	voiEng := crowd.NewEngine(gaussItems{2, 0.1}, rand.New(rand.NewSource(81)))
	voi := NewRunner(voiEng, NewVoI(0.02), params)
	voi.SetJudgmentStore(store, pol)
	if got := voi.Compare(0, 1); got != coldOut {
		t.Errorf("cross-policy warm Compare = %v, cold %v", got, coldOut)
	}
	voiCost := voi.Engine().TMC()
	if voiCost == 0 {
		t.Error("cross-policy record served as a free verdict")
	}
	if voiCost >= coldCost {
		t.Errorf("cross-policy verification cost %d, not reduced vs cold %d", voiCost, coldCost)
	}
	if ss := voi.StoreStats(); ss.Hits != 0 || ss.Stale != 1 {
		t.Errorf("cross-policy StoreStats = %+v, want 0 hits, 1 stale", ss)
	}

	// A record from before the policy layer carries no name and is read
	// as "fixed": trusted by a fixed consumer, downgraded by an adaptive
	// one.
	legacy := rec
	legacy.Policy = ""
	store.Commit(legacy)

	fixedLegacy := itemsRunner(2, 0.1, params, 81)
	fixedLegacy.SetJudgmentStore(store, pol)
	fixedLegacy.Compare(0, 1)
	if tmc := fixedLegacy.Engine().TMC(); tmc != 0 {
		t.Errorf("legacy nameless record cost a fixed consumer %d microtasks, want 0", tmc)
	}

	voiLegacyEng := crowd.NewEngine(gaussItems{2, 0.1}, rand.New(rand.NewSource(81)))
	voiLegacy := NewRunner(voiLegacyEng, NewVoI(0.02), params)
	voiLegacy.SetJudgmentStore(store, pol)
	voiLegacy.Compare(0, 1)
	if tmc := voiLegacy.Engine().TMC(); tmc == 0 {
		t.Error("legacy nameless record served to a voi consumer as a free verdict")
	}
	if ss := voiLegacy.StoreStats(); ss.Stale != 1 {
		t.Errorf("voi-consumer StoreStats on legacy record = %+v, want 1 stale", ss)
	}
}

func TestStoreSharedAcrossForks(t *testing.T) {
	params := Params{B: 1000, I: 30, Step: 30}
	store := jstore.NewMemStore()
	pol := StorePolicy{Confidence: 0.98}

	cold := itemsRunner(4, 0.2, params, 61)
	cold.SetJudgmentStore(store, pol)
	f0 := cold.Fork() // each fork is one query: it concludes and commits
	f0.Compare(0, 1)
	if n := f0.CommitConclusions(); n != 1 {
		t.Fatalf("fork CommitConclusions = %d, want 1", n)
	}

	warm := itemsRunner(4, 0.2, params, 61)
	warm.SetJudgmentStore(store, pol)
	f := warm.Fork()
	if _, ok := f.Concluded(0, 1); !ok {
		t.Fatal("fork of a warm session did not see the stored verdict")
	}
	if tmc := warm.Engine().TMC(); tmc != 0 {
		t.Errorf("warm fork spent %d microtasks", tmc)
	}
}
