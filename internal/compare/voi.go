package compare

import (
	"math"

	"crowdtopk/internal/crowd"
	"crowdtopk/internal/stats"
)

// VoI is a Bayesian value-of-information comparison policy in the style
// of Chen–Jiao–Lin's instance-adaptive top-k ranking: maintain a normal
// posterior over the pair's preference mean from the bag's Welford
// moments (μ̂ = x̄, posterior sd ≈ s/√n under a flat prior), conclude when
// the 1−α credible interval excludes 0, and size each purchase by how
// much information it is expected to buy.
//
//   - Projected cost to a verdict: the credible half-width z·s/√n falls
//     below |x̄| at n* = (z·s/x̄)². The policy buys roughly half the
//     remaining distance to n* per batch — large steps while the verdict
//     is far, small confirmatory steps near it — instead of a fixed η.
//   - Expected value of information: once n* exceeds what the remaining
//     per-pair budget can fund, no affordable purchase can move the
//     decision, so the expected information per microtask is below its
//     price at any batch size. The policy then declines to buy and the
//     pair concludes as a tie — this early surrender on near-ties, which
//     the fixed schedule instead funds all the way to B, is where the
//     policy's TMC savings come from (near-ties barely affect ranking
//     quality, so NDCG holds).
//
// VoI is a pure function of the bag view and remaining budget; jstore-
// seeded posteriors are already folded into the moments it reads.
type VoI struct {
	alpha float64
	z     float64 // normal quantile z_{1−α/2}
	boot  int     // cold-start workload before the first test
	floor int     // evidence floor before surrender is allowed
	min   int     // smallest batch
	max   int     // largest batch
}

// Default VoI shape parameters: a cold start of 8 samples (enough for a
// usable variance estimate, vs the fixed schedule's I = 30), surrender
// allowed only past 24 samples (a near-zero mean on fewer is noise, not
// evidence of a tie), batches between 4 and 128.
const (
	voiBootstrap = 8
	voiFloor     = 24
	voiMinBatch  = 4
	voiMaxBatch  = 128
)

// NewVoI returns the Bayesian value-of-information policy at significance
// level alpha (credible level 1−alpha).
func NewVoI(alpha float64) *VoI {
	if alpha <= 0 || alpha >= 1 {
		panic("compare: NewVoI requires alpha in (0,1)")
	}
	return &VoI{
		alpha: alpha,
		z:     stats.NormalQuantile(1 - alpha/2),
		boot:  voiBootstrap,
		floor: voiFloor,
		min:   voiMinBatch,
		max:   voiMaxBatch,
	}
}

// Name implements Policy.
func (p *VoI) Name() string { return "voi" }

// MinSamples implements Tester.
func (p *VoI) MinSamples() int { return 2 }

// HalfWidth implements HalfWidther: the credible-interval half-width of
// the posterior mean.
func (p *VoI) HalfWidth(v crowd.BagView) float64 {
	if v.N < 2 {
		return math.Inf(1)
	}
	return p.z * v.SD / math.Sqrt(float64(v.N))
}

// Test implements Tester: conclude when the credible interval excludes 0.
func (p *VoI) Test(v crowd.BagView) Outcome {
	if v.N < 2 {
		return Tie
	}
	half := p.HalfWidth(v)
	switch {
	case v.Mean-half > 0:
		return FirstWins
	case v.Mean+half < 0:
		return SecondWins
	default:
		return Tie
	}
}

// Bootstrap implements Policy.
func (p *VoI) Bootstrap(v crowd.BagView) int { return p.boot - v.N }

// projected returns the total sample size n* at which the credible
// interval is expected to exclude 0, +Inf when the mean carries no
// direction.
func (p *VoI) projected(v crowd.BagView) float64 {
	m := math.Abs(v.Mean)
	if m == 0 {
		return math.Inf(1)
	}
	if v.SD == 0 {
		// Deterministic judgments: the very next test concludes.
		return float64(v.N)
	}
	r := p.z * v.SD / m
	return math.Ceil(r * r)
}

// Next implements Policy: half the projected remaining distance to a
// verdict, clamped to [min, max] and the budget; surrender (0) when the
// projection is not fundable from what is left.
func (p *VoI) Next(v crowd.BagView, left int) int {
	if left <= 0 {
		return 0
	}
	need := p.projected(v)
	// The sum is computed in float64: an unlimited budget arrives as
	// MaxInt, and v.N+left would wrap negative in int arithmetic, turning
	// "always fundable" into "never fundable".
	if v.N >= p.floor && need > float64(v.N)+float64(left) {
		return 0 // verdict unreachable within budget: stop paying
	}
	n := p.min
	if d := need - float64(v.N); d > 0 {
		if h := int(math.Ceil(d / 2)); h > n {
			n = h
		}
	}
	if n > p.max {
		n = p.max
	}
	if n > left {
		n = left
	}
	return n
}
