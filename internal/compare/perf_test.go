package compare

import (
	"testing"

	"crowdtopk/internal/crowd"
)

// TestCompareColdStartCappedLatency pins the cold-start accounting fix:
// when a global spending cap truncates the initial draw, latency must be
// counted from the samples actually granted, not from the ceil(I/Step)
// rounds a full cold start would have taken — and the re-entered
// cold-start branch must not re-Tick rounds for a draw that granted
// nothing.
func TestCompareColdStartCappedLatency(t *testing.T) {
	r := newRunner(0, 0.3, Params{B: 1000, I: 30, Step: 30}, 11)
	r.Engine().SetSpendingCap(10)
	if got := r.Compare(0, 1); got != Tie {
		t.Fatalf("Compare under exhausted cap = %v, want Tie", got)
	}
	if w := r.Workload(0, 1); w != 10 {
		t.Fatalf("workload = %d, want the 10 granted samples", w)
	}
	// 10 granted samples fit one Step-30 batch: exactly one round. The
	// old accounting charged one full cold-start round per loop entry and
	// reported 2.
	if rounds := r.Engine().Rounds(); rounds != 1 {
		t.Errorf("rounds = %d, want 1", rounds)
	}

	// A cap that bites mid-comparison: 30 cold samples (1 round), then a
	// truncated 20-sample step batch (1 round), then a zero-grant draw
	// that must not tick.
	r2 := newRunner(0, 0.3, Params{B: 1000, I: 30, Step: 30}, 12)
	r2.Engine().SetSpendingCap(50)
	if got := r2.Compare(0, 1); got != Tie {
		t.Fatalf("Compare under mid-run cap = %v, want Tie", got)
	}
	if w := r2.Workload(0, 1); w != 50 {
		t.Fatalf("workload = %d, want 50", w)
	}
	if rounds := r2.Engine().Rounds(); rounds != 2 {
		t.Errorf("rounds = %d, want 2", rounds)
	}
}

// TestCompareColdStartPartialGrantRoundsFromGranted covers the granted-
// based rounds formula itself: with Step = 7 and a cap of 25, the granted
// cold-start samples occupy ceil(25/7) = 4 rounds, where the old
// need-based accounting charged ceil(30/7) = 5.
func TestCompareColdStartPartialGrantRoundsFromGranted(t *testing.T) {
	r := newRunner(0, 0.3, Params{B: 1000, I: 30, Step: 7}, 13)
	r.Engine().SetSpendingCap(25)
	if got := r.Compare(0, 1); got != Tie {
		t.Fatalf("Compare = %v, want Tie", got)
	}
	if w := r.Workload(0, 1); w != 25 {
		t.Fatalf("workload = %d, want 25", w)
	}
	if rounds := r.Engine().Rounds(); rounds != 4 {
		t.Errorf("rounds = %d, want ceil(25/7) = 4", rounds)
	}
}

// warmView returns a decided-looking bag view that exercises every branch
// of the tests without touching an engine.
func warmView() crowd.BagView {
	return crowd.BagView{N: 60, Mean: 0.4, SD: 0.2, BinN: 58, BinMean: 0.8}
}

// TestPolicyTestsAllocationFree asserts the stopping rules allocate
// nothing once their critical-value / half-width caches are warm — they
// run millions of times inside SPR's inner loops.
func TestPolicyTestsAllocationFree(t *testing.T) {
	v := warmView()
	policies := map[string]Tester{
		"student":        NewStudent(0.05),
		"stein":          NewStein(0.05),
		"hoeffding":      NewHoeffding(0.05),
		"hoeffding-pref": NewHoeffdingPref(0.05),
	}
	for name, p := range policies {
		p.Test(v) // warm the caches
		if allocs := testing.AllocsPerRun(100, func() { p.Test(v) }); allocs != 0 {
			t.Errorf("%s.Test allocates %.1f objects/op on a warm cache, want 0", name, allocs)
		}
	}
}

// TestConcludedAllocationFree asserts the memo lookup allocates nothing,
// concluded or not.
func TestConcludedAllocationFree(t *testing.T) {
	r := newRunner(0.6, 0.05, Params{B: 1000, I: 30, Step: 30}, 21)
	if got := r.Compare(0, 1); got != FirstWins {
		t.Fatalf("Compare = %v, want FirstWins", got)
	}
	if allocs := testing.AllocsPerRun(100, func() { r.Concluded(0, 1) }); allocs != 0 {
		t.Errorf("Concluded (hit) allocates %.1f objects/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { r.Concluded(0, 1) }); allocs != 0 {
		t.Errorf("Concluded (flipped hit) allocates %.1f objects/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { r.Concluded(1, 0) }); allocs != 0 {
		t.Errorf("Concluded (miss orientation) allocates %.1f objects/op, want 0", allocs)
	}
}
