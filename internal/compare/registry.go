package compare

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// PolicyConfig is what a policy factory gets to build from: the verdict
// estimator the caller selected (used by schedules that wrap one), the
// significance level, and the execution parameters the fixed schedule is
// defined by. Adaptive policies typically use only Alpha.
type PolicyConfig struct {
	// Tester is the selected verdict estimator ("student", "stein", ...).
	// Factories that wrap a tester must treat a nil Tester as an error at
	// use time; the registry does not validate it.
	Tester Tester
	// Alpha is the significance level 1−confidence.
	Alpha float64
	// I, Step and B mirror Params: cold-start workload, batch size η and
	// per-pair budget.
	I, Step, B int
}

// PolicyFactory builds a policy from a config.
type PolicyFactory func(cfg PolicyConfig) Policy

var (
	policyMu  sync.RWMutex
	policyReg = map[string]PolicyFactory{}
)

// RegisterPolicy adds a named policy factory to the registry. Names are
// case-sensitive and must be unique; registering a duplicate panics —
// registration happens at init time, where a collision is a programming
// error worth failing loudly on.
func RegisterPolicy(name string, f PolicyFactory) {
	if name == "" || f == nil {
		panic("compare: RegisterPolicy requires a name and a factory")
	}
	policyMu.Lock()
	defer policyMu.Unlock()
	if _, dup := policyReg[name]; dup {
		panic(fmt.Sprintf("compare: policy %q registered twice", name))
	}
	policyReg[name] = f
}

// PolicyNames returns the registered policy names, sorted — the
// enumeration every "unknown policy" error and flag help string is
// driven from, so newly registered policies appear automatically.
func PolicyNames() []string {
	policyMu.RLock()
	defer policyMu.RUnlock()
	names := make([]string, 0, len(policyReg))
	for n := range policyReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PolicyRegistered reports whether name is a registered policy.
func PolicyRegistered(name string) bool {
	policyMu.RLock()
	defer policyMu.RUnlock()
	_, ok := policyReg[name]
	return ok
}

// NewPolicy builds the named policy from the registry. An unknown name
// errors with the full list of registered names.
func NewPolicy(name string, cfg PolicyConfig) (Policy, error) {
	policyMu.RLock()
	f := policyReg[name]
	policyMu.RUnlock()
	if f == nil {
		return nil, fmt.Errorf("compare: unknown policy %q (registered: %s)",
			name, strings.Join(PolicyNames(), ", "))
	}
	return f(cfg), nil
}

func init() {
	RegisterPolicy("fixed", func(cfg PolicyConfig) Policy {
		return NewFixedStep(cfg.Tester, cfg.I, cfg.Step)
	})
	RegisterPolicy("voi", func(cfg PolicyConfig) Policy {
		return NewVoI(cfg.Alpha)
	})
	RegisterPolicy("pac", func(cfg PolicyConfig) Policy {
		return NewPAC(cfg.Alpha)
	})
}
