package compare

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"crowdtopk/internal/crowd"
	"crowdtopk/internal/stats"
)

// gaussPair is an oracle over two items whose preference (toward item 0)
// is N(mu, sigma²) clipped to [-1, 1].
type gaussPair struct{ mu, sigma float64 }

func (g gaussPair) NumItems() int { return 2 }

func (g gaussPair) Preference(rng *rand.Rand, i, j int) float64 {
	v := g.mu + rng.NormFloat64()*g.sigma
	if i > j {
		v = -v
	}
	return math.Max(-1, math.Min(1, v))
}

func pairEngine(mu, sigma float64, seed int64) *crowd.Engine {
	return crowd.NewEngine(gaussPair{mu, sigma}, rand.New(rand.NewSource(seed)))
}

func TestOutcomeFlipAndString(t *testing.T) {
	if FirstWins.Flip() != SecondWins || SecondWins.Flip() != FirstWins || Tie.Flip() != Tie {
		t.Error("Flip is not an involution on outcomes")
	}
	if FirstWins.String() != "first-wins" || SecondWins.String() != "second-wins" || Tie.String() != "tie" {
		t.Error("unexpected String values")
	}
}

func TestPolicyNamesAndMinSamples(t *testing.T) {
	for _, tc := range []struct {
		p    Tester
		name string
		min  int
	}{
		{NewStudent(0.05), "student", 2},
		{NewStein(0.05), "stein", 2},
		{NewHoeffding(0.05), "hoeffding", 1},
	} {
		if tc.p.Name() != tc.name {
			t.Errorf("Name = %q, want %q", tc.p.Name(), tc.name)
		}
		if tc.p.MinSamples() != tc.min {
			t.Errorf("%s MinSamples = %d, want %d", tc.name, tc.p.MinSamples(), tc.min)
		}
	}
}

func TestPoliciesUndecidedOnTinyBags(t *testing.T) {
	for _, p := range []Tester{NewStudent(0.05), NewStein(0.05)} {
		if got := p.Test(crowd.BagView{N: 1, Mean: 0.9}); got != Tie {
			t.Errorf("%s on N=1 = %v, want tie", p.Name(), got)
		}
		if got := p.Test(crowd.BagView{}); got != Tie {
			t.Errorf("%s on empty bag = %v, want tie", p.Name(), got)
		}
	}
	if got := NewHoeffding(0.05).Test(crowd.BagView{BinN: 0}); got != Tie {
		t.Errorf("hoeffding on empty bag = %v, want tie", got)
	}
}

func TestStudentDecisionMatchesManualCI(t *testing.T) {
	alpha := 0.05
	p := NewStudent(alpha)
	// Construct views where the decision boundary is known analytically.
	n := 31
	sd := 0.5
	half := stats.TCritical(alpha, n-1) * sd / math.Sqrt(float64(n))
	cases := []struct {
		mean float64
		want Outcome
	}{
		{half * 1.01, FirstWins},
		{half * 0.99, Tie},
		{-half * 1.01, SecondWins},
		{-half * 0.99, Tie},
		{0, Tie},
	}
	for _, tc := range cases {
		v := crowd.BagView{N: n, Mean: tc.mean, SD: sd}
		if got := p.Test(v); got != tc.want {
			t.Errorf("Student.Test(mean=%v) = %v, want %v", tc.mean, got, tc.want)
		}
	}
}

func TestStudentZeroVarianceDecidesImmediately(t *testing.T) {
	p := NewStudent(0.05)
	if got := p.Test(crowd.BagView{N: 2, Mean: 0.1, SD: 0}); got != FirstWins {
		t.Errorf("zero-SD positive mean = %v, want FirstWins", got)
	}
	if got := p.Test(crowd.BagView{N: 2, Mean: -0.1, SD: 0}); got != SecondWins {
		t.Errorf("zero-SD negative mean = %v, want SecondWins", got)
	}
	if got := p.Test(crowd.BagView{N: 2, Mean: 0, SD: 0}); got != Tie {
		t.Errorf("zero-SD zero mean = %v, want Tie", got)
	}
}

func TestSteinDecisionRule(t *testing.T) {
	alpha := 0.05
	p := NewStein(alpha)
	// With mean m and sd s, Stein stops when s²/(m−ε)²·t² ≤ n.
	n := 100
	tcrit := stats.TCritical(alpha, n-1)
	m := 0.2
	sStop := (m - 2e-9) * math.Sqrt(float64(n)) / tcrit
	if got := p.Test(crowd.BagView{N: n, Mean: m, SD: sStop * 0.99}); got != FirstWins {
		t.Errorf("Stein below stopping SD = %v, want FirstWins", got)
	}
	if got := p.Test(crowd.BagView{N: n, Mean: m, SD: sStop * 1.01}); got != Tie {
		t.Errorf("Stein above stopping SD = %v, want Tie", got)
	}
	if got := p.Test(crowd.BagView{N: n, Mean: -m, SD: sStop * 0.99}); got != SecondWins {
		t.Errorf("Stein negative mean = %v, want SecondWins", got)
	}
	if got := p.Test(crowd.BagView{N: n, Mean: 0, SD: 0.1}); got != Tie {
		t.Errorf("Stein zero mean = %v, want Tie", got)
	}
}

func TestHoeffdingDecisionRule(t *testing.T) {
	alpha := 0.1
	p := NewHoeffding(alpha)
	n := 500
	// The policy applies the anytime doubling-epoch correction.
	half := stats.HoeffdingHalfWidth(n, 2, anytimeAlpha(alpha, n))
	if got := p.Test(crowd.BagView{BinN: n, BinMean: half * 1.01}); got != FirstWins {
		t.Errorf("above half-width = %v, want FirstWins", got)
	}
	if got := p.Test(crowd.BagView{BinN: n, BinMean: half * 0.99}); got != Tie {
		t.Errorf("below half-width = %v, want Tie", got)
	}
	if got := p.Test(crowd.BagView{BinN: n, BinMean: -half * 1.01}); got != SecondWins {
		t.Errorf("below negative half-width = %v, want SecondWins", got)
	}
}

func TestPolicyAntisymmetryProperty(t *testing.T) {
	// Test(view toward i) must equal Test(view toward j).Flip().
	policies := []Tester{NewStudent(0.05), NewStein(0.05), NewHoeffding(0.05)}
	f := func(ni uint8, meanI, sdI int16, binMeanI int16) bool {
		n := int(ni)%500 + 2
		mean := float64(meanI) / math.MaxInt16 // [-1, 1]
		sd := math.Abs(float64(sdI)) / math.MaxInt16
		binMean := float64(binMeanI) / math.MaxInt16
		v := crowd.BagView{N: n, Mean: mean, SD: sd, BinN: n, BinMean: binMean}
		flipped := crowd.BagView{N: n, Mean: -mean, SD: sd, BinN: n, BinMean: -binMean}
		for _, p := range policies {
			if p.Test(v) != p.Test(flipped).Flip() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPolicyMonotoneInMeanProperty(t *testing.T) {
	// For fixed n and sd, if mean m decides FirstWins then any larger mean
	// must too.
	p := NewStudent(0.02)
	f := func(ni uint8, m1i, m2i uint16, sdi uint16) bool {
		n := int(ni)%500 + 2
		m1 := float64(m1i) / math.MaxUint16
		m2 := float64(m2i) / math.MaxUint16
		if m1 > m2 {
			m1, m2 = m2, m1
		}
		sd := float64(sdi) / math.MaxUint16
		o1 := p.Test(crowd.BagView{N: n, Mean: m1, SD: sd})
		o2 := p.Test(crowd.BagView{N: n, Mean: m2, SD: sd})
		if o1 == FirstWins && o2 != FirstWins {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPoliciesAgreeOnEasyPair(t *testing.T) {
	// A very easy pair must be decided correctly by all policies.
	for _, p := range []Tester{NewStudent(0.02), NewStein(0.02), NewHoeffding(0.02)} {
		e := pairEngine(0.5, 0.1, 11)
		v := e.Draw(0, 1, 200)
		if got := p.Test(v); got != FirstWins {
			t.Errorf("%s on easy pair = %v, want FirstWins", p.Name(), got)
		}
		// And the mirrored orientation.
		if got := p.Test(e.View(1, 0)); got != SecondWins {
			t.Errorf("%s mirrored = %v, want SecondWins", p.Name(), got)
		}
	}
}

func TestNewHoeffdingPanicsOnBadAlpha(t *testing.T) {
	for _, a := range []float64{0, 1, -0.2, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHoeffding(%v) did not panic", a)
				}
			}()
			NewHoeffding(a)
		}()
	}
}
