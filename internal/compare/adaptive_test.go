package compare

import (
	"testing"

	"crowdtopk/internal/crowd"
	"crowdtopk/internal/jstore"
)

// Regression: with an unlimited per-pair budget the runner passes
// left = MaxInt, and the fundability check computed v.N+left in int,
// which wrapped negative — every projection then looked unfundable, so
// the adaptive policies surrendered every undecided pair past their
// evidence floor as a tie precisely when the budget was unlimited.
func TestAdaptiveNextFundsUnderUnlimitedBudget(t *testing.T) {
	unlimited := int(^uint(0) >> 1)
	v := crowd.BagView{N: 40, Mean: 0.4, SD: 0.5}
	for _, tc := range []struct {
		name string
		next func(crowd.BagView, int) int
	}{
		{"voi", NewVoI(0.05).Next},
		{"pac", NewPAC(0.05).Next},
	} {
		if got := tc.next(v, unlimited); got <= 0 {
			t.Errorf("%s.Next(separable pair, unlimited budget) = %d, want > 0", tc.name, got)
		}
	}
}

// The end-to-end shape of the same regression: under B = 0 (unlimited)
// a separable pair that stays undecided past the evidence floor must
// still be funded to a directional verdict, not surrendered as a tie.
func TestAdaptiveUnlimitedBudgetConcludesSeparablePair(t *testing.T) {
	params := Params{B: 0, I: 30, Step: 30}
	for _, tc := range []struct {
		pol       Policy
		mu, sigma float64
	}{
		// Gaps sized so the projected need exceeds the surrender floor:
		// the verdict arrives well past N = 24 samples.
		{NewVoI(0.05), 0.1, 0.5},
		{NewPAC(0.05), 0.3, 0.3},
	} {
		r := NewRunner(pairEngine(tc.mu, tc.sigma, 7), tc.pol, params)
		if got := r.Compare(0, 1); got != FirstWins {
			t.Errorf("%s under unlimited budget = %v, want FirstWins", tc.pol.Name(), got)
		}
		if n := r.Workload(0, 1); n <= voiFloor {
			t.Errorf("%s concluded at N=%d; the scenario no longer crosses the surrender floor", tc.pol.Name(), n)
		}
	}
}

// Surrender itself must survive the overflow fix: a projection that a
// small finite remainder cannot fund still declines the purchase.
func TestAdaptiveNextSurrendersWhenUnfundable(t *testing.T) {
	v := crowd.BagView{N: 30, Mean: 0.01, SD: 0.5} // needs thousands of samples
	if got := NewVoI(0.05).Next(v, 20); got != 0 {
		t.Errorf("voi.Next(near-tie, 20 left) = %d, want 0 (surrender)", got)
	}
	if got := NewPAC(0.05).Next(v, 20); got != 0 {
		t.Errorf("pac.Next(near-tie, 20 left) = %d, want 0 (eliminate)", got)
	}
}

// In-session conclusion reuse follows the same trust rule as the
// judgment store: verdicts are shared between queries running the same
// policy and never adopted across stopping semantics.
func TestSetPolicyIsolatesConclusionMemoAcrossPolicies(t *testing.T) {
	params := Params{B: 1000, I: 30, Step: 30}
	e := pairEngine(0.4, 0.3, 19)
	r := NewRunner(e, NewStudent(0.05), params)

	if out := r.Compare(0, 1); out != FirstWins {
		t.Fatalf("session Compare = %v, want FirstWins", out)
	}

	// A fork without an override shares the session verdict table.
	if _, ok := r.Fork().Concluded(0, 1); !ok {
		t.Error("same-policy fork does not see the session verdict")
	}

	// A fork pinned to a different policy must not adopt a verdict
	// reached under different stopping semantics; it re-judges the pair
	// under its own rule against the already-purchased evidence.
	voi := r.Fork()
	voi.SetPolicy(NewVoI(0.05))
	if _, ok := voi.Concluded(0, 1); ok {
		t.Fatal("voi-pinned fork adopted a fixed-schedule verdict from the session memo")
	}
	before := e.TMC()
	if got := voi.Compare(0, 1); got != FirstWins {
		t.Errorf("voi re-judgment = %v, want FirstWins", got)
	}
	if cost := e.TMC() - before; cost != 0 {
		t.Errorf("voi re-judgment bought %d new samples; the session evidence was already decisive", cost)
	}

	// Forks pinned to the same policy share one verdict table.
	voi2 := r.Fork()
	voi2.SetPolicy(NewVoI(0.05))
	if _, ok := voi2.Concluded(0, 1); !ok {
		t.Error("second voi-pinned fork does not share the voi verdict table")
	}

	// Re-pinning the session's own policy returns the session table.
	back := r.Fork()
	back.SetPolicy(NewStudent(0.05))
	if _, ok := back.Concluded(0, 1); !ok {
		t.Error("re-pinning the session policy lost the session verdict table")
	}
}

// ForgetConclusions from the session runner clears the per-policy side
// tables along with the session table.
func TestForgetConclusionsClearsPolicySideTables(t *testing.T) {
	params := Params{B: 1000, I: 30, Step: 30}
	r := NewRunner(pairEngine(0.4, 0.3, 23), NewStudent(0.05), params)
	voi := r.Fork()
	voi.SetPolicy(NewVoI(0.05))
	if voi.Compare(0, 1) != FirstWins {
		t.Fatal("voi fork did not conclude the pair")
	}
	r.ForgetConclusions()
	if _, ok := voi.Concluded(0, 1); ok {
		t.Error("voi side table survived the session's ForgetConclusions")
	}
}

// A store hit latched by a consumer that trusted the committing policy
// is not re-served as a verdict to a fork pinned to a different policy:
// the fork re-runs its own stopping rule over the seeded evidence, the
// per-reader mirror of the consult-time cross-policy downgrade.
func TestStoreLatchedHitNotServedAcrossPolicies(t *testing.T) {
	params := Params{B: 1000, I: 30, Step: 30}
	store := jstore.NewMemStore()
	pol := StorePolicy{Confidence: 0.98}

	cold := itemsRunner(2, 0.2, params, 33)
	cold.SetJudgmentStore(store, pol)
	coldOut := cold.Compare(0, 1)
	if coldOut == Tie {
		t.Fatal("cold run inconclusive; seed no longer exercises the scenario")
	}
	cold.CommitConclusions()

	// The warm session's first consult trusts the same-policy record and
	// latches the hit.
	warm := itemsRunner(2, 0.2, params, 33)
	warm.SetJudgmentStore(store, pol)
	if got := warm.Compare(0, 1); got != coldOut {
		t.Fatalf("warm Compare = %v, cold %v", got, coldOut)
	}
	if tmc := warm.Engine().TMC(); tmc != 0 {
		t.Fatalf("warm hit cost %d microtasks, want 0", tmc)
	}

	voi := warm.Fork()
	voi.SetPolicy(NewVoI(0.02))
	if _, ok := voi.Concluded(0, 1); ok {
		t.Fatal("latched fixed-policy hit served as a verdict to a voi fork")
	}
	if got := voi.Compare(0, 1); got != coldOut {
		t.Errorf("voi re-judgment of latched pair = %v, want %v", got, coldOut)
	}
	if ss := warm.StoreStats(); ss.Hits != 1 {
		t.Errorf("StoreStats.Hits = %d, want 1 (hit must not be re-counted cross-policy)", ss.Hits)
	}
}
