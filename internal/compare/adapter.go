package compare

import (
	"math"

	"crowdtopk/internal/crowd"
)

// FixedStep adapts a plain verdict Tester to the full Policy interface
// with the paper's fixed sampling schedule: buy the initial workload I in
// one cold-start purchase, then Step samples per batch until the tester
// concludes or the per-pair budget runs dry (§5.5's batch size η). It is
// the exact schedule the Runner hard-wired before the policy layer
// existed; wrapping any of the five legacy estimators in it reproduces
// their pre-refactor purchase sequence sample for sample.
type FixedStep struct {
	T    Tester
	I    int // cold-start workload (Params.I)
	Step int // batch size η (Params.Step)
}

// NewFixedStep wraps t in the fixed I/Step schedule.
func NewFixedStep(t Tester, i, step int) *FixedStep {
	if t == nil {
		panic("compare: NewFixedStep requires a non-nil tester")
	}
	if i < 2 || step < 1 {
		panic("compare: NewFixedStep requires I >= 2 and Step >= 1")
	}
	return &FixedStep{T: t, I: i, Step: step}
}

// Name implements Policy: the schedule's name, not the wrapped tester's
// (Tester reports the estimator; the two are labeled separately).
func (f *FixedStep) Name() string { return "fixed" }

// Tester returns the wrapped verdict tester.
func (f *FixedStep) Tester() Tester { return f.T }

// MinSamples implements Tester.
func (f *FixedStep) MinSamples() int { return f.T.MinSamples() }

// Test implements Tester by forwarding to the wrapped estimator.
func (f *FixedStep) Test(v crowd.BagView) Outcome { return f.T.Test(v) }

// Bootstrap implements Policy: whatever is missing of the initial I.
func (f *FixedStep) Bootstrap(v crowd.BagView) int { return f.I - v.N }

// Next implements Policy: one batch of Step, clamped to the remaining
// budget. An empty budget declines the purchase, which the Runner turns
// into the budget-exhausted tie the fixed schedule always concluded with.
func (f *FixedStep) Next(v crowd.BagView, left int) int {
	if left < f.Step {
		return left
	}
	return f.Step
}

// HalfWidth implements HalfWidther by forwarding to the wrapped tester
// when it can report one; infinite otherwise (the Runner skips infinite
// widths when recording confidence trajectories).
func (f *FixedStep) HalfWidth(v crowd.BagView) float64 {
	if hw, ok := f.T.(HalfWidther); ok {
		return hw.HalfWidth(v)
	}
	return math.Inf(1)
}

// testerOf unwraps the verdict estimator behind a policy: the wrapped
// tester for adapters, the policy itself otherwise (adaptive policies are
// their own estimator).
func testerOf(p Policy) Tester {
	type unwrapper interface{ Tester() Tester }
	if u, ok := p.(unwrapper); ok {
		return u.Tester()
	}
	return p
}
