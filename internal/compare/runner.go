package compare

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"crowdtopk/internal/crowd"
	"crowdtopk/internal/obs"
)

// Params configures the execution of comparison processes.
type Params struct {
	// B is the per-pair budget: the maximum number of microtasks a single
	// comparison may consume. B <= 0 means unlimited (the paper's B = ∞
	// setting of §3.2).
	B int
	// I is the minimum initial workload that overcomes cold start
	// (Algorithm 1; at least 30 by common statistical practice).
	I int
	// Step is the batch size η of microtask-level batch processing
	// (§5.5): after the initial I samples, microtasks are purchased Step
	// at a time and the stopping rule is tested after each batch. Step = 1
	// reproduces the one-at-a-time Algorithm 1.
	Step int
	// Parallelism bounds the worker pool that executes the undecided
	// pairs of one comparison wave concurrently (§5.5 made physical).
	// 1 runs waves sequentially; 0 selects GOMAXPROCS. Thanks to the
	// engine's per-pair sample streams, any value produces byte-identical
	// results for a fixed seed — Parallelism trades wall-clock only.
	Parallelism int
}

// DefaultParams returns the paper's default execution parameters:
// B = 1000, I = 30, η = 30 (Table 6, §6.2).
func DefaultParams() Params { return Params{B: 1000, I: 30, Step: 30} }

func (p Params) validate() {
	if p.I < 2 {
		panic(fmt.Sprintf("compare: Params.I must be >= 2, got %d", p.I))
	}
	if p.Step < 1 {
		panic(fmt.Sprintf("compare: Params.Step must be >= 1, got %d", p.Step))
	}
	if p.B > 0 && p.B < p.I {
		panic(fmt.Sprintf("compare: Params.B (%d) must be >= Params.I (%d) or unlimited", p.B, p.I))
	}
	if p.Parallelism < 0 {
		panic(fmt.Sprintf("compare: Params.Parallelism must be >= 0, got %d", p.Parallelism))
	}
}

// Runner executes comparison processes over a crowd engine: it purchases
// sample batches, applies the policy's stopping rule, advances the latency
// clock, and memoizes conclusions so the rest of the query can reuse them
// for free.
//
// Concluded, Advance, TestOnly, Leaning and Workload are safe for
// concurrent use on distinct pairs — the shape parallel comparison waves
// need. Concurrent Advance calls on the *same* pair are the caller's
// responsibility to avoid (waves deduplicate pairs before fanning out);
// the runner itself stays race-free either way, but duplicate calls would
// buy duplicate batches. A conclusion, once memoized, is immutable.
type Runner struct {
	eng    *crowd.Engine
	policy Policy
	params Params

	// Telemetry wiring (SetTelemetry). tel/ins/hw are written once at
	// wiring time; nil means the corresponding instrumentation is off and
	// costs one nil check. parent is the span comparison spans nest under,
	// updated by the algorithm layer as phases change. active tracks the
	// open span and round count of each in-flight wave-mode comparison.
	tel    *obs.Telemetry
	ins    *Instruments
	hw     HalfWidther
	parent atomic.Uint64
	spanMu sync.Mutex
	active map[[2]int]*compState

	// memo stripes the conclusion table: each canonical pair hashes to one
	// of memoStripes independently locked maps, so SPR's inner loops —
	// which call Concluded for every candidate pair of a wave — stop
	// serializing on one global RWMutex. Within a stripe reads take an
	// RLock (allocation-free); a conclusion, once written, is immutable
	// (first writer wins), so readers always observe a stable verdict.
	memo [memoStripes]memoStripe
}

// memoStripes must be a power of two.
const memoStripes = 64

type memoStripe struct {
	mu sync.RWMutex
	m  map[[2]int]Outcome // canonical pair (lo, hi) -> outcome toward lo
}

// stripeOf picks the memo stripe of a canonical pair, mixing both indices
// so pairs sharing a low item spread across stripes.
func stripeOf(k [2]int) uint64 {
	x := uint64(uint32(k[0]))<<32 | uint64(uint32(k[1]))
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x & (memoStripes - 1)
}

// NewRunner binds a policy to an engine.
func NewRunner(e *crowd.Engine, policy Policy, p Params) *Runner {
	if e == nil {
		panic("compare: NewRunner requires a non-nil engine")
	}
	if policy == nil {
		panic("compare: NewRunner requires a non-nil policy")
	}
	p.validate()
	r := &Runner{
		eng:    e,
		policy: policy,
		params: p,
	}
	// Cache the half-width reporter once so comparison spans can record
	// confidence trajectories without a type assertion per round.
	r.hw, _ = policy.(HalfWidther)
	return r
}

// Engine returns the underlying crowd engine.
func (r *Runner) Engine() *crowd.Engine { return r.eng }

// Err reports the platform failure that degraded the engine, or nil while
// it is healthy. Once non-nil, every comparison concludes best-effort on
// the evidence already purchased — exactly like an exhausted spending
// cap — and the caller should surface the partial result together with
// this error.
func (r *Runner) Err() error { return r.eng.Err() }

// Policy returns the decision policy in use.
func (r *Runner) Policy() Policy { return r.policy }

// Params returns the execution parameters.
func (r *Runner) Params() Params { return r.params }

// Parallelism returns the resolved worker-pool bound for parallel
// comparison waves: Params.Parallelism, with 0 meaning GOMAXPROCS.
func (r *Runner) Parallelism() int {
	if p := r.params.Parallelism; p > 0 {
		return p
	}
	return runtime.GOMAXPROCS(0)
}

func canonical(i, j int) ([2]int, bool) {
	if i < j {
		return [2]int{i, j}, false
	}
	return [2]int{j, i}, true
}

// Concluded reports the memoized outcome for (i, j), if any.
func (r *Runner) Concluded(i, j int) (Outcome, bool) {
	k, flip := canonical(i, j)
	s := &r.memo[stripeOf(k)]
	s.mu.RLock()
	o, ok := s.m[k]
	s.mu.RUnlock()
	if !ok {
		return Tie, false
	}
	if flip {
		o = o.Flip()
	}
	return o, true
}

// remember memoizes a conclusion. The first writer wins: a concluded
// outcome never changes afterwards, so concurrent readers always observe
// a stable verdict.
func (r *Runner) remember(i, j int, o Outcome) {
	k, flip := canonical(i, j)
	if flip {
		o = o.Flip()
	}
	s := &r.memo[stripeOf(k)]
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[[2]int]Outcome)
	}
	if _, ok := s.m[k]; !ok {
		s.m[k] = o
	}
	s.mu.Unlock()
}

// budgetLeft returns how many more samples the pair may consume.
func (r *Runner) budgetLeft(n int) int {
	if r.params.B <= 0 {
		return int(^uint(0) >> 1) // effectively unlimited
	}
	return r.params.B - n
}

// Compare runs the full comparison process COMP(o_i, o_j) sequentially:
// it keeps purchasing batches until the policy concludes or the budget is
// exhausted, advancing the latency clock by one round per batch. Concluded
// pairs are memoized; calling Compare again costs nothing.
func (r *Runner) Compare(i, j int) Outcome {
	if o, ok := r.Concluded(i, j); ok {
		r.memoHit()
		return o
	}
	var st *compState
	if r.enabled() {
		st = r.beginComp(i, j)
	}
	v := r.eng.View(i, j)
	for {
		if need := r.params.I - v.N; need > 0 {
			// Cold start: the initial I samples arrive Step at a time, so
			// the granted samples cost ceil(granted/Step) batch rounds.
			// Rounds are counted from what the engine actually granted: a
			// spending cap may truncate the draw, and the ungranted
			// remainder never occupied a round (nor must it be re-counted
			// if the loop re-enters this branch).
			before := v.N
			v = r.eng.Draw(i, j, need)
			granted := v.N - before
			if granted == 0 {
				// A global spending cap ran dry: best-effort tie, not
				// memoized — the pair itself is not statistically spent.
				r.finishComp(st, v, Tie, false)
				return Tie
			}
			rounds := (granted + r.params.Step - 1) / r.params.Step
			r.eng.Tick(rounds)
			r.observeRound(st, v, rounds)
		}
		if o := r.policy.Test(v); o != Tie {
			r.remember(i, j, o)
			r.finishComp(st, v, o, true)
			return o
		}
		left := r.budgetLeft(v.N)
		if left <= 0 {
			r.remember(i, j, Tie)
			r.finishComp(st, v, Tie, true)
			return Tie
		}
		n := r.params.Step
		if n > left {
			n = left
		}
		before := v.N
		v = r.eng.Draw(i, j, n)
		if v.N == before {
			// Spending cap exhausted mid-comparison: no round ran.
			r.finishComp(st, v, Tie, false)
			return Tie
		}
		r.eng.Tick(1)
		r.observeRound(st, v, 1)
	}
}

// Advance performs one batch step of the comparison process for (i, j)
// without touching the latency clock: the first call purchases the initial
// I samples (Algorithm 4's β ← I), subsequent calls one batch of Step.
// It returns the current outcome and whether the process is finished
// (concluded, or budget exhausted). Callers running many pairs in parallel
// Tick the engine once per wave.
func (r *Runner) Advance(i, j int) (Outcome, bool) {
	if o, ok := r.Concluded(i, j); ok {
		r.memoHit()
		return o, true
	}
	var st *compState
	if r.enabled() {
		st = r.compStateOf(i, j)
	}
	v := r.eng.View(i, j)
	var n int
	if v.N < r.params.I {
		n = r.params.I - v.N
	} else {
		n = r.params.Step
	}
	if left := r.budgetLeft(v.N); n > left {
		n = left
	}
	if n > 0 {
		before := v.N
		v = r.eng.Draw(i, j, n)
		if v.N == before {
			// Global spending cap exhausted: report the pair finished
			// (best effort) without memoizing a statistical conclusion.
			o := r.policy.Test(v)
			if st != nil {
				r.finishComp(st, v, o, false)
				r.dropCompState(i, j)
			}
			return o, true
		}
		r.observeRound(st, v, 1)
	}
	if o := r.policy.Test(v); o != Tie {
		r.remember(i, j, o)
		if st != nil {
			r.finishComp(st, v, o, true)
			r.dropCompState(i, j)
		}
		return o, true
	}
	if r.budgetLeft(v.N) <= 0 {
		r.remember(i, j, Tie)
		if st != nil {
			r.finishComp(st, v, Tie, true)
			r.dropCompState(i, j)
		}
		return Tie, true
	}
	return Tie, false
}

// TestOnly applies the policy to the samples already purchased for (i, j)
// without buying anything and without memoizing.
func (r *Runner) TestOnly(i, j int) Outcome {
	return r.policy.Test(r.eng.View(i, j))
}

// Leaning returns the direction currently suggested by the sample mean of
// (i, j), regardless of confidence: FirstWins if the mean (toward i) is
// positive, SecondWins if negative, Tie if zero or never sampled. It is the
// tie-breaking heuristic used when a budget-exhausted pair must still be
// placed in an order.
func (r *Runner) Leaning(i, j int) Outcome {
	v := r.eng.View(i, j)
	switch {
	case v.Mean > 0:
		return FirstWins
	case v.Mean < 0:
		return SecondWins
	default:
		return Tie
	}
}

// Workload returns the number of microtasks purchased so far for the pair.
func (r *Runner) Workload(i, j int) int { return r.eng.View(i, j).N }

// ForgetConclusions clears the outcome memo while keeping all purchased
// samples, letting a caller re-judge pairs under a different policy or
// budget against the same bags. It must not race with in-flight waves.
func (r *Runner) ForgetConclusions() {
	for s := range r.memo {
		r.memo[s].mu.Lock()
		r.memo[s].m = nil
		r.memo[s].mu.Unlock()
	}
}
