package compare

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"crowdtopk/internal/crowd"
	"crowdtopk/internal/obs"
	"crowdtopk/internal/obs/explain"
	"crowdtopk/internal/sched"
)

// ErrBudgetExhausted stops a query whose per-query budget sub-cap (see
// Runner.SetQueryBudget) ran dry: the query concludes best-effort on the
// evidence already purchased, while the session's shared cap — and every
// neighboring query — is untouched.
var ErrBudgetExhausted = errors.New("per-query budget exhausted")

// Params configures the execution of comparison processes.
type Params struct {
	// B is the per-pair budget: the maximum number of microtasks a single
	// comparison may consume. B <= 0 means unlimited (the paper's B = ∞
	// setting of §3.2).
	B int
	// I is the minimum initial workload that overcomes cold start
	// (Algorithm 1; at least 30 by common statistical practice).
	I int
	// Step is the batch size η of microtask-level batch processing
	// (§5.5): after the initial I samples, microtasks are purchased Step
	// at a time and the stopping rule is tested after each batch. Step = 1
	// reproduces the one-at-a-time Algorithm 1.
	Step int
	// Parallelism bounds the shared scheduler pool that executes the
	// undecided pairs of comparison waves concurrently (§5.5 made
	// physical). 1 runs comparisons inline on the control goroutine;
	// 0 selects GOMAXPROCS. Thanks to the engine's per-pair sample
	// streams, any value produces byte-identical results for a fixed
	// seed in the default (deterministic) scheduling mode — Parallelism
	// trades wall-clock only.
	Parallelism int
	// Async switches algorithms from deterministic wave barriers to
	// free-running comparison chains on the shared scheduler: a decided
	// pair immediately frees its worker instead of waiting for the
	// wave's slowest straggler. Results remain correct (per-pair sample
	// streams are schedule-independent) but control-flow decisions that
	// depend on completion order may differ run to run; latency rounds
	// become a high-water mark rather than an exact wave count. Async is
	// ignored when the resolved Parallelism is 1.
	Async bool
}

// DefaultParams returns the paper's default execution parameters:
// B = 1000, I = 30, η = 30 (Table 6, §6.2).
func DefaultParams() Params { return Params{B: 1000, I: 30, Step: 30} }

func (p Params) validate() {
	if p.I < 2 {
		panic(fmt.Sprintf("compare: Params.I must be >= 2, got %d", p.I))
	}
	if p.Step < 1 {
		panic(fmt.Sprintf("compare: Params.Step must be >= 1, got %d", p.Step))
	}
	if p.B > 0 && p.B < p.I {
		panic(fmt.Sprintf("compare: Params.B (%d) must be >= Params.I (%d) or unlimited", p.B, p.I))
	}
	if p.Parallelism < 0 {
		panic(fmt.Sprintf("compare: Params.Parallelism must be >= 0, got %d", p.Parallelism))
	}
}

// Runner executes comparison processes over a crowd engine: it purchases
// sample batches, applies the policy's stopping rule, advances the latency
// clock, and memoizes conclusions so the rest of the query can reuse them
// for free.
//
// Concluded, Advance, TestOnly, Leaning and Workload are safe for
// concurrent use on distinct pairs — the shape parallel comparison waves
// need. Concurrent Advance calls on the *same* pair are the caller's
// responsibility to avoid (waves deduplicate pairs before fanning out);
// the runner itself stays race-free either way, but duplicate calls would
// buy duplicate batches. A conclusion, once memoized, is immutable.
type Runner struct {
	eng    *crowd.Engine
	policy Policy
	params Params

	// Telemetry wiring (SetTelemetry). tel/ins/hw are written once at
	// wiring time; nil means the corresponding instrumentation is off and
	// costs one nil check. parent is the span comparison spans nest under,
	// updated by the algorithm layer as phases change. active tracks the
	// open span and round count of each in-flight wave-mode comparison.
	tel    *obs.Telemetry
	ins    *Instruments
	hw     HalfWidther
	parent atomic.Uint64
	spanMu sync.Mutex
	active map[[2]int]*compState

	// polComparisons/polConcluded are the policy-labeled slices of the
	// comparison counters, re-resolved whenever telemetry or the policy
	// changes; nil when telemetry is off.
	polComparisons *obs.Counter
	polConcluded   *obs.Counter

	// sch is the shared comparison scheduler: one pool serving every
	// query forked off this runner. acct is this runner's (this query's)
	// slice of it — exact microtask/round attribution plus the
	// ref-counted scheduler handle. Fork gives each concurrent query its
	// own acct over the same sch; Derive shares both.
	sch  *sched.Scheduler
	acct *queryAcct

	// memo points at the conclusion table so forked runners share
	// verdicts while derived sub-phase runners (whose budget-exhausted
	// ties must not pollute the main query) get a private one. The table
	// stripes canonical pairs over independently locked maps, so SPR's
	// inner loops — which call Concluded for every candidate pair of a
	// wave — do not serialize on one global RWMutex. Within a stripe
	// reads take an RLock (allocation-free); a conclusion, once written,
	// is immutable (first writer wins), so readers always observe a
	// stable verdict.
	memo *memoTable

	// js is the cross-query judgment-store attachment (SetJudgmentStore),
	// shared — like the engine — by every fork and derived runner of the
	// session; nil when reuse is off. derived marks sub-phase runners
	// whose budget-exhausted ties must not be committed as session-level
	// verdicts.
	js      *storeState
	derived bool
}

// memoStripes must be a power of two.
const memoStripes = 64

type memoTable struct {
	stripes [memoStripes]memoStripe

	// pol names the policy whose stopping semantics produced this table's
	// verdicts. Verdicts are only reused between queries running the same
	// policy — the in-session mirror of the judgment store's cross-policy
	// downgrade — so per-query policy overrides get a side table keyed by
	// policy name off the session table (forPolicy), while derived
	// sub-phase runners keep fully private tables.
	pol   string
	mu    sync.Mutex
	byPol map[string]*memoTable
	root  *memoTable // non-nil on side tables: the session table
}

// forPolicy returns the memo table holding verdicts concluded under the
// named policy, creating the side table on first use. Tables are resolved
// from the session table, so every fork pinned to one policy shares one
// table, and re-pinning back to the session policy returns the session
// table itself.
func (m *memoTable) forPolicy(name string) *memoTable {
	if m.root != nil {
		m = m.root
	}
	if name == m.pol {
		return m
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.byPol[name]
	if t == nil {
		t = &memoTable{pol: name, root: m}
		if m.byPol == nil {
			m.byPol = make(map[string]*memoTable)
		}
		m.byPol[name] = t
	}
	return t
}

// clear empties the table and, from the session table, every per-policy
// side table hanging off it.
func (m *memoTable) clear() {
	for s := range m.stripes {
		m.stripes[s].mu.Lock()
		m.stripes[s].m = nil
		m.stripes[s].mu.Unlock()
	}
	m.mu.Lock()
	side := make([]*memoTable, 0, len(m.byPol))
	for _, t := range m.byPol {
		side = append(side, t)
	}
	m.mu.Unlock()
	for _, t := range side {
		t.clear()
	}
}

type memoStripe struct {
	mu sync.RWMutex
	m  map[[2]int]Outcome // canonical pair (lo, hi) -> outcome toward lo
}

// queryAcct is one query's accounting slice of the shared execution
// stack: exact counts of the microtasks and latency rounds this query
// (and only this query) consumed, the query's budget sub-cap and stop
// latch, its scheduling weight, plus the ref-counted scheduler handle its
// drivers submit through. Derived sub-phase runners share the acct, so a
// stop or an exhausted sub-cap covers the whole query.
type queryAcct struct {
	tmc    atomic.Int64 // microtasks charged via this runner's draws
	rounds atomic.Int64 // latency rounds ticked via this runner

	// budget is the per-query TMC sub-cap (0 = unlimited); reserved is
	// the CAS-reserved claim against it, always >= tmc, so concurrent
	// chains of one query can never overdraw the sub-cap between check
	// and charge. The sub-cap is a ceiling, not a reservation against the
	// session's shared cap: whatever the query leaves unspent was never
	// taken from its neighbors. budget, priority and deadline are set
	// before the query starts and immutable afterwards.
	budget   int64
	reserved atomic.Int64
	priority int32
	deadline time.Time

	// The per-query stop latch: once set (context canceled, deadline
	// expired, sub-cap exhausted, session closing) every further purchase
	// through this acct is declined, so in-flight comparison chains
	// conclude best-effort and drain — exactly the shape of an exhausted
	// global cap, but scoped to one query. The first cause wins.
	stopped   atomic.Bool
	stopMu    sync.Mutex
	stopCause error

	// phase names the query's currently executing algorithm phase
	// ("select", "partition", "rank", ... ) for live progress reporting.
	phase atomic.Pointer[string]

	// explain, when non-nil, attributes every purchase charged through
	// this acct to its (phase, pair) leaf (SetExplain). It lives on the
	// acct — not the runner — so derived sub-phase runners attribute to
	// the parent query, and its leaf sum always equals tmc: both meters
	// are fed by exactly the same charge sites.
	explain *explain.Collector

	mu   sync.Mutex
	q    *sched.Query // open handle while refs > 0
	refs int

	// pending queues the pairs this query concluded for the post-query
	// judgment-store commit (CommitConclusions). It lives on the acct —
	// not the runner — so conclusions from derived sub-phase runners,
	// which share the acct but not the memo, are captured too.
	pendMu  sync.Mutex
	pending []pendingConclusion
}

// handle returns the open scheduler handle, nil when nothing is borrowed.
func (a *queryAcct) handle() *sched.Query {
	a.mu.Lock()
	q := a.q
	a.mu.Unlock()
	return q
}

// reserve claims up to n microtasks against the query's budget sub-cap
// and returns how many were granted; with no sub-cap every request is
// granted in full. Like the engine's cap reservation, the claim is a CAS
// so concurrent chains never overshoot.
func (a *queryAcct) reserve(n int) int {
	if n <= 0 {
		return 0
	}
	if a.budget <= 0 {
		return n
	}
	for {
		cur := a.reserved.Load()
		left := a.budget - cur
		if left <= 0 {
			return 0
		}
		m := int64(n)
		if m > left {
			m = left
		}
		if a.reserved.CompareAndSwap(cur, cur+m) {
			return int(m)
		}
	}
}

// refund returns an unused reservation (a cap- or platform-truncated
// draw) to the sub-cap.
func (a *queryAcct) refund(n int) {
	if n > 0 && a.budget > 0 {
		a.reserved.Add(-int64(n))
	}
}

// stop latches the query stopped; the first cause wins.
func (a *queryAcct) stop(cause error) {
	a.stopMu.Lock()
	if a.stopCause == nil {
		a.stopCause = cause
	}
	a.stopMu.Unlock()
	a.stopped.Store(true)
}

// cause returns the stop cause, nil while the query is live.
func (a *queryAcct) cause() error {
	if !a.stopped.Load() {
		return nil
	}
	a.stopMu.Lock()
	defer a.stopMu.Unlock()
	return a.stopCause
}

// stripeOf picks the memo stripe of a canonical pair, mixing both indices
// so pairs sharing a low item spread across stripes.
func stripeOf(k [2]int) uint64 {
	x := uint64(uint32(k[0]))<<32 | uint64(uint32(k[1]))
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x & (memoStripes - 1)
}

// NewRunner binds a decision policy to an engine. t may be a plain
// verdict Tester — one of the paper's estimators — in which case it is
// wrapped in the FixedStep adapter over the Params' I and Step, exactly
// reproducing the pre-policy-layer schedule; or a full Policy, which owns
// its sampling schedule outright.
func NewRunner(e *crowd.Engine, t Tester, p Params) *Runner {
	if e == nil {
		panic("compare: NewRunner requires a non-nil engine")
	}
	if t == nil {
		panic("compare: NewRunner requires a non-nil policy")
	}
	p.validate()
	pol := resolvePolicy(t, p)
	r := &Runner{
		eng:    e,
		policy: pol,
		params: p,
		memo:   &memoTable{pol: pol.Name()},
		acct:   &queryAcct{},
	}
	r.sch = sched.New(r.Parallelism())
	// Cache the half-width reporter once so comparison spans can record
	// confidence trajectories without a type assertion per round.
	r.hw, _ = r.policy.(HalfWidther)
	return r
}

// resolvePolicy promotes a plain Tester to a Policy via the fixed-step
// adapter; a value that already is a Policy is used as-is.
func resolvePolicy(t Tester, p Params) Policy {
	if pol, ok := t.(Policy); ok {
		return pol
	}
	return NewFixedStep(t, p.I, p.Step)
}

// reparameterizer is implemented by schedule policies whose constants are
// derived from Params (the fixed-step adapter): Derive rebuilds them for
// the sub-phase's parameters, the way the pre-policy-layer runner read
// I and Step from its own Params.
type reparameterizer interface {
	withParams(p Params) Policy
}

// withParams implements reparameterizer.
func (f *FixedStep) withParams(p Params) Policy { return NewFixedStep(f.T, p.I, p.Step) }

// SetPolicy swaps the runner's decision policy — the per-query override
// hook: a Session forks the shared runner, then pins the fork to the
// policy the query asked for. A plain Tester is wrapped in the fixed-step
// adapter like in NewRunner. Conclusion reuse follows the same trust rule
// as the judgment store: verdicts are shared between queries running the
// SAME policy (the fork switches to the session memo's side table for the
// new policy name, shared with every other fork pinned to it), never
// adopted across stopping semantics — an adaptive policy's early
// surrender is not the fixed schedule's exhausted tie, and vice versa. A
// pinned query instead re-judges such pairs under its own stopping rule
// against the session's already-purchased evidence, which usually
// concludes without buying new samples. Call before the query starts
// executing.
func (r *Runner) SetPolicy(t Tester) {
	if t == nil {
		panic("compare: SetPolicy requires a non-nil policy")
	}
	r.policy = resolvePolicy(t, r.params)
	r.hw, _ = r.policy.(HalfWidther)
	r.memo = r.memo.forPolicy(r.policy.Name())
	r.resolvePolicyCounters()
}

// Fork returns a runner for one more concurrent query on the same
// execution stack: it shares the engine, policy, scheduler, conclusion
// memo and telemetry wiring, but starts a fresh accounting slice — so
// QueryTMC/QueryRounds on the fork report exactly what that query
// consumed — and fresh span state. Forks may run TopK concurrently.
func (r *Runner) Fork() *Runner {
	f := &Runner{
		eng:            r.eng,
		policy:         r.policy,
		params:         r.params,
		tel:            r.tel,
		ins:            r.ins,
		hw:             r.hw,
		polComparisons: r.polComparisons,
		polConcluded:   r.polConcluded,
		sch:            r.sch,
		acct:           &queryAcct{},
		memo:           r.memo,
		js:             r.js,
	}
	f.parent.Store(r.parent.Load())
	return f
}

// Derive returns a sub-phase runner with different execution parameters
// but the same engine, policy, scheduler handle and accounting slice —
// its purchases count toward the parent query. The derived runner gets a
// PRIVATE conclusion memo: sub-phases like reference selection conclude
// pairs under a tighter budget, and those budget-exhausted ties must not
// leak into the main query's verdict table.
func (r *Runner) Derive(p Params) *Runner {
	p.validate()
	pol := r.policy
	if rp, ok := pol.(reparameterizer); ok {
		pol = rp.withParams(p)
	}
	d := &Runner{
		eng:            r.eng,
		policy:         pol,
		params:         p,
		tel:            r.tel,
		ins:            r.ins,
		hw:             r.hw,
		polComparisons: r.polComparisons,
		polConcluded:   r.polConcluded,
		sch:            r.sch,
		acct:           r.acct,
		memo:           &memoTable{},
		js:             r.js,
		derived:        true,
	}
	d.parent.Store(r.parent.Load())
	return d
}

// SetExplain attaches a per-query cost-attribution collector: every
// microtask charged through this runner (and its Derived sub-phases) is
// recorded against its (phase, pair) leaf, so the collector's tree total
// equals QueryTMC exactly — both are fed by the same charge sites. Nil
// detaches. Call before the query starts executing.
func (r *Runner) SetExplain(c *explain.Collector) { r.acct.explain = c }

// Explain returns the attached cost-attribution collector (nil = off).
func (r *Runner) Explain() *explain.Collector { return r.acct.explain }

// SetQueryBudget carves a per-query budget sub-cap out of the session's
// shared spending cap: at most n microtasks may be charged through this
// runner (and its Derived sub-phases). When the sub-cap runs dry the
// query stops with ErrBudgetExhausted and concludes best-effort; the
// engine's cap and concurrent queries are unaffected, and whatever the
// query did not spend was never withheld from them. n <= 0 means
// unlimited. Call before the query starts executing.
func (r *Runner) SetQueryBudget(n int64) {
	if n < 0 {
		n = 0
	}
	r.acct.budget = n
}

// QueryBudget returns the per-query sub-cap (0 = unlimited).
func (r *Runner) QueryBudget() int64 { return r.acct.budget }

// SetQueryPriority sets the query's scheduling weight on the shared
// pool: higher-priority queries' comparison steps are dequeued first;
// equals share round-robin. Call before the query starts executing.
func (r *Runner) SetQueryPriority(p int32) { r.acct.priority = p }

// SetQueryDeadline declares when the query's answer is due; among
// equal-priority queries the earliest deadline is served first. The
// deadline only weights scheduling — enforcement (stopping the query) is
// the context's job. Call before the query starts executing.
func (r *Runner) SetQueryDeadline(t time.Time) { r.acct.deadline = t }

// Stop latches the query stopped with the given cause (first cause
// wins): every further purchase through this runner is declined, so
// in-flight comparisons conclude best-effort from the evidence already
// bought, and the query's pending scheduler tasks are dropped while its
// running steps drain. Safe to call from any goroutine, multiple times.
func (r *Runner) Stop(cause error) {
	if cause == nil {
		cause = errors.New("query stopped")
	}
	r.acct.stop(cause)
	if q := r.acct.handle(); q != nil {
		q.Cancel()
	}
}

// Stopped reports whether the query has been stopped (canceled, deadline
// expired, budget sub-cap exhausted, or session closing).
func (r *Runner) Stopped() bool { return r.acct.stopped.Load() }

// StopCause returns why the query was stopped, nil while it is live.
func (r *Runner) StopCause() error { return r.acct.cause() }

// SetPhase publishes the name of the algorithm phase the query is
// currently executing; the empty string clears it. Safe for concurrent
// readers (Phase).
func (r *Runner) SetPhase(name string) {
	if name == "" {
		r.acct.phase.Store(nil)
		return
	}
	r.acct.phase.Store(&name)
}

// Phase returns the query's currently executing phase name, "" between
// phases or for algorithms that do not report phases.
func (r *Runner) Phase() string {
	if p := r.acct.phase.Load(); p != nil {
		return *p
	}
	return ""
}

// Borrow opens (or joins) this query's handle on the shared scheduler
// and returns it with a release func. The handle is ref-counted: the
// pool workers spin up with the first outstanding borrow on the
// scheduler and wind down when the last is released, so sessions that
// are idle hold no goroutines. topk.Run borrows for the whole query;
// nested borrows (sub-phases) join the same handle.
func (r *Runner) Borrow() (*sched.Query, func()) {
	a := r.acct
	a.mu.Lock()
	if a.refs == 0 {
		a.q = r.sch.Open()
		a.q.SetPriority(a.priority)
		if !a.deadline.IsZero() {
			a.q.SetDeadline(a.deadline)
		}
		if a.stopped.Load() {
			// Stopped before the first borrow (cancel-before-start): the
			// handle opens pre-canceled so no step ever queues.
			a.q.Cancel()
		}
	}
	a.refs++
	q := a.q
	a.mu.Unlock()
	return q, func() {
		a.mu.Lock()
		a.refs--
		if a.refs == 0 {
			a.q.Close()
			a.q = nil
		}
		a.mu.Unlock()
	}
}

// Sched returns the shared comparison scheduler.
func (r *Runner) Sched() *sched.Scheduler { return r.sch }

// AsyncMode reports whether algorithms should drive free-running
// comparison chains instead of deterministic waves. Inline pools cannot
// overlap work, so Async degrades gracefully to deterministic there.
func (r *Runner) AsyncMode() bool { return r.params.Async && r.sch.Workers() > 1 }

// Tick advances the engine's latency clock by n batch rounds and
// attributes them to this runner's query.
func (r *Runner) Tick(n int) {
	r.eng.Tick(n)
	r.acct.rounds.Add(int64(n))
}

// DrawOne purchases a single microtask for (i, j), attributing its cost
// to this runner's query. It reports the sampled preference and whether
// the purchase was granted (stop latch, budget sub-cap, global cap and
// platform permitting).
func (r *Runner) DrawOne(i, j int) (float64, bool) {
	if r.acct.stopped.Load() {
		return 0, false
	}
	if r.acct.reserve(1) == 0 {
		r.Stop(ErrBudgetExhausted)
		return 0, false
	}
	v, ok := r.eng.DrawOne(i, j)
	if !ok {
		r.acct.refund(1)
		if c := r.acct.explain; c != nil {
			c.Refund(r.Phase(), i, j, 1)
		}
		return v, false
	}
	r.acct.tmc.Add(1)
	if c := r.acct.explain; c != nil {
		c.Charge(r.Phase(), i, j, 1)
	}
	return v, true
}

// draw purchases a batch for (i, j) and attributes exactly the charged
// count to this query — the engine reports it per call, because a view
// diff would misattribute cost when another query draws the same pair
// concurrently. A stopped query is declined outright; a query whose
// budget sub-cap runs dry gets the remainder, then stops with
// ErrBudgetExhausted on its next request. Reservations the engine did
// not honor (global cap, platform shortfall) are refunded to the
// sub-cap, so the sub-cap — like TMC itself — counts only delivered
// answers.
func (r *Runner) draw(i, j, n int) crowd.BagView {
	if r.acct.stopped.Load() {
		return r.eng.View(i, j)
	}
	granted := r.acct.reserve(n)
	if granted == 0 {
		if n > 0 {
			r.Stop(ErrBudgetExhausted)
		}
		return r.eng.View(i, j)
	}
	v, charged := r.eng.DrawN(i, j, granted)
	if charged != granted {
		r.acct.refund(granted - charged)
		if c := r.acct.explain; c != nil {
			c.Refund(r.Phase(), i, j, int64(granted-charged))
		}
	}
	if charged != 0 {
		r.acct.tmc.Add(int64(charged))
		if c := r.acct.explain; c != nil {
			c.Charge(r.Phase(), i, j, int64(charged))
		}
	}
	return v
}

// Draw purchases a batch of up to n preference microtasks for (i, j),
// attributing the charged cost to this runner's query. It is the
// budget-driven purchase path of algorithms that spend fixed workloads
// instead of running confidence-aware comparison processes (HYBRID).
func (r *Runner) Draw(i, j, n int) crowd.BagView { return r.draw(i, j, n) }

// Grade purchases one graded (absolute rating) microtask for item i,
// attributing its cost to this runner's query. It reports the rating and
// whether the purchase was granted.
func (r *Runner) Grade(i int) (float64, bool) {
	if r.acct.stopped.Load() {
		return 0, false
	}
	if r.acct.reserve(1) == 0 {
		r.Stop(ErrBudgetExhausted)
		return 0, false
	}
	v, ok := r.eng.Grade(i)
	if !ok {
		r.acct.refund(1)
		if c := r.acct.explain; c != nil {
			c.Refund(r.Phase(), i, -1, 1)
		}
		return v, false
	}
	r.acct.tmc.Add(1)
	if c := r.acct.explain; c != nil {
		c.ChargeGraded(r.Phase(), i)
	}
	return v, true
}

// QueryTMC returns the microtasks charged through this runner (this
// query), exact even while other queries share the engine.
func (r *Runner) QueryTMC() int64 { return r.acct.tmc.Load() }

// QueryRounds returns the latency rounds ticked through this runner.
func (r *Runner) QueryRounds() int64 { return r.acct.rounds.Load() }

// Rand returns the concurrency-safe control random source shared by
// every query on the engine. Control-flow randomness (shuffles, pivot
// picks) must come from here, never from Engine.Rand, once a session may
// run queries concurrently.
func (r *Runner) Rand() *crowd.ControlRand { return r.eng.Control() }

// execStep runs one blocking comparison step. While the query has a
// scheduler handle open, the step is routed through the pool so
// sequential Compare calls share fairly with other queries and count
// toward pool utilization; otherwise it runs directly. Only the query's
// control goroutine may reach here (never a pool task — tasks must not
// submit), and never with chain completions outstanding.
func (r *Runner) execStep(fn func()) {
	q := r.acct.handle()
	if q == nil {
		fn()
		return
	}
	q.Submit(sched.Task{Tag: -1, Run: fn})
	if tag := q.Next(); tag != -1 {
		panic("compare: execStep consumed a foreign completion; Compare must not run with chain tasks in flight")
	}
}

// Engine returns the underlying crowd engine.
func (r *Runner) Engine() *crowd.Engine { return r.eng }

// Err reports the platform failure that degraded the engine, or nil while
// it is healthy. Once non-nil, every comparison concludes best-effort on
// the evidence already purchased — exactly like an exhausted spending
// cap — and the caller should surface the partial result together with
// this error.
func (r *Runner) Err() error { return r.eng.Err() }

// Policy returns the decision policy in use (always a full Policy: plain
// testers were wrapped at construction).
func (r *Runner) Policy() Policy { return r.policy }

// PolicyName returns the name of the sampling-schedule policy in use
// ("fixed", "voi", "pac", ...) — the label comparison metrics and spans
// carry.
func (r *Runner) PolicyName() string { return r.policy.Name() }

// Tester returns the verdict estimator behind the policy: the wrapped
// tester for the fixed-step adapter, the policy itself for adaptive
// policies that embed their own stopping rule.
func (r *Runner) Tester() Tester { return testerOf(r.policy) }

// Params returns the execution parameters.
func (r *Runner) Params() Params { return r.params }

// Parallelism returns the resolved worker-pool bound for parallel
// comparison waves: Params.Parallelism, with 0 meaning GOMAXPROCS.
func (r *Runner) Parallelism() int {
	if p := r.params.Parallelism; p > 0 {
		return p
	}
	return runtime.GOMAXPROCS(0)
}

func canonical(i, j int) ([2]int, bool) {
	if i < j {
		return [2]int{i, j}, false
	}
	return [2]int{j, i}, true
}

// Concluded reports the memoized outcome for (i, j), if any. With a
// judgment store attached, a pair missing from the memo consults the
// store once per session: a fresh stored verdict is served (and
// memoized) at zero TMC, exactly as if a previous query in this session
// had concluded the pair.
//
// Derived sub-phase runners never consult the store: a sub-phase runs
// under a reduced per-pair budget, so a stored full-budget verdict would
// flip outcomes a cold sub-phase concluded as ties — diverging the
// query's control flow. Re-buying the sub-phase's (cheap, reduced-budget)
// evidence from the same deterministic per-pair streams keeps a warm
// query's every comparison outcome — and hence its top-k — byte-identical
// to the cold run's.
func (r *Runner) Concluded(i, j int) (Outcome, bool) {
	k, flip := canonical(i, j)
	s := &r.memo.stripes[stripeOf(k)]
	s.mu.RLock()
	o, ok := s.m[k]
	s.mu.RUnlock()
	if !ok {
		if r.js != nil && !r.derived {
			if so, served := r.storeServe(k); served {
				if flip {
					so = so.Flip()
				}
				return so, true
			}
		}
		return Tie, false
	}
	if flip {
		o = o.Flip()
	}
	return o, true
}

// remember memoizes a conclusion. The first writer wins: a concluded
// outcome never changes afterwards, so concurrent readers always observe
// a stable verdict.
func (r *Runner) remember(i, j int, o Outcome) {
	k, flip := canonical(i, j)
	if flip {
		o = o.Flip()
	}
	s := &r.memo.stripes[stripeOf(k)]
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[[2]int]Outcome)
	}
	if _, ok := s.m[k]; !ok {
		s.m[k] = o
	}
	s.mu.Unlock()
}

// budgetLeft returns how many more samples the pair may consume.
func (r *Runner) budgetLeft(n int) int {
	if r.params.B <= 0 {
		return int(^uint(0) >> 1) // effectively unlimited
	}
	return r.params.B - n
}

// Compare runs the full comparison process COMP(o_i, o_j) sequentially:
// it keeps purchasing policy-chosen batches until the policy concludes or
// declines to buy, advancing the latency clock by one round per batch.
// Concluded pairs are memoized; calling Compare again costs nothing.
func (r *Runner) Compare(i, j int) Outcome {
	if o, ok := r.Concluded(i, j); ok {
		r.memoHit(i, j)
		return o
	}
	var st *compState
	if r.instrumented() {
		st = r.beginComp(i, j)
	}
	v := r.eng.View(i, j)
	verify := r.takeVerify(i, j)
	for {
		if need := r.policy.Bootstrap(v); need > 0 {
			// Cold start: the policy's bootstrap workload arrives Step at a
			// time, so the granted samples cost ceil(granted/Step) batch
			// rounds (Step stays the latency constant η even when the
			// policy sizes purchases itself). Rounds are counted from what
			// the engine actually granted: a spending cap may truncate the
			// draw, and the ungranted remainder never occupied a round
			// (nor must it be re-counted if the loop re-enters this
			// branch). A stale store prior that only partly covers the
			// cold start is verified here — the purchase is the reduced
			// batch.
			verify = false
			before := v.N
			r.execStep(func() { v = r.draw(i, j, need) })
			granted := v.N - before
			if granted == 0 {
				// A global spending cap ran dry: best-effort tie, not
				// memoized — the pair itself is not statistically spent.
				r.finishComp(st, v, Tie, false)
				return Tie
			}
			rounds := (granted + r.params.Step - 1) / r.params.Step
			r.Tick(rounds)
			r.observeRound(st, v, rounds)
		} else if verify {
			// A stale store prior already covers the whole cold start: buy
			// one reduced verification batch before trusting the stopping
			// rule on decayed evidence alone.
			verify = false
			if n := r.policy.Next(v, r.budgetLeft(v.N)); n > 0 {
				before := v.N
				r.execStep(func() { v = r.draw(i, j, n) })
				if v.N == before {
					r.finishComp(st, v, Tie, false)
					return Tie
				}
				r.Tick(1)
				r.observeRound(st, v, 1)
			}
		}
		if o := r.policy.Test(v); o != Tie {
			r.remember(i, j, o)
			r.noteConclusion(i, j, o, false)
			r.finishComp(st, v, o, true)
			return o
		}
		n := r.policy.Next(v, r.budgetLeft(v.N))
		if n <= 0 {
			// The policy declines to buy: the budget ran dry, or an
			// adaptive policy judged the verdict unreachable within it.
			// Either way the pair concludes as a protocol-level tie.
			r.remember(i, j, Tie)
			r.noteConclusion(i, j, Tie, true)
			r.finishComp(st, v, Tie, true)
			return Tie
		}
		before := v.N
		r.execStep(func() { v = r.draw(i, j, n) })
		if v.N == before {
			// Spending cap exhausted mid-comparison: no round ran.
			r.finishComp(st, v, Tie, false)
			return Tie
		}
		r.Tick(1)
		r.observeRound(st, v, 1)
	}
}

// Advance performs one batch step of the comparison process for (i, j)
// without touching the latency clock: the first call purchases the
// policy's bootstrap workload (Algorithm 4's β ← I under the fixed
// schedule), subsequent calls one policy-sized batch. It returns the
// current outcome and whether the process is finished (concluded, budget
// exhausted, or the policy declined to keep buying). Callers running many
// pairs in parallel Tick the engine once per wave.
func (r *Runner) Advance(i, j int) (Outcome, bool) {
	if o, ok := r.Concluded(i, j); ok {
		r.memoHit(i, j)
		return o, true
	}
	var st *compState
	if r.instrumented() {
		st = r.compStateOf(i, j)
	}
	v := r.eng.View(i, j)
	// A stale store prior reaches here with its cold start (partly)
	// covered; the purchase below — the bootstrap remainder or one batch,
	// both reduced against a cold pair's full workload — is its
	// verification batch.
	r.takeVerify(i, j)
	n := r.policy.Bootstrap(v)
	if n <= 0 {
		n = r.policy.Next(v, r.budgetLeft(v.N))
	}
	if left := r.budgetLeft(v.N); n > left {
		n = left
	}
	if n > 0 {
		before := v.N
		v = r.draw(i, j, n)
		if v.N == before {
			// Global spending cap exhausted: report the pair finished
			// (best effort) without memoizing a statistical conclusion.
			o := r.policy.Test(v)
			if st != nil {
				r.finishComp(st, v, o, false)
				r.dropCompState(i, j)
			}
			return o, true
		}
		r.observeRound(st, v, 1)
	}
	if o := r.policy.Test(v); o != Tie {
		r.remember(i, j, o)
		r.noteConclusion(i, j, o, false)
		if st != nil {
			r.finishComp(st, v, o, true)
			r.dropCompState(i, j)
		}
		return o, true
	}
	if r.policy.Next(v, r.budgetLeft(v.N)) <= 0 {
		// No further purchase is coming — the budget ran dry, or an
		// adaptive policy judged the verdict unreachable within it: the
		// pair concludes as a protocol-level tie.
		r.remember(i, j, Tie)
		r.noteConclusion(i, j, Tie, true)
		if st != nil {
			r.finishComp(st, v, Tie, true)
			r.dropCompState(i, j)
		}
		return Tie, true
	}
	return Tie, false
}

// TestOnly applies the policy to the samples already purchased for (i, j)
// without buying anything and without memoizing.
func (r *Runner) TestOnly(i, j int) Outcome {
	return r.policy.Test(r.eng.View(i, j))
}

// Leaning returns the direction currently suggested by the sample mean of
// (i, j), regardless of confidence: FirstWins if the mean (toward i) is
// positive, SecondWins if negative, Tie if zero or never sampled. It is the
// tie-breaking heuristic used when a budget-exhausted pair must still be
// placed in an order.
func (r *Runner) Leaning(i, j int) Outcome {
	v := r.eng.View(i, j)
	switch {
	case v.Mean > 0:
		return FirstWins
	case v.Mean < 0:
		return SecondWins
	default:
		return Tie
	}
}

// Workload returns the number of microtasks purchased so far for the pair.
func (r *Runner) Workload(i, j int) int { return r.eng.View(i, j).N }

// ForgetConclusions clears the outcome memo — from the session runner,
// including every per-policy side table — while keeping all purchased
// samples, letting a caller re-judge pairs under a different policy or
// budget against the same bags. It must not race with in-flight waves.
func (r *Runner) ForgetConclusions() {
	r.memo.clear()
}
