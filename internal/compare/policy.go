package compare

import (
	"math"

	"crowdtopk/internal/crowd"
	"crowdtopk/internal/stats"
)

// Outcome is the conclusion of a comparison process for an ordered pair
// (i, j): whether the first item wins, the second wins, or the pair is (so
// far, or under budget) indistinguishable.
type Outcome int8

const (
	// Tie means no conclusion can be drawn from the samples seen so far.
	Tie Outcome = 0
	// FirstWins means o_i ≻ o_j at the requested confidence.
	FirstWins Outcome = 1
	// SecondWins means o_i ≺ o_j at the requested confidence.
	SecondWins Outcome = -1
)

// Flip returns the outcome as seen from the opposite orientation.
func (o Outcome) Flip() Outcome { return -o }

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case FirstWins:
		return "first-wins"
	case SecondWins:
		return "second-wins"
	default:
		return "tie"
	}
}

// Tester decides, from the purchased samples of a pair, whether a winner
// can be declared at the tester's confidence level. Test receives the bag
// view oriented toward the first item of the pair. Testers are pure: they
// never purchase samples. The paper's five estimators (Student, Stein,
// Hoeffding, ...) are Testers; the sampling schedule around them is the
// Policy's job.
type Tester interface {
	// Name identifies the tester in reports ("student", "stein", ...).
	Name() string
	// MinSamples is the smallest bag size the tester can decide on.
	MinSamples() int
	// Test returns FirstWins/SecondWins when the samples support a
	// conclusion at the tester's confidence level, Tie otherwise.
	Test(v crowd.BagView) Outcome
}

// Policy owns the full per-pair decision of a comparison process: the
// verdict test (embedded Tester) plus the sampling schedule — how many
// samples to buy before the first test, and how large the next batch
// should be given the evidence so far. The Runner alternates Test and
// Bootstrap/Next until the policy concludes or declines to buy.
//
// Policies must be pure, deterministic functions of the bag view and the
// remaining budget: the Runner calls them concurrently from many
// goroutines and replays them against deterministic sample streams, so a
// policy that kept per-pair mutable state would both race and break
// byte-identical replay. Prior evidence (jstore-seeded posteriors) is
// already folded into the bag view.
type Policy interface {
	Tester
	// Bootstrap returns how many samples the pair still needs before the
	// stopping rule is first consulted — the cold-start workload. Zero or
	// negative means the bag is past cold start.
	Bootstrap(v crowd.BagView) int
	// Next returns the size of the next batch to purchase for a pair the
	// test left undecided, given the remaining per-pair budget left
	// (left may be negative when a seeded prior overshot the budget).
	// Returning <= 0 declines the purchase: the Runner concludes the pair
	// as a budget-exhausted tie. Adaptive policies use this to abandon
	// pairs whose projected cost to a verdict exceeds what is left.
	Next(v crowd.BagView, left int) int
}

// Student implements Algorithm 1 (STUDENTCOMP): conclude when the
// Student-t confidence interval of the preference mean excludes 0.
type Student struct {
	tt   *stats.TTable
	name string
}

// NewStudent returns the Student policy at significance level alpha
// (confidence 1−alpha).
func NewStudent(alpha float64) *Student {
	return &Student{tt: stats.NewTTable(alpha), name: "student"}
}

// NewStudentOneSided returns the half-closed-interval variant the paper
// sketches in §3.1: instead of requiring the symmetric two-sided interval
// to exclude 0, each direction is tested with a one-sided bound at level
// α, i.e. the critical value t_{α,n−1} instead of t_{α/2,n−1}. The wrong
// direction is still concluded with probability at most α, but the
// tighter bound stops comparisons earlier — the paper's "the cumulative
// probability of [the] half-closed confidence interval can be larger than
// 1−α which improves the confidence".
func NewStudentOneSided(alpha float64) *Student {
	if alpha >= 0.5 {
		panic("compare: NewStudentOneSided requires alpha < 0.5")
	}
	// TTable stores two-sided critical values t_{a/2, n-1}; requesting
	// level 2α yields the one-sided t_{α, n-1}.
	return &Student{tt: stats.NewTTable(2 * alpha), name: "student-onesided"}
}

// Name implements Tester.
func (s *Student) Name() string { return s.name }

// MinSamples implements Tester. Two samples are the bare minimum for a
// sample standard deviation; the Runner's I parameter enforces the
// practical minimum of 30.
func (s *Student) MinSamples() int { return 2 }

// HalfWidth implements HalfWidther: the Student-t confidence-interval
// half-width at the current sample size (infinite below two samples).
func (s *Student) HalfWidth(v crowd.BagView) float64 {
	if v.N < 2 {
		return math.Inf(1)
	}
	return s.tt.Critical(v.N-1) * v.SD / math.Sqrt(float64(v.N))
}

// Test implements Tester.
func (s *Student) Test(v crowd.BagView) Outcome {
	if v.N < 2 {
		return Tie
	}
	half := s.HalfWidth(v)
	switch {
	case v.Mean-half > 0:
		return FirstWins
	case v.Mean+half < 0:
		return SecondWins
	default:
		return Tie
	}
}

// Stein implements Algorithm 5 (STEINCOMP): Stein's estimation recast as a
// progressive stopping rule. The target interval half-width L is kept just
// below |x̄| so that the interval always excludes 0; the rule stops as soon
// as the current sample size supports that width.
type Stein struct {
	tt *stats.TTable
	// eps is the paper's small positive ε keeping the interval strictly
	// away from 0.
	eps float64
}

// NewStein returns the Stein policy at significance level alpha.
func NewStein(alpha float64) *Stein {
	return &Stein{tt: stats.NewTTable(alpha), eps: 1e-9}
}

// Name implements Tester.
func (s *Stein) Name() string { return "stein" }

// HalfWidth implements HalfWidther. Stein's rule targets a data-dependent
// width L rather than a fixed one; the reported trajectory is the plain
// t-interval half-width of the current bag, the quantity the rule is
// racing against |x̄|.
func (s *Stein) HalfWidth(v crowd.BagView) float64 {
	if v.N < 2 {
		return math.Inf(1)
	}
	return s.tt.Critical(v.N-1) * v.SD / math.Sqrt(float64(v.N))
}

// MinSamples implements Tester.
func (s *Stein) MinSamples() int { return 2 }

// Test implements Tester.
func (s *Stein) Test(v crowd.BagView) Outcome {
	if v.N < 2 {
		return Tie
	}
	l := math.Abs(v.Mean) - s.eps
	if l <= 0 {
		return Tie
	}
	t := s.tt.Critical(v.N - 1)
	if v.SD*v.SD/(l*l)*t*t > float64(v.N) {
		return Tie // workload not yet sufficient for width L
	}
	if v.Mean > 0 {
		return FirstWins
	}
	return SecondWins
}

// anytimeAlpha splits a significance level over doubling epochs so the
// Hoeffding test stays valid under optional stopping: the epoch of sample
// size n is ℓ = ⌈log₂ n⌉ + 1 and receives α/(ℓ(ℓ+1)), which sums to at
// most α over all epochs.
func anytimeAlpha(alpha float64, n int) float64 {
	l := 1
	for p := 1; p < n; p *= 2 {
		l++
	}
	return alpha / float64(l*(l+1))
}

// Hoeffding implements the pairwise binary judgment comparison: votes are
// the signs of the preferences (±1, zeros dropped), and the decision uses
// the distribution-free Hoeffding confidence interval on the vote mean.
//
// Because the rule is applied after every sample, the interval carries an
// anytime-valid racing correction in the style of Busa-Fekete et al.: the
// significance is split over doubling epochs, α_n = α/(ℓ(ℓ+1)) with
// ℓ = ⌈log₂ n⌉ + 1, which union-bounds over all stopping times at only a
// log-log price. This correction is what makes binary judgments several
// times more expensive than preference judgments in Table 3 — the
// preference processes use the paper's plain fixed-n t-interval
// (Algorithm 1) and pay no such premium.
type Hoeffding struct {
	alpha float64
	half  *stats.F64Cache // anytime half-width keyed by vote count
}

// NewHoeffding returns the Hoeffding policy at significance level alpha.
func NewHoeffding(alpha float64) *Hoeffding {
	if alpha <= 0 || alpha >= 1 {
		panic("compare: NewHoeffding requires alpha in (0,1)")
	}
	return &Hoeffding{alpha: alpha, half: newHalfWidthCache(alpha)}
}

// newHalfWidthCache memoizes the anytime-corrected Hoeffding half-width by
// sample size, mirroring stats.TTable: the log/sqrt pair and the epoch
// bookkeeping leave the per-test hot path after the first visit to each n.
func newHalfWidthCache(alpha float64) *stats.F64Cache {
	return stats.NewF64Cache(func(n int) float64 {
		return stats.HoeffdingHalfWidth(n, 2, anytimeAlpha(alpha, n))
	})
}

// Name implements Tester.
func (h *Hoeffding) Name() string { return "hoeffding" }

// HalfWidth implements HalfWidther: the anytime-corrected Hoeffding
// half-width at the current vote count (infinite before the first vote).
func (h *Hoeffding) HalfWidth(v crowd.BagView) float64 {
	if v.BinN < 1 {
		return math.Inf(1)
	}
	return h.half.Get(v.BinN)
}

// MinSamples implements Tester.
func (h *Hoeffding) MinSamples() int { return 1 }

// Test implements Tester.
func (h *Hoeffding) Test(v crowd.BagView) Outcome {
	if v.BinN < 1 {
		return Tie
	}
	half := h.half.Get(v.BinN)
	switch {
	case v.BinMean-half > 0:
		return FirstWins
	case v.BinMean+half < 0:
		return SecondWins
	default:
		return Tie
	}
}

// HoeffdingPref applies the distribution-free Hoeffding interval directly
// to the *preference* values (not their signs). It is the alternative the
// paper's footnote 3 suggests for preferences that are not normally
// distributed.
//
// A perhaps surprising consequence of range-only bounds: on symmetric
// [-1, 1]-censored preferences, the sign transform concentrates the mean
// at least as much as the clipped magnitudes do (μ̃ = 2Φ(μ/σ)−1 versus the
// censored mean), so the plain binary Hoeffding policy never loses to
// this one — the preference model's Table 3 advantage is created by
// variance-adaptive (Student/Stein) intervals, not by the magnitudes
// alone. HoeffdingPref is provided for completeness and for preference
// distributions that are asymmetric or unclipped.
type HoeffdingPref struct {
	alpha float64
	half  *stats.F64Cache
}

// NewHoeffdingPref returns the distribution-free preference policy at
// significance level alpha.
func NewHoeffdingPref(alpha float64) *HoeffdingPref {
	if alpha <= 0 || alpha >= 1 {
		panic("compare: NewHoeffdingPref requires alpha in (0,1)")
	}
	return &HoeffdingPref{alpha: alpha, half: newHalfWidthCache(alpha)}
}

// Name implements Tester.
func (h *HoeffdingPref) Name() string { return "hoeffding-pref" }

// HalfWidth implements HalfWidther.
func (h *HoeffdingPref) HalfWidth(v crowd.BagView) float64 {
	if v.N < 1 {
		return math.Inf(1)
	}
	return h.half.Get(v.N)
}

// MinSamples implements Tester.
func (h *HoeffdingPref) MinSamples() int { return 1 }

// Test implements Tester.
func (h *HoeffdingPref) Test(v crowd.BagView) Outcome {
	if v.N < 1 {
		return Tie
	}
	half := h.half.Get(v.N)
	switch {
	case v.Mean-half > 0:
		return FirstWins
	case v.Mean+half < 0:
		return SecondWins
	default:
		return Tie
	}
}
