package compare

import (
	"testing"

	"crowdtopk/internal/crowd"
)

func TestOneSidedCheaperThanTwoSidedSameAccuracy(t *testing.T) {
	// §3.1's half-closed-interval remark: one-sided tests stop earlier at
	// the same per-direction error guarantee.
	avgFor := func(p Tester) (work float64, wrong int) {
		const runs = 40
		total := 0
		for s := 0; s < runs; s++ {
			r := NewRunner(pairEngine(0.12, 0.4, int64(9000+s)), p, Params{B: 0, I: 30, Step: 1})
			if r.Compare(0, 1) != FirstWins {
				wrong++
			}
			total += r.Workload(0, 1)
		}
		return float64(total) / runs, wrong
	}
	twoW, twoWrong := avgFor(NewStudent(0.05))
	oneW, oneWrong := avgFor(NewStudentOneSided(0.05))
	if oneW >= twoW {
		t.Errorf("one-sided workload %v not below two-sided %v", oneW, twoW)
	}
	if oneWrong > twoWrong+3 {
		t.Errorf("one-sided errors %d much above two-sided %d", oneWrong, twoWrong)
	}
}

func TestOneSidedName(t *testing.T) {
	if got := NewStudentOneSided(0.05).Name(); got != "student-onesided" {
		t.Errorf("Name = %q", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("alpha >= 0.5 accepted")
			}
		}()
		NewStudentOneSided(0.5)
	}()
}

func TestHoeffdingPrefDecides(t *testing.T) {
	p := NewHoeffdingPref(0.05)
	if p.Name() != "hoeffding-pref" || p.MinSamples() != 1 {
		t.Errorf("unexpected metadata: %q %d", p.Name(), p.MinSamples())
	}
	if got := p.Test(crowd.BagView{}); got != Tie {
		t.Errorf("empty bag = %v", got)
	}
	// Large-mean bag decides regardless of SD (distribution-free).
	if got := p.Test(crowd.BagView{N: 200, Mean: 0.8, SD: 0}); got != FirstWins {
		t.Errorf("wide-mean bag = %v, want FirstWins", got)
	}
	if got := p.Test(crowd.BagView{N: 200, Mean: -0.8}); got != SecondWins {
		t.Errorf("negative bag = %v, want SecondWins", got)
	}
}

func TestHoeffdingPrefMoreExpensiveThanStudentOnGaussians(t *testing.T) {
	// On well-behaved Gaussian preferences the variance-blind interval
	// must be wider, hence costlier — the reason the paper defaults to
	// Student and reserves Hoeffding for non-normal preferences.
	avgFor := func(p Tester) float64 {
		const runs = 25
		total := 0
		for s := 0; s < runs; s++ {
			r := NewRunner(pairEngine(0.15, 0.3, int64(9500+s)), p, Params{B: 0, I: 30, Step: 1})
			r.Compare(0, 1)
			total += r.Workload(0, 1)
		}
		return float64(total) / runs
	}
	student := avgFor(NewStudent(0.05))
	hp := avgFor(NewHoeffdingPref(0.05))
	if hp <= student {
		t.Errorf("hoeffding-pref workload %v not above student %v", hp, student)
	}
}

func TestHoeffdingPrefVsBinaryCrossover(t *testing.T) {
	// Both policies are distribution-free over the same range, so their
	// relative cost is governed by which transform concentrates the mean
	// more. Binarization maps μ to μ̃ = 2Φ(μ/σ)−1 ≈ 0.8·μ/σ: for σ ≪ 1 it
	// AMPLIFIES the signal (μ̃ > μ) and the binary test wins; for noisy
	// workers (σ near the range scale) μ̃ < μ and keeping magnitudes wins.
	avgFor := func(p Tester, sigma float64) float64 {
		const runs = 15
		total := 0
		for s := 0; s < runs; s++ {
			r := NewRunner(pairEngine(0.1, sigma, int64(9700+s)), p, Params{B: 0, I: 30, Step: 1})
			r.Compare(0, 1)
			total += r.Workload(0, 1)
		}
		return float64(total) / runs
	}
	// Crisp workers: binarization amplifies strongly (μ̃ ≈ 0.23 vs μ = 0.1)
	// and binary wins by a wide margin.
	if pref, binary := avgFor(NewHoeffdingPref(0.05), 0.35), avgFor(NewHoeffding(0.05), 0.35); binary >= pref {
		t.Errorf("crisp workers: binary %v not below magnitude %v", binary, pref)
	}
	// Noisy workers: censoring at ±1 dilutes the preference mean
	// (m_c ≈ 0.062) below even the binarized mean (μ̃ ≈ 0.072), so binary
	// stays ahead — only much closer. This is why Table 3's preference
	// advantage needs the variance-adaptive Student interval: under
	// range-only Hoeffding bounds, magnitudes never pay.
	pref, binary := avgFor(NewHoeffdingPref(0.05), 1.1), avgFor(NewHoeffding(0.05), 1.1)
	if binary >= pref {
		t.Errorf("noisy workers: binary %v not below magnitude %v", binary, pref)
	}
	if pref >= 4*binary {
		t.Errorf("noisy workers: gap %v vs %v should narrow dramatically", pref, binary)
	}
}

func TestHoeffdingPrefPanicsOnBadAlpha(t *testing.T) {
	for _, a := range []float64{0, 1, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHoeffdingPref(%v) did not panic", a)
				}
			}()
			NewHoeffdingPref(a)
		}()
	}
}

// TestOptionalStoppingInflation quantifies a property of Algorithm 1 the
// paper leaves implicit: re-testing the fixed-n t-interval after every
// batch inflates the false-conclusion probability on a truly tied pair
// beyond the nominal α (the tests are strongly correlated, so far less
// than a union bound, but measurably more than α). The library keeps the
// paper's rule as written; this test pins the actual behavior so the
// inflation is documented, bounded, and visible if it ever regresses.
func TestOptionalStoppingInflation(t *testing.T) {
	const (
		alpha = 0.05
		runs  = 400
	)
	falseCalls := 0
	for s := 0; s < runs; s++ {
		// A genuinely tied pair: μ = 0.
		r := NewRunner(pairEngine(0, 0.4, int64(20000+s)), NewStudent(alpha), Params{B: 1000, I: 30, Step: 30})
		if r.Compare(0, 1) != Tie {
			falseCalls++
		}
	}
	frac := float64(falseCalls) / runs
	// The single-test guarantee would give ≤ α; ~34 correlated re-tests
	// land empirically around 2-4α. Alert on both regressions: losing the
	// inflation (suspiciously clean) or blowing far past it.
	if frac > 6*alpha {
		t.Errorf("false-conclusion rate %.3f far above the expected optional-stopping inflation", frac)
	}
	t.Logf("tied pair false-conclusion rate %.3f (nominal α=%.2f): Algorithm 1's optional-stopping inflation", frac, alpha)
}
