package compare

import (
	"testing"
)

func newRunner(mu, sigma float64, p Params, seed int64) *Runner {
	return NewRunner(pairEngine(mu, sigma, seed), NewStudent(0.02), p)
}

func TestCompareEasyPairUsesMinimumWorkload(t *testing.T) {
	r := newRunner(0.6, 0.05, Params{B: 1000, I: 30, Step: 30}, 1)
	if got := r.Compare(0, 1); got != FirstWins {
		t.Fatalf("Compare = %v, want FirstWins", got)
	}
	if w := r.Workload(0, 1); w != 30 {
		t.Errorf("workload = %d, want 30 (decided on the initial batch)", w)
	}
	if rounds := r.Engine().Rounds(); rounds != 1 {
		t.Errorf("rounds = %d, want 1", rounds)
	}
}

func TestCompareHardPairExhaustsBudget(t *testing.T) {
	r := newRunner(0, 0.3, Params{B: 120, I: 30, Step: 30}, 2)
	if got := r.Compare(0, 1); got != Tie {
		t.Fatalf("Compare on mean-0 pair = %v, want Tie", got)
	}
	if w := r.Workload(0, 1); w != 120 {
		t.Errorf("workload = %d, want full budget 120", w)
	}
	// 1 initial round + 3 extra batches.
	if rounds := r.Engine().Rounds(); rounds != 4 {
		t.Errorf("rounds = %d, want 4", rounds)
	}
}

func TestCompareMemoizesConclusions(t *testing.T) {
	r := newRunner(0.4, 0.2, Params{B: 1000, I: 30, Step: 30}, 3)
	first := r.Compare(0, 1)
	cost := r.Engine().TMC()
	rounds := r.Engine().Rounds()
	again := r.Compare(0, 1)
	if again != first {
		t.Errorf("memoized outcome changed: %v vs %v", again, first)
	}
	if r.Engine().TMC() != cost || r.Engine().Rounds() != rounds {
		t.Errorf("repeat comparison spent money or time: TMC %d→%d, rounds %d→%d",
			cost, r.Engine().TMC(), rounds, r.Engine().Rounds())
	}
	// Mirror orientation is also free and flipped.
	if got := r.Compare(1, 0); got != first.Flip() {
		t.Errorf("mirror comparison = %v, want %v", got, first.Flip())
	}
	if r.Engine().TMC() != cost {
		t.Error("mirror comparison spent money")
	}
}

func TestCompareCorrectDirectionBothOrientations(t *testing.T) {
	r := newRunner(0.3, 0.2, Params{B: 4000, I: 30, Step: 30}, 4)
	if got := r.Compare(0, 1); got != FirstWins {
		t.Errorf("Compare(0,1) = %v, want FirstWins", got)
	}
	r2 := newRunner(0.3, 0.2, Params{B: 4000, I: 30, Step: 30}, 5)
	if got := r2.Compare(1, 0); got != SecondWins {
		t.Errorf("Compare(1,0) = %v, want SecondWins", got)
	}
}

func TestCompareUnlimitedBudgetAlwaysConcludesOnSeparatedPair(t *testing.T) {
	r := newRunner(0.05, 0.5, Params{B: 0, I: 30, Step: 1}, 6)
	if got := r.Compare(0, 1); got != FirstWins {
		t.Errorf("Compare with B=∞ = %v, want FirstWins", got)
	}
	if w := r.Workload(0, 1); w <= 30 {
		t.Errorf("hard pair workload = %d, expected > I", w)
	}
}

func TestAdvanceStepsBatchAtATime(t *testing.T) {
	r := newRunner(0, 0.3, Params{B: 150, I: 30, Step: 30}, 7)
	// First advance purchases I samples.
	if _, done := r.Advance(0, 1); done {
		t.Fatal("mean-0 pair should not be done after the initial batch")
	}
	if w := r.Workload(0, 1); w != 30 {
		t.Errorf("workload after first advance = %d, want 30", w)
	}
	// Drive to completion; budget must be respected exactly.
	steps := 1
	for {
		_, done := r.Advance(0, 1)
		steps++
		if done {
			break
		}
		if steps > 100 {
			t.Fatal("Advance never finished")
		}
	}
	if w := r.Workload(0, 1); w != 150 {
		t.Errorf("workload at exhaustion = %d, want 150", w)
	}
	if r.Engine().Rounds() != 0 {
		t.Errorf("Advance must not tick the clock, rounds = %d", r.Engine().Rounds())
	}
	// Once finished, further advances are free no-ops.
	cost := r.Engine().TMC()
	o, done := r.Advance(0, 1)
	if !done || o != Tie {
		t.Errorf("advance after exhaustion = (%v,%v), want (Tie,true)", o, done)
	}
	if r.Engine().TMC() != cost {
		t.Error("advance after exhaustion spent money")
	}
}

func TestAdvanceEasyPairFinishesOnInitialBatch(t *testing.T) {
	r := newRunner(0.7, 0.05, Params{B: 1000, I: 30, Step: 30}, 8)
	o, done := r.Advance(0, 1)
	if !done || o != FirstWins {
		t.Errorf("easy pair advance = (%v,%v), want (FirstWins,true)", o, done)
	}
	if w := r.Workload(0, 1); w != 30 {
		t.Errorf("workload = %d, want 30", w)
	}
}

func TestLeaningAndTestOnlyAreFree(t *testing.T) {
	r := newRunner(0.4, 0.2, Params{B: 1000, I: 30, Step: 30}, 9)
	r.Compare(0, 1)
	cost := r.Engine().TMC()
	if got := r.Leaning(0, 1); got != FirstWins {
		t.Errorf("Leaning = %v, want FirstWins", got)
	}
	if got := r.Leaning(1, 0); got != SecondWins {
		t.Errorf("mirror Leaning = %v, want SecondWins", got)
	}
	if got := r.TestOnly(0, 1); got != FirstWins {
		t.Errorf("TestOnly = %v, want FirstWins", got)
	}
	if r.Engine().TMC() != cost {
		t.Error("Leaning/TestOnly spent money")
	}
	// Unsampled pair leans nowhere.
	r2 := newRunner(0.4, 0.2, Params{B: 1000, I: 30, Step: 30}, 10)
	if got := r2.Leaning(0, 1); got != Tie {
		t.Errorf("Leaning on empty bag = %v, want Tie", got)
	}
}

func TestForgetConclusionsKeepsSamples(t *testing.T) {
	r := newRunner(0.4, 0.2, Params{B: 1000, I: 30, Step: 30}, 11)
	r.Compare(0, 1)
	w := r.Workload(0, 1)
	cost := r.Engine().TMC()
	r.ForgetConclusions()
	if _, ok := r.Concluded(0, 1); ok {
		t.Error("conclusion survived ForgetConclusions")
	}
	if r.Workload(0, 1) != w {
		t.Error("samples did not survive ForgetConclusions")
	}
	// Re-comparing re-tests the existing bag; an easy decided pair needs no
	// new purchases.
	if got := r.Compare(0, 1); got != FirstWins {
		t.Errorf("re-compare = %v, want FirstWins", got)
	}
	if r.Engine().TMC() != cost {
		t.Errorf("re-compare on sufficient bag spent money: %d → %d", cost, r.Engine().TMC())
	}
}

func TestRunnerAccuracyAtConfidenceLevel(t *testing.T) {
	// Monte-Carlo: on a genuinely separated pair, conclusions at 1−α = 0.95
	// must be correct well over 95% of the time (Table 3 reports ≥ 0.99).
	const runs = 300
	wrong := 0
	for s := 0; s < runs; s++ {
		r := NewRunner(pairEngine(0.15, 0.4, int64(1000+s)), NewStudent(0.05), Params{B: 0, I: 30, Step: 1})
		if r.Compare(0, 1) != FirstWins {
			wrong++
		}
	}
	if frac := float64(wrong) / runs; frac > 0.05 {
		t.Errorf("error rate %.3f exceeds α = 0.05", frac)
	}
}

func TestWorkloadScalesWithDifficulty(t *testing.T) {
	// Closer means ⇒ more microtasks (the paper's Messi/Ronaldo point).
	avg := func(mu float64) float64 {
		total := 0
		const runs = 40
		for s := 0; s < runs; s++ {
			r := NewRunner(pairEngine(mu, 0.4, int64(2000+s)), NewStudent(0.05), Params{B: 0, I: 30, Step: 1})
			r.Compare(0, 1)
			total += r.Workload(0, 1)
		}
		return float64(total) / runs
	}
	easy := avg(0.5)
	hard := avg(0.05)
	if hard <= 2*easy {
		t.Errorf("hard pair workload %v not ≫ easy pair workload %v", hard, easy)
	}
}

func TestStepOneMatchesAlgorithmOneGranularity(t *testing.T) {
	// With Step=1 the runner must stop at the exact first sample size where
	// the CI excludes zero — replay the decision on a copy of the samples.
	eng := pairEngine(0.2, 0.5, 77)
	r := NewRunner(eng, NewStudent(0.05), Params{B: 0, I: 30, Step: 1})
	r.Compare(0, 1)
	w := r.Workload(0, 1)
	if w < 30 {
		t.Fatalf("workload %d below I", w)
	}
	if w > 30 {
		// At w-1 samples the policy must have been undecided. We can't
		// rewind the engine, but we can check the final state decides.
		if r.TestOnly(0, 1) == Tie {
			t.Error("runner stopped while policy still undecided")
		}
	}
}

func TestRunnerPanics(t *testing.T) {
	eng := pairEngine(0.2, 0.2, 1)
	assertPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanic("nil engine", func() { NewRunner(nil, NewStudent(0.05), DefaultParams()) })
	assertPanic("nil policy", func() { NewRunner(eng, nil, DefaultParams()) })
	assertPanic("bad I", func() { NewRunner(eng, NewStudent(0.05), Params{B: 100, I: 1, Step: 1}) })
	assertPanic("bad Step", func() { NewRunner(eng, NewStudent(0.05), Params{B: 100, I: 30, Step: 0}) })
	assertPanic("B<I", func() { NewRunner(eng, NewStudent(0.05), Params{B: 10, I: 30, Step: 1}) })
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.B != 1000 || p.I != 30 || p.Step != 30 {
		t.Errorf("DefaultParams = %+v, want B=1000 I=30 Step=30", p)
	}
}

func TestHoeffdingRunnerNeedsMoreThanStudent(t *testing.T) {
	// The core Table 3 claim at pair level: binary judgments cost several
	// times more microtasks than preference judgments.
	avgFor := func(p Tester) float64 {
		total := 0
		const runs = 25
		for s := 0; s < runs; s++ {
			r := NewRunner(pairEngine(0.12, 0.35, int64(3000+s)), p, Params{B: 0, I: 30, Step: 1})
			r.Compare(0, 1)
			total += r.Workload(0, 1)
		}
		return float64(total) / runs
	}
	student := avgFor(NewStudent(0.05))
	hoeffding := avgFor(NewHoeffding(0.05))
	if hoeffding < 2*student {
		t.Errorf("hoeffding workload %v not ≫ student workload %v", hoeffding, student)
	}
}
