package compare

import (
	"math/rand"
	"reflect"
	"testing"

	"crowdtopk/internal/crowd"
)

// legacyCompare is the pre-policy-layer comparison loop, embedded
// verbatim as the refactor's equivalence reference: buy up to I samples
// to overcome cold start (the granted samples cost ceil(granted/Step)
// batch rounds), then alternate Test with Step-sized purchases clamped
// to the remaining per-pair budget, concluding a tie when it runs dry.
// The refactored Runner routed through the FixedStep adapter must
// reproduce this loop byte for byte — same verdicts, same TMC, same
// audit log, same latency rounds.
func legacyCompare(eng *crowd.Engine, t Tester, prm Params, i, j int) Outcome {
	budgetLeft := func(n int) int {
		if prm.B <= 0 {
			return int(^uint(0) >> 1)
		}
		return prm.B - n
	}
	v := eng.View(i, j)
	for {
		if need := prm.I - v.N; need > 0 {
			before := v.N
			v, _ = eng.DrawN(i, j, need)
			granted := v.N - before
			if granted == 0 {
				return Tie
			}
			eng.Tick((granted + prm.Step - 1) / prm.Step)
		}
		if o := t.Test(v); o != Tie {
			return o
		}
		left := budgetLeft(v.N)
		if left <= 0 {
			return Tie
		}
		n := prm.Step
		if n > left {
			n = left
		}
		before := v.N
		v, _ = eng.DrawN(i, j, n)
		if v.N == before {
			return Tie
		}
		eng.Tick(1)
	}
}

// equivalenceEstimators is the full legacy estimator roster the
// fixed-step adapter must keep byte-identical.
var equivalenceEstimators = map[string]func(alpha float64) Tester{
	"student":          func(a float64) Tester { return NewStudent(a) },
	"student-onesided": func(a float64) Tester { return NewStudentOneSided(a) },
	"stein":            func(a float64) Tester { return NewStein(a) },
	"hoeffding":        func(a float64) Tester { return NewHoeffding(a) },
	"hoeffding-pref":   func(a float64) Tester { return NewHoeffdingPref(a) },
}

// TestRunnerMatchesLegacyReferenceLoop runs the same pair workload —
// decisive pairs, near-ties that exhaust the budget, and everything in
// between — through the refactored Runner and through the embedded
// legacy loop on twin engines (same oracle, same seed, so identical
// sample streams), for every legacy estimator, and requires the two
// executions to be indistinguishable: verdicts, TMC, rounds and the
// full audit log.
func TestRunnerMatchesLegacyReferenceLoop(t *testing.T) {
	const (
		nItems = 6
		alpha  = 0.05
	)
	// sigma 0.6 against the 0.15-per-rank gap mixes quick conclusions on
	// distant pairs with budget-exhausted ties on adjacent ones.
	params := Params{B: 200, I: 30, Step: 30}
	for name, mk := range equivalenceEstimators {
		t.Run(name, func(t *testing.T) {
			refEng := crowd.NewEngine(gaussItems{nItems, 0.6}, rand.New(rand.NewSource(97)))
			refEng.EnableLog()
			newEng := crowd.NewEngine(gaussItems{nItems, 0.6}, rand.New(rand.NewSource(97)))
			newEng.EnableLog()
			r := NewRunner(newEng, mk(alpha), params)

			for i := 0; i < nItems; i++ {
				for j := i + 1; j < nItems; j++ {
					want := legacyCompare(refEng, mk(alpha), params, i, j)
					got := r.Compare(i, j)
					if got != want {
						t.Errorf("Compare(%d,%d) = %v, legacy %v", i, j, got, want)
					}
				}
			}
			if g, w := newEng.TMC(), refEng.TMC(); g != w {
				t.Errorf("TMC = %d, legacy %d", g, w)
			}
			if g, w := newEng.Rounds(), refEng.Rounds(); g != w {
				t.Errorf("rounds = %d, legacy %d", g, w)
			}
			if w := refEng.TMC(); w == 0 {
				t.Fatal("reference run spent nothing; the scenario is vacuous")
			}
			if !reflect.DeepEqual(newEng.Log(), refEng.Log()) {
				t.Errorf("audit logs diverge: %d vs %d records", len(newEng.Log()), len(refEng.Log()))
			}
		})
	}
}

// TestRunnerMatchesLegacyReferenceLoopUnlimited covers the B <= 0
// (unlimited budget) branch, where the legacy exhaustion check `left <=
// 0` can never fire and neither may FixedStep.Next returning <= 0.
func TestRunnerMatchesLegacyReferenceLoopUnlimited(t *testing.T) {
	params := Params{B: 0, I: 30, Step: 30}
	refEng := crowd.NewEngine(gaussItems{3, 0.3}, rand.New(rand.NewSource(98)))
	refEng.EnableLog()
	newEng := crowd.NewEngine(gaussItems{3, 0.3}, rand.New(rand.NewSource(98)))
	newEng.EnableLog()
	r := NewRunner(newEng, NewStudent(0.05), params)
	for i := 0; i < 2; i++ {
		want := legacyCompare(refEng, NewStudent(0.05), params, i, i+1)
		if got := r.Compare(i, i+1); got != want {
			t.Errorf("Compare(%d,%d) = %v, legacy %v", i, i+1, got, want)
		}
	}
	if g, w := newEng.TMC(), refEng.TMC(); g != w {
		t.Errorf("TMC = %d, legacy %d", g, w)
	}
	if !reflect.DeepEqual(newEng.Log(), refEng.Log()) {
		t.Error("audit logs diverge under unlimited budget")
	}
}
