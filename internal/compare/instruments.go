package compare

import (
	"fmt"
	"math"

	"crowdtopk/internal/crowd"
	"crowdtopk/internal/obs"
	qlog "crowdtopk/internal/obs/log"
	"crowdtopk/internal/sched"
)

// HalfWidther is optionally implemented by policies that can report the
// half-width of their confidence interval on a bag — the quantity whose
// per-round trajectory a comparison span records (the paper's confidence
// evolution). Every policy in this package implements it.
type HalfWidther interface {
	HalfWidth(v crowd.BagView) float64
}

// Instruments is the comparison layer's pre-resolved metric bundle.
type Instruments struct {
	Comparisons  *obs.Counter   // comparison processes started
	Concluded    *obs.Counter   // processes that reached a memoized verdict
	MemoHits     *obs.Counter   // comparisons answered from the memo for free
	Waves        *obs.Counter   // parallel comparison waves executed
	WaveNs       *obs.Counter   // wall-clock nanoseconds spent inside waves
	QueueWaitNs  *obs.Counter   // pair-nanoseconds spent queued for a worker
	WaveWidth    *obs.Histogram // undecided pairs per wave
	CompRounds   *obs.Histogram // batch rounds per finished comparison
	CompWorkload *obs.Histogram // microtasks per finished comparison
	WaveWidthMax *obs.Gauge     // widest wave seen (peak parallelism demand)

	StoreHits    *obs.Counter // comparisons answered from the judgment store
	StoreStale   *obs.Counter // stale records served as decayed priors
	StoreMisses  *obs.Counter // store consultations that found nothing usable
	StoreCommits *obs.Counter // conclusions committed back to the store
	StoreSize    *obs.Gauge   // records in the judgment store
}

// NewInstruments resolves the bundle from the registry; nil registry
// (telemetry disabled) yields nil.
func NewInstruments(reg *obs.Registry) *Instruments {
	if reg == nil {
		return nil
	}
	return &Instruments{
		Comparisons:  reg.Counter(obs.MComparisons),
		Concluded:    reg.Counter(obs.MConcluded),
		MemoHits:     reg.Counter(obs.MMemoHits),
		Waves:        reg.Counter(obs.MWaves),
		WaveNs:       reg.Counter(obs.MWaveNs),
		QueueWaitNs:  reg.Counter(obs.MQueueWaitNs),
		WaveWidth:    reg.Histogram(obs.MWaveWidth, obs.WaveWidthBuckets),
		CompRounds:   reg.Histogram(obs.MCompRounds, obs.CompRoundsBuckets),
		CompWorkload: reg.Histogram(obs.MCompWorkload, obs.WorkloadBuckets),
		WaveWidthMax: reg.Gauge(obs.MWaveWidthMax),
		StoreHits:    reg.Counter(obs.MStoreHits),
		StoreStale:   reg.Counter(obs.MStoreStale),
		StoreMisses:  reg.Counter(obs.MStoreMisses),
		StoreCommits: reg.Counter(obs.MStoreCommits),
		StoreSize:    reg.Gauge(obs.MStoreSize),
	}
}

// SetTelemetry wires the whole execution stack below the runner to one
// telemetry bundle: the runner's own comparison metrics and COMP spans,
// the engine's purchase metrics, and — when the oracle is a platform
// adapter — the resilience metrics. Passing nil disables everything.
// Call before the runner is shared across goroutines.
func (r *Runner) SetTelemetry(t *obs.Telemetry) {
	r.tel = t
	r.ins = NewInstruments(t.Registry())
	r.resolvePolicyCounters()
	r.eng.SetInstruments(crowd.NewEngineInstruments(t.Registry()))
	r.sch.SetInstruments(sched.NewInstruments(t.Registry()))
	if po, ok := r.eng.Oracle().(*crowd.PlatformOracle); ok {
		po.Instrument(crowd.NewPlatformInstruments(t.Registry()))
	}
}

// SetLogger wires structured logging through the execution stack below
// the runner: the shared scheduler's pool lifecycle and — when the
// oracle is a platform adapter — quarantine and retry/breaker failure
// events. Nil disables. Call before the runner is shared across
// goroutines.
func (r *Runner) SetLogger(lg *qlog.Logger) {
	r.sch.SetLogger(lg)
	if po, ok := r.eng.Oracle().(*crowd.PlatformOracle); ok {
		po.SetLogger(lg)
	}
}

// Telemetry returns the bundle last set with SetTelemetry (nil = off).
func (r *Runner) Telemetry() *obs.Telemetry { return r.tel }

// Instruments returns the comparison metric bundle (nil = off).
func (r *Runner) Instruments() *Instruments { return r.ins }

// Tracer returns the span tracer, nil when tracing is off.
func (r *Runner) Tracer() *obs.Tracer { return r.tel.Tracer() }

// Registry returns the metrics registry, nil when telemetry is off.
func (r *Runner) Registry() *obs.Registry { return r.tel.Registry() }

// SetParentSpan declares the span under which subsequently started
// comparison spans nest — the query or phase span of the algorithm layer.
// It is called from the query's control goroutine; workers read it through
// the atomic, so a phase switch mid-wave is benign (spans parent to one
// phase or the other, both valid).
func (r *Runner) SetParentSpan(id obs.SpanID) { r.parent.Store(uint64(id)) }

// ParentSpan returns the current parent span id.
func (r *Runner) ParentSpan() obs.SpanID { return obs.SpanID(r.parent.Load()) }

// enabled reports whether any instrumentation is wired.
func (r *Runner) enabled() bool { return r.tel != nil }

// instrumented reports whether comparison lifecycles need per-process
// state: telemetry spans, or cost attribution recording conclusions.
func (r *Runner) instrumented() bool { return r.tel != nil || r.acct.explain != nil }

// memoHit counts a comparison answered from the memo.
func (r *Runner) memoHit(i, j int) {
	if ins := r.ins; ins != nil {
		ins.MemoHits.Inc()
	}
	if c := r.acct.explain; c != nil {
		c.MemoHit(r.Phase(), i, j)
	}
}

// compState tracks one in-flight comparison process across wave steps:
// its pair, open span and how many batch rounds it has consumed so far.
type compState struct {
	i, j   int
	span   *obs.ActiveSpan
	rounds int
}

// resolvePolicyCounters re-resolves the policy-labeled comparison
// counters — called whenever the telemetry wiring or the policy changes.
func (r *Runner) resolvePolicyCounters() {
	if r.tel == nil {
		r.polComparisons, r.polConcluded = nil, nil
		return
	}
	reg := r.tel.Registry()
	r.polComparisons = reg.Counter(obs.PolicyComparisons(r.policy.Name()))
	r.polConcluded = reg.Counter(obs.PolicyConcluded(r.policy.Name()))
}

// beginComp opens the span and state of a fresh comparison process.
func (r *Runner) beginComp(i, j int) *compState {
	if ins := r.ins; ins != nil {
		ins.Comparisons.Inc()
	}
	if c := r.polComparisons; c != nil {
		c.Inc()
	}
	sp := r.tel.Tracer().Start("comp", r.ParentSpan())
	if sp != nil {
		sp.SetLabel("pair", fmt.Sprintf("%d-%d", i, j))
		sp.SetLabel("policy", r.policy.Name())
	}
	return &compState{i: i, j: j, span: sp}
}

// compStateOf returns the wave-mode state of pair (i, j), creating it on
// the pair's first Advance. Only called when telemetry is enabled.
func (r *Runner) compStateOf(i, j int) *compState {
	k, _ := canonical(i, j)
	r.spanMu.Lock()
	defer r.spanMu.Unlock()
	if st := r.active[k]; st != nil {
		return st
	}
	if r.active == nil {
		r.active = make(map[[2]int]*compState)
	}
	st := r.beginComp(i, j)
	r.active[k] = st
	return st
}

// FlushOpenComparisons closes the spans of wave-mode comparison processes
// that were started but abandoned before reaching any conclusion — e.g.
// partition waves cut short by a reference upgrade. The algorithm layer
// calls it at query end so the trace accounts for every process started.
func (r *Runner) FlushOpenComparisons() {
	if !r.instrumented() {
		return
	}
	r.spanMu.Lock()
	defer r.spanMu.Unlock()
	for k, st := range r.active {
		if sp := st.span; sp != nil {
			sp.SetLabel("abandoned", "true")
		}
		r.finishComp(st, r.eng.View(k[0], k[1]), Tie, false)
	}
	r.active = nil
}

// dropCompState removes the pair's wave-mode state once it finished.
func (r *Runner) dropCompState(i, j int) {
	k, _ := canonical(i, j)
	r.spanMu.Lock()
	delete(r.active, k)
	r.spanMu.Unlock()
}

// observeRound records one batch round of a comparison: the round count
// and, when the policy can report it, the confidence-interval half-width
// the process is racing to shrink. Infinite widths (cold bags) are
// skipped — they carry no information and JSONL cannot encode them.
func (r *Runner) observeRound(st *compState, v crowd.BagView, rounds int) {
	if st == nil {
		return
	}
	st.rounds += rounds
	if st.span != nil && r.hw != nil {
		if hw := r.hw.HalfWidth(v); !math.IsInf(hw, 0) && !math.IsNaN(hw) {
			st.span.Observe(hw)
		}
	}
}

// finishComp closes a comparison process: verdict counters, workload and
// round histograms, and the span's final attributes. concluded reports
// whether a statistical verdict was memoized (as opposed to a best-effort
// outcome forced by an exhausted cap or budgetless tie).
func (r *Runner) finishComp(st *compState, v crowd.BagView, o Outcome, concluded bool) {
	if st == nil {
		return
	}
	if c := r.acct.explain; c != nil {
		hw := 0.0
		if r.hw != nil {
			if x := r.hw.HalfWidth(v); !math.IsInf(x, 0) && !math.IsNaN(x) {
				hw = x
			}
		}
		c.Conclude(r.Phase(), st.i, st.j, o.String(), hw, concluded)
	}
	if ins := r.ins; ins != nil {
		if concluded {
			ins.Concluded.Inc()
			if c := r.polConcluded; c != nil {
				c.Inc()
			}
		}
		ins.CompRounds.Observe(int64(st.rounds))
		ins.CompWorkload.Observe(int64(v.N))
	}
	if sp := st.span; sp != nil {
		sp.SetLabel("verdict", o.String())
		if !concluded {
			sp.SetLabel("exhausted", "true")
		}
		sp.SetAttr("workload", float64(v.N))
		sp.SetAttr("rounds", float64(st.rounds))
		sp.SetAttr("mean", v.Mean)
		sp.End()
	}
}
