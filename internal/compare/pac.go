package compare

import (
	"math"

	"crowdtopk/internal/crowd"
	"crowdtopk/internal/stats"
)

// PAC is a gap-elimination comparison policy from the best-k
// sample-complexity line (Ren–Liu–Shroff): a distribution-free,
// anytime-valid Hoeffding race on the preference mean in which the batch
// size adapts to the observed gap instead of a fixed η.
//
//   - Verdict: conclude as soon as the anytime-corrected Hoeffding
//     interval on the mean excludes 0 — both directions race; whichever
//     confidence bound crosses first eliminates the other.
//   - Schedule: sample sizes follow a geometric grid (each batch is half
//     the evidence so far), so a pair reaches any target n in O(log n)
//     rounds, clamped by the projected need n* ≈ 2·ln(2/α_n)·(range/gap)²
//     that the current empirical gap implies — a shrinking gap stretches
//     the projection and the batches grow to match; a widening gap
//     collapses them to small confirmatory steps.
//   - Elimination: once n* exceeds what the remaining per-pair budget can
//     fund, the pair cannot be separated at confidence within budget and
//     is eliminated as a tie instead of being funded all the way to B.
//
// Like every policy, PAC is a pure function of the bag view and remaining
// budget, so it is race-free and replays deterministically.
type PAC struct {
	alpha float64
	half  *stats.F64Cache // anytime half-width keyed by sample count
	boot  int
	floor int
	min   int
	max   int
}

// Default PAC shape parameters: the anytime-corrected race is valid from
// the first sample, so the cold start only needs to be large enough that
// the first projection is not pure noise.
const (
	pacBootstrap = 8
	pacFloor     = 24
	pacMinBatch  = 4
	pacMaxBatch  = 256
)

// NewPAC returns the PAC gap-elimination policy at significance level
// alpha.
func NewPAC(alpha float64) *PAC {
	if alpha <= 0 || alpha >= 1 {
		panic("compare: NewPAC requires alpha in (0,1)")
	}
	return &PAC{
		alpha: alpha,
		half:  newHalfWidthCache(alpha),
		boot:  pacBootstrap,
		floor: pacFloor,
		min:   pacMinBatch,
		max:   pacMaxBatch,
	}
}

// Name implements Policy.
func (p *PAC) Name() string { return "pac" }

// MinSamples implements Tester.
func (p *PAC) MinSamples() int { return 1 }

// HalfWidth implements HalfWidther: the anytime-corrected Hoeffding
// half-width at the current sample count.
func (p *PAC) HalfWidth(v crowd.BagView) float64 {
	if v.N < 1 {
		return math.Inf(1)
	}
	return p.half.Get(v.N)
}

// Test implements Tester.
func (p *PAC) Test(v crowd.BagView) Outcome {
	if v.N < 1 {
		return Tie
	}
	half := p.half.Get(v.N)
	switch {
	case v.Mean-half > 0:
		return FirstWins
	case v.Mean+half < 0:
		return SecondWins
	default:
		return Tie
	}
}

// Bootstrap implements Policy.
func (p *PAC) Bootstrap(v crowd.BagView) int { return p.boot - v.N }

// projected returns the sample size at which the anytime Hoeffding
// interval is expected to shrink below the observed gap: the inversion of
// half(n) = range·√(ln(2/α_n)/2n) at the current epoch's α_n.
func (p *PAC) projected(v crowd.BagView) float64 {
	gap := math.Abs(v.Mean)
	if gap == 0 {
		return math.Inf(1)
	}
	// half(n) = range·√(ln(2/α)/2n) with range 2 ⇒ n* = 2·ln(2/α)/gap².
	a := anytimeAlpha(p.alpha, v.N)
	return math.Ceil(2 * math.Log(2/a) / (gap * gap))
}

// Next implements Policy: the geometric batch n/2, clamped by the
// projected remaining distance, the [min, max] bounds and the budget;
// eliminate (0) when the projection is not fundable.
func (p *PAC) Next(v crowd.BagView, left int) int {
	if left <= 0 {
		return 0
	}
	need := p.projected(v)
	// The sum is computed in float64: an unlimited budget arrives as
	// MaxInt, and v.N+left would wrap negative in int arithmetic, turning
	// "always fundable" into "never fundable".
	if v.N >= p.floor && need > float64(v.N)+float64(left) {
		return 0 // gap too small to separate within budget: eliminate
	}
	n := v.N / 2
	if d := need - float64(v.N); d > 0 && float64(n) > d {
		n = int(d)
	}
	if n < p.min {
		n = p.min
	}
	if n > p.max {
		n = p.max
	}
	if n > left {
		n = left
	}
	return n
}
