package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestHandlerEndpoints drives every route of the telemetry handler.
func TestHandlerEndpoints(t *testing.T) {
	tel := New()
	tel.Metrics.Counter(MTMC).Add(321)
	tel.Trace.Start("query", 0).End()

	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "crowdtopk_tmc_total 321") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, `"crowdtopk_tmc_total": 321`) {
		t.Errorf("/debug/vars = %d %q", code, body)
	}
	if code, body := get("/trace"); code != 200 || !strings.Contains(body, `"name":"query"`) {
		t.Errorf("/trace = %d %q", code, body)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d", code)
	}
	if code, _ := get("/debug/pprof/symbol"); code != 200 {
		t.Errorf("/debug/pprof/symbol = %d", code)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Errorf("/nope = %d, want 404", code)
	}
}
