package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestSpanTreeAndJSONLRoundTrip records a small query-shaped trace and
// checks that the JSONL serialization replays to identical spans and the
// same per-phase cost breakdown.
func TestSpanTreeAndJSONLRoundTrip(t *testing.T) {
	tr := NewTracer()
	query := tr.Start("query", 0)
	query.SetLabel("algorithm", "spr")

	sel := tr.Start("phase:select", query.ID())
	comp := tr.Start("comp", sel.ID())
	comp.SetLabel("pair", "3-7")
	comp.SetLabel("verdict", "first-wins")
	comp.SetAttr("workload", 60)
	comp.Observe(0.41)
	comp.Observe(0.18)
	comp.End()
	sel.SetAttr("tmc", 60)
	sel.End()

	rank := tr.Start("phase:rank", query.ID())
	rank.SetAttr("tmc", 90)
	rank.End()
	rank2 := tr.Start("phase:rank", query.ID())
	rank2.SetAttr("tmc", 10)
	rank2.End()

	query.SetAttr("tmc", 160)
	query.End()

	spans := tr.Spans()
	if len(spans) != 5 {
		t.Fatalf("recorded %d spans, want 5", len(spans))
	}

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	replayed, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != len(spans) {
		t.Fatalf("replayed %d spans, want %d", len(replayed), len(spans))
	}
	for i := range spans {
		a, b := spans[i], replayed[i]
		if a.ID != b.ID || a.Parent != b.Parent || a.Name != b.Name {
			t.Fatalf("span %d identity changed: %+v vs %+v", i, a, b)
		}
		if a.Attr("tmc") != b.Attr("tmc") {
			t.Fatalf("span %d tmc changed: %v vs %v", i, a.Attrs, b.Attrs)
		}
		if len(a.Traj) != len(b.Traj) {
			t.Fatalf("span %d trajectory changed", i)
		}
	}

	// The replayed trace reproduces the exact per-phase cost breakdown.
	costs := SumAttr(replayed, "tmc")
	if costs["phase:select"] != 60 || costs["phase:rank"] != 100 || costs["query"] != 160 {
		t.Fatalf("replayed costs = %v", costs)
	}

	// Tree structure survived: the comp span hangs under select.
	byID := make(map[SpanID]Span)
	for _, s := range replayed {
		byID[s.ID] = s
	}
	for _, s := range replayed {
		if s.Name == "comp" {
			if byID[s.Parent].Name != "phase:select" {
				t.Fatalf("comp parented to %q", byID[s.Parent].Name)
			}
			if s.Labels["verdict"] != "first-wins" {
				t.Fatalf("comp labels = %v", s.Labels)
			}
		}
	}
}

// TestReadJSONLBadLine checks the line-numbered error on corrupt traces.
func TestReadJSONLBadLine(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader("{\"id\":1,\"name\":\"a\",\"start_ns\":0,\"end_ns\":1}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line-2 parse error", err)
	}
}

// TestTracerBound checks the span store stays bounded and counts drops.
func TestTracerBound(t *testing.T) {
	tr := NewTracer()
	tr.maxSpans = 3
	for i := 0; i < 5; i++ {
		tr.Start("s", 0).End()
	}
	if n := len(tr.Spans()); n != 3 {
		t.Fatalf("kept %d spans, want 3", n)
	}
	if d := tr.Dropped(); d != 2 {
		t.Fatalf("dropped = %d, want 2", d)
	}
}
