// Package obs is the repository's zero-dependency telemetry subsystem: an
// atomic metrics registry (counters, gauges, fixed-bucket histograms), a
// span-based tracer with JSONL export and offline replay, and an HTTP
// handler exposing both in Prometheus text and expvar-style JSON alongside
// net/http/pprof.
//
// The paper's entire contribution is a cost model — TMC, comparison
// counts, confidence evolution per COMP(o_i, o_j) — and this package is
// how that model becomes visible at runtime instead of being reconstructed
// from audit logs after the fact. Every layer of the query stack (engine,
// comparison runner, SPR phases, wave workers, resilient platform) holds
// pre-resolved instrument pointers into one Registry and emits spans into
// one Tracer.
//
// # Overhead contract
//
// Telemetry is strictly opt-in and compiles down to a nil check when
// disabled: every exported method of Counter, Gauge, Histogram, Registry,
// Tracer and ActiveSpan is safe to call on a nil receiver and returns
// immediately, so instrumentation sites are written once and pay a single
// predictable branch when the subsystem is off. When enabled, counter and
// gauge updates are single atomic adds, histogram observations are one
// atomic add into a fixed bucket, and none of them allocate. Span creation
// allocates (a span is a durable record); spans are therefore created at
// comparison and phase granularity, never per microtask.
package obs
