package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic metric. The zero value is
// ready to use; a nil *Counter is a no-op, which is how disabled telemetry
// costs only the nil check at every instrumentation site.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; 0 on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. A nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value. No-op on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// SetMax raises the gauge to n if n exceeds the current value — a running
// maximum safe under concurrent observers. No-op on a nil receiver.
func (g *Gauge) SetMax(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current gauge value; 0 on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution: bounds are ascending upper
// bounds, with an implicit +Inf bucket at the end. Observations are one
// atomic add; nothing allocates. A nil *Histogram is a no-op.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Int64
	n      atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	b := append([]int64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations; 0 on a nil receiver.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observations; 0 on a nil receiver.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra entry for
	// the +Inf bucket. Counts are per-bucket, not cumulative.
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Sum    int64   `json:"sum"`
	Count  int64   `json:"count"`
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the recorded
// distribution by linear interpolation within the bucket holding the
// target rank — the same estimate Prometheus's histogram_quantile
// derives from the cumulative _bucket series WritePrometheus emits.
// Ranks landing in the +Inf bucket clamp to the highest finite bound
// (the true value is unknowable from a bucketed sketch). NaN on an
// empty snapshot or out-of-range q.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || q < 0 || q > 1 || len(h.Counts) == 0 {
		return math.NaN()
	}
	rank := q * float64(h.Count)
	var cum int64
	for i, c := range h.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.Bounds) {
			if len(h.Bounds) == 0 {
				return math.NaN()
			}
			return float64(h.Bounds[len(h.Bounds)-1])
		}
		lo := 0.0
		if i > 0 {
			lo = float64(h.Bounds[i-1])
		}
		hi := float64(h.Bounds[i])
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(prev))/float64(c)
	}
	// Unreachable: cum == Count >= rank by the time the loop ends.
	return float64(h.Bounds[len(h.Bounds)-1])
}

// SummaryQuantiles are the dashboard percentiles of one histogram.
type SummaryQuantiles struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// Summary returns the p50/p95/p99 estimates of the snapshot.
func (h HistogramSnapshot) Summary() SummaryQuantiles {
	return SummaryQuantiles{
		P50: h.Quantile(0.50),
		P95: h.Quantile(0.95),
		P99: h.Quantile(0.99),
	}
}

// Registry is a named collection of metrics. Lookups are mutex-guarded and
// meant for construction time: instrumented layers resolve their counters
// once and keep the pointers, so hot paths never touch the registry. A nil
// *Registry returns nil metrics from every lookup, which in turn are
// no-ops — disabled telemetry needs no special-casing anywhere.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Nil on a
// nil receiver.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil on a nil
// receiver.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (later calls keep the original bounds). Nil on a nil
// receiver.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry, the
// currency of QueryStats accounting: snapshot before and after a query,
// and the counter differences are the query's exact incremental cost.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Counter returns the snapshotted value of the named counter (0 when
// absent), tolerating snapshots taken from a nil registry.
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// CounterDiff returns the named counter's increase since the earlier
// snapshot.
func (s Snapshot) CounterDiff(earlier Snapshot, name string) int64 {
	return s.Counters[name] - earlier.Counters[name]
}

// Snapshot copies the current state of every metric. A nil registry yields
// a zero snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s.Counters = make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	s.Gauges = make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds: append([]int64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Sum:    h.Sum(),
			Count:  h.Count(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format, names sorted for deterministic scrapes. Labeled counters (e.g.
// the per-phase cost counters) carry their labels in the registered name;
// the # TYPE line uses the base name and is emitted once per family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	typed := make(map[string]bool)
	emitType := func(name, kind string) string {
		base := name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		if !typed[base] {
			typed[base] = true
			return fmt.Sprintf("# TYPE %s %s\n", base, kind)
		}
		return ""
	}
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		b.WriteString(emitType(name, "counter"))
		fmt.Fprintf(&b, "%s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		b.WriteString(emitType(name, "gauge"))
		fmt.Fprintf(&b, "%s %d\n", name, s.Gauges[name])
	}
	histNames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		h := s.Histograms[name]
		b.WriteString(emitType(name, "histogram"))
		cum := int64(0)
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fmt.Sprintf("%d", h.Bounds[i])
			}
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, le, cum)
		}
		fmt.Fprintf(&b, "%s_sum %d\n", name, h.Sum)
		fmt.Fprintf(&b, "%s_count %d\n", name, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteVars renders the registry snapshot as one JSON object — the
// expvar-style /debug/vars view.
func (r *Registry) WriteVars(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
