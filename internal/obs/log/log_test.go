package log

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func lines(buf *bytes.Buffer) []map[string]any {
	var out []map[string]any
	for _, ln := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if ln == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			panic("bad JSONL line " + ln + ": " + err.Error())
		}
		out = append(out, m)
	}
	return out
}

func TestNilLoggerNoops(t *testing.T) {
	var l *Logger
	l.Debug("a")
	l.Info("b", "k", 1)
	l.Warn("c")
	l.Error("d", "err", nil)
	l.SetLevel(LevelDebug)
	if l.Enabled(LevelError) {
		t.Fatal("nil logger reports enabled")
	}
	if l.With("q", "x") != nil || l.Limited("k", 1, 1) != nil {
		t.Fatal("nil derivations should stay nil")
	}
	if New(nil, LevelInfo) != nil {
		t.Fatal("nil writer should yield nil logger")
	}
}

func TestLevelsAndFields(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelInfo)
	l.Debug("hidden")
	l.Info("started", "query", "q1", "n", 42, "ratio", 0.5, "ok", true, "d", 1500*time.Millisecond)
	l.Error("boom", "err", strings.NewReplacer().Replace, "trailing")
	got := lines(&buf)
	if len(got) != 2 {
		t.Fatalf("got %d lines, want 2: %s", len(got), buf.String())
	}
	rec := got[0]
	if rec["level"] != "info" || rec["msg"] != "started" || rec["query"] != "q1" {
		t.Fatalf("record = %v", rec)
	}
	if rec["n"] != float64(42) || rec["ratio"] != 0.5 || rec["ok"] != true || rec["d"] != "1.5s" {
		t.Fatalf("values = %v", rec)
	}
	if _, hasTS := rec["ts"].(string); !hasTS {
		t.Fatalf("missing ts: %v", rec)
	}
	// Trailing key without a value must not break the line.
	if v, present := got[1]["trailing"]; !present || v != nil {
		t.Fatalf("trailing key = %v (%v)", v, got[1])
	}
}

func TestWithBindsAndShares(t *testing.T) {
	var buf bytes.Buffer
	root := New(&buf, LevelInfo)
	q := root.With("query", "q7", "span", "s3")
	q.Info("phase", "name", "select")
	root.Info("bare")
	// Level change through a child affects the family.
	q.SetLevel(LevelError)
	q.Info("hidden")
	root.Info("hidden too")
	got := lines(&buf)
	if len(got) != 2 {
		t.Fatalf("lines = %d: %s", len(got), buf.String())
	}
	if got[0]["query"] != "q7" || got[0]["span"] != "s3" || got[0]["name"] != "select" {
		t.Fatalf("bound fields missing: %v", got[0])
	}
	if _, has := got[1]["query"]; has {
		t.Fatalf("root line inherited child fields: %v", got[1])
	}
}

func TestEscaping(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelInfo)
	l.Info("a\"b\\c\nd\te\x01f", "k", "v\"w")
	got := lines(&buf)
	if got[0]["msg"] != "a\"b\\c\nd\te\x01f" || got[0]["k"] != "v\"w" {
		t.Fatalf("round trip = %v", got[0])
	}
}

func TestRateLimitSuppression(t *testing.T) {
	var buf bytes.Buffer
	clk := time.Unix(5000, 0)
	l := newAt(&buf, LevelInfo, func() time.Time { return clk })
	lim := l.Limited("noisy", 1, 2) // burst 2, refill 1/s

	for n := 0; n < 10; n++ {
		lim.Warn("flood", "n", n)
	}
	got := lines(&buf)
	if len(got) != 2 {
		t.Fatalf("burst lines = %d, want 2: %s", len(got), buf.String())
	}
	// Advance 3s: 3 tokens refill (capped at burst 2); next line carries
	// the suppressed count.
	clk = clk.Add(3 * time.Second)
	lim.Warn("after")
	got = lines(&buf)
	last := got[len(got)-1]
	if last["suppressed"] != float64(8) {
		t.Fatalf("suppressed = %v, want 8: %v", last["suppressed"], last)
	}
	// Counter reset after reporting.
	lim.Warn("again")
	got = lines(&buf)
	if _, has := got[len(got)-1]["suppressed"]; has {
		t.Fatalf("suppressed not reset: %v", got[len(got)-1])
	}
}

func TestLimiterSharedAcrossFamily(t *testing.T) {
	var buf bytes.Buffer
	clk := time.Unix(5000, 0)
	root := newAt(&buf, LevelInfo, func() time.Time { return clk })
	a := root.With("c", "a").Limited("shared", 1, 1)
	b := root.With("c", "b").Limited("shared", 1, 1)
	a.Info("one")
	b.Info("two") // same bucket — suppressed
	if got := lines(&buf); len(got) != 1 {
		t.Fatalf("lines = %d, want 1 (shared bucket)", len(got))
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "": LevelInfo,
		"warn": LevelWarn, "warning": LevelWarn, "error": LevelError,
		"off": LevelOff, "none": LevelOff,
	}
	for s, want := range cases {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Fatal("ParseLevel(verbose) should fail")
	}
}

func TestConcurrentEmitsAreWholeLines(t *testing.T) {
	var buf safeBuffer
	l := New(&buf, LevelInfo)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lg := l.With("worker", w)
			for n := 0; n < 200; n++ {
				lg.Info("tick", "n", n)
			}
		}(w)
	}
	wg.Wait()
	got := lines(&buf.b)
	if len(got) != 8*200 {
		t.Fatalf("lines = %d, want %d", len(got), 8*200)
	}
}

// safeBuffer serializes writes so the test can parse concurrently
// emitted output.
type safeBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *safeBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}
