// Package log is the zero-dependency structured logger for the daemons
// and service layer: leveled JSONL with bound fields (query IDs, span
// IDs, components) and per-key token-bucket rate limiting so a
// misbehaving platform cannot flood the log — suppressed lines are
// counted and reported on the next emitted line for that key.
//
// A nil *Logger is a no-op, matching the internal/obs idiom, so every
// layer can carry a logger unconditionally and pay one nil check when
// logging is off. Loggers derived with With share the parent's sink,
// level and limiter state; bound fields are pre-encoded once.
package log

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity.
type Level int32

const (
	// LevelDebug emits everything, including per-query chatter.
	LevelDebug Level = iota
	// LevelInfo is the default operational level.
	LevelInfo
	// LevelWarn emits degradations (quarantines, admission rejects).
	LevelWarn
	// LevelError emits failures only.
	LevelError
	// LevelOff silences the logger entirely.
	LevelOff
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "off"
	}
}

// ParseLevel maps a flag string to a Level ("debug", "info", "warn",
// "error", "off").
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	case "off", "none":
		return LevelOff, nil
	}
	return LevelInfo, fmt.Errorf("log: unknown level %q", s)
}

// bucket is one rate-limit key's token bucket.
type bucket struct {
	tokens     float64
	last       time.Time
	suppressed int64
}

// core is the shared sink state behind a logger family.
type core struct {
	mu    sync.Mutex
	w     io.Writer
	level atomic.Int32
	now   func() time.Time
	lim   map[string]*bucket
}

// Logger emits JSONL records. Derive per-component/per-query loggers
// with With; they share the root's sink and limiters.
type Logger struct {
	c *core
	// fields is the pre-encoded bound-field fragment (`,"k":"v",...`).
	fields []byte
	// key/rate/burst configure rate limiting when key != "".
	key   string
	rate  float64
	burst float64
}

// New builds a root logger writing JSONL records at or above level to w.
// A nil w yields a nil (no-op) logger.
func New(w io.Writer, level Level) *Logger {
	return newAt(w, level, time.Now)
}

func newAt(w io.Writer, level Level, now func() time.Time) *Logger {
	if w == nil {
		return nil
	}
	c := &core{w: w, now: now, lim: make(map[string]*bucket)}
	c.level.Store(int32(level))
	return &Logger{c: c}
}

// SetLevel changes the family's level at runtime (all derived loggers).
func (l *Logger) SetLevel(level Level) {
	if l == nil || l.c == nil {
		return
	}
	l.c.level.Store(int32(level))
}

// Enabled reports whether records at level would be emitted — use to
// skip expensive field construction. False on a nil logger.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && l.c != nil && int32(level) >= l.c.level.Load()
}

// With returns a child logger with kv (alternating key, value pairs)
// appended to the bound fields. The child shares the parent's sink,
// level and limiter state. Nil-safe.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil || l.c == nil || len(kv) == 0 {
		return l
	}
	buf := make([]byte, len(l.fields), len(l.fields)+32*len(kv)/2)
	copy(buf, l.fields)
	buf = appendKVs(buf, kv)
	return &Logger{c: l.c, fields: buf, key: l.key, rate: l.rate, burst: l.burst}
}

// Limited returns a child logger whose emissions are rate-limited by a
// token bucket shared across the family under key: at most `burst`
// immediate lines, refilling at perSec lines/second. Suppressed lines
// are counted and surfaced as a "suppressed" field on the next line that
// passes. Nil-safe.
func (l *Logger) Limited(key string, perSec float64, burst int) *Logger {
	if l == nil || l.c == nil {
		return l
	}
	if burst < 1 {
		burst = 1
	}
	return &Logger{c: l.c, fields: l.fields, key: key, rate: perSec, burst: float64(burst)}
}

// Debug emits a debug record.
func (l *Logger) Debug(msg string, kv ...any) { l.emit(LevelDebug, msg, kv) }

// Info emits an info record.
func (l *Logger) Info(msg string, kv ...any) { l.emit(LevelInfo, msg, kv) }

// Warn emits a warning record.
func (l *Logger) Warn(msg string, kv ...any) { l.emit(LevelWarn, msg, kv) }

// Error emits an error record.
func (l *Logger) Error(msg string, kv ...any) { l.emit(LevelError, msg, kv) }

func (l *Logger) emit(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	c := l.c
	now := c.now()

	var suppressed int64
	if l.key != "" {
		c.mu.Lock()
		b := c.lim[l.key]
		if b == nil {
			b = &bucket{tokens: l.burst, last: now}
			c.lim[l.key] = b
		}
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens += dt * l.rate
			if b.tokens > l.burst {
				b.tokens = l.burst
			}
			b.last = now
		}
		if b.tokens < 1 {
			b.suppressed++
			c.mu.Unlock()
			return
		}
		b.tokens--
		suppressed = b.suppressed
		b.suppressed = 0
		c.mu.Unlock()
	}

	buf := make([]byte, 0, 160+len(l.fields))
	buf = append(buf, `{"ts":"`...)
	buf = now.UTC().AppendFormat(buf, time.RFC3339Nano)
	buf = append(buf, `","level":"`...)
	buf = append(buf, level.String()...)
	buf = append(buf, `","msg":`...)
	buf = appendJSONString(buf, msg)
	buf = append(buf, l.fields...)
	buf = appendKVs(buf, kv)
	if suppressed > 0 {
		buf = append(buf, `,"suppressed":`...)
		buf = strconv.AppendInt(buf, suppressed, 10)
	}
	buf = append(buf, '}', '\n')

	c.mu.Lock()
	c.w.Write(buf)
	c.mu.Unlock()
}

// appendKVs encodes alternating key/value pairs as `,"k":v` fragments.
// A trailing key without a value gets null; non-string keys are
// stringified defensively rather than dropped.
func appendKVs(buf []byte, kv []any) []byte {
	for n := 0; n < len(kv); n += 2 {
		key, ok := kv[n].(string)
		if !ok {
			key = fmt.Sprint(kv[n])
		}
		buf = append(buf, ',')
		buf = appendJSONString(buf, key)
		buf = append(buf, ':')
		if n+1 < len(kv) {
			buf = appendValue(buf, kv[n+1])
		} else {
			buf = append(buf, "null"...)
		}
	}
	return buf
}

func appendValue(buf []byte, v any) []byte {
	switch x := v.(type) {
	case string:
		return appendJSONString(buf, x)
	case int:
		return strconv.AppendInt(buf, int64(x), 10)
	case int64:
		return strconv.AppendInt(buf, x, 10)
	case uint64:
		return strconv.AppendUint(buf, x, 10)
	case float64:
		return strconv.AppendFloat(buf, x, 'g', -1, 64)
	case bool:
		return strconv.AppendBool(buf, x)
	case time.Duration:
		return appendJSONString(buf, x.String())
	case error:
		if x == nil {
			return append(buf, "null"...)
		}
		return appendJSONString(buf, x.Error())
	case nil:
		return append(buf, "null"...)
	default:
		b, err := json.Marshal(v)
		if err != nil {
			return appendJSONString(buf, fmt.Sprint(v))
		}
		return append(buf, b...)
	}
}

// appendJSONString appends s as a JSON string, escaping the minimal set.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			buf = append(buf, '\\', c)
		case c == '\n':
			buf = append(buf, '\\', 'n')
		case c == '\t':
			buf = append(buf, '\\', 't')
		case c == '\r':
			buf = append(buf, '\\', 'r')
		case c < 0x20:
			buf = append(buf, '\\', 'u', '0', '0', hexDigit(c>>4), hexDigit(c&0xf))
		default:
			buf = append(buf, c)
		}
	}
	return append(buf, '"')
}

func hexDigit(n byte) byte {
	if n < 10 {
		return '0' + n
	}
	return 'a' + n - 10
}
