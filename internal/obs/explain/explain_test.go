package explain

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestNilCollectorNoops(t *testing.T) {
	var c *Collector
	c.Charge("select", 1, 2, 5)
	c.ChargeGraded("rank", 3)
	c.Refund("select", 1, 2, 1)
	c.MemoHit("select", 1, 2)
	c.StoreHit("select", 1, 2)
	c.Conclude("select", 1, 2, "first", 0.1, true)
	if got := c.Total(); got != 0 {
		t.Fatalf("nil Total = %d, want 0", got)
	}
	tr := c.Tree()
	if tr.TMC != 0 || len(tr.Phases) != 0 {
		t.Fatalf("nil Tree = %+v, want empty", tr)
	}
}

func TestTreeAggregation(t *testing.T) {
	c := NewCollector()
	c.Charge("select", 2, 1, 10) // reversed pair canonicalizes to 1-2
	c.Charge("select", 1, 2, 5)
	c.Refund("select", 1, 2, 3)
	c.MemoHit("rank", 1, 2)
	c.Charge("rank", 0, 4, 7)
	c.ChargeGraded("", 9)
	c.StoreHit("rank", 0, 4)
	c.Conclude("rank", 0, 4, "first", 0.05, true)

	tr := c.Tree()
	if tr.TMC != 23 {
		t.Fatalf("tree TMC = %d, want 23", tr.TMC)
	}
	if got := c.Total(); got != tr.TMC {
		t.Fatalf("Total = %d, tree TMC = %d", got, tr.TMC)
	}
	if tr.Refunds != 3 || tr.MemoHits != 1 || tr.StoreHits != 1 {
		t.Fatalf("tree sums = %+v", tr)
	}
	if tr.Pairs != 4 {
		t.Fatalf("tree Pairs = %d, want 4", tr.Pairs)
	}
	// Phases sorted by TMC desc: select(15), rank(7+0 memo leaf), query(1).
	if len(tr.Phases) != 3 || tr.Phases[0].Phase != "select" || tr.Phases[1].Phase != "rank" || tr.Phases[2].Phase != PhaseFallback {
		t.Fatalf("phase order = %+v", tr.Phases)
	}
	sel := tr.Phases[0]
	if sel.TMC != 15 || len(sel.Pairs) != 1 || sel.Pairs[0].Pair != "1-2" || sel.Pairs[0].Draws != 2 || sel.Pairs[0].Refunds != 3 {
		t.Fatalf("select phase = %+v", sel)
	}
	rank := tr.Phases[1]
	if rank.TMC != 7 || len(rank.Pairs) != 2 || rank.Pairs[0].Pair != "0-4" {
		t.Fatalf("rank phase = %+v", rank)
	}
	if !rank.Pairs[0].Concluded || rank.Pairs[0].Verdict != "first" || rank.Pairs[0].HalfWidth != 0.05 || rank.Pairs[0].StoreHits != 1 {
		t.Fatalf("rank leaf = %+v", rank.Pairs[0])
	}
	q := tr.Phases[2]
	if len(q.Pairs) != 1 || q.Pairs[0].Pair != "item:9" || q.Pairs[0].TMC != 1 {
		t.Fatalf("fallback phase = %+v", q)
	}
	if _, err := json.Marshal(tr); err != nil {
		t.Fatalf("tree marshal: %v", err)
	}
}

func TestPairName(t *testing.T) {
	if got := PairName(3, 7); got != "3-7" {
		t.Fatalf("PairName(3,7) = %q", got)
	}
	if got := PairName(5, -1); got != "item:5" {
		t.Fatalf("PairName(5,-1) = %q", got)
	}
}

// TestConcurrentChargesReconcile hammers the collector from many
// goroutines and checks the tree total equals the exact amount charged —
// the in-miniature version of the query-level reconciliation invariant.
func TestConcurrentChargesReconcile(t *testing.T) {
	c := NewCollector()
	const workers = 16
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; n < perWorker; n++ {
				i, j := (w+n)%37, (w*n+1)%41
				if i == j {
					j++
				}
				phase := [...]string{"select", "partition", "rank"}[n%3]
				c.Charge(phase, i, j, 2)
				if n%5 == 0 {
					c.Refund(phase, i, j, 1)
				}
				if n%7 == 0 {
					c.MemoHit(phase, i, j)
				}
				if n%11 == 0 {
					c.ChargeGraded(phase, i)
				}
			}
		}(w)
	}
	wg.Wait()
	wantTMC := int64(workers*perWorker*2) + int64(workers)*int64((perWorker+10)/11)
	tr := c.Tree()
	if tr.TMC != wantTMC {
		t.Fatalf("tree TMC = %d, want %d", tr.TMC, wantTMC)
	}
	if c.Total() != wantTMC {
		t.Fatalf("Total = %d, want %d", c.Total(), wantTMC)
	}
	var leafSum int64
	for _, ph := range tr.Phases {
		var phSum int64
		for _, p := range ph.Pairs {
			phSum += p.TMC
		}
		if phSum != ph.TMC {
			t.Fatalf("phase %s leaf sum %d != phase TMC %d", ph.Phase, phSum, ph.TMC)
		}
		leafSum += phSum
	}
	if leafSum != tr.TMC {
		t.Fatalf("leaf sum %d != tree TMC %d", leafSum, tr.TMC)
	}
}
