// Package explain is the cost-explainability half of the observability
// stack: a per-query collector that attributes every purchased microtask
// to the (phase, pair) that bought it, and the aggregated cost tree —
// query → phase → pair — an operator reads to learn where a budget went.
//
// The collector is wired into the comparison runner's purchase path, so
// its leaves are exact by construction: every microtask the query's
// accounting meter charges is recorded against exactly one leaf, and the
// tree's total always equals the query's TMC — the reconciliation
// invariant the service layer asserts against Result.Stats and the audit
// log. A nil *Collector is a no-op (the disabled-telemetry idiom of
// internal/obs), so the hot path pays one nil check when explainability
// is off.
package explain

import (
	"sort"
	"strconv"
	"sync"
)

// stripes must be a power of two; it mirrors the runner's memo striping
// so concurrent chains on distinct pairs rarely share a lock.
const stripes = 64

// leafKey addresses one attribution leaf: the algorithm phase that was
// executing and the canonical pair (j == -1 for graded single-item
// microtasks).
type leafKey struct {
	phase string
	i, j  int
}

func (k leafKey) stripe() uint64 {
	x := uint64(uint32(k.i))<<32 | uint64(uint32(k.j))
	for n := 0; n < len(k.phase); n++ {
		x = x*131 + uint64(k.phase[n])
	}
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x & (stripes - 1)
}

// leaf is the mutable accumulator behind one PairCost; all fields are
// guarded by the owning stripe's mutex.
type leaf struct {
	tmc       int64
	draws     int64
	refunds   int64
	memoHits  int64
	storeHits int64
	verdict   string
	halfWidth float64
	concluded bool
}

type stripe struct {
	mu sync.Mutex
	m  map[leafKey]*leaf
}

// Collector accumulates one query's cost attribution. It is safe for
// concurrent use from every comparison chain of the query; Tree may be
// called at any time (including mid-query, for live dashboards).
type Collector struct {
	stripes [stripes]stripe
}

// NewCollector returns an empty per-query collector.
func NewCollector() *Collector { return &Collector{} }

// get returns the leaf for (phase, i, j), creating it under the stripe
// lock; the caller must Unlock the returned stripe.
func (c *Collector) get(phase string, i, j int) (*leaf, *stripe) {
	if i > j && j >= 0 {
		i, j = j, i
	}
	k := leafKey{phase: phase, i: i, j: j}
	s := &c.stripes[k.stripe()]
	s.mu.Lock()
	l := s.m[k]
	if l == nil {
		if s.m == nil {
			s.m = make(map[leafKey]*leaf)
		}
		l = &leaf{}
		s.m[k] = l
	}
	return l, s
}

// Charge attributes n delivered pairwise microtasks for (i, j) to phase.
// No-op on a nil receiver or n <= 0.
func (c *Collector) Charge(phase string, i, j int, n int64) {
	if c == nil || n <= 0 {
		return
	}
	l, s := c.get(phase, i, j)
	l.tmc += n
	l.draws++
	s.mu.Unlock()
}

// ChargeGraded attributes one graded (absolute-rating) microtask for
// item i to phase. No-op on a nil receiver.
func (c *Collector) ChargeGraded(phase string, i int) {
	if c == nil {
		return
	}
	l, s := c.get(phase, i, -1)
	l.tmc++
	l.draws++
	s.mu.Unlock()
}

// Refund records n reserved-but-undelivered microtasks returned to the
// query's budget after a short or cap-truncated draw — money that was
// never charged, kept visible so an operator can see where purchases are
// being cut short. No-op on a nil receiver or n <= 0.
func (c *Collector) Refund(phase string, i, j int, n int64) {
	if c == nil || n <= 0 {
		return
	}
	l, s := c.get(phase, i, j)
	l.refunds += n
	s.mu.Unlock()
}

// MemoHit records a comparison answered from the conclusion memo for
// free. No-op on a nil receiver.
func (c *Collector) MemoHit(phase string, i, j int) {
	if c == nil {
		return
	}
	l, s := c.get(phase, i, j)
	l.memoHits++
	s.mu.Unlock()
}

// StoreHit records a comparison answered from the cross-query judgment
// store at zero TMC. No-op on a nil receiver.
func (c *Collector) StoreHit(phase string, i, j int) {
	if c == nil {
		return
	}
	l, s := c.get(phase, i, j)
	l.storeHits++
	s.mu.Unlock()
}

// Conclude records a comparison process finishing on this pair: the
// verdict, whether it is a statistical conclusion (as opposed to a
// best-effort outcome forced by an exhausted cap), and the
// confidence-interval half-width the pair ended at. The last conclusion
// wins (a pair abandoned mid-wave and re-run concludes once more).
// No-op on a nil receiver.
func (c *Collector) Conclude(phase string, i, j int, verdict string, halfWidth float64, concluded bool) {
	if c == nil {
		return
	}
	l, s := c.get(phase, i, j)
	l.verdict = verdict
	l.halfWidth = halfWidth
	l.concluded = concluded
	s.mu.Unlock()
}

// PairCost is one leaf of the cost tree: what one pair (or one graded
// item) cost within one phase.
type PairCost struct {
	// Pair names the leaf: "i-j" for a pairwise comparison, "item:i" for
	// graded microtasks.
	Pair string `json:"pair"`
	// TMC is the microtasks charged for this leaf — delivered answers
	// only, the same currency as Result.TMC and the audit log.
	TMC int64 `json:"tmc"`
	// Draws counts the purchase calls that delivered those microtasks.
	Draws int64 `json:"draws"`
	// Refunds counts reserved-but-undelivered microtasks returned after
	// short platform batches or cap truncation; never charged.
	Refunds int64 `json:"refunds,omitempty"`
	// MemoHits and StoreHits count comparisons on this pair answered for
	// free from the conclusion memo / the cross-query judgment store.
	MemoHits  int64 `json:"memo_hits,omitempty"`
	StoreHits int64 `json:"store_hits,omitempty"`
	// Verdict is the comparison's final outcome label, "" while running.
	Verdict string `json:"verdict,omitempty"`
	// HalfWidth is the confidence-interval half-width at conclusion — how
	// tight the evidence was when the process stopped buying.
	HalfWidth float64 `json:"half_width,omitempty"`
	// Concluded reports a statistical verdict (vs. a best-effort outcome
	// forced by an exhausted cap, budget or cancellation).
	Concluded bool `json:"concluded,omitempty"`
}

// PhaseCost aggregates one algorithm phase's leaves.
type PhaseCost struct {
	// Phase is the algorithm phase name ("select", "partition", "rank"),
	// or "query" for spend outside any named phase.
	Phase string `json:"phase"`
	// TMC, Refunds, MemoHits and StoreHits are the leaf sums.
	TMC       int64 `json:"tmc"`
	Refunds   int64 `json:"refunds,omitempty"`
	MemoHits  int64 `json:"memo_hits,omitempty"`
	StoreHits int64 `json:"store_hits,omitempty"`
	// Pairs are the phase's leaves, most expensive first.
	Pairs []PairCost `json:"pairs"`
}

// Tree is the aggregated query → phase → pair cost attribution. Its TMC
// is the sum over every leaf, which equals the query's accounting meter
// (Result.TMC / Result.Stats.TMC) by construction — the reconciliation
// invariant.
type Tree struct {
	// TMC is the total attributed spend: the sum over all leaves.
	TMC int64 `json:"tmc"`
	// Refunds, MemoHits and StoreHits are tree-wide sums.
	Refunds   int64 `json:"refunds,omitempty"`
	MemoHits  int64 `json:"memo_hits,omitempty"`
	StoreHits int64 `json:"store_hits,omitempty"`
	// Pairs counts distinct attribution leaves across phases.
	Pairs int `json:"pairs"`
	// Phases are the per-phase aggregates, most expensive first.
	Phases []PhaseCost `json:"phases"`
}

// PhaseFallback names spend recorded while no algorithm phase was
// active — non-SPR algorithms, and SPR spend between phases.
const PhaseFallback = "query"

// PairName renders a leaf name: "i-j" for pairs, "item:i" for graded.
func PairName(i, j int) string {
	if j < 0 {
		return "item:" + strconv.Itoa(i)
	}
	return strconv.Itoa(i) + "-" + strconv.Itoa(j)
}

// Tree aggregates the collector into the serializable cost tree. Safe to
// call at any time; mid-query it is a consistent-enough live view (each
// leaf is copied under its stripe lock). A nil collector yields an empty
// tree.
func (c *Collector) Tree() *Tree {
	t := &Tree{}
	if c == nil {
		return t
	}
	byPhase := make(map[string]*PhaseCost)
	for s := range c.stripes {
		st := &c.stripes[s]
		st.mu.Lock()
		for k, l := range st.m {
			phase := k.phase
			if phase == "" {
				phase = PhaseFallback
			}
			pc := byPhase[phase]
			if pc == nil {
				pc = &PhaseCost{Phase: phase}
				byPhase[phase] = pc
			}
			pc.TMC += l.tmc
			pc.Refunds += l.refunds
			pc.MemoHits += l.memoHits
			pc.StoreHits += l.storeHits
			pc.Pairs = append(pc.Pairs, PairCost{
				Pair:      PairName(k.i, k.j),
				TMC:       l.tmc,
				Draws:     l.draws,
				Refunds:   l.refunds,
				MemoHits:  l.memoHits,
				StoreHits: l.storeHits,
				Verdict:   l.verdict,
				HalfWidth: l.halfWidth,
				Concluded: l.concluded,
			})
		}
		st.mu.Unlock()
	}
	for _, pc := range byPhase {
		sort.Slice(pc.Pairs, func(a, b int) bool {
			if pc.Pairs[a].TMC != pc.Pairs[b].TMC {
				return pc.Pairs[a].TMC > pc.Pairs[b].TMC
			}
			return pc.Pairs[a].Pair < pc.Pairs[b].Pair
		})
		t.TMC += pc.TMC
		t.Refunds += pc.Refunds
		t.MemoHits += pc.MemoHits
		t.StoreHits += pc.StoreHits
		t.Pairs += len(pc.Pairs)
		t.Phases = append(t.Phases, *pc)
	}
	sort.Slice(t.Phases, func(a, b int) bool {
		if t.Phases[a].TMC != t.Phases[b].TMC {
			return t.Phases[a].TMC > t.Phases[b].TMC
		}
		return t.Phases[a].Phase < t.Phases[b].Phase
	})
	return t
}

// Total returns the attributed spend so far without building the full
// tree — the cheap live reconciliation probe. 0 on a nil receiver.
func (c *Collector) Total() int64 {
	if c == nil {
		return 0
	}
	var sum int64
	for s := range c.stripes {
		st := &c.stripes[s]
		st.mu.Lock()
		for _, l := range st.m {
			sum += l.tmc
		}
		st.mu.Unlock()
	}
	return sum
}
