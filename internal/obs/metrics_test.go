package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestNilSafety pins the disabled-telemetry contract: every operation on
// nil receivers is a no-op, never a panic, so instrumentation sites need
// only one nil check (or none).
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", []int64{1, 2})
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must return nil metrics")
	}
	c.Add(3)
	c.Inc()
	g.Set(5)
	g.SetMax(9)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
	s := r.Snapshot()
	if s.Counter("x") != 0 {
		t.Fatal("nil registry snapshot must read as zero")
	}

	var tr *Tracer
	sp := tr.Start("comp", 0)
	if sp != nil {
		t.Fatal("nil tracer must return a nil span")
	}
	sp.SetAttr("tmc", 1)
	sp.SetLabel("verdict", "tie")
	sp.Observe(0.5)
	sp.End()
	if sp.ID() != 0 {
		t.Fatal("nil span must have id 0")
	}
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil tracer Spans = %v, want nil", got)
	}

	var tel *Telemetry
	if tel.Registry() != nil || tel.Tracer() != nil {
		t.Fatal("nil telemetry accessors must return nil")
	}
}

// TestCounterGaugeHistogram exercises the basic semantics, including the
// running-maximum gauge and histogram bucketing.
func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(2)
	c.Inc()
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	if r.Counter("c") != c {
		t.Fatal("same name must return the same counter")
	}

	g := r.Gauge("g")
	g.SetMax(4)
	g.SetMax(2)
	g.SetMax(7)
	if g.Value() != 7 {
		t.Fatalf("gauge max = %d, want 7", g.Value())
	}

	h := r.Histogram("h", []int64{10, 100})
	for _, v := range []int64{5, 10, 11, 1000} {
		h.Observe(v)
	}
	s := r.Snapshot()
	hs := s.Histograms["h"]
	want := []int64{2, 1, 1} // (-inf,10], (10,100], (100,+inf)
	for i, w := range want {
		if hs.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, hs.Counts[i], w, hs.Counts)
		}
	}
	if hs.Sum != 1026 || hs.Count != 4 {
		t.Fatalf("sum/count = %d/%d, want 1026/4", hs.Sum, hs.Count)
	}
}

// TestSnapshotDiff pins the accounting primitive QueryStats is built on.
func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(MTMC)
	c.Add(10)
	before := r.Snapshot()
	c.Add(32)
	after := r.Snapshot()
	if d := after.CounterDiff(before, MTMC); d != 32 {
		t.Fatalf("diff = %d, want 32", d)
	}
	if d := after.CounterDiff(before, "never-registered"); d != 0 {
		t.Fatalf("missing-counter diff = %d, want 0", d)
	}
}

// TestConcurrentUpdates hammers one registry from many goroutines; run
// under -race this is the concurrency contract.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").SetMax(int64(i))
				r.Histogram("h", WaveWidthBuckets).Observe(int64(i % 300))
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("c").Value(); v != 8000 {
		t.Fatalf("counter = %d, want 8000", v)
	}
	if v := r.Histogram("h", nil).Count(); v != 8000 {
		t.Fatalf("histogram count = %d, want 8000", v)
	}
}

// TestWritePrometheus checks the exposition format: sorted, typed once per
// family, integer-rendered, labeled names passed through.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(MTMC).Add(123)
	r.Counter(PhaseTMC("select")).Add(40)
	r.Counter(PhaseTMC("rank")).Add(83)
	r.Gauge(MWaveWidthMax).Set(17)
	r.Histogram(MWaveWidth, []int64{2, 8}).Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE crowdtopk_tmc_total counter\n",
		"crowdtopk_tmc_total 123\n",
		`crowdtopk_phase_tmc_total{phase="select"} 40` + "\n",
		`crowdtopk_phase_tmc_total{phase="rank"} 83` + "\n",
		"crowdtopk_wave_width_max 17\n",
		`crowdtopk_wave_width_bucket{le="2"} 0` + "\n",
		`crowdtopk_wave_width_bucket{le="8"} 1` + "\n",
		`crowdtopk_wave_width_bucket{le="+Inf"} 1` + "\n",
		"crowdtopk_wave_width_sum 5\n",
		"crowdtopk_wave_width_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per family even with two labeled series.
	if n := strings.Count(out, "# TYPE crowdtopk_phase_tmc_total"); n != 1 {
		t.Errorf("phase family typed %d times, want 1", n)
	}
}

// TestPhaseNames round-trips the labeled phase-counter naming scheme.
func TestPhaseNames(t *testing.T) {
	for _, phase := range []string{"select", "partition", "rank"} {
		name := PhaseTMC(phase)
		p, isTMC, ok := PhaseOf(name)
		if !ok || !isTMC || p != phase {
			t.Errorf("PhaseOf(%q) = %q, %v, %v", name, p, isTMC, ok)
		}
		name = PhaseRounds(phase)
		p, isTMC, ok = PhaseOf(name)
		if !ok || isTMC || p != phase {
			t.Errorf("PhaseOf(%q) = %q, %v, %v", name, p, isTMC, ok)
		}
	}
	if _, _, ok := PhaseOf(MTMC); ok {
		t.Error("PhaseOf must reject non-phase metrics")
	}
}

// TestUpdateAllocationFree asserts the hot-path contract directly: enabled
// metric updates allocate nothing.
func TestUpdateAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", BagSizeBuckets)
	if allocs := testing.AllocsPerRun(100, func() {
		c.Add(3)
		g.SetMax(5)
		h.Observe(42)
	}); allocs != 0 {
		t.Errorf("metric updates allocate %.1f objects/op, want 0", allocs)
	}
}

// TestHistogramQuantile pins the bucket-interpolation estimate: linear
// within the target bucket, clamped at the highest finite bound for
// ranks landing in +Inf, NaN when undefined.
func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", []int64{10, 20, 40})
	// counts per bucket: (0,10] = 4, (10,20] = 4, (20,40] = 0, +Inf = 2
	for i := 0; i < 4; i++ {
		h.Observe(5)
	}
	for i := 0; i < 4; i++ {
		h.Observe(15)
	}
	h.Observe(100)
	h.Observe(200)
	hs := r.Snapshot().Histograms["q"]

	cases := []struct {
		q    float64
		want float64
	}{
		{0.2, 5},    // rank 2 inside the first bucket: 0 + 10*(2/4)
		{0.4, 10},   // rank 4 lands exactly on the first bound
		{0.5, 12.5}, // rank 5: 10 + 10*(5-4)/4
		{0.8, 20},   // rank 8 exhausts the second bucket
		{0.99, 40},  // rank 9.9 is in +Inf: clamp to the last bound
		{1.0, 40},   // same clamp
		{0.0, 0},    // rank 0 interpolates to the bucket floor
	}
	for _, c := range cases {
		if got := hs.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}

	sum := hs.Summary()
	if sum.P50 != 12.5 || sum.P95 != 40 || sum.P99 != 40 {
		t.Errorf("Summary() = %+v, want p50=12.5 p95=40 p99=40", sum)
	}

	var empty HistogramSnapshot
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty snapshot must estimate NaN")
	}
	if !math.IsNaN(hs.Quantile(-0.1)) || !math.IsNaN(hs.Quantile(1.1)) {
		t.Error("out-of-range q must estimate NaN")
	}
}

// TestPrometheusCumulativeBuckets pins the exposition contract the
// quantile math (and any external histogram_quantile) depends on: the
// _bucket series is cumulative and the +Inf line equals _count.
func TestPrometheusCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("crowdtopk_test_dist", []int64{1, 5, 25})
	for _, v := range []int64{1, 1, 3, 4, 9, 30, 100} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`crowdtopk_test_dist_bucket{le="1"} 2` + "\n",
		`crowdtopk_test_dist_bucket{le="5"} 4` + "\n",
		`crowdtopk_test_dist_bucket{le="25"} 5` + "\n",
		`crowdtopk_test_dist_bucket{le="+Inf"} 7` + "\n",
		"crowdtopk_test_dist_sum 148\n",
		"crowdtopk_test_dist_count 7\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
