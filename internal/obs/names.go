package obs

// The metric name catalog. Every instrumented layer registers its metrics
// under these names, so the scrape endpoint, the QueryStats snapshot and
// the documentation all speak one vocabulary. Counters end in _total;
// durations are nanosecond counters ending in _ns_total; histograms carry
// no suffix (the exporter adds _bucket/_sum/_count).
const (
	// Engine (internal/crowd): the microtask purchase path.

	// MSamples counts pairwise preference answers accepted into bags.
	MSamples = "crowdtopk_samples_total"
	// MGraded counts graded (absolute rating) microtasks purchased.
	MGraded = "crowdtopk_graded_total"
	// MTMC counts every microtask charged — pairwise and graded combined.
	// At quiescence it equals the engine's TMC and the audit-log length.
	MTMC = "crowdtopk_tmc_total"
	// MRefunds counts reserved-but-undelivered microtasks refunded after a
	// short or failed platform batch.
	MRefunds = "crowdtopk_refunds_total"
	// MCapDenied counts microtasks declined by the global spending cap (or
	// the engine's failure latch) before reaching any oracle.
	MCapDenied = "crowdtopk_cap_denied_total"
	// MDrawBatches counts batch purchases (Draw calls that reached the
	// oracle dispatch).
	MDrawBatches = "crowdtopk_draw_batches_total"
	// MRounds counts latency clock ticks: batch rounds elapsed.
	MRounds = "crowdtopk_rounds_total"
	// MBagSize is a histogram of per-pair bag sizes observed after each
	// batch purchase.
	MBagSize = "crowdtopk_bag_size"

	// Comparison runner (internal/compare): COMP processes.

	// MComparisons counts comparison processes started (memo misses).
	MComparisons = "crowdtopk_comparisons_total"
	// MConcluded counts comparisons that reached a confidence-level
	// verdict (first-wins or second-wins, not budget-exhausted ties).
	MConcluded = "crowdtopk_comparisons_concluded_total"
	// MMemoHits counts conclusion-memo lookups answered for free.
	MMemoHits = "crowdtopk_memo_hits_total"
	// MCompRounds is a histogram of batch rounds per comparison process.
	MCompRounds = "crowdtopk_comp_rounds"
	// MCompWorkload is a histogram of microtasks per comparison process.
	MCompWorkload = "crowdtopk_comp_workload"

	// Judgment store (internal/jstore via internal/compare): cross-query
	// reuse of concluded comparisons.

	// MStoreHits counts comparisons answered from the judgment store at
	// zero TMC (fresh stored verdicts served into the memo).
	MStoreHits = "crowdtopk_store_hits_total"
	// MStoreStale counts pairs whose stored record had aged past the TTL
	// (or was concluded at a lower confidence) and was served as a decayed
	// prior, re-verified with a reduced purchase.
	MStoreStale = "crowdtopk_store_stale_total"
	// MStoreMisses counts store consultations that found nothing usable.
	MStoreMisses = "crowdtopk_store_misses_total"
	// MStoreCommits counts concluded pairs committed back to the store.
	MStoreCommits = "crowdtopk_store_commits_total"
	// MStoreSize is a gauge of records currently in the judgment store.
	MStoreSize = "crowdtopk_store_size"

	// Wave workers (internal/topk): parallel comparison waves.

	// MWaves counts comparison waves executed.
	MWaves = "crowdtopk_waves_total"
	// MWaveWidth is a histogram of undecided pairs per wave.
	MWaveWidth = "crowdtopk_wave_width"
	// MWaveWidthMax is a gauge holding the widest wave seen.
	MWaveWidthMax = "crowdtopk_wave_width_max"
	// MWaveNs accumulates wall-clock nanoseconds spent inside waves.
	MWaveNs = "crowdtopk_wave_ns_total"
	// MQueueWaitNs accumulates nanoseconds pairs waited between wave
	// start and a worker picking them up — the pool's queueing delay.
	MQueueWaitNs = "crowdtopk_queue_wait_ns_total"

	// Comparison scheduler (internal/sched): the shared task pool.

	// MSchedQueueDepth is a gauge of tasks queued for a pool worker.
	MSchedQueueDepth = "crowdtopk_sched_queue_depth"
	// MSchedInFlight is a gauge of tasks currently executing.
	MSchedInFlight = "crowdtopk_sched_inflight"
	// MSchedQueueWait is a histogram of per-task nanoseconds between
	// submission and worker pickup.
	MSchedQueueWait = "crowdtopk_sched_queue_wait_ns"
	// MSchedSteals counts straggler steals: a later-round task starting
	// while an earlier-round task of the same query still runs — work the
	// wave barrier would have serialized behind the straggler.
	MSchedSteals = "crowdtopk_sched_straggler_steals_total"
	// MSchedDropped counts pending tasks dropped by query cancellation —
	// steps that were queued but never ran because their query was
	// canceled, budget-stopped or deadline-expired.
	MSchedDropped = "crowdtopk_sched_dropped_total"

	// Resilient platform (internal/crowd): retries and degradation.

	// MReposts counts shortfall re-posts (retry traffic).
	MReposts = "crowdtopk_platform_reposts_total"
	// MBackoffNs accumulates nanoseconds slept in retry backoff.
	MBackoffNs = "crowdtopk_platform_backoff_ns_total"
	// MPartialBatches counts cleanly-collected batches that came up short.
	MPartialBatches = "crowdtopk_platform_partial_batches_total"
	// MQuarantined counts answers rejected by validation.
	MQuarantined = "crowdtopk_platform_quarantined_total"
	// MPostErrors counts failed Post attempts.
	MPostErrors = "crowdtopk_platform_post_errors_total"
	// MTimeouts counts batch collections that exceeded their deadline.
	MTimeouts = "crowdtopk_platform_timeouts_total"
	// MExhausted counts batches that stayed incomplete after all retries.
	MExhausted = "crowdtopk_platform_exhausted_total"
	// MBreakerOpens counts circuit-breaker open transitions.
	MBreakerOpens = "crowdtopk_platform_breaker_opens_total"
	// MBreakerOpen is a gauge: 1 while the circuit breaker is open.
	MBreakerOpen = "crowdtopk_platform_breaker_open"
	// MFailureEvents counts failure-log events recorded.
	MFailureEvents = "crowdtopk_platform_failures_total"
	// MFailuresDropped counts failure events evicted from the bounded
	// failure ring — the price of keeping chaos runs memory-bounded.
	MFailuresDropped = "crowdtopk_platform_failures_dropped_total"

	// SLO burn-rate tracker (internal/obs/slo via internal/service). Burn
	// rates are milli-units (1000 = burning the error budget exactly at
	// the allowed rate) because the registry is integer-only; states are
	// 0 = ok, 1 = warn, 2 = page.

	// MSLOLatencyBurnShort/Long are the latency objective's burn rates
	// over the short and long evaluation windows, in milli-units.
	MSLOLatencyBurnShort = "crowdtopk_slo_latency_burn_short_milli"
	MSLOLatencyBurnLong  = "crowdtopk_slo_latency_burn_long_milli"
	// MSLOLatencyState is the latency alert state (0/1/2).
	MSLOLatencyState = "crowdtopk_slo_latency_state"
	// MSLOBudgetBurnShort/Long are the budget objective's burn rates in
	// milli-units.
	MSLOBudgetBurnShort = "crowdtopk_slo_budget_burn_short_milli"
	MSLOBudgetBurnLong  = "crowdtopk_slo_budget_burn_long_milli"
	// MSLOBudgetState is the budget alert state (0/1/2).
	MSLOBudgetState = "crowdtopk_slo_budget_state"
	// MSLOBudgetRemaining is the unspent remainder of the tracked budget.
	MSLOBudgetRemaining = "crowdtopk_slo_budget_remaining"
	// MSLOBudgetExhaustS projects seconds until the budget runs out at
	// the short-window spend rate (-1 = not spending / no budget).
	MSLOBudgetExhaustS = "crowdtopk_slo_budget_exhaust_seconds"
)

// Default histogram bucket bounds (upper bounds, ascending; the exporter
// adds the implicit +Inf bucket).
var (
	// BagSizeBuckets covers the paper's workload range: I = 30 cold start
	// up to the default per-pair budget of 1000.
	BagSizeBuckets = []int64{30, 60, 90, 150, 250, 500, 1000}
	// CompRoundsBuckets covers rounds per comparison.
	CompRoundsBuckets = []int64{1, 2, 3, 5, 8, 13, 21, 34}
	// WorkloadBuckets covers microtasks per comparison.
	WorkloadBuckets = []int64{30, 60, 90, 150, 250, 500, 1000}
	// WaveWidthBuckets covers undecided pairs per wave.
	WaveWidthBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256}
	// QueueWaitBuckets covers scheduler queue waits, 1µs to 1s in ns.
	QueueWaitBuckets = []int64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}
)

// PolicyComparisons returns the labeled counter name attributing started
// comparison processes to one sampling policy ("fixed", "voi", "pac").
func PolicyComparisons(policy string) string {
	return `crowdtopk_comparisons_total{policy="` + policy + `"}`
}

// PolicyConcluded returns the labeled counter name attributing concluded
// (verdict-reaching) comparison processes to one sampling policy.
func PolicyConcluded(policy string) string {
	return `crowdtopk_comparisons_concluded_total{policy="` + policy + `"}`
}

// PhaseTMC returns the labeled counter name attributing monetary cost to
// one framework phase ("select", "partition", "rank").
func PhaseTMC(phase string) string {
	return `crowdtopk_phase_tmc_total{phase="` + phase + `"}`
}

// PhaseRounds returns the labeled counter name attributing latency rounds
// to one framework phase.
func PhaseRounds(phase string) string {
	return `crowdtopk_phase_rounds_total{phase="` + phase + `"}`
}

// PhaseOf inverts PhaseTMC/PhaseRounds: given a registered metric name it
// reports the phase label and whether the metric is the TMC (true) or
// rounds (false) counter. ok is false for non-phase metrics.
func PhaseOf(name string) (phase string, isTMC bool, ok bool) {
	const (
		tmcPrefix    = `crowdtopk_phase_tmc_total{phase="`
		roundsPrefix = `crowdtopk_phase_rounds_total{phase="`
		suffix       = `"}`
	)
	strip := func(s, prefix string) (string, bool) {
		if len(s) > len(prefix)+len(suffix) && s[:len(prefix)] == prefix && s[len(s)-len(suffix):] == suffix {
			return s[len(prefix) : len(s)-len(suffix)], true
		}
		return "", false
	}
	if p, found := strip(name, tmcPrefix); found {
		return p, true, true
	}
	if p, found := strip(name, roundsPrefix); found {
		return p, false, true
	}
	return "", false, false
}
