package obs

import (
	"fmt"
	"net/http"
	"net/http/pprof"
)

// Telemetry bundles the two halves of the subsystem: the metrics registry
// and the span tracer. A nil *Telemetry means disabled; the accessors are
// nil-safe so wiring code reads the same either way.
type Telemetry struct {
	Metrics *Registry
	Trace   *Tracer
}

// New returns an enabled telemetry bundle.
func New() *Telemetry {
	return &Telemetry{Metrics: NewRegistry(), Trace: NewTracer()}
}

// Registry returns the metrics registry, nil when telemetry is disabled.
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.Metrics
}

// Tracer returns the span tracer, nil when telemetry is disabled.
func (t *Telemetry) Tracer() *Tracer {
	if t == nil {
		return nil
	}
	return t.Trace
}

// Handler serves the telemetry over HTTP:
//
//	/metrics      Prometheus text exposition of the registry
//	/debug/vars   the same snapshot as expvar-style JSON
//	/trace        the finished spans as JSONL (the -trace-out format, live)
//	/debug/pprof  the standard runtime profiles (CPU, heap, goroutine, ...)
//
// Mounting pprof here instead of http.DefaultServeMux keeps the profiles
// off any mux the embedding program may already export.
func Handler(reg *Registry, tr *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.WriteVars(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = tr.WriteJSONL(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "crowdtopk telemetry: /metrics /debug/vars /trace /debug/pprof/")
	})
	return mux
}

// Handler serves this telemetry bundle; see the package-level Handler.
func (t *Telemetry) Handler() http.Handler {
	return Handler(t.Registry(), t.Tracer())
}
