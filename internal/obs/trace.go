package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies a span within one tracer; 0 means "no span" and is
// used as the root parent.
type SpanID uint64

// Span is one finished operation in a query's trace tree: a whole query, a
// framework phase, or one comparison process COMP(o_i, o_j). Spans carry
// numeric attributes (costs, workloads), string labels (verdicts, pair
// identities) and an optional trajectory — the per-round series of
// confidence-interval half-widths that shows a comparison converging.
//
// Spans serialize one-per-line as JSON (JSONL), so traces stream to disk
// and replay with nothing but the standard library.
type Span struct {
	ID      SpanID `json:"id"`
	Parent  SpanID `json:"parent,omitempty"`
	Name    string `json:"name"`
	StartNs int64  `json:"start_ns"`
	EndNs   int64  `json:"end_ns"`
	// Attrs holds numeric attributes: "tmc", "rounds", "workload", ...
	Attrs map[string]float64 `json:"attrs,omitempty"`
	// Labels holds string attributes: "pair", "verdict", "algorithm", ...
	Labels map[string]string `json:"labels,omitempty"`
	// Traj is the confidence-interval half-width after each batch round of
	// a comparison span — the paper's confidence evolution, recorded live.
	Traj []float64 `json:"traj,omitempty"`
}

// Attr returns the named numeric attribute rounded to int64 (0 if absent).
// Cost attributes are integral by construction, so the round trip through
// JSON float64 is exact far beyond any realistic TMC.
func (s Span) Attr(name string) int64 { return int64(s.Attrs[name]) }

// DefaultMaxSpans bounds a tracer's in-memory span store; spans beyond the
// bound are counted as dropped rather than growing without limit.
const DefaultMaxSpans = 1 << 20

// Tracer collects finished spans. Starting a span is one small allocation;
// finishing appends it under a mutex. A nil *Tracer hands out nil
// ActiveSpans whose every method is a no-op, so disabled tracing costs one
// nil check at each site.
type Tracer struct {
	epoch    time.Time
	maxSpans int
	nextID   atomic.Uint64
	dropped  atomic.Int64

	mu    sync.Mutex
	spans []Span
}

// NewTracer returns an empty tracer whose span clock starts now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now(), maxSpans: DefaultMaxSpans}
}

// Start opens a span under the given parent (0 for a root span). Nil on a
// nil receiver.
func (t *Tracer) Start(name string, parent SpanID) *ActiveSpan {
	if t == nil {
		return nil
	}
	return &ActiveSpan{
		t: t,
		s: Span{
			ID:      SpanID(t.nextID.Add(1)),
			Parent:  parent,
			Name:    name,
			StartNs: time.Since(t.epoch).Nanoseconds(),
		},
	}
}

// Spans returns a copy of the finished spans in completion order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Dropped returns how many finished spans were discarded because the
// tracer was full.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

func (t *Tracer) finish(s Span) {
	t.mu.Lock()
	if len(t.spans) >= t.maxSpans {
		t.mu.Unlock()
		t.dropped.Add(1)
		return
	}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// WriteJSONL streams every finished span as one JSON object per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	spans := t.Spans()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range spans {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace written by WriteJSONL. Blank lines are
// skipped; a malformed line fails with its line number so truncated traces
// are diagnosed rather than silently half-read.
func ReadJSONL(r io.Reader) ([]Span, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	var spans []Span
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var s Span
		if err := json.Unmarshal(raw, &s); err != nil {
			return spans, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		spans = append(spans, s)
	}
	if err := sc.Err(); err != nil {
		return spans, err
	}
	return spans, nil
}

// SumAttr aggregates one numeric attribute over a recorded trace, grouped
// by span name — the post-hoc cost analysis a replayed JSONL trace
// supports: SumAttr(spans, "tmc") recovers the exact per-phase monetary
// breakdown of the run that recorded the trace.
func SumAttr(spans []Span, attr string) map[string]int64 {
	out := make(map[string]int64)
	for _, s := range spans {
		if v, ok := s.Attrs[attr]; ok {
			out[s.Name] += int64(v)
		}
	}
	return out
}

// ActiveSpan is a span being recorded. All methods are no-ops on a nil
// receiver. An ActiveSpan must be mutated by one goroutine at a time;
// handing it across goroutines requires an intervening happens-before
// (the wave barrier provides one for comparison spans).
type ActiveSpan struct {
	t *Tracer
	s Span
}

// ID returns the span's id; 0 on a nil receiver.
func (a *ActiveSpan) ID() SpanID {
	if a == nil {
		return 0
	}
	return a.s.ID
}

// SetAttr sets a numeric attribute.
func (a *ActiveSpan) SetAttr(name string, v float64) {
	if a == nil {
		return
	}
	if a.s.Attrs == nil {
		a.s.Attrs = make(map[string]float64, 4)
	}
	a.s.Attrs[name] = v
}

// SetLabel sets a string label.
func (a *ActiveSpan) SetLabel(name, v string) {
	if a == nil {
		return
	}
	if a.s.Labels == nil {
		a.s.Labels = make(map[string]string, 2)
	}
	a.s.Labels[name] = v
}

// Observe appends one point to the span's trajectory.
func (a *ActiveSpan) Observe(v float64) {
	if a == nil {
		return
	}
	a.s.Traj = append(a.s.Traj, v)
}

// End stamps the span's end time and hands it to the tracer. End must be
// called at most once.
func (a *ActiveSpan) End() {
	if a == nil {
		return
	}
	a.s.EndNs = time.Since(a.t.epoch).Nanoseconds()
	a.t.finish(a.s)
}
