// Package slo tracks service-level objectives for the query service:
// query latency (fraction of queries finishing under a threshold) and
// budget burn (session spend rate versus the rate that would exhaust the
// cap exactly at the end of a configured horizon).
//
// Both are evaluated with the multi-window burn-rate method: a burn rate
// of 1.0 means the error budget is being consumed exactly as fast as the
// objective allows; sustained rates above the page/warn thresholds over
// a (short, long) window pair trip the corresponding alert. Requiring
// both windows to burn keeps alerts fast to fire on real regressions and
// quick to clear once the problem stops.
//
// The tracker keeps one-second buckets in fixed rings and never starts a
// goroutine: callers feed it observations (query latencies, spend
// deltas) and read states; time advances via an injectable clock so
// alert transitions are unit-testable with a fake clock. A nil *Tracker
// is a no-op, matching the internal/obs idiom.
package slo

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Objectives configures the tracked service-level objectives. Zero
// fields disable the corresponding objective.
type Objectives struct {
	// LatencyTarget is the per-query latency threshold; a query counts
	// as "good" when it finishes (either outcome) within this duration.
	LatencyTarget time.Duration
	// LatencyGoal is the objective fraction of good queries, e.g. 0.95.
	// The latency error budget is 1 − LatencyGoal.
	LatencyGoal float64
	// Budget is the session spend cap the burn objective guards —
	// normally the session MaxTotalCost; 0 disables budget burn tracking.
	Budget int64
	// BudgetHorizon is the period the cap is supposed to last. Spending
	// at exactly Budget/BudgetHorizon per second is a burn rate of 1.0.
	BudgetHorizon time.Duration
	// ShortWindow and LongWindow are the burn-rate evaluation windows;
	// an alert requires the threshold to be exceeded over both. Defaults:
	// 1m short, 10m long.
	ShortWindow time.Duration
	LongWindow  time.Duration
	// WarnBurn and PageBurn are the burn-rate thresholds for the two
	// alert severities. Defaults: warn 2, page 6.
	WarnBurn float64
	PageBurn float64
}

func (o *Objectives) withDefaults() Objectives {
	v := *o
	if v.ShortWindow <= 0 {
		v.ShortWindow = time.Minute
	}
	if v.LongWindow <= 0 {
		v.LongWindow = 10 * time.Minute
	}
	if v.LongWindow < v.ShortWindow {
		v.LongWindow = v.ShortWindow
	}
	if v.WarnBurn <= 0 {
		v.WarnBurn = 2
	}
	if v.PageBurn <= 0 {
		v.PageBurn = 6
	}
	if v.BudgetHorizon <= 0 {
		v.BudgetHorizon = time.Hour
	}
	return v
}

// State is an alert severity.
type State int

const (
	// OK: both windows under the warn threshold.
	OK State = iota
	// Warn: both windows burning above WarnBurn.
	Warn
	// Page: both windows burning above PageBurn.
	Page
)

func (s State) String() string {
	switch s {
	case Warn:
		return "warn"
	case Page:
		return "page"
	default:
		return "ok"
	}
}

// ring is a fixed one-second-bucket accumulator. Buckets older than the
// ring length are lazily zeroed as the write cursor advances.
type ring struct {
	buckets []int64
	// lastSec is the unix second of the bucket the cursor points at.
	lastSec int64
}

func newRing(window time.Duration) *ring {
	n := int(window / time.Second)
	if n < 1 {
		n = 1
	}
	return &ring{buckets: make([]int64, n), lastSec: -1}
}

// advance moves the cursor to sec, zeroing skipped buckets.
func (r *ring) advance(sec int64) {
	if r.lastSec < 0 {
		r.lastSec = sec
		return
	}
	if sec <= r.lastSec {
		return
	}
	steps := sec - r.lastSec
	if steps >= int64(len(r.buckets)) {
		for i := range r.buckets {
			r.buckets[i] = 0
		}
	} else {
		for s := r.lastSec + 1; s <= sec; s++ {
			r.buckets[s%int64(len(r.buckets))] = 0
		}
	}
	r.lastSec = sec
}

// resized returns a ring covering the new window, carrying over the most
// recent seconds of history that fit. Shrinking truncates the oldest
// buckets; growing leaves the not-yet-lived part of the window empty (it
// refills within one window of observations).
func (r *ring) resized(window time.Duration) *ring {
	n := newRing(window)
	if len(n.buckets) == len(r.buckets) {
		n.buckets, n.lastSec = r.buckets, r.lastSec
		return n
	}
	if r.lastSec < 0 {
		return n
	}
	keep := int64(len(n.buckets))
	if k := int64(len(r.buckets)); k < keep {
		keep = k
	}
	for s := r.lastSec - keep + 1; s <= r.lastSec; s++ {
		if s < 0 {
			continue
		}
		n.buckets[s%int64(len(n.buckets))] = r.buckets[s%int64(len(r.buckets))]
	}
	n.lastSec = r.lastSec
	return n
}

func (r *ring) add(sec int64, v int64) {
	r.advance(sec)
	r.buckets[sec%int64(len(r.buckets))] += v
}

// sum returns the total over the most recent `window` seconds ending at
// sec (inclusive).
func (r *ring) sum(sec int64, window int64) int64 {
	r.advance(sec)
	if window > int64(len(r.buckets)) {
		window = int64(len(r.buckets))
	}
	var total int64
	for s := sec - window + 1; s <= sec; s++ {
		if s < 0 {
			continue
		}
		total += r.buckets[s%int64(len(r.buckets))]
	}
	return total
}

// validate rejects objectives that would make the tracker lie rather
// than merely disable a dimension (zero fields disable; negatives and
// inverted thresholds are configuration errors).
func (o Objectives) validate() error {
	if o.LatencyTarget < 0 {
		return fmt.Errorf("slo: negative latency target %v", o.LatencyTarget)
	}
	if o.LatencyTarget > 0 && (o.LatencyGoal <= 0 || o.LatencyGoal >= 1) {
		return fmt.Errorf("slo: latency goal %v outside (0,1)", o.LatencyGoal)
	}
	if o.Budget < 0 {
		return fmt.Errorf("slo: negative budget %d", o.Budget)
	}
	if o.BudgetHorizon < 0 || o.ShortWindow < 0 || o.LongWindow < 0 {
		return errors.New("slo: negative window or horizon")
	}
	if o.WarnBurn < 0 || o.PageBurn < 0 {
		return errors.New("slo: negative burn threshold")
	}
	if o.WarnBurn > 0 && o.PageBurn > 0 && o.PageBurn < o.WarnBurn {
		return fmt.Errorf("slo: page threshold %v below warn threshold %v", o.PageBurn, o.WarnBurn)
	}
	return nil
}

// WindowBurn is one evaluation window's burn-rate reading.
type WindowBurn struct {
	// Window is the evaluation window length in seconds.
	Window int64 `json:"window_s"`
	// Burn is the burn rate: error-budget consumption relative to the
	// rate the objective allows (1.0 = exactly on budget).
	Burn float64 `json:"burn"`
}

// LatencyStatus is the latency objective's snapshot.
type LatencyStatus struct {
	Enabled bool `json:"enabled"`
	// TargetMs and Goal echo the configured objective.
	TargetMs int64   `json:"target_ms,omitempty"`
	Goal     float64 `json:"goal,omitempty"`
	// Total and Breached count queries observed / over-target within the
	// long window.
	Total    int64 `json:"total"`
	Breached int64 `json:"breached"`
	// Short and Long are the two windows' burn rates; State combines
	// them.
	Short WindowBurn `json:"short"`
	Long  WindowBurn `json:"long"`
	State string     `json:"state"`
}

// BudgetStatus is the budget-burn objective's snapshot.
type BudgetStatus struct {
	Enabled bool `json:"enabled"`
	// Budget and HorizonS echo the configured objective; AllowedPerSec is
	// the spend rate that exhausts Budget exactly at the horizon.
	Budget        int64   `json:"budget,omitempty"`
	HorizonS      int64   `json:"horizon_s,omitempty"`
	AllowedPerSec float64 `json:"allowed_per_sec,omitempty"`
	// Spent is the cumulative spend fed to the tracker; Remaining is
	// Budget − Spent (floored at 0).
	Spent     int64 `json:"spent"`
	Remaining int64 `json:"remaining"`
	// ExhaustSeconds projects seconds until the budget runs out at the
	// short-window spend rate; -1 when not spending or no budget.
	ExhaustSeconds int64      `json:"exhaust_s"`
	Short          WindowBurn `json:"short"`
	Long           WindowBurn `json:"long"`
	State          string     `json:"state"`
}

// Status is the full tracker snapshot served by /debug/slo.
type Status struct {
	Latency LatencyStatus `json:"latency"`
	Budget  BudgetStatus  `json:"budget"`
}

// Tracker evaluates the objectives over rolling windows. Safe for
// concurrent use; a nil *Tracker is a no-op.
type Tracker struct {
	obj Objectives
	now func() time.Time

	mu sync.Mutex
	// latency rings: queries finished / queries over target.
	total    *ring
	breached *ring
	// spend ring and cumulative spend.
	spend *ring
	spent int64
}

// New builds a tracker with the given objectives. now is the clock; nil
// means time.Now (tests inject a fake).
func New(obj Objectives, now func() time.Time) *Tracker {
	o := obj.withDefaults()
	if now == nil {
		now = time.Now
	}
	return &Tracker{
		obj:      o,
		now:      now,
		total:    newRing(o.LongWindow),
		breached: newRing(o.LongWindow),
		spend:    newRing(o.LongWindow),
	}
}

// Objectives returns the tracker's current objectives with defaults
// resolved; the zero value from a nil tracker.
func (t *Tracker) Objectives() Objectives {
	if t == nil {
		return Objectives{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.obj
}

// Reconfigure swaps the tracked objectives at runtime — the ops hook
// behind POST /debug/slo: tighten the latency target during an incident,
// raise the budget horizon after a top-up, widen the windows to calm a
// flapping alert. The swap happens under the same lock every observation
// takes, so no sample is lost or double-counted across it; the rings are
// resized when the long window changes, carrying over the most recent
// history that fits (a grown window refills within one window of
// observations). Cumulative spend is preserved, so Remaining stays
// honest across a budget change. Invalid objectives are rejected and the
// tracker is left untouched.
func (t *Tracker) Reconfigure(obj Objectives) error {
	if t == nil {
		return errors.New("slo: no tracker to reconfigure")
	}
	if err := obj.validate(); err != nil {
		return err
	}
	o := obj.withDefaults()
	t.mu.Lock()
	defer t.mu.Unlock()
	if o.LongWindow != t.obj.LongWindow {
		t.total = t.total.resized(o.LongWindow)
		t.breached = t.breached.resized(o.LongWindow)
		t.spend = t.spend.resized(o.LongWindow)
	}
	t.obj = o
	return nil
}

// ObserveQuery records one finished query's wall latency.
func (t *Tracker) ObserveQuery(latency time.Duration) {
	if t == nil {
		return
	}
	sec := t.now().Unix()
	t.mu.Lock()
	t.total.add(sec, 1)
	if t.obj.LatencyTarget > 0 && latency > t.obj.LatencyTarget {
		t.breached.add(sec, 1)
	}
	t.mu.Unlock()
}

// ObserveSpend records a spend delta (microtasks charged since the last
// call). Deltas <= 0 are ignored.
func (t *Tracker) ObserveSpend(delta int64) {
	if t == nil || delta <= 0 {
		return
	}
	sec := t.now().Unix()
	t.mu.Lock()
	t.spend.add(sec, delta)
	t.spent += delta
	t.mu.Unlock()
}

// SyncSpend feeds the tracker an absolute cumulative spend (e.g. the
// session TMC); it records the positive delta since the last sync. This
// lets callers that only see a monotonic meter drive the spend ring
// lazily — on scrape, on query completion — without a sampler goroutine.
func (t *Tracker) SyncSpend(cumulative int64) {
	if t == nil {
		return
	}
	sec := t.now().Unix()
	t.mu.Lock()
	if d := cumulative - t.spent; d > 0 {
		t.spend.add(sec, d)
		t.spent = cumulative
	}
	t.mu.Unlock()
}

func alertState(short, long float64, warn, page float64) State {
	if short >= page && long >= page {
		return Page
	}
	if short >= warn && long >= warn {
		return Warn
	}
	return OK
}

// Snapshot evaluates both objectives at the current clock reading.
func (t *Tracker) Snapshot() Status {
	var st Status
	st.Latency.State = OK.String()
	st.Budget.State = OK.String()
	if t == nil {
		return st
	}
	sec := t.now().Unix()
	shortS := int64(t.obj.ShortWindow / time.Second)
	longS := int64(t.obj.LongWindow / time.Second)

	t.mu.Lock()
	defer t.mu.Unlock()

	// Latency objective: burn = breach-fraction / error-budget.
	if t.obj.LatencyTarget > 0 && t.obj.LatencyGoal > 0 && t.obj.LatencyGoal < 1 {
		l := &st.Latency
		l.Enabled = true
		l.TargetMs = t.obj.LatencyTarget.Milliseconds()
		l.Goal = t.obj.LatencyGoal
		budget := 1 - t.obj.LatencyGoal
		burnOver := func(win int64) float64 {
			tot := t.total.sum(sec, win)
			if tot == 0 {
				return 0
			}
			return (float64(t.breached.sum(sec, win)) / float64(tot)) / budget
		}
		l.Short.Window = shortS
		l.Short.Burn = burnOver(shortS)
		l.Long.Window = longS
		l.Long.Burn = burnOver(longS)
		l.Total = t.total.sum(sec, longS)
		l.Breached = t.breached.sum(sec, longS)
		l.State = alertState(l.Short.Burn, l.Long.Burn, t.obj.WarnBurn, t.obj.PageBurn).String()
	}

	// Budget objective: burn = observed spend rate / allowed rate.
	if t.obj.Budget > 0 {
		b := &st.Budget
		b.Enabled = true
		b.Budget = t.obj.Budget
		b.HorizonS = int64(t.obj.BudgetHorizon / time.Second)
		allowed := float64(t.obj.Budget) / t.obj.BudgetHorizon.Seconds()
		b.AllowedPerSec = allowed
		b.Spent = t.spent
		if b.Remaining = t.obj.Budget - t.spent; b.Remaining < 0 {
			b.Remaining = 0
		}
		rateOver := func(win int64) float64 {
			return float64(t.spend.sum(sec, win)) / float64(win)
		}
		b.Short.Window = shortS
		b.Long.Window = longS
		if allowed > 0 {
			b.Short.Burn = rateOver(shortS) / allowed
			b.Long.Burn = rateOver(longS) / allowed
		}
		shortRate := rateOver(shortS)
		b.ExhaustSeconds = -1
		if shortRate > 0 && b.Remaining > 0 {
			b.ExhaustSeconds = int64(float64(b.Remaining) / shortRate)
		} else if b.Remaining == 0 {
			b.ExhaustSeconds = 0
		}
		b.State = alertState(b.Short.Burn, b.Long.Burn, t.obj.WarnBurn, t.obj.PageBurn).String()
	}
	return st
}
