package slo

import (
	"encoding/json"
	"testing"
	"time"
)

// fakeClock is a deterministic injectable clock.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time       { return f.t }
func (f *fakeClock) tick(d time.Duration) { f.t = f.t.Add(d) }
func newFakeClock() *fakeClock            { return &fakeClock{t: time.Unix(1_000_000, 0)} }
func tracker(obj Objectives) (*Tracker, *fakeClock) {
	c := newFakeClock()
	return New(obj, c.now), c
}

func TestNilTrackerNoops(t *testing.T) {
	var tr *Tracker
	tr.ObserveQuery(time.Second)
	tr.ObserveSpend(10)
	tr.SyncSpend(100)
	st := tr.Snapshot()
	if st.Latency.State != "ok" || st.Budget.State != "ok" {
		t.Fatalf("nil snapshot = %+v", st)
	}
}

// TestLatencyBurnTransitions is the deterministic alert-transition
// table: a scripted sequence of (advance clock, observe queries) steps
// and the expected state after each.
func TestLatencyBurnTransitions(t *testing.T) {
	obj := Objectives{
		LatencyTarget: 100 * time.Millisecond,
		LatencyGoal:   0.9, // error budget 10%; warn at 20% breaches, page at 60%
		ShortWindow:   10 * time.Second,
		LongWindow:    40 * time.Second,
		WarnBurn:      2,
		PageBurn:      6,
	}
	tr, clk := tracker(obj)

	steps := []struct {
		name    string
		advance time.Duration
		good    int
		bad     int
		want    string
	}{
		{"all good", 0, 20, 0, "ok"},
		// 16 bad over 40 observed in both windows → 40% breaches,
		// burn 4 ≥ warn(2), < page(6).
		{"breaches start", time.Second, 4, 16, "warn"},
		// Flood of breaches: 56/80 = 70% → burn 7 ≥ page(6) in both.
		{"outage", time.Second, 0, 40, "page"},
		// Recovery: the short window clears within 10s and an alert
		// requires BOTH windows burning, so the state clears immediately
		// even though the long window still remembers the outage.
		{"recovering", 15 * time.Second, 30, 0, "ok"},
		// Long window fully drained — still ok, burn now 0 in both.
		{"recovered", 45 * time.Second, 30, 0, "ok"},
	}
	for _, s := range steps {
		clk.tick(s.advance)
		for n := 0; n < s.good; n++ {
			tr.ObserveQuery(50 * time.Millisecond)
		}
		for n := 0; n < s.bad; n++ {
			tr.ObserveQuery(500 * time.Millisecond)
		}
		st := tr.Snapshot()
		if st.Latency.State != s.want {
			t.Fatalf("step %q: state = %s (short %.2f long %.2f), want %s",
				s.name, st.Latency.State, st.Latency.Short.Burn, st.Latency.Long.Burn, s.want)
		}
	}
}

// TestBudgetBurnTransitions scripts spend against a cap: on-pace → fast
// burn (warn) → runaway (page) → spend stops → recovery.
func TestBudgetBurnTransitions(t *testing.T) {
	obj := Objectives{
		Budget:        36000, // allowed 10/s over the 1h horizon
		BudgetHorizon: time.Hour,
		ShortWindow:   10 * time.Second,
		LongWindow:    40 * time.Second,
		WarnBurn:      2,
		PageBurn:      6,
	}
	tr, clk := tracker(obj)

	// On pace: 10/s for 40s → burn 1.0 everywhere.
	for n := 0; n < 40; n++ {
		clk.tick(time.Second)
		tr.ObserveSpend(10)
	}
	st := tr.Snapshot()
	if st.Budget.State != "ok" {
		t.Fatalf("on-pace state = %s (short %.2f long %.2f)", st.Budget.State, st.Budget.Short.Burn, st.Budget.Long.Burn)
	}
	if st.Budget.Short.Burn < 0.9 || st.Budget.Short.Burn > 1.1 {
		t.Fatalf("on-pace short burn = %.2f, want ~1.0", st.Budget.Short.Burn)
	}

	// 3x pace for 40s → warn in both windows.
	for n := 0; n < 40; n++ {
		clk.tick(time.Second)
		tr.ObserveSpend(30)
	}
	if st = tr.Snapshot(); st.Budget.State != "warn" {
		t.Fatalf("3x-pace state = %s (short %.2f long %.2f)", st.Budget.State, st.Budget.Short.Burn, st.Budget.Long.Burn)
	}

	// 10x pace for 40s → page.
	for n := 0; n < 40; n++ {
		clk.tick(time.Second)
		tr.ObserveSpend(100)
	}
	if st = tr.Snapshot(); st.Budget.State != "page" {
		t.Fatalf("10x-pace state = %s (short %.2f long %.2f)", st.Budget.State, st.Budget.Short.Burn, st.Budget.Long.Burn)
	}
	if st.Budget.ExhaustSeconds < 0 {
		t.Fatalf("paging but no exhaustion projection: %+v", st.Budget)
	}

	// Spend stops; short window clears within 10s → drops to warn-at-most,
	// then fully ok once the long window drains.
	clk.tick(11 * time.Second)
	if st = tr.Snapshot(); st.Budget.State == "page" {
		t.Fatalf("short window should have cleared page: %+v", st.Budget)
	}
	clk.tick(41 * time.Second)
	if st = tr.Snapshot(); st.Budget.State != "ok" {
		t.Fatalf("drained state = %s", st.Budget.State)
	}
	if st.Budget.Spent != 40*10+40*30+40*100 {
		t.Fatalf("cumulative spent = %d", st.Budget.Spent)
	}
}

func TestSyncSpendDeltas(t *testing.T) {
	obj := Objectives{Budget: 1000, BudgetHorizon: time.Hour}
	tr, clk := tracker(obj)
	tr.SyncSpend(100)
	clk.tick(time.Second)
	tr.SyncSpend(250)
	tr.SyncSpend(250) // no delta, no double count
	tr.SyncSpend(200) // regression ignored (monotonic meter)
	st := tr.Snapshot()
	if st.Budget.Spent != 250 {
		t.Fatalf("spent = %d, want 250", st.Budget.Spent)
	}
	if st.Budget.Remaining != 750 {
		t.Fatalf("remaining = %d, want 750", st.Budget.Remaining)
	}
}

func TestExhaustionProjection(t *testing.T) {
	obj := Objectives{
		Budget:        1000,
		BudgetHorizon: time.Hour,
		ShortWindow:   10 * time.Second,
		LongWindow:    time.Minute,
	}
	tr, clk := tracker(obj)
	// 50/s over the short window with 500 left → ~10s to exhaustion.
	for n := 0; n < 10; n++ {
		clk.tick(time.Second)
		tr.ObserveSpend(50)
	}
	st := tr.Snapshot()
	if st.Budget.Remaining != 500 {
		t.Fatalf("remaining = %d", st.Budget.Remaining)
	}
	if st.Budget.ExhaustSeconds < 9 || st.Budget.ExhaustSeconds > 11 {
		t.Fatalf("exhaust projection = %ds, want ~10s", st.Budget.ExhaustSeconds)
	}
	// Drain the cap entirely.
	tr.ObserveSpend(500)
	if st = tr.Snapshot(); st.Budget.Remaining != 0 || st.Budget.ExhaustSeconds != 0 {
		t.Fatalf("exhausted budget = %+v", st.Budget)
	}
}

// TestReconfigure swaps objectives mid-flight: spend history must be
// carried over into the resized rings and the new thresholds take effect
// on the next snapshot, clock-safely under the fake clock.
func TestReconfigure(t *testing.T) {
	obj := Objectives{
		Budget:        36000, // allowed 10/s over the 1h horizon
		BudgetHorizon: time.Hour,
		ShortWindow:   10 * time.Second,
		LongWindow:    40 * time.Second,
		WarnBurn:      2,
		PageBurn:      6,
	}
	tr, clk := tracker(obj)
	// 3x pace for 40s → warn.
	for n := 0; n < 40; n++ {
		clk.tick(time.Second)
		tr.ObserveSpend(30)
	}
	if st := tr.Snapshot(); st.Budget.State != "warn" {
		t.Fatalf("pre-reconfigure state = %s", st.Budget.State)
	}

	// Triple the budget: the same spend rate is now on pace. History and
	// cumulative spend survive the swap (the long window shrinks to 20s).
	next := obj
	next.Budget = 3 * 36000
	next.LongWindow = 20 * time.Second
	if err := tr.Reconfigure(next); err != nil {
		t.Fatal(err)
	}
	st := tr.Snapshot()
	if st.Budget.State != "ok" {
		t.Fatalf("post-reconfigure state = %s (short %.2f long %.2f)",
			st.Budget.State, st.Budget.Short.Burn, st.Budget.Long.Burn)
	}
	if st.Budget.Short.Burn < 0.9 || st.Budget.Short.Burn > 1.1 {
		t.Fatalf("post-reconfigure short burn = %.2f, want ~1.0 (history lost?)", st.Budget.Short.Burn)
	}
	if st.Budget.Spent != 40*30 {
		t.Fatalf("cumulative spend lost across reconfigure: %d", st.Budget.Spent)
	}

	// Growing the window back carries the recent 20s of history forward.
	next.LongWindow = 40 * time.Second
	if err := tr.Reconfigure(next); err != nil {
		t.Fatal(err)
	}
	if st = tr.Snapshot(); st.Budget.Long.Burn <= 0 {
		t.Fatalf("grown window dropped all history: %+v", st.Budget)
	}

	// Invalid objectives are rejected and leave the tracker untouched.
	bad := next
	bad.Budget = -1
	if err := tr.Reconfigure(bad); err == nil {
		t.Fatal("negative budget accepted")
	}
	bad = next
	bad.LatencyTarget = time.Second
	bad.LatencyGoal = 1.5
	if err := tr.Reconfigure(bad); err == nil {
		t.Fatal("latency goal outside (0,1) accepted")
	}
	bad = next
	bad.WarnBurn, bad.PageBurn = 6, 2
	if err := tr.Reconfigure(bad); err == nil {
		t.Fatal("inverted warn/page thresholds accepted")
	}
	if got := tr.Objectives().Budget; got != next.Budget {
		t.Fatalf("rejected reconfigure mutated objectives: budget %d", got)
	}
	var nilTr *Tracker
	if err := nilTr.Reconfigure(next); err == nil {
		t.Fatal("nil tracker reconfigure succeeded")
	}
}

func TestRingLazyZeroing(t *testing.T) {
	r := newRing(5 * time.Second)
	r.add(100, 7)
	if got := r.sum(100, 5); got != 7 {
		t.Fatalf("sum = %d", got)
	}
	// Jump far past the ring length: everything stale must clear.
	if got := r.sum(1000, 5); got != 0 {
		t.Fatalf("stale sum = %d, want 0", got)
	}
	// Partial advance re-zeros only skipped buckets.
	r.add(1000, 3)
	r.add(1002, 4)
	if got := r.sum(1002, 3); got != 7 {
		t.Fatalf("windowed sum = %d, want 7", got)
	}
	if got := r.sum(1002, 1); got != 4 {
		t.Fatalf("1s sum = %d, want 4", got)
	}
}

func TestSnapshotSerializes(t *testing.T) {
	tr, _ := tracker(Objectives{
		LatencyTarget: time.Second, LatencyGoal: 0.99,
		Budget: 100, BudgetHorizon: time.Minute,
	})
	tr.ObserveQuery(2 * time.Second)
	tr.ObserveSpend(5)
	b, err := json.Marshal(tr.Snapshot())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for _, want := range []string{`"latency"`, `"budget"`, `"state"`, `"burn"`} {
		if !containsStr(string(b), want) {
			t.Fatalf("snapshot JSON missing %s: %s", want, b)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
