package experiment

import (
	"fmt"

	"crowdtopk/internal/compare"
	"crowdtopk/internal/topk"
)

// fig16SweetSpots are the sweet-spot constants of Figure 16.
var fig16SweetSpots = []float64{1.25, 1.50, 1.75, 2.00}

// Figure16 reproduces Appendix F's Figure 16: SPR's TMC as a function of
// the sweet-spot range c on IMDb and Book — the paper's point being that
// the cost is stable in c.
func Figure16(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	cfg.validate()

	cols := make([]string, len(fig16SweetSpots))
	for i, c := range fig16SweetSpots {
		cols[i] = fmt.Sprintf("c=%.2f", c)
	}
	t := newTable("fig16", "SPR TMC vs sweet-spot range c", []string{"imdb", "book"}, cols)
	for ri, ds := range []string{"imdb", "book"} {
		src := MakeSource(ds, cfg.Seed)
		for ci, c := range fig16SweetSpots {
			m := measure(func(int) topk.Algorithm {
				return &topk.SPR{C: c, MaxRefChanges: cfg.MaxRefChanges}
			}, src, cfg)
			t.Values[ri][ci] = m.TMC
		}
	}
	return []*Table{t}
}

// Figure17 reproduces Appendix F's Figure 17: SPR's TMC under the Stein
// comparison process versus the Student process, swept over k on IMDb —
// the two estimators should be nearly indistinguishable.
func Figure17(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	cfg.validate()
	src := MakeSource("imdb", cfg.Seed)

	cols := make([]string, len(paperKs))
	for i, k := range paperKs {
		cols[i] = fmt.Sprintf("k=%d", k)
	}
	t := newTable("fig17", "SPR TMC: Stein vs Student comparison process (IMDb)",
		[]string{"student", "stein"}, cols)
	for ri, policyName := range []string{"student", "stein"} {
		for ci, k := range paperKs {
			kcfg := cfg
			kcfg.K = k
			var total float64
			for run := 0; run < kcfg.Runs; run++ {
				var policy compare.Tester
				if policyName == "student" {
					policy = compare.NewStudent(kcfg.Alpha)
				} else {
					policy = compare.NewStein(kcfg.Alpha)
				}
				// Independent crowd seeds per estimator: their stopping
				// rules are algebraically equivalent, so shared seeds
				// would show exactly-equal numbers rather than the
				// paper's natural near-equality.
				r := newRunnerWithPolicy(src, kcfg, policy, kcfg.Seed+int64(1000*run)+int64(ri)*7777)
				alg := &topk.SPR{C: kcfg.C, MaxRefChanges: kcfg.MaxRefChanges}
				total += float64(topk.Run(alg, r, k).TMC)
			}
			t.Values[ri][ci] = total / float64(kcfg.Runs)
		}
	}
	return []*Table{t}
}
