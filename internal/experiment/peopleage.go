package experiment

// PeopleAge reproduces the Appendix F interactive experiment: the 10
// youngest of 100 people photos at 1−α = 0.90 and B = 100. The paper ran
// this one live on CrowdFlower (TMC $10.56, NDCG 0.917) and reports that
// its own simulation closely tracks the live run (TMC $9.57, NDCG 0.905);
// this driver is the simulation side.
func PeopleAge(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	cfg.K = 10
	cfg.Alpha = 0.10
	cfg.B = 100
	cfg.validate()

	src := MakeSource("peopleage", cfg.Seed)
	m := measureNamed("spr", src, cfg)
	t := newTable("peopleage", "Interactive PeopleAge experiment (k=10, 1-α=0.90, B=100)",
		[]string{"spr"}, []string{"TMC", "NDCG", "latency"})
	t.Values[0][0] = m.TMC
	t.Values[0][1] = m.NDCG
	t.Values[0][2] = m.Rounds
	t.Notes = append(t.Notes,
		"paper: live CrowdFlower run TMC 10,560 microtasks / NDCG 0.917; simulation 9,570 / 0.905")
	return []*Table{t}
}
