package experiment

import (
	"fmt"
	"math/rand"

	"crowdtopk/internal/btl"
	"crowdtopk/internal/compare"
	"crowdtopk/internal/crowd"
	"crowdtopk/internal/dataset"
	"crowdtopk/internal/metrics"
	"crowdtopk/internal/topk"
)

// AblationEta studies the §5.5 money/latency trade-off: the batch size η
// sweeps from one-at-a-time (minimum money, maximum rounds) to large
// batches (the opposite). SPR on IMDb at defaults.
func AblationEta(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	cfg.validate()
	src := MakeSource("imdb", cfg.Seed)

	etas := []int{1, 5, 10, 30, 60, 120}
	cols := make([]string, len(etas))
	for i, eta := range etas {
		cols[i] = fmt.Sprintf("eta=%d", eta)
	}
	t := newTable("ablation-eta", "Batch size: money vs latency (SPR, IMDb)",
		[]string{"TMC", "latency"}, cols)
	for ci, eta := range etas {
		ecfg := cfg
		ecfg.Eta = eta
		m := measureNamed("spr", src, ecfg)
		t.Values[0][ci] = m.TMC
		t.Values[1][ci] = m.Rounds
	}
	t.Notes = append(t.Notes,
		"latency falls monotonically with η; money is non-monotone: large batches overshoot the stopping point, "+
			"while η=1 maximizes the optional-stopping inflation of Algorithm 1 (a fresh test after every single "+
			"sample) whose spurious early verdicts corrupt the partition and trigger rework")
	return []*Table{t}
}

// AblationSelectionBudget justifies the reduced-budget reference selection
// (DESIGN.md): the naive full-budget reading of Algorithm 3 spends most of
// the query on sorting near-tied sampled maxima.
func AblationSelectionBudget(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	cfg.validate()
	src := MakeSource("imdb", cfg.Seed)

	budgets := []struct {
		label string
		value int
	}{
		{"selB=I", 30},
		{"selB=2I (default)", 0},
		{"selB=4I", 120},
		{"selB=B (naive)", -1},
	}
	cols := make([]string, len(budgets))
	for i, b := range budgets {
		cols[i] = b.label
	}
	t := newTable("ablation-selbudget", "Reference-selection comparison budget (SPR, IMDb)",
		[]string{"TMC", "NDCG"}, cols)
	for ci, b := range budgets {
		m := measure(func(int) topk.Algorithm {
			return &topk.SPR{C: cfg.C, MaxRefChanges: cfg.MaxRefChanges, SelectionBudget: b.value}
		}, src, cfg)
		t.Values[0][ci] = m.TMC
		t.Values[1][ci] = m.NDCG
	}
	return []*Table{t}
}

// AblationJudgment compares the comparison-process variants this library
// adds beyond the paper's Table 3: one-sided Student intervals (§3.1
// remark) and the distribution-free Hoeffding-on-magnitudes policy
// (footnote 3), against the defaults.
func AblationJudgment(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	cfg.validate()

	imdb := dataset.NewIMDb(cfg.Seed)
	sub := dataset.RandomSubset(imdb, 30, rand.New(rand.NewSource(cfg.Seed+7)))
	n := sub.NumItems()
	alpha := cfg.Alpha

	policies := []compare.Tester{
		compare.NewStudent(alpha),
		compare.NewStudentOneSided(alpha),
		compare.NewStein(alpha),
		compare.NewHoeffdingPref(alpha),
		compare.NewHoeffding(alpha),
	}
	rows := make([]string, 0, 3*len(policies))
	for _, p := range policies {
		rows = append(rows, p.Name()+" workload", p.Name()+" accuracy", p.Name()+" tie-rate")
	}
	t := newTable("ablation-judgment",
		fmt.Sprintf("Comparison-process variants over 435 IMDb pairs (1-α=%.2f)", 1-alpha),
		rows, []string{"value"})

	// Common random numbers: every pair gets its own engine seeded by the
	// pair identity, so all policies judge the exact same sample streams
	// and their workloads are pointwise comparable. Accuracy is measured
	// over decided pairs — a tie under budget is an honest abstention,
	// not an error. A moderate per-pair cap keeps near-tie pairs from
	// dominating the average.
	params := compare.Params{B: 10_000, I: cfg.I, Step: 1}
	for pi, p := range policies {
		var work, acc, decided, cnt float64
		for run := 0; run < cfg.Runs; run++ {
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					seed := cfg.Seed + int64(run)*1_000_003 + int64(i)*1_009 + int64(j)
					eng := crowd.NewEngine(sub, rand.New(rand.NewSource(seed)))
					r := compare.NewRunner(eng, p, params)
					out := r.Compare(i, j)
					work += float64(r.Workload(i, j))
					if out != compare.Tie {
						decided++
						if (sub.TrueRank(i) < sub.TrueRank(j)) == (out == compare.FirstWins) {
							acc++
						}
					}
					cnt++
				}
			}
		}
		t.Values[3*pi][0] = work / cnt
		if decided > 0 {
			t.Values[3*pi+1][0] = acc / decided
		}
		t.Values[3*pi+2][0] = 1 - decided/cnt
	}
	return []*Table{t}
}

// AblationWorkers measures the robustness of the confidence-aware pipeline
// under imperfect worker populations (spammers and per-worker slider
// scales), a dimension the paper leaves to its §2 citations.
func AblationWorkers(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	cfg.validate()
	base := MakeSource("jester", cfg.Seed)

	fractions := []float64{0, 0.1, 0.2, 0.3}
	cols := make([]string, len(fractions))
	for i, f := range fractions {
		cols[i] = fmt.Sprintf("spam=%.0f%%", f*100)
	}
	t := newTable("ablation-workers", "SPR under spammer fractions (Jester, scale-noisy workers)",
		[]string{"TMC", "NDCG"}, cols)
	for ci, f := range fractions {
		var tmc, ndcg float64
		for run := 0; run < cfg.Runs; run++ {
			pool := crowd.NewWorkerPool(base, crowd.WorkerPoolConfig{
				Workers:         200,
				SpammerFraction: f,
				ScaleSD:         0.3,
				Seed:            cfg.Seed + int64(ci),
			})
			eng := crowd.NewEngine(pool, rand.New(rand.NewSource(cfg.Seed+int64(1000*run))))
			r := compare.NewRunner(eng, compare.NewStudent(cfg.Alpha), compare.Params{B: cfg.B, I: cfg.I, Step: cfg.Eta})
			res := topk.Run(&topk.SPR{C: cfg.C, MaxRefChanges: cfg.MaxRefChanges}, r, cfg.K)
			tmc += float64(res.TMC)
			ndcg += metrics.NDCG(res.TopK, base.TrueRank, base.NumItems())
		}
		t.Values[0][ci] = tmc / float64(cfg.Runs)
		t.Values[1][ci] = ndcg / float64(cfg.Runs)
	}
	t.Notes = append(t.Notes, "spammers widen preference variance: cost rises, quality degrades gracefully")
	return []*Table{t}
}

// AblationPhases breaks SPR's cost down by framework phase on every
// dataset — the §5 cost anatomy (select / partition / rank) measured
// rather than asserted.
func AblationPhases(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	cfg.validate()

	t := newTable("ablation-phases", "SPR cost by phase (TMC; defaults)",
		DatasetNames, []string{"select", "partition", "rank", "refChanges", "ties"})
	for ri, ds := range DatasetNames {
		src := MakeSource(ds, cfg.Seed)
		var sel, part, rank, changes, ties float64
		for run := 0; run < cfg.Runs; run++ {
			trace := &topk.PhaseTrace{}
			alg := &topk.SPR{C: cfg.C, MaxRefChanges: cfg.MaxRefChanges, Trace: trace}
			r := newRunner(src, cfg, cfg.Seed+int64(1000*run))
			topk.Run(alg, r, cfg.K)
			sel += float64(trace.Select.TMC)
			part += float64(trace.Partition.TMC)
			rank += float64(trace.Rank.TMC)
			changes += float64(trace.RefChanges)
			ties += float64(trace.Ties)
		}
		f := float64(cfg.Runs)
		t.Values[ri][0] = sel / f
		t.Values[ri][1] = part / f
		t.Values[ri][2] = rank / f
		t.Values[ri][3] = changes / f
		t.Values[ri][4] = ties / f
	}
	return []*Table{t}
}

// AblationSort tests the paper's §5.3 sorting argument head-on: the
// ranking phase receives an almost-sorted candidate order, where the
// recommended adjacent (bubble) sort is near-linear while merge sort
// pays its full n·log n comparisons regardless of presortedness.
func AblationSort(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	cfg.validate()

	sizes := []int{10, 20, 40, 80}
	cols := make([]string, len(sizes))
	for i, n := range sizes {
		cols[i] = fmt.Sprintf("n=%d", n)
	}
	t := newTable("ablation-sort", "Ranking-phase sort strategy on almost-sorted candidates (TMC)",
		[]string{"adjacent (paper)", "merge"}, cols)

	for ci, n := range sizes {
		src := dataset.NewSynthetic(n, 0.25, cfg.Seed+int64(ci))
		order := dataset.Order(src)
		for ri, strategy := range []topk.SortStrategy{topk.SortAdjacent, topk.SortMerge} {
			var total float64
			for run := 0; run < cfg.Runs; run++ {
				almost := append([]int(nil), order...)
				rng := rand.New(rand.NewSource(cfg.Seed + int64(100*run)))
				for s := 0; s < n/10+1; s++ {
					i := rng.Intn(n - 1)
					almost[i], almost[i+1] = almost[i+1], almost[i]
				}
				r := newRunner(src, cfg, cfg.Seed+int64(1000*run))
				topk.RankCandidates(r, almost, strategy)
				total += float64(r.Engine().TMC())
			}
			t.Values[ri][ci] = total / float64(cfg.Runs)
		}
	}
	t.Notes = append(t.Notes, "the adjacent sort only pays for the inversions; merge re-compares everything")
	return []*Table{t}
}

// AblationCrowdBT compares CrowdBT's uniform random pair selection with
// the active scheme of Chen et al. (refit-and-pick-uncertain-pairs) at
// matched budgets, on a small instance where the budget is genuinely
// tight.
func AblationCrowdBT(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	cfg.validate()
	base := MakeSource("jester", cfg.Seed)

	budgets := []int64{2000, 5000, 10000}
	cols := make([]string, len(budgets))
	for i, b := range budgets {
		cols[i] = fmt.Sprintf("budget=%d", b)
	}
	t := newTable("ablation-crowdbt", "CrowdBT: random vs active pair selection (Jester, NDCG)",
		[]string{"random", "active"}, cols)
	for ci, budget := range budgets {
		for ri, active := range []bool{false, true} {
			var ndcg float64
			for run := 0; run < cfg.Runs; run++ {
				c := btl.NewCrowdBT(budget)
				c.Active = active
				c.Eta = cfg.Eta
				eng := crowd.NewEngine(base, rand.New(rand.NewSource(cfg.Seed+int64(1000*run))))
				order := c.Rank(eng)
				ndcg += metrics.NDCG(order[:cfg.K], base.TrueRank, base.NumItems())
			}
			t.Values[ri][ci] = ndcg / float64(cfg.Runs)
		}
	}
	return []*Table{t}
}

// AblationPrior studies the §7 future-work idea implemented in this
// library: reference selection from prior knowledge at zero crowd cost,
// with perfect and noisy priors, against vanilla sampled selection.
func AblationPrior(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	cfg.validate()
	src := MakeSource("imdb", cfg.Seed)
	n := src.NumItems()

	perfect := make([]float64, n)
	for i := 0; i < n; i++ {
		perfect[i] = -float64(src.TrueRank(i))
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 55))
	noisy := make([]float64, n)
	for i := 0; i < n; i++ {
		noisy[i] = perfect[i] + rng.NormFloat64()*float64(n)/10
	}

	variants := []struct {
		label string
		prior []float64
	}{
		{"sampled (paper)", nil},
		{"perfect prior", perfect},
		{"noisy prior", noisy},
	}
	cols := make([]string, len(variants))
	for i, v := range variants {
		cols[i] = v.label
	}
	t := newTable("ablation-prior", "Prior-informed reference selection (SPR, IMDb; §7)",
		[]string{"TMC", "NDCG"}, cols)
	for ci, v := range variants {
		m := measure(func(int) topk.Algorithm {
			return &topk.SPR{C: cfg.C, MaxRefChanges: cfg.MaxRefChanges, PriorScores: v.prior}
		}, src, cfg)
		t.Values[0][ci] = m.TMC
		t.Values[1][ci] = m.NDCG
	}
	return []*Table{t}
}
