package experiment

import (
	"fmt"
	"math"
)

// Figure14 reproduces Figure 14 (§6.5): SPR against the
// non-confidence-aware baselines — CrowdBT and Hybrid granted SPR's
// measured TMC as their budget, and HybridSPR with Hybrid's grading share.
// Reported per dataset: NDCG and actual cost.
func Figure14(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	cfg.validate()

	var out []*Table
	for _, ds := range []string{"imdb", "book"} {
		src := MakeSource(ds, cfg.Seed)
		t := newTable("fig14-"+ds, "Non-confidence-aware methods at SPR's budget ("+ds+")",
			[]string{"spr", "crowdbt", "hybrid", "hybridspr"}, []string{"NDCG", "TMC"})

		spr := measureNamed("spr", src, cfg)
		t.Values[0][0] = spr.NDCG
		t.Values[0][1] = spr.TMC

		budget := int64(math.Round(spr.TMC))
		for ri, alg := range []string{"crowdbt", "hybrid", "hybridspr"} {
			m := measureBudgeted(alg, budget, src, cfg)
			t.Values[ri+1][0] = m.NDCG
			t.Values[ri+1][1] = m.TMC
		}
		t.Notes = append(t.Notes,
			fmt.Sprintf("crowdbt and hybrid budget = SPR's measured TMC (%d); hybridspr grading share = budget/2", budget))
		out = append(out, t)
	}
	return out
}
