package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Table is a rendered experiment artifact: one paper table or one figure's
// data series (rows = x-axis points or methods, columns = series).
type Table struct {
	// ID is the experiment identifier ("table7", "fig8", ...).
	ID string
	// Title describes the paper artifact being reproduced.
	Title string
	// Columns labels the value columns.
	Columns []string
	// RowLabels labels the rows.
	RowLabels []string
	// Values has one row per RowLabel; NaN renders as "-".
	Values [][]float64
	// Notes carry caveats (substitutions, reduced runs, ...).
	Notes []string
}

// Cell returns the value at (row, col) addressed by labels; it panics on
// unknown labels so tests fail loudly.
func (t *Table) Cell(row, col string) float64 {
	ri, ci := -1, -1
	for i, r := range t.RowLabels {
		if r == row {
			ri = i
			break
		}
	}
	for j, c := range t.Columns {
		if c == col {
			ci = j
			break
		}
	}
	if ri < 0 || ci < 0 {
		panic(fmt.Sprintf("experiment: no cell (%q, %q) in table %s", row, col, t.ID))
	}
	return t.Values[ri][ci]
}

// Render writes a fixed-width text rendering of the table.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)

	labelW := len("series")
	for _, r := range t.RowLabels {
		if len(r) > labelW {
			labelW = len(r)
		}
	}
	colW := make([]int, len(t.Columns))
	for j, c := range t.Columns {
		colW[j] = len(c)
		if colW[j] < 10 {
			colW[j] = 10
		}
	}

	fmt.Fprintf(w, "%-*s", labelW+2, "")
	for j, c := range t.Columns {
		fmt.Fprintf(w, "%*s", colW[j]+2, c)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", labelW+2+sum(colW)+2*len(colW)))

	for i, r := range t.RowLabels {
		fmt.Fprintf(w, "%-*s", labelW+2, r)
		for j := range t.Columns {
			fmt.Fprintf(w, "%*s", colW[j]+2, formatCell(t.Values[i][j]))
		}
		fmt.Fprintln(w)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// RenderCSV writes the table as CSV: a header row of column labels
// preceded by an id column, then one row per row label. NaN cells are
// empty.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{t.ID}, t.Columns...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, r := range t.RowLabels {
		row := make([]string, 0, len(t.Columns)+1)
		row = append(row, r)
		for j := range t.Columns {
			v := t.Values[i][j]
			if math.IsNaN(v) {
				row = append(row, "")
			} else {
				row = append(row, strconv.FormatFloat(v, 'g', 10, 64))
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatCell(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v != math.Trunc(v) || math.Abs(v) < 1000:
		if math.Abs(v) < 10 && v != math.Trunc(v) {
			return fmt.Sprintf("%.3f", v)
		}
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// newTable allocates a table with a NaN-filled value matrix.
func newTable(id, title string, rows, cols []string) *Table {
	vals := make([][]float64, len(rows))
	for i := range vals {
		vals[i] = make([]float64, len(cols))
		for j := range vals[i] {
			vals[i][j] = math.NaN()
		}
	}
	return &Table{ID: id, Title: title, Columns: cols, RowLabels: rows, Values: vals}
}
