package experiment

import (
	"fmt"
	"math/rand"
	"sort"

	"crowdtopk/internal/topk"
)

// table10Sizes are the m values the bound table is evaluated at.
var table10Sizes = []int{5, 11, 25, 51, 101}

// Table10 reproduces Appendix C's Table 10: the worst-case comparison
// bounds of the median-selection algorithms available to SELECTREFERENCE,
// plus — beyond the paper — an empirical column: the measured comparison
// count of bubble-sort-to-the-median on random inputs, which must respect
// its bound.
func Table10(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	cfg.validate()

	algs := []string{"bubble", "selection", "merge", "heap", "quick"}
	cols := make([]string, len(table10Sizes))
	for i, m := range table10Sizes {
		cols[i] = fmt.Sprintf("m=%d", m)
	}
	rows := append(append([]string{}, algs...), "bubble measured")
	t := newTable("table10", "Median-selection comparison bounds (Appendix C)", rows, cols)

	for ci, m := range table10Sizes {
		for ri, alg := range algs {
			t.Values[ri][ci] = topk.MedianCostBound(alg, m)
		}
		// Empirical bubble-to-median comparisons on random permutations.
		var total float64
		rng := rand.New(rand.NewSource(cfg.Seed + int64(ci)))
		for run := 0; run < cfg.Runs; run++ {
			total += float64(bubbleToMedianComparisons(rng.Perm(m)))
		}
		t.Values[len(algs)][ci] = total / float64(cfg.Runs)
	}
	t.Notes = append(t.Notes, "measured bubble comparisons must not exceed the bubble bound")
	return []*Table{t}
}

// bubbleToMedianComparisons runs Appendix C's bubble-to-the-median
// procedure on xs and counts comparisons: ⌈m/2⌉ passes, each bubbling the
// next-smallest element into place from the tail.
func bubbleToMedianComparisons(xs []int) int {
	m := len(xs)
	comparisons := 0
	for pass := 1; pass <= (m+1)/2; pass++ {
		for i := m - 1; i >= pass; i-- {
			comparisons++
			if xs[i] < xs[i-1] {
				xs[i], xs[i-1] = xs[i-1], xs[i]
			}
		}
	}
	// Sanity: position ⌈m/2⌉−1 now holds the ⌈m/2⌉-th smallest value.
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	if xs[(m+1)/2-1] != sorted[(m+1)/2-1] {
		panic("experiment: bubble-to-median failed to place the median")
	}
	return comparisons
}
