package experiment

import (
	"math"
	"testing"
)

func TestAblationEtaTradeoff(t *testing.T) {
	tb := AblationEta(quickCfg())[0]
	// Latency must fall steeply with the batch size. Run-to-run noise can
	// wiggle neighbouring points by a few rounds once the curve flattens,
	// so assert the trend across well-separated batch sizes.
	if !(tb.Cell("latency", "eta=1") > tb.Cell("latency", "eta=10") &&
		tb.Cell("latency", "eta=10") > tb.Cell("latency", "eta=120")) {
		t.Errorf("latency not decreasing across the sweep: %v / %v / %v",
			tb.Cell("latency", "eta=1"), tb.Cell("latency", "eta=10"), tb.Cell("latency", "eta=120"))
	}
	if tb.Cell("latency", "eta=1") < 10*tb.Cell("latency", "eta=120") {
		t.Error("batching barely reduced latency")
	}
	// Money: the overshoot effect must show between moderate and large
	// batches. (The η=1 end is non-monotone — see the driver's note.)
	if tb.Cell("TMC", "eta=120") <= tb.Cell("TMC", "eta=10") {
		t.Errorf("eta=120 TMC %v not above eta=10 TMC %v",
			tb.Cell("TMC", "eta=120"), tb.Cell("TMC", "eta=10"))
	}
}

func TestAblationSelectionBudgetShape(t *testing.T) {
	tb := AblationSelectionBudget(quickCfg())[0]
	def := tb.Cell("TMC", "selB=2I (default)")
	naive := tb.Cell("TMC", "selB=B (naive)")
	if naive <= def {
		t.Errorf("naive full-budget selection TMC %v not above default %v", naive, def)
	}
	for _, col := range tb.Columns {
		if n := tb.Cell("NDCG", col); n <= 0 || n > 1 {
			t.Errorf("NDCG at %s = %v out of range", col, n)
		}
	}
}

func TestAblationJudgmentShape(t *testing.T) {
	cfg := quickCfg()
	tb := AblationJudgment(cfg)[0]
	oneSided := tb.Cell("student-onesided workload", "value")
	twoSided := tb.Cell("student workload", "value")
	if oneSided >= twoSided {
		t.Errorf("one-sided workload %v not below two-sided %v", oneSided, twoSided)
	}
	// All variants keep high accuracy on the pairs they decide.
	for _, p := range []string{"student", "student-onesided", "stein", "hoeffding-pref", "hoeffding"} {
		if acc := tb.Cell(p+" accuracy", "value"); acc < 0.95 {
			t.Errorf("%s decided-accuracy %v below 0.95", p, acc)
		}
		if tie := tb.Cell(p+" tie-rate", "value"); tie < 0 || tie > 0.5 {
			t.Errorf("%s tie-rate %v out of plausible range", p, tie)
		}
	}
	// Distribution-free variants cost more than Student, and keeping
	// clipped magnitudes does not beat the sign transform under
	// range-only bounds (see compare.HoeffdingPref docs).
	if tb.Cell("hoeffding-pref workload", "value") <= twoSided {
		t.Error("hoeffding-pref not above student")
	}
	if tb.Cell("hoeffding workload", "value") >= tb.Cell("hoeffding-pref workload", "value") {
		t.Error("binary hoeffding not below hoeffding-pref on crisp rating data")
	}
}

func TestAblationWorkersShape(t *testing.T) {
	// The spam penalty is noisy at a single run; three runs separate it
	// from the run-to-run TMC variance.
	cfg := quickCfg()
	cfg.Runs = 3
	tb := AblationWorkers(cfg)[0]
	clean := tb.Cell("TMC", "spam=0%")
	spam := tb.Cell("TMC", "spam=30%")
	if spam <= clean {
		t.Errorf("30%% spammers TMC %v not above clean %v", spam, clean)
	}
	if n := tb.Cell("NDCG", "spam=0%"); n < 0.5 {
		t.Errorf("clean NDCG %v suspiciously low", n)
	}
}

func TestAblationSortShape(t *testing.T) {
	tb := AblationSort(quickCfg())[0]
	// The paper's §5.3 choice must win at every size, and the gap must
	// widen with n (near-linear vs n·log n).
	var prevRatio float64
	for _, col := range tb.Columns {
		adj := tb.Cell("adjacent (paper)", col)
		mrg := tb.Cell("merge", col)
		if adj >= mrg {
			t.Errorf("%s: adjacent sort %v not below merge %v", col, adj, mrg)
		}
		ratio := mrg / adj
		if ratio < prevRatio*0.7 {
			t.Errorf("%s: merge/adjacent ratio %v collapsed from %v", col, ratio, prevRatio)
		}
		prevRatio = ratio
	}
}

func TestAblationPhasesShape(t *testing.T) {
	tb := AblationPhases(quickCfg())[0]
	for _, ds := range DatasetNames {
		sel := tb.Cell(ds, "select")
		part := tb.Cell(ds, "partition")
		if sel <= 0 || part <= 0 {
			t.Errorf("%s: degenerate phase costs select=%v partition=%v", ds, sel, part)
		}
		// The capped selection must not dominate partitioning badly.
		if sel > 3*part {
			t.Errorf("%s: selection %v dwarfs partitioning %v", ds, sel, part)
		}
	}
}

func TestAblationCrowdBTShape(t *testing.T) {
	// Two runs: single-run NDCG at these budgets is ±0.05-noisy, which
	// would make the cross-strategy comparison a coin flip.
	tb := AblationCrowdBT(Config{Runs: 2, Seed: 3})[0]
	// NDCG grows with budget for both strategies, and active is not
	// clearly worse than random at the largest budget.
	for _, row := range []string{"random", "active"} {
		if tb.Cell(row, "budget=10000") <= tb.Cell(row, "budget=2000")-0.05 {
			t.Errorf("%s: NDCG not improving with budget", row)
		}
	}
	if tb.Cell("active", "budget=10000") < tb.Cell("random", "budget=10000")-0.05 {
		t.Errorf("active (%v) clearly below random (%v) at the large budget",
			tb.Cell("active", "budget=10000"), tb.Cell("random", "budget=10000"))
	}
}

func TestAblationPriorShape(t *testing.T) {
	tb := AblationPrior(quickCfg())[0]
	sampled := tb.Cell("TMC", "sampled (paper)")
	perfect := tb.Cell("TMC", "perfect prior")
	if perfect >= sampled {
		t.Errorf("perfect-prior TMC %v not below sampled %v", perfect, sampled)
	}
	for _, col := range tb.Columns {
		if v := tb.Cell("NDCG", col); math.IsNaN(v) || v <= 0 {
			t.Errorf("NDCG at %s = %v", col, v)
		}
	}
}
